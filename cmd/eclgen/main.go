// Command eclgen emits seeded, well-typed random ECL programs for
// stress-testing batch compilation and differential conformance.
//
// Usage:
//
//	eclgen -seed 1 -modules 1000 -o mega.ecl
//
// The output is deterministic in -seed and -modules: CI regenerates
// the same mega-design on every run instead of committing megabytes
// of synthetic source.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/eclgen"
)

func main() {
	seed := flag.Int64("seed", 1, "generator seed (output is deterministic in seed and module count)")
	modules := flag.Int("modules", 100, "number of modules to generate")
	noWrap := flag.Bool("no-wrappers", false, "suppress instantiation-wrapper modules")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	if *modules < 1 {
		fmt.Fprintln(os.Stderr, "eclgen: -modules must be >= 1")
		os.Exit(2)
	}
	src := eclgen.Generate(eclgen.Config{Seed: *seed, Modules: *modules, NoWrappers: *noWrap})
	if *out == "" {
		fmt.Print(src)
		return
	}
	if err := os.WriteFile(*out, []byte(src), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "eclgen:", err)
		os.Exit(1)
	}
}
