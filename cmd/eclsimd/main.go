// Command eclsimd serves multi-tenant ECL execution over HTTP: a fleet
// of clients opens machines (compiled on demand through the tiered
// build cache), steps them in batches, forks and resets them, all
// against one long-lived exec.Session. The wire format for stepping is
// the canonical JSONL trace encoding, so a transcribed daemon
// conversation replays directly through eclsim -replay.
//
// Usage:
//
//	eclsimd [-addr host:port] [-cache-dir dir] [-remote-cache URL]
//	        [-backend name] [-max-sessions n] [-idle-ttl d] [-jobs n]
//
// Sessions idle past -idle-ttl (or squeezed out by -max-sessions) are
// evicted into the build cache's content-addressed store as snapshot
// blobs and revived transparently on their next touch. GET /healthz
// answers liveness probes; GET /statsz reports traffic counters as
// JSON. eclsim -connect http://host:port drives a running daemon.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/cache"
	"repro/internal/cache/remote"
	"repro/internal/driver"
	"repro/internal/exec"
	"repro/internal/simd"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8421", "address to listen on")
	cacheDir := flag.String("cache-dir", "", "build cache directory (default $ECL_CACHE_DIR, else the user cache dir)")
	remoteCache := flag.String("remote-cache", os.Getenv("ECL_REMOTE_CACHE"), "shared remote cache URL (default $ECL_REMOTE_CACHE)")
	backend := flag.String("backend", "efsm", "default execution backend: "+strings.Join(exec.Backends(), ", "))
	maxSessions := flag.Int("max-sessions", simd.DefaultMaxSessions, "resident machine bound (LRU-evicts past it)")
	idleTTL := flag.Duration("idle-ttl", 10*time.Minute, "evict sessions idle this long (0 disables)")
	jobs := flag.Int("jobs", 0, "compile workers (0 = GOMAXPROCS)")
	flag.Parse()

	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: eclsimd [flags]")
		flag.Usage()
		os.Exit(2)
	}
	d := driver.New(*jobs)
	store, err := cache.Open(*cacheDir)
	if err != nil {
		// No writable store: compiles stay memory-cached and eviction is
		// disabled, but the daemon still serves.
		fmt.Fprintf(os.Stderr, "eclsimd: disk cache disabled: %v\n", err)
		store = nil
	} else {
		d.Disk = store
	}
	if *remoteCache != "" {
		rc, err := remote.Dial(*remoteCache)
		if err != nil {
			fmt.Fprintf(os.Stderr, "eclsimd: remote cache disabled: %v\n", err)
		} else {
			d.Remote = rc
		}
	}
	daemon, err := simd.New(simd.Config{
		Driver:      d,
		Store:       store,
		Backend:     *backend,
		MaxSessions: *maxSessions,
		IdleTTL:     *idleTTL,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})
	if err != nil {
		fatal(err)
	}
	defer daemon.Close()
	// Listen before announcing, so "-addr host:0" reports the port the
	// kernel actually picked (scripts and tests parse this line).
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "eclsimd: serving on %s\n", ln.Addr())
	if err := http.Serve(ln, daemon); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "eclsimd:", err)
	os.Exit(1)
}
