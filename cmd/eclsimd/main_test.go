package main

import (
	"bufio"
	"fmt"
	"math/rand"
	"os/exec"
	"path/filepath"
	"regexp"
	"sync"
	"testing"
	"time"

	ex "repro/internal/exec"
	"repro/internal/paperex"
	"repro/internal/simd"

	"repro/internal/driver"
)

// build compiles one of this repo's commands into dir.
func build(t *testing.T, dir, pkg, name string) string {
	t.Helper()
	exe := filepath.Join(dir, name)
	out, err := exec.Command("go", "build", "-o", exe, pkg).CombinedOutput()
	if err != nil {
		t.Skipf("go build unavailable: %v\n%s", err, out)
	}
	return exe
}

// startDaemon launches eclsimd on an ephemeral port and returns its
// announced URL.
func startDaemon(t *testing.T, exe string, extra ...string) string {
	t.Helper()
	args := append([]string{"-addr", "127.0.0.1:0", "-cache-dir", t.TempDir()}, extra...)
	cmd := exec.Command(exe, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cmd.Process.Kill(); cmd.Wait() })

	line := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			l := sc.Text()
			if regexp.MustCompile(`serving on`).MatchString(l) {
				line <- l
				break
			}
		}
		close(line)
	}()
	select {
	case l := <-line:
		m := regexp.MustCompile(`on (127\.0\.0\.1:\d+)$`).FindStringSubmatch(l)
		if m == nil {
			t.Fatalf("eclsimd announced %q, no address", l)
		}
		return "http://" + m[1]
	case <-time.After(30 * time.Second):
		t.Fatal("eclsimd never announced its address")
	}
	panic("unreachable")
}

// TestDaemonDogfood is the CI dogfood flow against the real binary: 50
// concurrent sessions of reactive workloads driven through batched
// stepping, every conversation transcribed as a trace and replayed
// clean against the oracle interpreter. The daemon runs with
// -backend efsm-table so the table-compiled hot path carries the bulk
// of the tenancy (including its evict/revive churn); a third of the
// sessions explicitly request the efsm backend to keep mixed-backend
// residency in the mix.
func TestDaemonDogfood(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping binary end-to-end test")
	}
	dir := t.TempDir()
	url := startDaemon(t, build(t, dir, "repro/cmd/eclsimd", "eclsimd"),
		"-max-sessions", "20", // force LRU eviction churn under the 50 sessions
		"-backend", "efsm-table")

	// Compile the two workloads locally once, for the replay oracles.
	d := driver.New(0)
	oracle := map[string]driver.Result{}
	workloads := map[string]struct{ src, module string }{
		"abro":  {paperex.ABRO, "abro"},
		"stack": {paperex.Stack, "toplevel"},
	}
	for name, w := range workloads {
		res := d.BuildOne(driver.Request{Path: name + ".ecl", Source: w.src, Module: w.module})
		if res.Failed() {
			t.Fatalf("%s: %v", name, res.Err)
		}
		oracle[name] = res
	}

	c, err := simd.Dial(url)
	if err != nil {
		t.Fatal(err)
	}
	const sessions = 50
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	// All sessions open before any steps: with 50 sessions resident
	// against the 20-session bound, eviction pressure is guaranteed
	// rather than dependent on goroutine scheduling.
	var opened sync.WaitGroup
	opened.Add(sessions)
	for w := 0; w < sessions; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := "abro"
			if w%2 == 1 {
				name = "stack"
			}
			wl := workloads[name]
			backend := "" // daemon default: efsm-table
			if w%3 == 0 {
				backend = "efsm"
			}
			info, err := c.Open(simd.OpenRequest{
				Path: name + ".ecl", Source: wl.src, Module: wl.module, Backend: backend,
			})
			opened.Done()
			if err != nil {
				errs <- err
				return
			}
			if backend == "" && info.Backend != "efsm-table" {
				errs <- fmt.Errorf("session %d: default backend = %q, want efsm-table", w, info.Backend)
				return
			}
			defer c.Close(info.ID)
			opened.Wait()
			rng := rand.New(rand.NewSource(int64(w)))
			var inputs []map[string]string
			for i := 0; i < 120; i++ {
				in := map[string]string{}
				if name == "abro" {
					for _, sig := range []string{"A", "B", "R"} {
						if rng.Intn(2) == 1 {
							in[sig] = ""
						}
					}
				} else {
					if rng.Intn(4) != 0 {
						in["in_byte"] = simd.EncodeIntValue(1, int64(rng.Intn(256)))
					}
					if rng.Intn(25) == 0 {
						in["reset"] = ""
					}
				}
				inputs = append(inputs, in)
			}
			events, err := c.StepAll(info.ID, inputs, 24)
			if err != nil {
				errs <- fmt.Errorf("session %d (%s): %w", w, name, err)
				return
			}
			// The conversation, read back as a trace, must replay clean
			// on the oracle interpreter.
			trace := &ex.Trace{Version: ex.TraceVersion, Module: info.Module, Backend: info.Backend, Events: events}
			m, err := ex.Open("interp", oracle[name].Design)
			if err != nil {
				errs <- err
				return
			}
			got, err := ex.Replay(m, trace)
			if err != nil {
				errs <- fmt.Errorf("session %d (%s): replay: %w", w, name, err)
				return
			}
			if err := ex.Diff(trace, got); err != nil {
				errs <- fmt.Errorf("session %d (%s): daemon diverged from interp: %w", w, name, err)
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Steps != sessions*120 {
		t.Errorf("daemon ran %d steps, want %d", st.Steps, sessions*120)
	}
	if st.Opens != sessions || st.Closes != sessions {
		t.Errorf("opens/closes = %d/%d, want %d/%d", st.Opens, st.Closes, sessions, sessions)
	}
	// 50 sessions against a 20-resident bound must have exercised the
	// evict/revive path, and every revival must have succeeded.
	if st.Evictions == 0 {
		t.Error("no evictions despite max-sessions pressure")
	}
	if st.Errors != 0 {
		t.Errorf("daemon reported %d errors", st.Errors)
	}
}
