// Command ecllint runs the repo's own Go linters:
//
//   - httpjsonlint: HTTP handlers must encode JSON responses through
//     internal/httpjson instead of a raw json.NewEncoder over the
//     http.ResponseWriter (which drops Content-Type and encode errors);
//   - vetcoverage: every rule ID in the ECL analyzer's registry must
//     have a seeded trigger program and golden finding file under
//     internal/analyze/testdata/vet (checked for any lint root that
//     contains that directory).
//
// Usage:
//
//	ecllint [dir ...]
//
// With no arguments it lints the current directory tree. Exit status
// is 1 when there are findings, 2 on a usage or parse error.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/lint/httpjsonlint"
	"repro/internal/lint/vetcoverage"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: ecllint [dir ...]")
		flag.PrintDefaults()
	}
	flag.Parse()
	roots := flag.Args()
	if len(roots) == 0 {
		roots = []string{"."}
	}
	found := false
	for _, root := range roots {
		findings, err := httpjsonlint.CheckDir(root)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ecllint:", err)
			os.Exit(2)
		}
		for _, f := range findings {
			found = true
			fmt.Println(f)
		}
		vetDir := filepath.Join(root, "internal", "analyze", "testdata", "vet")
		if fi, err := os.Stat(vetDir); err == nil && fi.IsDir() {
			covFindings, err := vetcoverage.CheckDir(vetDir)
			if err != nil {
				fmt.Fprintln(os.Stderr, "ecllint:", err)
				os.Exit(2)
			}
			for _, f := range covFindings {
				found = true
				fmt.Println(f)
			}
		}
	}
	if found {
		os.Exit(1)
	}
}
