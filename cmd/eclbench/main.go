// Command eclbench regenerates the paper's evaluation: Table 1
// (synchronous vs asynchronous implementation trade-offs for the
// protocol stack and the audio buffer controller) and per-figure
// compilation statistics.
//
// Usage:
//
//	eclbench [-packets 500] [-messages 8] [-samples 48] [-figures]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/driver"
	"repro/internal/paperex"
	"repro/internal/sim"
)

func main() {
	packets := flag.Int("packets", 500, "stack testbench packets (paper: 500)")
	messages := flag.Int("messages", 8, "buffer testbench messages")
	samples := flag.Int("samples", 48, "samples per message")
	figures := flag.Bool("figures", false, "also print per-figure compilation stats")
	flag.Parse()

	cfg := sim.DefaultTable1Config()
	cfg.Packets = *packets
	cfg.Messages = *messages
	cfg.SamplesPerMessage = *samples

	fmt.Printf("Reproducing Table 1 (%d packets, %d messages x %d samples)\n\n",
		cfg.Packets, cfg.Messages, cfg.SamplesPerMessage)
	rows, err := sim.Table1(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "eclbench:", err)
		os.Exit(1)
	}
	fmt.Println(sim.FormatTable1(rows))

	fmt.Println("Paper's Table 1 for comparison (memory bytes, kcycles):")
	fmt.Println("  Stack  1 task : 1008/160, RTOS 5584/1504 | 4283 / 8032")
	fmt.Println("  Stack  3 tasks: 1632/352, RTOS 5872/1744 | 4161 / 8815")
	fmt.Println("  Buffer 1 task : 7072/80,  RTOS 7120/3040 |   51 /  123")
	fmt.Println("  Buffer 3 tasks: 2544/144, RTOS 7376/3536 |   57 /  145")

	if *figures {
		fmt.Println("\nPer-figure compilation statistics:")
		figureStats()
	}
}

func figureStats() {
	cases := []struct {
		fig, module, src string
	}{
		{"Figure 1", "assemble", paperex.Header + paperex.Assemble},
		{"Figure 2", "checkcrc", paperex.Header + paperex.CheckCRC},
		{"Figure 3", "prochdr", paperex.Header + paperex.ProcHdr},
		{"Figure 4", "toplevel", paperex.Stack},
	}
	reqs := make([]driver.Request, len(cases))
	for i, c := range cases {
		reqs[i] = driver.Request{
			Path:    c.module + ".ecl",
			Source:  c.src,
			Module:  c.module,
			Targets: []driver.Target{driver.TargetStats},
		}
	}
	// All four figures compile concurrently over the driver's pool.
	results, _ := driver.New(0).Build(context.Background(), reqs)
	for i, res := range results {
		if res.Failed() {
			fmt.Fprintf(os.Stderr, "%s: %v\n", cases[i].fig, res.Err)
			continue
		}
		st := *res.Stats
		fmt.Printf("  %s (%s): %d EFSM states, %d transitions, %d data funcs, est. %d code bytes\n",
			cases[i].fig, res.Module, st.EFSM.States, st.EFSM.Leaves, st.DataFuncs, st.Image.CodeBytes)
	}
}
