// Command eclbench regenerates the paper's evaluation: Table 1
// (synchronous vs asynchronous implementation trade-offs for the
// protocol stack and the audio buffer controller) and per-figure
// compilation statistics.
//
// Usage:
//
//	eclbench [-packets 500] [-messages 8] [-samples 48] [-figures]
//
// It is also CI's benchmark-artifact tool:
//
//	go test -run '^$' -bench . -benchtime 1x -benchmem -json ./... | eclbench -json -o BENCH_PR3.json
//	eclbench -compare [-max-regress 30] BENCH_PR2.json BENCH_PR3.json
//
// -json converts a `go test -json` benchmark stream (stdin) into the
// compact committed artifact; -compare exits non-zero when the new
// artifact's Step-throughput (BenchmarkStepPacket/*) regressed past
// the threshold against the old one, or when a benchmark the gate
// requires to be allocation-free (BenchmarkStepPacket/efsm-table)
// reports nonzero allocs/op in the new artifact. The alloc gate needs
// the bench run to pass -benchmem and fails when the metric is absent.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/benchfmt"
	"repro/internal/cache"
	"repro/internal/driver"
	"repro/internal/paperex"
	"repro/internal/sim"
)

func main() {
	packets := flag.Int("packets", 500, "stack testbench packets (paper: 500)")
	messages := flag.Int("messages", 8, "buffer testbench messages")
	samples := flag.Int("samples", 48, "samples per message")
	figures := flag.Bool("figures", false, "also print per-figure compilation stats")
	jsonMode := flag.Bool("json", false, "convert a `go test -json` bench stream (stdin) to a bench artifact")
	jsonOut := flag.String("o", "", "artifact output file for -json (default stdout)")
	compareMode := flag.Bool("compare", false, "compare two bench artifacts (old new) for Step-throughput regressions")
	maxRegress := flag.Float64("max-regress", 30, "compare: allowed Step-throughput slowdown in percent")
	noDiskCache := flag.Bool("no-disk-cache", false, "disable the persistent artifact cache for -figures")
	flag.Parse()

	if *jsonMode {
		convertBench(*jsonOut)
		return
	}
	if *compareMode {
		compareBench(flag.Args(), *maxRegress)
		return
	}

	cfg := sim.DefaultTable1Config()
	cfg.Packets = *packets
	cfg.Messages = *messages
	cfg.SamplesPerMessage = *samples

	fmt.Printf("Reproducing Table 1 (%d packets, %d messages x %d samples)\n\n",
		cfg.Packets, cfg.Messages, cfg.SamplesPerMessage)
	rows, err := sim.Table1(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "eclbench:", err)
		os.Exit(1)
	}
	fmt.Println(sim.FormatTable1(rows))

	fmt.Println("Paper's Table 1 for comparison (memory bytes, kcycles):")
	fmt.Println("  Stack  1 task : 1008/160, RTOS 5584/1504 | 4283 / 8032")
	fmt.Println("  Stack  3 tasks: 1632/352, RTOS 5872/1744 | 4161 / 8815")
	fmt.Println("  Buffer 1 task : 7072/80,  RTOS 7120/3040 |   51 /  123")
	fmt.Println("  Buffer 3 tasks: 2544/144, RTOS 7376/3536 |   57 /  145")

	if *figures {
		fmt.Println("\nPer-figure compilation statistics:")
		figureStats(*noDiskCache)
	}
}

// convertBench turns a `go test -json` stream on stdin into the
// committed artifact format.
func convertBench(outPath string) {
	rep, err := benchfmt.ParseTestJSON(os.Stdin)
	if err != nil {
		fatal(err)
	}
	w := os.Stdout
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := rep.Write(w); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "eclbench: %d benchmark results recorded\n", len(rep.Benchmarks))
}

// compareBench gates Step-throughput between two artifacts, exiting 1
// on regression.
func compareBench(args []string, maxRegress float64) {
	if len(args) != 2 {
		fatal(fmt.Errorf("usage: eclbench -compare [-max-regress pct] old.json new.json"))
	}
	read := func(path string) *benchfmt.Report {
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		rep, err := benchfmt.ReadReport(f)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
		return rep
	}
	newRep := read(args[1])
	cmp, err := benchfmt.CompareStep(read(args[0]), newRep, maxRegress)
	if err != nil {
		fatal(err)
	}
	fmt.Print(cmp.Format())
	if err := benchfmt.CheckZeroAlloc(newRep, benchfmt.ZeroAllocBenches); err != nil {
		fatal(err)
	}
	fmt.Printf("Zero-alloc gate: %d benchmark(s) allocation-free\n", len(benchfmt.ZeroAllocBenches))
	if err := benchfmt.CheckSpeedups(newRep, benchfmt.SpeedupGates); err != nil {
		fatal(err)
	}
	fmt.Printf("Speedup gate: %d invariant(s) hold\n", len(benchfmt.SpeedupGates))
	if cmp.Regressed {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "eclbench:", err)
	os.Exit(1)
}

func figureStats(noDiskCache bool) {
	cases := []struct {
		fig, module, src string
	}{
		{"Figure 1", "assemble", paperex.Header + paperex.Assemble},
		{"Figure 2", "checkcrc", paperex.Header + paperex.CheckCRC},
		{"Figure 3", "prochdr", paperex.Header + paperex.ProcHdr},
		{"Figure 4", "toplevel", paperex.Stack},
	}
	reqs := make([]driver.Request, len(cases))
	for i, c := range cases {
		reqs[i] = driver.Request{
			Path:    c.module + ".ecl",
			Source:  c.src,
			Module:  c.module,
			Targets: []driver.Target{driver.TargetStats},
		}
	}
	// All four figures compile concurrently over the driver's pool,
	// with the stats artifacts persisted across invocations.
	d := driver.New(0)
	if !noDiskCache {
		if store, err := cache.Open(""); err == nil {
			d.Disk = store
		}
	}
	results, _ := d.Build(context.Background(), reqs)
	for i, res := range results {
		if res.Failed() {
			fmt.Fprintf(os.Stderr, "%s: %v\n", cases[i].fig, res.Err)
			continue
		}
		st := *res.Stats
		fmt.Printf("  %s (%s): %d EFSM states, %d transitions, %d data funcs, est. %d code bytes\n",
			cases[i].fig, res.Module, st.EFSM.States, st.EFSM.Leaves, st.DataFuncs, st.Image.CodeBytes)
	}
}
