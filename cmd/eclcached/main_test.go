package main

import (
	"bufio"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

// build compiles one of this repo's commands into dir.
func build(t *testing.T, dir, pkg, name string) string {
	t.Helper()
	exe := filepath.Join(dir, name)
	out, err := exec.Command("go", "build", "-o", exe, pkg).CombinedOutput()
	if err != nil {
		t.Skipf("go build unavailable: %v\n%s", err, out)
	}
	return exe
}

// startDaemon launches eclcached on an ephemeral port and returns its
// announced URL.
func startDaemon(t *testing.T, exe, storeDir string) string {
	t.Helper()
	cmd := exec.Command(exe, "-addr", "127.0.0.1:0", "-cache-dir", storeDir)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cmd.Process.Kill(); cmd.Wait() })

	line := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		if sc.Scan() {
			line <- sc.Text()
		}
		close(line)
	}()
	select {
	case l := <-line:
		m := regexp.MustCompile(`on (127\.0\.0\.1:\d+)$`).FindStringSubmatch(l)
		if m == nil {
			t.Fatalf("eclcached announced %q, no address", l)
		}
		return "http://" + m[1]
	case <-time.After(10 * time.Second):
		t.Fatal("eclcached never announced its address")
	}
	panic("unreachable")
}

// TestFleetSharesCompilesThroughDaemon is the CI dogfood flow against
// the real binaries: machine A (empty local store) compiles examples/
// and uploads; machine B (its own empty local store) must be served
// >= 90% from the daemon.
func TestFleetSharesCompilesThroughDaemon(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping binary end-to-end test")
	}
	dir := t.TempDir()
	daemon := build(t, dir, "repro/cmd/eclcached", "eclcached")
	eclc := build(t, dir, "repro/cmd/eclc", "eclc")
	examples, err := filepath.Abs("../../examples")
	if err != nil {
		t.Fatal(err)
	}
	url := startDaemon(t, daemon, t.TempDir())

	run := func(localStore, outDir string) string {
		cmd := exec.Command(eclc, "-all", "-cache-stats",
			"-cache-dir", localStore, "-remote-cache", url, "-o", outDir, examples)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("eclc failed: %v\n%s", err, out)
		}
		return string(out)
	}

	first := run(t.TempDir(), t.TempDir())
	if !strings.Contains(first, "remote-hits=0") || strings.Contains(first, "remote-uploads=0") {
		t.Fatalf("first machine should miss remotely and upload:\n%s", first)
	}

	second := run(t.TempDir(), t.TempDir())
	m := regexp.MustCompile(`remote-hit-rate=([0-9.]+)%`).FindStringSubmatch(second)
	if m == nil {
		t.Fatalf("no remote-hit-rate in output:\n%s", second)
	}
	rate, err := strconv.ParseFloat(m[1], 64)
	if err != nil || rate < 90 {
		t.Fatalf("second machine remote-hit-rate = %s%% (want >= 90):\n%s", m[1], second)
	}
	if !strings.Contains(second, "mem-misses=0") {
		t.Fatalf("second machine compiled something:\n%s", second)
	}
}
