// Command eclcached serves a shared ECL build cache over HTTP: an
// ordinary on-disk artifact store (the same format eclc writes
// locally) exported through the content-addressed protocol in
// internal/cache/remote, so a fleet of machines pointing eclc
// -remote-cache (or $ECL_REMOTE_CACHE) at it pays each compile once.
//
// Usage:
//
//	eclcached [-addr host:port] [-cache-dir dir]
//
// The backing store defaults to $ECL_CACHE_DIR, else the user cache
// dir; it is a normal store, so `eclc cache stats|gc|clear -cache-dir`
// manage it directly. GET /healthz answers liveness probes and GET
// /statsz reports the backing store's traffic counters as JSON.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"

	"repro/internal/cache"
	"repro/internal/cache/remote"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8420", "address to listen on")
	cacheDir := flag.String("cache-dir", "", "backing store directory (default $ECL_CACHE_DIR, else the user cache dir)")
	flag.Parse()

	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: eclcached [-addr host:port] [-cache-dir dir]")
		flag.Usage()
		os.Exit(2)
	}
	store, err := cache.Open(*cacheDir)
	if err != nil {
		fatal(err)
	}
	// Listen before announcing, so "-addr host:0" reports the port the
	// kernel actually picked (scripts and tests parse this line).
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "eclcached: serving %s on %s\n", store.Dir(), ln.Addr())
	if err := http.Serve(ln, remote.NewServer(store)); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "eclcached:", err)
	os.Exit(1)
}
