// Command eclvet is the batch front end to the ECL static analyzer:
// it compiles every requested module through the cached pipeline and
// reports the analyzer's findings without writing any artifacts.
//
// Usage:
//
//	eclvet [flags] file.ecl [file2.ecl ... | dir]
//
// With a single file and no -module flag, eclvet analyzes the last
// module in the file (the eclc convention). With several files, a
// directory, or -all, it analyzes every module of every input
// concurrently over internal/driver's worker pool.
//
// -rules filters the report to a comma-separated set of rule IDs
// (e.g. -rules ECL001,ECL022); -severity filters by severity (error
// keeps only the value-flow certainties, warning only the heuristics);
// -json emits the findings as a JSON array on stdout instead of one
// line per finding; -list prints the rule table and exits. Findings go
// to stdout; build failures go to stderr.
//
// Exit status: 0 when every module analyzed clean, 1 when there were
// findings, 2 when a module failed to compile (or the command line was
// unusable).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"

	"repro/internal/analyze"
	"repro/internal/cache"
	"repro/internal/cache/remote"
	"repro/internal/core"
	"repro/internal/driver"
	"repro/internal/lower"
	"repro/internal/pipeline"
)

func main() {
	module := flag.String("module", "", "module to analyze (default: last module per file, or every module in batch mode)")
	all := flag.Bool("all", false, "analyze every module of every input file")
	rulesFlag := flag.String("rules", "", "comma-separated rule IDs to report (default: all)")
	severity := flag.String("severity", "", "only report findings of this severity: error or warning (default: all)")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	list := flag.Bool("list", false, "print the rule table and exit")
	policy := flag.String("policy", "maximal", "splitter policy: maximal or minimal")
	minimize := flag.Bool("minimize", false, "minimize the EFSM before analysis")
	jobs := flag.Int("jobs", 0, "max concurrent module builds (0 = GOMAXPROCS)")
	cacheDir := flag.String("cache-dir", "", "persistent cache directory (default $ECL_CACHE_DIR, else the user cache dir)")
	noDiskCache := flag.Bool("no-disk-cache", false, "disable the persistent on-disk cache")
	remoteCache := flag.String("remote-cache", os.Getenv(remote.EnvURL),
		"shared remote cache server URL (default $"+remote.EnvURL+"; empty disables)")
	explain := flag.Bool("explain", false, "print per-phase cache decisions (hit/miss/rebuilt) after the run")
	flag.Parse()

	if *list {
		for _, r := range analyze.Rules() {
			fmt.Printf("%s\t%-6s\t%-7s\t%s\n", r.ID, r.Level, r.Severity, r.Doc)
		}
		return
	}
	switch *severity {
	case "", analyze.SeverityError, analyze.SeverityWarning:
	default:
		fatal(fmt.Errorf("unknown severity %q (error or warning)", *severity))
	}
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: eclvet [flags] file.ecl [file2.ecl ... | dir]")
		flag.Usage()
		os.Exit(2)
	}

	keep, err := parseRules(*rulesFlag)
	if err != nil {
		fatal(err)
	}

	opts := core.Options{Minimize: *minimize}
	switch *policy {
	case "maximal":
		opts.Policy = lower.MaximalReactive
	case "minimal":
		opts.Policy = lower.MinimalReactive
	default:
		fatal(fmt.Errorf("unknown policy %q", *policy))
	}

	paths, sawDir, err := driver.CollectInputs(flag.Args())
	if err != nil {
		fatal(err)
	}
	d := driver.New(*jobs)
	if !*noDiskCache {
		store, err := cache.Open(*cacheDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "eclvet: disk cache disabled: %v\n", err)
		} else {
			d.Disk = store
		}
	}
	if *remoteCache != "" {
		rc, err := remote.Dial(*remoteCache)
		if err != nil {
			fmt.Fprintf(os.Stderr, "eclvet: remote cache disabled: %v\n", err)
		} else {
			d.Remote = rc
		}
	}

	batch := *all || sawDir || len(paths) > 1
	perFile := make([][]driver.Request, len(paths))
	var wg sync.WaitGroup
	for i, path := range paths {
		seed := driver.Request{Path: path, Module: *module, Options: opts, Analyze: true}
		if *module != "" || !batch {
			perFile[i] = []driver.Request{seed}
			continue
		}
		// Expanding through the build driver shares each file's front
		// end with the per-module analysis builds below.
		wg.Add(1)
		go func(i int, seed driver.Request) {
			defer wg.Done()
			if expanded, err := d.ExpandModules(seed); err == nil {
				perFile[i] = expanded
			} else {
				perFile[i] = []driver.Request{seed}
			}
		}(i, seed)
	}
	wg.Wait()
	var reqs []driver.Request
	for _, rs := range perFile {
		reqs = append(reqs, rs...)
	}
	results, _ := d.Build(context.Background(), reqs)
	if d.Remote != nil {
		d.Remote.Close()
	}
	if *explain {
		printExplain(d, results)
	}

	failed := false
	var findings []analyze.Finding
	seen := map[string]bool{} // dedup file-scope findings repeated per module
	for i := range results {
		res := &results[i]
		if res.Failed() {
			failed = true
			if len(res.Diags) == 0 {
				fmt.Fprintf(os.Stderr, "eclvet: %s: %v\n", res.Path, res.Err)
			}
			for _, diag := range res.Diags {
				fmt.Fprintf(os.Stderr, "eclvet: %s\n", diag)
			}
			continue
		}
		// Module findings plus the file's design-level findings; the
		// latter repeat for every module of the file and dedup away.
		merged := analyze.Filter(res.Findings, keep)
		merged = append(merged, analyze.Filter(res.FileFindings, keep)...)
		for _, f := range analyze.FilterSeverity(merged, *severity) {
			if line := f.String(); !seen[line] {
				seen[line] = true
				findings = append(findings, f)
			}
		}
	}
	analyze.Sort(findings)

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []analyze.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fatal(err)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}

	switch {
	case failed:
		os.Exit(2)
	case len(findings) > 0:
		os.Exit(1)
	}
}

// parseRules validates a comma-separated -rules value against the
// shipped rule table; nil (report everything) for the empty string.
func parseRules(s string) ([]string, error) {
	if s == "" {
		return nil, nil
	}
	known := make(map[string]bool)
	for _, id := range analyze.RuleIDs() {
		known[id] = true
	}
	var keep []string
	for _, id := range strings.Split(s, ",") {
		id = strings.TrimSpace(id)
		if id == "" {
			continue
		}
		if !known[id] {
			return nil, fmt.Errorf("unknown rule %q (eclvet -list prints the rule table)", id)
		}
		keep = append(keep, id)
	}
	if keep == nil {
		return nil, fmt.Errorf("empty -rules value")
	}
	return keep, nil
}

// printExplain mirrors eclc -explain: one grep-able key=value line per
// phase walked, then the per-phase totals.
func printExplain(d *driver.Driver, results []driver.Result) {
	for i := range results {
		res := &results[i]
		for _, ph := range res.Phases {
			key := ph.Key
			if len(key) > 12 {
				key = key[:12]
			}
			if key == "" {
				key = "-"
			}
			fmt.Fprintf(os.Stderr, "eclvet: explain file=%s module=%s phase=%s status=%s key=%s\n",
				res.Path, res.Module, ph.Phase, ph.Status, key)
		}
	}
	phases := d.CacheStats().Phases
	for _, ph := range pipeline.AllPhases() {
		c, ok := phases[ph]
		if !ok {
			continue
		}
		fmt.Fprintf(os.Stderr,
			"eclvet: phase-stats phase=%s mem-hits=%d disk-hits=%d remote-hits=%d shared=%d rebuilds=%d failures=%d\n",
			ph, c.MemHits, c.DiskHits, c.RemoteHits, c.Shared, c.Rebuilds, c.Failures)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "eclvet:", err)
	os.Exit(2)
}
