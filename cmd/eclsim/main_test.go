package main

import (
	"bufio"
	"errors"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

func buildEclsim(t *testing.T) string {
	t.Helper()
	if testing.Short() {
		t.Skip("short mode: skipping binary end-to-end test")
	}
	exe := filepath.Join(t.TempDir(), "eclsim")
	out, err := exec.Command("go", "build", "-o", exe, ".").CombinedOutput()
	if err != nil {
		t.Skipf("go build unavailable: %v\n%s", err, out)
	}
	return exe
}

// TestReplayDivergenceExitsNonZero is the regression test for the
// -replay contract: a trace that does not reproduce must fail the
// process (non-zero exit) and print the first divergence position —
// not just succeed quietly or report a bare length mismatch.
func TestReplayDivergenceExitsNonZero(t *testing.T) {
	exe := buildEclsim(t)
	dir := t.TempDir()
	abro, err := filepath.Abs("../../examples/abro.ecl")
	if err != nil {
		t.Fatal(err)
	}

	// Record a real 5-instant ABRO run: idle, A, B (O emits at
	// instant 2 — await starts counting from the next instant), idle,
	// R.
	script := filepath.Join(dir, "in.script")
	if err := os.WriteFile(script, []byte("\nA\nB\n\nR\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	trace := filepath.Join(dir, "run.jsonl")
	if out, err := exec.Command(exe, "-script", script, "-trace", trace, abro).CombinedOutput(); err != nil {
		t.Fatalf("record: %v\n%s", err, out)
	}

	// A faithful replay must succeed.
	if out, err := exec.Command(exe, "-replay", trace, abro).CombinedOutput(); err != nil {
		t.Fatalf("faithful replay failed: %v\n%s", err, out)
	}

	// Tamper with instant 2's recorded output: O -> WRONG.
	data, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	tampered := strings.Replace(string(data), `"O"`, `"WRONG"`, 1)
	if tampered == string(data) {
		t.Fatalf("trace has no O emission to tamper with:\n%s", data)
	}
	bad := filepath.Join(dir, "bad.jsonl")
	if err := os.WriteFile(bad, []byte(tampered), 0o644); err != nil {
		t.Fatal(err)
	}

	cmd := exec.Command(exe, "-replay", bad, abro)
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("diverging replay exited zero:\n%s", out)
	}
	var exitErr *exec.ExitError
	if ok := strings.Contains(err.Error(), "exit status"); !ok {
		t.Fatalf("unexpected failure mode: %v", err)
	} else if cmd.ProcessState.ExitCode() != 1 {
		t.Fatalf("exit code = %d, want 1 (%v)", cmd.ProcessState.ExitCode(), exitErr)
	}
	if !strings.Contains(string(out), "diverged at instant 2") {
		t.Fatalf("divergence position not reported:\n%s", out)
	}

	// A truncated recording must also name the first missing instant
	// rather than a bare length mismatch.
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	short := strings.Join(lines[:len(lines)-1], "\n") + "\n"
	shortPath := filepath.Join(dir, "short.jsonl")
	if err := os.WriteFile(shortPath, []byte(short), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd = exec.Command(exe, "-replay", shortPath, abro)
	out, err = cmd.CombinedOutput()
	if err != nil {
		// The machine replays exactly the recorded inputs, so a pure
		// truncation replays cleanly; only assert it doesn't crash.
		t.Fatalf("truncated replay crashed: %v\n%s", err, out)
	}
}

// TestWriteFileAtomicPreservesDestinationOnFailure is the regression
// test for the truncated-trace bug: -trace used to os.Create the
// destination and encode into it directly, so a mid-encode failure
// left a truncated, unreplayable file. The atomic writer must leave an
// existing destination byte-identical when the write fails partway,
// and clean up its temp file.
func TestWriteFileAtomicPreservesDestinationOnFailure(t *testing.T) {
	dir := t.TempDir()
	dst := filepath.Join(dir, "trace.jsonl")
	good := "{\"instant\":0}\n{\"instant\":1}\n"
	if err := os.WriteFile(dst, []byte(good), 0o644); err != nil {
		t.Fatal(err)
	}

	// A writer that emits half its payload and then fails, like an
	// encoder hitting a full disk mid-stream.
	injected := errors.New("injected mid-encode failure")
	err := writeFileAtomic(dst, func(w io.Writer) error {
		if _, err := io.WriteString(w, "{\"instant\":0}\n{\"ins"); err != nil {
			return err
		}
		return injected
	})
	if !errors.Is(err, injected) {
		t.Fatalf("err = %v, want the injected failure", err)
	}
	data, err := os.ReadFile(dst)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != good {
		t.Fatalf("failed write clobbered the destination:\n%q", data)
	}
	assertNoTempFiles(t, dir)

	// A successful write replaces the content whole.
	if err := writeFileAtomic(dst, func(w io.Writer) error {
		_, err := io.WriteString(w, "{\"instant\":9}\n")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if data, _ := os.ReadFile(dst); string(data) != "{\"instant\":9}\n" {
		t.Fatalf("successful write produced %q", data)
	}
	assertNoTempFiles(t, dir)
}

func assertNoTempFiles(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("temp dropping left behind: %s", e.Name())
		}
	}
}

// TestTraceBinaryWritesReplayableFile drives the real binary: a
// recorded trace must land complete (replayable by the same binary)
// with no temp droppings next to it.
func TestTraceBinaryWritesReplayableFile(t *testing.T) {
	exe := buildEclsim(t)
	dir := t.TempDir()
	abro, err := filepath.Abs("../../examples/abro.ecl")
	if err != nil {
		t.Fatal(err)
	}
	trace := filepath.Join(dir, "run.jsonl")
	if out, err := exec.Command(exe, "-n", "3", "-trace", trace, abro).CombinedOutput(); err != nil {
		t.Fatalf("record: %v\n%s", err, out)
	}
	if out, err := exec.Command(exe, "-replay", trace, abro).CombinedOutput(); err != nil {
		t.Fatalf("replay of freshly written trace failed: %v\n%s", err, out)
	}
	assertNoTempFiles(t, dir)

	// An unwritable destination must fail loudly and leave nothing
	// half-written anywhere under it.
	if out, err := exec.Command(exe, "-n", "1", "-trace", filepath.Join(dir, "missing", "t.jsonl"), abro).CombinedOutput(); err == nil {
		t.Fatalf("write into a missing directory exited zero:\n%s", out)
	}
}

// TestConnectModeAgainstDaemon drives the full remote loop with the
// real binaries: eclsim -connect ships the source to a running
// eclsimd, steps a script in batches, records the conversation as a
// trace — and that trace must replay clean both locally and back
// through the daemon.
func TestConnectModeAgainstDaemon(t *testing.T) {
	exe := buildEclsim(t)
	daemon := filepath.Join(t.TempDir(), "eclsimd")
	if out, err := exec.Command("go", "build", "-o", daemon, "repro/cmd/eclsimd").CombinedOutput(); err != nil {
		t.Skipf("go build unavailable: %v\n%s", err, out)
	}
	dir := t.TempDir()
	abro, err := filepath.Abs("../../examples/abro.ecl")
	if err != nil {
		t.Fatal(err)
	}

	cmd := exec.Command(daemon, "-addr", "127.0.0.1:0", "-cache-dir", t.TempDir())
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cmd.Process.Kill(); cmd.Wait() })
	var url string
	sc := bufio.NewScanner(stderr)
	for sc.Scan() {
		if m := regexp.MustCompile(`serving on (127\.0\.0\.1:\d+)$`).FindStringSubmatch(sc.Text()); m != nil {
			url = "http://" + m[1]
			break
		}
	}
	if url == "" {
		t.Fatal("eclsimd never announced its address")
	}

	script := filepath.Join(dir, "in.script")
	if err := os.WriteFile(script, []byte("\nA\nB\n\nR\nA B\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	trace := filepath.Join(dir, "run.jsonl")
	out, err := exec.Command(exe, "-connect", url, "-batch", "2",
		"-script", script, "-trace", trace, abro).CombinedOutput()
	if err != nil {
		t.Fatalf("connect run: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "out=[O]") {
		t.Fatalf("AB did not emit O through the daemon:\n%s", out)
	}

	// The daemon conversation is a replayable trace: locally...
	if out, err := exec.Command(exe, "-backend", "interp", "-replay", trace, abro).CombinedOutput(); err != nil {
		t.Fatalf("local replay of daemon trace failed: %v\n%s", err, out)
	}
	// ...and back through the daemon itself.
	if out, err := exec.Command(exe, "-connect", url, "-replay", trace, abro).CombinedOutput(); err != nil {
		t.Fatalf("daemon replay of daemon trace failed: %v\n%s", err, out)
	} else if !strings.Contains(string(out), "replay ok") {
		t.Fatalf("daemon replay output:\n%s", out)
	}

	// A script naming a non-input must fail with the valid input list.
	bad := filepath.Join(dir, "bad.script")
	if err := os.WriteFile(bad, []byte("NOPE\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if out, err := exec.Command(exe, "-connect", url, "-script", bad, abro).CombinedOutput(); err == nil {
		t.Fatalf("bad script exited zero:\n%s", out)
	} else if !strings.Contains(string(out), "unknown input") {
		t.Fatalf("bad script error:\n%s", out)
	}
}
