package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func buildEclsim(t *testing.T) string {
	t.Helper()
	if testing.Short() {
		t.Skip("short mode: skipping binary end-to-end test")
	}
	exe := filepath.Join(t.TempDir(), "eclsim")
	out, err := exec.Command("go", "build", "-o", exe, ".").CombinedOutput()
	if err != nil {
		t.Skipf("go build unavailable: %v\n%s", err, out)
	}
	return exe
}

// TestReplayDivergenceExitsNonZero is the regression test for the
// -replay contract: a trace that does not reproduce must fail the
// process (non-zero exit) and print the first divergence position —
// not just succeed quietly or report a bare length mismatch.
func TestReplayDivergenceExitsNonZero(t *testing.T) {
	exe := buildEclsim(t)
	dir := t.TempDir()
	abro, err := filepath.Abs("../../examples/abro.ecl")
	if err != nil {
		t.Fatal(err)
	}

	// Record a real 5-instant ABRO run: idle, A, B (O emits at
	// instant 2 — await starts counting from the next instant), idle,
	// R.
	script := filepath.Join(dir, "in.script")
	if err := os.WriteFile(script, []byte("\nA\nB\n\nR\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	trace := filepath.Join(dir, "run.jsonl")
	if out, err := exec.Command(exe, "-script", script, "-trace", trace, abro).CombinedOutput(); err != nil {
		t.Fatalf("record: %v\n%s", err, out)
	}

	// A faithful replay must succeed.
	if out, err := exec.Command(exe, "-replay", trace, abro).CombinedOutput(); err != nil {
		t.Fatalf("faithful replay failed: %v\n%s", err, out)
	}

	// Tamper with instant 2's recorded output: O -> WRONG.
	data, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	tampered := strings.Replace(string(data), `"O"`, `"WRONG"`, 1)
	if tampered == string(data) {
		t.Fatalf("trace has no O emission to tamper with:\n%s", data)
	}
	bad := filepath.Join(dir, "bad.jsonl")
	if err := os.WriteFile(bad, []byte(tampered), 0o644); err != nil {
		t.Fatal(err)
	}

	cmd := exec.Command(exe, "-replay", bad, abro)
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("diverging replay exited zero:\n%s", out)
	}
	var exitErr *exec.ExitError
	if ok := strings.Contains(err.Error(), "exit status"); !ok {
		t.Fatalf("unexpected failure mode: %v", err)
	} else if cmd.ProcessState.ExitCode() != 1 {
		t.Fatalf("exit code = %d, want 1 (%v)", cmd.ProcessState.ExitCode(), exitErr)
	}
	if !strings.Contains(string(out), "diverged at instant 2") {
		t.Fatalf("divergence position not reported:\n%s", out)
	}

	// A truncated recording must also name the first missing instant
	// rather than a bare length mismatch.
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	short := strings.Join(lines[:len(lines)-1], "\n") + "\n"
	shortPath := filepath.Join(dir, "short.jsonl")
	if err := os.WriteFile(shortPath, []byte(short), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd = exec.Command(exe, "-replay", shortPath, abro)
	out, err = cmd.CombinedOutput()
	if err != nil {
		// The machine replays exactly the recorded inputs, so a pure
		// truncation replays cleanly; only assert it doesn't crash.
		t.Fatalf("truncated replay crashed: %v\n%s", err, out)
	}
}
