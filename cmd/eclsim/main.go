// Command eclsim simulates a compiled ECL module against an input
// script. Each script line is one instant: a whitespace-separated list
// of present inputs, with values as name=int for valued signals; blank
// lines and '#' comments are idle instants. The simulator prints the
// emitted outputs per instant.
//
// Usage:
//
//	eclsim [-module name] [-mode interp|efsm] [-n instants] [-script file] file.ecl
//
// Without a script, eclsim runs -n idle instants (useful for modules
// driven by empty await() delta cycles).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/cval"
	"repro/internal/driver"
	"repro/internal/interp"
	"repro/internal/kernel"
)

func main() {
	module := flag.String("module", "", "module to simulate (default: last in file)")
	mode := flag.String("mode", "efsm", "execution engine: interp (reference) or efsm (compiled)")
	script := flag.String("script", "", "input script file (one instant per line)")
	n := flag.Int("n", 10, "idle instants to run when no script is given")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: eclsim [flags] file.ecl")
		flag.Usage()
		os.Exit(2)
	}
	res := driver.New(1).BuildOne(driver.Request{Path: flag.Arg(0), Module: *module})
	if res.Failed() {
		for _, diag := range res.Diags {
			fmt.Fprintf(os.Stderr, "eclsim: %s\n", diag)
		}
		os.Exit(1)
	}
	design := res.Design

	var lines []string
	if *script != "" {
		f, err := os.Open(*script)
		if err != nil {
			fatal(err)
		}
		sc := bufio.NewScanner(f)
		for sc.Scan() {
			lines = append(lines, sc.Text())
		}
		f.Close()
	} else {
		lines = make([]string, *n)
	}

	sigByName := map[string]*kernel.Signal{}
	for _, s := range design.Lowered.Module.Inputs {
		sigByName[s.Name] = s
	}

	var stepInterp *interp.Machine
	var stepEFSM = design.Runtime()
	if *mode == "interp" {
		stepInterp = design.Interpreter()
	}

	for i, line := range lines {
		line = strings.TrimSpace(line)
		if idx := strings.IndexByte(line, '#'); idx >= 0 {
			line = strings.TrimSpace(line[:idx])
		}
		inputs := map[*kernel.Signal]cval.Value{}
		for _, tok := range strings.Fields(line) {
			name, valText, hasVal := strings.Cut(tok, "=")
			sig := sigByName[name]
			if sig == nil {
				fatal(fmt.Errorf("instant %d: unknown input %q", i, name))
			}
			var v cval.Value
			if hasVal {
				x, err := strconv.ParseInt(valText, 0, 64)
				if err != nil {
					fatal(fmt.Errorf("instant %d: bad value %q", i, tok))
				}
				v = cval.FromInt(sig.Type, x)
			}
			inputs[sig] = v
		}

		var outs []string
		var terminated bool
		if stepInterp != nil {
			r, err := stepInterp.React(inputs)
			if err != nil {
				fatal(fmt.Errorf("instant %d: %w", i, err))
			}
			for s, v := range r.Outputs {
				outs = append(outs, formatOut(s, v))
			}
			terminated = r.Terminated
		} else {
			r, err := stepEFSM.Step(inputs)
			if err != nil {
				fatal(fmt.Errorf("instant %d: %w", i, err))
			}
			for s, v := range r.Outputs {
				outs = append(outs, formatOut(s, v))
			}
			terminated = r.Terminated
		}
		sort.Strings(outs)
		fmt.Printf("instant %3d: in=[%s] out=[%s]\n", i, line, strings.Join(outs, " "))
		if terminated {
			fmt.Println("program terminated")
			break
		}
	}
}

func formatOut(s *kernel.Signal, v cval.Value) string {
	if v.IsValid() {
		return s.Name + "=" + v.String()
	}
	return s.Name
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "eclsim:", err)
	os.Exit(1)
}
