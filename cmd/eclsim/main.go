// Command eclsim simulates a compiled ECL module against an input
// script through the unified execution API (internal/exec). Each
// script line is one instant: a whitespace-separated list of present
// inputs, with values as name=int for valued signals; blank lines and
// '#' comments are idle instants. The simulator prints the emitted
// outputs per instant. Script lines naming a signal that is not an
// input of the module are rejected with the valid input list.
//
// Usage:
//
//	eclsim [-module name] [-backend interp|efsm|efsm-min|sim] [-n instants]
//	       [-script file] [-trace out.jsonl] [-replay in.jsonl]
//	       [-connect URL [-batch n]] file.ecl
//
// Without a script, eclsim runs -n idle instants (useful for modules
// driven by empty await() delta cycles). -trace records the run as a
// canonical JSONL trace; -replay drives the machine with a recorded
// trace's inputs instead of a script and diffs the outputs against the
// recording — so a trace captured on one backend checks another. A
// replay that does not reproduce the recording exits non-zero and
// prints the first diverging instant (also when one trace is a strict
// prefix of the other), so CI can gate on it directly.
//
// With -connect, eclsim executes nothing locally: it ships the source
// file to a running eclsimd daemon, opens a machine there, and steps it
// in batches of -batch instants per round trip. Scripts, -trace, and
// -replay work identically in this mode — the daemon speaks the
// canonical trace encoding on the wire, so a recorded daemon run and a
// local run are the same artifact.
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/cval"
	"repro/internal/driver"
	"repro/internal/exec"
	"repro/internal/simd"
)

func main() {
	module := flag.String("module", "", "module to simulate (default: last in file)")
	backend := flag.String("backend", "", "execution backend: "+strings.Join(exec.Backends(), ", ")+" (default efsm)")
	script := flag.String("script", "", "input script file (one instant per line)")
	tracePath := flag.String("trace", "", "record the run as a JSONL trace to this file")
	replayPath := flag.String("replay", "", "replay a recorded JSONL trace and diff the outputs")
	n := flag.Int("n", 10, "idle instants to run when no script is given")
	connect := flag.String("connect", "", "drive a running eclsimd daemon at this URL instead of executing locally")
	batch := flag.Int("batch", 64, "instants per daemon round trip in -connect mode")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: eclsim [flags] file.ecl")
		flag.Usage()
		os.Exit(2)
	}
	name := *backend
	if *connect != "" {
		// Connected mode: the daemon compiles and executes; an empty
		// backend name defers to the daemon's default.
		runConnected(*connect, flag.Arg(0), *module, name, *script, *tracePath, *replayPath, *n, *batch)
		return
	}
	if name == "" {
		name = "efsm"
	}

	res := driver.New(1).BuildOne(driver.Request{Path: flag.Arg(0), Module: *module})
	if res.Failed() {
		for _, diag := range res.Diags {
			fmt.Fprintf(os.Stderr, "eclsim: %s\n", diag)
		}
		os.Exit(1)
	}
	m, err := exec.Open(name, res.Design)
	if err != nil {
		fatal(err)
	}

	if *replayPath != "" {
		replay(m, *replayPath)
		return
	}

	var lines []string
	if *script != "" {
		f, err := os.Open(*script)
		if err != nil {
			fatal(err)
		}
		sc := bufio.NewScanner(f)
		for sc.Scan() {
			lines = append(lines, sc.Text())
		}
		f.Close()
	} else {
		lines = make([]string, *n)
	}
	instants, err := exec.ParseScript(m, lines)
	if err != nil {
		fatal(err)
	}

	trace := exec.NewTrace(m.Module(), m.Backend())
	for i, in := range instants {
		r, err := m.Step(in)
		if err != nil {
			fatal(fmt.Errorf("instant %d: %w", i, err))
		}
		trace.Append(in, r)
		var outs []string
		for name, v := range r.Outputs {
			outs = append(outs, formatOut(name, v))
		}
		sort.Strings(outs)
		line := lines[i]
		if idx := strings.IndexByte(line, '#'); idx >= 0 {
			line = line[:idx]
		}
		fmt.Printf("instant %3d: in=[%s] out=[%s]\n", i, strings.TrimSpace(line), strings.Join(outs, " "))
		if r.Terminated {
			fmt.Println("program terminated")
			break
		}
	}
	if *tracePath != "" {
		if err := writeFileAtomic(*tracePath, trace.Encode); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "eclsim: trace (%d instants) written to %s\n", len(trace.Events), *tracePath)
	}
}

// runConnected drives a machine living on an eclsimd daemon instead of
// executing locally: open with the source shipped inline, step the
// script (or replay a recorded trace) in batches, close. The daemon
// answers in the canonical trace encoding, so the printed instants and
// any -trace file match what a local run would produce.
func runConnected(daemonURL, path, module, backend, script, tracePath, replayPath string, n, batch int) {
	src, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	c, err := simd.Dial(daemonURL)
	if err != nil {
		fatal(err)
	}
	info, err := c.Open(simd.OpenRequest{
		Path:    filepath.Base(path),
		Source:  string(src),
		Module:  module,
		Backend: backend,
	})
	if err != nil {
		fatal(err)
	}
	defer c.Close(info.ID)

	if replayPath != "" {
		f, err := os.Open(replayPath)
		if err != nil {
			fatal(err)
		}
		recorded, err := exec.ReadTrace(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		inputs := make([]map[string]string, len(recorded.Events))
		for i, ev := range recorded.Events {
			inputs[i] = ev.Inputs
		}
		events, err := c.StepAll(info.ID, inputs, batch)
		if err != nil {
			fatal(err)
		}
		got := &exec.Trace{Version: exec.TraceVersion, Module: info.Module, Backend: info.Backend, Events: events}
		reportDiff(recorded, got, info.Backend+" (daemon)")
		return
	}

	var lines []string
	if script != "" {
		f, err := os.Open(script)
		if err != nil {
			fatal(err)
		}
		sc := bufio.NewScanner(f)
		for sc.Scan() {
			lines = append(lines, sc.Text())
		}
		f.Close()
	} else {
		lines = make([]string, n)
	}
	inputs := make([]map[string]string, len(lines))
	for i, line := range lines {
		in, err := simd.ParseScriptInstant(info.Inputs, line)
		if err != nil {
			fatal(fmt.Errorf("script line %d: %w", i+1, err))
		}
		inputs[i] = in
	}
	events, stepErr := c.StepAll(info.ID, inputs, batch)
	for _, ev := range events {
		fmt.Printf("instant %3d: in=[%s] out=[%s]\n", ev.Instant,
			exec.ObservationString(ev.Inputs, false),
			exec.ObservationString(ev.Outputs, false))
	}
	if stepErr != nil {
		fatal(stepErr)
	}
	if len(events) > 0 && events[len(events)-1].Terminated {
		fmt.Println("program terminated")
	}
	if tracePath != "" {
		t := &exec.Trace{Version: exec.TraceVersion, Module: info.Module, Backend: info.Backend, Events: events}
		if err := writeFileAtomic(tracePath, t.Encode); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "eclsim: trace (%d instants) written to %s\n", len(t.Events), tracePath)
	}
}

// writeFileAtomic streams write into a temp file next to path and
// renames it into place — the same discipline as internal/cache — so a
// mid-encode failure (full disk, crash) can never leave a truncated,
// unreplayable trace at the destination, and an existing trace there
// survives a failed rewrite.
func writeFileAtomic(path string, write func(io.Writer) error) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".trace-*.tmp")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	// CreateTemp's 0600 would stick after the rename; traces are meant
	// to be shared (replayed by other users/CI steps), so restore the
	// os.Create-era world-readable mode.
	if err := tmp.Chmod(0o644); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := write(tmp); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return nil
}

// replay drives the machine with a recorded trace and diffs outputs,
// exiting non-zero (with the first diverging instant) on mismatch.
func replay(m exec.Machine, path string) {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	recorded, err := exec.ReadTrace(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	got, err := exec.Replay(m, recorded)
	if err != nil {
		fatal(err)
	}
	reportDiff(recorded, got, m.Backend())
}

// reportDiff diffs a replay against its recording, exiting non-zero
// (with the first diverging instant) on mismatch.
func reportDiff(recorded, got *exec.Trace, backend string) {
	if err := exec.Diff(recorded, got); err != nil {
		var de *exec.DiffError
		if errors.As(err, &de) {
			fmt.Fprintf(os.Stderr, "eclsim: replay diverged at instant %d (%s vs %s):\n  recorded: [%s]\n  got:      [%s]\n",
				de.Instant, recorded.Backend, backend, de.A, de.B)
		} else {
			fmt.Fprintf(os.Stderr, "eclsim: replay diverged (%s vs %s): %v\n",
				recorded.Backend, backend, err)
		}
		os.Exit(1)
	}
	fmt.Printf("replay ok: %d instants, %s trace reproduced on %s\n",
		len(recorded.Events), recorded.Backend, backend)
}

func formatOut(name string, v cval.Value) string {
	if v.IsValid() {
		return name + "=" + v.String()
	}
	return name
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "eclsim:", err)
	os.Exit(1)
}
