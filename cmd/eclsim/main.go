// Command eclsim simulates a compiled ECL module against an input
// script through the unified execution API (internal/exec). Each
// script line is one instant: a whitespace-separated list of present
// inputs, with values as name=int for valued signals; blank lines and
// '#' comments are idle instants. The simulator prints the emitted
// outputs per instant. Script lines naming a signal that is not an
// input of the module are rejected with the valid input list.
//
// Usage:
//
//	eclsim [-module name] [-backend interp|efsm|efsm-min|sim] [-n instants]
//	       [-script file] [-trace out.jsonl] [-replay in.jsonl] file.ecl
//
// Without a script, eclsim runs -n idle instants (useful for modules
// driven by empty await() delta cycles). -trace records the run as a
// canonical JSONL trace; -replay drives the machine with a recorded
// trace's inputs instead of a script and diffs the outputs against the
// recording — so a trace captured on one backend checks another. A
// replay that does not reproduce the recording exits non-zero and
// prints the first diverging instant (also when one trace is a strict
// prefix of the other), so CI can gate on it directly.
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/cval"
	"repro/internal/driver"
	"repro/internal/exec"
)

func main() {
	module := flag.String("module", "", "module to simulate (default: last in file)")
	backend := flag.String("backend", "", "execution backend: "+strings.Join(exec.Backends(), ", ")+" (default efsm)")
	mode := flag.String("mode", "", "deprecated alias for -backend")
	script := flag.String("script", "", "input script file (one instant per line)")
	tracePath := flag.String("trace", "", "record the run as a JSONL trace to this file")
	replayPath := flag.String("replay", "", "replay a recorded JSONL trace and diff the outputs")
	n := flag.Int("n", 10, "idle instants to run when no script is given")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: eclsim [flags] file.ecl")
		flag.Usage()
		os.Exit(2)
	}
	name := *backend
	if name == "" && *mode != "" {
		fmt.Fprintln(os.Stderr, "eclsim: -mode is deprecated, use -backend")
		name = *mode
	}
	if name == "" {
		name = "efsm"
	}

	res := driver.New(1).BuildOne(driver.Request{Path: flag.Arg(0), Module: *module})
	if res.Failed() {
		for _, diag := range res.Diags {
			fmt.Fprintf(os.Stderr, "eclsim: %s\n", diag)
		}
		os.Exit(1)
	}
	m, err := exec.Open(name, res.Design)
	if err != nil {
		fatal(err)
	}

	if *replayPath != "" {
		replay(m, *replayPath)
		return
	}

	var lines []string
	if *script != "" {
		f, err := os.Open(*script)
		if err != nil {
			fatal(err)
		}
		sc := bufio.NewScanner(f)
		for sc.Scan() {
			lines = append(lines, sc.Text())
		}
		f.Close()
	} else {
		lines = make([]string, *n)
	}
	instants, err := exec.ParseScript(m, lines)
	if err != nil {
		fatal(err)
	}

	trace := exec.NewTrace(m.Module(), m.Backend())
	for i, in := range instants {
		r, err := m.Step(in)
		if err != nil {
			fatal(fmt.Errorf("instant %d: %w", i, err))
		}
		trace.Append(in, r)
		var outs []string
		for name, v := range r.Outputs {
			outs = append(outs, formatOut(name, v))
		}
		sort.Strings(outs)
		line := lines[i]
		if idx := strings.IndexByte(line, '#'); idx >= 0 {
			line = line[:idx]
		}
		fmt.Printf("instant %3d: in=[%s] out=[%s]\n", i, strings.TrimSpace(line), strings.Join(outs, " "))
		if r.Terminated {
			fmt.Println("program terminated")
			break
		}
	}
	if *tracePath != "" {
		if err := writeFileAtomic(*tracePath, trace.Encode); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "eclsim: trace (%d instants) written to %s\n", len(trace.Events), *tracePath)
	}
}

// writeFileAtomic streams write into a temp file next to path and
// renames it into place — the same discipline as internal/cache — so a
// mid-encode failure (full disk, crash) can never leave a truncated,
// unreplayable trace at the destination, and an existing trace there
// survives a failed rewrite.
func writeFileAtomic(path string, write func(io.Writer) error) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".trace-*.tmp")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	// CreateTemp's 0600 would stick after the rename; traces are meant
	// to be shared (replayed by other users/CI steps), so restore the
	// os.Create-era world-readable mode.
	if err := tmp.Chmod(0o644); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := write(tmp); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return nil
}

// replay drives the machine with a recorded trace and diffs outputs,
// exiting non-zero (with the first diverging instant) on mismatch.
func replay(m exec.Machine, path string) {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	recorded, err := exec.ReadTrace(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	got, err := exec.Replay(m, recorded)
	if err != nil {
		fatal(err)
	}
	if err := exec.Diff(recorded, got); err != nil {
		var de *exec.DiffError
		if errors.As(err, &de) {
			fmt.Fprintf(os.Stderr, "eclsim: replay diverged at instant %d (%s vs %s):\n  recorded: [%s]\n  got:      [%s]\n",
				de.Instant, recorded.Backend, m.Backend(), de.A, de.B)
		} else {
			fmt.Fprintf(os.Stderr, "eclsim: replay diverged (%s vs %s): %v\n",
				recorded.Backend, m.Backend(), err)
		}
		os.Exit(1)
	}
	fmt.Printf("replay ok: %d instants, %s trace reproduced on %s\n",
		len(recorded.Events), recorded.Backend, m.Backend())
}

func formatOut(name string, v cval.Value) string {
	if v.IsValid() {
		return name + "=" + v.String()
	}
	return name
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "eclsim:", err)
	os.Exit(1)
}
