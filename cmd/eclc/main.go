// Command eclc is the ECL compiler driver: it reads an ECL source
// file, compiles one module, and writes the requested artifacts —
// mirroring the paper's flow (split to Esterel + C + glue, compile to
// an EFSM, synthesize software or hardware).
//
// Usage:
//
//	eclc [-module name] [-policy maximal|minimal] [-target list] [-o dir] file.ecl
//
// Targets (comma separated): esterel, c, go, glue, dot, verilog, vhdl,
// stats. Default: esterel,c,glue,stats written to the output directory
// (default ".").
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/core"
	"repro/internal/lower"
)

func main() {
	module := flag.String("module", "", "module to compile (default: last module in the file)")
	policy := flag.String("policy", "maximal", "splitter policy: maximal or minimal")
	target := flag.String("target", "esterel,c,glue,stats", "comma-separated targets: esterel,c,go,glue,dot,verilog,vhdl,stats")
	outDir := flag.String("o", ".", "output directory")
	minimize := flag.Bool("minimize", false, "minimize the EFSM before synthesis")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: eclc [flags] file.ecl")
		flag.Usage()
		os.Exit(2)
	}
	path := flag.Arg(0)
	src, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}

	opts := core.Options{Minimize: *minimize}
	switch *policy {
	case "maximal":
		opts.Policy = lower.MaximalReactive
	case "minimal":
		opts.Policy = lower.MinimalReactive
	default:
		fatal(fmt.Errorf("unknown policy %q", *policy))
	}

	prog, err := core.Parse(filepath.Base(path), string(src), opts)
	if err != nil {
		fatal(err)
	}
	mod := *module
	if mod == "" {
		mods := prog.Modules()
		if len(mods) == 0 {
			fatal(fmt.Errorf("no modules in %s", path))
		}
		mod = mods[len(mods)-1]
	}
	design, err := prog.Compile(mod)
	if err != nil {
		fatal(err)
	}

	base := filepath.Join(*outDir, mod)
	for _, t := range strings.Split(*target, ",") {
		switch strings.TrimSpace(t) {
		case "esterel":
			write(base+".strl", design.EsterelText())
		case "c":
			write(base+".c", design.CText())
		case "go":
			text, err := design.GoText(mod)
			if err != nil {
				fatal(err)
			}
			write(base+"_gen.go", text)
		case "glue":
			write(base+"_glue.h", design.GlueText())
		case "dot":
			write(base+".dot", design.DotText())
		case "verilog":
			text, err := design.VerilogText()
			if err != nil {
				fatal(err)
			}
			write(base+".v", text)
		case "vhdl":
			text, err := design.VHDLText()
			if err != nil {
				fatal(err)
			}
			write(base+".vhd", text)
		case "stats":
			st := design.Stats()
			fmt.Printf("module %s (policy %s):\n", mod, opts.Policy)
			fmt.Printf("  kernel nodes:   %d (pauses %d, emits %d, pars %d, aborts %d)\n",
				st.KernelStats.Nodes, st.KernelStats.Pauses, st.KernelStats.Emits,
				st.KernelStats.Pars, st.KernelStats.Aborts)
			fmt.Printf("  data functions: %d\n", st.DataFuncs)
			fmt.Printf("  EFSM:           %d states, %d transitions, %d tree nodes\n",
				st.EFSM.States, st.EFSM.Leaves, st.EFSM.TreeNodes)
			fmt.Printf("  image estimate: %d code bytes, %d data bytes (MIPS R3000)\n",
				st.Image.CodeBytes, st.Image.DataBytes)
		case "":
		default:
			fatal(fmt.Errorf("unknown target %q", t))
		}
	}
}

func write(path, content string) {
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "eclc:", err)
	os.Exit(1)
}
