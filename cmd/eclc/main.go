// Command eclc is the ECL compiler driver: it reads ECL source files,
// compiles their modules, and writes the requested artifacts —
// mirroring the paper's flow (split to Esterel + C + glue, compile to
// an EFSM, synthesize software or hardware).
//
// Usage:
//
//	eclc [flags] file.ecl [file2.ecl ... | dir]
//
// With a single file and no -module flag, eclc compiles the last
// module in the file (the historical behavior). With several files, a
// directory, or -all, it batch-compiles every module of every input
// concurrently over internal/driver's worker pool.
//
// Targets (comma separated): esterel, c, go, glue, dot, verilog, vhdl,
// stats. Default: esterel,c,glue,stats written to the output directory
// (default ".").
//
// Builds go through a tiered cache: the in-process design cache, a
// persistent on-disk artifact store (default $ECL_CACHE_DIR, else the
// user cache dir), and optionally a shared remote cache server
// (-remote-cache URL, default $ECL_REMOTE_CACHE — an eclcached
// instance), so a design compiled anywhere in a fleet is a hit
// everywhere. -no-disk-cache opts out of the disk tier, -cache-dir
// relocates the store, and -cache-stats reports every tier's hit
// rates. The store itself is managed with the cache subcommand:
//
//	eclc cache stats|gc|clear [-cache-dir dir] [-max-bytes n] [-max-age d]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/analyze"
	"repro/internal/cache"
	"repro/internal/cache/remote"
	"repro/internal/core"
	"repro/internal/driver"
	"repro/internal/lower"
	"repro/internal/pipeline"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "cache" {
		cacheCmd(os.Args[2:])
		return
	}

	module := flag.String("module", "", "module to compile (default: last module per file, or every module in batch mode)")
	all := flag.Bool("all", false, "compile every module of every input file")
	policy := flag.String("policy", "maximal", "splitter policy: maximal or minimal")
	target := flag.String("target", "esterel,c,glue,stats", "comma-separated targets: esterel,c,go,glue,dot,verilog,vhdl,stats")
	outDir := flag.String("o", ".", "output directory")
	minimize := flag.Bool("minimize", false, "minimize the EFSM before synthesis")
	vet := flag.Bool("vet", false, "run the static analyzer over each compiled module and report findings (exit 1 on any)")
	jobs := flag.Int("jobs", 0, "max concurrent module builds (0 = GOMAXPROCS)")
	cacheDir := flag.String("cache-dir", "", "persistent cache directory (default $ECL_CACHE_DIR, else the user cache dir)")
	noDiskCache := flag.Bool("no-disk-cache", false, "disable the persistent on-disk artifact cache")
	remoteCache := flag.String("remote-cache", os.Getenv(remote.EnvURL),
		"shared remote cache server URL (default $"+remote.EnvURL+"; empty disables)")
	cacheStats := flag.Bool("cache-stats", false, "report cache hit rates after the build")
	explain := flag.Bool("explain", false, "print per-phase cache decisions (hit/miss/rebuilt) after the build")
	flag.Parse()

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: eclc [flags] file.ecl [file2.ecl ... | dir]")
		fmt.Fprintln(os.Stderr, "       eclc cache stats|gc|clear [flags]")
		flag.Usage()
		os.Exit(2)
	}

	targets, err := driver.ParseTargets(*target)
	if err != nil {
		fatal(err)
	}
	opts := core.Options{Minimize: *minimize}
	switch *policy {
	case "maximal":
		opts.Policy = lower.MaximalReactive
	case "minimal":
		opts.Policy = lower.MinimalReactive
	default:
		fatal(fmt.Errorf("unknown policy %q", *policy))
	}

	paths, sawDir, err := driver.CollectInputs(flag.Args())
	if err != nil {
		fatal(err)
	}

	d := driver.New(*jobs)
	if !*noDiskCache {
		store, err := cache.Open(*cacheDir)
		if err != nil {
			// An unusable store (no writable cache dir) degrades to a
			// memory-only build rather than failing the compile.
			fmt.Fprintf(os.Stderr, "eclc: disk cache disabled: %v\n", err)
		} else {
			d.Disk = store
		}
	}
	if *remoteCache != "" {
		rc, err := remote.Dial(*remoteCache)
		if err != nil {
			// A malformed URL degrades to a local-only build; an
			// unreachable server already degrades inside the client.
			fmt.Fprintf(os.Stderr, "eclc: remote cache disabled: %v\n", err)
		} else {
			d.Remote = rc
		}
	}

	batch := *all || sawDir || len(paths) > 1
	perFile := make([][]driver.Request, len(paths))
	var wg sync.WaitGroup
	for i, path := range paths {
		seed := driver.Request{Path: path, Module: *module, Targets: targets, Options: opts, Analyze: *vet}
		if *module != "" || !batch {
			perFile[i] = []driver.Request{seed}
			continue
		}
		// Expand each file's module list concurrently. Expanding
		// through the build driver runs each file's front end exactly
		// once: the per-module builds below reuse the file unit
		// (phase=sem status=shared) instead of re-parsing. A file that
		// fails to expand (e.g. a parse error) still joins the batch
		// unexpanded: the driver reports it as a structured failure
		// while the other files compile.
		wg.Add(1)
		go func(i int, seed driver.Request) {
			defer wg.Done()
			if expanded, err := d.ExpandModules(seed); err == nil {
				perFile[i] = expanded
			} else {
				perFile[i] = []driver.Request{seed}
			}
		}(i, seed)
	}
	wg.Wait()
	var reqs []driver.Request
	for _, rs := range perFile {
		reqs = append(reqs, rs...)
	}

	results, _ := d.Build(context.Background(), reqs)
	if d.Remote != nil {
		// Drain the async uploads before reporting stats or exiting, so
		// a CI fleet's next build sees everything this one compiled.
		d.Remote.Close()
	}
	if *explain {
		printExplain(d, results)
	}
	if *cacheStats {
		printCacheStats(d)
	}

	failed := false
	vetFindings := 0
	seenFindings := map[string]bool{} // dedup file-scope findings across a file's modules
	writtenBy := map[string]string{}  // output path -> source file
	for i := range results {
		res := &results[i]
		for _, f := range append(append([]analyze.Finding(nil), res.Findings...), res.FileFindings...) {
			line := f.String()
			if seenFindings[line] {
				continue
			}
			seenFindings[line] = true
			vetFindings++
			fmt.Fprintf(os.Stderr, "eclc: vet: %s\n", line)
		}
		if res.Failed() {
			failed = true
			if len(res.Diags) == 0 {
				fmt.Fprintf(os.Stderr, "eclc: %s: %v\n", res.Path, res.Err)
			}
			for _, diag := range res.Diags {
				fmt.Fprintf(os.Stderr, "eclc: %s\n", diag)
			}
			continue
		}
		for _, t := range targets {
			text := res.Artifacts[t]
			if t == driver.TargetStats {
				fmt.Print(text)
				continue
			}
			out := filepath.Join(*outDir, t.Filename(res.Module))
			if prev, clash := writtenBy[out]; clash {
				failed = true
				fmt.Fprintf(os.Stderr,
					"eclc: %s: module %s collides with module of the same name in %s (both write %s); use separate -o directories\n",
					res.Path, res.Module, prev, out)
				break
			}
			writtenBy[out] = res.Path
			if err := os.WriteFile(out, []byte(text), 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s\n", out)
		}
	}
	if failed || vetFindings > 0 {
		os.Exit(1)
	}
}

// printExplain reports, per request, how each pipeline phase was
// satisfied, followed by the per-phase totals — one stable, grep-able
// key=value line per row (the CI incremental dogfood step greps
// `phase=efsm status=disk-hit` from it). A request served whole from
// the design-level cache shows the single pseudo-phase "design".
func printExplain(d *driver.Driver, results []driver.Result) {
	for i := range results {
		res := &results[i]
		for _, ph := range res.Phases {
			key := ph.Key
			if len(key) > 12 {
				key = key[:12]
			}
			if key == "" {
				key = "-"
			}
			fmt.Fprintf(os.Stderr, "eclc: explain file=%s module=%s phase=%s status=%s key=%s\n",
				res.Path, res.Module, ph.Phase, ph.Status, key)
		}
	}
	phases := d.CacheStats().Phases
	for _, ph := range pipeline.AllPhases() {
		c, ok := phases[ph]
		if !ok {
			continue
		}
		fmt.Fprintf(os.Stderr,
			"eclc: phase-stats phase=%s mem-hits=%d disk-hits=%d remote-hits=%d shared=%d rebuilds=%d failures=%d\n",
			ph, c.MemHits, c.DiskHits, c.RemoteHits, c.Shared, c.Rebuilds, c.Failures)
	}
}

// printCacheStats reports every tier in a stable, grep-able form (the
// CI dogfood steps parse disk-hit-rate and remote-hit-rate from it).
func printCacheStats(d *driver.Driver) {
	cs := d.CacheStats()
	rate := 0.0
	if probes := cs.DiskHits + cs.DiskMisses; probes > 0 {
		rate = 100 * float64(cs.DiskHits) / float64(probes)
	}
	remoteRate := 0.0
	if probes := cs.RemoteHits + cs.RemoteMisses; probes > 0 {
		remoteRate = 100 * float64(cs.RemoteHits) / float64(probes)
	}
	fmt.Fprintf(os.Stderr,
		"eclc: cache stats: mem-hits=%d mem-misses=%d disk-hits=%d disk-misses=%d disk-hit-rate=%.1f%% remote-hits=%d remote-misses=%d remote-hit-rate=%.1f%% remote-uploads=%d\n",
		cs.Hits, cs.Misses, cs.DiskHits, cs.DiskMisses, rate,
		cs.RemoteHits, cs.RemoteMisses, remoteRate, cs.RemoteUploads)
}

// cacheCmd implements `eclc cache stats|gc|clear`.
func cacheCmd(args []string) {
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: eclc cache stats|gc|clear [-cache-dir dir] [-max-bytes n] [-max-age d]")
		os.Exit(2)
	}
	sub, args := args[0], args[1:]
	fs := flag.NewFlagSet("eclc cache "+sub, flag.ExitOnError)
	cacheDir := fs.String("cache-dir", "", "persistent cache directory (default $ECL_CACHE_DIR, else the user cache dir)")
	maxBytes := fs.String("max-bytes", "1G", "gc: trim the store to this size (accepts K/M/G suffixes, 0 = unbounded)")
	maxAge := fs.Duration("max-age", 30*24*time.Hour, "gc: evict entries unused for longer (0 = unbounded)")
	fs.Parse(args)

	store, err := cache.Open(*cacheDir)
	if err != nil {
		fatal(err)
	}
	switch sub {
	case "stats":
		bytes, entries, err := store.Size()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("cache dir: %s\nentries:   %d\nsize:      %s\n", store.Dir(), entries, formatBytes(bytes))
		inv, err := store.PhaseInventory()
		if err != nil || len(inv) == 0 {
			break
		}
		// Per-phase table for the v2 subtree, in pipeline flow order
		// (grep-able: one phase=... line per populated phase).
		for _, ph := range pipeline.AllPhases() {
			info, ok := inv[string(ph)]
			if !ok {
				continue
			}
			fmt.Printf("phase=%s entries=%d size=%s\n", ph, info.Entries, formatBytes(info.Bytes))
			delete(inv, string(ph))
		}
		for name, info := range inv {
			fmt.Printf("phase=%s entries=%d size=%s\n", name, info.Entries, formatBytes(info.Bytes))
		}
	case "gc":
		limit, err := parseBytes(*maxBytes)
		if err != nil {
			fatal(err)
		}
		res, err := store.GC(limit, *maxAge)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("gc: evicted %d entries, %d blobs, freed %s; %d entries / %s live\n",
			res.EvictedEntries, res.EvictedBlobs, formatBytes(res.FreedBytes),
			res.LiveEntries, formatBytes(res.LiveBytes))
	case "clear":
		if err := store.Clear(); err != nil {
			fatal(err)
		}
		fmt.Printf("cleared %s\n", store.Dir())
	default:
		fatal(fmt.Errorf("unknown cache subcommand %q (want stats, gc, or clear)", sub))
	}
}

// parseBytes parses a byte count with an optional K/M/G suffix.
func parseBytes(s string) (int64, error) {
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "K"), strings.HasSuffix(s, "k"):
		mult, s = 1<<10, s[:len(s)-1]
	case strings.HasSuffix(s, "M"), strings.HasSuffix(s, "m"):
		mult, s = 1<<20, s[:len(s)-1]
	case strings.HasSuffix(s, "G"), strings.HasSuffix(s, "g"):
		mult, s = 1<<30, s[:len(s)-1]
	}
	n, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad byte count %q", s)
	}
	return n * mult, nil
}

func formatBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fG", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fM", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fK", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%dB", n)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "eclc:", err)
	os.Exit(1)
}
