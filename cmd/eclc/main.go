// Command eclc is the ECL compiler driver: it reads ECL source files,
// compiles their modules, and writes the requested artifacts —
// mirroring the paper's flow (split to Esterel + C + glue, compile to
// an EFSM, synthesize software or hardware).
//
// Usage:
//
//	eclc [flags] file.ecl [file2.ecl ... | dir]
//
// With a single file and no -module flag, eclc compiles the last
// module in the file (the historical behavior). With several files, a
// directory, or -all, it batch-compiles every module of every input
// concurrently over internal/driver's worker pool.
//
// Targets (comma separated): esterel, c, go, glue, dot, verilog, vhdl,
// stats. Default: esterel,c,glue,stats written to the output directory
// (default ".").
package main

import (
	"context"
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/driver"
	"repro/internal/lower"
)

func main() {
	module := flag.String("module", "", "module to compile (default: last module per file, or every module in batch mode)")
	all := flag.Bool("all", false, "compile every module of every input file")
	policy := flag.String("policy", "maximal", "splitter policy: maximal or minimal")
	target := flag.String("target", "esterel,c,glue,stats", "comma-separated targets: esterel,c,go,glue,dot,verilog,vhdl,stats")
	outDir := flag.String("o", ".", "output directory")
	minimize := flag.Bool("minimize", false, "minimize the EFSM before synthesis")
	jobs := flag.Int("jobs", 0, "max concurrent module builds (0 = GOMAXPROCS)")
	flag.Parse()

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: eclc [flags] file.ecl [file2.ecl ... | dir]")
		flag.Usage()
		os.Exit(2)
	}

	targets, err := driver.ParseTargets(*target)
	if err != nil {
		fatal(err)
	}
	opts := core.Options{Minimize: *minimize}
	switch *policy {
	case "maximal":
		opts.Policy = lower.MaximalReactive
	case "minimal":
		opts.Policy = lower.MinimalReactive
	default:
		fatal(fmt.Errorf("unknown policy %q", *policy))
	}

	paths, sawDir, err := collectInputs(flag.Args())
	if err != nil {
		fatal(err)
	}
	batch := *all || sawDir || len(paths) > 1
	perFile := make([][]driver.Request, len(paths))
	var wg sync.WaitGroup
	for i, path := range paths {
		seed := driver.Request{Path: path, Module: *module, Targets: targets, Options: opts}
		if *module != "" || !batch {
			perFile[i] = []driver.Request{seed}
			continue
		}
		// Expand each file's module list concurrently (it costs a
		// front-end pass per file). A file that fails to expand (e.g.
		// a parse error) still joins the batch unexpanded: the driver
		// reports it as a structured failure while the other files
		// compile.
		wg.Add(1)
		go func(i int, seed driver.Request) {
			defer wg.Done()
			if expanded, err := driver.ExpandModules(seed); err == nil {
				perFile[i] = expanded
			} else {
				perFile[i] = []driver.Request{seed}
			}
		}(i, seed)
	}
	wg.Wait()
	var reqs []driver.Request
	for _, rs := range perFile {
		reqs = append(reqs, rs...)
	}

	d := driver.New(*jobs)
	results, _ := d.Build(context.Background(), reqs)

	failed := false
	writtenBy := map[string]string{} // output path -> source file
	for i := range results {
		res := &results[i]
		if res.Failed() {
			failed = true
			if len(res.Diags) == 0 {
				fmt.Fprintf(os.Stderr, "eclc: %s: %v\n", res.Path, res.Err)
			}
			for _, diag := range res.Diags {
				fmt.Fprintf(os.Stderr, "eclc: %s\n", diag)
			}
			continue
		}
		for _, t := range targets {
			text := res.Artifacts[t]
			if t == driver.TargetStats {
				fmt.Print(text)
				continue
			}
			out := filepath.Join(*outDir, t.Filename(res.Module))
			if prev, clash := writtenBy[out]; clash {
				failed = true
				fmt.Fprintf(os.Stderr,
					"eclc: %s: module %s collides with module of the same name in %s (both write %s); use separate -o directories\n",
					res.Path, res.Module, prev, out)
				break
			}
			writtenBy[out] = res.Path
			if err := os.WriteFile(out, []byte(text), 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s\n", out)
		}
	}
	if failed {
		os.Exit(1)
	}
}

// collectInputs expands directory arguments into their .ecl files
// (sorted), keeping plain files as given, and reports whether any
// argument was a directory (which switches eclc into batch mode).
func collectInputs(args []string) (paths []string, sawDir bool, err error) {
	for _, arg := range args {
		info, err := os.Stat(arg)
		if err != nil {
			return nil, false, err
		}
		if !info.IsDir() {
			paths = append(paths, arg)
			continue
		}
		sawDir = true
		var found []string
		err = filepath.WalkDir(arg, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() && strings.HasSuffix(path, ".ecl") {
				found = append(found, path)
			}
			return nil
		})
		if err != nil {
			return nil, false, err
		}
		if len(found) == 0 {
			return nil, false, fmt.Errorf("no .ecl files under %s", arg)
		}
		sort.Strings(found)
		paths = append(paths, found...)
	}
	return paths, sawDir, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "eclc:", err)
	os.Exit(1)
}
