package main

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// buildEclc compiles the eclc binary once per test run.
func buildEclc(t *testing.T) string {
	t.Helper()
	if testing.Short() {
		t.Skip("short mode: skipping binary end-to-end test")
	}
	exe := filepath.Join(t.TempDir(), "eclc")
	out, err := exec.Command("go", "build", "-o", exe, ".").CombinedOutput()
	if err != nil {
		t.Skipf("go build unavailable: %v\n%s", err, out)
	}
	return exe
}

// TestWarmProcessRebuildHitRate is the acceptance criterion against
// the real binary: two separate eclc processes over one cache dir; the
// second must report >= 90% disk-cache hits.
func TestWarmProcessRebuildHitRate(t *testing.T) {
	exe := buildEclc(t)
	cacheDir := t.TempDir()
	outDir := t.TempDir()
	examples, err := filepath.Abs("../../examples")
	if err != nil {
		t.Fatal(err)
	}

	run := func() string {
		cmd := exec.Command(exe, "-all", "-cache-stats", "-cache-dir", cacheDir, "-o", outDir, examples)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("eclc failed: %v\n%s", err, out)
		}
		return string(out)
	}

	cold := run()
	if !strings.Contains(cold, "disk-hits=0") {
		t.Fatalf("cold run not cold:\n%s", cold)
	}
	warm := run()
	m := regexp.MustCompile(`disk-hit-rate=([0-9.]+)%`).FindStringSubmatch(warm)
	if m == nil {
		t.Fatalf("no disk-hit-rate in output:\n%s", warm)
	}
	rate, err := strconv.ParseFloat(m[1], 64)
	if err != nil || rate < 90 {
		t.Fatalf("warm disk-hit-rate = %s%% (want >= 90):\n%s", m[1], warm)
	}
	// Artifacts must exist and be identical across cold/warm runs
	// (the warm run rewrites them from cached bytes).
	if _, err := os.Stat(filepath.Join(outDir, "abro.strl")); err != nil {
		t.Fatalf("warm run artifact missing: %v", err)
	}
}

// TestCacheSubcommands drives stats -> gc -> clear over a real store.
func TestCacheSubcommands(t *testing.T) {
	exe := buildEclc(t)
	cacheDir := t.TempDir()
	outDir := t.TempDir()
	examples, _ := filepath.Abs("../../examples")
	if out, err := exec.Command(exe, "-all", "-cache-dir", cacheDir, "-o", outDir, examples).CombinedOutput(); err != nil {
		t.Fatalf("seed build: %v\n%s", err, out)
	}

	out, err := exec.Command(exe, "cache", "stats", "-cache-dir", cacheDir).CombinedOutput()
	if err != nil || !regexp.MustCompile(`entries:\s+[1-9]`).Match(out) {
		t.Fatalf("cache stats (want a populated store): %v\n%s", err, out)
	}
	out, err = exec.Command(exe, "cache", "gc", "-cache-dir", cacheDir, "-max-bytes", "1G").CombinedOutput()
	if err != nil || !strings.Contains(string(out), "gc: evicted") {
		t.Fatalf("cache gc: %v\n%s", err, out)
	}
	out, err = exec.Command(exe, "cache", "clear", "-cache-dir", cacheDir).CombinedOutput()
	if err != nil || !strings.Contains(string(out), "cleared") {
		t.Fatalf("cache clear: %v\n%s", err, out)
	}
	out, err = exec.Command(exe, "cache", "stats", "-cache-dir", cacheDir).CombinedOutput()
	if err != nil || !strings.Contains(string(out), "entries:   0") {
		t.Fatalf("stats after clear: %v\n%s", err, out)
	}
	if out, err := exec.Command(exe, "cache", "bogus").CombinedOutput(); err == nil {
		t.Fatalf("unknown subcommand succeeded:\n%s", out)
	}
}

// incrementalExample returns the incremental fixture with the given
// data-loop increment (the only reactive-structure-preserving knob).
func incrementalExample(inc int) string {
	return fmt.Sprintf(`module incpipe (input pure a, input pure b, input int req,
                 output int done, output pure pulse)
{
    int acc;
    int n;
    acc = 0;
    par {
        while (1) {
            await (a);
            emit (pulse);
        }
        while (1) {
            await (b);
            emit (pulse);
        }
        while (1) {
            await (req);
            n = 0;
            while (n < 6) {
                acc = acc + %d;
                n = n + 1;
            }
            emit_v (done, acc);
        }
    }
}
`, inc)
}

// TestExplainReportsPhaseTable drives the -explain flag end to end:
// a cold build rebuilds every phase, a data-function edit in a new
// process replays the efsm phase from disk while re-running emission,
// an unchanged rebuild collapses to the design pseudo-phase, and
// `eclc cache stats` lists the v2 subtree per phase.
func TestExplainReportsPhaseTable(t *testing.T) {
	exe := buildEclc(t)
	cacheDir, outDir, srcDir := t.TempDir(), t.TempDir(), t.TempDir()
	src := filepath.Join(srcDir, "inc.ecl")

	run := func(args ...string) string {
		cmd := exec.Command(exe, append([]string{"-explain", "-cache-dir", cacheDir, "-o", outDir}, args...)...)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("eclc failed: %v\n%s", err, out)
		}
		return string(out)
	}

	if err := os.WriteFile(src, []byte(incrementalExample(2)), 0o644); err != nil {
		t.Fatal(err)
	}
	cold := run(src)
	if !strings.Contains(cold, "phase=efsm status=rebuilt") {
		t.Fatalf("cold explain lacks efsm rebuild:\n%s", cold)
	}

	// Data-function edit, new process: efsm replays, emission reruns.
	if err := os.WriteFile(src, []byte(incrementalExample(9)), 0o644); err != nil {
		t.Fatal(err)
	}
	edited := run(src)
	if !strings.Contains(edited, "phase=efsm status=disk-hit") {
		t.Fatalf("edited explain lacks efsm disk-hit:\n%s", edited)
	}
	if !strings.Contains(edited, "phase=emit-c status=rebuilt") {
		t.Fatalf("edited explain lacks emit-c rebuild:\n%s", edited)
	}
	if !strings.Contains(edited, "phase-stats phase=efsm mem-hits=0 disk-hits=1 remote-hits=0 shared=0 rebuilds=0 failures=0") {
		t.Fatalf("edited explain lacks phase-stats summary:\n%s", edited)
	}

	// Unchanged rebuild, new process: whole-design v1 replay.
	unchanged := run(src)
	if !strings.Contains(unchanged, "phase=design status=disk-hit") {
		t.Fatalf("unchanged explain lacks design disk-hit:\n%s", unchanged)
	}

	// The store-level per-phase table.
	out, err := exec.Command(exe, "cache", "stats", "-cache-dir", cacheDir).CombinedOutput()
	if err != nil {
		t.Fatalf("cache stats: %v\n%s", err, out)
	}
	for _, want := range []string{"phase=efsm entries=", "phase=parse entries=", "phase=emit-c entries="} {
		if !strings.Contains(string(out), want) {
			t.Errorf("cache stats lacks %q:\n%s", want, out)
		}
	}
}

// TestBatchMalformedFileDiagnostics mixes a malformed file into a
// batch directory: eclc must fail, name the offending file with a
// parse-phase diagnostic, and still compile the good file.
func TestBatchMalformedFileDiagnostics(t *testing.T) {
	exe := buildEclc(t)
	srcDir, outDir := t.TempDir(), t.TempDir()
	if err := os.WriteFile(filepath.Join(srcDir, "good.ecl"), []byte(incrementalExample(2)), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(srcDir, "bad.ecl"), []byte("module broken ( {\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe, "-all", "-no-disk-cache", "-o", outDir, srcDir)
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("batch with malformed file succeeded:\n%s", out)
	}
	text := string(out)
	if !strings.Contains(text, "bad.ecl:1:") || !strings.Contains(text, "[parse]") {
		t.Fatalf("stderr lacks structured bad.ecl parse diagnostic:\n%s", text)
	}
	if _, err := os.Stat(filepath.Join(outDir, "incpipe.c")); err != nil {
		t.Errorf("good file not compiled despite per-file failure: %v", err)
	}
}
