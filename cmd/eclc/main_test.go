package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// buildEclc compiles the eclc binary once per test run.
func buildEclc(t *testing.T) string {
	t.Helper()
	if testing.Short() {
		t.Skip("short mode: skipping binary end-to-end test")
	}
	exe := filepath.Join(t.TempDir(), "eclc")
	out, err := exec.Command("go", "build", "-o", exe, ".").CombinedOutput()
	if err != nil {
		t.Skipf("go build unavailable: %v\n%s", err, out)
	}
	return exe
}

// TestWarmProcessRebuildHitRate is the acceptance criterion against
// the real binary: two separate eclc processes over one cache dir; the
// second must report >= 90% disk-cache hits.
func TestWarmProcessRebuildHitRate(t *testing.T) {
	exe := buildEclc(t)
	cacheDir := t.TempDir()
	outDir := t.TempDir()
	examples, err := filepath.Abs("../../examples")
	if err != nil {
		t.Fatal(err)
	}

	run := func() string {
		cmd := exec.Command(exe, "-all", "-cache-stats", "-cache-dir", cacheDir, "-o", outDir, examples)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("eclc failed: %v\n%s", err, out)
		}
		return string(out)
	}

	cold := run()
	if !strings.Contains(cold, "disk-hits=0") {
		t.Fatalf("cold run not cold:\n%s", cold)
	}
	warm := run()
	m := regexp.MustCompile(`disk-hit-rate=([0-9.]+)%`).FindStringSubmatch(warm)
	if m == nil {
		t.Fatalf("no disk-hit-rate in output:\n%s", warm)
	}
	rate, err := strconv.ParseFloat(m[1], 64)
	if err != nil || rate < 90 {
		t.Fatalf("warm disk-hit-rate = %s%% (want >= 90):\n%s", m[1], warm)
	}
	// Artifacts must exist and be identical across cold/warm runs
	// (the warm run rewrites them from cached bytes).
	if _, err := os.Stat(filepath.Join(outDir, "abro.strl")); err != nil {
		t.Fatalf("warm run artifact missing: %v", err)
	}
}

// TestCacheSubcommands drives stats -> gc -> clear over a real store.
func TestCacheSubcommands(t *testing.T) {
	exe := buildEclc(t)
	cacheDir := t.TempDir()
	outDir := t.TempDir()
	examples, _ := filepath.Abs("../../examples")
	if out, err := exec.Command(exe, "-all", "-cache-dir", cacheDir, "-o", outDir, examples).CombinedOutput(); err != nil {
		t.Fatalf("seed build: %v\n%s", err, out)
	}

	out, err := exec.Command(exe, "cache", "stats", "-cache-dir", cacheDir).CombinedOutput()
	if err != nil || !regexp.MustCompile(`entries:\s+[1-9]`).Match(out) {
		t.Fatalf("cache stats (want a populated store): %v\n%s", err, out)
	}
	out, err = exec.Command(exe, "cache", "gc", "-cache-dir", cacheDir, "-max-bytes", "1G").CombinedOutput()
	if err != nil || !strings.Contains(string(out), "gc: evicted") {
		t.Fatalf("cache gc: %v\n%s", err, out)
	}
	out, err = exec.Command(exe, "cache", "clear", "-cache-dir", cacheDir).CombinedOutput()
	if err != nil || !strings.Contains(string(out), "cleared") {
		t.Fatalf("cache clear: %v\n%s", err, out)
	}
	out, err = exec.Command(exe, "cache", "stats", "-cache-dir", cacheDir).CombinedOutput()
	if err != nil || !strings.Contains(string(out), "entries:   0") {
		t.Fatalf("stats after clear: %v\n%s", err, out)
	}
	if out, err := exec.Command(exe, "cache", "bogus").CombinedOutput(); err == nil {
		t.Fatalf("unknown subcommand succeeded:\n%s", out)
	}
}
