package ecl

import (
	"fmt"
	"testing"

	"repro/internal/cache"
	"repro/internal/ctypes"
	"repro/internal/cval"
)

// incrementalSrc mirrors the driver fixture: factor appears only in an
// extracted data-function body.
func incrementalSrc(factor int) string {
	return fmt.Sprintf(`
module incworker (input pure a, input pure b, input int req,
                  output int done, output pure pulse)
{
    int acc;
    int n;
    acc = 0;
    par {
        while (1) {
            await (a);
            emit (pulse);
        }
        while (1) {
            await (b);
            emit (pulse);
        }
        while (1) {
            await (req);
            n = 0;
            while (n < 6) {
                acc = acc + %d;
                n = n + 1;
            }
            emit_v (done, acc);
        }
    }
}
`, factor)
}

// TestReplayedEFSMBehavesIdentically drives a design whose EFSM was
// replayed from a snapshot (recorded for a different data-function
// body) against a fully fresh compile of the same source, through the
// public Machine API, and diffs their canonical traces. The decoded
// machine must execute the *edited* data function.
func TestReplayedEFSMBehavesIdentically(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	seed := NewDriver(0)
	seed.Disk = store
	if res := seed.BuildOne(BuildRequest{Path: "inc.ecl", Source: incrementalSrc(3),
		Targets: []Target{TargetC}}); res.Failed() {
		t.Fatal(res.Err)
	}

	store2, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	warm := NewDriver(0)
	warm.Disk = store2
	replayed := warm.BuildOne(BuildRequest{Path: "inc.ecl", Source: incrementalSrc(5)})
	if replayed.Failed() || replayed.Design == nil {
		t.Fatalf("replayed build: err=%v", replayed.Err)
	}
	if got := warm.CacheStats().Phases["efsm"]; got.DiskHits != 1 {
		t.Fatalf("efsm phase not replayed from disk: %+v", got)
	}

	fresh := NewDriver(0)
	fresh.NoCache = true
	cold := fresh.BuildOne(BuildRequest{Path: "inc.ecl", Source: incrementalSrc(5)})
	if cold.Failed() || cold.Design == nil {
		t.Fatalf("cold build: err=%v", cold.Err)
	}

	// Deterministic pseudo-random input schedule exercising the data
	// path (req) and the pure branches.
	var instants []map[string]Value
	rng := uint32(12345)
	for i := 0; i < 64; i++ {
		rng = rng*1664525 + 1013904223
		in := map[string]Value{}
		if rng&1 != 0 {
			in["a"] = Value{}
		}
		if rng&2 != 0 {
			in["b"] = Value{}
		}
		if rng&4 != 0 {
			in["req"] = cval.FromInt(ctypes.Int, int64(i%7))
		}
		instants = append(instants, in)
	}
	for _, backend := range []string{"efsm", "efsm-min"} {
		mr, err := OpenMachine(backend, replayed.Design)
		if err != nil {
			t.Fatal(err)
		}
		mc, err := OpenMachine(backend, cold.Design)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := RecordTrace(mr, instants)
		if err != nil {
			t.Fatalf("%s: replayed trace: %v", backend, err)
		}
		tc, err := RecordTrace(mc, instants)
		if err != nil {
			t.Fatalf("%s: cold trace: %v", backend, err)
		}
		if err := DiffTraces(tr, tc); err != nil {
			t.Errorf("%s: replayed machine diverges from cold compile: %v", backend, err)
		}
	}
	_ = cache.PhaseSchemaVersion // pin the v2 schema into the public test build
}
