package ecl

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/cache"
	"repro/internal/driver"
	"repro/internal/paperex"
)

// TestExamplesMatchPaperex pins the checked-in examples/*.ecl corpus
// (what `eclc -all examples` and the CI cache-dogfood step compile) to
// the paperex constants it was generated from.
func TestExamplesMatchPaperex(t *testing.T) {
	want := map[string]string{
		"abro.ecl":   paperex.ABRO,
		"stack.ecl":  paperex.Stack,
		"buffer.ecl": paperex.Buffer,
		"runner.ecl": paperex.RunnerStop,
	}
	for name, src := range want {
		data, err := os.ReadFile(filepath.Join("examples", name))
		if err != nil {
			t.Fatalf("missing example: %v", err)
		}
		if string(data) != src {
			t.Errorf("examples/%s drifted from its paperex constant; regenerate it", name)
		}
	}
}

// TestExamplesWarmRebuildHitRate is the acceptance criterion run
// in-process: batch-compile every module under examples/ twice with
// fresh drivers sharing one store; the second pass must be >= 90%
// disk-cache hits.
func TestExamplesWarmRebuildHitRate(t *testing.T) {
	reqs := exampleRequests(t)
	dir := t.TempDir()
	for pass := 0; pass < 2; pass++ {
		store, err := cache.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		d := &driver.Driver{Disk: store}
		results, err := d.Build(context.Background(), reqs)
		if err != nil {
			t.Fatalf("pass %d: %v", pass, err)
		}
		cs := d.CacheStats()
		if pass == 0 {
			if cs.DiskHits != 0 {
				t.Fatalf("cold pass had %d disk hits", cs.DiskHits)
			}
			continue
		}
		probes := cs.DiskHits + cs.DiskMisses
		if probes == 0 || float64(cs.DiskHits)/float64(probes) < 0.9 {
			t.Fatalf("warm pass: %d/%d disk hits (want >= 90%%); stats %+v", cs.DiskHits, probes, cs)
		}
		for _, r := range results {
			if !r.DiskCached {
				t.Errorf("warm pass: %s:%s not served from disk", r.Path, r.Module)
			}
		}
	}
}

// exampleRequests expands every module of every examples/*.ecl file
// with eclc's default target set.
func exampleRequests(t *testing.T) []driver.Request {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join("examples", "*.ecl"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no examples: %v", err)
	}
	targets := []driver.Target{driver.TargetEsterel, driver.TargetC, driver.TargetGlue, driver.TargetStats}
	var reqs []driver.Request
	for _, p := range paths {
		expanded, err := driver.ExpandModules(driver.Request{Path: p, Targets: targets})
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		reqs = append(reqs, expanded...)
	}
	return reqs
}
