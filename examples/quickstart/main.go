// The quickstart example compiles ABRO — Esterel's "hello world",
// written in ECL — and walks it through the whole flow: reference
// interpretation, EFSM compilation, software synthesis to C and Go,
// and (because ABRO is pure control) hardware synthesis to Verilog.
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/core"
	"repro/internal/cval"
	"repro/internal/exec"
	"repro/internal/paperex"
)

func main() {
	prog, err := core.Parse("abro.ecl", paperex.ABRO, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	design, err := prog.Compile("abro")
	if err != nil {
		log.Fatal(err)
	}

	st := design.Stats()
	fmt.Printf("ABRO compiled: %d EFSM states, %d transitions\n\n", st.EFSM.States, st.EFSM.Leaves)

	// Drive the compiled machine through the unified execution API: O
	// must fire once both A and B have occurred, and R must reset the
	// behavior. (Any backend name from exec.Backends() works here.)
	m, err := exec.Open("efsm", design)
	if err != nil {
		log.Fatal(err)
	}
	step := func(names ...string) []string {
		in := map[string]cval.Value{}
		for _, n := range names {
			in[n] = cval.Value{}
		}
		r, err := m.Step(in)
		if err != nil {
			log.Fatal(err)
		}
		var out []string
		for name := range r.Outputs {
			out = append(out, name)
		}
		sort.Strings(out)
		return out
	}
	fmt.Println("instant 1 (boot):      ", step())
	fmt.Println("instant 2 (A):         ", step("A"))
	fmt.Println("instant 3 (B):  expect O:", step("B"))
	fmt.Println("instant 4 (A,B): no O  :", step("A", "B"))
	fmt.Println("instant 5 (R):  reset  :", step("R"))
	fmt.Println("instant 6 (A,B): expect O:", step("A", "B"))

	// Phase-1 artifact: the reactive part as Esterel-flavored source.
	fmt.Println("\n--- Esterel artifact (phase 1) ---")
	fmt.Println(design.EsterelText())

	// Phase-3 software: C (first lines).
	cText := design.CText()
	fmt.Println("--- C synthesis (first 400 bytes) ---")
	if len(cText) > 400 {
		cText = cText[:400] + "..."
	}
	fmt.Println(cText)

	// Phase-3 hardware: ABRO has no data part, so Verilog works.
	v, err := design.VerilogText()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("--- Verilog synthesis (first 400 bytes) ---")
	if len(v) > 400 {
		v = v[:400] + "..."
	}
	fmt.Println(v)
}
