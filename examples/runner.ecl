
module runner (input pure go, input pure stop, output pure started,
               output pure done, output pure aborted)
{
    while (1) {
        await (go);
        do {
            emit (started);
            await (go);
            await (go);
            emit (done);
            halt ();
        } weak_abort (stop)
        handle {
            emit (aborted);
        }
    }
}
