
#define BUFCAP 64
#define LOWMARK 16
#define HIGHMARK 48

typedef unsigned char byte;

module recordctl (input pure rec_btn, input pure stop_btn,
                  input byte mic_sample, input pure buf_full,
                  output byte wr_data, output pure rec_led)
{
    while (1) {
        await (rec_btn);
        emit (rec_led);
        do {
            while (1) {
                await (mic_sample);
                emit_v (wr_data, mic_sample);
            }
        } abort (stop_btn | buf_full);
    }
}

module playctl (input pure play_btn, input pure stop_btn,
                input pure buf_empty, input byte rd_data,
                output pure rd_req, output byte spk_sample)
{
    while (1) {
        await (play_btn);
        do {
            while (1) {
                emit (rd_req);
                await (rd_data);
                emit_v (spk_sample, rd_data);
                await ();
            }
        } abort (stop_btn | buf_empty);
    }
}

module levelmon (input byte wr_data, input pure rd_req,
                 output pure buf_full, output pure buf_empty,
                 output pure low_water, output pure high_water)
{
    int level;

    level = 0;
    while (1) {
        /* Publish the fill status computed from the previous instant's
           level first (register semantics: "every reader sees the value
           of the previous instant", as the paper puts it), then account
           for this instant's writes and reads. */
        if (level >= BUFCAP) emit (buf_full);
        if (level == 0) emit (buf_empty);
        if (level <= LOWMARK) emit (low_water);
        if (level >= HIGHMARK) emit (high_water);
        present (wr_data) {
            if (level < BUFCAP) level = level + 1;
        }
        present (rd_req) {
            if (level > 0) level = level - 1;
        }
        await ();
    }
}

module bufferctl (input pure rec_btn, input pure play_btn,
                  input pure stop_btn, input byte mic_sample,
                  input byte rd_data,
                  output byte spk_sample, output pure rec_led,
                  output pure rd_req,
                  output pure low_water, output pure high_water)
{
    signal byte wr_data;
    signal pure buf_full;
    signal pure buf_empty;

    par {
        recordctl (rec_btn, stop_btn, mic_sample, buf_full, wr_data, rec_led);
        playctl (play_btn, stop_btn, buf_empty, rd_data, rd_req, spk_sample);
        levelmon (wr_data, rd_req, buf_full, buf_empty, low_water, high_water);
    }
}
