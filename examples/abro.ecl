
module abro (input pure A, input pure B, input pure R,
             output pure O)
{
    while (1) {
        do {
            par {
                await (A);
                await (B);
            }
            emit (O);
            halt ();
        } abort (R);
    }
}
