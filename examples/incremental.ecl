/* Incremental-pipeline fixture: three reactive branches plus one pure
 * data loop. The inner while loop is extracted as a C data function,
 * so editing its body (the `acc = acc + 2` line the CI dogfood step
 * rewrites) re-runs only the front end and emission — the cached EFSM
 * phase replays. See README "Incremental pipeline".
 */
module incpipe (input pure a, input pure b, input int req,
                output int done, output pure pulse)
{
    int acc;
    int n;
    acc = 0;
    par {
        while (1) {
            await (a);
            emit (pulse);
        }
        while (1) {
            await (b);
            emit (pulse);
        }
        while (1) {
            await (req);
            n = 0;
            while (n < 6) {
                acc = acc + 2;
                n = n + 1;
            }
            emit_v (done, acc);
        }
    }
}
