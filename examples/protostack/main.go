// The protostack example runs the paper's Figures 1-4 end to end: the
// packet-assembly / CRC-check / header-match protocol stack, compiled
// both as one synchronous task and as three asynchronous tasks under
// the simulated RTOS, processing a stream of packets — the paper's
// first Table 1 experiment in miniature.
package main

import (
	"fmt"
	"log"

	"repro/internal/paperex"
	"repro/internal/sim"
)

func main() {
	info, err := sim.AnalyzeSource("stack.ecl", paperex.Stack)
	if err != nil {
		log.Fatal(err)
	}

	const packets = 50
	for _, mode := range []string{"synchronous (1 task)", "asynchronous (3 tasks)"} {
		var sys sim.System
		if mode[0] == 's' {
			sys, err = sim.BuildSync(info, "toplevel", sim.Config{})
		} else {
			sys, err = sim.BuildAsync(info, "toplevel", sim.Config{})
		}
		if err != nil {
			log.Fatal(err)
		}
		res, err := sim.RunStack(sys, packets)
		if err != nil {
			log.Fatal(err)
		}
		m := sys.Metrics()
		fmt.Printf("%s:\n", mode)
		fmt.Printf("  packets: %d (%d good), addr_match: %d\n",
			res.Packets, res.GoodPackets, res.AddrMatches)
		fmt.Printf("  EFSM states: %d across %d task(s)\n", m.States, m.Tasks)
		fmt.Printf("  memory: task %d+%d bytes, RTOS %d+%d bytes (code+data)\n",
			m.TaskImage.CodeBytes, m.TaskImage.DataBytes,
			m.RTOSImage.CodeBytes, m.RTOSImage.DataBytes)
		fmt.Printf("  time:   %d task cycles, %d RTOS cycles over %d ticks\n\n",
			m.TaskCycles, m.KernelCycles, m.Ticks)
	}
	fmt.Println("The asynchronous partition pays RTOS overhead per event;")
	fmt.Println("the synchronous one compiles the whole stack into one EFSM.")
}
