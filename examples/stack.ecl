
#define HDRSIZE 6
#define DATASIZE 56
#define CRCSIZE 2
#define PKTSIZE HDRSIZE+DATASIZE+CRCSIZE

typedef unsigned char byte;

typedef struct {
    byte packet[PKTSIZE];
} packet_view_1_t;

typedef struct {
    byte header[HDRSIZE];
    byte data[DATASIZE];
    byte crc[CRCSIZE];
} packet_view_2_t;

typedef union {
    packet_view_1_t raw;
    packet_view_2_t cooked;
} packet_t;

module assemble (input pure reset,
                 input byte in_byte, output packet_t outpkt)
{
    int cnt;
    packet_t buffer;

    /* outermost reactive loop */
    while (1) {
        do {
            /* get PKTSIZE bytes */
            for (cnt = 0; cnt < PKTSIZE; cnt++) {
                await (in_byte);
                buffer.raw.packet[cnt] = in_byte;
            }
            /* assemble them and emit the output */
            emit_v (outpkt, buffer);
        } abort (reset);
    }
}

module checkcrc (input pure reset,
                 input packet_t inpkt, output bool crc_ok)
{
    int i;
    unsigned int crc;

    while (1) {
        do {
            await (inpkt);
            for (i = 0, crc = 0; i < PKTSIZE; i++) {
                crc = (crc ^ inpkt.raw.packet[i]) << 1;
            }
            emit_v (crc_ok, crc == (int) inpkt.cooked.crc);
        } abort (reset);
    }
}

module prochdr (input pure reset, input bool crc_ok,
                input packet_t inpkt, output pure addr_match)
{
    signal pure kill_check; /* local signal */
    bool match_ok;
    int hi;

    while (1) {
        do {
            await (inpkt);
            par {
                do {
                    /* lengthy computation, determining match_ok:
                       scan the header one byte per instant */
                    match_ok = 1;
                    for (hi = 0; hi < HDRSIZE; hi++) {
                        if (inpkt.cooked.header[hi] != (byte)(hi + 1))
                            match_ok = 0;
                        await ();
                    }
                } abort (kill_check);
                {
                    /* await immediate crc_ok (see note 2 above) */
                    present (crc_ok) { } else { await (crc_ok); }
                    if (~crc_ok) emit (kill_check);
                    /* else just wait for both to complete */
                }
            }
            /* now both branches have terminated */
            if (crc_ok && match_ok) emit (addr_match);
        } abort (reset);
    }
}

module toplevel (input pure reset,
                 input byte in_byte, output pure addr_match)
{
    signal packet_t packet;
    signal bool crc_ok;

    par {
        assemble (reset, in_byte, packet);
        checkcrc (reset, packet, crc_ok);
        prochdr (reset, crc_ok, packet, addr_match);
    }
}
