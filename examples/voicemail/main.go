// The voicemail example drives the audio buffer controller from the
// paper's voice-mail pager design: a record controller, a playback
// controller, and a buffer-level monitor running concurrently. It
// records messages, plays them back, and shows the synchronous
// product-automaton growth against the asynchronous partition — the
// paper's second Table 1 experiment.
package main

import (
	"fmt"
	"log"

	"repro/internal/paperex"
	"repro/internal/sim"
)

func main() {
	info, err := sim.AnalyzeSource("buffer.ecl", paperex.Buffer)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Voice-mail pager audio buffer controller")
	fmt.Println("(record -> stop -> playback cycles; levelmon tracks the fill level)")
	fmt.Println()

	type result struct {
		mode string
		m    sim.Metrics
		res  *sim.BufferResult
	}
	var results []result
	for _, mode := range []string{"sync", "async"} {
		var sys sim.System
		if mode == "sync" {
			sys, err = sim.BuildSync(info, "bufferctl", sim.Config{})
		} else {
			sys, err = sim.BuildAsync(info, "bufferctl", sim.Config{})
		}
		if err != nil {
			log.Fatal(err)
		}
		res, err := sim.RunBuffer(sys, 4, 48)
		if err != nil {
			log.Fatal(err)
		}
		results = append(results, result{mode, sys.Metrics(), res})
	}

	for _, r := range results {
		fmt.Printf("%-5s: %d mic samples in, %d speaker samples out, %d low-water marks\n",
			r.mode, r.res.Samples, r.res.SpkSamples, r.res.LowWaters)
		fmt.Printf("       %d EFSM states, task code %d bytes, RTOS cycles %d\n",
			r.m.States, r.m.TaskImage.CodeBytes, r.m.KernelCycles)
	}
	sync, async := results[0], results[1]
	fmt.Printf("\nSynchronous task code is %.1fx the asynchronous sum (%d vs %d bytes):\n",
		float64(sync.m.TaskImage.CodeBytes)/float64(async.m.TaskImage.CodeBytes),
		sync.m.TaskImage.CodeBytes, async.m.TaskImage.CodeBytes)
	fmt.Println("the product of three independent mode machines explodes, exactly")
	fmt.Println("the trade-off the paper's Table 1 reports for this example.")
}
