// Package ecl reproduces "ECL: A Specification Environment for
// System-Level Design" (Lavagno & Sentovich, DAC 1999): a compiler and
// simulation environment for the ECL language — ANSI C extended with
// Esterel's reactive constructs (signals, await, emit, present, abort,
// weak_abort, suspend, par, modules).
//
// The pipeline follows the paper's three phases:
//
//  1. an ECL file is parsed and split into a reactive part (an Esterel
//     kernel program), extracted C data functions, and glue;
//  2. the reactive part is compiled into an extended finite state
//     machine (EFSM);
//  3. the EFSM is synthesized to software (C or Go) or, when the data
//     part is empty, to hardware (a gate-level netlist rendered as
//     Verilog or VHDL).
//
// A reference interpreter provides Esterel's logical semantics with
// constructive causality analysis; system-level simulation runs a
// design either as one synchronous task or as several asynchronous
// tasks under a simulated RTOS with MIPS R3000-style cost accounting,
// which regenerates the paper's Table 1.
//
// Execution goes through the unified Machine API: a compiled design
// opens on any registered backend (the reference interpreter, the
// compiled EFSM, its minimized variant, or the RTOS system
// simulation), all stepping one synchronous instant at a time with
// string-keyed typed signal values. Canonical JSONL traces record,
// replay, and diff runs across backends, and a Session serves many
// concurrently stepping machines — with snapshot forking — from one
// process.
//
// Quick start:
//
//	prog, err := ecl.Parse("abro.ecl", src, ecl.Options{})
//	design, err := prog.Compile("abro")
//	m, err := ecl.OpenMachine("efsm", design) // or "interp", "efsm-min", "efsm-table", "sim"
//	out, err := m.Step(map[string]ecl.Value{"A": {}})
//
// Backends built for the hot path additionally implement SlotStepper —
// slot-indexed, allocation-free stepping resolved through Ports; the
// batch layers detect and use it automatically. For many machines at
// once use
//
//	s := ecl.NewSession()
//	id, err := s.Open("", "efsm", design)
//	out, err := s.Step(id, inputs)
package ecl

import (
	"io"
	"time"

	"repro/internal/analyze"
	"repro/internal/cache"
	"repro/internal/cache/remote"
	"repro/internal/core"
	"repro/internal/cval"
	"repro/internal/driver"
	"repro/internal/exec"
	"repro/internal/lower"
	"repro/internal/pipeline"
	"repro/internal/sim"
	"repro/internal/simd"
	"repro/internal/source"
)

// Options configures a compilation; see core.Options.
type Options = core.Options

// Program is an analyzed translation unit.
type Program = core.Program

// Design is a compiled module.
type Design = core.Design

// Stats summarizes a compiled design.
type Stats = core.Stats

// Splitter policies (the paper's current scheme and its future-work
// alternative).
const (
	// MaximalReactive translates as much as possible into the reactive
	// part (the paper's implemented scheme).
	MaximalReactive = lower.MaximalReactive
	// MinimalReactive extracts every pure-data run as C (the paper's
	// Section 6 legacy-code scheme).
	MinimalReactive = lower.MinimalReactive
)

// Parse preprocesses, parses, and analyzes ECL source text.
func Parse(name, src string, opts Options) (*Program, error) {
	return core.Parse(name, src, opts)
}

// Finding is one static-analysis diagnostic: a stable rule ID
// (ECL001…), severity, source position, and message.
type Finding = analyze.Finding

// AnalyzerRule describes one static-analysis rule (ID, the IR level it
// inspects, one-line doc).
type AnalyzerRule = analyze.Rule

// Analyze runs every static-analysis rule over a compiled design and
// returns the findings, sorted by position. Batch callers get cached
// analysis through BuildRequest.Analyze instead.
func Analyze(d *Design) []Finding { return analyze.Analyze(d) }

// AnalyzeFile runs the design-level rules (interface wiring across
// every module of a translation unit) over a parsed program and
// returns the findings, sorted by position. Module-level rules run
// through Analyze; the pipeline runs both when asked to analyze.
func AnalyzeFile(p *Program) []Finding { return analyze.AnalyzeFile(p.Info) }

// AnalyzerRules lists the shipped static-analysis rules, in report
// order.
func AnalyzerRules() []AnalyzerRule { return analyze.Rules() }

// Driver orchestrates batch compilation: many modules at once over a
// bounded worker pool, with content-hash cached designs and structured
// diagnostics. It is the entry point the eclc/eclsim/eclbench commands
// share; library users get it here unchanged.
type Driver = driver.Driver

// BuildRequest asks a Driver for one module compiled to a target set.
type BuildRequest = driver.Request

// BuildResult reports one BuildRequest's outcome.
type BuildResult = driver.Result

// BuildDiagnostic is a structured build message (file/module/phase).
type BuildDiagnostic = driver.Diagnostic

// Severity grades a BuildDiagnostic.
type Severity = source.Severity

// Diagnostic severities.
const (
	SeverityNote    = source.Note
	SeverityWarning = source.Warning
	SeverityError   = source.Error
)

// Target names an artifact the driver can emit.
type Target = driver.Target

// Phase names the pipeline stage a diagnostic originated in.
type Phase = driver.Phase

// Artifact targets.
const (
	TargetEsterel = driver.TargetEsterel
	TargetC       = driver.TargetC
	TargetGo      = driver.TargetGo
	TargetGlue    = driver.TargetGlue
	TargetDot     = driver.TargetDot
	TargetTable   = driver.TargetTable
	TargetVerilog = driver.TargetVerilog
	TargetVHDL    = driver.TargetVHDL
	TargetStats   = driver.TargetStats
)

// Pipeline phases.
const (
	PhaseRead    = driver.PhaseRead
	PhaseParse   = driver.PhaseParse
	PhaseLower   = driver.PhaseLower
	PhaseCompile = driver.PhaseCompile
	PhaseEmit    = driver.PhaseEmit
)

// NewDriver returns a batch-compilation driver with the given
// worker-pool size (<= 0 means GOMAXPROCS).
func NewDriver(workers int) *Driver { return driver.New(workers) }

// CacheStats snapshots a Driver's cache traffic across both tiers
// (in-memory designs plus the persistent artifact store), including
// the per-phase breakdown in its Phases field.
type CacheStats = driver.CacheStats

// PhaseStats breaks a Driver's cache traffic down per pipeline phase
// (parse, sem, lower, efsm, efsm-min, emit-*, stats): how often each
// phase replayed from a cache tier versus rebuilt.
type PhaseStats = driver.PhaseStats

// PhaseCounts is one pipeline phase's aggregated cache traffic.
type PhaseCounts = pipeline.PhaseCounts

// PipelinePhase names one node of the compilation phase graph.
type PipelinePhase = pipeline.Phase

// PhaseResult records how one phase of one build was satisfied
// (rebuilt, memory hit, disk hit); BuildResult.Phases carries them.
type PhaseResult = pipeline.PhaseResult

// ExpandError is the structured failure ExpandModules reports,
// carrying file/phase diagnostics for the unexpandable file.
type ExpandError = driver.ExpandError

// DiskCache is the persistent content-addressed artifact store; assign
// one to Driver.Disk to make separate processes share compiled
// artifacts by content hash.
type DiskCache = cache.Store

// CacheGCResult reports one GCCache pass.
type CacheGCResult = cache.GCResult

// RemoteCache is the shared cache tier's client: it speaks the HTTP
// content-addressed protocol of internal/cache/remote (served by the
// eclcached binary) and slots into a Driver as the third tier behind
// memory and the local disk. Assign one to Driver.Remote so a whole
// fleet shares compiled artifacts; reads degrade to misses on any
// failure, writes are asynchronous and best-effort.
type RemoteCache = remote.Client

// RemoteCacheStats snapshots a RemoteCache's traffic counters.
type RemoteCacheStats = remote.Stats

// DialRemoteCache returns a client for the shared cache server at url
// (an eclcached instance; see also the $ECL_REMOTE_CACHE convention).
// Dialing does not contact the server — an unreachable server surfaces
// as cache misses, never as errors. Close (or Flush) the client to
// drain its pending uploads before exiting.
func DialRemoteCache(url string) (*RemoteCache, error) { return remote.Dial(url) }

// CacheDir returns the persistent cache's default location:
// $ECL_CACHE_DIR, else the user cache dir's "ecl" subdirectory.
func CacheDir() (string, error) { return cache.DefaultDir() }

// OpenCache opens (creating if needed) the persistent artifact cache
// rooted at dir; "" uses CacheDir().
func OpenCache(dir string) (*DiskCache, error) { return cache.Open(dir) }

// GCCache trims the persistent cache at dir ("" = CacheDir()) to
// maxBytes and maxAge in LRU order; zero bounds skip that phase.
func GCCache(dir string, maxBytes int64, maxAge time.Duration) (CacheGCResult, error) {
	store, err := cache.Open(dir)
	if err != nil {
		return CacheGCResult{}, err
	}
	return store.GC(maxBytes, maxAge)
}

// ParseTargets parses a comma-separated target list.
func ParseTargets(s string) ([]Target, error) { return driver.ParseTargets(s) }

// ExpandModules returns one request per module in the request's file,
// for batch-compiling whole files.
func ExpandModules(req BuildRequest) ([]BuildRequest, error) {
	return driver.ExpandModules(req)
}

// Value is a typed runtime signal value (the invalid zero Value marks
// a pure presence).
type Value = cval.Value

// Machine is one runnable instance of a compiled design, stepping one
// synchronous instant at a time with string-keyed signal values. All
// execution backends implement it.
type Machine = exec.Machine

// MachineSignal describes one interface signal of a Machine.
type MachineSignal = exec.Signal

// Ports is the slot-indexed view of a machine's signal interface:
// names resolve to fixed integer slots once at open time, so the hot
// path steps over arrays instead of maps.
type Ports = exec.Ports

// SlotStepper is the optional Machine extension interface for backends
// whose hot path is slot-indexed (efsm-table); traces, sessions, and
// benchmarks detect it and bypass per-instant map translation.
type SlotStepper = exec.SlotStepper

// StepResult reports one executed instant.
type StepResult = exec.Result

// Trace is a canonical JSONL execution record; traces diff bit-for-bit
// across backends.
type Trace = exec.Trace

// TraceEvent is one recorded instant of a Trace.
type TraceEvent = exec.Event

// Session manages many concurrently stepping machines (id-addressed,
// independently locked, snapshot-forkable).
type Session = exec.Session

// OpenMachine instantiates the named execution backend over a compiled
// design; Backends lists the valid names.
func OpenMachine(backend string, d *Design) (Machine, error) { return exec.Open(backend, d) }

// Backends lists the registered execution backends.
func Backends() []string { return exec.Backends() }

// NewSession returns an empty machine session.
func NewSession() *Session { return exec.NewSession() }

// RecordTrace steps the machine through the input instants and records
// a canonical trace.
func RecordTrace(m Machine, instants []map[string]Value) (*Trace, error) {
	return exec.Record(m, instants)
}

// ReplayTrace drives the machine with a recorded trace's inputs and
// returns the trace it actually produced.
func ReplayTrace(m Machine, t *Trace) (*Trace, error) { return exec.Replay(m, t) }

// DiffTraces compares two traces' observable behavior; nil means they
// agree.
func DiffTraces(a, b *Trace) error { return exec.Diff(a, b) }

// ReadTrace parses a JSONL trace.
func ReadTrace(r io.Reader) (*Trace, error) { return exec.ReadTrace(r) }

// SessionInfo describes one session machine's identity, interface, and
// progress.
type SessionInfo = exec.MachineInfo

// EncodeSnapshot serializes a machine's snapshot as a portable JSON
// blob (trace-style hex values) that DecodeSnapshot — possibly in
// another process — turns back into a restorable state. Backends
// without portable snapshots (sim) report ErrUnsupported.
func EncodeSnapshot(m Machine, snap exec.Snapshot, instant int) ([]byte, error) {
	return exec.EncodeSnapshot(m, snap, instant)
}

// DecodeSnapshot parses an EncodeSnapshot blob against a fresh machine
// of the same backend and module, returning the snapshot to Restore
// and the instant count it was taken at.
func DecodeSnapshot(m Machine, data []byte) (exec.Snapshot, int, error) {
	return exec.DecodeSnapshot(m, data)
}

// Daemon serves multi-tenant execution over HTTP — many concurrently
// stepping Session machines with batched stepping, idle-session
// eviction into the build cache, and transparent revival. The eclsimd
// binary is a thin main around it.
type Daemon = simd.Daemon

// DaemonConfig assembles a Daemon.
type DaemonConfig = simd.Config

// DaemonClient drives a Daemon over HTTP (the library behind
// eclsim -connect).
type DaemonClient = simd.Client

// DaemonOpenRequest asks a Daemon to compile a design and open a
// machine over it.
type DaemonOpenRequest = simd.OpenRequest

// DaemonMachineInfo describes one daemon machine.
type DaemonMachineInfo = simd.MachineInfo

// DaemonStats is a Daemon's /statsz payload.
type DaemonStats = simd.Stats

// NewDaemon assembles an execution daemon; serve it with http.Serve.
func NewDaemon(cfg DaemonConfig) (*Daemon, error) { return simd.New(cfg) }

// DialDaemon returns a client for the execution daemon at url (an
// eclsimd instance).
func DialDaemon(url string) (*DaemonClient, error) { return simd.Dial(url) }

// Table1Config sizes the Table 1 workloads.
type Table1Config = sim.Table1Config

// Table1Row is one row of the reproduced Table 1.
type Table1Row = sim.Table1Row

// DefaultTable1Config mirrors the paper's testbench (500 packets).
func DefaultTable1Config() Table1Config { return sim.DefaultTable1Config() }

// Table1 regenerates the paper's Table 1 measurements.
func Table1(cfg Table1Config) ([]Table1Row, error) { return sim.Table1(cfg) }

// FormatTable1 renders Table 1 rows in the paper's layout.
func FormatTable1(rows []Table1Row) string { return sim.FormatTable1(rows) }
