// Differential conformance tests: the paper gives ECL several
// execution routes that must agree — the reference interpreter
// (Esterel's logical semantics with constructive causality), the
// compiled EFSM, its bisimulation-minimized variant, and synthesized
// code. These tests drive every conformant backend registered with
// internal/exec over identical pseudo-random input sequences on every
// paper-example module and require the canonical traces to match
// instant by instant; generated Go code is compiled with the host
// toolchain and diffed through the same trace format.
package ecl

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"os"
	osexec "os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/cval"
	"repro/internal/driver"
	"repro/internal/efsm"
	"repro/internal/exec"
	"repro/internal/paperex"
)

// conformanceCases lists every paper-example module that compiles.
var conformanceCases = []struct {
	path, src, module string
}{
	{"abro.ecl", paperex.ABRO, "abro"},
	{"runner.ecl", paperex.RunnerStop, "runner"},
	{"stack.ecl", paperex.Stack, "assemble"},
	{"stack.ecl", paperex.Stack, "checkcrc"},
	{"stack.ecl", paperex.Stack, "prochdr"},
	{"stack.ecl", paperex.Stack, "toplevel"},
	{"buffer.ecl", paperex.Buffer, "recordctl"},
	{"buffer.ecl", paperex.Buffer, "playctl"},
	{"buffer.ecl", paperex.Buffer, "levelmon"},
	{"buffer.ecl", paperex.Buffer, "bufferctl"},
}

// randomInstants builds a deterministic pseudo-random string-keyed
// input sequence from a machine's input descriptors: each instant
// presents each input with probability p, valued inputs carrying a
// small random value.
func randomInstants(rng *rand.Rand, m exec.Machine, n int, p float64) []map[string]cval.Value {
	instants := make([]map[string]cval.Value, n)
	for i := range instants {
		in := map[string]cval.Value{}
		for _, sig := range m.Inputs() {
			if rng.Float64() >= p {
				continue
			}
			var v cval.Value
			if !sig.Pure && sig.Type != nil {
				v = cval.FromInt(sig.Type, int64(rng.Intn(256)))
			}
			in[sig.Name] = v
		}
		instants[i] = in
	}
	return instants
}

// recordTrace opens a fresh machine of the named backend and records
// the workload through it.
func recordTrace(t *testing.T, backend string, design *core.Design, instants []map[string]cval.Value) *exec.Trace {
	t.Helper()
	m, err := exec.Open(backend, design)
	if err != nil {
		t.Fatalf("open %s: %v", backend, err)
	}
	tr, err := exec.Record(m, instants)
	if err != nil {
		t.Fatalf("%s: %v", backend, err)
	}
	return tr
}

// TestConformanceBackends is the generic N-way diff: every conformant
// registered backend must produce the reference interpreter's trace on
// every paper example.
func TestConformanceBackends(t *testing.T) {
	backends := exec.ConformantBackends()
	if len(backends) < 3 {
		t.Fatalf("want at least interp/efsm/efsm-min, have %v", backends)
	}
	d := driver.New(0)
	for _, tc := range conformanceCases {
		tc := tc
		t.Run(tc.module, func(t *testing.T) {
			res := d.BuildOne(driver.Request{Path: tc.path, Source: tc.src, Module: tc.module})
			if res.Failed() {
				t.Fatalf("build: %v", res.Err)
			}
			ref, err := exec.Open("interp", res.Design)
			if err != nil {
				t.Fatal(err)
			}
			for seed := int64(1); seed <= 3; seed++ {
				rng := rand.New(rand.NewSource(seed))
				instants := randomInstants(rng, ref, 60, 0.35)
				want := recordTrace(t, "interp", res.Design, instants)
				for _, backend := range backends {
					if backend == "interp" {
						continue
					}
					got := recordTrace(t, backend, res.Design, instants)
					if err := exec.Diff(want, got); err != nil {
						t.Errorf("%s seed %d (interp vs %s): %v", tc.module, seed, backend, err)
					}
				}
			}
		})
	}
}

// TestConformanceMinimizeShrinks checks that bisimulation minimization
// never grows the machine (behavior equality is covered by the generic
// diff above through the efsm-min backend).
func TestConformanceMinimizeShrinks(t *testing.T) {
	d := driver.New(0)
	for _, tc := range conformanceCases {
		res := d.BuildOne(driver.Request{Path: tc.path, Source: tc.src, Module: tc.module})
		if res.Failed() {
			t.Fatalf("build %s: %v", tc.module, res.Err)
		}
		min, _ := efsm.Minimize(res.Design.Machine)
		if got, was := len(min.States), len(res.Design.Machine.States); got > was {
			t.Errorf("%s: minimize grew the machine: %d -> %d states", tc.module, was, got)
		}
	}
}

// TestConformanceTraceReplay checks the acceptance path end to end: a
// trace recorded on one backend, serialized to JSONL, read back, and
// replayed against a different backend reproduces the observations.
func TestConformanceTraceReplay(t *testing.T) {
	d := driver.New(0)
	res := d.BuildOne(driver.Request{Path: "stack.ecl", Source: paperex.Stack, Module: "toplevel"})
	if res.Failed() {
		t.Fatalf("build: %v", res.Err)
	}
	m, err := exec.Open("efsm", res.Design)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	recorded, err := exec.Record(m, randomInstants(rng, m, 80, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := recorded.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := exec.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, backend := range []string{"interp", "efsm-min"} {
		other, err := exec.Open(backend, res.Design)
		if err != nil {
			t.Fatal(err)
		}
		got, err := exec.Replay(other, back)
		if err != nil {
			t.Fatal(err)
		}
		if err := exec.Diff(back, got); err != nil {
			t.Errorf("efsm trace replayed on %s: %v", backend, err)
		}
	}
}

// ---------------------------------------------------------------------------
// Generated-Go conformance

// goHarness is the driver compiled next to the generated machine: it
// reads a canonical JSONL trace on stdin, reacts instant by instant,
// and writes its own observations as JSONL events on stdout.
const goHarness = `package main

import (
	"bufio"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

type event struct {
	I    int               ` + "`json:\"i\"`" + `
	In   map[string]string ` + "`json:\"in,omitempty\"`" + `
	Out  map[string]string ` + "`json:\"out,omitempty\"`" + `
	Term bool              ` + "`json:\"term,omitempty\"`" + `
}

func main() {
	m := New()
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	enc := json.NewEncoder(out)
	first := true
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if first { // header
			first = false
			continue
		}
		var ev event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		in := map[string][]byte{}
		for name, v := range ev.In {
			if v == "" {
				in[name] = nil
				continue
			}
			b, err := hex.DecodeString(strings.TrimPrefix(v, "0x"))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			in[name] = b
		}
		got := m.React(in)
		oute := event{I: ev.I, Out: map[string]string{}, Term: m.Done()}
		for name, b := range got {
			if b == nil {
				oute.Out[name] = ""
			} else {
				oute.Out[name] = "0x" + hex.EncodeToString(b)
			}
		}
		if err := enc.Encode(oute); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if m.Done() {
			break
		}
	}
}
`

// TestConformanceGeneratedGo compiles each module's synthesized Go
// code with the host toolchain and diffs its trace against the
// reference interpreter's via the canonical trace format.
func TestConformanceGeneratedGo(t *testing.T) {
	if testing.Short() {
		t.Skip("generated-Go conformance needs the go toolchain; skipped in -short")
	}
	goTool, err := osexec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not available")
	}
	d := driver.New(0)
	for _, tc := range conformanceCases {
		tc := tc
		t.Run(tc.module, func(t *testing.T) {
			t.Parallel()
			res := d.BuildOne(driver.Request{
				Path: tc.path, Source: tc.src, Module: tc.module,
				Targets: []driver.Target{driver.TargetGo}, GoPackage: "main",
			})
			if res.Failed() {
				t.Fatalf("build: %v", res.Err)
			}
			ref, err := exec.Open("interp", res.Design)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(9))
			want, err := exec.Record(ref, randomInstants(rng, ref, 40, 0.35))
			if err != nil {
				t.Fatal(err)
			}

			dir := t.TempDir()
			files := map[string]string{
				"go.mod":     "module genconf\n\ngo 1.24\n",
				"machine.go": res.Artifacts[driver.TargetGo],
				"main.go":    goHarness,
			}
			for name, text := range files {
				if err := os.WriteFile(filepath.Join(dir, name), []byte(text), 0o666); err != nil {
					t.Fatal(err)
				}
			}
			var stdin bytes.Buffer
			if err := want.Encode(&stdin); err != nil {
				t.Fatal(err)
			}
			cmd := osexec.Command(goTool, "run", ".")
			cmd.Dir = dir
			cmd.Stdin = &stdin
			var stdout, stderr bytes.Buffer
			cmd.Stdout = &stdout
			cmd.Stderr = &stderr
			if err := cmd.Run(); err != nil {
				t.Fatalf("go run: %v\n%s", err, stderr.String())
			}

			got := exec.NewTrace(tc.module, "gen-go")
			for _, line := range strings.Split(stdout.String(), "\n") {
				line = strings.TrimSpace(line)
				if line == "" {
					continue
				}
				var ev exec.Event
				if err := json.Unmarshal([]byte(line), &ev); err != nil {
					t.Fatalf("harness output %q: %v", line, err)
				}
				got.Events = append(got.Events, ev)
			}
			if err := exec.Diff(want, got); err != nil {
				t.Errorf("%s (interp vs generated Go): %v", tc.module, err)
			}
		})
	}
}
