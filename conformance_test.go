// Differential conformance tests: the paper gives ECL three execution
// routes that must agree — the reference interpreter (Esterel's logical
// semantics with constructive causality), and the compiled EFSM. These
// tests drive both engines with identical pseudo-random input
// sequences over every paper-example module and require the emitted
// output traces to match instant by instant, including a
// minimized-vs-unminimized EFSM comparison.
package ecl

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/cval"
	"repro/internal/driver"
	"repro/internal/interp"
	"repro/internal/kernel"
	"repro/internal/paperex"
)

// conformanceCases lists every paper-example module that compiles.
var conformanceCases = []struct {
	path, src, module string
}{
	{"abro.ecl", paperex.ABRO, "abro"},
	{"runner.ecl", paperex.RunnerStop, "runner"},
	{"stack.ecl", paperex.Stack, "assemble"},
	{"stack.ecl", paperex.Stack, "checkcrc"},
	{"stack.ecl", paperex.Stack, "prochdr"},
	{"stack.ecl", paperex.Stack, "toplevel"},
	{"buffer.ecl", paperex.Buffer, "recordctl"},
	{"buffer.ecl", paperex.Buffer, "playctl"},
	{"buffer.ecl", paperex.Buffer, "levelmon"},
	{"buffer.ecl", paperex.Buffer, "bufferctl"},
}

// randomInstants builds a deterministic pseudo-random input sequence
// for a module: each instant presents each input with probability p,
// valued inputs carrying a small random value.
func randomInstants(rng *rand.Rand, inputs []*kernel.Signal, n int, p float64) []map[*kernel.Signal]cval.Value {
	instants := make([]map[*kernel.Signal]cval.Value, n)
	for i := range instants {
		in := map[*kernel.Signal]cval.Value{}
		for _, sig := range inputs {
			if rng.Float64() >= p {
				continue
			}
			var v cval.Value
			if !sig.Pure && sig.Type != nil {
				v = cval.FromInt(sig.Type, int64(rng.Intn(256)))
			}
			in[sig] = v
		}
		instants[i] = in
	}
	return instants
}

// instantString renders one instant's emitted outputs canonically.
func instantString(outs map[*kernel.Signal]cval.Value, terminated bool) string {
	var parts []string
	for s, v := range outs {
		if v.IsValid() {
			parts = append(parts, s.Name+"="+v.String())
		} else {
			parts = append(parts, s.Name)
		}
	}
	sort.Strings(parts)
	if terminated {
		parts = append(parts, "<terminated>")
	}
	return strings.Join(parts, " ")
}

// interpTrace runs the input sequence through the reference
// interpreter.
func interpTrace(t *testing.T, design *core.Design, instants []map[*kernel.Signal]cval.Value) []string {
	t.Helper()
	m := design.Interpreter()
	trace := make([]string, 0, len(instants))
	for i, in := range instants {
		r, err := m.React(interp.Inputs(in))
		if err != nil {
			t.Fatalf("interp instant %d: %v", i, err)
		}
		trace = append(trace, instantString(r.Outputs, r.Terminated))
		if r.Terminated {
			break
		}
	}
	return trace
}

// efsmTrace runs the input sequence through the compiled-EFSM runtime.
func efsmTrace(t *testing.T, design *core.Design, instants []map[*kernel.Signal]cval.Value) []string {
	t.Helper()
	rt := design.Runtime()
	trace := make([]string, 0, len(instants))
	for i, in := range instants {
		r, err := rt.Step(in)
		if err != nil {
			t.Fatalf("efsm instant %d: %v", i, err)
		}
		trace = append(trace, instantString(r.Outputs, r.Terminated))
		if r.Terminated {
			break
		}
	}
	return trace
}

func diffTraces(t *testing.T, label string, want, got []string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: trace lengths differ: %d vs %d\nA: %v\nB: %v",
			label, len(want), len(got), want, got)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Errorf("%s: instant %d differs:\n  A: [%s]\n  B: [%s]",
				label, i, want[i], got[i])
		}
	}
}

// TestConformanceInterpVsEFSM checks that the interpreter and the
// compiled EFSM emit identical output traces on every paper example.
func TestConformanceInterpVsEFSM(t *testing.T) {
	d := driver.New(0)
	for _, tc := range conformanceCases {
		tc := tc
		t.Run(tc.module, func(t *testing.T) {
			res := d.BuildOne(driver.Request{Path: tc.path, Source: tc.src, Module: tc.module})
			if res.Failed() {
				t.Fatalf("build: %v", res.Err)
			}
			design := res.Design
			for seed := int64(1); seed <= 3; seed++ {
				rng := rand.New(rand.NewSource(seed))
				instants := randomInstants(rng, design.Lowered.Module.Inputs, 60, 0.35)
				a := interpTrace(t, design, instants)
				b := efsmTrace(t, design, instants)
				diffTraces(t, fmt.Sprintf("%s seed %d (interp vs efsm)", tc.module, seed), a, b)
			}
		})
	}
}

// TestConformanceMinimizedEFSM checks that bisimulation minimization
// preserves observable behavior: the minimized and unminimized EFSMs
// produce identical traces.
func TestConformanceMinimizedEFSM(t *testing.T) {
	d := driver.New(0)
	for _, tc := range conformanceCases {
		tc := tc
		t.Run(tc.module, func(t *testing.T) {
			plain := d.BuildOne(driver.Request{Path: tc.path, Source: tc.src, Module: tc.module})
			min := d.BuildOne(driver.Request{
				Path: tc.path, Source: tc.src, Module: tc.module,
				Options: core.Options{Minimize: true},
			})
			if plain.Failed() || min.Failed() {
				t.Fatalf("build: %v / %v", plain.Err, min.Err)
			}
			if got, was := len(min.Design.Machine.States), len(plain.Design.Machine.States); got > was {
				t.Errorf("minimize grew the machine: %d -> %d states", was, got)
			}
			rng := rand.New(rand.NewSource(7))
			// Both designs come from separate parses, so drive each
			// with its own signal pointers but the same drawn sequence.
			instantsA := randomInstants(rng, plain.Design.Lowered.Module.Inputs, 60, 0.35)
			instantsB := remapInstants(instantsA, min.Design.Lowered.Module)
			a := efsmTrace(t, plain.Design, instantsA)
			b := efsmTrace(t, min.Design, instantsB)
			diffTraces(t, tc.module+" (unminimized vs minimized)", a, b)
		})
	}
}

// remapInstants translates an input sequence onto another parse's
// signal identities by name.
func remapInstants(instants []map[*kernel.Signal]cval.Value, mod *kernel.Module) []map[*kernel.Signal]cval.Value {
	out := make([]map[*kernel.Signal]cval.Value, len(instants))
	for i, in := range instants {
		m := map[*kernel.Signal]cval.Value{}
		for s, v := range in {
			m[mod.Signal(s.Name)] = v
		}
		out[i] = m
	}
	return out
}
