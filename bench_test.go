// Benchmarks regenerating the paper's evaluation. One benchmark per
// Table 1 row, one per code figure (Figures 1-4), plus ablations for
// the design choices DESIGN.md calls out. Metrics reported through
// testing.B's ReportMetric carry the table's columns: code/data bytes,
// task and RTOS kilocycles, and EFSM sizes.
//
// The shapes to look for (see EXPERIMENTS.md for the recorded runs):
//
//   - Stack: the 3-task partition has more total memory and more total
//     cycles than the 1-task one (RTOS overhead at small granularity);
//   - Buffer: the 1-task (synchronous) partition has much bigger task
//     code (product automaton) but runs fewer total cycles.
package ecl

import (
	"context"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/ctypes"
	"repro/internal/cval"
	"repro/internal/driver"
	"repro/internal/eclgen"
	"repro/internal/efsm"
	"repro/internal/exec"
	"repro/internal/lower"
	"repro/internal/paperex"
	"repro/internal/pipeline"
	"repro/internal/sim"
	"repro/internal/simd"
)

// benchPackets scales the stack workload for benchmarking (the paper's
// full 500-packet run is the eclbench default and is recorded in
// EXPERIMENTS.md).
const benchPackets = 100

// ---------------------------------------------------------------------------
// Table 1

func table1System(b *testing.B, example, partition string) (sim.System, func(sim.System) error) {
	b.Helper()
	switch example {
	case "Stack":
		info, err := sim.AnalyzeSource("stack.ecl", paperex.Stack)
		if err != nil {
			b.Fatal(err)
		}
		var sys sim.System
		if partition == "sync" {
			sys, err = sim.BuildSync(info, "toplevel", sim.Config{})
		} else {
			sys, err = sim.BuildAsync(info, "toplevel", sim.Config{})
		}
		if err != nil {
			b.Fatal(err)
		}
		return sys, func(s sim.System) error {
			_, err := sim.RunStack(s, benchPackets)
			return err
		}
	default:
		info, err := sim.AnalyzeSource("buffer.ecl", paperex.Buffer)
		if err != nil {
			b.Fatal(err)
		}
		var sys sim.System
		if partition == "sync" {
			sys, err = sim.BuildSync(info, "bufferctl", sim.Config{})
		} else {
			sys, err = sim.BuildAsync(info, "bufferctl", sim.Config{})
		}
		if err != nil {
			b.Fatal(err)
		}
		return sys, func(s sim.System) error {
			_, err := sim.RunBuffer(s, 4, 48)
			return err
		}
	}
}

func benchTable1(b *testing.B, example, partition string) {
	sys, run := table1System(b, example, partition)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := run(sys); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	m := sys.Metrics()
	b.ReportMetric(float64(m.TaskImage.CodeBytes), "task-code-B")
	b.ReportMetric(float64(m.TaskImage.DataBytes), "task-data-B")
	b.ReportMetric(float64(m.RTOSImage.CodeBytes), "rtos-code-B")
	b.ReportMetric(float64(m.RTOSImage.DataBytes), "rtos-data-B")
	b.ReportMetric(float64(m.TaskCycles)/float64(b.N)/1000, "task-kcyc/run")
	b.ReportMetric(float64(m.KernelCycles)/float64(b.N)/1000, "rtos-kcyc/run")
	b.ReportMetric(float64(m.States), "efsm-states")
}

// BenchmarkTable1StackSync is Table 1 row "Stack / 1 task".
func BenchmarkTable1StackSync(b *testing.B) { benchTable1(b, "Stack", "sync") }

// BenchmarkTable1StackAsync is Table 1 row "Stack / 3 tasks".
func BenchmarkTable1StackAsync(b *testing.B) { benchTable1(b, "Stack", "async") }

// BenchmarkTable1BufferSync is Table 1 row "Buffer / 1 task".
func BenchmarkTable1BufferSync(b *testing.B) { benchTable1(b, "Buffer", "sync") }

// BenchmarkTable1BufferAsync is Table 1 row "Buffer / 3 tasks".
func BenchmarkTable1BufferAsync(b *testing.B) { benchTable1(b, "Buffer", "async") }

// ---------------------------------------------------------------------------
// Figures 1-4: the compiler flow over each listing

func benchFigure(b *testing.B, src, module string) {
	var design *core.Design
	for i := 0; i < b.N; i++ {
		prog, err := core.Parse(module+".ecl", src, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		design, err = prog.Compile(module)
		if err != nil {
			b.Fatal(err)
		}
	}
	st := design.Stats()
	b.ReportMetric(float64(st.EFSM.States), "efsm-states")
	b.ReportMetric(float64(st.EFSM.Leaves), "transitions")
	b.ReportMetric(float64(st.DataFuncs), "data-funcs")
	b.ReportMetric(float64(st.Image.CodeBytes), "code-B")
}

// BenchmarkFigure1Assemble compiles Figure 1 (byte assembly; reactive
// for-loop with await).
func BenchmarkFigure1Assemble(b *testing.B) {
	benchFigure(b, paperex.Header+paperex.Assemble, "assemble")
}

// BenchmarkFigure2CheckCRC compiles Figure 2 (CRC check; the data loop
// extracts as a C function — expect data-funcs >= 1).
func BenchmarkFigure2CheckCRC(b *testing.B) {
	benchFigure(b, paperex.Header+paperex.CheckCRC, "checkcrc")
}

// BenchmarkFigure3ProcHdr compiles Figure 3 (par + abort killing a
// multi-instant computation).
func BenchmarkFigure3ProcHdr(b *testing.B) {
	benchFigure(b, paperex.Header+paperex.ProcHdr, "prochdr")
}

// BenchmarkFigure4TopLevel compiles Figure 4 (three-way par with
// internal signals: the whole stack as one EFSM).
func BenchmarkFigure4TopLevel(b *testing.B) {
	benchFigure(b, paperex.Stack, "toplevel")
}

// ---------------------------------------------------------------------------
// Ablations

func compileWithPolicy(b *testing.B, src, module string, pol lower.Policy) *core.Design {
	b.Helper()
	prog, err := core.Parse(module+".ecl", src, core.Options{Policy: pol})
	if err != nil {
		b.Fatal(err)
	}
	design, err := prog.Compile(module)
	if err != nil {
		b.Fatal(err)
	}
	return design
}

func benchSplitPolicy(b *testing.B, pol lower.Policy) {
	var design *core.Design
	for i := 0; i < b.N; i++ {
		design = compileWithPolicy(b, paperex.Buffer, "bufferctl", pol)
	}
	st := design.Stats()
	b.ReportMetric(float64(st.EFSM.States), "efsm-states")
	b.ReportMetric(float64(st.EFSM.DataBranches), "data-branches")
	b.ReportMetric(float64(st.DataFuncs), "data-funcs")
	b.ReportMetric(float64(st.Image.CodeBytes), "code-B")
}

// BenchmarkAblationSplitPolicyMaximal measures the paper's implemented
// scheme: everything except data loops goes to the reactive part, so
// Esterel case analysis sees all the data branches (bigger EFSM).
func BenchmarkAblationSplitPolicyMaximal(b *testing.B) {
	benchSplitPolicy(b, lower.MaximalReactive)
}

// BenchmarkAblationSplitPolicyMinimal measures the Section 6
// future-work scheme: pure-data runs extract to C, keeping the EFSM
// minimal (fewer data branches, smaller code).
func BenchmarkAblationSplitPolicyMinimal(b *testing.B) {
	benchSplitPolicy(b, lower.MinimalReactive)
}

// loopStyleData uses a data loop (instantaneous, extracted to C).
const loopStyleData = `
typedef unsigned char byte;
module sum (input byte v, output byte total) {
    int i; int acc;
    while (1) {
        await (v);
        acc = 0;
        for (i = 0; i < 8; i++) { acc = acc + v; }
        emit_v (total, acc);
    }
}`

// loopStyleReactive forces the same loop into EFSM transitions with an
// empty await() delta cycle per iteration (the paper: "This mechanism
// can also be used to force a loop to be implemented as a sequence of
// EFSM transitions, instead of being extracted as C code").
const loopStyleReactive = `
typedef unsigned char byte;
module sum (input byte v, output byte total) {
    int i; int acc;
    while (1) {
        await (v);
        acc = 0;
        for (i = 0; i < 8; i++) { acc = acc + v; await (); }
        emit_v (total, acc);
    }
}`

func benchLoopStyle(b *testing.B, src string) {
	var design *core.Design
	for i := 0; i < b.N; i++ {
		design = compileWithPolicy(b, src, "sum", lower.MaximalReactive)
	}
	st := design.Stats()
	b.ReportMetric(float64(st.EFSM.States), "efsm-states")
	b.ReportMetric(float64(st.DataFuncs), "data-funcs")
	b.ReportMetric(float64(st.Image.CodeBytes), "code-B")
}

// BenchmarkAblationLoopStyleData: the loop extracts as one atomic C
// function (one EFSM transition does all 8 iterations).
func BenchmarkAblationLoopStyleData(b *testing.B) { benchLoopStyle(b, loopStyleData) }

// BenchmarkAblationLoopStyleReactive: the delta-cycle loop becomes 8
// EFSM transitions (more states, reaction spread over instants).
func BenchmarkAblationLoopStyleReactive(b *testing.B) { benchLoopStyle(b, loopStyleReactive) }

func abroMachine(b *testing.B) *efsm.Machine {
	b.Helper()
	design := compileWithPolicy(b, paperex.ABRO, "abro", lower.MaximalReactive)
	return design.Machine
}

// BenchmarkAblationCircuitOptOn synthesizes ABRO with folding and
// structural hashing.
func BenchmarkAblationCircuitOptOn(b *testing.B) {
	m := abroMachine(b)
	var c *circuit.Circuit
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err = circuit.FromEFSMOpts(m, true)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(c.CollectStats().Gates), "gates")
}

// BenchmarkAblationCircuitOptOff synthesizes the raw netlist.
func BenchmarkAblationCircuitOptOff(b *testing.B) {
	m := abroMachine(b)
	var c *circuit.Circuit
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err = circuit.FromEFSMOpts(m, false)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(c.CollectStats().Gates), "gates")
}

// BenchmarkAblationMinimizeStack measures EFSM state minimization on
// the whole stack machine.
func BenchmarkAblationMinimizeStack(b *testing.B) {
	design := compileWithPolicy(b, paperex.Stack, "toplevel", lower.MaximalReactive)
	before := len(design.Machine.States)
	var after int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		min, _ := efsm.Minimize(design.Machine)
		after = len(min.States)
	}
	b.ReportMetric(float64(before), "states-before")
	b.ReportMetric(float64(after), "states-after")
}

// ---------------------------------------------------------------------------
// Batch compilation: the driver over the whole paper-example corpus

// corpusRequests builds one request per module of the paper-example
// corpus (every module of the protocol stack and the audio buffer
// controller, plus ABRO and the weak-abort runner): 10 modules total.
func corpusRequests(b *testing.B) []driver.Request {
	b.Helper()
	var reqs []driver.Request
	for _, f := range []struct{ path, src string }{
		{"stack.ecl", paperex.Stack},
		{"buffer.ecl", paperex.Buffer},
	} {
		expanded, err := driver.ExpandModules(driver.Request{
			Path: f.path, Source: f.src,
			Targets: []driver.Target{driver.TargetEsterel, driver.TargetC, driver.TargetGlue},
		})
		if err != nil {
			b.Fatal(err)
		}
		reqs = append(reqs, expanded...)
	}
	reqs = append(reqs,
		driver.Request{Path: "abro.ecl", Source: paperex.ABRO,
			Targets: []driver.Target{driver.TargetEsterel, driver.TargetC, driver.TargetGlue}},
		driver.Request{Path: "runner.ecl", Source: paperex.RunnerStop,
			Targets: []driver.Target{driver.TargetEsterel, driver.TargetC, driver.TargetGlue}},
	)
	return reqs
}

// benchBatch compiles the corpus cold each iteration (cache disabled)
// with the given worker-pool width.
func benchBatch(b *testing.B, workers int) {
	reqs := corpusRequests(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := &driver.Driver{Workers: workers, NoCache: true}
		results, err := d.Build(ctx, reqs)
		if err != nil {
			b.Fatal(err)
		}
		if len(results) != len(reqs) {
			b.Fatalf("results = %d", len(results))
		}
	}
	b.ReportMetric(float64(len(reqs)), "modules")
}

// BenchmarkBatchSequential compiles the corpus one module at a time —
// the old eclc-in-a-loop baseline.
func BenchmarkBatchSequential(b *testing.B) { benchBatch(b, 1) }

// BenchmarkBatchConcurrent compiles the corpus over an 8-wide worker
// pool. The speedup over BenchmarkBatchSequential tracks available
// cores up to the corpus's parallelism (the critical path is the
// toplevel stack module); on a single-CPU host the two tie, and the
// cached-rebuild benchmark below is the one to watch.
func BenchmarkBatchConcurrent(b *testing.B) { benchBatch(b, 8) }

// BenchmarkBatchCachedRebuild rebuilds an unchanged corpus against a
// warm driver: every design is a content-hash cache hit, so this
// measures the driver's no-op rebuild floor.
func BenchmarkBatchCachedRebuild(b *testing.B) {
	reqs := corpusRequests(b)
	ctx := context.Background()
	d := driver.New(0)
	if _, err := d.Build(ctx, reqs); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Build(ctx, reqs); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(d.CacheStats().Hits)/float64(b.N), "cache-hits/op")
}

// BenchmarkColdVsWarmDiskCache measures the persistent cache's whole
// point: a separate process (fresh driver + fresh store handle)
// rebuilding the unchanged paper-example corpus. "cold" compiles into
// an empty store; "warm" replays a populated one and must be several
// times faster (the acceptance bar is 5x) with every request served
// from disk.
func BenchmarkColdVsWarmDiskCache(b *testing.B) {
	reqs := corpusRequests(b)
	ctx := context.Background()
	build := func(b *testing.B, dir string) *driver.Driver {
		store, err := cache.Open(dir)
		if err != nil {
			b.Fatal(err)
		}
		d := &driver.Driver{Disk: store}
		if _, err := d.Build(ctx, reqs); err != nil {
			b.Fatal(err)
		}
		return d
	}
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			dir := b.TempDir() // empty store every iteration
			b.StartTimer()
			build(b, dir)
		}
	})
	b.Run("warm", func(b *testing.B) {
		dir := b.TempDir()
		build(b, dir) // populate once
		b.ResetTimer()
		var d *driver.Driver
		for i := 0; i < b.N; i++ {
			d = build(b, dir)
		}
		b.StopTimer()
		cs := d.CacheStats()
		if cs.Misses != 0 || cs.DiskHits == 0 {
			b.Fatalf("warm rebuild compiled: %+v", cs)
		}
		b.ReportMetric(float64(cs.DiskHits), "disk-hits/op")
	})
}

// ---------------------------------------------------------------------------
// Per-backend execution benchmarks through the unified exec API

// ---------------------------------------------------------------------------
// Incremental (phase-graph) rebuild benchmarks

// incrementalBenchSrc generates the incremental fixture: five parallel
// reactive branches (a state product that makes EFSM synthesis the
// dominant compile cost) plus one data loop whose body — the only
// place factor appears — is extracted as a data function. Varying
// factor is therefore a pure data-function edit.
func incrementalBenchSrc(factor int) string {
	const branches = 5
	var sb strings.Builder
	sb.WriteString("module heavy (")
	for i := 0; i < branches; i++ {
		fmt.Fprintf(&sb, "input pure s%d, ", i)
	}
	sb.WriteString("input int req, output int done, output pure pulse)\n{\n    int acc;\n    int n;\n    acc = 0;\n    par {\n")
	for i := 0; i < branches; i++ {
		fmt.Fprintf(&sb, "        while (1) { await (s%d); emit (pulse); await (s%d); }\n", i, (i+1)%branches)
	}
	fmt.Fprintf(&sb, `        while (1) {
            await (req);
            n = 0;
            while (n < 6) {
                acc = acc + %d;
                n = n + 1;
            }
            emit_v (done, acc);
        }
`, factor)
	sb.WriteString("    }\n}\n")
	return sb.String()
}

// BenchmarkMegaDesignBatch compiles every module of a generated
// 1000-module file (internal/eclgen, fixed seed) to C, comparing the
// file-level shared front end against the old per-module front end
// (Driver.NoShare). The per-module baseline re-parses and re-analyzes
// the whole file for every module — O(modules²) front-end work — so
// sharing must win by at least 3x (eclbench -compare gates the ratio;
// on one core it measures well above that). Each iteration builds a
// fresh driver: the unit map is per-driver, so this times one whole
// cold batch, not a warm replay.
func BenchmarkMegaDesignBatch(b *testing.B) {
	const modules = 1000
	src := eclgen.File(1, modules)
	seed := driver.Request{Path: "mega.ecl", Source: src, Targets: []driver.Target{driver.TargetC}}
	ctx := context.Background()
	run := func(b *testing.B, noShare bool) {
		for i := 0; i < b.N; i++ {
			d := &driver.Driver{NoCache: true, NoShare: noShare}
			reqs, err := d.ExpandModules(seed)
			if err != nil {
				b.Fatal(err)
			}
			if len(reqs) != modules {
				b.Fatalf("expanded to %d modules, want %d", len(reqs), modules)
			}
			if _, err := d.Build(ctx, reqs); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(modules, "modules")
	}
	b.Run("shared", func(b *testing.B) { run(b, false) })
	b.Run("per-module", func(b *testing.B) { run(b, true) })
}

var incrementalBenchTargets = []driver.Target{driver.TargetC, driver.TargetEsterel, driver.TargetStats}

// BenchmarkIncrementalColdCompile is the baseline: a full uncached
// compile of the incremental fixture (every phase rebuilt).
func BenchmarkIncrementalColdCompile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d := &driver.Driver{NoCache: true}
		res := d.BuildOne(driver.Request{
			Path: "heavy.ecl", Source: incrementalBenchSrc(i + 2),
			Targets: incrementalBenchTargets,
		})
		if res.Failed() {
			b.Fatal(res.Err)
		}
	}
}

// BenchmarkIncrementalDataEdit measures the phase graph's acceptance
// criterion: each iteration is a *new process* (fresh driver and store
// handle) compiling a source whose data-function body changed since
// the store was warmed. The front end and emission re-run, but the
// efsm phase replays its snapshot from the v2 store — this must be
// >= 5x faster than BenchmarkIncrementalColdCompile (measured ~8x).
func BenchmarkIncrementalDataEdit(b *testing.B) {
	dir := b.TempDir()
	store, err := cache.Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	seed := &driver.Driver{Disk: store}
	if res := seed.BuildOne(driver.Request{
		Path: "heavy.ecl", Source: incrementalBenchSrc(1),
		Targets: incrementalBenchTargets,
	}); res.Failed() {
		b.Fatal(res.Err)
	}
	b.ResetTimer()
	var last *driver.Driver
	for i := 0; i < b.N; i++ {
		store, err := cache.Open(dir)
		if err != nil {
			b.Fatal(err)
		}
		last = &driver.Driver{Disk: store}
		res := last.BuildOne(driver.Request{
			Path: "heavy.ecl", Source: incrementalBenchSrc(i + 2), // unique data edit per iteration
			Targets: incrementalBenchTargets,
		})
		if res.Failed() {
			b.Fatal(res.Err)
		}
	}
	b.StopTimer()
	cs := last.CacheStats()
	efsm := cs.Phases[pipeline.PhaseEFSM]
	if efsm.DiskHits != 1 || efsm.Rebuilds != 0 {
		b.Fatalf("efsm phase not replayed from disk: %+v", efsm)
	}
	b.ReportMetric(float64(efsm.DiskHits), "efsm-replays/op")
}

// BenchmarkStepPacket measures per-backend Step throughput: one stack
// packet pushed byte-per-instant through every registered backend.
// Expect the compiled EFSM far ahead of the reference interpreter (the
// paper's point about compiled reaction speed), with the RTOS system
// simulation in between (mailbox and scheduling overhead per tick).
func BenchmarkStepPacket(b *testing.B) {
	design := compileWithPolicy(b, paperex.Stack, "toplevel", lower.MaximalReactive)
	pkt := paperex.MakePacket(true)
	instants := make([]map[string]cval.Value, paperex.PktSize)
	for j := range instants {
		instants[j] = map[string]cval.Value{
			"in_byte": cval.FromInt(ctypes.UChar, int64(pkt[j])),
		}
	}
	for _, backend := range exec.Backends() {
		b.Run(backend, func(b *testing.B) {
			m, err := exec.Open(backend, design)
			if err != nil {
				b.Skipf("open: %v", err)
			}
			if ss, ok := m.(exec.SlotStepper); ok {
				benchStepPacketSlots(b, ss, instants)
				return
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := 0; j < paperex.PktSize; j++ {
					if _, err := m.Step(instants[j]); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ReportMetric(float64(paperex.PktSize), "instants/op")
		})
	}
}

// benchStepPacketSlots drives a slot-indexed backend through its
// allocation-free hot path: name resolution and vector allocation
// happen once out here, outside the timer, the way a long-running
// harness would set up its I/O buffers. The efsm-table run must report
// 0 allocs/op (eclbench -compare gates on it).
func benchStepPacketSlots(b *testing.B, m exec.SlotStepper, instants []map[string]cval.Value) {
	ports := m.Ports()
	present := make([][]bool, len(instants))
	vals := make([][]cval.Value, len(instants))
	for j, in := range instants {
		present[j] = ports.NewPresent()
		vals[j] = ports.NewInputs()
		if err := ports.BindInstant(in, present[j], vals[j]); err != nil {
			b.Fatal(err)
		}
	}
	out := ports.NewOutputs()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range instants {
			if _, err := m.StepSlots(present[j], vals[j], out); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(len(instants)), "instants/op")
}

// benchDaemon serves an execution daemon from an httptest server and
// returns a dialed client.
func benchDaemon(b *testing.B) *simd.Client {
	b.Helper()
	store, err := cache.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	d := driver.New(0)
	d.Disk = store
	daemon, err := simd.New(simd.Config{Driver: d, Store: store})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(daemon.Close)
	srv := httptest.NewServer(daemon)
	b.Cleanup(srv.Close)
	c, err := simd.Dial(srv.URL)
	if err != nil {
		b.Fatal(err)
	}
	return c
}

// BenchmarkDaemonStepsPerSecond measures daemon step throughput per
// wire strategy. One op is 64 executed instants in both variants:
// "single" spends 64 round trips on them (one instant per request),
// "batch64" one round trip of 64 instants. The gap is the daemon's
// reason for batched stepping — the acceptance bar is batch64 at >= 5x
// the steps/sec of single.
func BenchmarkDaemonStepsPerSecond(b *testing.B) {
	const batch = 64
	in := map[string]string{"A": ""}
	for _, mode := range []string{"single", "batch64"} {
		b.Run(mode, func(b *testing.B) {
			c := benchDaemon(b)
			info, err := c.Open(simd.OpenRequest{Path: "abro.ecl", Source: paperex.ABRO})
			if err != nil {
				b.Fatal(err)
			}
			inputs := make([]map[string]string, batch)
			for i := range inputs {
				inputs[i] = in
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if mode == "single" {
					for j := 0; j < batch; j++ {
						if _, err := c.StepEvents(info.ID, inputs[:1]); err != nil {
							b.Fatal(err)
						}
					}
				} else {
					if _, err := c.StepEvents(info.ID, inputs); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)*batch/b.Elapsed().Seconds(), "steps/s")
		})
	}
}

// BenchmarkDaemonSessionsPerSecond measures session churn: open a
// machine over an (instantly cache-hit) design, step it once, close it
// — the daemon-side cost of a short-lived tenant.
func BenchmarkDaemonSessionsPerSecond(b *testing.B) {
	c := benchDaemon(b)
	// Warm the compile cache so churn measures session plumbing, not
	// compilation.
	info, err := c.Open(simd.OpenRequest{Path: "abro.ecl", Source: paperex.ABRO})
	if err != nil {
		b.Fatal(err)
	}
	if err := c.Close(info.ID); err != nil {
		b.Fatal(err)
	}
	one := []map[string]string{{"A": ""}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		info, err := c.Open(simd.OpenRequest{Path: "abro.ecl", Source: paperex.ABRO})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := c.StepEvents(info.ID, one); err != nil {
			b.Fatal(err)
		}
		if err := c.Close(info.ID); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "sessions/s")
}

// BenchmarkSessionFork measures snapshot forking: branching a running
// stack simulation inside a Session.
func BenchmarkSessionFork(b *testing.B) {
	design := compileWithPolicy(b, paperex.Stack, "toplevel", lower.MaximalReactive)
	s := exec.NewSession()
	if _, err := s.Open("src", "efsm", design); err != nil {
		b.Fatal(err)
	}
	pkt := paperex.MakePacket(true)
	for j := 0; j < paperex.PktSize/2; j++ {
		in := map[string]cval.Value{"in_byte": cval.FromInt(ctypes.UChar, int64(pkt[j]))}
		if _, err := s.Step("src", in); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id, err := s.Fork("src", "")
		if err != nil {
			b.Fatal(err)
		}
		if err := s.Close(id); err != nil {
			b.Fatal(err)
		}
	}
}
