// Differential conformance over machine-generated programs: eclgen
// emits seeded, well-typed ECL programs by construction, and every
// registered conformant backend must reproduce the reference
// interpreter's trace on each of them. This is the csmith-style
// complement to conformance_test.go — the paper examples pin the
// semantics on designs a human thought of; the generated corpus walks
// the long tail of await/emit/par/preemption/data interleavings nobody
// wrote down.
package ecl

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	osexec "os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/eclgen"
	"repro/internal/exec"
)

// diffGeneratedProgram compiles every module of one generated program
// and trace-diffs each backend against the interpreter. Any failure —
// parse, compile, or divergence — is a real bug: either the generator
// broke its well-typedness contract or two backends disagree.
func diffGeneratedProgram(t *testing.T, backends []string, seed int64, instants int) {
	t.Helper()
	src := eclgen.Program(seed)
	prog, err := core.Parse("gen.ecl", src, core.Options{})
	if err != nil {
		t.Fatalf("seed %d: generated program rejected: %v\nsource:\n%s", seed, err, src)
	}
	for _, mod := range prog.Modules() {
		design, err := prog.Compile(mod)
		if err != nil {
			t.Fatalf("seed %d: compile %s: %v\nsource:\n%s", seed, mod, err, src)
		}
		ref, err := exec.Open("interp", design)
		if err != nil {
			t.Fatalf("seed %d: open interp for %s: %v", seed, mod, err)
		}
		rng := rand.New(rand.NewSource(seed + 1))
		workload := randomInstants(rng, ref, instants, 0.4)
		want := recordTrace(t, "interp", design, workload)
		for _, backend := range backends {
			if backend == "interp" {
				continue
			}
			got := recordTrace(t, backend, design, workload)
			if err := exec.Diff(want, got); err != nil {
				t.Errorf("seed %d module %s (interp vs %s): %v\nsource:\n%s",
					seed, mod, backend, err, src)
			}
		}
	}
}

// TestConformanceGenerated drives at least 100 generated programs
// through every conformant backend (a couple dozen in -short).
func TestConformanceGenerated(t *testing.T) {
	backends := exec.ConformantBackends()
	if len(backends) < 3 {
		t.Fatalf("want at least interp/efsm/efsm-min, have %v", backends)
	}
	n := 100
	if testing.Short() {
		n = 20
	}
	for seed := 0; seed < n; seed++ {
		diffGeneratedProgram(t, backends, int64(seed), 40)
	}
}

// FuzzGenConformance turns the differential harness into a fuzz
// target: any int64 is a valid seed, so the fuzzer explores generator
// space directly — every crash is either a generator well-typedness
// bug or a backend divergence.
func FuzzGenConformance(f *testing.F) {
	for seed := int64(0); seed < 8; seed++ {
		f.Add(seed)
	}
	backends := exec.ConformantBackends()
	f.Fuzz(func(t *testing.T, seed int64) {
		diffGeneratedProgram(t, backends, seed, 24)
	})
}

// TestConformanceGeneratedGoSample compiles the synthesized Go for a
// few generated programs with the host toolchain and diffs the binary
// trace against the interpreter — closing the loop from random
// generation all the way to emitted code.
func TestConformanceGeneratedGoSample(t *testing.T) {
	if testing.Short() {
		t.Skip("generated-Go conformance needs the go toolchain; skipped in -short")
	}
	goTool, err := osexec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not available")
	}
	for seed := int64(1); seed <= 3; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			src := eclgen.Program(seed)
			prog, err := core.Parse("gen.ecl", src, core.Options{})
			if err != nil {
				t.Fatalf("generated program rejected: %v", err)
			}
			mods := prog.Modules()
			mod := mods[len(mods)-1]
			design, err := prog.Compile(mod)
			if err != nil {
				t.Fatalf("compile %s: %v", mod, err)
			}
			goText, err := design.GoText("main")
			if err != nil {
				t.Fatalf("generate Go: %v", err)
			}
			ref, err := exec.Open("interp", design)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(seed + 100))
			want, err := exec.Record(ref, randomInstants(rng, ref, 30, 0.4))
			if err != nil {
				t.Fatal(err)
			}

			dir := t.TempDir()
			files := map[string]string{
				"go.mod":     "module genconf\n\ngo 1.24\n",
				"machine.go": goText,
				"main.go":    goHarness,
			}
			for name, text := range files {
				if err := os.WriteFile(filepath.Join(dir, name), []byte(text), 0o666); err != nil {
					t.Fatal(err)
				}
			}
			var stdin bytes.Buffer
			if err := want.Encode(&stdin); err != nil {
				t.Fatal(err)
			}
			cmd := osexec.Command(goTool, "run", ".")
			cmd.Dir = dir
			cmd.Stdin = &stdin
			var stdout, stderr bytes.Buffer
			cmd.Stdout = &stdout
			cmd.Stderr = &stderr
			if err := cmd.Run(); err != nil {
				t.Fatalf("go run: %v\n%s", err, stderr.String())
			}

			got := exec.NewTrace(mod, "gen-go")
			for _, line := range strings.Split(stdout.String(), "\n") {
				line = strings.TrimSpace(line)
				if line == "" {
					continue
				}
				var ev exec.Event
				if err := json.Unmarshal([]byte(line), &ev); err != nil {
					t.Fatalf("harness output %q: %v", line, err)
				}
				got.Events = append(got.Events, ev)
			}
			if err := exec.Diff(want, got); err != nil {
				t.Errorf("seed %d module %s (interp vs generated Go): %v", seed, mod, err)
			}
		})
	}
}
