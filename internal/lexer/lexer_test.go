package lexer

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/source"
	"repro/internal/token"
)

func lexAll(t *testing.T, src string) ([]token.Token, *source.DiagList) {
	t.Helper()
	var diags source.DiagList
	f := source.NewFile("test.ecl", src)
	return All(f, &diags), &diags
}

func kinds(toks []token.Token) []token.Kind {
	out := make([]token.Kind, 0, len(toks))
	for _, tk := range toks {
		out = append(out, tk.Kind)
	}
	return out
}

func TestKeywordsAndIdents(t *testing.T) {
	toks, diags := lexAll(t, "module m await emit_v xyz awaitx int bool")
	if diags.HasErrors() {
		t.Fatalf("unexpected errors: %s", diags)
	}
	want := []token.Kind{
		token.MODULE, token.IDENT, token.AWAIT, token.EMIT_V,
		token.IDENT, token.IDENT, token.INT_KW, token.BOOL_KW, token.EOF,
	}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestOperators(t *testing.T) {
	cases := map[string]token.Kind{
		"+": token.ADD, "-": token.SUB, "*": token.MUL, "/": token.QUO,
		"%": token.REM, "&": token.AND, "|": token.OR, "^": token.XOR,
		"<<": token.SHL, ">>": token.SHR, "&&": token.LAND, "||": token.LOR,
		"!": token.NOT, "~": token.TILDE, "=": token.ASSIGN,
		"+=": token.ADD_ASSIGN, "-=": token.SUB_ASSIGN, "*=": token.MUL_ASSIGN,
		"/=": token.QUO_ASSIGN, "%=": token.REM_ASSIGN, "&=": token.AND_ASSIGN,
		"|=": token.OR_ASSIGN, "^=": token.XOR_ASSIGN, "<<=": token.SHL_ASSIGN,
		">>=": token.SHR_ASSIGN, "==": token.EQL, "!=": token.NEQ,
		"<": token.LSS, ">": token.GTR, "<=": token.LEQ, ">=": token.GEQ,
		"++": token.INC, "--": token.DEC, "(": token.LPAREN, ")": token.RPAREN,
		"{": token.LBRACE, "}": token.RBRACE, "[": token.LBRACK, "]": token.RBRACK,
		",": token.COMMA, ";": token.SEMI, ":": token.COLON, ".": token.DOT,
		"->": token.ARROW, "?": token.QUESTION,
	}
	for src, want := range cases {
		toks, diags := lexAll(t, src)
		if diags.HasErrors() {
			t.Errorf("%q: unexpected errors: %s", src, diags)
			continue
		}
		if toks[0].Kind != want {
			t.Errorf("%q: got %v, want %v", src, toks[0].Kind, want)
		}
		if len(toks) != 2 {
			t.Errorf("%q: got %d tokens, want 2", src, len(toks))
		}
	}
}

func TestNumbers(t *testing.T) {
	cases := []struct {
		src  string
		kind token.Kind
	}{
		{"0", token.INT},
		{"12345", token.INT},
		{"0x1F", token.INT},
		{"017", token.INT},
		{"42u", token.INT},
		{"42UL", token.INT},
		{"1.25", token.FLOAT},
		{"1e9", token.FLOAT},
		{"3.5e-2", token.FLOAT},
		{".5", token.FLOAT},
		{"2.5f", token.FLOAT},
	}
	for _, c := range cases {
		toks, diags := lexAll(t, c.src)
		if diags.HasErrors() {
			t.Errorf("%q: unexpected errors: %s", c.src, diags)
			continue
		}
		if toks[0].Kind != c.kind {
			t.Errorf("%q: got %v, want %v", c.src, toks[0].Kind, c.kind)
		}
		if toks[0].Lit != c.src {
			t.Errorf("%q: got literal %q", c.src, toks[0].Lit)
		}
	}
}

func TestMalformedNumbers(t *testing.T) {
	for _, src := range []string{"0x", "1e", "1e+"} {
		_, diags := lexAll(t, src)
		if !diags.HasErrors() {
			t.Errorf("%q: expected an error", src)
		}
	}
}

func TestCharAndString(t *testing.T) {
	toks, diags := lexAll(t, `'a' '\n' "hi" "a\"b"`)
	if diags.HasErrors() {
		t.Fatalf("unexpected errors: %s", diags)
	}
	want := []token.Kind{token.CHAR, token.CHAR, token.STRING, token.STRING, token.EOF}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestUnterminatedLiterals(t *testing.T) {
	for _, src := range []string{`"abc`, `'a`, "/* foo"} {
		_, diags := lexAll(t, src)
		if !diags.HasErrors() {
			t.Errorf("%q: expected an error", src)
		}
	}
}

func TestComments(t *testing.T) {
	toks, diags := lexAll(t, "a // line\n b /* block\n still */ c")
	if diags.HasErrors() {
		t.Fatalf("unexpected errors: %s", diags)
	}
	var names []string
	for _, tk := range toks {
		if tk.Kind == token.IDENT {
			names = append(names, tk.Lit)
		}
	}
	if strings.Join(names, " ") != "a b c" {
		t.Errorf("got idents %v", names)
	}
}

func TestIllegalChar(t *testing.T) {
	toks, diags := lexAll(t, "a @ b")
	if !diags.HasErrors() {
		t.Fatal("expected an error for '@'")
	}
	if toks[1].Kind != token.ILLEGAL {
		t.Errorf("got %v, want ILLEGAL", toks[1].Kind)
	}
}

func TestPositions(t *testing.T) {
	f := source.NewFile("t.ecl", "ab\n  cd")
	var diags source.DiagList
	toks := All(f, &diags)
	if got := f.Pos(toks[0].Offset); got.Line() != 1 || got.Column() != 1 {
		t.Errorf("ab at %d:%d, want 1:1", got.Line(), got.Column())
	}
	if got := f.Pos(toks[1].Offset); got.Line() != 2 || got.Column() != 3 {
		t.Errorf("cd at %d:%d, want 2:3", got.Line(), got.Column())
	}
}

// TestPropertyLexConcat checks that lexing token texts joined by spaces
// reproduces the same token kinds — a mini round-trip property.
func TestPropertyLexConcat(t *testing.T) {
	vocab := []string{
		"ident", "x9", "module", "await", "emit", "42", "0x1F", "1.5",
		"+", "-", "*", "/", "==", "<=", "<<", "&&", "(", ")", "{", "}",
		";", ",", "present", "abort", "par", "signal",
	}
	check := func(picks []uint8) bool {
		var words []string
		for _, p := range picks {
			words = append(words, vocab[int(p)%len(vocab)])
		}
		src := strings.Join(words, " ")
		var diags source.DiagList
		toks := All(source.NewFile("p.ecl", src), &diags)
		if diags.HasErrors() {
			return false
		}
		if len(toks) != len(words)+1 {
			return false
		}
		for i, w := range words {
			var want source.DiagList
			one := All(source.NewFile("w.ecl", w), &want)
			if one[0].Kind != toks[i].Kind {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestTrailingBackslashInLiteral is the regression test for the fuzz
// crasher "\"\\0\\": a string or char literal whose final byte is a
// backslash escape used to walk the scanner past len(src) and panic
// slicing the literal. It must lex as an unterminated-literal
// diagnostic instead.
func TestTrailingBackslashInLiteral(t *testing.T) {
	for _, src := range []string{"\"\\0\\", "'\\", "\"abc\\", "'x\\"} {
		var diags source.DiagList
		toks := All(source.NewFile("t.ecl", src), &diags)
		if len(toks) == 0 || toks[len(toks)-1].Kind != token.EOF {
			t.Fatalf("%q: lexer did not reach EOF", src)
		}
		if !diags.HasErrors() {
			t.Errorf("%q: no unterminated-literal diagnostic", src)
		}
	}
}
