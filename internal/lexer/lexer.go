// Package lexer implements the scanner for ECL source text. It turns a
// preprocessed source file into a stream of tokens, reporting malformed
// literals and stray characters through a source.DiagList.
package lexer

import (
	"repro/internal/source"
	"repro/internal/token"
)

// Lexer scans one file. Create with New, then call Next until EOF.
type Lexer struct {
	file  *source.File
	src   string
	off   int
	diags *source.DiagList
}

// New returns a lexer over the contents of file, reporting errors to diags.
func New(file *source.File, diags *source.DiagList) *Lexer {
	return &Lexer{file: file, src: file.Content, diags: diags}
}

// Pos converts a byte offset into a source.Pos within the lexed file.
func (l *Lexer) Pos(offset int) source.Pos { return l.file.Pos(offset) }

func (l *Lexer) errorf(off int, format string, args ...interface{}) {
	l.diags.Errorf(l.file.Pos(off), format, args...)
}

func (l *Lexer) peek() byte {
	if l.off < len(l.src) {
		return l.src[l.off]
	}
	return 0
}

func (l *Lexer) peekAt(n int) byte {
	if l.off+n < len(l.src) {
		return l.src[l.off+n]
	}
	return 0
}

func isLetter(c byte) bool {
	return 'a' <= c && c <= 'z' || 'A' <= c && c <= 'Z' || c == '_'
}

func isDigit(c byte) bool { return '0' <= c && c <= '9' }

func isHexDigit(c byte) bool {
	return isDigit(c) || 'a' <= c && c <= 'f' || 'A' <= c && c <= 'F'
}

func (l *Lexer) skipSpaceAndComments() {
	for l.off < len(l.src) {
		c := l.src[l.off]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' || c == '\v':
			l.off++
		case c == '/' && l.peekAt(1) == '/':
			for l.off < len(l.src) && l.src[l.off] != '\n' {
				l.off++
			}
		case c == '/' && l.peekAt(1) == '*':
			start := l.off
			l.off += 2
			closed := false
			for l.off+1 < len(l.src) {
				if l.src[l.off] == '*' && l.src[l.off+1] == '/' {
					l.off += 2
					closed = true
					break
				}
				l.off++
			}
			if !closed {
				l.off = len(l.src)
				l.errorf(start, "unterminated block comment")
			}
		default:
			return
		}
	}
}

// Next returns the next token. At end of input it returns an EOF token
// forever.
func (l *Lexer) Next() token.Token {
	l.skipSpaceAndComments()
	start := l.off
	if l.off >= len(l.src) {
		return token.Token{Kind: token.EOF, Offset: start}
	}
	c := l.src[l.off]

	switch {
	case isLetter(c):
		for l.off < len(l.src) && (isLetter(l.src[l.off]) || isDigit(l.src[l.off])) {
			l.off++
		}
		lit := l.src[start:l.off]
		kind := token.Lookup(lit)
		return token.Token{Kind: kind, Lit: lit, Offset: start}

	case isDigit(c), c == '.' && isDigit(l.peekAt(1)):
		return l.scanNumber(start)

	case c == '\'':
		return l.scanChar(start)

	case c == '"':
		return l.scanString(start)
	}

	// Operators and punctuation.
	l.off++
	two := func(next byte, ifTwo, ifOne token.Kind) token.Token {
		if l.peek() == next {
			l.off++
			return token.Token{Kind: ifTwo, Offset: start}
		}
		return token.Token{Kind: ifOne, Offset: start}
	}

	switch c {
	case '+':
		if l.peek() == '+' {
			l.off++
			return token.Token{Kind: token.INC, Offset: start}
		}
		return two('=', token.ADD_ASSIGN, token.ADD)
	case '-':
		switch l.peek() {
		case '-':
			l.off++
			return token.Token{Kind: token.DEC, Offset: start}
		case '>':
			l.off++
			return token.Token{Kind: token.ARROW, Offset: start}
		}
		return two('=', token.SUB_ASSIGN, token.SUB)
	case '*':
		return two('=', token.MUL_ASSIGN, token.MUL)
	case '/':
		return two('=', token.QUO_ASSIGN, token.QUO)
	case '%':
		return two('=', token.REM_ASSIGN, token.REM)
	case '&':
		if l.peek() == '&' {
			l.off++
			return token.Token{Kind: token.LAND, Offset: start}
		}
		return two('=', token.AND_ASSIGN, token.AND)
	case '|':
		if l.peek() == '|' {
			l.off++
			return token.Token{Kind: token.LOR, Offset: start}
		}
		return two('=', token.OR_ASSIGN, token.OR)
	case '^':
		return two('=', token.XOR_ASSIGN, token.XOR)
	case '<':
		if l.peek() == '<' {
			l.off++
			return two('=', token.SHL_ASSIGN, token.SHL)
		}
		return two('=', token.LEQ, token.LSS)
	case '>':
		if l.peek() == '>' {
			l.off++
			return two('=', token.SHR_ASSIGN, token.SHR)
		}
		return two('=', token.GEQ, token.GTR)
	case '=':
		return two('=', token.EQL, token.ASSIGN)
	case '!':
		return two('=', token.NEQ, token.NOT)
	case '~':
		return token.Token{Kind: token.TILDE, Offset: start}
	case '(':
		return token.Token{Kind: token.LPAREN, Offset: start}
	case ')':
		return token.Token{Kind: token.RPAREN, Offset: start}
	case '{':
		return token.Token{Kind: token.LBRACE, Offset: start}
	case '}':
		return token.Token{Kind: token.RBRACE, Offset: start}
	case '[':
		return token.Token{Kind: token.LBRACK, Offset: start}
	case ']':
		return token.Token{Kind: token.RBRACK, Offset: start}
	case ',':
		return token.Token{Kind: token.COMMA, Offset: start}
	case ';':
		return token.Token{Kind: token.SEMI, Offset: start}
	case ':':
		return token.Token{Kind: token.COLON, Offset: start}
	case '.':
		return token.Token{Kind: token.DOT, Offset: start}
	case '?':
		return token.Token{Kind: token.QUESTION, Offset: start}
	}

	l.errorf(start, "illegal character %q", string(rune(c)))
	return token.Token{Kind: token.ILLEGAL, Lit: string(c), Offset: start}
}

func (l *Lexer) scanNumber(start int) token.Token {
	kind := token.INT
	if l.peek() == '0' && (l.peekAt(1) == 'x' || l.peekAt(1) == 'X') {
		l.off += 2
		n := 0
		for l.off < len(l.src) && isHexDigit(l.src[l.off]) {
			l.off++
			n++
		}
		if n == 0 {
			l.errorf(start, "malformed hex literal")
		}
	} else {
		for l.off < len(l.src) && isDigit(l.src[l.off]) {
			l.off++
		}
		if l.peek() == '.' {
			kind = token.FLOAT
			l.off++
			for l.off < len(l.src) && isDigit(l.src[l.off]) {
				l.off++
			}
		}
		if c := l.peek(); c == 'e' || c == 'E' {
			kind = token.FLOAT
			l.off++
			if c := l.peek(); c == '+' || c == '-' {
				l.off++
			}
			n := 0
			for l.off < len(l.src) && isDigit(l.src[l.off]) {
				l.off++
				n++
			}
			if n == 0 {
				l.errorf(start, "malformed exponent in float literal")
			}
		}
	}
	// Swallow C suffixes (u, l, f) without recording them.
	for {
		switch l.peek() {
		case 'u', 'U', 'l', 'L', 'f', 'F':
			l.off++
			continue
		}
		break
	}
	return token.Token{Kind: kind, Lit: l.src[start:l.off], Offset: start}
}

func (l *Lexer) scanChar(start int) token.Token {
	l.off++ // opening quote
	for l.off < len(l.src) && l.src[l.off] != '\'' && l.src[l.off] != '\n' {
		// A backslash consumes the escaped byte too — unless it is the
		// file's last byte, which would walk off past len(src).
		if l.src[l.off] == '\\' && l.off+1 < len(l.src) {
			l.off++
		}
		l.off++
	}
	if l.peek() != '\'' {
		l.errorf(start, "unterminated character literal")
		return token.Token{Kind: token.ILLEGAL, Lit: l.src[start:l.off], Offset: start}
	}
	l.off++
	return token.Token{Kind: token.CHAR, Lit: l.src[start:l.off], Offset: start}
}

func (l *Lexer) scanString(start int) token.Token {
	l.off++ // opening quote
	for l.off < len(l.src) && l.src[l.off] != '"' && l.src[l.off] != '\n' {
		// A backslash consumes the escaped byte too — unless it is the
		// file's last byte, which would walk off past len(src).
		if l.src[l.off] == '\\' && l.off+1 < len(l.src) {
			l.off++
		}
		l.off++
	}
	if l.peek() != '"' {
		l.errorf(start, "unterminated string literal")
		return token.Token{Kind: token.ILLEGAL, Lit: l.src[start:l.off], Offset: start}
	}
	l.off++
	return token.Token{Kind: token.STRING, Lit: l.src[start:l.off], Offset: start}
}

// All scans the whole file and returns every token up to and including
// the terminating EOF token. It is a convenience for tests and tools.
func All(file *source.File, diags *source.DiagList) []token.Token {
	l := New(file, diags)
	var toks []token.Token
	for {
		t := l.Next()
		toks = append(toks, t)
		if t.Kind == token.EOF {
			return toks
		}
	}
}
