package compile

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/ctypes"
	"repro/internal/cval"
	"repro/internal/efsm"
	"repro/internal/interp"
	"repro/internal/kernel"
	"repro/internal/lower"
	"repro/internal/paperex"
	"repro/internal/parser"
	"repro/internal/pp"
	"repro/internal/sem"
	"repro/internal/source"
)

func lowerSrc(t *testing.T, src, modName string, pol lower.Policy) *lower.Result {
	t.Helper()
	var diags source.DiagList
	expanded := pp.New(&diags, nil).Expand(source.NewFile("test.ecl", src))
	f := parser.ParseFile(expanded, &diags)
	if diags.HasErrors() {
		t.Fatalf("parse errors:\n%s", diags.String())
	}
	info := sem.Analyze(f, &diags)
	if diags.HasErrors() {
		t.Fatalf("sem errors:\n%s", diags.String())
	}
	res, err := lower.Lower(info, modName, pol, &diags)
	if err != nil {
		t.Fatalf("lower: %v\n%s", err, diags.String())
	}
	return res
}

func compileSrc(t *testing.T, src, modName string, pol lower.Policy) *efsm.Machine {
	t.Helper()
	res := lowerSrc(t, src, modName, pol)
	m, err := Compile(res)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return m
}

func TestCompileABROShape(t *testing.T) {
	m := compileSrc(t, paperex.ABRO, "abro", lower.MaximalReactive)
	st := m.CollectStats()
	// Boot + {waiting A,B} + {waiting A} + {waiting B} + {halted}.
	if st.States < 4 || st.States > 6 {
		t.Errorf("ABRO has %d states, expected 4-6\n%s", st.States, m.Dot())
	}
	if st.Leaves == 0 || st.Branches == 0 {
		t.Errorf("degenerate machine: %+v", st)
	}
	min, merged := efsm.Minimize(m)
	if min.CollectStats().States > st.States {
		t.Error("minimization grew the machine")
	}
	_ = merged
}

func TestCompileTerminatingModule(t *testing.T) {
	m := compileSrc(t, `module m(input pure a, output pure o) { await(a); emit(o); }`,
		"m", lower.MaximalReactive)
	foundTerm := false
	for _, s := range m.States {
		for _, tr := range m.Transitions(s) {
			if tr.Term {
				foundTerm = true
			}
		}
	}
	if !foundTerm {
		t.Error("no terminal transition in a terminating module")
	}
}

// cosim drives the interpreter and the EFSM runtime with the same
// random input sequence and requires identical emitted outputs (names
// and values) at every instant.
func cosim(t *testing.T, src, modName string, pol lower.Policy, instants int, seed int64) {
	t.Helper()
	res := lowerSrc(t, src, modName, pol)
	ref := interp.NewMachine(res.Module, res.Info)
	em, err := Compile(res)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	rt := efsm.NewRuntime(em)
	rng := rand.New(rand.NewSource(seed))

	for i := 0; i < instants; i++ {
		in := interp.Inputs{}
		rin := map[*kernel.Signal]cval.Value{}
		for _, sig := range res.Module.Inputs {
			if rng.Intn(3) != 0 {
				continue // each input present with probability 1/3
			}
			var v cval.Value
			if !sig.Pure {
				v = cval.FromInt(sig.Type, int64(rng.Intn(256)))
			}
			in[sig] = v
			rin[sig] = v
		}
		rr, err := ref.React(in)
		if err != nil {
			t.Fatalf("instant %d: interp: %v", i, err)
		}
		sr, err := rt.Step(rin)
		if err != nil {
			t.Fatalf("instant %d: efsm: %v", i, err)
		}
		refOut := outputsString(rr.Outputs)
		efsmOut := outputsString(sr.Outputs)
		if refOut != efsmOut {
			t.Fatalf("instant %d diverged:\n interp: %s\n efsm:   %s", i, refOut, efsmOut)
		}
		if rr.Terminated != sr.Terminated {
			t.Fatalf("instant %d: termination diverged (interp %v, efsm %v)", i, rr.Terminated, sr.Terminated)
		}
		if rr.Terminated {
			break
		}
	}
}

func outputsString(out map[*kernel.Signal]cval.Value) string {
	var parts []string
	for sig, v := range out {
		s := sig.Name
		if v.IsValid() {
			s += "=" + v.String()
		}
		parts = append(parts, s)
	}
	// order-insensitive compare
	for i := 0; i < len(parts); i++ {
		for j := i + 1; j < len(parts); j++ {
			if parts[j] < parts[i] {
				parts[i], parts[j] = parts[j], parts[i]
			}
		}
	}
	return strings.Join(parts, ",")
}

func TestCosimABRO(t *testing.T) {
	cosim(t, paperex.ABRO, "abro", lower.MaximalReactive, 200, 1)
}

func TestCosimRunner(t *testing.T) {
	cosim(t, paperex.RunnerStop, "runner", lower.MaximalReactive, 200, 2)
}

func TestCosimCounter(t *testing.T) {
	src := `module m(input pure tick, input pure rst, output pure fire) {
        int cnt;
        while (1) {
            do {
                for (cnt = 0; cnt < 5; cnt++) { await(tick); }
                emit(fire);
                halt();
            } abort (rst);
        }
    }`
	for _, pol := range []lower.Policy{lower.MaximalReactive, lower.MinimalReactive} {
		cosim(t, src, "m", pol, 300, 3)
	}
}

func TestCosimValued(t *testing.T) {
	src := `typedef unsigned char byte;
    module m(input byte b, output byte doubled, output pure big) {
        while (1) {
            await (b);
            emit_v (doubled, b * 2);
            if (b > 128) emit (big);
        }
    }`
	cosim(t, src, "m", lower.MaximalReactive, 300, 4)
}

func TestCosimSuspend(t *testing.T) {
	src := `module m(input pure hold, input pure tick, output pure beat) {
        do {
            while (1) { await (tick); emit(beat); }
        } suspend (hold);
    }`
	cosim(t, src, "m", lower.MaximalReactive, 300, 5)
}

func TestCosimPresentElse(t *testing.T) {
	src := `module m(input pure tick, input pure x, output pure yes, output pure no) {
        while (1) {
            await (tick);
            present (x) emit(yes); else emit(no);
        }
    }`
	cosim(t, src, "m", lower.MaximalReactive, 200, 6)
}

func TestCosimStack(t *testing.T) {
	for _, pol := range []lower.Policy{lower.MaximalReactive, lower.MinimalReactive} {
		cosim(t, paperex.Stack, "toplevel", pol, 400, 7)
	}
}

func TestCosimBuffer(t *testing.T) {
	cosim(t, paperex.Buffer, "bufferctl", lower.MaximalReactive, 300, 8)
}

// TestCosimStackPackets drives the EFSM with real packets and checks
// addr_match appears exactly for good ones.
func TestCosimStackPackets(t *testing.T) {
	res := lowerSrc(t, paperex.Stack, "toplevel", lower.MaximalReactive)
	em, err := Compile(res)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	rt := efsm.NewRuntime(em)
	inByte := res.Module.Signal("in_byte")
	if _, err := rt.Step(nil); err != nil {
		t.Fatal(err)
	}
	run := func(good bool) bool {
		pkt := paperex.MakePacket(good)
		match := false
		for i := 0; i < paperex.PktSize; i++ {
			r, err := rt.Step(map[*kernel.Signal]cval.Value{
				inByte: cval.FromInt(ctypes.UChar, int64(pkt[i])),
			})
			if err != nil {
				t.Fatalf("byte %d: %v", i, err)
			}
			for s := range r.Outputs {
				if s.Name == "addr_match" {
					match = true
				}
			}
		}
		for i := 0; i < paperex.HdrSize+4; i++ {
			r, err := rt.Step(nil)
			if err != nil {
				t.Fatal(err)
			}
			for s := range r.Outputs {
				if s.Name == "addr_match" {
					match = true
				}
			}
		}
		return match
	}
	if !run(true) {
		t.Error("good packet: addr_match missing")
	}
	if run(false) {
		t.Error("bad packet: addr_match emitted")
	}
	if !run(true) {
		t.Error("second good packet: addr_match missing")
	}
}

func TestMinimizePreservesBehavior(t *testing.T) {
	res := lowerSrc(t, paperex.ABRO, "abro", lower.MaximalReactive)
	em, err := Compile(res)
	if err != nil {
		t.Fatal(err)
	}
	min, _ := efsm.Minimize(em)
	rt1 := efsm.NewRuntime(em)
	rt2 := efsm.NewRuntime(min)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 300; i++ {
		in := map[*kernel.Signal]cval.Value{}
		for _, sig := range em.Inputs {
			if rng.Intn(3) == 0 {
				in[sig] = cval.Value{}
			}
		}
		r1, err := rt1.Step(in)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := rt2.Step(in)
		if err != nil {
			t.Fatal(err)
		}
		if outputsString(r1.Outputs) != outputsString(r2.Outputs) {
			t.Fatalf("instant %d: minimized machine diverged", i)
		}
	}
}

func TestDotOutput(t *testing.T) {
	m := compileSrc(t, paperex.ABRO, "abro", lower.MaximalReactive)
	dot := m.Dot()
	for _, want := range []string{"digraph", "init ->", "emit O"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q", want)
		}
	}
}

func TestStateLimit(t *testing.T) {
	res := lowerSrc(t, paperex.ABRO, "abro", lower.MaximalReactive)
	_, err := CompileWith(res, Options{MaxStates: 1})
	if err == nil || !strings.Contains(err.Error(), "states") {
		t.Errorf("expected state-limit error, got %v", err)
	}
}

// The splitter policy must not change observable behavior, only the
// machine's shape: minimal extraction yields fewer data branches.
func TestPolicyChangesShapeNotBehavior(t *testing.T) {
	src := paperex.Buffer
	resMax := lowerSrc(t, src, "levelmon", lower.MaximalReactive)
	resMin := lowerSrc(t, src, "levelmon", lower.MinimalReactive)
	mMax, err := Compile(resMax)
	if err != nil {
		t.Fatal(err)
	}
	mMin, err := Compile(resMin)
	if err != nil {
		t.Fatal(err)
	}
	stMax, stMin := mMax.CollectStats(), mMin.CollectStats()
	if stMin.DataBranches >= stMax.DataBranches {
		t.Errorf("minimal policy should have fewer data branches: max=%d min=%d",
			stMax.DataBranches, stMin.DataBranches)
	}
}
