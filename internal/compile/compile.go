// Package compile implements the ECL flow's phase 2: translating the
// Esterel kernel module into an extended finite state machine
// (internal/efsm). It mirrors the automaton-style Esterel compilation
// the paper relies on.
//
// The compiler drives the reference interpreter symbolically: for each
// reachable control state it re-executes the reaction once per
// combination of input-presence and data-condition outcomes,
// discovering the combinations lazily through a decision log (a fresh
// test appends a decision; after each run the log backtracks
// depth-first). Every run's transcript — actions interleaved with the
// decisions that guarded them — is merged into the state's decision
// tree, so the resulting EFSM evaluates each data guard exactly where
// the source program did.
//
// A per-run constant store propagates values assigned earlier in the
// same reaction (for example a loop counter reset just before its
// bound test), which keeps intra-instant loops from forking
// unboundedly and prunes infeasible paths exactly as an Esterel
// compiler's case analysis would.
package compile

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/cval"
	"repro/internal/dataexec"
	"repro/internal/efsm"
	"repro/internal/interp"
	"repro/internal/kernel"
	"repro/internal/lower"
	"repro/internal/sem"
)

// Options bound the exploration.
type Options struct {
	// MaxStates aborts compilation when exceeded (default 20000).
	MaxStates int
	// MaxRunsPerState aborts pathological guard explosion (default 65536).
	MaxRunsPerState int
	// MaxDecisionsPerRun bounds one reaction's decision log (default 64).
	MaxDecisionsPerRun int
}

func (o *Options) defaults() {
	if o.MaxStates == 0 {
		o.MaxStates = 20000
	}
	if o.MaxRunsPerState == 0 {
		o.MaxRunsPerState = 65536
	}
	if o.MaxDecisionsPerRun == 0 {
		o.MaxDecisionsPerRun = 64
	}
}

// Compile builds the EFSM for a lowered module with default options.
func Compile(res *lower.Result) (*efsm.Machine, error) {
	return CompileWith(res, Options{})
}

// CompileWith builds the EFSM with explicit exploration bounds.
func CompileWith(res *lower.Result, opts Options) (*efsm.Machine, error) {
	opts.defaults()
	c := &compiler{
		res:  res,
		opts: opts,
		m:    interp.NewMachine(res.Module, res.Info),
		out: &efsm.Machine{
			Name:    res.Module.Name,
			Mod:     res.Module,
			Info:    res.Info,
			Inputs:  res.Module.Inputs,
			Outputs: res.Module.Outputs,
		},
		states: make(map[string]*efsm.State),
	}
	c.m.SetHooks(&symHooks{c: c})
	c.m.InputHook = c.decideInput
	if err := c.run(); err != nil {
		return nil, err
	}
	return c.out, nil
}

type traceKind int

const (
	trAct traceKind = iota
	trInput
	trData
)

type traceItem struct {
	kind traceKind
	act  efsm.Action
	sig  *kernel.Signal // trInput
	expr kernel.Expr    // trData
	val  bool
}

// stateRec pairs an EFSM state with the interpreter control state that
// defines it.
type stateRec struct {
	es      *efsm.State
	ctl     *interp.State
	started bool
}

type compiler struct {
	res  *lower.Result
	opts Options
	m    *interp.Machine
	out  *efsm.Machine

	states map[string]*efsm.State
	work   []stateRec

	// Per-run state.
	decisions []bool
	diIdx     int
	trace     []traceItem
	consts    map[*kernel.Var]cval.Value
	runErr    error
}

// decide consumes the next decision, appending a fresh "true" when the
// log is exhausted.
func (c *compiler) decide() (bool, error) {
	if c.diIdx < len(c.decisions) {
		v := c.decisions[c.diIdx]
		c.diIdx++
		return v, nil
	}
	if len(c.decisions) >= c.opts.MaxDecisionsPerRun {
		return false, fmt.Errorf("reaction exceeds %d guard decisions (unbounded intra-instant branching?)", c.opts.MaxDecisionsPerRun)
	}
	c.decisions = append(c.decisions, true)
	c.diIdx++
	return true, nil
}

// backtrack flips the deepest remaining "true" decision; it returns
// false when the decision tree is exhausted.
func (c *compiler) backtrack() bool {
	i := len(c.decisions) - 1
	for i >= 0 && !c.decisions[i] {
		i--
	}
	if i < 0 {
		return false
	}
	c.decisions = c.decisions[:i+1]
	c.decisions[i] = false
	return true
}

func (c *compiler) decideInput(sig *kernel.Signal) interp.Status {
	v, err := c.decide()
	if err != nil {
		c.runErr = err
		return interp.Absent
	}
	c.trace = append(c.trace, traceItem{kind: trInput, sig: sig, val: v})
	if v {
		return interp.Present
	}
	return interp.Absent
}

// ---------------------------------------------------------------------------
// Symbolic data hooks

// constEnv lets dataexec evaluate expressions against the per-run
// constant store; anything unknown fails the evaluation, which the
// compiler treats as "not constant".
type constEnv struct{ c *compiler }

func (e constEnv) VarValue(v *kernel.Var) (cval.Value, error) {
	if val, ok := e.c.consts[v]; ok {
		return val, nil
	}
	return cval.Value{}, fmt.Errorf("variable %s not constant here", v.Name)
}

func (e constEnv) SignalValue(s *kernel.Signal) (cval.Value, error) {
	return cval.Value{}, fmt.Errorf("signal %s value unknown at compile time", s.Name)
}

func (e constEnv) Charge(int) {}

type symHooks struct{ c *compiler }

// tryConst evaluates an expression against the constant store.
func (h *symHooks) tryConst(e kernel.Expr) (cval.Value, bool) {
	ev := dataexec.New(h.c.res.Info, constEnv{h.c})
	ev.Limits.MaxSteps = 10_000
	v, err := ev.Eval(e)
	if err != nil {
		return cval.Value{}, false
	}
	return v, true
}

func (h *symHooks) EvalCond(e kernel.Expr) (bool, error) {
	if v, ok := h.tryConst(e); ok {
		// Constant under this reaction's earlier assignments: the
		// runtime will compute the same value, so no branch is needed.
		return v.Bool(), nil
	}
	v, err := h.c.decide()
	if err != nil {
		return false, err
	}
	h.c.trace = append(h.c.trace, traceItem{kind: trData, expr: e, val: v})
	return v, nil
}

func (h *symHooks) ExecAssign(lhs, rhs kernel.Expr) error {
	h.c.trace = append(h.c.trace, traceItem{kind: trAct, act: efsm.Action{
		Kind: efsm.ActAssign, LHS: lhs, RHS: rhs,
	}})
	h.c.noteAssign(lhs, rhs)
	return nil
}

func (h *symHooks) ExecEval(x kernel.Expr) error {
	h.c.trace = append(h.c.trace, traceItem{kind: trAct, act: efsm.Action{
		Kind: efsm.ActEval, X: x,
	}})
	// Side effects unknown: drop every constant rooted in a variable
	// the expression could write (conservatively, all of them).
	h.c.consts = make(map[*kernel.Var]cval.Value)
	return nil
}

func (h *symHooks) ExecData(f *kernel.DataFunc) error {
	h.c.trace = append(h.c.trace, traceItem{kind: trAct, act: efsm.Action{
		Kind: efsm.ActCall, F: f,
	}})
	// The data function may write any variable it can reach.
	h.c.consts = make(map[*kernel.Var]cval.Value)
	return nil
}

func (h *symHooks) EmitValue(sig *kernel.Signal, v *kernel.Expr) error {
	h.c.trace = append(h.c.trace, traceItem{kind: trAct, act: efsm.Action{
		Kind: efsm.ActEmit, Sig: sig, Value: v,
	}})
	return nil
}

// noteAssign updates the constant store for a simple var = const
// assignment and invalidates the target otherwise.
func (c *compiler) noteAssign(lhs, rhs kernel.Expr) {
	target := rootVar(lhs)
	if target == nil {
		// Unknown destination: stay safe, forget everything.
		c.consts = make(map[*kernel.Var]cval.Value)
		return
	}
	if _, simple := lhs.E.(*ast.Ident); simple {
		h := symHooks{c: c}
		if v, ok := h.tryConst(rhs); ok {
			c.consts[target] = v
			return
		}
	}
	delete(c.consts, target)
}

// rootVar finds the variable an lvalue writes through.
func rootVar(e kernel.Expr) *kernel.Var {
	cur := e.E
	for {
		switch x := cur.(type) {
		case *ast.Ident:
			if vi, ok := e.B.Info.UseOf(x).(*sem.VarInfo); ok {
				return e.B.Vars[vi]
			}
			return nil
		case *ast.Index:
			cur = x.X
		case *ast.Member:
			cur = x.X
		case *ast.Paren:
			cur = x.X
		default:
			return nil
		}
	}
}

// ---------------------------------------------------------------------------
// Exploration

func (c *compiler) stateFor(ctl *interp.State, started bool) (*efsm.State, bool) {
	key := fmt.Sprintf("%v|%s", started, ctl.Key())
	if s, ok := c.states[key]; ok {
		return s, false
	}
	s := &efsm.State{ID: len(c.out.States), Key: key}
	c.states[key] = s
	c.out.States = append(c.out.States, s)
	c.work = append(c.work, stateRec{es: s, ctl: ctl.Clone(), started: started})
	return s, true
}

func (c *compiler) run() error {
	boot, _ := c.stateFor(interp.NewState(), false)
	c.out.Initial = boot
	for len(c.work) > 0 {
		rec := c.work[0]
		c.work = c.work[1:]
		if err := c.exploreState(rec); err != nil {
			return fmt.Errorf("state %s: %w", rec.es.Key, err)
		}
		if len(c.out.States) > c.opts.MaxStates {
			return fmt.Errorf("EFSM exceeds %d states; the synchronous product is too large (the paper's code-size explosion) — compile modules separately or raise Options.MaxStates", c.opts.MaxStates)
		}
	}
	return nil
}

func (c *compiler) exploreState(rec stateRec) error {
	c.decisions = nil
	runs := 0
	for {
		runs++
		if runs > c.opts.MaxRunsPerState {
			return fmt.Errorf("more than %d guard combinations", c.opts.MaxRunsPerState)
		}
		c.diIdx = 0
		c.trace = c.trace[:0]
		c.consts = make(map[*kernel.Var]cval.Value)
		c.runErr = nil
		c.m.SetState(rec.ctl, rec.started)
		r, err := c.m.React(nil)
		if c.runErr != nil {
			return c.runErr
		}
		if err != nil {
			return err
		}
		var leaf *efsm.Leaf
		if r.Terminated {
			leaf = &efsm.Leaf{Terminal: true}
		} else {
			to, _ := c.stateFor(c.m.State(), true)
			leaf = &efsm.Leaf{To: to}
		}
		if err := insertTrace(&rec.es.Root, c.trace, leaf); err != nil {
			return err
		}
		if !c.backtrack() {
			return nil
		}
	}
}

// insertTrace merges one run's transcript into the state's decision
// tree. Shared decision prefixes produce shared subtrees.
func insertTrace(slot *efsm.Node, trace []traceItem, leaf *efsm.Leaf) error {
	for _, it := range trace {
		switch it.kind {
		case trAct:
			if *slot == nil {
				*slot = &efsm.ActNode{Act: it.act}
			}
			an, ok := (*slot).(*efsm.ActNode)
			if !ok || !sameAction(an.Act, it.act) {
				return fmt.Errorf("internal: trace mismatch at action %s", it.act)
			}
			slot = &an.Next
		case trInput:
			if *slot == nil {
				*slot = &efsm.InputBranch{Sig: it.sig}
			}
			ib, ok := (*slot).(*efsm.InputBranch)
			if !ok || ib.Sig != it.sig {
				return fmt.Errorf("internal: trace mismatch at input %s", it.sig.Name)
			}
			if it.val {
				slot = &ib.Then
			} else {
				slot = &ib.Else
			}
		case trData:
			if *slot == nil {
				*slot = &efsm.DataBranch{Expr: it.expr}
			}
			db, ok := (*slot).(*efsm.DataBranch)
			if !ok || db.Expr.E != it.expr.E || db.Expr.B != it.expr.B {
				return fmt.Errorf("internal: trace mismatch at data guard %s", it.expr)
			}
			if it.val {
				slot = &db.Then
			} else {
				slot = &db.Else
			}
		}
	}
	if *slot != nil {
		return fmt.Errorf("internal: duplicate trace (decision log exhausted early)")
	}
	*slot = leaf
	return nil
}

func sameAction(a, b efsm.Action) bool {
	if a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case efsm.ActEmit:
		if a.Sig != b.Sig {
			return false
		}
		if (a.Value == nil) != (b.Value == nil) {
			return false
		}
		return a.Value == nil || (a.Value.E == b.Value.E && a.Value.B == b.Value.B)
	case efsm.ActAssign:
		return a.LHS.E == b.LHS.E && a.LHS.B == b.LHS.B && a.RHS.E == b.RHS.E && a.RHS.B == b.RHS.B
	case efsm.ActEval:
		return a.X.E == b.X.E && a.X.B == b.X.B
	case efsm.ActCall:
		return a.F == b.F
	}
	return false
}
