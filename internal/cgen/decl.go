// Package cgen implements software synthesis from the compiled EFSM:
// a C backend (the paper's phase 3 output for the reactive part plus
// the extracted data functions) and a Go backend that produces a
// self-contained, compilable Go source file for the same machine.
package cgen

import (
	"fmt"
	"strings"

	"repro/internal/ctypes"
)

// sanitize turns an instance-qualified name into a C/Go identifier.
func sanitize(name string) string {
	var b strings.Builder
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// cDecl renders a C declaration of name with the given type, placing
// array dimensions after the declarator as C requires.
func cDecl(name string, t ctypes.Type) string {
	base, dims := t, ""
	for {
		at, ok := base.(*ctypes.ArrayType)
		if !ok {
			break
		}
		dims += fmt.Sprintf("[%d]", at.Len)
		base = at.Elem
	}
	return fmt.Sprintf("%s %s%s", cTypeName(base), name, dims)
}

// cTypeName renders a non-array type as C source. Anonymous struct
// and union types print inline.
func cTypeName(t ctypes.Type) string {
	switch t := t.(type) {
	case *ctypes.StructType:
		kw := "struct"
		if t.Union {
			kw = "union"
		}
		var b strings.Builder
		b.WriteString(kw)
		b.WriteString(" { ")
		for _, f := range t.Fields {
			b.WriteString(cDecl(f.Name, f.Type))
			b.WriteString("; ")
		}
		b.WriteString("}")
		return b.String()
	case *ctypes.EnumType:
		return "int"
	case *ctypes.PointerType:
		return cTypeName(t.Elem) + " *"
	default:
		return t.String()
	}
}
