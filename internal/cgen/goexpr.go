package cgen

import (
	"fmt"
	"strings"

	"repro/internal/ast"
	"repro/internal/ctypes"
	"repro/internal/kernel"
	"repro/internal/sem"
	"repro/internal/token"
)

// This file compiles C expressions to Go expressions over the
// byte-backed storage. Every value expression compiles to an int64
// Go expression that holds the C value sign- or zero-extended, exactly
// matching internal/dataexec's semantics (int32/uint32 arithmetic,
// big-endian aggregate layout).

func (g *gogen) varSlot(b *kernel.Binding, vi *sem.VarInfo) (string, ctypes.Type, error) {
	kv := b.Vars[vi]
	if kv == nil {
		return "", nil, fmt.Errorf("variable %q unbound", vi.Name)
	}
	off, ok := g.varOff[kv]
	if !ok {
		return "", nil, fmt.Errorf("variable %q has no storage", kv.Name)
	}
	return fmt.Sprintf("m.mem[%d:%d]", off, off+kv.Type.Size()), kv.Type, nil
}

// lvalue compiles an expression to a Go expression producing the byte
// slice backing the referenced storage.
func (g *gogen) lvalue(b *kernel.Binding, e ast.Expr) (string, error) {
	switch e := e.(type) {
	case *ast.Ident:
		switch obj := g.info.UseOf(e).(type) {
		case *sem.VarInfo:
			slot, _, err := g.varSlot(b, obj)
			return slot, err
		case *sem.SignalInfo:
			sig := b.Sigs[obj]
			if sig == nil || sig.Type == nil {
				return "", fmt.Errorf("signal %q has no value storage", e.Name)
			}
			return g.sigSlot(sig), nil
		}
		return "", fmt.Errorf("%q is not addressable", e.Name)
	case *ast.Paren:
		return g.lvalue(b, e.X)
	case *ast.Index:
		base, err := g.lvalue(b, e.X)
		if err != nil {
			return "", err
		}
		bt := g.info.TypeOf(e.X)
		at, ok := bt.(*ctypes.ArrayType)
		if !ok {
			return "", fmt.Errorf("indexing non-array %s", bt)
		}
		sub, err := g.expr(b, e.Sub)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("idx(%s, %d, %s)", base, at.Elem.Size(), sub), nil
	case *ast.Member:
		if e.Arrow {
			return "", fmt.Errorf("pointer member access unsupported by the Go backend")
		}
		base, err := g.lvalue(b, e.X)
		if err != nil {
			return "", err
		}
		st, ok := g.info.TypeOf(e.X).(*ctypes.StructType)
		if !ok {
			return "", fmt.Errorf("member access on non-struct")
		}
		f := st.Field(e.Name)
		if f == nil {
			return "", fmt.Errorf("no field %q", e.Name)
		}
		return fmt.Sprintf("fld(%s, %d, %d)", base, f.Offset, f.Type.Size()), nil
	}
	return "", fmt.Errorf("expression %T is not addressable", e)
}

// load produces an int64 read of a byte slice according to type.
func load(slot string, t ctypes.Type) string {
	if ctypes.IsUnsigned(t) || t == ctypes.Bool {
		return fmt.Sprintf("ldu(%s)", slot)
	}
	return fmt.Sprintf("lds(%s)", slot)
}

// expr compiles a value expression to int64 Go source.
func (g *gogen) expr(b *kernel.Binding, e ast.Expr) (string, error) {
	switch e := e.(type) {
	case *ast.Ident:
		switch obj := g.info.UseOf(e).(type) {
		case *sem.VarInfo:
			if g.locals != nil {
				if name, ok := g.locals[obj]; ok {
					return name, nil
				}
			}
			slot, t, err := g.varSlot(b, obj)
			if err != nil {
				return "", err
			}
			return load(slot, t), nil
		case *sem.SignalInfo:
			sig := b.Sigs[obj]
			if sig == nil || sig.Type == nil {
				return "", fmt.Errorf("signal %q has no value", e.Name)
			}
			return load(g.sigSlot(sig), sig.Type), nil
		case *sem.ConstInfo:
			return fmt.Sprintf("int64(%d)", obj.Value), nil
		}
		return "", fmt.Errorf("cannot compile identifier %q", e.Name)

	case *ast.BasicLit:
		v, ok := g.m.Info.ConstEval(e)
		if !ok {
			return "", fmt.Errorf("unsupported literal %q", e.Value)
		}
		return fmt.Sprintf("int64(%d)", v), nil

	case *ast.Paren:
		inner, err := g.expr(b, e.X)
		if err != nil {
			return "", err
		}
		return "(" + inner + ")", nil

	case *ast.Unary:
		return g.unary(b, e)

	case *ast.Binary:
		return g.binary(b, e)

	case *ast.Cond:
		c, err := g.expr(b, e.CondX)
		if err != nil {
			return "", err
		}
		a, err := g.expr(b, e.Then)
		if err != nil {
			return "", err
		}
		d, err := g.expr(b, e.Else)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("sel(%s, %s, %s)", c, a, d), nil

	case *ast.Call:
		fi, ok := g.info.UseOf(e.Fun).(*sem.FuncInfo)
		if !ok {
			return "", fmt.Errorf("call of non-function %q", e.Fun.Name)
		}
		var args []string
		for i, a := range e.Args {
			av, err := g.expr(b, a)
			if err != nil {
				return "", err
			}
			if i < len(fi.Params) {
				av = g.truncFor(fi.Params[i].Type, av)
			}
			args = append(args, av)
		}
		return fmt.Sprintf("m.fn_%s(%s)", sanitize(fi.Name), strings.Join(args, ", ")), nil

	case *ast.Index, *ast.Member:
		t := g.info.TypeOf(e)
		if t == nil || isAggregateType(t) {
			return "", fmt.Errorf("aggregate value used where scalar expected")
		}
		lv, err := g.lvalue(b, e)
		if err != nil {
			return "", err
		}
		return load(lv, t), nil

	case *ast.Cast:
		to := g.m.Info.TypeOfExpr[e.Type]
		if to == nil {
			return "", fmt.Errorf("unresolved cast type")
		}
		xt := g.info.TypeOf(e.X)
		if xt != nil && xt.Kind() == ctypes.KindArray {
			// Array-to-integer reinterpretation: big-endian leading
			// bytes, right-aligned in the target.
			at := xt.(*ctypes.ArrayType)
			lv, err := g.lvalue(b, e.X)
			if err != nil {
				return "", err
			}
			n := to.Size()
			if at.Size() < n {
				n = at.Size()
			}
			return g.truncFor(to, fmt.Sprintf("ldu((%s)[:%d])", lv, n)), nil
		}
		x, err := g.expr(b, e.X)
		if err != nil {
			return "", err
		}
		return g.truncFor(to, x), nil

	case *ast.SizeofExpr:
		if e.Type != nil {
			t := g.m.Info.TypeOfExpr[e.Type]
			if t != nil {
				return fmt.Sprintf("int64(%d)", t.Size()), nil
			}
		}
		if t := g.info.TypeOf(e.X); t != nil {
			return fmt.Sprintf("int64(%d)", t.Size()), nil
		}
		return "", fmt.Errorf("unresolved sizeof")

	case *ast.Assign, *ast.Postfix:
		return "", fmt.Errorf("side effects nested in expressions are unsupported by the Go backend")
	}
	return "", fmt.Errorf("cannot compile expression %T", e)
}

func (g *gogen) unary(b *kernel.Binding, e *ast.Unary) (string, error) {
	if e.Op == token.INC || e.Op == token.DEC {
		return "", fmt.Errorf("side effects nested in expressions are unsupported by the Go backend")
	}
	x, err := g.expr(b, e.X)
	if err != nil {
		return "", err
	}
	xt := g.info.TypeOf(e.X)
	switch e.Op {
	case token.ADD:
		return x, nil
	case token.SUB:
		return g.wrap(xt, fmt.Sprintf("-(%s)", x)), nil
	case token.NOT:
		return fmt.Sprintf("b2i((%s) == 0)", x), nil
	case token.TILDE:
		if xt == ctypes.Bool {
			return fmt.Sprintf("b2i((%s) == 0)", x), nil
		}
		return g.wrap(xt, fmt.Sprintf("^(%s)", x)), nil
	}
	return "", fmt.Errorf("unsupported unary operator %q", e.Op)
}

func (g *gogen) binary(b *kernel.Binding, e *ast.Binary) (string, error) {
	switch e.Op {
	case token.COMMA:
		return "", fmt.Errorf("comma expression in value position unsupported by the Go backend")
	case token.LAND, token.LOR:
		x, err := g.expr(b, e.X)
		if err != nil {
			return "", err
		}
		y, err := g.expr(b, e.Y)
		if err != nil {
			return "", err
		}
		op := "&&"
		if e.Op == token.LOR {
			op = "||"
		}
		return fmt.Sprintf("b2i((%s) != 0 %s (%s) != 0)", x, op, y), nil
	}

	x, err := g.expr(b, e.X)
	if err != nil {
		return "", err
	}
	y, err := g.expr(b, e.Y)
	if err != nil {
		return "", err
	}
	xt := g.info.TypeOf(e.X)
	yt := g.info.TypeOf(e.Y)
	// Array operands in comparisons reinterpret as integers (already
	// loaded as int64 by expr through the cast path); here they appear
	// directly, so reinterpret via lvalue.
	if xt != nil && xt.Kind() == ctypes.KindArray {
		lv, lerr := g.lvalue(b, e.X)
		if lerr != nil {
			return "", lerr
		}
		n := 4
		if xt.Size() < n {
			n = xt.Size()
		}
		x = fmt.Sprintf("ldu((%s)[:%d])", lv, n)
		xt = ctypes.UInt
	}
	if yt != nil && yt.Kind() == ctypes.KindArray {
		lv, lerr := g.lvalue(b, e.Y)
		if lerr != nil {
			return "", lerr
		}
		n := 4
		if yt.Size() < n {
			n = yt.Size()
		}
		y = fmt.Sprintf("ldu((%s)[:%d])", lv, n)
		yt = ctypes.UInt
	}
	var common ctypes.Type = ctypes.Int
	if xt != nil && yt != nil && ctypes.IsArithmetic(xt) && ctypes.IsArithmetic(yt) {
		common = ctypes.UsualArithmetic(xt, yt)
	}
	unsigned := ctypes.IsUnsigned(common)

	switch e.Op {
	case token.EQL, token.NEQ, token.LSS, token.GTR, token.LEQ, token.GEQ:
		var op string
		switch e.Op {
		case token.EQL:
			op = "=="
		case token.NEQ:
			op = "!="
		case token.LSS:
			op = "<"
		case token.GTR:
			op = ">"
		case token.LEQ:
			op = "<="
		case token.GEQ:
			op = ">="
		}
		if unsigned {
			return fmt.Sprintf("b2i(uint32(%s) %s uint32(%s))", x, op, y), nil
		}
		return fmt.Sprintf("b2i((%s) %s (%s))", x, op, y), nil
	case token.SHL:
		if unsigned {
			return fmt.Sprintf("w32u(int64(uint32(%s) << (uint(%s) & 31)))", x, y), nil
		}
		return fmt.Sprintf("w32s((%s) << (uint(%s) & 31))", x, y), nil
	case token.SHR:
		if unsigned {
			return fmt.Sprintf("w32u(int64(uint32(%s) >> (uint(%s) & 31)))", x, y), nil
		}
		return fmt.Sprintf("w32s(int64(int32(%s) >> (uint(%s) & 31)))", x, y), nil
	case token.QUO, token.REM:
		op := "/"
		if e.Op == token.REM {
			op = "%"
		}
		if unsigned {
			return fmt.Sprintf("w32u(int64(uint32(%s) %s uint32(%s)))", x, op, y), nil
		}
		return fmt.Sprintf("w32s(int64(int32(%s) %s int32(%s)))", x, op, y), nil
	default:
		var op string
		switch e.Op {
		case token.ADD:
			op = "+"
		case token.SUB:
			op = "-"
		case token.MUL:
			op = "*"
		case token.AND:
			op = "&"
		case token.OR:
			op = "|"
		case token.XOR:
			op = "^"
		default:
			return "", fmt.Errorf("unsupported binary operator %q", e.Op)
		}
		if unsigned {
			return fmt.Sprintf("w32u(int64(uint32(%s) %s uint32(%s)))", x, op, y), nil
		}
		return fmt.Sprintf("w32s(int64(int32(%s) %s int32(%s)))", x, op, y), nil
	}
}

func (g *gogen) wrap(t ctypes.Type, v string) string {
	if t != nil && ctypes.IsUnsigned(ctypes.Promote(t)) {
		return fmt.Sprintf("w32u(%s)", v)
	}
	return fmt.Sprintf("w32s(%s)", v)
}
