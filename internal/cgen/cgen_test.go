package cgen

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/compile"
	"repro/internal/ctypes"
	"repro/internal/efsm"
	"repro/internal/lower"
	"repro/internal/paperex"
	"repro/internal/parser"
	"repro/internal/pp"
	"repro/internal/sem"
	"repro/internal/source"
)

func buildEFSM(t *testing.T, src, modName string, pol lower.Policy) *efsm.Machine {
	t.Helper()
	var diags source.DiagList
	expanded := pp.New(&diags, nil).Expand(source.NewFile("test.ecl", src))
	f := parser.ParseFile(expanded, &diags)
	if diags.HasErrors() {
		t.Fatalf("parse errors:\n%s", diags.String())
	}
	info := sem.Analyze(f, &diags)
	if diags.HasErrors() {
		t.Fatalf("sem errors:\n%s", diags.String())
	}
	res, err := lower.Lower(info, modName, pol, &diags)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	m, err := compile.Compile(res)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return m
}

func TestGenerateCStack(t *testing.T) {
	m := buildEFSM(t, paperex.Stack, "toplevel", lower.MaximalReactive)
	c := GenerateC(m)
	for _, want := range []string{
		"void toplevel_react(void)",
		"switch (toplevel_state)",
		"static unsigned char toplevel_packet_present;",
		"addr_match_present = 1;",
		"ecl_ld_be",
		"extracted data code",
	} {
		if !strings.Contains(c, want) {
			t.Errorf("C output missing %q", want)
		}
	}
	// Balanced braces is a cheap syntactic sanity check.
	if strings.Count(c, "{") != strings.Count(c, "}") {
		t.Error("unbalanced braces in generated C")
	}
}

func TestGenerateCABRO(t *testing.T) {
	m := buildEFSM(t, paperex.ABRO, "abro", lower.MaximalReactive)
	c := GenerateC(m)
	for _, want := range []string{"O_present = 1;", "if (A_present)"} {
		if !strings.Contains(c, want) {
			t.Errorf("C output missing %q\n%s", want, c)
		}
	}
}

func TestGenerateGoFormats(t *testing.T) {
	for _, tc := range []struct{ src, mod string }{
		{paperex.ABRO, "abro"},
		{paperex.Stack, "toplevel"},
		{paperex.Buffer, "bufferctl"},
		{paperex.RunnerStop, "runner"},
	} {
		m := buildEFSM(t, tc.src, tc.mod, lower.MaximalReactive)
		src, err := GenerateGo(m, "gen"+tc.mod)
		if err != nil {
			t.Errorf("%s: %v", tc.mod, err)
			continue
		}
		if !strings.Contains(src, "func (m *Machine) React(") {
			t.Errorf("%s: missing React", tc.mod)
		}
	}
}

// TestGeneratedGoRuns compiles and runs the generated Go machine for
// the full protocol stack, feeding a good and a bad packet, and checks
// addr_match appears exactly once. This exercises the whole synthesis
// path end to end with a real Go compiler.
func TestGeneratedGoRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the Go toolchain")
	}
	m := buildEFSM(t, paperex.Stack, "toplevel", lower.MaximalReactive)
	src, err := GenerateGo(m, "main")
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "machine.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	goodPkt := paperex.MakePacket(true)
	badPkt := paperex.MakePacket(false)
	var sb strings.Builder
	sb.WriteString("package main\n\nimport \"fmt\"\n\nfunc main() {\n\tm := New()\n\tm.React(nil)\n\tmatches := 0\n")
	feed := func(pkt [paperex.PktSize]byte) {
		sb.WriteString("\tfor _, b := range []byte{")
		for i, x := range pkt {
			if i > 0 {
				sb.WriteString(",")
			}
			sb.WriteString(stringsRepeat(x))
		}
		sb.WriteString("} {\n\t\tout := m.React(map[string][]byte{\"in_byte\": {b}})\n\t\tif _, ok := out[\"addr_match\"]; ok { matches++ }\n\t}\n")
		sb.WriteString("\tfor i := 0; i < 12; i++ {\n\t\tout := m.React(nil)\n\t\tif _, ok := out[\"addr_match\"]; ok { matches++ }\n\t}\n")
	}
	feed(goodPkt)
	feed(badPkt)
	sb.WriteString("\tfmt.Println(\"matches\", matches)\n}\n")
	if err := os.WriteFile(filepath.Join(dir, "main.go"), []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module genrun\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command("go", "run", ".")
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "GOFLAGS=-mod=mod", "GO111MODULE=on")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go run failed: %v\n%s\n--- generated machine:\n%.4000s", err, out, src)
	}
	if got := strings.TrimSpace(string(out)); got != "matches 1" {
		t.Fatalf("generated machine output = %q, want \"matches 1\"", got)
	}
}

func stringsRepeat(x byte) string {
	const digits = "0123456789"
	if x == 0 {
		return "0"
	}
	var buf [3]byte
	i := 3
	for x > 0 {
		i--
		buf[i] = digits[x%10]
		x /= 10
	}
	return string(buf[i:])
}

func TestSanitize(t *testing.T) {
	cases := map[string]string{
		"toplevel.assemble1.cnt_v1": "toplevel_assemble1_cnt_v1",
		"plain":                     "plain",
		"a-b c":                     "a_b_c",
	}
	for in, want := range cases {
		if got := sanitize(in); got != want {
			t.Errorf("sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestCDecl(t *testing.T) {
	arr := &ctypes.ArrayType{Elem: ctypes.UChar, Len: 64}
	if got := cDecl("x", arr); got != "unsigned char x[64]" {
		t.Errorf("cDecl = %q", got)
	}
	mat := &ctypes.ArrayType{Elem: &ctypes.ArrayType{Elem: ctypes.Int, Len: 3}, Len: 2}
	if got := cDecl("mt", mat); got != "int mt[2][3]" {
		t.Errorf("cDecl nested = %q", got)
	}
	st := ctypes.NewStruct(false, "", []ctypes.StructField{
		{Name: "a", Type: ctypes.Int},
		{Name: "b", Type: &ctypes.ArrayType{Elem: ctypes.UChar, Len: 2}},
	})
	if got := cDecl("s", st); got != "struct { int a; unsigned char b[2]; } s" {
		t.Errorf("cDecl struct = %q", got)
	}
}
