package dataexec

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/ast"
	"repro/internal/ctypes"
	"repro/internal/cval"
	"repro/internal/kernel"
	"repro/internal/parser"
	"repro/internal/pp"
	"repro/internal/sem"
	"repro/internal/source"
)

// env is a simple in-memory Env for tests.
type env struct {
	vars  map[*kernel.Var]cval.Value
	sigs  map[*kernel.Signal]cval.Value
	units int
}

func (e *env) VarValue(v *kernel.Var) (cval.Value, error) {
	if val, ok := e.vars[v]; ok {
		return val, nil
	}
	return cval.Value{}, errNoVar
}

var errNoVar = &noVarError{}

type noVarError struct{}

func (*noVarError) Error() string { return "no such variable" }

func (e *env) SignalValue(s *kernel.Signal) (cval.Value, error) {
	if val, ok := e.sigs[s]; ok {
		return val, nil
	}
	return cval.Value{}, errNoVar
}

func (e *env) Charge(n int) { e.units += n }

// harness compiles a tiny module whose body is data statements working
// on declared variables, then provides an evaluator over them.
type harness struct {
	t    *testing.T
	info *sem.Info
	b    *kernel.Binding
	env  *env
	ev   *Evaluator
	body []ast.Stmt
}

// build parses "decls" (variable declarations) and "code" (statements)
// inside a module wrapper and wires the environment.
func build(t *testing.T, decls, code string) *harness {
	t.Helper()
	src := "typedef unsigned char byte;\n" +
		"int twice(int x) { return x * 2; }\n" +
		"int clampsub(int a, int b) { if (a < b) return 0; return a - b; }\n" +
		"module m(input pure go, output pure done) {\n" + decls +
		"\nwhile (1) { await(go); {" + code + "} emit(done); } }"
	var diags source.DiagList
	expanded := pp.New(&diags, nil).Expand(source.NewFile("t.ecl", src))
	f := parser.ParseFile(expanded, &diags)
	info := sem.Analyze(f, &diags)
	if diags.HasErrors() {
		t.Fatalf("front end:\n%s", diags.String())
	}
	mi := info.Modules["m"]
	b := &kernel.Binding{
		Info:  info,
		Vars:  map[*sem.VarInfo]*kernel.Var{},
		Sigs:  map[*sem.SignalInfo]*kernel.Signal{},
		Label: "m",
	}
	e := &env{vars: map[*kernel.Var]cval.Value{}, sigs: map[*kernel.Signal]cval.Value{}}
	for _, vi := range mi.Vars {
		kv := &kernel.Var{Name: vi.Mangled, Type: vi.Type}
		b.Vars[vi] = kv
		e.vars[kv] = cval.New(vi.Type)
	}
	// Find the inner block with the code.
	// The code block is the second statement of the while body
	// (await(go); { CODE } emit(done);).
	var body []ast.Stmt
	for _, st := range mi.Decl.Body.Stmts {
		w, ok := st.(*ast.While)
		if !ok {
			continue
		}
		wb := w.Body.(*ast.Block)
		body = wb.Stmts[1].(*ast.Block).Stmts
	}
	if body == nil {
		t.Fatal("harness: code block not found")
	}
	return &harness{t: t, info: info, b: b, env: e, ev: New(info, e), body: body}
}

func (h *harness) run() error {
	f := &kernel.DataFunc{Name: "test_data", B: h.b, Body: h.body}
	return h.ev.ExecDataFunc(f)
}

func (h *harness) varInt(name string) int64 {
	h.t.Helper()
	for vi, kv := range h.b.Vars {
		if vi.Name == name {
			return h.env.vars[kv].Int()
		}
	}
	h.t.Fatalf("no variable %q", name)
	return 0
}

func TestArithmetic(t *testing.T) {
	h := build(t, "int a; int b; int c;", `
        a = 7; b = 3;
        c = a * b + a / b - a % b;
    `)
	if err := h.run(); err != nil {
		t.Fatal(err)
	}
	if got := h.varInt("c"); got != 22 { // 21 + 2 - 1
		t.Errorf("c = %d, want 22", got)
	}
}

func TestUnsignedWrap(t *testing.T) {
	h := build(t, "unsigned int u;", `u = 0; u = u - 1;`)
	if err := h.run(); err != nil {
		t.Fatal(err)
	}
	if got := uint32(h.varInt("u")); got != 0xFFFFFFFF {
		t.Errorf("u = %#x", got)
	}
}

func TestSignedOverflowWraps(t *testing.T) {
	h := build(t, "int x;", `x = 2147483647; x = x + 1;`)
	if err := h.run(); err != nil {
		t.Fatal(err)
	}
	if got := h.varInt("x"); got != -2147483648 {
		t.Errorf("x = %d", got)
	}
}

func TestShifts(t *testing.T) {
	h := build(t, "int s; unsigned int u;", `
        s = -8; s = s >> 1;
        u = 0x80000000; u = u >> 4;
    `)
	if err := h.run(); err != nil {
		t.Fatal(err)
	}
	if got := h.varInt("s"); got != -4 {
		t.Errorf("arithmetic shift: %d", got)
	}
	if got := uint32(h.varInt("u")); got != 0x08000000 {
		t.Errorf("logical shift: %#x", got)
	}
}

func TestDivisionByZero(t *testing.T) {
	h := build(t, "int a;", `a = 1 / 0;`)
	if err := h.run(); err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Fatalf("err = %v", err)
	}
}

func TestLoops(t *testing.T) {
	h := build(t, "int i; int sum;", `
        sum = 0;
        for (i = 1; i <= 10; i++) { sum += i; }
        while (sum < 60) { sum++; }
        do { sum++; } while (0);
    `)
	if err := h.run(); err != nil {
		t.Fatal(err)
	}
	if got := h.varInt("sum"); got != 61 {
		t.Errorf("sum = %d, want 61", got)
	}
}

func TestBreakContinue(t *testing.T) {
	h := build(t, "int i; int n;", `
        n = 0;
        for (i = 0; i < 10; i++) {
            if (i == 3) continue;
            if (i == 6) break;
            n++;
        }
    `)
	if err := h.run(); err != nil {
		t.Fatal(err)
	}
	if got := h.varInt("n"); got != 5 { // 0,1,2,4,5
		t.Errorf("n = %d, want 5", got)
	}
}

func TestSwitchExec(t *testing.T) {
	h := build(t, "int k; int r;", `
        k = 2; r = 0;
        switch (k) {
        case 1:
            r = 10;
            break;
        case 2:
        case 3:
            r = 20;
            break;
        default:
            r = 30;
        }
    `)
	if err := h.run(); err != nil {
		t.Fatal(err)
	}
	if got := h.varInt("r"); got != 20 {
		t.Errorf("r = %d, want 20", got)
	}
}

func TestFunctionCalls(t *testing.T) {
	h := build(t, "int r;", `r = twice(clampsub(3, 5)) + twice(4);`)
	if err := h.run(); err != nil {
		t.Fatal(err)
	}
	if got := h.varInt("r"); got != 8 {
		t.Errorf("r = %d, want 8", got)
	}
}

func TestArraysAndStructs(t *testing.T) {
	h := build(t, "byte buf[4]; int i; int total;", `
        for (i = 0; i < 4; i++) { buf[i] = i * 3; }
        total = buf[0] + buf[1] + buf[2] + buf[3];
    `)
	if err := h.run(); err != nil {
		t.Fatal(err)
	}
	if got := h.varInt("total"); got != 18 {
		t.Errorf("total = %d, want 18", got)
	}
}

func TestIndexOutOfRange(t *testing.T) {
	h := build(t, "byte buf[4]; int i;", `i = 9; buf[i] = 1;`)
	if err := h.run(); err == nil {
		t.Fatal("expected out-of-range error")
	}
}

func TestTernaryAndLogical(t *testing.T) {
	h := build(t, "int a; int b;", `
        a = 5;
        b = (a > 3 ? 100 : 200) + (a && 0) + (a || 0);
    `)
	if err := h.run(); err != nil {
		t.Fatal(err)
	}
	if got := h.varInt("b"); got != 101 {
		t.Errorf("b = %d, want 101", got)
	}
}

func TestRunawayLoopBounded(t *testing.T) {
	h := build(t, "int x;", `x = 1; while (x) { x = 1; }`)
	h.ev.Limits.MaxSteps = 1000
	if err := h.run(); err == nil || !strings.Contains(err.Error(), "steps") {
		t.Fatalf("err = %v", err)
	}
}

func TestChargeAccounting(t *testing.T) {
	h := build(t, "int a;", `a = 1 + 2;`)
	if err := h.run(); err != nil {
		t.Fatal(err)
	}
	if h.env.units == 0 {
		t.Error("no work charged")
	}
}

// Property: the evaluator's signed arithmetic matches Go's int32.
func TestPropertySignedArith(t *testing.T) {
	h := build(t, "int a; int b; int c;", `c = a * b + a - b;`)
	var aVar, bVar *kernel.Var
	for vi, kv := range h.b.Vars {
		switch vi.Name {
		case "a":
			aVar = kv
		case "b":
			bVar = kv
		}
	}
	f := func(a, b int32) bool {
		h.env.vars[aVar].SetInt(int64(a))
		h.env.vars[bVar].SetInt(int64(b))
		if err := h.run(); err != nil {
			return false
		}
		want := int64(a*b + a - b)
		return h.varInt("c") == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEvalBoolOnTilde(t *testing.T) {
	// ~ on bool is logical negation (paper's if (~crc_ok)).
	h := build(t, "bool ok; int r;", `ok = 0; if (~ok) r = 1; else r = 2;`)
	if err := h.run(); err != nil {
		t.Fatal(err)
	}
	if got := h.varInt("r"); got != 1 {
		t.Errorf("r = %d, want 1", got)
	}
	_ = ctypes.Bool
}
