// Package dataexec executes ECL's C data code: bound expressions,
// inline assignments, extracted data functions, and calls to plain C
// functions, against a value environment (internal/cval). Both the
// reference interpreter and the compiled-EFSM runtime use it, so the
// two executions share one definition of C semantics.
//
// Execution charges abstract work units through Env.Charge; the cost
// model (internal/cost) scales units into MIPS R3000 cycles. A unit
// approximates one simple machine instruction.
package dataexec

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/ctypes"
	"repro/internal/cval"
	"repro/internal/kernel"
	"repro/internal/sem"
	"repro/internal/token"
)

// Env provides variable and signal-value storage plus cost accounting.
type Env interface {
	// VarValue returns a mutable view of the variable's storage.
	VarValue(*kernel.Var) (cval.Value, error)
	// SignalValue returns a view of the signal's current value.
	SignalValue(*kernel.Signal) (cval.Value, error)
	// Charge records abstract execution work (approximate instructions).
	Charge(units int)
}

// Limits bounds data execution to catch runaway loops in user code.
type Limits struct {
	// MaxSteps is the maximum number of statements executed per
	// ExecDataFunc / per top-level Exec call. Zero means the default.
	MaxSteps int
}

// DefaultMaxSteps bounds one atomic data execution.
const DefaultMaxSteps = 10_000_000

// Evaluator executes data code. Create one per execution context; it
// is not safe for concurrent use.
type Evaluator struct {
	Info   *sem.Info
	Env    Env
	Limits Limits

	steps  int
	frames []map[*sem.VarInfo]cval.Value
}

// New returns an evaluator over the environment.
func New(info *sem.Info, env Env) *Evaluator {
	return &Evaluator{Info: info, Env: env}
}

type ctrl int

const (
	ctrlNormal ctrl = iota
	ctrlBreak
	ctrlContinue
	ctrlReturn
)

func (ev *Evaluator) step() error {
	ev.steps++
	max := ev.Limits.MaxSteps
	if max == 0 {
		max = DefaultMaxSteps
	}
	if ev.steps > max {
		return fmt.Errorf("data execution exceeded %d steps (runaway loop?)", max)
	}
	return nil
}

// ExecDataFunc runs an extracted data function atomically.
func (ev *Evaluator) ExecDataFunc(f *kernel.DataFunc) error {
	ev.steps = 0
	ev.Env.Charge(4) // call overhead
	c, _, err := ev.execStmts(f.B, f.Body)
	if err != nil {
		return fmt.Errorf("%s: %w", f.Name, err)
	}
	if c == ctrlBreak || c == ctrlContinue {
		return fmt.Errorf("%s: break/continue escaped extracted data code", f.Name)
	}
	return nil
}

// ExecAssign performs one inline assignment action.
func (ev *Evaluator) ExecAssign(lhs, rhs kernel.Expr) error {
	ev.steps = 0
	dst, err := ev.lvalue(lhs.B, lhs.E)
	if err != nil {
		return err
	}
	src, err := ev.eval(rhs.B, rhs.E)
	if err != nil {
		return err
	}
	ev.Env.Charge(1 + dst.Type.Size()/4)
	return dst.Assign(src)
}

// ExecEval evaluates an expression for its side effects.
func (ev *Evaluator) ExecEval(x kernel.Expr) error {
	ev.steps = 0
	_, err := ev.eval(x.B, x.E)
	return err
}

// Eval evaluates a bound expression to a value.
func (ev *Evaluator) Eval(e kernel.Expr) (cval.Value, error) {
	ev.steps = 0
	return ev.eval(e.B, e.E)
}

// EvalBool evaluates a bound expression as a C truth value.
func (ev *Evaluator) EvalBool(e kernel.Expr) (bool, error) {
	v, err := ev.Eval(e)
	if err != nil {
		return false, err
	}
	return v.Bool(), nil
}

// ---------------------------------------------------------------------------
// Statements

func (ev *Evaluator) execStmts(b *kernel.Binding, stmts []ast.Stmt) (ctrl, cval.Value, error) {
	for _, s := range stmts {
		c, v, err := ev.execStmt(b, s)
		if err != nil || c != ctrlNormal {
			return c, v, err
		}
	}
	return ctrlNormal, cval.Value{}, nil
}

func (ev *Evaluator) execStmt(b *kernel.Binding, s ast.Stmt) (ctrl, cval.Value, error) {
	if err := ev.step(); err != nil {
		return ctrlNormal, cval.Value{}, err
	}
	switch s := s.(type) {
	case nil, *ast.Empty:
		return ctrlNormal, cval.Value{}, nil

	case *ast.Block:
		return ev.execStmts(b, s.Stmts)

	case *ast.VarDecl:
		vi := ev.Info.VarOf[s]
		if vi == nil {
			return ctrlNormal, cval.Value{}, fmt.Errorf("unresolved declaration of %q", s.Name)
		}
		// Function-local variables live in the current frame; module
		// variables live in the environment.
		if len(ev.frames) > 0 {
			ev.frames[len(ev.frames)-1][vi] = cval.New(vi.Type)
		}
		if s.Init != nil {
			dst, err := ev.varView(b, vi)
			if err != nil {
				return ctrlNormal, cval.Value{}, err
			}
			src, err := ev.eval(b, s.Init)
			if err != nil {
				return ctrlNormal, cval.Value{}, err
			}
			ev.Env.Charge(1)
			if err := dst.Assign(src); err != nil {
				return ctrlNormal, cval.Value{}, err
			}
		}
		return ctrlNormal, cval.Value{}, nil

	case *ast.ExprStmt:
		_, err := ev.eval(b, s.X)
		return ctrlNormal, cval.Value{}, err

	case *ast.If:
		cond, err := ev.eval(b, s.Cond)
		if err != nil {
			return ctrlNormal, cval.Value{}, err
		}
		ev.Env.Charge(2)
		if cond.Bool() {
			return ev.execStmt(b, s.Then)
		}
		if s.Else != nil {
			return ev.execStmt(b, s.Else)
		}
		return ctrlNormal, cval.Value{}, nil

	case *ast.While:
		for {
			if err := ev.step(); err != nil {
				return ctrlNormal, cval.Value{}, err
			}
			cond, err := ev.eval(b, s.Cond)
			if err != nil {
				return ctrlNormal, cval.Value{}, err
			}
			ev.Env.Charge(2)
			if !cond.Bool() {
				return ctrlNormal, cval.Value{}, nil
			}
			c, v, err := ev.execStmt(b, s.Body)
			if err != nil {
				return ctrlNormal, cval.Value{}, err
			}
			switch c {
			case ctrlBreak:
				return ctrlNormal, cval.Value{}, nil
			case ctrlReturn:
				return c, v, nil
			}
		}

	case *ast.DoWhile:
		for {
			if err := ev.step(); err != nil {
				return ctrlNormal, cval.Value{}, err
			}
			c, v, err := ev.execStmt(b, s.Body)
			if err != nil {
				return ctrlNormal, cval.Value{}, err
			}
			switch c {
			case ctrlBreak:
				return ctrlNormal, cval.Value{}, nil
			case ctrlReturn:
				return c, v, nil
			}
			cond, err := ev.eval(b, s.Cond)
			if err != nil {
				return ctrlNormal, cval.Value{}, err
			}
			ev.Env.Charge(2)
			if !cond.Bool() {
				return ctrlNormal, cval.Value{}, nil
			}
		}

	case *ast.For:
		if s.Init != nil {
			if c, v, err := ev.execStmt(b, s.Init); err != nil || c == ctrlReturn {
				return c, v, err
			}
		}
		for {
			if err := ev.step(); err != nil {
				return ctrlNormal, cval.Value{}, err
			}
			if s.Cond != nil {
				cond, err := ev.eval(b, s.Cond)
				if err != nil {
					return ctrlNormal, cval.Value{}, err
				}
				ev.Env.Charge(2)
				if !cond.Bool() {
					return ctrlNormal, cval.Value{}, nil
				}
			}
			c, v, err := ev.execStmt(b, s.Body)
			if err != nil {
				return ctrlNormal, cval.Value{}, err
			}
			if c == ctrlBreak {
				return ctrlNormal, cval.Value{}, nil
			}
			if c == ctrlReturn {
				return c, v, nil
			}
			if s.Post != nil {
				if _, _, err := ev.execStmt(b, s.Post); err != nil {
					return ctrlNormal, cval.Value{}, err
				}
			}
		}

	case *ast.Switch:
		tag, err := ev.eval(b, s.Tag)
		if err != nil {
			return ctrlNormal, cval.Value{}, err
		}
		ev.Env.Charge(3)
		tagInt := tag.Int()
		matched := false
		for _, c := range s.Cases {
			if !matched {
				if c.Values == nil {
					matched = true // default (C would scan further, but
					// our sem rejects fallthrough so order is safe)
				} else {
					for _, vexpr := range c.Values {
						v, ok := ev.Info.ConstEval(vexpr)
						if ok && v == tagInt {
							matched = true
							break
						}
					}
				}
			}
			if matched {
				cc, v, err := ev.execStmts(b, c.Body)
				if err != nil {
					return ctrlNormal, cval.Value{}, err
				}
				switch cc {
				case ctrlBreak:
					return ctrlNormal, cval.Value{}, nil
				case ctrlReturn, ctrlContinue:
					return cc, v, nil
				}
			}
		}
		return ctrlNormal, cval.Value{}, nil

	case *ast.Break:
		return ctrlBreak, cval.Value{}, nil
	case *ast.Continue:
		return ctrlContinue, cval.Value{}, nil

	case *ast.Return:
		if s.X == nil {
			return ctrlReturn, cval.Value{}, nil
		}
		v, err := ev.eval(b, s.X)
		return ctrlReturn, v, err
	}
	return ctrlNormal, cval.Value{}, fmt.Errorf("cannot execute %T in data context", s)
}

// ---------------------------------------------------------------------------
// Expressions

func (ev *Evaluator) varView(b *kernel.Binding, vi *sem.VarInfo) (cval.Value, error) {
	for i := len(ev.frames) - 1; i >= 0; i-- {
		if v, ok := ev.frames[i][vi]; ok {
			return v, nil
		}
	}
	kv := b.Vars[vi]
	if kv == nil {
		return cval.Value{}, fmt.Errorf("variable %q unbound in instance %s", vi.Name, b.Label)
	}
	return ev.Env.VarValue(kv)
}

func (ev *Evaluator) lvalue(b *kernel.Binding, e ast.Expr) (cval.Value, error) {
	switch e := e.(type) {
	case *ast.Ident:
		vi, ok := ev.Info.UseOf(e).(*sem.VarInfo)
		if !ok {
			return cval.Value{}, fmt.Errorf("%q is not an assignable variable", e.Name)
		}
		return ev.varView(b, vi)
	case *ast.Paren:
		return ev.lvalue(b, e.X)
	case *ast.Index:
		arr, err := ev.lvalue(b, e.X)
		if err != nil {
			return cval.Value{}, err
		}
		idx, err := ev.eval(b, e.Sub)
		if err != nil {
			return cval.Value{}, err
		}
		ev.Env.Charge(2)
		return arr.Index(int(idx.Int()))
	case *ast.Member:
		if e.Arrow {
			return cval.Value{}, fmt.Errorf("pointer member access not supported at runtime")
		}
		s, err := ev.lvalue(b, e.X)
		if err != nil {
			return cval.Value{}, err
		}
		ev.Env.Charge(1)
		return s.Field(e.Name)
	}
	return cval.Value{}, fmt.Errorf("expression is not assignable")
}

func (ev *Evaluator) eval(b *kernel.Binding, e ast.Expr) (cval.Value, error) {
	if err := ev.step(); err != nil {
		return cval.Value{}, err
	}
	switch e := e.(type) {
	case *ast.Ident:
		switch obj := ev.Info.UseOf(e).(type) {
		case *sem.VarInfo:
			ev.Env.Charge(1)
			return ev.varView(b, obj)
		case *sem.SignalInfo:
			sig := b.Sigs[obj]
			if sig == nil {
				return cval.Value{}, fmt.Errorf("signal %q unbound in instance %s", e.Name, b.Label)
			}
			ev.Env.Charge(2)
			return ev.Env.SignalValue(sig)
		case *sem.ConstInfo:
			ev.Env.Charge(1)
			return cval.FromInt(ctypes.Int, obj.Value), nil
		}
		return cval.Value{}, fmt.Errorf("cannot evaluate %q", e.Name)

	case *ast.BasicLit:
		ev.Env.Charge(1)
		switch e.Kind {
		case token.INT:
			v, ok := ev.Info.ConstEval(e)
			if !ok {
				return cval.Value{}, fmt.Errorf("bad integer literal %q", e.Value)
			}
			return cval.FromInt(ctypes.Int, v), nil
		case token.CHAR:
			v, ok := ev.Info.ConstEval(e)
			if !ok {
				return cval.Value{}, fmt.Errorf("bad char literal %q", e.Value)
			}
			return cval.FromInt(ctypes.Char, v), nil
		case token.FLOAT:
			var f float64
			if _, err := fmt.Sscanf(e.Value, "%g", &f); err != nil {
				return cval.Value{}, fmt.Errorf("bad float literal %q", e.Value)
			}
			return cval.FromFloat(ctypes.Double, f), nil
		}
		return cval.Value{}, fmt.Errorf("unsupported literal %q", e.Value)

	case *ast.Paren:
		return ev.eval(b, e.X)

	case *ast.Unary:
		return ev.evalUnary(b, e)

	case *ast.Postfix:
		dst, err := ev.lvalue(b, e.X)
		if err != nil {
			return cval.Value{}, err
		}
		old := dst.Clone()
		delta := int64(1)
		if e.Op == token.DEC {
			delta = -1
		}
		ev.Env.Charge(2)
		dst.SetInt(dst.Int() + delta)
		return old, nil

	case *ast.Binary:
		return ev.evalBinary(b, e)

	case *ast.Assign:
		return ev.evalAssign(b, e)

	case *ast.Cond:
		c, err := ev.eval(b, e.CondX)
		if err != nil {
			return cval.Value{}, err
		}
		ev.Env.Charge(2)
		if c.Bool() {
			return ev.eval(b, e.Then)
		}
		return ev.eval(b, e.Else)

	case *ast.Call:
		return ev.evalCall(b, e)

	case *ast.Index:
		arr, err := ev.eval(b, e.X)
		if err != nil {
			return cval.Value{}, err
		}
		idx, err := ev.eval(b, e.Sub)
		if err != nil {
			return cval.Value{}, err
		}
		ev.Env.Charge(2)
		return arr.Index(int(idx.Int()))

	case *ast.Member:
		if e.Arrow {
			return cval.Value{}, fmt.Errorf("pointer member access not supported at runtime")
		}
		s, err := ev.eval(b, e.X)
		if err != nil {
			return cval.Value{}, err
		}
		ev.Env.Charge(1)
		return s.Field(e.Name)

	case *ast.Cast:
		x, err := ev.eval(b, e.X)
		if err != nil {
			return cval.Value{}, err
		}
		to := ev.Info.TypeOfExpr[e.Type]
		if to == nil {
			return cval.Value{}, fmt.Errorf("unresolved cast target type")
		}
		ev.Env.Charge(1)
		return cval.Convert(x, to)

	case *ast.SizeofExpr:
		ev.Env.Charge(1)
		if e.Type != nil {
			t := ev.Info.TypeOfExpr[e.Type]
			if t == nil {
				return cval.Value{}, fmt.Errorf("unresolved sizeof type")
			}
			return cval.FromInt(ctypes.UInt, int64(t.Size())), nil
		}
		t := ev.Info.TypeOf(e.X)
		if t == nil {
			return cval.Value{}, fmt.Errorf("unresolved sizeof operand")
		}
		return cval.FromInt(ctypes.UInt, int64(t.Size())), nil
	}
	return cval.Value{}, fmt.Errorf("cannot evaluate %T", e)
}

func (ev *Evaluator) evalUnary(b *kernel.Binding, e *ast.Unary) (cval.Value, error) {
	switch e.Op {
	case token.INC, token.DEC:
		dst, err := ev.lvalue(b, e.X)
		if err != nil {
			return cval.Value{}, err
		}
		delta := int64(1)
		if e.Op == token.DEC {
			delta = -1
		}
		ev.Env.Charge(2)
		dst.SetInt(dst.Int() + delta)
		return dst.Clone(), nil
	}
	x, err := ev.eval(b, e.X)
	if err != nil {
		return cval.Value{}, err
	}
	ev.Env.Charge(1)
	switch e.Op {
	case token.ADD:
		return x, nil
	case token.SUB:
		if x.Type.Kind() == ctypes.KindFloat {
			return cval.FromFloat(x.Type, -x.Float()), nil
		}
		return cval.FromInt(ctypes.Promote(x.Type), -x.Int()), nil
	case token.NOT:
		return cval.FromInt(ctypes.Int, b2i(!x.Bool())), nil
	case token.TILDE:
		// On bool: ECL logical negation (the paper's "if (~crc_ok)").
		if x.Type == ctypes.Bool {
			return cval.FromBool(!x.Bool()), nil
		}
		return cval.FromInt(ctypes.Promote(x.Type), ^x.Int()), nil
	}
	return cval.Value{}, fmt.Errorf("unsupported unary operator %q", e.Op)
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func (ev *Evaluator) evalAssign(b *kernel.Binding, e *ast.Assign) (cval.Value, error) {
	dst, err := ev.lvalue(b, e.LHS)
	if err != nil {
		return cval.Value{}, err
	}
	src, err := ev.eval(b, e.RHS)
	if err != nil {
		return cval.Value{}, err
	}
	ev.Env.Charge(1 + dst.Type.Size()/4)
	if e.Op == token.ASSIGN {
		if err := dst.Assign(src); err != nil {
			return cval.Value{}, err
		}
		return dst, nil
	}
	var binOp token.Kind
	switch e.Op {
	case token.ADD_ASSIGN:
		binOp = token.ADD
	case token.SUB_ASSIGN:
		binOp = token.SUB
	case token.MUL_ASSIGN:
		binOp = token.MUL
	case token.QUO_ASSIGN:
		binOp = token.QUO
	case token.REM_ASSIGN:
		binOp = token.REM
	case token.AND_ASSIGN:
		binOp = token.AND
	case token.OR_ASSIGN:
		binOp = token.OR
	case token.XOR_ASSIGN:
		binOp = token.XOR
	case token.SHL_ASSIGN:
		binOp = token.SHL
	case token.SHR_ASSIGN:
		binOp = token.SHR
	default:
		return cval.Value{}, fmt.Errorf("unsupported assignment operator %q", e.Op)
	}
	res, err := arith(binOp, dst.Clone(), src)
	if err != nil {
		return cval.Value{}, err
	}
	if err := dst.Assign(res); err != nil {
		return cval.Value{}, err
	}
	return dst, nil
}

func (ev *Evaluator) evalBinary(b *kernel.Binding, e *ast.Binary) (cval.Value, error) {
	switch e.Op {
	case token.COMMA:
		if _, err := ev.eval(b, e.X); err != nil {
			return cval.Value{}, err
		}
		return ev.eval(b, e.Y)
	case token.LAND:
		x, err := ev.eval(b, e.X)
		if err != nil {
			return cval.Value{}, err
		}
		ev.Env.Charge(2)
		if !x.Bool() {
			return cval.FromInt(ctypes.Int, 0), nil
		}
		y, err := ev.eval(b, e.Y)
		if err != nil {
			return cval.Value{}, err
		}
		return cval.FromInt(ctypes.Int, b2i(y.Bool())), nil
	case token.LOR:
		x, err := ev.eval(b, e.X)
		if err != nil {
			return cval.Value{}, err
		}
		ev.Env.Charge(2)
		if x.Bool() {
			return cval.FromInt(ctypes.Int, 1), nil
		}
		y, err := ev.eval(b, e.Y)
		if err != nil {
			return cval.Value{}, err
		}
		return cval.FromInt(ctypes.Int, b2i(y.Bool())), nil
	}
	x, err := ev.eval(b, e.X)
	if err != nil {
		return cval.Value{}, err
	}
	y, err := ev.eval(b, e.Y)
	if err != nil {
		return cval.Value{}, err
	}
	ev.Env.Charge(1)
	return arith(e.Op, x, y)
}

// arith applies a C binary operator with the usual conversions.
// Comparing an integer against a byte array reinterprets the array
// (the Figure 2 idiom).
func arith(op token.Kind, x, y cval.Value) (cval.Value, error) {
	// Array operand in a comparison: reinterpret as the other side's type.
	if x.Type.Kind() == ctypes.KindArray {
		conv, err := cval.Convert(x, promoteFor(y.Type))
		if err != nil {
			return cval.Value{}, err
		}
		x = conv
	}
	if y.Type.Kind() == ctypes.KindArray {
		conv, err := cval.Convert(y, promoteFor(x.Type))
		if err != nil {
			return cval.Value{}, err
		}
		y = conv
	}
	common := ctypes.UsualArithmetic(x.Type, y.Type)
	if common.Kind() == ctypes.KindFloat {
		a, bf := x.Float(), y.Float()
		switch op {
		case token.ADD:
			return cval.FromFloat(common, a+bf), nil
		case token.SUB:
			return cval.FromFloat(common, a-bf), nil
		case token.MUL:
			return cval.FromFloat(common, a*bf), nil
		case token.QUO:
			if bf == 0 {
				return cval.Value{}, fmt.Errorf("floating division by zero")
			}
			return cval.FromFloat(common, a/bf), nil
		case token.EQL:
			return cval.FromInt(ctypes.Int, b2i(a == bf)), nil
		case token.NEQ:
			return cval.FromInt(ctypes.Int, b2i(a != bf)), nil
		case token.LSS:
			return cval.FromInt(ctypes.Int, b2i(a < bf)), nil
		case token.GTR:
			return cval.FromInt(ctypes.Int, b2i(a > bf)), nil
		case token.LEQ:
			return cval.FromInt(ctypes.Int, b2i(a <= bf)), nil
		case token.GEQ:
			return cval.FromInt(ctypes.Int, b2i(a >= bf)), nil
		}
		return cval.Value{}, fmt.Errorf("operator %q not defined on floats", op)
	}

	if ctypes.IsUnsigned(common) {
		a, bu := uint32(x.Int()), uint32(y.Int())
		switch op {
		case token.ADD:
			return cval.FromInt(common, int64(a+bu)), nil
		case token.SUB:
			return cval.FromInt(common, int64(a-bu)), nil
		case token.MUL:
			return cval.FromInt(common, int64(a*bu)), nil
		case token.QUO:
			if bu == 0 {
				return cval.Value{}, fmt.Errorf("division by zero")
			}
			return cval.FromInt(common, int64(a/bu)), nil
		case token.REM:
			if bu == 0 {
				return cval.Value{}, fmt.Errorf("division by zero")
			}
			return cval.FromInt(common, int64(a%bu)), nil
		case token.SHL:
			return cval.FromInt(common, int64(a<<(bu&31))), nil
		case token.SHR:
			return cval.FromInt(common, int64(a>>(bu&31))), nil
		case token.AND:
			return cval.FromInt(common, int64(a&bu)), nil
		case token.OR:
			return cval.FromInt(common, int64(a|bu)), nil
		case token.XOR:
			return cval.FromInt(common, int64(a^bu)), nil
		case token.EQL:
			return cval.FromInt(ctypes.Int, b2i(a == bu)), nil
		case token.NEQ:
			return cval.FromInt(ctypes.Int, b2i(a != bu)), nil
		case token.LSS:
			return cval.FromInt(ctypes.Int, b2i(a < bu)), nil
		case token.GTR:
			return cval.FromInt(ctypes.Int, b2i(a > bu)), nil
		case token.LEQ:
			return cval.FromInt(ctypes.Int, b2i(a <= bu)), nil
		case token.GEQ:
			return cval.FromInt(ctypes.Int, b2i(a >= bu)), nil
		}
		return cval.Value{}, fmt.Errorf("unsupported operator %q", op)
	}

	a, bi := int32(x.Int()), int32(y.Int())
	switch op {
	case token.ADD:
		return cval.FromInt(common, int64(a+bi)), nil
	case token.SUB:
		return cval.FromInt(common, int64(a-bi)), nil
	case token.MUL:
		return cval.FromInt(common, int64(a*bi)), nil
	case token.QUO:
		if bi == 0 {
			return cval.Value{}, fmt.Errorf("division by zero")
		}
		return cval.FromInt(common, int64(a/bi)), nil
	case token.REM:
		if bi == 0 {
			return cval.Value{}, fmt.Errorf("division by zero")
		}
		return cval.FromInt(common, int64(a%bi)), nil
	case token.SHL:
		return cval.FromInt(common, int64(a<<(uint32(bi)&31))), nil
	case token.SHR:
		return cval.FromInt(common, int64(a>>(uint32(bi)&31))), nil
	case token.AND:
		return cval.FromInt(common, int64(a&bi)), nil
	case token.OR:
		return cval.FromInt(common, int64(a|bi)), nil
	case token.XOR:
		return cval.FromInt(common, int64(a^bi)), nil
	case token.EQL:
		return cval.FromInt(ctypes.Int, b2i(a == bi)), nil
	case token.NEQ:
		return cval.FromInt(ctypes.Int, b2i(a != bi)), nil
	case token.LSS:
		return cval.FromInt(ctypes.Int, b2i(a < bi)), nil
	case token.GTR:
		return cval.FromInt(ctypes.Int, b2i(a > bi)), nil
	case token.LEQ:
		return cval.FromInt(ctypes.Int, b2i(a <= bi)), nil
	case token.GEQ:
		return cval.FromInt(ctypes.Int, b2i(a >= bi)), nil
	}
	return cval.Value{}, fmt.Errorf("unsupported operator %q", op)
}

func promoteFor(t ctypes.Type) ctypes.Type {
	if ctypes.IsArithmetic(t) {
		return ctypes.Promote(t)
	}
	return ctypes.Int
}

// ---------------------------------------------------------------------------
// C function calls

func (ev *Evaluator) evalCall(b *kernel.Binding, e *ast.Call) (cval.Value, error) {
	fi, ok := ev.Info.UseOf(e.Fun).(*sem.FuncInfo)
	if !ok {
		return cval.Value{}, fmt.Errorf("call of non-function %q", e.Fun.Name)
	}
	if fi.Decl.Body == nil {
		return cval.Value{}, fmt.Errorf("function %q has no body", fi.Name)
	}
	if len(ev.frames) >= 64 {
		return cval.Value{}, fmt.Errorf("call depth limit exceeded in %q", fi.Name)
	}
	frame := make(map[*sem.VarInfo]cval.Value, len(fi.Params))
	for i, p := range fi.Params {
		if i >= len(e.Args) {
			return cval.Value{}, fmt.Errorf("too few arguments to %q", fi.Name)
		}
		av, err := ev.eval(b, e.Args[i])
		if err != nil {
			return cval.Value{}, err
		}
		slot := cval.New(p.Type)
		if err := slot.Assign(av); err != nil {
			return cval.Value{}, fmt.Errorf("argument %d of %q: %w", i+1, fi.Name, err)
		}
		frame[p] = slot
	}
	ev.Env.Charge(6 + 2*len(e.Args)) // call/return + argument setup
	ev.frames = append(ev.frames, frame)
	c, v, err := ev.execStmts(b, fi.Decl.Body.Stmts)
	ev.frames = ev.frames[:len(ev.frames)-1]
	if err != nil {
		return cval.Value{}, err
	}
	if c == ctrlReturn && v.IsValid() {
		return v, nil
	}
	if fi.Ret == ctypes.Void {
		return cval.New(ctypes.Void), nil
	}
	return cval.New(fi.Ret), nil
}
