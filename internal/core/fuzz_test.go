package core

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/compile"
	"repro/internal/eclgen"
	"repro/internal/paperex"
)

// seedGenerated adds the eclgen mini-corpus (pinned under
// internal/eclgen/testdata/corpus), so mutation starts from machine-
// generated shapes the hand-written examples don't cover.
func seedGenerated(f *testing.F) {
	for _, c := range eclgen.Corpus() {
		f.Add(eclgen.Generate(c.Config))
	}
}

// seedExamples widens the corpus with every shipped example (ROADMAP:
// the .ecl corpus under examples/), keeping the seeds within the fuzz
// body's size cap so none are skipped.
func seedExamples(f *testing.F) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "examples", "*.ecl"))
	if err != nil {
		f.Fatal(err)
	}
	if len(paths) == 0 {
		f.Fatal("no example corpus found; did examples/ move?")
	}
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			f.Fatal(err)
		}
		if len(data) > 1<<13 {
			continue // the fuzz body skips oversized inputs anyway
		}
		f.Add(string(data))
	}
}

// FuzzCompile runs the whole front end plus EFSM compilation over
// arbitrary text (seeded from the paper-example corpus) and asserts
// the pipeline never panics: malformed input must come back as an
// error. The EFSM bounds are kept tight so pathological inputs abort
// instead of exploding.
func FuzzCompile(f *testing.F) {
	f.Add(paperex.ABRO)
	f.Add(paperex.RunnerStop)
	f.Add(paperex.Header + paperex.CheckCRC)
	f.Add("module m (input pure a, output pure b) { while (1) { await (a); emit (b); } }")
	f.Add("module m (input int v) { signal pure s; par { emit (s); await (v); } }")
	f.Add("#define A B\nmodule m (input pure A) { await (A); }")
	seedExamples(f)
	seedGenerated(f)
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<13 {
			t.Skip("oversized input")
		}
		opts := Options{Compile: compile.Options{
			MaxStates:          100,
			MaxRunsPerState:    256,
			MaxDecisionsPerRun: 32,
		}}
		prog, err := Parse("fuzz.ecl", src, opts)
		if err != nil {
			return
		}
		for _, mod := range prog.Modules() {
			design, err := prog.Compile(mod)
			if err != nil {
				continue
			}
			// Emission must not panic either.
			_ = design.EsterelText()
			_ = design.CText()
			_ = design.GlueText()
		}
	})
}
