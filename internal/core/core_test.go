package core

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/paperex"
	"repro/internal/source"
)

func TestModulesListedInSourceOrder(t *testing.T) {
	prog, err := Parse("stack.ecl", paperex.Stack, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"assemble", "checkcrc", "prochdr", "toplevel"}
	got := prog.Modules()
	if len(got) != len(want) {
		t.Fatalf("modules = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("module %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestParseSyntaxError(t *testing.T) {
	_, err := Parse("bad.ecl", "module m (input pure a) { await (; }", Options{})
	if err == nil {
		t.Fatal("want syntax error")
	}
	var de *source.DiagError
	if !errors.As(err, &de) {
		t.Fatalf("error %T is not a DiagError: %v", err, err)
	}
	if len(de.Diags) == 0 || !de.Diags[0].Pos.IsValid() {
		t.Errorf("diagnostics carry no position: %+v", de.Diags)
	}
	if !strings.Contains(err.Error(), "bad.ecl:1:") {
		t.Errorf("error lacks file:line: %v", err)
	}
}

func TestParseSemanticError(t *testing.T) {
	// Emitting an undeclared signal must fail in analysis, not parse.
	src := "module m (input pure a) { await (a); emit (nosuch); }"
	_, err := Parse("sem.ecl", src, Options{})
	if err == nil {
		t.Fatal("want semantic error")
	}
	if !strings.Contains(err.Error(), "nosuch") {
		t.Errorf("error does not name the bad signal: %v", err)
	}
}

func TestParseRejectsUnknownInclude(t *testing.T) {
	_, err := Parse("inc.ecl", `#include "missing.h"`+"\nmodule m (input pure a) { await (a); }", Options{})
	if err == nil {
		t.Fatal("want include error")
	}
}

func TestCompileUnknownModule(t *testing.T) {
	prog, err := Parse("abro.ecl", paperex.ABRO, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prog.Compile("nosuch"); err == nil {
		t.Fatal("want unknown-module error")
	} else if !strings.Contains(err.Error(), "nosuch") {
		t.Errorf("error does not name the module: %v", err)
	}
}

func TestCompileEveryStackModule(t *testing.T) {
	prog, err := Parse("stack.ecl", paperex.Stack, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, mod := range prog.Modules() {
		design, err := prog.Compile(mod)
		if err != nil {
			t.Errorf("%s: %v", mod, err)
			continue
		}
		if design.Stats().EFSM.States == 0 {
			t.Errorf("%s: empty EFSM", mod)
		}
	}
}

func TestGlueTextAccessors(t *testing.T) {
	prog, err := Parse("stack.ecl", paperex.Stack, Options{})
	if err != nil {
		t.Fatal(err)
	}
	design, err := prog.Compile("toplevel")
	if err != nil {
		t.Fatal(err)
	}
	glue := design.GlueText()
	if !strings.Contains(glue, "ecl_sigval_") {
		t.Errorf("glue lacks signal accessors:\n%s", glue)
	}
	if !strings.Contains(glue, "module toplevel") {
		t.Errorf("glue lacks module banner:\n%s", glue)
	}
}
