package pipeline

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"repro/internal/ast"
	"repro/internal/ctypes"
	"repro/internal/kernel"
	"repro/internal/lower"
	"repro/internal/parser"
	"repro/internal/sem"
	"repro/internal/source"
)

// snapCodecVersion versions the serialized IR snapshots (lowered
// kernel and EFSM). It is folded into every phase key, so bumping it
// on an incompatible codec change turns stale snapshots into misses
// instead of decode errors.
const snapCodecVersion = 1

// ---------------------------------------------------------------------------
// Lowered-kernel snapshot
//
// The lowered IR serializes structurally: signals, variables, and data
// functions by name, the statement tree as a tagged union, and data
// expressions as canonical printed source (ast.ExprString) plus the
// owning instance's binding label. Decoding reparses the printed
// fragments, so the round trip is exact at the text level:
// Encode(Decode(Encode(x))) == Encode(x). A decoded module is
// structurally faithful — kernel statistics, Esterel rendering,
// numbering, and fingerprints all match the original — but its
// expressions carry fresh, unanalyzed bindings, so it cannot be
// executed or recompiled without re-running the front end.

type lowSnap struct {
	V        int        `json:"v"`
	Module   string     `json:"module"`
	Policy   int        `json:"policy"`
	Typedefs []string   `json:"typedefs,omitempty"`
	Inputs   []sigSnap  `json:"inputs,omitempty"`
	Outputs  []sigSnap  `json:"outputs,omitempty"`
	Locals   []sigSnap  `json:"locals,omitempty"`
	Vars     []varSnap  `json:"vars,omitempty"`
	Funcs    []funcSnap `json:"funcs,omitempty"`
	Body     *stmtSnap  `json:"body"`
}

type sigSnap struct {
	Name string    `json:"name"`
	Pure bool      `json:"pure,omitempty"`
	Type *typeSnap `json:"type,omitempty"`
}

type varSnap struct {
	Name string    `json:"name"`
	Type *typeSnap `json:"type,omitempty"`
}

// typeSnap captures what downstream consumers read from a ctypes.Type:
// the C spelling (rendering, fingerprints) and the layout (the cost
// model). Decoding produces an opaque type with the same answers.
type typeSnap struct {
	S     string `json:"s"`
	K     int    `json:"k"`
	Size  int    `json:"size"`
	Align int    `json:"align"`
}

type funcSnap struct {
	Name  string `json:"name"`
	Label string `json:"label"`
	Body  string `json:"body"` // printed statements, newline-joined
}

// exprTextSnap is a data expression: canonical printed source plus the
// binding label of the instance it evaluates in.
type exprTextSnap struct {
	T string `json:"t"`
	L string `json:"l"`
}

type sigxSnap struct {
	K   string    `json:"k"` // ref, not, and, or
	Sig string    `json:"sig,omitempty"`
	X   *sigxSnap `json:"x,omitempty"`
	Y   *sigxSnap `json:"y,omitempty"`
}

// stmtSnap is one kernel statement. Kids carries child statements in a
// per-kind convention (seq: list; loop/suspend/trap/local: [body];
// present/ifdata: [then, else]; abort: [body, handler]; par:
// branches); nil children are preserved as nulls.
type stmtSnap struct {
	K    string        `json:"k"`
	Sig  string        `json:"sig,omitempty"`  // emit / local
	SigX *sigxSnap     `json:"sigx,omitempty"` // await / present / abort / suspend
	Name string        `json:"name,omitempty"` // trap, exit target, data call
	LHS  *exprTextSnap `json:"lhs,omitempty"`
	RHS  *exprTextSnap `json:"rhs,omitempty"`
	X    *exprTextSnap `json:"x,omitempty"` // eval expr / emit value / ifdata cond
	Weak bool          `json:"weak,omitempty"`
	Kids []*stmtSnap   `json:"kids,omitempty"`
}

// EncodeLowered serializes a lowering result (module structure, data
// function bodies included) into the phase snapshot stored in the
// cache's v2 subtree.
func EncodeLowered(low *lower.Result) ([]byte, error) {
	snap, err := buildLowSnap(low, true)
	if err != nil {
		return nil, err
	}
	return json.Marshal(snap)
}

func buildLowSnap(low *lower.Result, includeBodies bool) (*lowSnap, error) {
	mod := low.Module
	enc := &lowEncoder{
		mod:   mod,
		sigs:  make(map[*kernel.Signal]string),
		names: make(map[string]*kernel.Signal),
	}
	for _, s := range mod.Signals() {
		if prev, ok := enc.names[s.Name]; ok && prev != s {
			return nil, fmt.Errorf("pipeline: signal name %q is not unique; module not snapshotable", s.Name)
		}
		enc.names[s.Name] = s
		enc.sigs[s] = s.Name
	}
	snap := &lowSnap{
		V:      snapCodecVersion,
		Module: mod.Name,
		Policy: int(low.Policy),
	}
	if low.Info != nil {
		for name := range low.Info.Types {
			snap.Typedefs = append(snap.Typedefs, name)
		}
		sort.Strings(snap.Typedefs)
	}
	for _, s := range mod.Inputs {
		snap.Inputs = append(snap.Inputs, sigSnapOf(s))
	}
	for _, s := range mod.Outputs {
		snap.Outputs = append(snap.Outputs, sigSnapOf(s))
	}
	for _, s := range mod.Locals {
		snap.Locals = append(snap.Locals, sigSnapOf(s))
	}
	for _, v := range mod.Vars {
		snap.Vars = append(snap.Vars, varSnap{Name: v.Name, Type: typeSnapOf(v.Type)})
	}
	for _, f := range mod.Funcs {
		fs := funcSnap{Name: f.Name, Label: f.B.Label}
		if includeBodies {
			var lines []string
			for _, st := range f.Body {
				lines = append(lines, ast.String(st))
			}
			fs.Body = strings.Join(lines, "\n")
		}
		snap.Funcs = append(snap.Funcs, fs)
	}
	body, err := enc.stmt(mod.Body)
	if err != nil {
		return nil, err
	}
	snap.Body = body
	return snap, nil
}

func sigSnapOf(s *kernel.Signal) sigSnap {
	return sigSnap{Name: s.Name, Pure: s.Pure, Type: typeSnapOf(s.Type)}
}

func typeSnapOf(t ctypes.Type) *typeSnap {
	if t == nil {
		return nil
	}
	return &typeSnap{S: t.String(), K: int(t.Kind()), Size: t.Size(), Align: t.Align()}
}

type lowEncoder struct {
	mod   *kernel.Module
	sigs  map[*kernel.Signal]string
	names map[string]*kernel.Signal
}

func (e *lowEncoder) sigName(s *kernel.Signal) (string, error) {
	name, ok := e.sigs[s]
	if !ok {
		return "", fmt.Errorf("pipeline: signal %q not declared in module", s.Name)
	}
	return name, nil
}

func exprText(x kernel.Expr) *exprTextSnap {
	label := ""
	if x.B != nil {
		label = x.B.Label
	}
	return &exprTextSnap{T: ast.ExprString(x.E), L: label}
}

func (e *lowEncoder) sigx(x kernel.SigExpr) (*sigxSnap, error) {
	switch x := x.(type) {
	case *kernel.SigRef:
		name, err := e.sigName(x.Sig)
		if err != nil {
			return nil, err
		}
		return &sigxSnap{K: "ref", Sig: name}, nil
	case *kernel.SigNot:
		inner, err := e.sigx(x.X)
		if err != nil {
			return nil, err
		}
		return &sigxSnap{K: "not", X: inner}, nil
	case *kernel.SigAnd:
		a, err := e.sigx(x.X)
		if err != nil {
			return nil, err
		}
		b, err := e.sigx(x.Y)
		if err != nil {
			return nil, err
		}
		return &sigxSnap{K: "and", X: a, Y: b}, nil
	case *kernel.SigOr:
		a, err := e.sigx(x.X)
		if err != nil {
			return nil, err
		}
		b, err := e.sigx(x.Y)
		if err != nil {
			return nil, err
		}
		return &sigxSnap{K: "or", X: a, Y: b}, nil
	}
	return nil, fmt.Errorf("pipeline: unknown signal expression %T", x)
}

func (e *lowEncoder) kids(list ...kernel.Stmt) ([]*stmtSnap, error) {
	out := make([]*stmtSnap, len(list))
	for i, s := range list {
		if s == nil {
			continue
		}
		snap, err := e.stmt(s)
		if err != nil {
			return nil, err
		}
		out[i] = snap
	}
	return out, nil
}

func (e *lowEncoder) stmt(s kernel.Stmt) (*stmtSnap, error) {
	switch s := s.(type) {
	case *kernel.Nothing:
		return &stmtSnap{K: "nothing"}, nil
	case *kernel.Pause:
		return &stmtSnap{K: "pause"}, nil
	case *kernel.Halt:
		return &stmtSnap{K: "halt"}, nil
	case *kernel.Await:
		sx, err := e.sigx(s.Sig)
		if err != nil {
			return nil, err
		}
		return &stmtSnap{K: "await", SigX: sx}, nil
	case *kernel.Emit:
		name, err := e.sigName(s.Sig)
		if err != nil {
			return nil, err
		}
		out := &stmtSnap{K: "emit", Sig: name}
		if s.Value != nil {
			out.X = exprText(*s.Value)
		}
		return out, nil
	case *kernel.Assign:
		return &stmtSnap{K: "assign", LHS: exprText(s.LHS), RHS: exprText(s.RHS)}, nil
	case *kernel.Eval:
		return &stmtSnap{K: "eval", X: exprText(s.X)}, nil
	case *kernel.DataCall:
		return &stmtSnap{K: "call", Name: s.F.Name}, nil
	case *kernel.Seq:
		kids, err := e.kids(s.List...)
		if err != nil {
			return nil, err
		}
		return &stmtSnap{K: "seq", Kids: kids}, nil
	case *kernel.Loop:
		kids, err := e.kids(s.Body)
		if err != nil {
			return nil, err
		}
		return &stmtSnap{K: "loop", Kids: kids}, nil
	case *kernel.Par:
		kids, err := e.kids(s.Branches...)
		if err != nil {
			return nil, err
		}
		return &stmtSnap{K: "par", Kids: kids}, nil
	case *kernel.Present:
		sx, err := e.sigx(s.Sig)
		if err != nil {
			return nil, err
		}
		kids, err := e.kids(s.Then, s.Else)
		if err != nil {
			return nil, err
		}
		return &stmtSnap{K: "present", SigX: sx, Kids: kids}, nil
	case *kernel.IfData:
		kids, err := e.kids(s.Then, s.Else)
		if err != nil {
			return nil, err
		}
		return &stmtSnap{K: "ifdata", X: exprText(s.Cond), Kids: kids}, nil
	case *kernel.Trap:
		kids, err := e.kids(s.Body)
		if err != nil {
			return nil, err
		}
		return &stmtSnap{K: "trap", Name: s.Name, Kids: kids}, nil
	case *kernel.Exit:
		if s.Target == nil {
			return nil, fmt.Errorf("pipeline: exit without target")
		}
		return &stmtSnap{K: "exit", Name: s.Target.Name}, nil
	case *kernel.Abort:
		sx, err := e.sigx(s.Sig)
		if err != nil {
			return nil, err
		}
		kids, err := e.kids(s.Body, s.Handler)
		if err != nil {
			return nil, err
		}
		return &stmtSnap{K: "abort", SigX: sx, Weak: s.Weak, Kids: kids}, nil
	case *kernel.Suspend:
		sx, err := e.sigx(s.Sig)
		if err != nil {
			return nil, err
		}
		kids, err := e.kids(s.Body)
		if err != nil {
			return nil, err
		}
		return &stmtSnap{K: "suspend", SigX: sx, Kids: kids}, nil
	case *kernel.Local:
		name, err := e.sigName(s.Sig)
		if err != nil {
			return nil, err
		}
		kids, err := e.kids(s.Body)
		if err != nil {
			return nil, err
		}
		return &stmtSnap{K: "local", Sig: name, Kids: kids}, nil
	case nil:
		return nil, fmt.Errorf("pipeline: nil statement outside child slot")
	}
	return nil, fmt.Errorf("pipeline: unknown kernel statement %T", s)
}

// ---------------------------------------------------------------------------
// Decode

// opaqueType is a ctypes.Type reconstructed from a snapshot: it
// answers spelling and layout questions identically to the original
// but carries no structure.
type opaqueType struct {
	kind        ctypes.Kind
	size, align int
	str         string
}

func (t *opaqueType) Kind() ctypes.Kind { return t.kind }
func (t *opaqueType) Size() int         { return t.size }
func (t *opaqueType) Align() int        { return t.align }
func (t *opaqueType) String() string    { return t.str }

func (t *typeSnap) decode() ctypes.Type {
	if t == nil {
		return nil
	}
	return &opaqueType{kind: ctypes.Kind(t.K), size: t.Size, align: t.Align, str: t.S}
}

// DecodeLowered rebuilds a lowering result from its snapshot. The
// result is structurally faithful (see the codec comment above) but
// not executable: its expressions are reparsed with fresh bindings and
// its Info is empty.
func DecodeLowered(data []byte) (*lower.Result, error) {
	var snap lowSnap
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("pipeline: lowered snapshot: %w", err)
	}
	if snap.V != snapCodecVersion {
		return nil, fmt.Errorf("pipeline: lowered snapshot codec v%d (want v%d)", snap.V, snapCodecVersion)
	}
	if snap.Module == "" || snap.Body == nil {
		return nil, fmt.Errorf("pipeline: lowered snapshot missing module or body")
	}
	info := emptyInfo()
	// Preserve the typedef names (as opaque int aliases) so re-encoding
	// a decoded module lists the same set and nested reparses keep
	// working.
	for _, td := range snap.Typedefs {
		info.Types[td] = ctypes.Int
	}
	dec := &lowDecoder{
		typedefs: snap.Typedefs,
		info:     info,
		sigs:     make(map[string]*kernel.Signal),
		bindings: make(map[string]*kernel.Binding),
		funcs:    make(map[string]*kernel.DataFunc),
	}
	mod := &kernel.Module{Name: snap.Module}
	add := func(list []sigSnap, class kernel.SigClass) []*kernel.Signal {
		out := make([]*kernel.Signal, 0, len(list))
		for _, ss := range list {
			sig := &kernel.Signal{Name: ss.Name, Class: class, Pure: ss.Pure, Type: ss.Type.decode()}
			dec.sigs[ss.Name] = sig
			out = append(out, sig)
		}
		return out
	}
	mod.Inputs = add(snap.Inputs, kernel.Input)
	mod.Outputs = add(snap.Outputs, kernel.Output)
	mod.Locals = add(snap.Locals, kernel.LocalSig)
	for _, vs := range snap.Vars {
		mod.Vars = append(mod.Vars, &kernel.Var{Name: vs.Name, Type: vs.Type.decode()})
	}
	for _, fs := range snap.Funcs {
		f := &kernel.DataFunc{Name: fs.Name, B: dec.binding(fs.Label)}
		if fs.Body != "" {
			stmts, err := dec.parseStmts(fs.Body)
			if err != nil {
				return nil, fmt.Errorf("pipeline: data function %s: %w", fs.Name, err)
			}
			f.Body = stmts
		}
		dec.funcs[fs.Name] = f
		mod.Funcs = append(mod.Funcs, f)
	}
	body, err := dec.stmt(snap.Body)
	if err != nil {
		return nil, err
	}
	mod.Body = body
	mod.Number()
	if err := mod.Validate(); err != nil {
		return nil, fmt.Errorf("pipeline: decoded module invalid: %w", err)
	}
	return &lower.Result{Module: mod, Info: dec.info, Policy: lower.Policy(snap.Policy)}, nil
}

// emptyInfo returns a blank analysis table for decoded bindings: the
// decoded module is structural, so nothing ever resolves through it,
// but downstream walkers expect the maps to exist.
func emptyInfo() *sem.Info {
	return &sem.Info{
		Types:      make(map[string]ctypes.Type),
		Structs:    make(map[string]*ctypes.StructType),
		Enums:      make(map[string]*ctypes.EnumType),
		Consts:     make(map[string]*sem.ConstInfo),
		Funcs:      make(map[string]*sem.FuncInfo),
		Modules:    make(map[string]*sem.ModuleInfo),
		Uses:       make(map[*ast.Ident]sem.Object),
		ExprType:   make(map[ast.Expr]ctypes.Type),
		MayHalt:    make(map[ast.Stmt]bool),
		IsInst:     make(map[*ast.Call]bool),
		VarOf:      make(map[*ast.VarDecl]*sem.VarInfo),
		TypeOfExpr: make(map[ast.TypeExpr]ctypes.Type),
	}
}

type lowDecoder struct {
	typedefs []string
	info     *sem.Info
	sigs     map[string]*kernel.Signal
	bindings map[string]*kernel.Binding
	funcs    map[string]*kernel.DataFunc
	traps    []*kernel.Trap // enclosing-scope stack
}

func (d *lowDecoder) binding(label string) *kernel.Binding {
	b, ok := d.bindings[label]
	if !ok {
		b = &kernel.Binding{
			Info:  d.info,
			Vars:  make(map[*sem.VarInfo]*kernel.Var),
			Sigs:  make(map[*sem.SignalInfo]*kernel.Signal),
			Label: label,
		}
		d.bindings[label] = b
	}
	return b
}

// parseStmts reparses printed statements inside a synthetic module
// wrapper, with the snapshot's typedef names pre-registered so C
// declarations parse unambiguously.
func (d *lowDecoder) parseStmts(body string) ([]ast.Stmt, error) {
	var b strings.Builder
	for _, td := range d.typedefs {
		fmt.Fprintf(&b, "typedef int %s;\n", td)
	}
	b.WriteString("module __snap (input pure __snap_tick) {\n")
	b.WriteString(body)
	b.WriteString("\n}\n")
	var diags source.DiagList
	f := parser.ParseFile(source.NewFile("snapshot", b.String()), &diags)
	if diags.HasErrors() {
		return nil, diags.Err()
	}
	mods := f.Modules()
	if len(mods) != 1 || mods[0].Body == nil {
		return nil, fmt.Errorf("snapshot fragment did not parse to one module")
	}
	return mods[0].Body.Stmts, nil
}

func (d *lowDecoder) parseExpr(snap *exprTextSnap) (kernel.Expr, error) {
	stmts, err := d.parseStmts(snap.T + ";")
	if err != nil {
		return kernel.Expr{}, fmt.Errorf("expression %q: %w", snap.T, err)
	}
	if len(stmts) != 1 {
		return kernel.Expr{}, fmt.Errorf("expression %q parsed to %d statements", snap.T, len(stmts))
	}
	es, ok := stmts[0].(*ast.ExprStmt)
	if !ok {
		return kernel.Expr{}, fmt.Errorf("expression %q parsed to %T", snap.T, stmts[0])
	}
	return kernel.Expr{B: d.binding(snap.L), E: es.X}, nil
}

func (d *lowDecoder) signal(name string) (*kernel.Signal, error) {
	s, ok := d.sigs[name]
	if !ok {
		return nil, fmt.Errorf("pipeline: snapshot references unknown signal %q", name)
	}
	return s, nil
}

func (d *lowDecoder) sigx(snap *sigxSnap) (kernel.SigExpr, error) {
	if snap == nil {
		return nil, fmt.Errorf("pipeline: missing signal expression")
	}
	switch snap.K {
	case "ref":
		s, err := d.signal(snap.Sig)
		if err != nil {
			return nil, err
		}
		return &kernel.SigRef{Sig: s}, nil
	case "not":
		x, err := d.sigx(snap.X)
		if err != nil {
			return nil, err
		}
		return &kernel.SigNot{X: x}, nil
	case "and":
		x, err := d.sigx(snap.X)
		if err != nil {
			return nil, err
		}
		y, err := d.sigx(snap.Y)
		if err != nil {
			return nil, err
		}
		return &kernel.SigAnd{X: x, Y: y}, nil
	case "or":
		x, err := d.sigx(snap.X)
		if err != nil {
			return nil, err
		}
		y, err := d.sigx(snap.Y)
		if err != nil {
			return nil, err
		}
		return &kernel.SigOr{X: x, Y: y}, nil
	}
	return nil, fmt.Errorf("pipeline: unknown signal expression kind %q", snap.K)
}

func (d *lowDecoder) kid(snap *stmtSnap, i int) (kernel.Stmt, error) {
	if i >= len(snap.Kids) || snap.Kids[i] == nil {
		return nil, nil
	}
	return d.stmt(snap.Kids[i])
}

func (d *lowDecoder) stmt(snap *stmtSnap) (kernel.Stmt, error) {
	switch snap.K {
	case "nothing":
		return &kernel.Nothing{}, nil
	case "pause":
		return &kernel.Pause{}, nil
	case "halt":
		return &kernel.Halt{}, nil
	case "await":
		sx, err := d.sigx(snap.SigX)
		if err != nil {
			return nil, err
		}
		return &kernel.Await{Sig: sx}, nil
	case "emit":
		sig, err := d.signal(snap.Sig)
		if err != nil {
			return nil, err
		}
		out := &kernel.Emit{Sig: sig}
		if snap.X != nil {
			v, err := d.parseExpr(snap.X)
			if err != nil {
				return nil, err
			}
			out.Value = &v
		}
		return out, nil
	case "assign":
		if snap.LHS == nil || snap.RHS == nil {
			return nil, fmt.Errorf("pipeline: assign snapshot missing operands")
		}
		lhs, err := d.parseExpr(snap.LHS)
		if err != nil {
			return nil, err
		}
		rhs, err := d.parseExpr(snap.RHS)
		if err != nil {
			return nil, err
		}
		return &kernel.Assign{LHS: lhs, RHS: rhs}, nil
	case "eval":
		if snap.X == nil {
			return nil, fmt.Errorf("pipeline: eval snapshot missing expression")
		}
		x, err := d.parseExpr(snap.X)
		if err != nil {
			return nil, err
		}
		return &kernel.Eval{X: x}, nil
	case "call":
		f, ok := d.funcs[snap.Name]
		if !ok {
			return nil, fmt.Errorf("pipeline: snapshot references unknown data function %q", snap.Name)
		}
		return &kernel.DataCall{F: f}, nil
	case "seq":
		out := &kernel.Seq{}
		for i := range snap.Kids {
			k, err := d.kid(snap, i)
			if err != nil {
				return nil, err
			}
			out.List = append(out.List, k)
		}
		return out, nil
	case "loop":
		body, err := d.kid(snap, 0)
		if err != nil {
			return nil, err
		}
		return &kernel.Loop{Body: body}, nil
	case "par":
		out := &kernel.Par{}
		for i := range snap.Kids {
			k, err := d.kid(snap, i)
			if err != nil {
				return nil, err
			}
			out.Branches = append(out.Branches, k)
		}
		return out, nil
	case "present":
		sx, err := d.sigx(snap.SigX)
		if err != nil {
			return nil, err
		}
		then, err := d.kid(snap, 0)
		if err != nil {
			return nil, err
		}
		els, err := d.kid(snap, 1)
		if err != nil {
			return nil, err
		}
		return &kernel.Present{Sig: sx, Then: then, Else: els}, nil
	case "ifdata":
		if snap.X == nil {
			return nil, fmt.Errorf("pipeline: ifdata snapshot missing condition")
		}
		cond, err := d.parseExpr(snap.X)
		if err != nil {
			return nil, err
		}
		then, err := d.kid(snap, 0)
		if err != nil {
			return nil, err
		}
		els, err := d.kid(snap, 1)
		if err != nil {
			return nil, err
		}
		return &kernel.IfData{Cond: cond, Then: then, Else: els}, nil
	case "trap":
		t := &kernel.Trap{Name: snap.Name}
		d.traps = append(d.traps, t)
		body, err := d.kid(snap, 0)
		d.traps = d.traps[:len(d.traps)-1]
		if err != nil {
			return nil, err
		}
		t.Body = body
		return t, nil
	case "exit":
		for i := len(d.traps) - 1; i >= 0; i-- {
			if d.traps[i].Name == snap.Name {
				return &kernel.Exit{Target: d.traps[i]}, nil
			}
		}
		return nil, fmt.Errorf("pipeline: exit targets unknown trap %q", snap.Name)
	case "abort":
		sx, err := d.sigx(snap.SigX)
		if err != nil {
			return nil, err
		}
		body, err := d.kid(snap, 0)
		if err != nil {
			return nil, err
		}
		handler, err := d.kid(snap, 1)
		if err != nil {
			return nil, err
		}
		return &kernel.Abort{Body: body, Sig: sx, Weak: snap.Weak, Handler: handler}, nil
	case "suspend":
		sx, err := d.sigx(snap.SigX)
		if err != nil {
			return nil, err
		}
		body, err := d.kid(snap, 0)
		if err != nil {
			return nil, err
		}
		return &kernel.Suspend{Body: body, Sig: sx}, nil
	case "local":
		sig, err := d.signal(snap.Sig)
		if err != nil {
			return nil, err
		}
		body, err := d.kid(snap, 0)
		if err != nil {
			return nil, err
		}
		return &kernel.Local{Sig: sig, Body: body}, nil
	}
	return nil, fmt.Errorf("pipeline: unknown statement kind %q", snap.K)
}
