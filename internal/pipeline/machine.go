package pipeline

import (
	"encoding/json"
	"fmt"

	"repro/internal/ast"
	"repro/internal/efsm"
	"repro/internal/kernel"
	"repro/internal/lower"
)

// ---------------------------------------------------------------------------
// EFSM snapshot
//
// The machine snapshot is the payload that makes first-dirty-phase
// rebuilds pay off: EFSM synthesis explores every guard combination of
// every reachable state (exponential in the worst case), while
// decoding a snapshot is linear in the machine's size. The decision
// trees serialize with every kernel reference expressed as a stable
// address into the lowered module — signals and data functions by
// name, data expressions by (statement id, operand slot) — so a
// snapshot decodes against any *freshly lowered* module whose
// structural fingerprint matches the one it was built from. That is
// exactly the efsm phase key's guarantee: a data-function body edit
// keeps the fingerprint (the EFSM never looks inside data functions),
// so the edited design replays the cached machine and only re-runs
// the front end and emission.

// Expression operand slots within a kernel statement.
const (
	slotMain = iota // IfData.Cond, Eval.X, Emit.Value
	slotLHS         // Assign.LHS
	slotRHS         // Assign.RHS
)

type machineSnap struct {
	V       int         `json:"v"`
	Module  string      `json:"module"`
	FP      string      `json:"fp"` // structural fingerprint it binds to
	Initial int         `json:"initial"`
	States  []stateSnap `json:"states"`
}

type stateSnap struct {
	Key  string    `json:"key"`
	Root *nodeSnap `json:"root,omitempty"`
}

type nodeSnap struct {
	K string `json:"k"` // a(ction), i(nput), d(ata), l(eaf)

	Act  *actSnap  `json:"act,omitempty"`
	Next *nodeSnap `json:"next,omitempty"`

	Sig  string    `json:"sig,omitempty"`
	Expr *exprRef  `json:"expr,omitempty"`
	Then *nodeSnap `json:"then,omitempty"`
	Else *nodeSnap `json:"else,omitempty"`

	To   int  `json:"to,omitempty"`   // successor state index; -1 = end
	Term bool `json:"term,omitempty"` // program terminates
}

type actSnap struct {
	Kind int      `json:"kind"`
	Sig  string   `json:"sig,omitempty"`
	Val  *exprRef `json:"val,omitempty"`
	LHS  *exprRef `json:"lhs,omitempty"`
	RHS  *exprRef `json:"rhs,omitempty"`
	X    *exprRef `json:"x,omitempty"`
	F    string   `json:"f,omitempty"`
}

// exprRef addresses one data expression inside the lowered module: the
// owning kernel statement's id and the operand slot, plus the printed
// source as a decode-time integrity check.
type exprRef struct {
	Stmt int    `json:"s"`
	Slot int    `json:"p"`
	Text string `json:"t"`
}

// exprIndex maps every data expression of a module to its address.
type exprIdent struct {
	b *kernel.Binding
	e ast.Expr
}

type exprAddr struct {
	stmt, slot int
}

func indexExprs(mod *kernel.Module) map[exprIdent]exprAddr {
	idx := make(map[exprIdent]exprAddr)
	put := func(x kernel.Expr, id, slot int) {
		key := exprIdent{x.B, x.E}
		if _, dup := idx[key]; !dup {
			idx[key] = exprAddr{id, slot}
		}
	}
	for id := 0; id < mod.NumNodes(); id++ {
		switch s := mod.Node(id).(type) {
		case *kernel.Emit:
			if s.Value != nil {
				put(*s.Value, id, slotMain)
			}
		case *kernel.Assign:
			put(s.LHS, id, slotLHS)
			put(s.RHS, id, slotRHS)
		case *kernel.Eval:
			put(s.X, id, slotMain)
		case *kernel.IfData:
			put(s.Cond, id, slotMain)
		}
	}
	return idx
}

// exprAt resolves an address back to the expression in a (freshly
// lowered) module, verifying the printed text still matches.
func exprAt(mod *kernel.Module, ref *exprRef) (kernel.Expr, error) {
	if ref == nil {
		return kernel.Expr{}, fmt.Errorf("missing expression reference")
	}
	if ref.Stmt < 0 || ref.Stmt >= mod.NumNodes() {
		return kernel.Expr{}, fmt.Errorf("expression reference to statement %d out of range", ref.Stmt)
	}
	var x kernel.Expr
	switch s := mod.Node(ref.Stmt).(type) {
	case *kernel.Emit:
		if ref.Slot != slotMain || s.Value == nil {
			return kernel.Expr{}, fmt.Errorf("statement %d: emit has no value slot %d", ref.Stmt, ref.Slot)
		}
		x = *s.Value
	case *kernel.Assign:
		switch ref.Slot {
		case slotLHS:
			x = s.LHS
		case slotRHS:
			x = s.RHS
		default:
			return kernel.Expr{}, fmt.Errorf("statement %d: assign has no slot %d", ref.Stmt, ref.Slot)
		}
	case *kernel.Eval:
		if ref.Slot != slotMain {
			return kernel.Expr{}, fmt.Errorf("statement %d: eval has no slot %d", ref.Stmt, ref.Slot)
		}
		x = s.X
	case *kernel.IfData:
		if ref.Slot != slotMain {
			return kernel.Expr{}, fmt.Errorf("statement %d: ifdata has no slot %d", ref.Stmt, ref.Slot)
		}
		x = s.Cond
	default:
		return kernel.Expr{}, fmt.Errorf("statement %d (%T) carries no expressions", ref.Stmt, s)
	}
	if got := ast.ExprString(x.E); got != ref.Text {
		return kernel.Expr{}, fmt.Errorf("statement %d slot %d: expression drifted (%q != %q)", ref.Stmt, ref.Slot, got, ref.Text)
	}
	return x, nil
}

// EncodeMachine serializes an EFSM against its lowered module. fp is
// the module's structural fingerprint; DecodeMachine refuses to bind
// the snapshot to a module with a different one.
func EncodeMachine(m *efsm.Machine, low *lower.Result, fp string) ([]byte, error) {
	enc := &machineEncoder{
		idx:   indexExprs(low.Module),
		funcs: make(map[*kernel.DataFunc]string),
		sigs:  make(map[*kernel.Signal]string),
		state: make(map[*efsm.State]int),
	}
	for _, f := range low.Module.Funcs {
		enc.funcs[f] = f.Name
	}
	for _, s := range low.Module.Signals() {
		enc.sigs[s] = s.Name
	}
	snap := &machineSnap{V: snapCodecVersion, Module: m.Name, FP: fp}
	for i, s := range m.States {
		if s.ID != i {
			return nil, fmt.Errorf("pipeline: state ids not dense (state %d has id %d)", i, s.ID)
		}
		enc.state[s] = i
	}
	for _, s := range m.States {
		root, err := enc.node(s.Root)
		if err != nil {
			return nil, err
		}
		snap.States = append(snap.States, stateSnap{Key: s.Key, Root: root})
	}
	init, ok := enc.state[m.Initial]
	if !ok {
		return nil, fmt.Errorf("pipeline: initial state not in state list")
	}
	snap.Initial = init
	return json.Marshal(snap)
}

type machineEncoder struct {
	idx   map[exprIdent]exprAddr
	funcs map[*kernel.DataFunc]string
	sigs  map[*kernel.Signal]string
	state map[*efsm.State]int
}

func (e *machineEncoder) expr(x kernel.Expr) (*exprRef, error) {
	addr, ok := e.idx[exprIdent{x.B, x.E}]
	if !ok {
		return nil, fmt.Errorf("pipeline: expression %q not addressable in module", x)
	}
	return &exprRef{Stmt: addr.stmt, Slot: addr.slot, Text: ast.ExprString(x.E)}, nil
}

func (e *machineEncoder) node(n efsm.Node) (*nodeSnap, error) {
	switch n := n.(type) {
	case nil:
		return nil, nil
	case *efsm.ActNode:
		act, err := e.action(n.Act)
		if err != nil {
			return nil, err
		}
		next, err := e.node(n.Next)
		if err != nil {
			return nil, err
		}
		return &nodeSnap{K: "a", Act: act, Next: next}, nil
	case *efsm.InputBranch:
		name, ok := e.sigs[n.Sig]
		if !ok {
			return nil, fmt.Errorf("pipeline: input branch on undeclared signal %q", n.Sig.Name)
		}
		then, err := e.node(n.Then)
		if err != nil {
			return nil, err
		}
		els, err := e.node(n.Else)
		if err != nil {
			return nil, err
		}
		return &nodeSnap{K: "i", Sig: name, Then: then, Else: els}, nil
	case *efsm.DataBranch:
		ref, err := e.expr(n.Expr)
		if err != nil {
			return nil, err
		}
		then, err := e.node(n.Then)
		if err != nil {
			return nil, err
		}
		els, err := e.node(n.Else)
		if err != nil {
			return nil, err
		}
		return &nodeSnap{K: "d", Expr: ref, Then: then, Else: els}, nil
	case *efsm.Leaf:
		to := -1
		if n.To != nil {
			idx, ok := e.state[n.To]
			if !ok {
				return nil, fmt.Errorf("pipeline: leaf targets unknown state")
			}
			to = idx
		}
		return &nodeSnap{K: "l", To: to, Term: n.Terminal}, nil
	}
	return nil, fmt.Errorf("pipeline: unknown EFSM node %T", n)
}

func (e *machineEncoder) action(a efsm.Action) (*actSnap, error) {
	out := &actSnap{Kind: int(a.Kind)}
	var err error
	switch a.Kind {
	case efsm.ActEmit:
		name, ok := e.sigs[a.Sig]
		if !ok {
			return nil, fmt.Errorf("pipeline: emit of undeclared signal %q", a.Sig.Name)
		}
		out.Sig = name
		if a.Value != nil {
			if out.Val, err = e.expr(*a.Value); err != nil {
				return nil, err
			}
		}
	case efsm.ActAssign:
		if out.LHS, err = e.expr(a.LHS); err != nil {
			return nil, err
		}
		if out.RHS, err = e.expr(a.RHS); err != nil {
			return nil, err
		}
	case efsm.ActEval:
		if out.X, err = e.expr(a.X); err != nil {
			return nil, err
		}
	case efsm.ActCall:
		name, ok := e.funcs[a.F]
		if !ok {
			return nil, fmt.Errorf("pipeline: call of undeclared data function %q", a.F.Name)
		}
		out.F = name
	default:
		return nil, fmt.Errorf("pipeline: unknown action kind %d", a.Kind)
	}
	return out, nil
}

// DecodeMachine rebinds a machine snapshot to a freshly lowered
// module. wantFP must be the module's structural fingerprint; a
// snapshot recorded against a different structure is refused (the
// caller treats any error as a cache miss).
func DecodeMachine(data []byte, low *lower.Result, wantFP string) (*efsm.Machine, error) {
	var snap machineSnap
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("pipeline: machine snapshot: %w", err)
	}
	if snap.V != snapCodecVersion {
		return nil, fmt.Errorf("pipeline: machine snapshot codec v%d (want v%d)", snap.V, snapCodecVersion)
	}
	if snap.Module != low.Module.Name {
		return nil, fmt.Errorf("pipeline: machine snapshot for module %q, want %q", snap.Module, low.Module.Name)
	}
	if wantFP != "" && snap.FP != wantFP {
		return nil, fmt.Errorf("pipeline: machine snapshot fingerprint mismatch")
	}
	if snap.Initial < 0 || snap.Initial >= len(snap.States) {
		return nil, fmt.Errorf("pipeline: machine snapshot initial state out of range")
	}
	dec := &machineDecoder{
		low:   low,
		sigs:  make(map[string]*kernel.Signal),
		funcs: make(map[string]*kernel.DataFunc),
	}
	for _, s := range low.Module.Signals() {
		dec.sigs[s.Name] = s
	}
	for _, f := range low.Module.Funcs {
		dec.funcs[f.Name] = f
	}
	m := &efsm.Machine{
		Name:    low.Module.Name,
		Mod:     low.Module,
		Info:    low.Info,
		Inputs:  low.Module.Inputs,
		Outputs: low.Module.Outputs,
	}
	for i, ss := range snap.States {
		m.States = append(m.States, &efsm.State{ID: i, Key: ss.Key})
	}
	dec.states = m.States
	for i, ss := range snap.States {
		root, err := dec.node(ss.Root)
		if err != nil {
			return nil, fmt.Errorf("pipeline: state %d: %w", i, err)
		}
		m.States[i].Root = root
	}
	m.Initial = m.States[snap.Initial]
	return m, nil
}

type machineDecoder struct {
	low    *lower.Result
	sigs   map[string]*kernel.Signal
	funcs  map[string]*kernel.DataFunc
	states []*efsm.State
}

func (d *machineDecoder) node(snap *nodeSnap) (efsm.Node, error) {
	if snap == nil {
		return nil, nil
	}
	switch snap.K {
	case "a":
		if snap.Act == nil {
			return nil, fmt.Errorf("action node without action")
		}
		act, err := d.action(snap.Act)
		if err != nil {
			return nil, err
		}
		next, err := d.node(snap.Next)
		if err != nil {
			return nil, err
		}
		return &efsm.ActNode{Act: act, Next: next}, nil
	case "i":
		sig, ok := d.sigs[snap.Sig]
		if !ok {
			return nil, fmt.Errorf("input branch on unknown signal %q", snap.Sig)
		}
		then, err := d.node(snap.Then)
		if err != nil {
			return nil, err
		}
		els, err := d.node(snap.Else)
		if err != nil {
			return nil, err
		}
		return &efsm.InputBranch{Sig: sig, Then: then, Else: els}, nil
	case "d":
		expr, err := exprAt(d.low.Module, snap.Expr)
		if err != nil {
			return nil, err
		}
		then, err := d.node(snap.Then)
		if err != nil {
			return nil, err
		}
		els, err := d.node(snap.Else)
		if err != nil {
			return nil, err
		}
		return &efsm.DataBranch{Expr: expr, Then: then, Else: els}, nil
	case "l":
		leaf := &efsm.Leaf{Terminal: snap.Term}
		if snap.To >= 0 {
			if snap.To >= len(d.states) {
				return nil, fmt.Errorf("leaf targets state %d out of range", snap.To)
			}
			leaf.To = d.states[snap.To]
		} else if snap.To != -1 {
			return nil, fmt.Errorf("leaf targets state %d", snap.To)
		}
		return leaf, nil
	}
	return nil, fmt.Errorf("unknown node kind %q", snap.K)
}

func (d *machineDecoder) action(snap *actSnap) (efsm.Action, error) {
	a := efsm.Action{Kind: efsm.ActionKind(snap.Kind)}
	switch a.Kind {
	case efsm.ActEmit:
		sig, ok := d.sigs[snap.Sig]
		if !ok {
			return a, fmt.Errorf("emit of unknown signal %q", snap.Sig)
		}
		a.Sig = sig
		if snap.Val != nil {
			v, err := exprAt(d.low.Module, snap.Val)
			if err != nil {
				return a, err
			}
			a.Value = &v
		}
	case efsm.ActAssign:
		var err error
		if a.LHS, err = exprAt(d.low.Module, snap.LHS); err != nil {
			return a, err
		}
		if a.RHS, err = exprAt(d.low.Module, snap.RHS); err != nil {
			return a, err
		}
	case efsm.ActEval:
		var err error
		if a.X, err = exprAt(d.low.Module, snap.X); err != nil {
			return a, err
		}
	case efsm.ActCall:
		f, ok := d.funcs[snap.F]
		if !ok {
			return a, fmt.Errorf("call of unknown data function %q", snap.F)
		}
		a.F = f
	default:
		return a, fmt.Errorf("unknown action kind %d", snap.Kind)
	}
	return a, nil
}
