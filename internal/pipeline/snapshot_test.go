package pipeline

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/lower"
	"repro/internal/paperex"
)

// compileFor runs the front end and EFSM compiler for one module of a
// source text (a fresh front-end pass per module, as the driver does).
func compileFor(t *testing.T, name, src, module string, opts core.Options) *core.Design {
	t.Helper()
	prog, err := core.Parse(name, src, opts)
	if err != nil {
		t.Fatalf("%s: parse: %v", name, err)
	}
	if module == "" {
		mods := prog.Modules()
		module = mods[len(mods)-1]
	}
	d, err := prog.Compile(module)
	if err != nil {
		t.Fatalf("%s/%s: compile: %v", name, module, err)
	}
	return d
}

func paperModules(t *testing.T) map[string][]string {
	t.Helper()
	out := map[string][]string{}
	for name, src := range map[string]string{
		"stack": paperex.Stack, "buffer": paperex.Buffer,
		"abro": paperex.ABRO, "runner": paperex.RunnerStop,
	} {
		prog, err := core.Parse(name+".ecl", src, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		out[name] = prog.Modules()
	}
	return out
}

func paperSource(name string) string {
	switch name {
	case "stack":
		return paperex.Stack
	case "buffer":
		return paperex.Buffer
	case "abro":
		return paperex.ABRO
	case "runner":
		return paperex.RunnerStop
	}
	return ""
}

// TestLoweredRoundTrip: Encode(Decode(Encode(x))) == Encode(x) for
// every paper module, and the decoded module renders the identical
// Esterel artifact.
func TestLoweredRoundTrip(t *testing.T) {
	for name, mods := range paperModules(t) {
		src := paperSource(name)
		for _, m := range mods {
			d := compileFor(t, name+".ecl", src, m, core.Options{})
			enc, err := EncodeLowered(d.Lowered)
			if err != nil {
				t.Fatalf("%s/%s: encode: %v", name, m, err)
			}
			dec, err := DecodeLowered(enc)
			if err != nil {
				t.Fatalf("%s/%s: decode: %v", name, m, err)
			}
			enc2, err := EncodeLowered(dec)
			if err != nil {
				t.Fatalf("%s/%s: re-encode: %v", name, m, err)
			}
			if string(enc) != string(enc2) {
				t.Errorf("%s/%s: lowered snapshot round trip differs", name, m)
			}
			if got, want := kernel.EsterelString(dec.Module), kernel.EsterelString(d.Lowered.Module); got != want {
				t.Errorf("%s/%s: decoded module renders different Esterel:\n%s\n--- want ---\n%s", name, m, got, want)
			}
			if dec.Module.NumNodes() != d.Lowered.Module.NumNodes() {
				t.Errorf("%s/%s: decoded module has %d nodes, want %d",
					name, m, dec.Module.NumNodes(), d.Lowered.Module.NumNodes())
			}
		}
	}
}

// TestMachineRoundTrip: the EFSM snapshot re-encodes identically after
// a decode against its own module, with and without minimization.
func TestMachineRoundTrip(t *testing.T) {
	for _, minimize := range []bool{false, true} {
		for name, mods := range paperModules(t) {
			src := paperSource(name)
			for _, m := range mods {
				d := compileFor(t, name+".ecl", src, m, core.Options{Minimize: minimize})
				structFP, _, err := Fingerprints(d.Program.File, d.Lowered)
				if err != nil {
					t.Fatalf("%s/%s: fingerprints: %v", name, m, err)
				}
				enc, err := EncodeMachine(d.Machine, d.Lowered, structFP)
				if err != nil {
					t.Fatalf("%s/%s: encode: %v", name, m, err)
				}
				dec, err := DecodeMachine(enc, d.Lowered, structFP)
				if err != nil {
					t.Fatalf("%s/%s: decode: %v", name, m, err)
				}
				enc2, err := EncodeMachine(dec, d.Lowered, structFP)
				if err != nil {
					t.Fatalf("%s/%s: re-encode: %v", name, m, err)
				}
				if string(enc) != string(enc2) {
					t.Errorf("%s/%s (min=%t): machine snapshot round trip differs", name, m, minimize)
				}
				if len(dec.States) != len(d.Machine.States) {
					t.Errorf("%s/%s: decoded machine has %d states, want %d",
						name, m, len(dec.States), len(d.Machine.States))
				}
			}
		}
	}
}

// dataEditSource returns a module whose inner while loop is a pure
// data loop (extracted as a data function); factor only appears in
// that loop's body, so varying it is a data-only edit.
func dataEditSource(factor int) string {
	return fmt.Sprintf(`
module incworker (input pure a, input pure b, input int req,
                  output int done, output pure pulse)
{
    int acc;
    int n;
    acc = 0;
    par {
        while (1) {
            await (a);
            emit (pulse);
        }
        while (1) {
            await (b);
            emit (pulse);
        }
        while (1) {
            await (req);
            n = 0;
            while (n < 6) {
                acc = acc + %d;
                n = n + 1;
            }
            emit_v (done, acc);
        }
    }
}
`, factor)
}

// TestFingerprintsSplitDataEdits is the key-cutting contract: a
// data-function body edit keeps the structural fingerprint (the efsm
// key) and moves only the data fingerprint, while reactive and
// environment edits move the structural fingerprint.
func TestFingerprintsSplitDataEdits(t *testing.T) {
	fps := func(src string) (string, string) {
		d := compileFor(t, "inc.ecl", src, "", core.Options{})
		s, data, err := Fingerprints(d.Program.File, d.Lowered)
		if err != nil {
			t.Fatal(err)
		}
		return s, data
	}
	s3, d3 := fps(dataEditSource(3))
	s5, d5 := fps(dataEditSource(5))
	if s3 != s5 {
		t.Error("data-only edit moved the structural fingerprint (EFSM would recompile)")
	}
	if d3 == d5 {
		t.Error("data-only edit did not move the data fingerprint (stale emission)")
	}

	// A reactive edit (extra emit) must move the structural fingerprint.
	reactive := strings.Replace(dataEditSource(3), "emit_v (done, acc);", "emit (pulse); emit_v (done, acc);", 1)
	sr, _ := fps(reactive)
	if sr == s3 {
		t.Error("reactive edit kept the structural fingerprint (stale EFSM)")
	}

	// An environment edit (a helper the EFSM could constant-fold) must
	// move the structural fingerprint too.
	env1 := "int limit(void) { return 6; }\n" + dataEditSource(3)
	env2 := "int limit(void) { return 7; }\n" + dataEditSource(3)
	se1, _ := fps(env1)
	se2, _ := fps(env2)
	if se1 == se2 {
		t.Error("helper-function edit kept the structural fingerprint")
	}
}

// TestMachineDecodeAcrossDataEdit replays a machine snapshot against a
// freshly lowered module whose only change is a data-function body —
// the incremental rebuild's core move — and checks the decoded machine
// calls the *edited* data function.
func TestMachineDecodeAcrossDataEdit(t *testing.T) {
	d3 := compileFor(t, "inc.ecl", dataEditSource(3), "", core.Options{})
	s3, _, err := Fingerprints(d3.Program.File, d3.Lowered)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := EncodeMachine(d3.Machine, d3.Lowered, s3)
	if err != nil {
		t.Fatal(err)
	}

	// Fresh front end over the edited source.
	prog, err := core.Parse("inc.ecl", dataEditSource(5), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	low5, err := lower.Lower(prog.Info, "incworker", lower.MaximalReactive, prog.Diags)
	if err != nil {
		t.Fatal(err)
	}
	s5, _, err := Fingerprints(prog.File, low5)
	if err != nil {
		t.Fatal(err)
	}
	if s5 != s3 {
		t.Fatal("fingerprints differ; decode test is vacuous")
	}
	dec, err := DecodeMachine(enc, low5, s5)
	if err != nil {
		t.Fatalf("decode against edited module: %v", err)
	}
	if dec.Mod != low5.Module {
		t.Error("decoded machine not bound to the fresh module")
	}
	// Every data call in the decoded trees must resolve to the edited
	// module's function objects (which carry the new body).
	found := false
	for _, s := range dec.States {
		for _, tr := range dec.Transitions(s) {
			for _, act := range tr.Actions {
				if act.F == nil {
					continue
				}
				found = true
				ok := false
				for _, f := range low5.Module.Funcs {
					if act.F == f {
						ok = true
					}
				}
				if !ok {
					t.Fatal("decoded machine calls a data function outside the fresh module")
				}
			}
		}
	}
	if !found {
		t.Error("no data calls in decoded machine; source lost its data loop?")
	}

	// A decode against a structurally different module must refuse.
	if _, err := DecodeMachine(enc, low5, "different-fingerprint"); err == nil {
		t.Error("decode accepted a mismatched fingerprint")
	}
}
