package pipeline

import (
	"fmt"
	"strings"

	"repro/internal/core"
)

// Emit renders one artifact phase from a compiled design.
func Emit(d *core.Design, phase Phase, goPkg string) (string, error) {
	switch phase {
	case PhaseEmitEsterel:
		return d.EsterelText(), nil
	case PhaseEmitC:
		return d.CText(), nil
	case PhaseEmitGo:
		if goPkg == "" {
			goPkg = d.Machine.Name
		}
		return d.GoText(goPkg)
	case PhaseEmitGlue:
		return d.GlueText(), nil
	case PhaseEmitDot:
		return d.DotText(), nil
	case PhaseEmitTable:
		return d.TableText()
	case PhaseEmitVerilog:
		return d.VerilogText()
	case PhaseEmitVHDL:
		return d.VHDLText()
	case PhaseEmitStats:
		return FormatStats(d), nil
	}
	return "", fmt.Errorf("unknown emit phase %q", phase)
}

// FormatStats renders the design's size metrics in eclc's console
// layout.
func FormatStats(d *core.Design) string {
	st := d.Stats()
	var b strings.Builder
	fmt.Fprintf(&b, "module %s (policy %s):\n", d.Machine.Name, d.Lowered.Policy)
	fmt.Fprintf(&b, "  kernel nodes:   %d (pauses %d, emits %d, pars %d, aborts %d)\n",
		st.KernelStats.Nodes, st.KernelStats.Pauses, st.KernelStats.Emits,
		st.KernelStats.Pars, st.KernelStats.Aborts)
	fmt.Fprintf(&b, "  data functions: %d\n", st.DataFuncs)
	fmt.Fprintf(&b, "  EFSM:           %d states, %d transitions, %d tree nodes\n",
		st.EFSM.States, st.EFSM.Leaves, st.EFSM.TreeNodes)
	fmt.Fprintf(&b, "  image estimate: %d code bytes, %d data bytes (MIPS R3000)\n",
		st.Image.CodeBytes, st.Image.DataBytes)
	return b.String()
}
