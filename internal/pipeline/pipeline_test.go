package pipeline

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/paperex"
)

func statusOf(t *testing.T, res *Result, ph Phase) Status {
	t.Helper()
	for _, pr := range res.Phases {
		if pr.Phase == ph {
			return pr.Status
		}
	}
	t.Fatalf("phase %s not walked (phases: %+v)", ph, res.Phases)
	return ""
}

// TestRunnerFirstDirtyPhaseResume is the incremental contract at the
// Runner level: a second "process" (fresh Runner, shared store) over a
// data-edited source re-runs the front end and emission but replays
// the efsm phase from disk.
func TestRunnerFirstDirtyPhaseResume(t *testing.T) {
	dir := t.TempDir()
	open := func() *Runner {
		store, err := cache.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		return NewRunner(store)
	}
	emits := []Phase{PhaseEmitC, PhaseEmitEsterel, PhaseEmitStats}

	cold := open().Run(Request{Path: "inc.ecl", Source: dataEditSource(3), Emits: emits})
	if cold.Err != nil {
		t.Fatalf("cold: %v", cold.Err)
	}
	for _, ph := range []Phase{PhaseParse, PhaseLower, PhaseEFSM, PhaseEmitC} {
		if st := statusOf(t, cold, ph); st != StatusRebuilt {
			t.Errorf("cold %s = %s, want rebuilt", ph, st)
		}
	}

	// Unchanged source, new process: efsm and every emission replay
	// from disk.
	warm := open().Run(Request{Path: "inc.ecl", Source: dataEditSource(3), Emits: emits})
	if warm.Err != nil {
		t.Fatalf("warm: %v", warm.Err)
	}
	for _, ph := range []Phase{PhaseEFSM, PhaseEmitC, PhaseEmitEsterel, PhaseEmitStats} {
		if st := statusOf(t, warm, ph); st != StatusDiskHit {
			t.Errorf("warm %s = %s, want disk-hit", ph, st)
		}
	}
	if warm.Stats == nil || warm.Stats.EFSM.States != cold.Stats.EFSM.States {
		t.Errorf("warm stats = %+v, want %+v", warm.Stats, cold.Stats)
	}

	// Data-edited source, new process: front end and emission rebuild,
	// efsm replays.
	edited := open()
	res := edited.Run(Request{Path: "inc.ecl", Source: dataEditSource(5), Emits: emits})
	if res.Err != nil {
		t.Fatalf("edited: %v", res.Err)
	}
	if st := statusOf(t, res, PhaseEFSM); st != StatusDiskHit {
		t.Errorf("edited efsm = %s, want disk-hit (the whole point)", st)
	}
	for _, ph := range []Phase{PhaseParse, PhaseSem, PhaseLower, PhaseEmitC, PhaseEmitStats} {
		if st := statusOf(t, res, ph); st != StatusRebuilt {
			t.Errorf("edited %s = %s, want rebuilt", ph, st)
		}
	}

	// The replayed-machine build must be byte-identical to a cold
	// compile of the edited source.
	pure := (&Runner{NoCache: true}).Run(Request{Path: "inc.ecl", Source: dataEditSource(5), Emits: emits})
	if pure.Err != nil {
		t.Fatal(pure.Err)
	}
	for _, ph := range emits {
		if res.Artifacts[ph] != pure.Artifacts[ph] {
			t.Errorf("%s artifact from replayed machine differs from cold compile", ph)
		}
	}
	if got := edited.Stats()[PhaseEFSM]; got.DiskHits != 1 || got.Rebuilds != 0 {
		t.Errorf("edited runner efsm stats = %+v, want 1 disk hit, 0 rebuilds", got)
	}
}

// TestRunnerMinimizePhase: with Minimize set the efsm-min phase gets
// its own key and snapshot, chained from efsm; a store warmed without
// minimization still serves the efsm phase.
func TestRunnerMinimizePhase(t *testing.T) {
	dir := t.TempDir()
	store, err := cache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(store)
	plain := r.Run(Request{Path: "abro.ecl", Source: paperex.ABRO, Emits: []Phase{PhaseEmitC}})
	if plain.Err != nil {
		t.Fatal(plain.Err)
	}

	store2, err := cache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	r2 := NewRunner(store2)
	min := r2.Run(Request{Path: "abro.ecl", Source: paperex.ABRO,
		Opts: core.Options{Minimize: true}, Emits: []Phase{PhaseEmitC}})
	if min.Err != nil {
		t.Fatal(min.Err)
	}
	if st := statusOf(t, min, PhaseEFSM); st != StatusDiskHit {
		t.Errorf("efsm = %s, want disk-hit from the unminimized build", st)
	}
	if st := statusOf(t, min, PhaseEFSMMin); st != StatusRebuilt {
		t.Errorf("efsm-min = %s, want rebuilt", st)
	}
	if st := statusOf(t, min, PhaseEmitC); st != StatusRebuilt {
		t.Errorf("emit-c = %s, want rebuilt (different machine key)", st)
	}
	if min.Artifacts[PhaseEmitC] == plain.Artifacts[PhaseEmitC] {
		// Minimization may be a no-op for some designs, but abro's
		// machine does minimize; if this fires the phase plumbing
		// probably reused the wrong machine.
		t.Log("warning: minimized artifact identical to unminimized")
	}
}

// TestRunnerEmitFailureIsPerPhase: a failing back end (hardware over a
// design with a data part) reports per-phase, without failing the
// machine phases or the other emissions.
func TestRunnerEmitFailureIsPerPhase(t *testing.T) {
	r := &Runner{}
	res := r.Run(Request{Path: "stack.ecl", Source: paperex.Stack, Module: "toplevel",
		Emits: []Phase{PhaseEmitVerilog, PhaseEmitC}})
	if res.Err != nil {
		t.Fatalf("pipeline failed outright: %v", res.Err)
	}
	if res.EmitErrs[PhaseEmitVerilog] == nil {
		t.Error("verilog emission over a data design did not fail")
	}
	if res.Artifacts[PhaseEmitC] == "" {
		t.Error("C emission missing despite verilog failure")
	}
	if st := statusOf(t, res, PhaseEmitVerilog); st != StatusFailed {
		t.Errorf("emit-verilog = %s, want failed", st)
	}
}

// TestRunnerNoCache: NoCache reports rebuilt everywhere and touches no
// tier.
func TestRunnerNoCache(t *testing.T) {
	r := &Runner{NoCache: true}
	for i := 0; i < 2; i++ {
		res := r.Run(Request{Path: "abro.ecl", Source: paperex.ABRO, Emits: []Phase{PhaseEmitC}})
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		if st := statusOf(t, res, PhaseEFSM); st != StatusRebuilt {
			t.Errorf("pass %d: efsm = %s, want rebuilt", i, st)
		}
	}
}

// TestRunnerCorruptSnapshotRebuilds: a truncated efsm blob degrades to
// a rebuild, not an error.
func TestRunnerCorruptSnapshotRebuilds(t *testing.T) {
	dir := t.TempDir()
	store, err := cache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	NewRunner(store).Run(Request{Path: "abro.ecl", Source: paperex.ABRO, Emits: []Phase{PhaseEmitC}})

	// Corrupt every v2 blob in place.
	store2, err := cache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	corruptV2Blobs(t, dir)
	res := NewRunner(store2).Run(Request{Path: "abro.ecl", Source: paperex.ABRO, Emits: []Phase{PhaseEmitC}})
	if res.Err != nil {
		t.Fatalf("corrupted store failed the build: %v", res.Err)
	}
	if st := statusOf(t, res, PhaseEFSM); st != StatusRebuilt {
		t.Errorf("efsm over corrupt store = %s, want rebuilt", st)
	}
}

// vetSource has exactly one finding: the ECL001 unused local signal.
const vetSource = `
module m (input pure i, output pure o)
{
    signal pure unused_sig;
    while (1) {
        await (i);
        emit (o);
    }
}
`

// TestRunnerAnalyzePhase: the analyze phase runs on request, snapshots
// its findings, and a fresh process replays them from disk without
// re-analysis — the warm `eclc -vet` contract.
func TestRunnerAnalyzePhase(t *testing.T) {
	dir := t.TempDir()
	open := func() *Runner {
		store, err := cache.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		return NewRunner(store)
	}

	cold := open().Run(Request{Path: "vet.ecl", Source: vetSource, Analyze: true})
	if cold.Err != nil {
		t.Fatalf("cold: %v", cold.Err)
	}
	if st := statusOf(t, cold, PhaseAnalyze); st != StatusRebuilt {
		t.Errorf("cold analyze = %s, want rebuilt", st)
	}
	if len(cold.Findings) != 1 || cold.Findings[0].Rule != "ECL001" {
		t.Fatalf("cold findings = %+v, want one ECL001", cold.Findings)
	}

	warm := open().Run(Request{Path: "vet.ecl", Source: vetSource, Analyze: true})
	if warm.Err != nil {
		t.Fatalf("warm: %v", warm.Err)
	}
	if st := statusOf(t, warm, PhaseAnalyze); st != StatusDiskHit {
		t.Errorf("warm analyze = %s, want disk-hit", st)
	}
	if len(warm.Findings) != 1 || warm.Findings[0] != cold.Findings[0] {
		t.Errorf("replayed findings %+v differ from fresh %+v", warm.Findings, cold.Findings)
	}

	// Same runner again: the snapshot serves from memory.
	r := open()
	r.Run(Request{Path: "vet.ecl", Source: vetSource, Analyze: true})
	mem := r.Run(Request{Path: "vet.ecl", Source: vetSource, Analyze: true})
	if st := statusOf(t, mem, PhaseAnalyze); st != StatusMemHit {
		t.Errorf("mem analyze = %s, want mem-hit", st)
	}

	// A clean design reports a non-nil empty list, and without Analyze
	// the phase is never walked.
	clean := open().Run(Request{Path: "abro.ecl", Source: paperex.ABRO, Analyze: true})
	if clean.Err != nil || clean.Findings == nil || len(clean.Findings) != 0 {
		t.Errorf("clean = (%v, %+v), want non-nil empty findings", clean.Err, clean.Findings)
	}
	off := open().Run(Request{Path: "abro.ecl", Source: paperex.ABRO})
	if off.Findings != nil {
		t.Errorf("findings without Analyze = %+v, want nil", off.Findings)
	}
	for _, pr := range off.Phases {
		if pr.Phase == PhaseAnalyze {
			t.Errorf("analyze phase walked without Analyze: %+v", pr)
		}
	}
}
