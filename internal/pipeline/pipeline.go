// Package pipeline models the ECL compilation flow as an explicit
// phase graph. Each phase is a node with declared inputs, a content
// key derived from its *inputs'* keys (not from the raw source), and —
// where it pays — a serializable output snapshot:
//
//	parse ──► sem ──► lower ──► efsm ──► efsm-min ──► emit-* / stats
//	  │                 │         ▲
//	  │                 │  structural fingerprint (cuts the key chain)
//	  └── printed AST   └── kernel IR snapshot + EFSM snapshot
//
// The front-end phases (parse, sem, lower) are cheap and chain their
// keys source-downward. The efsm phase's key deliberately breaks the
// chain: it derives from the lowered module's structural fingerprint,
// which excludes data-function bodies, so an edit confined to a data
// function changes the parse/sem/lower/emit keys but *not* the efsm
// key — the Runner re-runs the cheap front end, replays the cached
// machine snapshot against the fresh lowering, and only re-renders the
// artifacts. That is the paper's separable-refinement story applied to
// the build: refining the data part never pays for reactive synthesis
// again.
//
// A Runner consults two tiers per phase — an in-process snapshot map
// and the persistent store's v2 phase-keyed subtree (internal/cache) —
// and records one PhaseResult per phase walked, which the driver
// aggregates into PhaseStats and eclc prints with -explain.
package pipeline

import (
	"encoding/json"
	"fmt"
	"sync"

	"repro/internal/analyze"
	"repro/internal/cache"
	"repro/internal/compile"
	"repro/internal/core"
	"repro/internal/efsm"
	"repro/internal/lower"
	"repro/internal/source"
)

// Phase names one node of the compilation graph.
type Phase string

// Pipeline phases, in flow order.
const (
	PhaseParse       Phase = "parse"
	PhaseSem         Phase = "sem"
	PhaseLower       Phase = "lower"
	PhaseEFSM        Phase = "efsm"
	PhaseEFSMMin     Phase = "efsm-min"
	PhaseAnalyze     Phase = "analyze"
	PhaseAnalyzeFile Phase = "analyze-file"
	PhaseEmitEsterel Phase = "emit-esterel"
	PhaseEmitC       Phase = "emit-c"
	PhaseEmitGo      Phase = "emit-go"
	PhaseEmitGlue    Phase = "emit-glue"
	PhaseEmitDot     Phase = "emit-dot"
	PhaseEmitTable   Phase = "emit-table"
	PhaseEmitVerilog Phase = "emit-verilog"
	PhaseEmitVHDL    Phase = "emit-vhdl"
	PhaseEmitStats   Phase = "stats"

	// PhaseDesign is the driver-level pseudo-phase reported when a
	// request is served whole from the design cache (memory tier or v1
	// disk manifests) without walking the graph.
	PhaseDesign Phase = "design"
)

// AllPhases lists every phase in flow order (the stable order used by
// reports).
func AllPhases() []Phase {
	return []Phase{
		PhaseParse, PhaseSem, PhaseLower, PhaseEFSM, PhaseEFSMMin,
		PhaseAnalyze, PhaseAnalyzeFile,
		PhaseEmitEsterel, PhaseEmitC, PhaseEmitGo, PhaseEmitGlue,
		PhaseEmitDot, PhaseEmitTable, PhaseEmitVerilog, PhaseEmitVHDL, PhaseEmitStats,
	}
}

// EmitPhase maps an artifact target name (the driver's Target) to its
// emit phase.
func EmitPhase(target string) (Phase, bool) {
	switch target {
	case "esterel":
		return PhaseEmitEsterel, true
	case "c":
		return PhaseEmitC, true
	case "go":
		return PhaseEmitGo, true
	case "glue":
		return PhaseEmitGlue, true
	case "dot":
		return PhaseEmitDot, true
	case "table":
		return PhaseEmitTable, true
	case "verilog":
		return PhaseEmitVerilog, true
	case "vhdl":
		return PhaseEmitVHDL, true
	case "stats":
		return PhaseEmitStats, true
	}
	return "", false
}

// TargetName is EmitPhase's inverse: the artifact target an emit phase
// renders ("" for non-emit phases).
func TargetName(ph Phase) string {
	switch ph {
	case PhaseEmitEsterel:
		return "esterel"
	case PhaseEmitC:
		return "c"
	case PhaseEmitGo:
		return "go"
	case PhaseEmitGlue:
		return "glue"
	case PhaseEmitDot:
		return "dot"
	case PhaseEmitTable:
		return "table"
	case PhaseEmitVerilog:
		return "verilog"
	case PhaseEmitVHDL:
		return "vhdl"
	case PhaseEmitStats:
		return "stats"
	}
	return ""
}

// Status reports how one phase's output was obtained.
type Status string

// Phase statuses.
const (
	// StatusRebuilt: the phase ran for real.
	StatusRebuilt Status = "rebuilt"
	// StatusMemHit: served from the in-process snapshot cache.
	StatusMemHit Status = "mem-hit"
	// StatusDiskHit: decoded from the persistent v2 phase store.
	StatusDiskHit Status = "disk-hit"
	// StatusRemoteHit: fetched from the shared remote cache tier (and
	// written through to the local tiers).
	StatusRemoteHit Status = "remote-hit"
	// StatusDesignHit: the whole request was served from the design-level
	// cache (memory or v1 disk), so the phase was never consulted
	// individually. Set by the driver, not the Runner.
	StatusDesignHit Status = "design-hit"
	// StatusShared: the phase's output was reused from the file-level
	// compilation unit another request of the same batch already built
	// (parse and sem run once per file; see unitFor).
	StatusShared Status = "shared"
	// StatusFailed: the phase ran and failed.
	StatusFailed Status = "failed"
)

// PhaseResult records one phase walked for one request.
type PhaseResult struct {
	Phase  Phase
	Status Status
	Key    string // full content key (hex); "" when never computed
}

// PhaseCounts aggregates one phase's traffic across requests.
type PhaseCounts struct {
	MemHits, DiskHits, RemoteHits, Rebuilds, Failures int64
	// Shared counts requests served from another request's file-level
	// compilation unit (front-end sharing; parse/sem only).
	Shared int64
}

// PhaseStats maps each phase to its aggregated traffic.
type PhaseStats map[Phase]PhaseCounts

// Request asks the Runner for one module compiled through the graph.
type Request struct {
	Path   string
	Source string
	Module string // "" = last module in the file
	Opts   core.Options
	// Emits lists the artifact phases to render, in order.
	Emits     []Phase
	GoPackage string
	// Analyze runs the static-analysis phase over the compiled design
	// and fills Result.Findings.
	Analyze bool
}

// Result is one pipeline walk's outcome. Err/ErrPhase report a
// front-end or machine failure (everything up to efsm-min); emission
// failures are per-phase in EmitErrs so one failing back end does not
// hide the others.
type Result struct {
	Module    string
	Design    *core.Design
	Artifacts map[Phase]string
	EmitErrs  map[Phase]error
	// Findings holds the analyze phase's diagnostics (nil unless
	// Request.Analyze; non-nil but possibly empty when it ran).
	Findings []analyze.Finding
	// FileFindings holds the design-level (analyze-file) diagnostics for
	// the request's whole file. The design rules run once per shared
	// compilation unit — every module request of the same file sees the
	// same slice — so batch callers must dedup before printing.
	FileFindings []analyze.Finding
	Stats        *core.Stats
	Phases       []PhaseResult
	Err          error
	ErrPhase     Phase
}

// Runner walks the phase graph with three snapshot tiers: an
// in-process map, the persistent store's v2 subtree, and an optional
// shared remote tier. The zero value runs uncached; a Runner is safe
// for concurrent use.
type Runner struct {
	// Disk is the persistent phase-snapshot tier (nil: memory only).
	Disk *cache.Store
	// Remote is the shared cache tier behind the disk tier (nil: none).
	// Remote hits are written through to Disk and memory; fresh
	// snapshots are uploaded best-effort (the remote client queues them
	// asynchronously).
	Remote cache.Tier
	// NoCache disables every tier (every phase rebuilds).
	NoCache bool
	// NoShare disables front-end sharing: every request re-runs parse
	// and sem over its file instead of reusing the per-file unit.
	// Orthogonal to NoCache (sharing is intra-batch reuse, not a cache
	// tier); used to benchmark the per-module-front-end baseline.
	NoShare bool

	mu     sync.Mutex
	mem    map[string]map[string]string // phase key -> blob name -> content
	stored map[string]bool              // phase keys already persisted by this process
	units  map[string]*unit             // parse key -> shared front end
	stats  PhaseStats
}

// NewRunner returns a Runner over the given persistent store (nil for
// memory-only).
func NewRunner(disk *cache.Store) *Runner { return &Runner{Disk: disk} }

// Stats snapshots the per-phase traffic counters.
func (r *Runner) Stats() PhaseStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(PhaseStats, len(r.stats))
	for ph, c := range r.stats {
		out[ph] = c
	}
	return out
}

func (r *Runner) count(ph Phase, st Status) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.stats == nil {
		r.stats = make(PhaseStats)
	}
	c := r.stats[ph]
	switch st {
	case StatusMemHit:
		c.MemHits++
	case StatusDiskHit:
		c.DiskHits++
	case StatusRemoteHit:
		c.RemoteHits++
	case StatusRebuilt:
		c.Rebuilds++
	case StatusShared:
		c.Shared++
	case StatusFailed:
		c.Failures++
	}
	r.stats[ph] = c
}

// getSnap fetches a phase snapshot: memory first, then the v2 disk
// subtree, then the shared remote tier — populating the nearer tiers
// on a hit. ok=false is a miss.
func (r *Runner) getSnap(key string, want []string) (map[string]string, Status, bool) {
	if r.NoCache || key == "" {
		return nil, "", false
	}
	// Copy the wanted blobs while holding the lock: remember() merges
	// into the per-key map in place, and phase keys are shared across
	// requests, so an unlocked read would race a concurrent merge.
	r.mu.Lock()
	blobs, ok := r.mem[key]
	var out map[string]string
	if ok {
		out = make(map[string]string, len(want))
		for _, w := range want {
			text, ok := blobs[w]
			if !ok {
				out = nil
				break
			}
			out[w] = text
		}
	}
	r.mu.Unlock()
	if out != nil {
		return out, StatusMemHit, true
	}
	if r.Disk != nil {
		if e, ok := r.Disk.GetPhase(key, want); ok {
			r.remember(key, e.Blobs, true)
			return e.Blobs, StatusDiskHit, true
		}
	}
	if r.Remote != nil {
		if e, ok := r.Remote.GetPhase(key, want); ok {
			// Read through: the next build of this machine should be a
			// local disk hit, not another network round trip.
			if r.Disk != nil {
				r.Disk.PutPhase(key, e)
			}
			r.remember(key, e.Blobs, true)
			return e.Blobs, StatusRemoteHit, true
		}
	}
	return nil, "", false
}

// putSnap records a freshly built snapshot in every tier (best-effort
// beyond memory: a full disk or dead remote never fails the build; the
// remote client uploads asynchronously).
func (r *Runner) putSnap(ph Phase, key string, blobs map[string]string) {
	if r.NoCache || key == "" || len(blobs) == 0 {
		return
	}
	persisted := false
	if r.Disk != nil {
		persisted = r.Disk.PutPhase(key, &cache.PhaseEntry{Phase: string(ph), Blobs: blobs}) == nil
	}
	if r.Remote != nil {
		r.Remote.PutPhase(key, &cache.PhaseEntry{Phase: string(ph), Blobs: blobs})
	}
	r.remember(key, blobs, persisted)
}

func (r *Runner) remember(key string, blobs map[string]string, persisted bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.mem == nil {
		r.mem = make(map[string]map[string]string)
	}
	if merged, ok := r.mem[key]; ok {
		for k, v := range blobs {
			merged[k] = v
		}
	} else {
		cp := make(map[string]string, len(blobs))
		for k, v := range blobs {
			cp[k] = v
		}
		r.mem[key] = cp
	}
	if persisted {
		if r.stored == nil {
			r.stored = make(map[string]bool)
		}
		r.stored[key] = true
	}
}

// Blob names within phase snapshots.
const (
	blobAST      = "ast"      // parse: printed AST
	blobKernel   = "kernel"   // lower: serialized kernel IR
	blobEFSM     = "efsm"     // efsm / efsm-min: serialized machine
	blobText     = "text"     // emit phases: rendered artifact
	blobJSON     = "json"     // stats: machine-readable core.Stats
	blobFindings = "findings" // analyze: serialized findings list
)

// Run walks the graph for one request. The front end (parse, sem,
// lower) always executes — its outputs are cheap and feed every key
// downstream — while efsm, efsm-min, and the emit phases are served
// from their snapshot tiers whenever their keys match.
func (r *Runner) Run(req Request) *Result {
	res := &Result{Artifacts: make(map[Phase]string), EmitErrs: make(map[Phase]error)}
	record := func(ph Phase, key string, st Status) {
		res.Phases = append(res.Phases, PhaseResult{Phase: ph, Status: st, Key: key})
		r.count(ph, st)
	}
	fail := func(ph Phase, key string, err error) *Result {
		record(ph, key, StatusFailed)
		res.Err = err
		res.ErrPhase = ph
		return res
	}

	// parse + sem: the file-level compilation unit. The front end runs
	// once per (path, source, preprocessor config) and is shared by
	// every module of the file — lowering never mutates the analysis
	// tables (sem.Info.Derive), so the unit fans out safely. The
	// request that builds the unit records rebuilt; followers record
	// shared. sem itself stays un-snapshotted (its tables are
	// pointer-keyed); its key anchors the chain.
	u, built := r.unitFor(req)
	frontStatus := StatusShared
	if built {
		frontStatus = StatusRebuilt
	}
	if u.err != nil && u.errPhase == PhaseParse {
		return fail(PhaseParse, u.parseKey, u.err)
	}
	record(PhaseParse, u.parseKey, frontStatus)
	if u.err != nil {
		return fail(PhaseSem, u.semKey, u.err)
	}
	record(PhaseSem, u.semKey, frontStatus)
	file, info, semKey := u.file, u.info, u.semKey

	// Diagnostics below here are per-request: the unit's front-end list
	// is shared across concurrent module walks and must stay read-only.
	var diags source.DiagList

	// Resolve the module selection (the eclc "last module" convention).
	module := req.Module
	if module == "" {
		mods := file.Modules()
		if len(mods) == 0 {
			return fail(PhaseLower, "", fmt.Errorf("no modules in %s", req.Path))
		}
		module = mods[len(mods)-1].Name
	}
	res.Module = module

	// lower: the reactive/data split. Cheap (linear), so it always
	// runs; the kernel snapshot is stored for IR consumers.
	lowerKey := KeyLower(semKey, module, req.Opts.Policy)
	low, err := lower.Lower(info, module, req.Opts.Policy, &diags)
	if err != nil {
		return fail(PhaseLower, lowerKey, err)
	}
	record(PhaseLower, lowerKey, StatusRebuilt)

	structFP, dataFP, lowSnapBytes, err := fingerprints(file, low)
	if err != nil {
		// A module the codec cannot address is compiled uncached.
		structFP, dataFP = "", ""
	}
	if structFP != "" && !r.alreadyStored(lowerKey) {
		r.putSnap(PhaseLower, lowerKey, map[string]string{blobKernel: string(lowSnapBytes)})
	}

	// efsm: synthesis, or snapshot replay when the structural
	// fingerprint (and thus the key) is unchanged.
	efsmKey := ""
	if structFP != "" {
		efsmKey = KeyEFSM(structFP, req.Opts.Compile)
	}
	machine, st, err := r.machinePhase(PhaseEFSM, efsmKey, low, structFP, func() (*efsm.Machine, error) {
		return compile.CompileWith(low, req.Opts.Compile)
	})
	if err != nil {
		return fail(PhaseEFSM, efsmKey, err)
	}
	record(PhaseEFSM, efsmKey, st)

	final := machine
	machineKey := efsmKey
	if req.Opts.Minimize {
		minKey := ""
		if efsmKey != "" {
			minKey = KeyEFSMMin(efsmKey)
		}
		final, st, err = r.machinePhase(PhaseEFSMMin, minKey, low, structFP, func() (*efsm.Machine, error) {
			m, _ := efsm.Minimize(machine)
			return m, nil
		})
		if err != nil {
			return fail(PhaseEFSMMin, minKey, err)
		}
		record(PhaseEFSMMin, minKey, st)
		machineKey = minKey
	}

	prog := core.NewProgram(file, info, &diags, req.Opts)
	res.Design = &core.Design{Program: prog, Lowered: low, Machine: final}

	// analyze-file: the design-level rules over the whole file's
	// interfaces. They ride the shared compilation unit — the first
	// request of a file runs (or replays) them, every other module of
	// the file records shared — and snapshot under the sem key.
	if req.Analyze {
		fs, st := r.fileAnalyze(u)
		res.FileFindings = fs
		record(PhaseAnalyzeFile, u.fileKey, st)
	}

	// analyze: the static-analysis phase. Findings serialize as a
	// snapshot of their own, so a warm rebuild of an unchanged module
	// replays the diagnostics without re-walking the IRs.
	if req.Analyze {
		key := ""
		if machineKey != "" {
			key = KeyAnalyze(machineKey, lowerKey)
		}
		if blobs, st, ok := r.getSnap(key, []string{blobFindings}); ok {
			if fs, err := analyze.Decode([]byte(blobs[blobFindings])); err == nil {
				res.Findings = fs
				record(PhaseAnalyze, key, st)
			}
		}
		if res.Findings == nil {
			fs := analyze.Analyze(res.Design)
			if fs == nil {
				fs = []analyze.Finding{}
			}
			res.Findings = fs
			record(PhaseAnalyze, key, StatusRebuilt)
			if enc, err := analyze.Encode(res.Findings); err == nil {
				r.putSnap(PhaseAnalyze, key, map[string]string{blobFindings: string(enc)})
			}
		}
	}

	// Emission: per-phase keyed by machine + data bodies, so a
	// data-function edit re-renders here while the machine replays.
	for _, ph := range req.Emits {
		if _, done := res.Artifacts[ph]; done {
			continue
		}
		key := ""
		if machineKey != "" {
			key = KeyEmit(ph, machineKey, dataFP, req.GoPackage)
		}
		want := []string{blobText}
		if ph == PhaseEmitStats {
			want = append(want, blobJSON)
		}
		if blobs, st, ok := r.getSnap(key, want); ok {
			if ph != PhaseEmitStats || res.decodeStats(blobs[blobJSON]) {
				res.Artifacts[ph] = blobs[blobText]
				record(ph, key, st)
				continue
			}
		}
		text, err := Emit(res.Design, ph, req.GoPackage)
		if err != nil {
			res.EmitErrs[ph] = err
			record(ph, key, StatusFailed)
			continue
		}
		res.Artifacts[ph] = text
		blobs := map[string]string{blobText: text}
		if ph == PhaseEmitStats {
			stt := res.Design.Stats()
			res.Stats = &stt
			if js, err := marshalStats(&stt); err == nil {
				blobs[blobJSON] = js
			}
		}
		record(ph, key, StatusRebuilt)
		r.putSnap(ph, key, blobs)
	}
	return res
}

// decodeStats fills Result.Stats from the cached machine-readable
// blob, reporting false (forcing a rebuild) when it does not decode.
func (res *Result) decodeStats(js string) bool {
	var st core.Stats
	if err := json.Unmarshal([]byte(js), &st); err != nil {
		return false
	}
	res.Stats = &st
	return true
}

func marshalStats(st *core.Stats) (string, error) {
	data, err := json.Marshal(st)
	return string(data), err
}

// machinePhase serves one machine-producing phase (efsm or efsm-min)
// from the snapshot tiers, falling back to build. Decode failures
// (corrupt snapshot, drifted module) degrade to a rebuild.
func (r *Runner) machinePhase(ph Phase, key string, low *lower.Result, structFP string, build func() (*efsm.Machine, error)) (*efsm.Machine, Status, error) {
	if blobs, st, ok := r.getSnap(key, []string{blobEFSM}); ok {
		if m, err := DecodeMachine([]byte(blobs[blobEFSM]), low, structFP); err == nil {
			return m, st, nil
		}
	}
	m, err := build()
	if err != nil {
		return nil, StatusFailed, err
	}
	if key != "" && !r.alreadyStored(key) {
		if enc, err := EncodeMachine(m, low, structFP); err == nil {
			r.putSnap(ph, key, map[string]string{blobEFSM: string(enc)})
		}
	}
	return m, StatusRebuilt, nil
}

func (r *Runner) alreadyStored(key string) bool {
	if r.NoCache || key == "" {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stored[key]
}
