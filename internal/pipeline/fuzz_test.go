package pipeline

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/compile"
	"repro/internal/core"
	"repro/internal/paperex"
)

func corruptV2Blobs(t *testing.T, dir string) {
	t.Helper()
	n := 0
	filepath.Walk(filepath.Join(dir, "v2", "blobs"), func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return nil
		}
		n++
		return os.WriteFile(path, []byte("garbage"), 0o644)
	})
	if n == 0 {
		t.Fatal("no v2 blobs to corrupt")
	}
}

// FuzzSnapshotRoundTrip fuzzes the IR codecs: any source the compiler
// accepts must produce lowered and machine snapshots that survive
// Encode -> Decode -> Encode byte-identically, and the decoded machine
// must keep the state count. Registered in the CI fuzz job.
func FuzzSnapshotRoundTrip(f *testing.F) {
	f.Add(paperex.ABRO)
	f.Add(paperex.Buffer)
	f.Add(paperex.RunnerStop)
	f.Add(dataEditSource(3))
	f.Add(`module m (input pure a, output pure b) { while (1) { await (a); emit (b); } }`)
	f.Add(`module m (input int x, output int y) {
	int acc;
	acc = 0;
	while (1) {
		await (x);
		while (acc < 10) { acc = acc + x; }
		emit_v (y, acc);
	}
}`)
	f.Fuzz(func(t *testing.T, src string) {
		opts := core.Options{
			// Bound exploration so pathological fuzz inputs fail fast
			// instead of timing out.
			Compile: compile.Options{MaxStates: 64, MaxRunsPerState: 512, MaxDecisionsPerRun: 16},
		}
		prog, err := core.Parse("fuzz.ecl", src, opts)
		if err != nil {
			return
		}
		mods := prog.Modules()
		if len(mods) == 0 {
			return
		}
		d, err := prog.Compile(mods[len(mods)-1])
		if err != nil {
			return
		}

		enc, err := EncodeLowered(d.Lowered)
		if err != nil {
			// Un-snapshotable modules (e.g. duplicate signal names) are
			// legal: the pipeline compiles them uncached.
			return
		}
		dec, err := DecodeLowered(enc)
		if err != nil {
			t.Fatalf("lowered decode: %v\nsource:\n%s", err, src)
		}
		enc2, err := EncodeLowered(dec)
		if err != nil {
			t.Fatalf("lowered re-encode: %v", err)
		}
		if string(enc) != string(enc2) {
			t.Fatalf("lowered snapshot not a fixpoint\nfirst:  %s\nsecond: %s", enc, enc2)
		}

		structFP, _, err := Fingerprints(prog.File, d.Lowered)
		if err != nil {
			return
		}
		menc, err := EncodeMachine(d.Machine, d.Lowered, structFP)
		if err != nil {
			return
		}
		mdec, err := DecodeMachine(menc, d.Lowered, structFP)
		if err != nil {
			t.Fatalf("machine decode: %v\nsource:\n%s", err, src)
		}
		if len(mdec.States) != len(d.Machine.States) {
			t.Fatalf("machine decode lost states: %d != %d", len(mdec.States), len(d.Machine.States))
		}
		menc2, err := EncodeMachine(mdec, d.Lowered, structFP)
		if err != nil {
			t.Fatalf("machine re-encode: %v", err)
		}
		if string(menc) != string(menc2) {
			t.Fatalf("machine snapshot not a fixpoint")
		}
	})
}
