package pipeline

import (
	"sync"

	"repro/internal/analyze"
	"repro/internal/ast"
	"repro/internal/parser"
	"repro/internal/pp"
	"repro/internal/sem"
	"repro/internal/source"
)

// unit is one file's shared front end. Parse and sem run once per
// (path, source, preprocessor config) — the unit key is the parse
// content key — and their outputs fan out to every per-module walk of
// the file. Lowering is non-mutating (sem.Info.Derive), so a single
// analyzed Info feeds any number of concurrent module compilations;
// at mega-design scale this turns the batch front end from
// O(modules x file) into O(file).
type unit struct {
	once     sync.Once
	parseKey string
	semKey   string
	file     *ast.File
	info     *sem.Info
	err      error
	errPhase Phase // PhaseParse or PhaseSem when err != nil

	// Design-level analysis (the analyze-file phase) also runs once per
	// unit: the first analyzing request builds or replays the findings,
	// every later one shares them.
	fileOnce     sync.Once
	fileKey      string
	fileFindings []analyze.Finding
	fileStatus   Status
}

// unitFor returns the compilation unit for the request's file, building
// it single-flight if this Runner has not seen the file yet. built
// reports whether this call did the building, so the caller can record
// the parse/sem phases as rebuilt vs shared. With NoShare set, a
// private unit is built per call — the per-module-front-end baseline
// the shared path is benchmarked against.
func (r *Runner) unitFor(req Request) (u *unit, built bool) {
	parseKey := KeyParse(req.Path, req.Source, req.Opts)
	if r.NoShare {
		u = &unit{parseKey: parseKey}
		u.once.Do(func() { r.buildUnit(u, req) })
		return u, true
	}
	r.mu.Lock()
	if r.units == nil {
		r.units = make(map[string]*unit)
	}
	u, ok := r.units[parseKey]
	if !ok {
		u = &unit{parseKey: parseKey}
		r.units[parseKey] = u
	}
	r.mu.Unlock()
	u.once.Do(func() {
		built = true
		r.buildUnit(u, req)
	})
	return u, built
}

// Modules runs (or shares) the file-level front end for the request's
// file and returns its module names in source order. The unit it
// builds is the same one later per-module Runs reuse, so batch
// expansion itself seeds the shared front end; a build here is counted
// as a parse/sem rebuild in the runner's stats (the per-module walks
// then count as shared). The returned Phase localizes a front-end
// failure (PhaseParse or PhaseSem).
func (r *Runner) Modules(req Request) ([]string, Phase, error) {
	u, built := r.unitFor(req)
	if built {
		switch {
		case u.err != nil && u.errPhase == PhaseParse:
			r.count(PhaseParse, StatusFailed)
		case u.err != nil:
			r.count(PhaseParse, StatusRebuilt)
			r.count(PhaseSem, StatusFailed)
		default:
			r.count(PhaseParse, StatusRebuilt)
			r.count(PhaseSem, StatusRebuilt)
		}
	}
	if u.err != nil {
		return nil, u.errPhase, u.err
	}
	mods := u.file.Modules()
	names := make([]string, 0, len(mods))
	for _, m := range mods {
		names = append(names, m.Name)
	}
	return names, "", nil
}

// fileAnalyze serves the design-level (analyze-file) phase for one
// unit: snapshot replay when the sem-chained key hits a tier, a real
// AnalyzeFile run otherwise. The builder's status is whatever actually
// happened; sharing requests report StatusShared, mirroring parse/sem.
func (r *Runner) fileAnalyze(u *unit) ([]analyze.Finding, Status) {
	built := false
	u.fileOnce.Do(func() {
		built = true
		u.fileKey = KeyAnalyzeFile(u.semKey)
		if blobs, st, ok := r.getSnap(u.fileKey, []string{blobFindings}); ok {
			if fs, err := analyze.Decode([]byte(blobs[blobFindings])); err == nil {
				u.fileFindings, u.fileStatus = fs, st
				return
			}
		}
		fs := analyze.AnalyzeFile(u.info)
		if fs == nil {
			fs = []analyze.Finding{}
		}
		u.fileFindings, u.fileStatus = fs, StatusRebuilt
		if enc, err := analyze.Encode(fs); err == nil {
			r.putSnap(PhaseAnalyzeFile, u.fileKey, map[string]string{blobFindings: string(enc)})
		}
	})
	if built || r.NoShare {
		return u.fileFindings, u.fileStatus
	}
	return u.fileFindings, StatusShared
}

// buildUnit runs the front end once for the unit's file: preprocess,
// parse (snapshotting the printed AST), and semantic analysis. The
// unit's diagnostics stay local; failures surface through err/errPhase
// and every sharing request reports them identically.
func (r *Runner) buildUnit(u *unit, req Request) {
	var diags source.DiagList
	prep := pp.New(&diags, pp.MapResolver(req.Opts.Includes))
	for k, v := range req.Opts.Defines {
		prep.Define(k, v)
	}
	expanded := prep.Expand(source.NewFile(req.Path, req.Source))
	u.file = parser.ParseFile(expanded, &diags)
	if diags.HasErrors() {
		u.err, u.errPhase = diags.Err(), PhaseParse
		return
	}
	if !r.alreadyStored(u.parseKey) {
		r.putSnap(PhaseParse, u.parseKey, map[string]string{blobAST: ast.String(u.file)})
	}
	u.semKey = KeySem(u.parseKey)
	u.info = sem.Analyze(u.file, &diags)
	if diags.HasErrors() {
		u.err, u.errPhase = diags.Err(), PhaseSem
	}
}
