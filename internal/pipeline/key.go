package pipeline

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash"
	"sort"

	"repro/internal/analyze"
	"repro/internal/ast"
	"repro/internal/compile"
	"repro/internal/core"
	"repro/internal/lower"
)

// keyGeneration versions the whole phase-key scheme; bumping it (or
// snapCodecVersion, which every key folds in) turns all v2 entries
// into misses after an incompatible change.
const keyGeneration = 1

// fph starts a phase-key hash, salted with the phase name and the key
// and codec generations.
func fph(phase Phase) hash.Hash {
	h := sha256.New()
	fmt.Fprintf(h, "ecl-phase:%s:g%d:c%d", phase, keyGeneration, snapCodecVersion)
	return h
}

func hpart(h hash.Hash, part string) {
	fmt.Fprintf(h, "\x00%d:", len(part))
	h.Write([]byte(part))
}

func hsum(h hash.Hash) string { return hex.EncodeToString(h.Sum(nil)) }

func hmap(h hash.Hash, tag string, m map[string]string) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Fprintf(h, "\x00%s:%d", tag, len(keys))
	for _, k := range keys {
		fmt.Fprintf(h, "\x00%s\x01%s", k, m[k])
	}
}

// KeyParse fingerprints the parse phase: the source bytes, the path
// (diagnostics and positions carry it), and the preprocessor
// configuration.
func KeyParse(path, src string, opts core.Options) string {
	h := fph(PhaseParse)
	hpart(h, path)
	hpart(h, src)
	hmap(h, "def", opts.Defines)
	hmap(h, "inc", opts.Includes)
	return hsum(h)
}

// KeySem chains from parse: semantic analysis has no options of its
// own.
func KeySem(parseKey string) string {
	h := fph(PhaseSem)
	hpart(h, parseKey)
	return hsum(h)
}

// KeyLower chains from sem plus the selected module and splitter
// policy.
func KeyLower(semKey, module string, pol lower.Policy) string {
	h := fph(PhaseLower)
	hpart(h, semKey)
	hpart(h, module)
	fmt.Fprintf(h, "\x00pol:%d", pol)
	return hsum(h)
}

// KeyEFSM is the pipeline's cut point: it derives from the lowered
// module's *structural* fingerprint — not from the lower phase key —
// so any edit that leaves the reactive structure intact (in
// particular, a data-function body edit) keeps the EFSM key stable
// and replays the cached machine.
func KeyEFSM(structFP string, opts compile.Options) string {
	h := fph(PhaseEFSM)
	hpart(h, structFP)
	fmt.Fprintf(h, "\x00cmp:%d:%d:%d", opts.MaxStates, opts.MaxRunsPerState, opts.MaxDecisionsPerRun)
	return hsum(h)
}

// KeyEFSMMin chains from the unminimized machine's key.
func KeyEFSMMin(efsmKey string) string {
	h := fph(PhaseEFSMMin)
	hpart(h, efsmKey)
	return hsum(h)
}

// KeyAnalyze fingerprints the static-analysis phase: the machine it
// inspects (by phase key — efsm or efsm-min, so minimized and
// unminimized analyses cache separately), the front end's lower key
// (which chains back through sem and parse to the exact source bytes,
// so cached findings can never replay stale positions or miss a
// source-level edit the structural fingerprint forgives), and the rule
// registry's salt, so adding, removing, or revising a rule invalidates
// every cached findings snapshot.
func KeyAnalyze(machineKey, lowerKey string) string {
	h := fph(PhaseAnalyze)
	hpart(h, machineKey)
	hpart(h, lowerKey)
	hpart(h, analyze.KeySalt())
	return hsum(h)
}

// KeyAnalyzeFile fingerprints the design-level analysis of one file:
// the sem key (which chains back through parse to the exact source
// bytes and preprocessor config) plus the rule registry's salt. No
// module, policy, or machine enters the key — the design rules read
// only the semantic tables, once per file.
func KeyAnalyzeFile(semKey string) string {
	h := fph(PhaseAnalyzeFile)
	hpart(h, semKey)
	hpart(h, analyze.KeySalt())
	return hsum(h)
}

// KeyEmit fingerprints one emission: the machine it renders (by phase
// key), the data-function bodies the back ends inline (by data
// fingerprint), and the requested Go package name for emit-go.
func KeyEmit(phase Phase, machineKey, dataFP, goPkg string) string {
	h := fph(phase)
	hpart(h, machineKey)
	hpart(h, dataFP)
	if phase == PhaseEmitGo {
		hpart(h, goPkg)
	}
	return hsum(h)
}

// ---------------------------------------------------------------------------
// Fingerprints

// EnvFingerprint hashes the translation unit's non-module environment:
// typedefs, structs, enums, constants, and C function bodies, as
// canonically printed source. EFSM synthesis can read any of these
// through inline data expressions (constant folding evaluates helper
// calls and enum values), so they are part of the structural
// fingerprint even though the kernel tree does not spell them out.
func EnvFingerprint(file *ast.File) string {
	h := sha256.New()
	fmt.Fprintf(h, "ecl-env:c%d", snapCodecVersion)
	for _, d := range file.Decls {
		if _, isMod := d.(*ast.ModuleDecl); isMod {
			continue
		}
		hpart(h, ast.String(d))
	}
	return hsum(h)
}

// Fingerprints computes the two content fingerprints of a lowered
// module that split the phase graph:
//
//   - structural covers everything EFSM synthesis reads — the
//     environment (EnvFingerprint), the signal/variable interface, and
//     the kernel statement tree with its inline expressions — but NOT
//     data-function bodies, which the symbolic compiler treats as
//     opaque calls;
//   - data covers the data-function bodies, which only the back ends
//     read.
//
// Together they cover the full lowering result: any edit moves at
// least one of them, and a data-only edit moves only the second.
func Fingerprints(file *ast.File, low *lower.Result) (structural, data string, err error) {
	structural, data, _, err = fingerprints(file, low)
	return structural, data, err
}

// fingerprints additionally returns the encoded full snapshot (the
// lower phase's cache blob), so Run serializes the module once instead
// of re-walking it through EncodeLowered.
func fingerprints(file *ast.File, low *lower.Result) (structural, data string, encoded []byte, err error) {
	structSnap, err := buildLowSnap(low, false)
	if err != nil {
		return "", "", nil, err
	}
	structBytes, err := json.Marshal(structSnap)
	if err != nil {
		return "", "", nil, err
	}
	h := sha256.New()
	fmt.Fprintf(h, "ecl-struct:c%d", snapCodecVersion)
	hpart(h, EnvFingerprint(file))
	hpart(h, string(structBytes))
	structural = hsum(h)

	fullSnap, err := buildLowSnap(low, true)
	if err != nil {
		return "", "", nil, err
	}
	encoded, err = json.Marshal(fullSnap)
	if err != nil {
		return "", "", nil, err
	}
	hd := sha256.New()
	fmt.Fprintf(hd, "ecl-data:c%d", snapCodecVersion)
	for _, f := range fullSnap.Funcs {
		hpart(hd, f.Name)
		hpart(hd, f.Label)
		hpart(hd, f.Body)
	}
	data = hsum(hd)
	return structural, data, encoded, nil
}
