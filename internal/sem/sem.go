// Package sem implements semantic analysis for ECL: name resolution
// with block scoping, the signal/value overloading rule (a signal name
// means "presence" inside a reactive signal expression and "value"
// everywhere else), type checking over internal/ctypes, reactive-vs-
// data classification of statements, and module-instantiation checks.
//
// Analysis produces an Info that later phases (the splitter/lowering,
// the cost model, code generators) consult instead of re-deriving
// facts from the raw AST.
package sem

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/ctypes"
	"repro/internal/source"
	"repro/internal/token"
)

// Object is a named entity: a variable, signal, function, module, or
// enum constant.
type Object interface{ objectNode() }

// VarInfo describes one declared variable. Mangled is unique within
// the module, so later phases can flatten block scopes safely.
type VarInfo struct {
	Name    string
	Mangled string
	Type    ctypes.Type
	Decl    *ast.VarDecl
	Global  bool
}

// SignalInfo describes a module signal: an interface parameter or a
// module-local signal.
type SignalInfo struct {
	Name      string
	Dir       ast.SigDir // meaningful only for interface signals
	Pure      bool
	ValueType ctypes.Type // nil for pure signals
	Local     bool        // declared with "signal" inside the module
}

// FuncInfo describes a plain C function.
type FuncInfo struct {
	Name   string
	Ret    ctypes.Type
	Params []*VarInfo
	Decl   *ast.FuncDecl
}

// ConstInfo is an enum constant.
type ConstInfo struct {
	Name  string
	Value int64
}

// ModuleInfo describes one ECL module.
type ModuleInfo struct {
	Name   string
	Decl   *ast.ModuleDecl
	Params []*SignalInfo
	Locals []*SignalInfo // local signals, in declaration order
	Vars   []*VarInfo    // all variables (flattened), in declaration order
	// Instantiates lists modules this module instantiates (deduplicated).
	Instantiates []string
}

// Signal returns the parameter or local signal with the given name, or nil.
func (m *ModuleInfo) Signal(name string) *SignalInfo {
	for _, s := range m.Params {
		if s.Name == name {
			return s
		}
	}
	for _, s := range m.Locals {
		if s.Name == name {
			return s
		}
	}
	return nil
}

func (*VarInfo) objectNode()    {}
func (*SignalInfo) objectNode() {}
func (*FuncInfo) objectNode()   {}
func (*ConstInfo) objectNode()  {}

// ModuleRef marks an identifier that names a module (in an
// instantiation).
type ModuleRef struct{ Module *ModuleInfo }

func (*ModuleRef) objectNode() {}

// Info is the result of analysis.
type Info struct {
	File    *ast.File
	Diags   *source.DiagList
	Types   map[string]ctypes.Type // typedef name -> type
	Structs map[string]*ctypes.StructType
	Enums   map[string]*ctypes.EnumType
	Consts  map[string]*ConstInfo
	Funcs   map[string]*FuncInfo
	Modules map[string]*ModuleInfo

	// Uses resolves each identifier occurrence to its object.
	Uses map[*ast.Ident]Object
	// ExprType records the value type of each expression.
	ExprType map[ast.Expr]ctypes.Type
	// MayHalt records, per statement, whether its subtree can end an
	// instant (contains await/halt, directly or through instantiation).
	MayHalt map[ast.Stmt]bool
	// IsInst marks calls that are module instantiations.
	IsInst map[*ast.Call]bool
	// VarOf resolves each variable declaration to its VarInfo.
	VarOf map[*ast.VarDecl]*VarInfo
	// TypeOfExpr caches resolved syntactic types (casts, sizeof).
	TypeOfExpr map[ast.TypeExpr]ctypes.Type

	// overlay, when non-nil, receives entries recorded after analysis
	// (lowering and code generation synthesize AST nodes and register
	// their resolution/type here) without touching the shared base maps
	// above. See Derive.
	overlay *overlay
}

// overlay holds post-analysis Uses/ExprType entries private to one
// Derive chain. Overlays never shadow base entries — writers only
// register freshly synthesized nodes — so lookups may consult base and
// overlay in either order; the parent link supports deriving from an
// already-derived Info (e.g. code generation over a lowering's view).
type overlay struct {
	parent   *overlay
	uses     map[*ast.Ident]Object
	exprType map[ast.Expr]ctypes.Type
}

// Derive returns a view of i that records new Uses/ExprType entries
// privately, leaving i untouched. It is cheap (no table copying), so
// one analyzed Info can feed any number of concurrent consumers:
// lowering derives a view per module, writes only to it, and the base
// tables stay immutable after Analyze returns.
func (i *Info) Derive() *Info {
	d := *i
	d.overlay = &overlay{
		parent:   i.overlay,
		uses:     make(map[*ast.Ident]Object),
		exprType: make(map[ast.Expr]ctypes.Type),
	}
	return &d
}

// SetUse records the resolution of a synthesized identifier. On a
// derived Info the entry lands in the private overlay; on a base Info
// (during analysis) it writes the shared table.
func (i *Info) SetUse(id *ast.Ident, obj Object) {
	if i.overlay != nil {
		i.overlay.uses[id] = obj
		return
	}
	i.Uses[id] = obj
}

// SetExprType records the value type of a synthesized expression,
// following the same overlay rule as SetUse.
func (i *Info) SetExprType(e ast.Expr, t ctypes.Type) {
	if i.overlay != nil {
		i.overlay.exprType[e] = t
		return
	}
	i.ExprType[e] = t
}

// UseOf resolves an identifier occurrence, consulting the overlay
// chain and the base table. Post-analysis consumers that may see
// synthesized nodes must use this instead of reading Uses directly.
func (i *Info) UseOf(id *ast.Ident) Object {
	for o := i.overlay; o != nil; o = o.parent {
		if obj, ok := o.uses[id]; ok {
			return obj
		}
	}
	return i.Uses[id]
}

// TypeOf reports the value type of an expression, consulting the
// overlay chain and the base table (nil when unrecorded).
func (i *Info) TypeOf(e ast.Expr) ctypes.Type {
	for o := i.overlay; o != nil; o = o.parent {
		if t, ok := o.exprType[e]; ok {
			return t
		}
	}
	return i.ExprType[e]
}

// Analyze type-checks the file and returns the accumulated Info. Errors
// are reported to diags; the returned Info is usable for error-free
// parts even when diags has errors.
func Analyze(f *ast.File, diags *source.DiagList) *Info {
	a := &analyzer{
		info: &Info{
			File:       f,
			Diags:      diags,
			Types:      make(map[string]ctypes.Type),
			Structs:    make(map[string]*ctypes.StructType),
			Enums:      make(map[string]*ctypes.EnumType),
			Consts:     make(map[string]*ConstInfo),
			Funcs:      make(map[string]*FuncInfo),
			Modules:    make(map[string]*ModuleInfo),
			Uses:       make(map[*ast.Ident]Object),
			ExprType:   make(map[ast.Expr]ctypes.Type),
			MayHalt:    make(map[ast.Stmt]bool),
			IsInst:     make(map[*ast.Call]bool),
			VarOf:      make(map[*ast.VarDecl]*VarInfo),
			TypeOfExpr: make(map[ast.TypeExpr]ctypes.Type),
		},
		diags: diags,
	}
	a.run(f)
	return a.info
}

type analyzer struct {
	info  *Info
	diags *source.DiagList

	// Per-module state.
	mod      *ModuleInfo
	fn       *FuncInfo
	scopes   []map[string]Object
	varSeq   int
	loopDep  int
	inSigCtx bool // inside a reactive signal expression
}

func (a *analyzer) errorf(pos source.Pos, format string, args ...interface{}) {
	a.diags.Errorf(pos, format, args...)
}

func (a *analyzer) run(f *ast.File) {
	// Pass 1: types, enum constants, function and module signatures.
	for _, d := range f.Decls {
		switch d := d.(type) {
		case *ast.TypedefDecl:
			t := a.resolveType(d.Type)
			if _, dup := a.info.Types[d.Name]; dup {
				a.errorf(d.Pos(), "typedef %q redefined", d.Name)
			}
			a.info.Types[d.Name] = t
		case *ast.TypeDecl:
			a.resolveType(d.Type) // registers tags / enum constants
		case *ast.GlobalVarDecl:
			// Registered in pass 2 after all types are known.
		case *ast.FuncDecl:
			a.declareFunc(d)
		case *ast.ModuleDecl:
			a.declareModule(d)
		}
	}
	// Pass 2: bodies.
	for _, d := range f.Decls {
		switch d := d.(type) {
		case *ast.GlobalVarDecl:
			a.checkGlobalVar(d)
		case *ast.FuncDecl:
			a.checkFuncBody(d)
		case *ast.ModuleDecl:
			a.checkModuleBody(d)
		}
	}
	a.checkInstantiationGraph()
}

// ---------------------------------------------------------------------------
// Types

func (a *analyzer) resolveType(t ast.TypeExpr) ctypes.Type {
	if t == nil {
		return ctypes.Void
	}
	if cached, ok := a.info.TypeOfExpr[t]; ok {
		return cached
	}
	r := a.resolveTypeUncached(t)
	a.info.TypeOfExpr[t] = r
	return r
}

func (a *analyzer) resolveTypeUncached(t ast.TypeExpr) ctypes.Type {
	switch t := t.(type) {
	case *ast.BuiltinType:
		switch t.Kind {
		case ast.Void:
			return ctypes.Void
		case ast.Bool:
			return ctypes.Bool
		case ast.Char:
			return ctypes.Char
		case ast.SChar:
			return ctypes.SChar
		case ast.UChar:
			return ctypes.UChar
		case ast.Short:
			return ctypes.Short
		case ast.UShort:
			return ctypes.UShort
		case ast.Int:
			return ctypes.Int
		case ast.UInt:
			return ctypes.UInt
		case ast.Long:
			return ctypes.Long
		case ast.ULong:
			return ctypes.ULong
		case ast.Float:
			return ctypes.Float
		case ast.Double:
			return ctypes.Double
		}
	case *ast.NamedType:
		if r, ok := a.info.Types[t.Name]; ok {
			return r
		}
		a.errorf(t.Pos(), "unknown type name %q", t.Name)
		return ctypes.Int
	case *ast.ArrayType:
		elem := a.resolveType(t.Elem)
		n, ok := a.constEval(t.Len)
		if !ok || n < 0 {
			a.errorf(t.Pos(), "array length must be a non-negative constant")
			n = 1
		}
		return &ctypes.ArrayType{Elem: elem, Len: int(n)}
	case *ast.PointerType:
		return &ctypes.PointerType{Elem: a.resolveType(t.Elem)}
	case *ast.StructType:
		if t.Fields == nil {
			if st, ok := a.info.Structs[t.Tag]; ok {
				return st
			}
			a.errorf(t.Pos(), "unknown %s tag %q",
				map[bool]string{true: "union", false: "struct"}[t.Union], t.Tag)
			return ctypes.NewStruct(t.Union, t.Tag, nil)
		}
		var fields []ctypes.StructField
		seen := make(map[string]bool)
		for _, f := range t.Fields {
			ft := a.resolveType(f.Type)
			for i := len(f.Dims) - 1; i >= 0; i-- {
				n, ok := a.constEval(f.Dims[i])
				if !ok || n < 0 {
					a.errorf(f.Dims[i].Pos(), "array length must be a non-negative constant")
					n = 1
				}
				ft = &ctypes.ArrayType{Elem: ft, Len: int(n)}
			}
			if seen[f.Name] {
				a.errorf(t.Pos(), "duplicate field %q", f.Name)
				continue
			}
			seen[f.Name] = true
			fields = append(fields, ctypes.StructField{Name: f.Name, Type: ft})
		}
		st := ctypes.NewStruct(t.Union, t.Tag, fields)
		if t.Tag != "" {
			a.info.Structs[t.Tag] = st
		}
		return st
	case *ast.EnumType:
		if t.Items == nil {
			if et, ok := a.info.Enums[t.Tag]; ok {
				return et
			}
			a.errorf(t.Pos(), "unknown enum tag %q", t.Tag)
			return &ctypes.EnumType{Tag: t.Tag}
		}
		et := &ctypes.EnumType{Tag: t.Tag, Items: make(map[string]int64)}
		next := int64(0)
		for _, it := range t.Items {
			if it.Value != nil {
				v, ok := a.constEval(it.Value)
				if !ok {
					a.errorf(it.Value.Pos(), "enum value must be constant")
				} else {
					next = v
				}
			}
			et.Items[it.Name] = next
			if _, dup := a.info.Consts[it.Name]; dup {
				a.errorf(t.Pos(), "enum constant %q redefined", it.Name)
			}
			a.info.Consts[it.Name] = &ConstInfo{Name: it.Name, Value: next}
			next++
		}
		if t.Tag != "" {
			a.info.Enums[t.Tag] = et
		}
		return et
	}
	a.errorf(t.Pos(), "unsupported type")
	return ctypes.Int
}

// constEval evaluates an integer constant expression.
func (a *analyzer) constEval(e ast.Expr) (int64, bool) {
	switch e := e.(type) {
	case *ast.BasicLit:
		switch e.Kind {
		case token.INT:
			return parseIntLit(e.Value)
		case token.CHAR:
			v, ok := parseCharLit(e.Value)
			return v, ok
		}
	case *ast.Ident:
		if c, ok := a.info.Consts[e.Name]; ok {
			return c.Value, true
		}
	case *ast.Paren:
		return a.constEval(e.X)
	case *ast.Unary:
		v, ok := a.constEval(e.X)
		if !ok {
			return 0, false
		}
		switch e.Op {
		case token.SUB:
			return -v, true
		case token.ADD:
			return v, true
		case token.NOT:
			if v == 0 {
				return 1, true
			}
			return 0, true
		case token.TILDE:
			return ^v, true
		}
	case *ast.Binary:
		x, ok1 := a.constEval(e.X)
		y, ok2 := a.constEval(e.Y)
		if !ok1 || !ok2 {
			return 0, false
		}
		switch e.Op {
		case token.ADD:
			return x + y, true
		case token.SUB:
			return x - y, true
		case token.MUL:
			return x * y, true
		case token.QUO:
			if y == 0 {
				return 0, false
			}
			return x / y, true
		case token.REM:
			if y == 0 {
				return 0, false
			}
			return x % y, true
		case token.SHL:
			return x << uint(y&63), true
		case token.SHR:
			return x >> uint(y&63), true
		case token.AND:
			return x & y, true
		case token.OR:
			return x | y, true
		case token.XOR:
			return x ^ y, true
		case token.EQL:
			return b2i(x == y), true
		case token.NEQ:
			return b2i(x != y), true
		case token.LSS:
			return b2i(x < y), true
		case token.GTR:
			return b2i(x > y), true
		case token.LEQ:
			return b2i(x <= y), true
		case token.GEQ:
			return b2i(x >= y), true
		case token.LAND:
			return b2i(x != 0 && y != 0), true
		case token.LOR:
			return b2i(x != 0 || y != 0), true
		}
	case *ast.SizeofExpr:
		if e.Type != nil {
			return int64(a.resolveType(e.Type).Size()), true
		}
	}
	return 0, false
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// parseIntLit parses decimal, hex (0x...), and octal (0...) literals.
func parseIntLit(s string) (int64, bool) {
	// Strip suffixes.
	for len(s) > 0 {
		switch s[len(s)-1] {
		case 'u', 'U', 'l', 'L':
			s = s[:len(s)-1]
			continue
		}
		break
	}
	if s == "" {
		return 0, false
	}
	neg := false
	base := int64(10)
	i := 0
	if len(s) > 1 && s[0] == '0' {
		if s[1] == 'x' || s[1] == 'X' {
			base = 16
			i = 2
		} else {
			base = 8
			i = 1
		}
	}
	var v int64
	for ; i < len(s); i++ {
		c := s[i]
		var d int64
		switch {
		case '0' <= c && c <= '9':
			d = int64(c - '0')
		case 'a' <= c && c <= 'f':
			d = int64(c-'a') + 10
		case 'A' <= c && c <= 'F':
			d = int64(c-'A') + 10
		default:
			return 0, false
		}
		if d >= base {
			return 0, false
		}
		v = v*base + d
	}
	if neg {
		v = -v
	}
	return v, true
}

func parseCharLit(s string) (int64, bool) {
	if len(s) < 3 || s[0] != '\'' || s[len(s)-1] != '\'' {
		return 0, false
	}
	body := s[1 : len(s)-1]
	if body[0] != '\\' {
		return int64(body[0]), true
	}
	if len(body) < 2 {
		return 0, false
	}
	switch body[1] {
	case 'n':
		return '\n', true
	case 't':
		return '\t', true
	case 'r':
		return '\r', true
	case '0':
		return 0, true
	case '\\':
		return '\\', true
	case '\'':
		return '\'', true
	}
	return 0, false
}

// ConstEval exposes constant evaluation over the analyzed file's
// constants (for later phases).
func (i *Info) ConstEval(e ast.Expr) (int64, bool) {
	a := &analyzer{info: i, diags: &source.DiagList{}}
	return a.constEval(e)
}

// ---------------------------------------------------------------------------
// Declarations

func (a *analyzer) declareFunc(d *ast.FuncDecl) {
	if _, dup := a.info.Funcs[d.Name]; dup {
		// Allow a prototype followed by the definition.
		if d.Body == nil {
			return
		}
		if a.info.Funcs[d.Name].Decl.Body != nil {
			a.errorf(d.Pos(), "function %q redefined", d.Name)
			return
		}
	}
	fi := &FuncInfo{Name: d.Name, Ret: a.resolveType(d.Ret), Decl: d}
	for _, p := range d.Params {
		fi.Params = append(fi.Params, &VarInfo{
			Name:    p.Name,
			Mangled: p.Name,
			Type:    a.resolveType(p.Type),
		})
	}
	a.info.Funcs[d.Name] = fi
}

func (a *analyzer) declareModule(d *ast.ModuleDecl) {
	if _, dup := a.info.Modules[d.Name]; dup {
		a.errorf(d.Pos(), "module %q redefined", d.Name)
		return
	}
	mi := &ModuleInfo{Name: d.Name, Decl: d}
	seen := make(map[string]bool)
	for _, sp := range d.Params {
		if seen[sp.Name] {
			a.errorf(sp.DirPos, "duplicate signal parameter %q", sp.Name)
			continue
		}
		seen[sp.Name] = true
		si := &SignalInfo{Name: sp.Name, Dir: sp.Dir, Pure: sp.Pure}
		if !sp.Pure {
			si.ValueType = a.resolveType(sp.Type)
			if si.ValueType == ctypes.Void {
				a.errorf(sp.DirPos, "signal %q cannot carry void", sp.Name)
			}
		}
		mi.Params = append(mi.Params, si)
	}
	a.info.Modules[d.Name] = mi
}

func (a *analyzer) checkGlobalVar(d *ast.GlobalVarDecl) {
	// The paper notes Esterel's scoping cannot support mutable globals;
	// ECL therefore rejects them. (Constant tables would be the
	// exception; we keep the strict rule and diagnose.)
	a.errorf(d.Pos(), "global variable %q not supported (ECL restriction: no global/static variables)", d.Var.Name)
}

// ---------------------------------------------------------------------------
// Scopes

func (a *analyzer) pushScope() { a.scopes = append(a.scopes, make(map[string]Object)) }
func (a *analyzer) popScope()  { a.scopes = a.scopes[:len(a.scopes)-1] }

func (a *analyzer) declare(pos source.Pos, name string, obj Object) {
	top := a.scopes[len(a.scopes)-1]
	if _, dup := top[name]; dup {
		a.errorf(pos, "%q redeclared in this scope", name)
		return
	}
	top[name] = obj
}

func (a *analyzer) lookup(name string) Object {
	for i := len(a.scopes) - 1; i >= 0; i-- {
		if obj, ok := a.scopes[i][name]; ok {
			return obj
		}
	}
	if fi, ok := a.info.Funcs[name]; ok {
		return fi
	}
	if mi, ok := a.info.Modules[name]; ok {
		return &ModuleRef{Module: mi}
	}
	if c, ok := a.info.Consts[name]; ok {
		return c
	}
	return nil
}

// ---------------------------------------------------------------------------
// Function bodies

func (a *analyzer) checkFuncBody(d *ast.FuncDecl) {
	fi := a.info.Funcs[d.Name]
	if fi == nil || d.Body == nil {
		return
	}
	a.fn = fi
	a.mod = nil
	a.varSeq = 0
	a.pushScope()
	for _, p := range fi.Params {
		a.declare(d.Pos(), p.Name, p)
	}
	a.checkStmt(d.Body)
	if a.info.MayHalt[d.Body] {
		a.errorf(d.Pos(), "function %q contains reactive statements; only modules may react", d.Name)
	}
	a.popScope()
	a.fn = nil
}

// ---------------------------------------------------------------------------
// Module bodies

func (a *analyzer) checkModuleBody(d *ast.ModuleDecl) {
	mi := a.info.Modules[d.Name]
	if mi == nil {
		return
	}
	a.mod = mi
	a.varSeq = 0
	a.pushScope()
	for _, s := range mi.Params {
		a.declare(d.Pos(), s.Name, s)
	}
	a.checkStmt(d.Body)
	a.popScope()
	a.mod = nil
}

// ---------------------------------------------------------------------------
// Statements

func (a *analyzer) checkStmt(s ast.Stmt) {
	if s == nil {
		return
	}
	switch s := s.(type) {
	case *ast.Block:
		a.pushScope()
		may := false
		for _, st := range s.Stmts {
			a.checkStmt(st)
			may = may || a.info.MayHalt[st]
		}
		a.popScope()
		a.info.MayHalt[s] = may

	case *ast.VarDecl:
		t := a.resolveType(s.Type)
		if t == ctypes.Void {
			a.errorf(s.Pos(), "variable %q cannot have void type", s.Name)
			t = ctypes.Int
		}
		a.varSeq++
		vi := &VarInfo{Name: s.Name, Mangled: fmt.Sprintf("%s_v%d", s.Name, a.varSeq), Type: t, Decl: s}
		if s.Init != nil {
			it := a.checkExpr(s.Init)
			if !ctypes.AssignableTo(it, t) {
				a.errorf(s.Init.Pos(), "cannot initialize %s with %s", t, it)
			}
		}
		a.declare(s.Pos(), s.Name, vi)
		a.info.VarOf[s] = vi
		if a.mod != nil {
			a.mod.Vars = append(a.mod.Vars, vi)
		}

	case *ast.SignalDecl:
		if a.mod == nil {
			a.errorf(s.Pos(), "signal declaration outside a module")
			return
		}
		si := &SignalInfo{Name: s.Name, Pure: s.Pure, Local: true}
		if !s.Pure {
			si.ValueType = a.resolveType(s.Type)
		}
		a.declare(s.Pos(), s.Name, si)
		a.mod.Locals = append(a.mod.Locals, si)

	case *ast.ExprStmt:
		a.checkExpr(s.X)
		if call, ok := s.X.(*ast.Call); ok && a.info.IsInst[call] {
			// A module instantiation may halt (its body usually does).
			a.info.MayHalt[s] = true
		}

	case *ast.Empty:

	case *ast.If:
		t := a.checkExpr(s.Cond)
		a.requireScalar(s.Cond, t)
		a.checkStmt(s.Then)
		a.checkStmt(s.Else)
		a.info.MayHalt[s] = a.info.MayHalt[s.Then] || (s.Else != nil && a.info.MayHalt[s.Else])

	case *ast.While:
		t := a.checkExpr(s.Cond)
		a.requireScalar(s.Cond, t)
		a.loopDep++
		a.checkStmt(s.Body)
		a.loopDep--
		a.info.MayHalt[s] = a.info.MayHalt[s.Body]

	case *ast.DoWhile:
		a.loopDep++
		a.checkStmt(s.Body)
		a.loopDep--
		t := a.checkExpr(s.Cond)
		a.requireScalar(s.Cond, t)
		a.info.MayHalt[s] = a.info.MayHalt[s.Body]

	case *ast.For:
		a.pushScope()
		a.checkStmt(s.Init)
		if s.Cond != nil {
			t := a.checkExpr(s.Cond)
			a.requireScalar(s.Cond, t)
		}
		a.checkStmt(s.Post)
		a.loopDep++
		a.checkStmt(s.Body)
		a.loopDep--
		a.popScope()
		a.info.MayHalt[s] = a.info.MayHalt[s.Body]

	case *ast.Switch:
		t := a.checkExpr(s.Tag)
		if !ctypes.IsInteger(t) {
			a.errorf(s.Tag.Pos(), "switch tag must be an integer, have %s", t)
		}
		may := false
		a.loopDep++ // break is legal inside switch
		for _, c := range s.Cases {
			for _, v := range c.Values {
				if _, ok := a.constEval(v); !ok {
					a.errorf(v.Pos(), "case value must be constant")
				}
			}
			for _, st := range c.Body {
				a.checkStmt(st)
				may = may || a.info.MayHalt[st]
			}
		}
		a.loopDep--
		a.info.MayHalt[s] = may

	case *ast.Break, *ast.Continue:
		if a.loopDep == 0 {
			a.errorf(s.Pos(), "break/continue outside loop or switch")
		}

	case *ast.Return:
		if a.mod != nil {
			a.errorf(s.Pos(), "return is not allowed in a module body")
			return
		}
		if a.fn != nil {
			if s.X != nil {
				t := a.checkExpr(s.X)
				if !ctypes.AssignableTo(t, a.fn.Ret) {
					a.errorf(s.Pos(), "cannot return %s from function returning %s", t, a.fn.Ret)
				}
			} else if a.fn.Ret != ctypes.Void {
				a.errorf(s.Pos(), "missing return value in function returning %s", a.fn.Ret)
			}
		}

	case *ast.Emit:
		sig := a.signalFor(s.Signal, true)
		if sig == nil {
			return
		}
		if s.Value != nil {
			if sig.Pure {
				a.errorf(s.Pos(), "emit_v on pure signal %q", sig.Name)
			} else {
				vt := a.checkExpr(s.Value)
				if !ctypes.AssignableTo(vt, sig.ValueType) {
					a.errorf(s.Value.Pos(), "cannot emit %s on signal of type %s", vt, sig.ValueType)
				}
			}
		} else if !sig.Pure {
			a.errorf(s.Pos(), "emit on valued signal %q requires emit_v", sig.Name)
		}

	case *ast.Await:
		if s.Sig != nil {
			a.checkSigExpr(s.Sig)
		}
		a.info.MayHalt[s] = true

	case *ast.Halt:
		a.info.MayHalt[s] = true

	case *ast.Present:
		a.checkSigExpr(s.Sig)
		a.checkStmt(s.Then)
		a.checkStmt(s.Else)
		a.info.MayHalt[s] = a.info.MayHalt[s.Then] || (s.Else != nil && a.info.MayHalt[s.Else])

	case *ast.DoPreempt:
		a.checkSigExpr(s.Sig)
		a.checkStmt(s.Body)
		if s.Handler != nil {
			a.checkStmt(s.Handler)
		}
		may := a.info.MayHalt[s.Body] || (s.Handler != nil && a.info.MayHalt[s.Handler])
		a.info.MayHalt[s] = may
		if !a.info.MayHalt[s.Body] {
			a.diags.Warnf(s.Pos(), "%s body never halts: it cannot be preempted", s.Kind)
		}

	case *ast.Par:
		may := false
		for _, b := range s.Branches {
			a.pushScope()
			a.checkStmt(b)
			a.popScope()
			may = may || a.info.MayHalt[b]
		}
		a.info.MayHalt[s] = may

	default:
		a.errorf(s.Pos(), "unsupported statement %T", s)
	}
}

func (a *analyzer) requireScalar(e ast.Expr, t ctypes.Type) {
	if t != nil && !ctypes.IsScalar(t) {
		a.errorf(e.Pos(), "condition must be scalar, have %s", t)
	}
}

// signalFor resolves an identifier that must name a signal. When
// write is true the signal must be emittable from this module (an
// output parameter or a local signal).
func (a *analyzer) signalFor(id *ast.Ident, write bool) *SignalInfo {
	obj := a.lookup(id.Name)
	if obj == nil {
		a.errorf(id.Pos(), "undefined signal %q", id.Name)
		return nil
	}
	sig, ok := obj.(*SignalInfo)
	if !ok {
		a.errorf(id.Pos(), "%q is not a signal", id.Name)
		return nil
	}
	a.info.Uses[id] = sig
	if write && !sig.Local && sig.Dir == ast.In {
		a.errorf(id.Pos(), "cannot emit input signal %q", id.Name)
	}
	return sig
}

// checkSigExpr validates a reactive signal expression: only signal
// names combined with &, |, ~ and parentheses (the paper's rule).
func (a *analyzer) checkSigExpr(e ast.Expr) {
	switch e := e.(type) {
	case *ast.Ident:
		a.signalFor(e, false)
	case *ast.Paren:
		a.checkSigExpr(e.X)
	case *ast.Unary:
		if e.Op != token.TILDE && e.Op != token.NOT {
			a.errorf(e.Pos(), "operator %q not allowed in signal expression", e.Op)
		}
		a.checkSigExpr(e.X)
	case *ast.Binary:
		if e.Op != token.AND && e.Op != token.OR {
			a.errorf(e.Pos(), "operator %q not allowed in signal expression (use & and |)", e.Op)
		}
		a.checkSigExpr(e.X)
		a.checkSigExpr(e.Y)
	case nil:
		// empty await()
	default:
		a.errorf(e.Pos(), "signal expression may contain only signal names, &, |, ~")
	}
}

// ---------------------------------------------------------------------------
// Expressions

func (a *analyzer) checkExpr(e ast.Expr) ctypes.Type {
	t := a.checkExprUncached(e)
	if t == nil {
		t = ctypes.Int
	}
	a.info.ExprType[e] = t
	return t
}

func (a *analyzer) checkExprUncached(e ast.Expr) ctypes.Type {
	switch e := e.(type) {
	case *ast.Ident:
		obj := a.lookup(e.Name)
		if obj == nil {
			a.errorf(e.Pos(), "undefined name %q", e.Name)
			return ctypes.Int
		}
		a.info.Uses[e] = obj
		switch obj := obj.(type) {
		case *VarInfo:
			return obj.Type
		case *SignalInfo:
			// Value context: the signal's carried value.
			if obj.Pure {
				a.errorf(e.Pos(), "pure signal %q has no value (test presence with present/await)", e.Name)
				return ctypes.Int
			}
			return obj.ValueType
		case *ConstInfo:
			return ctypes.Int
		case *FuncInfo:
			a.errorf(e.Pos(), "function %q used as a value", e.Name)
			return ctypes.Int
		case *ModuleRef:
			a.errorf(e.Pos(), "module %q used as a value", e.Name)
			return ctypes.Int
		}

	case *ast.BasicLit:
		switch e.Kind {
		case token.INT:
			return ctypes.Int
		case token.FLOAT:
			return ctypes.Double
		case token.CHAR:
			return ctypes.Char
		case token.STRING:
			return &ctypes.PointerType{Elem: ctypes.Char}
		}

	case *ast.Paren:
		return a.checkExpr(e.X)

	case *ast.Unary:
		xt := a.checkExpr(e.X)
		switch e.Op {
		case token.SUB, token.ADD:
			if !ctypes.IsArithmetic(xt) {
				a.errorf(e.Pos(), "operator %q requires arithmetic operand, have %s", e.Op, xt)
			}
			return ctypes.Promote(xt)
		case token.NOT:
			a.requireScalar(e.X, xt)
			return ctypes.Int
		case token.TILDE:
			// ECL reading: ~ on a bool-typed operand (commonly a valued
			// bool signal, as in "if (~crc_ok)") is logical negation;
			// on other integers it is C bitwise complement.
			if xt == ctypes.Bool {
				return ctypes.Bool
			}
			if !ctypes.IsInteger(xt) {
				a.errorf(e.Pos(), "operator ~ requires integer operand, have %s", xt)
			}
			return ctypes.Promote(xt)
		case token.INC, token.DEC:
			a.requireLvalue(e.X)
			return xt
		case token.AND:
			return &ctypes.PointerType{Elem: xt}
		case token.MUL:
			if pt, ok := xt.(*ctypes.PointerType); ok {
				return pt.Elem
			}
			a.errorf(e.Pos(), "cannot dereference non-pointer %s", xt)
			return ctypes.Int
		}

	case *ast.Postfix:
		xt := a.checkExpr(e.X)
		a.requireLvalue(e.X)
		if !ctypes.IsArithmetic(xt) {
			a.errorf(e.Pos(), "operator %q requires arithmetic operand, have %s", e.Op, xt)
		}
		return xt

	case *ast.Binary:
		if e.Op == token.COMMA {
			a.checkExpr(e.X)
			return a.checkExpr(e.Y)
		}
		xt := a.checkExpr(e.X)
		yt := a.checkExpr(e.Y)
		switch e.Op {
		case token.LAND, token.LOR:
			a.requireScalar(e.X, xt)
			a.requireScalar(e.Y, yt)
			return ctypes.Int
		case token.EQL, token.NEQ, token.LSS, token.GTR, token.LEQ, token.GEQ:
			a.checkComparable(e, xt, yt)
			return ctypes.Int
		case token.SHL, token.SHR, token.AND, token.OR, token.XOR, token.REM:
			if !ctypes.IsInteger(xt) || !ctypes.IsInteger(yt) {
				a.errorf(e.Pos(), "operator %q requires integer operands, have %s and %s", e.Op, xt, yt)
			}
			return ctypes.UsualArithmetic(xt, yt)
		default:
			if !ctypes.IsArithmetic(xt) || !ctypes.IsArithmetic(yt) {
				a.errorf(e.Pos(), "operator %q requires arithmetic operands, have %s and %s", e.Op, xt, yt)
				return ctypes.Int
			}
			return ctypes.UsualArithmetic(xt, yt)
		}

	case *ast.Assign:
		lt := a.checkExpr(e.LHS)
		a.requireLvalue(e.LHS)
		rt := a.checkExpr(e.RHS)
		if e.Op == token.ASSIGN {
			if !ctypes.AssignableTo(rt, lt) {
				a.errorf(e.Pos(), "cannot assign %s to %s", rt, lt)
			}
		} else {
			if !ctypes.IsArithmetic(lt) || !ctypes.IsArithmetic(rt) {
				a.errorf(e.Pos(), "compound assignment requires arithmetic operands, have %s and %s", lt, rt)
			}
		}
		return lt

	case *ast.Cond:
		ct := a.checkExpr(e.CondX)
		a.requireScalar(e.CondX, ct)
		tt := a.checkExpr(e.Then)
		et := a.checkExpr(e.Else)
		if ctypes.IsArithmetic(tt) && ctypes.IsArithmetic(et) {
			return ctypes.UsualArithmetic(tt, et)
		}
		if !ctypes.Identical(tt, et) {
			a.errorf(e.Pos(), "mismatched branches in conditional: %s vs %s", tt, et)
		}
		return tt

	case *ast.Call:
		return a.checkCall(e)

	case *ast.Index:
		xt := a.checkExpr(e.X)
		st := a.checkExpr(e.Sub)
		if !ctypes.IsInteger(st) {
			a.errorf(e.Sub.Pos(), "array index must be an integer, have %s", st)
		}
		switch xt := xt.(type) {
		case *ctypes.ArrayType:
			return xt.Elem
		case *ctypes.PointerType:
			return xt.Elem
		}
		a.errorf(e.Pos(), "cannot index %s", xt)
		return ctypes.Int

	case *ast.Member:
		xt := a.checkExpr(e.X)
		if e.Arrow {
			pt, ok := xt.(*ctypes.PointerType)
			if !ok {
				a.errorf(e.Pos(), "-> on non-pointer %s", xt)
				return ctypes.Int
			}
			xt = pt.Elem
		}
		st, ok := xt.(*ctypes.StructType)
		if !ok {
			a.errorf(e.Pos(), "field access on non-struct %s", xt)
			return ctypes.Int
		}
		f := st.Field(e.Name)
		if f == nil {
			a.errorf(e.Pos(), "no field %q in %s", e.Name, st)
			return ctypes.Int
		}
		return f.Type

	case *ast.Cast:
		tt := a.resolveType(e.Type)
		xt := a.checkExpr(e.X)
		if ctypes.IsArithmetic(tt) && ctypes.IsArithmetic(xt) {
			return tt
		}
		// ECL extension used by the paper's Figure 2: casting a byte
		// array to an integer reinterprets its leading bytes
		// (big-endian, matching the MIPS target).
		if at, ok := xt.(*ctypes.ArrayType); ok && ctypes.IsInteger(tt) && ctypes.IsInteger(at.Elem) {
			return tt
		}
		if ctypes.Identical(tt, xt) {
			return tt
		}
		a.errorf(e.Pos(), "invalid cast from %s to %s", xt, tt)
		return tt

	case *ast.SizeofExpr:
		if e.Type != nil {
			a.resolveType(e.Type)
		} else {
			a.checkExpr(e.X)
		}
		return ctypes.UInt
	}
	a.errorf(e.Pos(), "unsupported expression %T", e)
	return ctypes.Int
}

func (a *analyzer) checkComparable(e *ast.Binary, xt, yt ctypes.Type) {
	if ctypes.IsArithmetic(xt) && ctypes.IsArithmetic(yt) {
		return
	}
	// Allow the Figure 2 idiom: integer compared against a byte array
	// (the array reinterpretation the cast rule also supports).
	if _, ok := xt.(*ctypes.ArrayType); ok && ctypes.IsInteger(yt) {
		return
	}
	if _, ok := yt.(*ctypes.ArrayType); ok && ctypes.IsInteger(xt) {
		return
	}
	a.errorf(e.Pos(), "cannot compare %s with %s", xt, yt)
}

func (a *analyzer) requireLvalue(e ast.Expr) {
	switch e := e.(type) {
	case *ast.Ident:
		obj := a.lookup(e.Name)
		if _, ok := obj.(*VarInfo); !ok {
			if _, isSig := obj.(*SignalInfo); isSig {
				a.errorf(e.Pos(), "cannot assign to signal %q (signals are written with emit)", e.Name)
			} else {
				a.errorf(e.Pos(), "cannot assign to %q", e.Name)
			}
		}
	case *ast.Index:
		a.requireLvalue(e.X)
	case *ast.Member:
		if !e.Arrow {
			a.requireLvalue(e.X)
		}
	case *ast.Paren:
		a.requireLvalue(e.X)
	case *ast.Unary:
		if e.Op != token.MUL {
			a.errorf(e.Pos(), "expression is not assignable")
		}
	default:
		a.errorf(e.Pos(), "expression is not assignable")
	}
}

// checkCall handles both C function calls and module instantiations.
func (a *analyzer) checkCall(e *ast.Call) ctypes.Type {
	obj := a.lookup(e.Fun.Name)
	switch obj := obj.(type) {
	case *FuncInfo:
		a.info.Uses[e.Fun] = obj
		if len(e.Args) != len(obj.Params) {
			a.errorf(e.Pos(), "function %q expects %d arguments, got %d", obj.Name, len(obj.Params), len(e.Args))
		}
		for i, arg := range e.Args {
			at := a.checkExpr(arg)
			if i < len(obj.Params) && !ctypes.AssignableTo(at, obj.Params[i].Type) {
				a.errorf(arg.Pos(), "argument %d of %q: cannot pass %s as %s", i+1, obj.Name, at, obj.Params[i].Type)
			}
		}
		return obj.Ret

	case *ModuleRef:
		a.info.Uses[e.Fun] = obj
		a.info.IsInst[e] = true
		if a.mod == nil {
			a.errorf(e.Pos(), "module instantiation outside a module body")
			return ctypes.Void
		}
		callee := obj.Module
		a.mod.Instantiates = appendUnique(a.mod.Instantiates, callee.Name)
		if len(e.Args) != len(callee.Params) {
			a.errorf(e.Pos(), "module %q expects %d signals, got %d", callee.Name, len(callee.Params), len(e.Args))
			return ctypes.Void
		}
		for i, arg := range e.Args {
			id, ok := arg.(*ast.Ident)
			if !ok {
				a.errorf(arg.Pos(), "module arguments must be signal names")
				continue
			}
			sig := a.signalFor(id, false)
			if sig == nil {
				continue
			}
			want := callee.Params[i]
			if want.Pure != sig.Pure {
				a.errorf(arg.Pos(), "signal %q is %s but parameter %q of %q is %s",
					sig.Name, pureName(sig.Pure), want.Name, callee.Name, pureName(want.Pure))
				continue
			}
			if !want.Pure && !ctypes.Identical(want.ValueType, sig.ValueType) {
				a.errorf(arg.Pos(), "signal %q carries %s but parameter %q of %q carries %s",
					sig.Name, sig.ValueType, want.Name, callee.Name, want.ValueType)
			}
			if want.Dir == ast.Out && !sig.Local && sig.Dir == ast.In {
				a.errorf(arg.Pos(), "cannot connect output parameter %q of %q to input signal %q",
					want.Name, callee.Name, sig.Name)
			}
		}
		return ctypes.Void
	case nil:
		a.errorf(e.Pos(), "undefined function or module %q", e.Fun.Name)
	default:
		a.errorf(e.Pos(), "%q is not callable", e.Fun.Name)
	}
	for _, arg := range e.Args {
		a.checkExpr(arg)
	}
	return ctypes.Int
}

func pureName(pure bool) string {
	if pure {
		return "pure"
	}
	return "valued"
}

func appendUnique(xs []string, x string) []string {
	for _, v := range xs {
		if v == x {
			return xs
		}
	}
	return append(xs, x)
}

// checkInstantiationGraph rejects recursive module instantiation.
func (a *analyzer) checkInstantiationGraph() {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make(map[string]int)
	var visit func(name string) bool
	visit = func(name string) bool {
		switch color[name] {
		case grey:
			return false
		case black:
			return true
		}
		color[name] = grey
		mi := a.info.Modules[name]
		if mi != nil {
			for _, callee := range mi.Instantiates {
				if !visit(callee) {
					a.errorf(mi.Decl.Pos(), "recursive module instantiation through %q", callee)
				}
			}
		}
		color[name] = black
		return true
	}
	for name := range a.info.Modules {
		visit(name)
	}
}
