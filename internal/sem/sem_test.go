package sem

import (
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/ctypes"
	"repro/internal/paperex"
	"repro/internal/parser"
	"repro/internal/pp"
	"repro/internal/source"
)

func analyze(t *testing.T, src string) (*Info, *source.DiagList) {
	t.Helper()
	var diags source.DiagList
	expanded := pp.New(&diags, nil).Expand(source.NewFile("test.ecl", src))
	f := parser.ParseFile(expanded, &diags)
	if diags.HasErrors() {
		t.Fatalf("parse errors:\n%s", diags.String())
	}
	info := Analyze(f, &diags)
	return info, &diags
}

func analyzeOK(t *testing.T, src string) *Info {
	t.Helper()
	info, diags := analyze(t, src)
	if diags.HasErrors() {
		t.Fatalf("unexpected sem errors:\n%s", diags.String())
	}
	return info
}

func analyzeErr(t *testing.T, src, wantSubstr string) {
	t.Helper()
	_, diags := analyze(t, src)
	if !diags.HasErrors() {
		t.Fatalf("expected error containing %q, got none", wantSubstr)
	}
	if !strings.Contains(diags.String(), wantSubstr) {
		t.Fatalf("expected error containing %q, got:\n%s", wantSubstr, diags.String())
	}
}

func TestStackAnalyzes(t *testing.T) {
	info := analyzeOK(t, paperex.Stack)
	for _, name := range []string{"assemble", "checkcrc", "prochdr", "toplevel"} {
		if info.Modules[name] == nil {
			t.Errorf("module %q missing", name)
		}
	}
}

func TestBufferAnalyzes(t *testing.T) {
	analyzeOK(t, paperex.Buffer)
}

func TestABROAnalyzes(t *testing.T) {
	analyzeOK(t, paperex.ABRO)
}

func TestRunnerAnalyzes(t *testing.T) {
	analyzeOK(t, paperex.RunnerStop)
}

func TestPacketLayout(t *testing.T) {
	info := analyzeOK(t, paperex.Stack)
	pt, ok := info.Types["packet_t"].(*ctypes.StructType)
	if !ok {
		t.Fatalf("packet_t is %T", info.Types["packet_t"])
	}
	if !pt.Union {
		t.Error("packet_t should be a union")
	}
	if pt.Size() != paperex.PktSize {
		t.Errorf("sizeof(packet_t) = %d, want %d", pt.Size(), paperex.PktSize)
	}
	v2, ok := info.Types["packet_view_2_t"].(*ctypes.StructType)
	if !ok {
		t.Fatal("packet_view_2_t missing")
	}
	crc := v2.Field("crc")
	if crc == nil || crc.Offset != paperex.HdrSize+paperex.DataSize {
		t.Errorf("crc field offset = %+v, want %d", crc, paperex.HdrSize+paperex.DataSize)
	}
}

func TestStructPadding(t *testing.T) {
	info := analyzeOK(t, `
        typedef struct { char c; int i; char d; } padded_t;
        module m(input pure a, output pure o) { await(a); emit(o); }
    `)
	st := info.Types["padded_t"].(*ctypes.StructType)
	if st.Size() != 12 {
		t.Errorf("size = %d, want 12 (1+3pad+4+1+3pad)", st.Size())
	}
	if f := st.Field("i"); f.Offset != 4 {
		t.Errorf("offset of i = %d, want 4", f.Offset)
	}
}

func TestMayHaltClassification(t *testing.T) {
	info := analyzeOK(t, paperex.Stack)
	m := info.Modules["checkcrc"]
	// Find the CRC for loop: it must be a data loop (no halting inside).
	var crcFor *ast.For
	var walk func(s ast.Stmt)
	walk = func(s ast.Stmt) {
		switch s := s.(type) {
		case *ast.Block:
			for _, st := range s.Stmts {
				walk(st)
			}
		case *ast.While:
			walk(s.Body)
		case *ast.For:
			crcFor = s
			walk(s.Body)
		case *ast.DoPreempt:
			walk(s.Body)
		}
	}
	walk(m.Decl.Body)
	if crcFor == nil {
		t.Fatal("no for loop in checkcrc")
	}
	if info.MayHalt[crcFor] {
		t.Error("checkcrc's CRC loop must be a data loop (MayHalt=false)")
	}

	// assemble's byte loop awaits: it is reactive.
	ma := info.Modules["assemble"]
	crcFor = nil
	walk(ma.Decl.Body)
	if crcFor == nil {
		t.Fatal("no for loop in assemble")
	}
	if !info.MayHalt[crcFor] {
		t.Error("assemble's byte loop must be reactive (MayHalt=true)")
	}
}

func TestSignalValueOverloading(t *testing.T) {
	// in_byte used as a value after await: must type as byte (uchar).
	info := analyzeOK(t, paperex.Header+paperex.Assemble)
	found := false
	for e, ty := range info.ExprType {
		if id, ok := e.(*ast.Ident); ok && id.Name == "in_byte" {
			if !ctypes.Identical(ty, ctypes.UChar) {
				t.Errorf("value type of in_byte = %s, want unsigned char", ty)
			}
			found = true
		}
	}
	if !found {
		t.Error("no value use of in_byte recorded")
	}
}

func TestErrors(t *testing.T) {
	mod := func(body string) string {
		return paperex.Header + "module m(input pure a, input byte vb, output pure o, output bool vo) {\n" + body + "\n}"
	}
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"emit input", mod("emit(a);"), "cannot emit input"},
		{"emit_v pure", mod("emit_v(o, 1);"), "emit_v on pure"},
		{"emit valued", mod("emit(vo);"), "requires emit_v"},
		{"pure value use", mod("int x; x = a; emit(o);"), "has no value"},
		{"assign to signal", mod("vb = 3; emit(o);"), "cannot assign to signal"},
		{"bad sigexpr op", mod("await (a + vb); emit(o);"), "not allowed in signal expression"},
		{"sigexpr non-signal", mod("int x; await (x); emit(o);"), "is not a signal"},
		{"undefined signal", mod("emit(nosuch);"), "undefined signal"},
		{"return in module", mod("return; emit(o);"), "return is not allowed in a module"},
		{"break outside loop", mod("break; emit(o);"), "outside loop"},
		{"global var", "int g;\nmodule m(input pure a, output pure o){await(a);emit(o);}", "global variable"},
		{"void signal param", "module m(input void v, output pure o){emit(o);}", "cannot carry void"},
		{"redeclared", mod("int x; int x; emit(o);"), "redeclared"},
		{"bad field", mod("packet_t p; int x; x = p.nosuch; emit(o);"), "no field"},
		{"index non-array", mod("int x; x = x[0]; emit(o);"), "cannot index"},
		{"struct condition", mod("packet_t p; if (p) emit(o);"), "must be scalar"},
		{"suspend-no-halt-warn-ok", mod("do { emit(o); } suspend (a); await(a);"), ""},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if c.want == "" {
				analyzeOK(t, c.src)
				return
			}
			analyzeErr(t, c.src, c.want)
		})
	}
}

func TestFunctionChecks(t *testing.T) {
	analyzeErr(t, `
        int f(int x) { emit(x); return x; }
        module m(input pure a, output pure o) { await(a); emit(o); }
    `, "is not a signal")

	analyzeErr(t, `
        int f(int x) { await(); return x; }
        module m(input pure a, output pure o) { await(a); emit(o); }
    `, "only modules may react")

	info := analyzeOK(t, `
        int add2(int a, int b) { return a + b; }
        module m(input pure a, output pure o) {
            int x;
            x = add2(1, 2);
            while (1) { await(a); if (x == 3) emit(o); }
        }
    `)
	if info.Funcs["add2"] == nil {
		t.Error("add2 missing")
	}
}

func TestFunctionArity(t *testing.T) {
	analyzeErr(t, `
        int add2(int a, int b) { return a + b; }
        module m(input pure a, output pure o) {
            int x; x = add2(1); await(a); emit(o);
        }
    `, "expects 2 arguments")
}

func TestModuleInstantiationChecks(t *testing.T) {
	analyzeErr(t, `
        module child(input pure i, output pure done) { await(i); emit(done); }
        module top(input pure go, output pure done) {
            child(go);
        }
    `, "expects 2 signals")

	analyzeErr(t, `
        module child(input pure i, output pure done) { await(i); emit(done); }
        module top(input pure go, output pure done) {
            child(go, go);
        }
    `, "cannot connect output parameter")

	analyzeErr(t, paperex.Header+`
        module child(input byte b, output pure done) { await(b); emit(done); }
        module top(input pure go, output pure done) {
            child(go, done);
        }
    `, "is pure but parameter")

	analyzeOK(t, `
        module child(input pure i, output pure done) { await(i); emit(done); }
        module top(input pure go, output pure done) {
            child(go, done);
        }
    `)
}

func TestRecursiveInstantiation(t *testing.T) {
	analyzeErr(t, `
        module a(input pure i, output pure o) { b(i, o); }
        module b(input pure i, output pure o) { a(i, o); }
    `, "recursive module instantiation")
}

func TestConstEval(t *testing.T) {
	info := analyzeOK(t, paperex.Stack)
	cases := []struct {
		src  string
		want int64
	}{
		{"1+2*3", 7},
		{"(1+2)*3", 9},
		{"1<<4", 16},
		{"0x10", 16},
		{"010", 8},
		{"'A'", 65},
		{"~0", -1},
		{"!3", 0},
		{"-5", -5},
		{"10/3", 3},
		{"10%3", 1},
		{"1<2", 1},
		{"4>=5", 0},
		{"1&&0", 0},
		{"1||0", 1},
	}
	for _, c := range cases {
		var diags source.DiagList
		f := parser.ParseFile(source.NewFile("e.ecl", "module m(input pure a, output pure o){int x; x = "+c.src+"; emit(o);}"), &diags)
		if diags.HasErrors() {
			t.Fatalf("%q: %s", c.src, diags.String())
		}
		var expr ast.Expr
		m := f.Module("m")
		for _, s := range m.Body.Stmts {
			if es, ok := s.(*ast.ExprStmt); ok {
				if as, ok := es.X.(*ast.Assign); ok {
					expr = as.RHS
				}
			}
		}
		got, ok := info.ConstEval(expr)
		if !ok {
			t.Errorf("%q: not constant", c.src)
			continue
		}
		if got != c.want {
			t.Errorf("%q = %d, want %d", c.src, got, c.want)
		}
	}
}

func TestTildeOnBool(t *testing.T) {
	info := analyzeOK(t, `
        module m(input bool v, output pure o) {
            while (1) {
                await (v);
                if (~v) emit(o);
            }
        }
    `)
	// find the unary ~ expression and check it types as bool
	found := false
	for e, ty := range info.ExprType {
		if u, ok := e.(*ast.Unary); ok {
			_ = u
			if ty == ctypes.Bool {
				found = true
			}
		}
	}
	if !found {
		t.Error("~v on bool should type as bool (logical negation)")
	}
}

func TestEnumDecl(t *testing.T) {
	info := analyzeOK(t, `
        typedef enum { IDLE, BUSY = 5, DONE } state_t;
        module m(input pure a, output pure o) {
            state_t s;
            s = IDLE;
            while (1) { await(a); if (s == DONE) emit(o); s = BUSY; }
        }
    `)
	if c := info.Consts["BUSY"]; c == nil || c.Value != 5 {
		t.Errorf("BUSY = %+v, want 5", c)
	}
	if c := info.Consts["DONE"]; c == nil || c.Value != 6 {
		t.Errorf("DONE = %+v, want 6", c)
	}
}

func TestArrayCastIdiom(t *testing.T) {
	// Figure 2's "crc == (int) inpkt.cooked.crc" idiom must type-check.
	analyzeOK(t, paperex.Header+paperex.CheckCRC)
}

func TestVarMangledUnique(t *testing.T) {
	info := analyzeOK(t, `
        module m(input pure a, output pure o) {
            int x;
            { int x; x = 1; }
            x = 2;
            await(a); emit(o);
        }
    `)
	m := info.Modules["m"]
	if len(m.Vars) != 2 {
		t.Fatalf("got %d vars, want 2", len(m.Vars))
	}
	if m.Vars[0].Mangled == m.Vars[1].Mangled {
		t.Error("mangled names must be unique")
	}
}

func TestInstantiatesRecorded(t *testing.T) {
	info := analyzeOK(t, paperex.Stack)
	top := info.Modules["toplevel"]
	if len(top.Instantiates) != 3 {
		t.Errorf("toplevel instantiates %v, want 3 modules", top.Instantiates)
	}
}
