package table

import (
	"fmt"
	"math"

	"repro/internal/cval"
	"repro/internal/token"
)

// The VM mirrors internal/dataexec operation for operation. Every
// comment of the form "mirrors X" names the dataexec/cval behaviour
// the instruction reproduces; divergence there is a conformance bug.

// maxCallDepth bounds the C call stack (mirrors dataexec's 64-frame
// limit).
const maxCallDepth = 64

// maxSteps bounds loop iterations per reaction (dataexec counts every
// statement/expression per atomic action; the table VM ticks once per
// loop back-edge per reaction, which bounds the same runaway loops).
const maxSteps = 10_000_000

// op is a bytecode opcode.
type op uint8

const (
	opNop op = iota

	// Value refs.
	opPushG   // a=arena off, b=type: push global view
	opPushL   // a=frame-relative off, b=type: push frame view
	opPushImm // b=type, imm=payload: push immediate

	// Aggregate navigation.
	opIndex // pop index, pop array view, push element view
	opField // a=name index: pop struct view, push field view

	// Arithmetic.
	opUnary   // a=unary sub-op: pop x, push result
	opIncDec  // a=delta (+1/-1), b=1 for postfix: pop lvalue view, push value
	opBinary  // a=token.Kind: pop y, pop x, push x op y
	opConvert // a=type: pop x, push converted

	// Assignment.
	opAssign   // pop src, pop dst view, store, push dst view
	opAssignOp // a=token.Kind: pop src, pop dst view, dst = dst op src, push dst view
	opDrop     // pop

	// Control flow.
	opJump      // a=target
	opJumpFalse // a=target: pop, jump when false
	opJumpTrue  // a=target: pop, jump when true
	opTick      // loop back-edge bookkeeping (runaway-loop bound)

	// Switch dispatch.
	opStoreTag // a=tag register: pop, store integer tag
	opCaseEq   // a=tag register, b=target, imm=case value: conditional jump

	// C functions.
	opChkDepth // a=function index: fail if the call depth is exhausted
	opCall     // a=function index, b=arg count
	opRet      // a=1 when a return value is on the stack
	opCallData // a=function index: data-function subroutine (no frame)
	opRetData  // return from data-function subroutine
	opZeroL    // a=frame-relative off, b=size: zero frame storage (VarDecl)

	// Reactive layer.
	opBranchIn // a=internal signal index, b=else target
	opEmit     // a=emit meta index, b=1 when a value is on the stack
	opEnd      // a=next state index (-1 none), b=1 when terminal
	opError    // a=message index: fail the reaction
)

var opNames = [...]string{
	opNop: "nop", opPushG: "pushg", opPushL: "pushl", opPushImm: "pushi",
	opIndex: "index", opField: "field", opUnary: "unary", opIncDec: "incdec",
	opBinary: "binary", opConvert: "conv", opAssign: "assign",
	opAssignOp: "assignop", opDrop: "drop", opJump: "jump",
	opJumpFalse: "jfalse", opJumpTrue: "jtrue", opTick: "tick",
	opStoreTag: "storetag", opCaseEq: "caseeq", opChkDepth: "chkdepth",
	opCall: "call", opRet: "ret",
	opCallData: "calldata", opRetData: "retdata", opZeroL: "zerol",
	opBranchIn: "brin", opEmit: "emit", opEnd: "end", opError: "error",
}

// Unary sub-ops for opUnary.
const (
	uNeg int32 = iota
	uNot
	uTilde
)

// instr is one fixed-size instruction.
type instr struct {
	op   op
	a, b int32
	imm  uint64
}

// ref is a value reference: a typed view into the arena (off >= 0) or
// an immediate (off < 0) whose payload holds the normalized semantic
// bits — integers sign/zero-extended per type, floats as Float64bits.
type ref struct {
	typ  int32
	off  int32
	bits uint64
}

// ---------------------------------------------------------------------------
// Scalar access helpers (mirror cval.Value accessors)

// readInt mirrors cval.Value.Int: big-endian byte read with sign
// extension for signed integer types only. Immediates are already
// normalized, so the payload is the answer.
func (m *Machine) readInt(r ref) int64 {
	if r.off < 0 {
		return int64(r.bits)
	}
	t := &m.p.types[r.typ]
	var u uint64
	for _, b := range m.arena[r.off : r.off+t.size] {
		u = u<<8 | uint64(b)
	}
	if t.size == 0 {
		return 0
	}
	if t.kind == kInt {
		shift := uint(64 - 8*t.size)
		return int64(u<<shift) >> shift
	}
	return int64(u)
}

// readFloat decodes a kFloat ref.
func (m *Machine) readFloat(r ref) float64 {
	if r.off < 0 {
		return math.Float64frombits(r.bits)
	}
	t := &m.p.types[r.typ]
	var u uint64
	for _, b := range m.arena[r.off : r.off+t.size] {
		u = u<<8 | uint64(b)
	}
	if t.size == 4 {
		return float64(math.Float32frombits(uint32(u)))
	}
	return math.Float64frombits(u)
}

// toFloat mirrors cval.Value.Float: floats decode, everything else
// goes through the integer read.
func (m *Machine) toFloat(r ref) float64 {
	if m.p.types[r.typ].kind == kFloat {
		return m.readFloat(r)
	}
	return float64(m.readInt(r))
}

// truth mirrors cval.Value.Bool: any byte set. Normalized immediates
// preserve the equivalence (payload non-zero iff stored bytes would
// be).
func (m *Machine) truth(r ref) bool {
	if r.off < 0 {
		return r.bits != 0
	}
	t := &m.p.types[r.typ]
	for _, b := range m.arena[r.off : r.off+t.size] {
		if b != 0 {
			return true
		}
	}
	return false
}

// immInt builds a normalized integer immediate of type ti: the value
// truncated to the type's width, then read back with the type's
// signedness (mirrors cval.FromInt followed by Int).
func (p *Program) immInt(ti int32, v int64) ref {
	t := &p.types[ti]
	u := uint64(v)
	if t.size < 8 {
		u &= 1<<(8*uint(t.size)) - 1
		if t.kind == kInt {
			shift := uint(64 - 8*t.size)
			u = uint64(int64(u<<shift) >> shift)
		}
	}
	return ref{typ: ti, off: -1, bits: u}
}

// immFloat builds a float immediate, rounding through float32 for
// 4-byte floats (mirrors cval.FromFloat storage).
func (p *Program) immFloat(ti int32, f float64) ref {
	if p.types[ti].size == 4 {
		f = float64(float32(f))
	}
	return ref{typ: ti, off: -1, bits: math.Float64bits(f)}
}

// immFromView materializes a scalar view as an immediate of the same
// type (the value survives frame teardown; mirrors cval.Value.Clone
// for scalars).
func (m *Machine) immFromView(r ref) ref {
	t := &m.p.types[r.typ]
	switch t.kind {
	case kFloat:
		return ref{typ: r.typ, off: -1, bits: math.Float64bits(m.readFloat(r))}
	case kVoid:
		return ref{typ: r.typ, off: -1}
	default:
		return ref{typ: r.typ, off: -1, bits: uint64(m.readInt(r))}
	}
}

// writeInt mirrors cval.Value.SetInt: truncate, big-endian.
func (m *Machine) writeInt(t *typ, off int32, v int64) {
	u := uint64(v)
	for i := off + t.size - 1; i >= off; i-- {
		m.arena[i] = byte(u)
		u >>= 8
	}
}

// writeFloat mirrors cval.Value.SetFloat.
func (m *Machine) writeFloat(t *typ, off int32, f float64) {
	var u uint64
	if t.size == 4 {
		u = uint64(math.Float32bits(float32(f)))
	} else {
		u = math.Float64bits(f)
	}
	for i := off + t.size - 1; i >= off; i-- {
		m.arena[i] = byte(u)
		u >>= 8
	}
}

// writeImm stores a normalized immediate of type t at off.
func (m *Machine) writeImm(t *typ, off int32, bits uint64) {
	if t.kind == kFloat {
		m.writeFloat(t, off, math.Float64frombits(bits))
		return
	}
	u := bits
	for i := off + t.size - 1; i >= off; i-- {
		m.arena[i] = byte(u)
		u >>= 8
	}
}

// ---------------------------------------------------------------------------
// Conversion (mirrors cval.Convert / cval.Value.Assign)

func arithmeticKind(k vkind) bool {
	switch k {
	case kBool, kInt, kUint, kFloat:
		return true
	}
	return false
}

// convertVal mirrors cval.Convert. Identical types pass through;
// arithmetic conversions produce immediates; an integer-array source
// reinterprets its leading bytes (the Figure 2 idiom).
func (m *Machine) convertVal(ti int32, src ref) (ref, error) {
	if src.typ == ti {
		return src, nil
	}
	p := m.p
	t := &p.types[ti]
	st := &p.types[src.typ]
	switch {
	case t.kind == kFloat && arithmeticKind(st.kind):
		return p.immFloat(ti, m.toFloat(src)), nil
	case intKind(t.kind) && st.kind == kFloat:
		return p.immInt(ti, int64(m.readFloat(src))), nil
	case intKind(t.kind) && intKind(st.kind):
		if t.kind == kBool {
			var b uint64
			if m.truth(src) {
				b = 1
			}
			return ref{typ: ti, off: -1, bits: b}, nil
		}
		return p.immInt(ti, m.readInt(src)), nil
	}
	if st.kind == kArray && intKind(t.kind) && st.elem >= 0 && intKind(p.types[st.elem].kind) {
		// Leading bytes, right-aligned in the target (big-endian read).
		if src.off < 0 {
			return ref{}, fmt.Errorf("internal: immediate array value")
		}
		n := t.size
		if st.size < n {
			n = st.size
		}
		var u uint64
		for _, b := range m.arena[src.off : src.off+n] {
			u = u<<8 | uint64(b)
		}
		if t.kind == kInt && t.size < 8 {
			shift := uint(64 - 8*t.size)
			u = uint64(int64(u<<shift) >> shift)
		}
		return ref{typ: ti, off: -1, bits: u}, nil
	}
	return ref{}, fmt.Errorf("cannot convert %s to %s", st.ct, t.ct)
}

// intKind reports integer-like kinds (mirrors ctypes.IsInteger: bool,
// char, int, enum).
func intKind(k vkind) bool { return k == kBool || k == kInt || k == kUint }

// convertStore mirrors cval.Value.Assign: identical types copy bytes,
// arithmetic pairs convert, everything else errors.
func (m *Machine) convertStore(ti, off int32, src ref) error {
	p := m.p
	t := &p.types[ti]
	if src.typ == ti {
		if src.off < 0 {
			m.writeImm(t, off, src.bits)
		} else {
			copy(m.arena[off:off+t.size], m.arena[src.off:src.off+t.size])
		}
		return nil
	}
	st := &p.types[src.typ]
	if arithmeticKind(t.kind) && arithmeticKind(st.kind) {
		v, err := m.convertVal(ti, src)
		if err != nil {
			return err
		}
		m.writeImm(t, off, v.bits)
		return nil
	}
	return fmt.Errorf("cannot assign %s to %s", st.ct, t.ct)
}

// ---------------------------------------------------------------------------
// Binary arithmetic (mirrors dataexec.arith)

// promoteIdx mirrors ctypes.Promote over interned type indices (enums
// are interned as int up front).
func (p *Program) promoteIdx(ti int32) int32 {
	t := &p.types[ti]
	switch t.kind {
	case kBool:
		return p.tInt
	case kInt, kUint:
		if t.size < 4 {
			return p.tInt
		}
	}
	return ti
}

// promoteForIdx mirrors dataexec.promoteFor.
func (p *Program) promoteForIdx(ti int32) int32 {
	if arithmeticKind(p.types[ti].kind) {
		return p.promoteIdx(ti)
	}
	return p.tInt
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// execBinary mirrors dataexec.arith: array operands reinterpret as the
// other side's promoted type, the usual arithmetic conversions pick
// the common type, and the int paths wrap in exactly 32 bits.
func (m *Machine) execBinary(opk token.Kind, x, y ref) (ref, error) {
	p := m.p
	if p.types[x.typ].kind == kArray {
		conv, err := m.convertVal(p.promoteForIdx(y.typ), x)
		if err != nil {
			return ref{}, err
		}
		x = conv
	}
	if p.types[y.typ].kind == kArray {
		conv, err := m.convertVal(p.promoteForIdx(x.typ), y)
		if err != nil {
			return ref{}, err
		}
		y = conv
	}
	tx, ty := &p.types[x.typ], &p.types[y.typ]

	// UsualArithmetic: double > float > unsigned int > int.
	if (tx.kind == kFloat && tx.size == 8) || (ty.kind == kFloat && ty.size == 8) ||
		tx.kind == kFloat || ty.kind == kFloat {
		common := p.tFloat
		if (tx.kind == kFloat && tx.size == 8) || (ty.kind == kFloat && ty.size == 8) {
			common = p.tDouble
		}
		a, bf := m.toFloat(x), m.toFloat(y)
		switch opk {
		case token.ADD:
			return p.immFloat(common, a+bf), nil
		case token.SUB:
			return p.immFloat(common, a-bf), nil
		case token.MUL:
			return p.immFloat(common, a*bf), nil
		case token.QUO:
			if bf == 0 {
				return ref{}, fmt.Errorf("floating division by zero")
			}
			return p.immFloat(common, a/bf), nil
		case token.EQL:
			return p.immInt(p.tInt, b2i(a == bf)), nil
		case token.NEQ:
			return p.immInt(p.tInt, b2i(a != bf)), nil
		case token.LSS:
			return p.immInt(p.tInt, b2i(a < bf)), nil
		case token.GTR:
			return p.immInt(p.tInt, b2i(a > bf)), nil
		case token.LEQ:
			return p.immInt(p.tInt, b2i(a <= bf)), nil
		case token.GEQ:
			return p.immInt(p.tInt, b2i(a >= bf)), nil
		}
		return ref{}, fmt.Errorf("operator %q not defined on floats", opk)
	}

	pxt, pyt := &p.types[p.promoteIdx(x.typ)], &p.types[p.promoteIdx(y.typ)]
	if pxt.kind == kUint || pyt.kind == kUint {
		common := p.tUint
		a, bu := uint32(m.readInt(x)), uint32(m.readInt(y))
		switch opk {
		case token.ADD:
			return p.immInt(common, int64(a+bu)), nil
		case token.SUB:
			return p.immInt(common, int64(a-bu)), nil
		case token.MUL:
			return p.immInt(common, int64(a*bu)), nil
		case token.QUO:
			if bu == 0 {
				return ref{}, fmt.Errorf("division by zero")
			}
			return p.immInt(common, int64(a/bu)), nil
		case token.REM:
			if bu == 0 {
				return ref{}, fmt.Errorf("division by zero")
			}
			return p.immInt(common, int64(a%bu)), nil
		case token.SHL:
			return p.immInt(common, int64(a<<(bu&31))), nil
		case token.SHR:
			return p.immInt(common, int64(a>>(bu&31))), nil
		case token.AND:
			return p.immInt(common, int64(a&bu)), nil
		case token.OR:
			return p.immInt(common, int64(a|bu)), nil
		case token.XOR:
			return p.immInt(common, int64(a^bu)), nil
		case token.EQL:
			return p.immInt(p.tInt, b2i(a == bu)), nil
		case token.NEQ:
			return p.immInt(p.tInt, b2i(a != bu)), nil
		case token.LSS:
			return p.immInt(p.tInt, b2i(a < bu)), nil
		case token.GTR:
			return p.immInt(p.tInt, b2i(a > bu)), nil
		case token.LEQ:
			return p.immInt(p.tInt, b2i(a <= bu)), nil
		case token.GEQ:
			return p.immInt(p.tInt, b2i(a >= bu)), nil
		}
		return ref{}, fmt.Errorf("unsupported operator %q", opk)
	}

	common := p.tInt
	a, bi := int32(m.readInt(x)), int32(m.readInt(y))
	switch opk {
	case token.ADD:
		return p.immInt(common, int64(a+bi)), nil
	case token.SUB:
		return p.immInt(common, int64(a-bi)), nil
	case token.MUL:
		return p.immInt(common, int64(a*bi)), nil
	case token.QUO:
		if bi == 0 {
			return ref{}, fmt.Errorf("division by zero")
		}
		return p.immInt(common, int64(a/bi)), nil
	case token.REM:
		if bi == 0 {
			return ref{}, fmt.Errorf("division by zero")
		}
		return p.immInt(common, int64(a%bi)), nil
	case token.SHL:
		return p.immInt(common, int64(a<<(uint32(bi)&31))), nil
	case token.SHR:
		return p.immInt(common, int64(a>>(uint32(bi)&31))), nil
	case token.AND:
		return p.immInt(common, int64(a&bi)), nil
	case token.OR:
		return p.immInt(common, int64(a|bi)), nil
	case token.XOR:
		return p.immInt(common, int64(a^bi)), nil
	case token.EQL:
		return p.immInt(common, b2i(a == bi)), nil
	case token.NEQ:
		return p.immInt(common, b2i(a != bi)), nil
	case token.LSS:
		return p.immInt(common, b2i(a < bi)), nil
	case token.GTR:
		return p.immInt(common, b2i(a > bi)), nil
	case token.LEQ:
		return p.immInt(common, b2i(a <= bi)), nil
	case token.GEQ:
		return p.immInt(common, b2i(a >= bi)), nil
	}
	return ref{}, fmt.Errorf("unsupported operator %q", opk)
}

// ---------------------------------------------------------------------------
// The interpreter loop

// run executes bytecode from pc until the reaction ends (opEnd) or an
// instruction fails. It owns the operand stack for the whole reaction,
// across C calls: each call context's operands nest above the
// caller's.
func (m *Machine) run(pc int32, extPresent []bool, out []cval.Value) (bool, error) {
	p := m.p
	code := p.code
	stack := m.stack
	sp := 0
	nIn := int32(len(p.ins))
	for {
		in := &code[pc]
		switch in.op {
		case opNop:
			pc++

		case opPushG:
			stack[sp] = ref{typ: in.b, off: in.a}
			sp++
			pc++

		case opPushL:
			stack[sp] = ref{typ: in.b, off: m.base + in.a}
			sp++
			pc++

		case opPushImm:
			stack[sp] = ref{typ: in.b, off: -1, bits: in.imm}
			sp++
			pc++

		case opIndex:
			idx := m.readInt(stack[sp-1])
			arr := stack[sp-2]
			sp--
			t := &p.types[arr.typ]
			if t.kind != kArray {
				return false, fmt.Errorf("index on non-array %s", t.ct)
			}
			if idx < 0 || idx >= int64(t.alen) {
				return false, fmt.Errorf("index %d out of range [0,%d)", idx, t.alen)
			}
			et := &p.types[t.elem]
			stack[sp-1] = ref{typ: t.elem, off: arr.off + int32(idx)*et.size}
			pc++

		case opField:
			s := stack[sp-1]
			t := &p.types[s.typ]
			if t.kind != kStruct {
				return false, fmt.Errorf("field access on non-struct %s", t.ct)
			}
			name := p.names[in.a]
			found := false
			for i := range t.fields {
				if t.fields[i].name == name {
					stack[sp-1] = ref{typ: t.fields[i].typ, off: s.off + t.fields[i].off}
					found = true
					break
				}
			}
			if !found {
				return false, fmt.Errorf("no field %q in %s", name, t.ct)
			}
			pc++

		case opUnary:
			x := stack[sp-1]
			t := &p.types[x.typ]
			switch in.a {
			case uNeg:
				if t.kind == kFloat {
					stack[sp-1] = p.immFloat(x.typ, -m.readFloat(x))
				} else {
					stack[sp-1] = p.immInt(p.promoteIdx(x.typ), -m.readInt(x))
				}
			case uNot:
				stack[sp-1] = p.immInt(p.tInt, b2i(!m.truth(x)))
			case uTilde:
				if t.kind == kBool {
					var b uint64
					if !m.truth(x) {
						b = 1
					}
					stack[sp-1] = ref{typ: p.tBool, off: -1, bits: b}
				} else if t.kind == kFloat {
					return false, fmt.Errorf("operator ~ not defined on %s", t.ct)
				} else {
					stack[sp-1] = p.immInt(p.promoteIdx(x.typ), ^m.readInt(x))
				}
			}
			pc++

		case opIncDec:
			dst := stack[sp-1]
			t := &p.types[dst.typ]
			old := m.immFromView(dst)
			m.writeInt(t, dst.off, m.readInt(dst)+int64(in.a))
			if in.b == 1 {
				stack[sp-1] = old
			} else {
				stack[sp-1] = m.immFromView(dst)
			}
			pc++

		case opBinary:
			res, err := m.execBinary(token.Kind(in.a), stack[sp-2], stack[sp-1])
			if err != nil {
				return false, err
			}
			sp--
			stack[sp-1] = res
			pc++

		case opConvert:
			res, err := m.convertVal(in.a, stack[sp-1])
			if err != nil {
				return false, err
			}
			stack[sp-1] = res
			pc++

		case opAssign:
			src := stack[sp-1]
			dst := stack[sp-2]
			sp--
			if err := m.convertStore(dst.typ, dst.off, src); err != nil {
				return false, err
			}
			pc++

		case opAssignOp:
			src := stack[sp-1]
			dst := stack[sp-2]
			sp--
			res, err := m.execBinary(token.Kind(in.a), dst, src)
			if err != nil {
				return false, err
			}
			if err := m.convertStore(dst.typ, dst.off, res); err != nil {
				return false, err
			}
			pc++

		case opDrop:
			sp--
			pc++

		case opJump:
			pc = in.a

		case opJumpFalse:
			sp--
			if !m.truth(stack[sp]) {
				pc = in.a
			} else {
				pc++
			}

		case opJumpTrue:
			sp--
			if m.truth(stack[sp]) {
				pc = in.a
			} else {
				pc++
			}

		case opTick:
			m.steps++
			if m.steps > maxSteps {
				return false, fmt.Errorf("data execution exceeded %d steps (runaway loop?)", maxSteps)
			}
			pc++

		case opStoreTag:
			sp--
			m.tags[in.a] = m.readInt(stack[sp])
			pc++

		case opCaseEq:
			if m.tags[in.a] == int64(in.imm) {
				pc = in.b
			} else {
				pc++
			}

		case opChkDepth:
			// Before argument evaluation (mirrors dataexec's frame
			// check at call entry, ahead of any argument side effect).
			if len(m.calls) >= maxCallDepth {
				return false, fmt.Errorf("call depth limit exceeded in %q", p.funcs[in.a].name)
			}
			pc++

		case opCall:
			fn := &p.funcs[in.a]
			if len(m.calls) >= maxCallDepth {
				return false, fmt.Errorf("call depth limit exceeded in %q", fn.name)
			}
			newBase := m.top
			if int(newBase)+int(fn.frameSize) > len(m.arena) {
				return false, fmt.Errorf("frame overflow calling %q", fn.name)
			}
			nargs := int(in.b)
			for i := range fn.params {
				pm := &fn.params[i]
				if err := m.convertStore(pm.typ, newBase+pm.off, stack[sp-nargs+i]); err != nil {
					return false, fmt.Errorf("argument %d of %q: %w", i+1, fn.name, err)
				}
			}
			sp -= nargs
			m.calls = append(m.calls, callFrame{retPC: pc + 1, base: m.base, top: m.top, fn: in.a})
			m.base = newBase
			m.top = newBase + fn.frameSize
			pc = fn.entry

		case opRet:
			fr := m.calls[len(m.calls)-1]
			m.calls = m.calls[:len(m.calls)-1]
			fn := &p.funcs[fr.fn]
			if in.a == 1 {
				// Materialize the value before the frame dies: scalars
				// become immediates, aggregates copy into the function's
				// static return slot.
				v := stack[sp-1]
				if v.off >= 0 {
					t := &p.types[v.typ]
					if t.kind == kArray || t.kind == kStruct {
						if fn.retSlot < 0 {
							return false, fmt.Errorf("internal: aggregate return without slot in %q", fn.name)
						}
						copy(m.arena[fn.retSlot:fn.retSlot+t.size], m.arena[v.off:v.off+t.size])
						stack[sp-1] = ref{typ: v.typ, off: fn.retSlot}
					} else {
						stack[sp-1] = m.immFromView(v)
					}
				}
			} else {
				// No value: zero of the declared return type (mirrors
				// cval.New(fi.Ret) for a fall-through return).
				t := &p.types[fn.ret]
				if t.kind == kArray || t.kind == kStruct {
					for i := fn.retSlot; i < fn.retSlot+t.size; i++ {
						m.arena[i] = 0
					}
					stack[sp] = ref{typ: fn.ret, off: fn.retSlot}
				} else {
					stack[sp] = ref{typ: fn.ret, off: -1}
				}
				sp++
			}
			m.base, m.top = fr.base, fr.top
			pc = fr.retPC

		case opCallData:
			fn := &p.funcs[in.a]
			if len(m.calls) >= maxCallDepth {
				return false, fmt.Errorf("call depth limit exceeded in %q", fn.name)
			}
			m.calls = append(m.calls, callFrame{retPC: pc + 1, base: m.base, top: m.top, fn: in.a})
			pc = fn.entry

		case opRetData:
			fr := m.calls[len(m.calls)-1]
			m.calls = m.calls[:len(m.calls)-1]
			m.base, m.top = fr.base, fr.top
			pc = fr.retPC

		case opZeroL:
			off := m.base + in.a
			for i := off; i < off+in.b; i++ {
				m.arena[i] = 0
			}
			pc++

		case opBranchIn:
			if m.present[in.a] {
				pc++
			} else {
				pc = in.b
			}

		case opEmit:
			em := &p.emits[in.a]
			if in.b == 1 {
				sp--
				if err := m.convertStore(em.valTyp, em.valOff, stack[sp]); err != nil {
					return false, fmt.Errorf("emit %s: %w", em.name, err)
				}
			}
			m.present[em.sig] = true
			if em.outSlot >= 0 {
				extPresent[nIn+em.outSlot] = true
				if em.valOff >= 0 {
					// Copy the emitted value into the caller's slot buffer
					// when it has storage of the right size (Ports hands
					// out correctly sized buffers; foreign buffers are
					// skipped, and the map adapter clones from the arena).
					if b := out[em.outSlot].B; len(b) == int(em.valSize) {
						copy(b, m.arena[em.valOff:em.valOff+em.valSize])
					}
				}
			}
			pc++

		case opEnd:
			if in.b == 1 {
				// Terminal: set done but keep the state index so
				// snapshots of a finished machine stay well-formed.
				m.done = true
			} else {
				m.state = in.a // -1 when the leaf has no successor
			}
			return m.done, nil

		case opError:
			return false, fmt.Errorf("%s", p.errs[in.a])

		default:
			return false, fmt.Errorf("internal: bad opcode %d at pc %d", in.op, pc)
		}
	}
}
