package table

import (
	"fmt"
	"strings"
)

// listing renders the compiled table deterministically: layout tables,
// state dispatch entries, function entries, and a full disassembly.
// Everything is index- and offset-ordered, so identical programs
// produce byte-identical listings (the emit-table phase caches this).
func (p *Program) listing() string {
	var b strings.Builder
	fmt.Fprintf(&b, "table %s: states=%d code=%d types=%d\n",
		p.name, len(p.stateEntry), len(p.code), len(p.types))
	fmt.Fprintf(&b, "arena: globals=%d total=%d stack=%d tags=%d sigs=%d\n",
		p.globalsSize, p.arenaSize, p.maxStack, p.numTags, p.numSigs)

	section := func(title string, slots []slotMeta) {
		if len(slots) == 0 {
			return
		}
		fmt.Fprintf(&b, "%s:\n", title)
		for _, s := range slots {
			fmt.Fprintf(&b, "  %-16s @%-5d size=%-3d %s\n", s.name, s.off, s.size, p.typeName(s.typ))
		}
	}
	section("vars", p.vars)
	section("signal stores", p.sigs)

	ports := func(title string, ps []portMeta) {
		if len(ps) == 0 {
			return
		}
		fmt.Fprintf(&b, "%s:\n", title)
		for i, pm := range ps {
			if pm.valOff >= 0 {
				fmt.Fprintf(&b, "  [%d] %-14s sig=%-3d val=@%d %s\n", i, pm.name, pm.sig, pm.valOff, p.typeName(pm.valTyp))
			} else {
				fmt.Fprintf(&b, "  [%d] %-14s sig=%-3d pure\n", i, pm.name, pm.sig)
			}
		}
	}
	ports("inputs", p.ins)
	ports("outputs", p.outs)

	if len(p.funcs) > 0 {
		fmt.Fprintf(&b, "funcs:\n")
		for i, fn := range p.funcs {
			fmt.Fprintf(&b, "  [%d] %-14s entry=%-5d frame=%-4d params=%d\n",
				i, fn.name, fn.entry, fn.frameSize, len(fn.params))
		}
	}

	fmt.Fprintf(&b, "states:\n")
	for i, entry := range p.stateEntry {
		fmt.Fprintf(&b, "  s%d entry=%d\n", p.stateID[i], entry)
	}

	fmt.Fprintf(&b, "code:\n")
	for pc, in := range p.code {
		name := "?"
		if int(in.op) < len(opNames) && opNames[in.op] != "" {
			name = opNames[in.op]
		}
		if in.imm != 0 {
			fmt.Fprintf(&b, "  %5d  %-9s a=%-6d b=%-6d imm=%#x\n", pc, name, in.a, in.b, in.imm)
		} else {
			fmt.Fprintf(&b, "  %5d  %-9s a=%-6d b=%d\n", pc, name, in.a, in.b)
		}
	}
	return b.String()
}

func (p *Program) typeName(ti int32) string {
	if ti < 0 || int(ti) >= len(p.types) {
		return "?"
	}
	if t := p.types[ti].ct; t != nil {
		return t.String()
	}
	return "?"
}
