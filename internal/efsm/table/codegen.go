package table

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/efsm"
	"repro/internal/kernel"
	"repro/internal/sem"
	"repro/internal/token"
)

// ---------------------------------------------------------------------------
// Reactive layer: decision trees and actions

func (c *compiler) tree(n efsm.Node, st *efsm.State) {
	switch n := n.(type) {
	case *efsm.Leaf:
		next := int32(-1)
		if n.To != nil {
			i, ok := c.stateIdx[n.To]
			if !ok {
				c.emitErr("state s%d: successor not in machine", st.ID)
				return
			}
			next = i
		}
		term := int32(0)
		if n.Terminal {
			term = 1
		}
		c.emit(opEnd, next, term)

	case *efsm.ActNode:
		c.action(n.Act, st)
		c.tree(n.Next, st)

	case *efsm.InputBranch:
		si, ok := c.sigIdx[n.Sig]
		if !ok {
			c.emitErr("state s%d: unknown signal %s", st.ID, n.Sig.Name)
			return
		}
		br := c.emit(opBranchIn, si, 0)
		c.tree(n.Then, st) // every path ends in opEnd/opError: no join
		c.patchB(br, c.here())
		c.tree(n.Else, st)

	case *efsm.DataBranch:
		c.expr(ectx{b: n.Expr.B}, n.Expr.E)
		jf := c.emit(opJumpFalse, 0, 0)
		c.tree(n.Then, st)
		c.patchA(jf, c.here())
		c.tree(n.Else, st)

	default:
		c.emitErr("state s%d: nil decision-tree node", st.ID)
	}
}

func (c *compiler) action(a efsm.Action, st *efsm.State) {
	switch a.Kind {
	case efsm.ActEmit:
		mi := c.emitMetaFor(a.Sig)
		if a.Value != nil {
			c.expr(ectx{b: a.Value.B}, a.Value.E)
			if c.p.emits[mi].valOff < 0 {
				c.emitErr("emit %s: signal carries no value slot", a.Sig.Name)
				c.adj(-1)
				return
			}
			c.emit(opEmit, mi, 1)
		} else {
			c.emit(opEmit, mi, 0)
		}
	case efsm.ActAssign:
		c.lvalue(ectx{b: a.LHS.B}, a.LHS.E)
		c.expr(ectx{b: a.RHS.B}, a.RHS.E)
		c.emit(opAssign, 0, 0)
		c.emit(opDrop, 0, 0)
	case efsm.ActEval:
		c.expr(ectx{b: a.X.B}, a.X.E)
		c.emit(opDrop, 0, 0)
	case efsm.ActCall:
		if a.F == nil {
			c.emitErr("state s%d: nil data function", st.ID)
			return
		}
		c.emit(opCallData, c.dataFuncFor(a.F), 0)
	default:
		c.emitErr("state s%d: unknown action kind %d", st.ID, a.Kind)
	}
}

func (c *compiler) emitMetaFor(sig *kernel.Signal) int32 {
	if i, ok := c.emitIdx[sig]; ok {
		return i
	}
	em := emitMeta{name: sig.Name, sig: c.presenceOf(sig), outSlot: -1, valOff: -1}
	if j, ok := c.outSlot[sig]; ok {
		em.outSlot = j
	}
	if gs, ok := c.sigSlot[sig]; ok {
		em.valOff, em.valTyp = gs.off, gs.typ
		em.valSize = c.p.types[gs.typ].size
	}
	i := int32(len(c.p.emits))
	c.p.emits = append(c.p.emits, em)
	c.emitIdx[sig] = i
	return i
}

// ---------------------------------------------------------------------------
// Expressions (each compiles to a net push of one value)

func (c *compiler) expr(cx ectx, e ast.Expr) {
	switch e := e.(type) {
	case *ast.Ident:
		switch obj := c.info.UseOf(e).(type) {
		case *sem.VarInfo:
			c.varRef(cx, obj)
		case *sem.SignalInfo:
			sig := cx.b.Sigs[obj]
			if sig == nil {
				c.exprErr("signal %q unbound in instance %s", e.Name, cx.b.Label)
				return
			}
			gs, ok := c.sigSlot[sig]
			if !ok {
				c.exprErr("signal %s carries no value", sig.Name)
				return
			}
			c.emit(opPushG, gs.off, gs.typ)
		case *sem.ConstInfo:
			c.pushInt(c.p.tInt, obj.Value)
		default:
			c.exprErr("cannot evaluate %q", e.Name)
		}

	case *ast.BasicLit:
		switch e.Kind {
		case token.INT:
			v, ok := c.info.ConstEval(e)
			if !ok {
				c.exprErr("bad integer literal %q", e.Value)
				return
			}
			c.pushInt(c.p.tInt, v)
		case token.CHAR:
			v, ok := c.info.ConstEval(e)
			if !ok {
				c.exprErr("bad char literal %q", e.Value)
				return
			}
			c.pushInt(c.tChar, v)
		case token.FLOAT:
			var f float64
			if _, err := fmt.Sscanf(e.Value, "%g", &f); err != nil {
				c.exprErr("bad float literal %q", e.Value)
				return
			}
			c.pushFloat(c.p.tDouble, f)
		default:
			c.exprErr("unsupported literal %q", e.Value)
		}

	case *ast.Paren:
		c.expr(cx, e.X)

	case *ast.Unary:
		c.unary(cx, e)

	case *ast.Postfix:
		c.lvalue(cx, e.X)
		delta := int32(1)
		if e.Op == token.DEC {
			delta = -1
		}
		c.emit(opIncDec, delta, 1)

	case *ast.Binary:
		c.binary(cx, e)

	case *ast.Assign:
		c.lvalue(cx, e.LHS)
		c.expr(cx, e.RHS)
		if e.Op == token.ASSIGN {
			c.emit(opAssign, 0, 0)
			return
		}
		binOp, ok := assignBinOp(e.Op)
		if !ok {
			c.emitErr("unsupported assignment operator %q", e.Op)
			c.adj(-1)
			return
		}
		c.emit(opAssignOp, int32(binOp), 0)

	case *ast.Cond:
		c.expr(cx, e.CondX)
		jf := c.emit(opJumpFalse, 0, 0)
		d0 := c.depth
		c.expr(cx, e.Then)
		j := c.emit(opJump, 0, 0)
		c.patchA(jf, c.here())
		c.depth = d0
		c.expr(cx, e.Else)
		c.patchA(j, c.here())

	case *ast.Call:
		c.call(cx, e)

	case *ast.Index:
		c.expr(cx, e.X)
		c.expr(cx, e.Sub)
		c.emit(opIndex, 0, 0)

	case *ast.Member:
		if e.Arrow {
			c.exprErr("pointer member access not supported at runtime")
			return
		}
		c.expr(cx, e.X)
		c.emit(opField, c.name(e.Name), 0)

	case *ast.Cast:
		c.expr(cx, e.X)
		to := c.info.TypeOfExpr[e.Type]
		if to == nil {
			c.emitErr("unresolved cast target type")
			return
		}
		ti, ok := c.intern(to)
		if !ok {
			c.emitErr("cannot convert to %s", to)
			return
		}
		c.emit(opConvert, ti, 0)

	case *ast.SizeofExpr:
		// The operand is never evaluated (mirrors dataexec).
		if e.Type != nil {
			t := c.info.TypeOfExpr[e.Type]
			if t == nil {
				c.exprErr("unresolved sizeof type")
				return
			}
			c.pushInt(c.p.tUint, int64(t.Size()))
			return
		}
		t := c.info.TypeOf(e.X)
		if t == nil {
			c.exprErr("unresolved sizeof operand")
			return
		}
		c.pushInt(c.p.tUint, int64(t.Size()))

	default:
		c.exprErr("cannot evaluate %T", e)
	}
}

func (c *compiler) varRef(cx ectx, vi *sem.VarInfo) {
	if cx.fn != nil {
		if ls, ok := cx.fn.locals[vi]; ok {
			c.emit(opPushL, ls.off, ls.typ)
			return
		}
	}
	kv := cx.b.Vars[vi]
	if kv == nil {
		c.exprErr("variable %q unbound in instance %s", vi.Name, cx.b.Label)
		return
	}
	gs, ok := c.varSlot[kv]
	if !ok {
		c.exprErr("unknown variable %s", kv.Name)
		return
	}
	c.emit(opPushG, gs.off, gs.typ)
}

func (c *compiler) lvalue(cx ectx, e ast.Expr) {
	switch e := e.(type) {
	case *ast.Ident:
		vi, ok := c.info.UseOf(e).(*sem.VarInfo)
		if !ok {
			c.exprErr("%q is not an assignable variable", e.Name)
			return
		}
		c.varRef(cx, vi)
	case *ast.Paren:
		c.lvalue(cx, e.X)
	case *ast.Index:
		c.lvalue(cx, e.X)
		c.expr(cx, e.Sub)
		c.emit(opIndex, 0, 0)
	case *ast.Member:
		if e.Arrow {
			c.exprErr("pointer member access not supported at runtime")
			return
		}
		c.lvalue(cx, e.X)
		c.emit(opField, c.name(e.Name), 0)
	default:
		c.exprErr("expression is not assignable")
	}
}

func (c *compiler) unary(cx ectx, e *ast.Unary) {
	switch e.Op {
	case token.INC, token.DEC:
		c.lvalue(cx, e.X)
		delta := int32(1)
		if e.Op == token.DEC {
			delta = -1
		}
		c.emit(opIncDec, delta, 0)
	case token.ADD:
		c.expr(cx, e.X)
	case token.SUB:
		c.expr(cx, e.X)
		c.emit(opUnary, uNeg, 0)
	case token.NOT:
		c.expr(cx, e.X)
		c.emit(opUnary, uNot, 0)
	case token.TILDE:
		c.expr(cx, e.X)
		c.emit(opUnary, uTilde, 0)
	default:
		// The operand's side effects happen first (mirrors dataexec's
		// eval-then-reject order).
		c.expr(cx, e.X)
		c.emitErr("unsupported unary operator %q", e.Op)
	}
}

func (c *compiler) binary(cx ectx, e *ast.Binary) {
	switch e.Op {
	case token.COMMA:
		c.expr(cx, e.X)
		c.emit(opDrop, 0, 0)
		c.expr(cx, e.Y)
	case token.LAND:
		c.expr(cx, e.X)
		jf1 := c.emit(opJumpFalse, 0, 0)
		d0 := c.depth
		c.expr(cx, e.Y)
		jf2 := c.emit(opJumpFalse, 0, 0)
		c.pushInt(c.p.tInt, 1)
		j := c.emit(opJump, 0, 0)
		lf := c.here()
		c.patchA(jf1, lf)
		c.patchA(jf2, lf)
		c.depth = d0
		c.pushInt(c.p.tInt, 0)
		c.patchA(j, c.here())
	case token.LOR:
		c.expr(cx, e.X)
		jt1 := c.emit(opJumpTrue, 0, 0)
		d0 := c.depth
		c.expr(cx, e.Y)
		jt2 := c.emit(opJumpTrue, 0, 0)
		c.pushInt(c.p.tInt, 0)
		j := c.emit(opJump, 0, 0)
		lt := c.here()
		c.patchA(jt1, lt)
		c.patchA(jt2, lt)
		c.depth = d0
		c.pushInt(c.p.tInt, 1)
		c.patchA(j, c.here())
	default:
		c.expr(cx, e.X)
		c.expr(cx, e.Y)
		c.emit(opBinary, int32(e.Op), 0)
	}
}

func assignBinOp(op token.Kind) (token.Kind, bool) {
	switch op {
	case token.ADD_ASSIGN:
		return token.ADD, true
	case token.SUB_ASSIGN:
		return token.SUB, true
	case token.MUL_ASSIGN:
		return token.MUL, true
	case token.QUO_ASSIGN:
		return token.QUO, true
	case token.REM_ASSIGN:
		return token.REM, true
	case token.AND_ASSIGN:
		return token.AND, true
	case token.OR_ASSIGN:
		return token.OR, true
	case token.XOR_ASSIGN:
		return token.XOR, true
	case token.SHL_ASSIGN:
		return token.SHL, true
	case token.SHR_ASSIGN:
		return token.SHR, true
	}
	return 0, false
}

func (c *compiler) call(cx ectx, e *ast.Call) {
	fi, ok := c.info.UseOf(e.Fun).(*sem.FuncInfo)
	if !ok {
		c.exprErr("call of non-function %q", e.Fun.Name)
		return
	}
	if fi.Decl == nil || fi.Decl.Body == nil {
		c.exprErr("function %q has no body", fi.Name)
		return
	}
	idx := c.funcFor(funcKey{fi: fi, b: cx.b})
	d0 := c.depth
	// The depth limit fires before argument evaluation (mirrors
	// dataexec's frame check at call entry).
	c.emit(opChkDepth, idx, 0)
	for i := range fi.Params {
		if i >= len(e.Args) {
			// Earlier arguments' side effects happen, then the arity
			// error (mirrors dataexec's per-parameter check).
			c.emitErr("too few arguments to %q", fi.Name)
			c.depth = d0 + 1
			return
		}
		c.expr(cx, e.Args[i])
	}
	// Arguments beyond the parameter list are never evaluated.
	c.emit(opCall, idx, int32(len(fi.Params)))
}
