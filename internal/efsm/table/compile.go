package table

import (
	"fmt"

	"repro/internal/ctypes"
	"repro/internal/efsm"
	"repro/internal/kernel"
	"repro/internal/sem"
)

// The compiler linearizes an EFSM (states, decision trees, and the
// whole C data layer) into the flat bytecode of vm.go. Two invariants
// shape everything here:
//
//   - Compile never fails on user-level constructs. Anything the VM
//     cannot run compiles to an opError that fires exactly where (and
//     only when) the interpreter would have failed, so a table machine
//     always Opens and diverges from the oracle on no input.
//   - Semantics mirror internal/dataexec operation for operation,
//     including evaluation order around errors (argument side effects
//     before an arity error, operand side effects before an
//     unsupported-operator error, and so on).

// funcKey identifies one compiled C function: the sem-level function
// bound through one instance binding (module variables the body touches
// resolve through the caller's binding).
type funcKey struct {
	fi *sem.FuncInfo
	b  *kernel.Binding
}

type gslot struct{ off, typ int32 }

type localSlot struct{ off, typ int32 }

// fnCtx is the compilation context of one C function body.
type fnCtx struct {
	idx     int32
	locals  map[*sem.VarInfo]localSlot
	escapes *[]int32 // break/continue without a target jump to the epilogue
}

// ectx is the expression-compilation context: the instance binding plus
// the enclosing C function (nil at reactive or data-function level).
type ectx struct {
	b  *kernel.Binding
	fn *fnCtx
	df *kernel.DataFunc
}

// sctx extends ectx with statement-level jump targets.
type sctx struct {
	cx        ectx
	brk, cont *[]int32
}

type compiler struct {
	p    *Program
	info *sem.Info

	typeCache map[ctypes.Type]int32
	tChar     int32

	globals int32
	varSlot map[*kernel.Var]gslot
	sigSlot map[*kernel.Signal]gslot
	sigIdx  map[*kernel.Signal]int32
	nextSig int32
	outSlot map[*kernel.Signal]int32
	emitIdx map[*kernel.Signal]int32

	stateIdx map[*efsm.State]int32

	funcIdx map[funcKey]int32
	dfIdx   map[*kernel.DataFunc]int32
	pendF   []funcKey
	pendD   []*kernel.DataFunc

	errIdx  map[string]int32
	nameIdx map[string]int32
	tags    int32

	// Static operand-stack accounting: depth is a conservative bound on
	// the operand count at the current pc within the current region
	// (state tree or function body); regMax folds the maxima.
	depth  int32
	regMax int32
}

// Compile flattens an EFSM into an immutable table Program.
func Compile(em *efsm.Machine) (*Program, error) {
	if em == nil || em.Mod == nil || em.Info == nil {
		return nil, fmt.Errorf("table: nil machine")
	}
	if len(em.States) == 0 || em.Initial == nil {
		return nil, fmt.Errorf("table: %s: machine has no states", em.Name)
	}
	p := &Program{name: em.Name}
	c := &compiler{
		p:         p,
		info:      em.Info,
		typeCache: map[ctypes.Type]int32{},
		varSlot:   map[*kernel.Var]gslot{},
		sigSlot:   map[*kernel.Signal]gslot{},
		sigIdx:    map[*kernel.Signal]int32{},
		outSlot:   map[*kernel.Signal]int32{},
		emitIdx:   map[*kernel.Signal]int32{},
		stateIdx:  map[*efsm.State]int32{},
		funcIdx:   map[funcKey]int32{},
		dfIdx:     map[*kernel.DataFunc]int32{},
		errIdx:    map[string]int32{},
		nameIdx:   map[string]int32{},
	}
	p.tVoid, _ = c.intern(ctypes.Void)
	p.tBool, _ = c.intern(ctypes.Bool)
	p.tInt, _ = c.intern(ctypes.Int)
	p.tUint, _ = c.intern(ctypes.UInt)
	p.tFloat, _ = c.intern(ctypes.Float)
	p.tDouble, _ = c.intern(ctypes.Double)
	c.tChar, _ = c.intern(ctypes.Char)

	// Arena layout: module variables, then valued-signal stores.
	for _, kv := range em.Mod.Vars {
		ti, ok := c.intern(kv.Type)
		if !ok {
			continue // nil type: uses fail at the use site
		}
		t := &p.types[ti]
		off := c.allocGlobal(t.size, int32(kv.Type.Align()))
		c.varSlot[kv] = gslot{off, ti}
		p.vars = append(p.vars, slotMeta{name: kv.Name, off: off, size: t.size, typ: ti})
	}
	for _, s := range em.Mod.Signals() {
		c.presenceOf(s)
		if s.Pure || s.Type == nil {
			continue
		}
		ti, ok := c.intern(s.Type)
		if !ok {
			continue
		}
		t := &p.types[ti]
		off := c.allocGlobal(t.size, int32(s.Type.Align()))
		c.sigSlot[s] = gslot{off, ti}
		p.sigs = append(p.sigs, slotMeta{name: s.Name, off: off, size: t.size, typ: ti})
	}

	// Interface ports, in module declaration order (= slot order).
	for _, s := range em.Inputs {
		p.ins = append(p.ins, c.portFor(s))
	}
	for j, s := range em.Outputs {
		c.outSlot[s] = int32(j)
		p.outs = append(p.outs, c.portFor(s))
	}

	// States: indices first (trees reference successors), then trees.
	p.stateEntry = make([]int32, len(em.States))
	p.stateID = make([]int, len(em.States))
	for i, st := range em.States {
		c.stateIdx[st] = int32(i)
		p.stateID[i] = st.ID
	}
	init, ok := c.stateIdx[em.Initial]
	if !ok {
		return nil, fmt.Errorf("table: %s: initial state not in machine", em.Name)
	}
	p.initial = init
	for i, st := range em.States {
		p.stateEntry[i] = c.here()
		c.depth = 0
		c.tree(st.Root, st)
	}

	// C functions and data-function subroutines, to a fixpoint (bodies
	// discover further callees).
	for len(c.pendF) > 0 || len(c.pendD) > 0 {
		if n := len(c.pendF); n > 0 {
			k := c.pendF[n-1]
			c.pendF = c.pendF[:n-1]
			c.compileFunc(c.funcIdx[k], k)
			continue
		}
		n := len(c.pendD)
		df := c.pendD[n-1]
		c.pendD = c.pendD[:n-1]
		c.compileDataFunc(c.dfIdx[df], df)
	}

	p.globalsSize = c.globals
	var maxFrame int32
	for i := range p.funcs {
		if p.funcs[i].frameSize > maxFrame {
			maxFrame = p.funcs[i].frameSize
		}
	}
	p.arenaSize = p.globalsSize + int32(maxCallDepth+1)*maxFrame
	p.maxStack = int32(maxCallDepth+2)*c.regMax + 8
	p.numTags = c.tags
	p.numSigs = c.nextSig
	return p, nil
}

func (c *compiler) portFor(s *kernel.Signal) portMeta {
	pm := portMeta{
		name:   s.Name,
		pure:   s.Pure || s.Type == nil,
		sig:    c.presenceOf(s),
		valOff: -1,
	}
	if gs, ok := c.sigSlot[s]; ok {
		pm.valOff, pm.valTyp, pm.ct = gs.off, gs.typ, s.Type
	}
	return pm
}

func (c *compiler) presenceOf(s *kernel.Signal) int32 {
	if i, ok := c.sigIdx[s]; ok {
		return i
	}
	i := c.nextSig
	c.nextSig++
	c.sigIdx[s] = i
	return i
}

func alignUp(o, a int32) int32 {
	if a <= 0 {
		a = 1
	}
	if r := o % a; r != 0 {
		o += a - r
	}
	return o
}

func (c *compiler) allocGlobal(size, align int32) int32 {
	c.globals = alignUp(c.globals, align)
	off := c.globals
	c.globals += size
	return off
}

// ---------------------------------------------------------------------------
// Type interning

func (c *compiler) intern(ct ctypes.Type) (int32, bool) {
	if ct == nil {
		return 0, false
	}
	if ct.Kind() == ctypes.KindEnum {
		// Enums behave as int everywhere at runtime; ctypes.Identical
		// keeps distinct enums apart, but every conversion between them
		// is a 4-byte copy, so one descriptor serves all.
		return c.p.tInt, true
	}
	if i, ok := c.typeCache[ct]; ok {
		return i, true
	}
	for i := range c.p.types {
		if c.p.types[i].ct != nil && ctypes.Identical(c.p.types[i].ct, ct) {
			c.typeCache[ct] = int32(i)
			return int32(i), true
		}
	}
	t := typ{elem: -1, size: int32(ct.Size()), ct: ct}
	switch ct.Kind() {
	case ctypes.KindVoid:
		t.kind = kVoid
	case ctypes.KindBool:
		t.kind = kBool
	case ctypes.KindInt:
		if ctypes.IsUnsigned(ct) {
			t.kind = kUint
		} else {
			t.kind = kInt
		}
	case ctypes.KindFloat:
		t.kind = kFloat
	case ctypes.KindPointer:
		t.kind = kOpaque
	case ctypes.KindArray:
		at := ct.(*ctypes.ArrayType)
		ei, ok := c.intern(at.Elem)
		if !ok {
			return 0, false
		}
		t.kind, t.elem, t.alen = kArray, ei, int32(at.Len)
	case ctypes.KindStruct:
		st := ct.(*ctypes.StructType)
		t.kind = kStruct
		for i := range st.Fields {
			f := &st.Fields[i]
			fi, ok := c.intern(f.Type)
			if !ok {
				return 0, false
			}
			t.fields = append(t.fields, fieldDesc{name: f.Name, off: int32(f.Offset), typ: fi})
		}
	default:
		return 0, false
	}
	idx := int32(len(c.p.types))
	c.p.types = append(c.p.types, t)
	c.typeCache[ct] = idx
	return idx, true
}

// ---------------------------------------------------------------------------
// Emission helpers

func (c *compiler) here() int32 { return int32(len(c.p.code)) }

func (c *compiler) emit(o op, a, b int32) int32 {
	return c.emitI(instr{op: o, a: a, b: b})
}

func (c *compiler) emitImm(o op, a, b int32, imm uint64) int32 {
	return c.emitI(instr{op: o, a: a, b: b, imm: imm})
}

func (c *compiler) emitI(in instr) int32 {
	switch in.op {
	case opPushG, opPushL, opPushImm:
		c.adj(1)
	case opIndex, opBinary, opAssign, opAssignOp, opDrop,
		opJumpFalse, opJumpTrue, opStoreTag:
		c.adj(-1)
	case opCall:
		c.adj(1 - in.b)
	case opRet:
		if in.a == 0 {
			c.adj(1)
		}
	case opEmit:
		if in.b == 1 {
			c.adj(-1)
		}
	}
	pc := int32(len(c.p.code))
	c.p.code = append(c.p.code, in)
	return pc
}

func (c *compiler) adj(d int32) {
	c.depth += d
	if c.depth < 0 {
		c.depth = 0
	}
	if c.depth > c.regMax {
		c.regMax = c.depth
	}
}

func (c *compiler) patchA(at, target int32) { c.p.code[at].a = target }
func (c *compiler) patchB(at, target int32) { c.p.code[at].b = target }

func (c *compiler) pushInt(ti int32, v int64) {
	r := c.p.immInt(ti, v)
	c.emitImm(opPushImm, 0, ti, r.bits)
}

func (c *compiler) pushFloat(ti int32, f float64) {
	r := c.p.immFloat(ti, f)
	c.emitImm(opPushImm, 0, ti, r.bits)
}

// emitErr emits a deferred runtime error at the current pc.
func (c *compiler) emitErr(format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	idx, ok := c.errIdx[msg]
	if !ok {
		idx = int32(len(c.p.errs))
		c.p.errs = append(c.p.errs, msg)
		c.errIdx[msg] = idx
	}
	c.emit(opError, idx, 0)
}

// exprErr is emitErr in expression position: accounting records the
// value the expression would have produced (opError halts before any
// consumer runs, so the slot never materializes).
func (c *compiler) exprErr(format string, args ...any) {
	c.emitErr(format, args...)
	c.adj(1)
}

func (c *compiler) name(n string) int32 {
	idx, ok := c.nameIdx[n]
	if !ok {
		idx = int32(len(c.p.names))
		c.p.names = append(c.p.names, n)
		c.nameIdx[n] = idx
	}
	return idx
}
