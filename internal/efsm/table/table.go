// Package table flattens a compiled EFSM into a dense, allocation-free
// stepper — the "hardware-speed" software implementation the paper's
// compiled-code path promises. Where internal/efsm's Runtime walks the
// decision trees with map-keyed stores and a tree-walking C evaluator,
// this package compiles the whole machine once:
//
//   - every variable and valued signal gets a fixed byte slot in one
//     preallocated arena (big-endian MIPS layout, exactly like cval);
//   - every state's decision tree — input-presence branches, C data
//     guards, and actions — is linearized into a flat bytecode program
//     over those slot indices;
//   - the full C data language (expressions, statements, calls with
//     frames) compiles to the same bytecode, with C function frames
//     carved out of the arena by a compile-time layout;
//   - signal I/O is slot-indexed: Step takes a presence vector and
//     value arrays positioned by port slot, never a map.
//
// The VM mirrors internal/dataexec's semantics operation for operation
// (int32/uint32 wrapping arithmetic, &31 shifts, division-by-zero
// errors, byte-test truth, the Figure 2 array-reinterpret idiom), so a
// table machine is trace-identical with the interpreting backends; the
// conformance and fuzz suites enforce that. The steady-state Step path
// performs no allocations: all failures take the (allocating) error
// path, and everything else runs over preallocated storage.
package table

import (
	"fmt"
	"strconv"

	"repro/internal/ctypes"
	"repro/internal/cval"
	"repro/internal/efsm"
)

// ---------------------------------------------------------------------------
// Compiled program model

// vkind classifies a runtime type descriptor.
type vkind uint8

const (
	kVoid vkind = iota
	kBool
	kInt  // signed integer (char, short, int, enum)
	kUint // unsigned integer
	kFloat
	kArray
	kStruct
	kOpaque // pointer-sized storage with no runtime operations
)

// typ is one interned runtime type descriptor. Scalars carry kind and
// width; aggregates carry enough layout to index and select at
// runtime. Interning is structural (ctypes.Identical), so descriptor
// index equality is type identity.
type typ struct {
	kind   vkind
	size   int32
	elem   int32 // arrays: element type index (-1 otherwise)
	alen   int32 // arrays: length
	fields []fieldDesc
	ct     ctypes.Type // original type (compile-time and I/O conversions)
}

// fieldDesc is one struct/union member.
type fieldDesc struct {
	name string
	off  int32
	typ  int32
}

// slotMeta names one arena slot (variable or valued-signal store) for
// portable snapshots.
type slotMeta struct {
	name string
	off  int32
	size int32
	typ  int32
}

// portMeta describes one interface signal slot.
type portMeta struct {
	name   string
	pure   bool
	sig    int32 // internal presence index
	valOff int32 // arena offset of the value store (-1 for pure)
	valTyp int32
	ct     ctypes.Type // value type (nil for pure)
}

// emitMeta describes one compiled emit action.
type emitMeta struct {
	name    string
	sig     int32 // internal presence index
	outSlot int32 // output port slot, -1 for non-outputs
	valOff  int32 // value store offset, -1 for pure
	valTyp  int32
	valSize int32
}

// funcMeta describes one compiled C function (or extracted data
// function, which has no frame).
type funcMeta struct {
	name      string
	entry     int32
	frameSize int32
	params    []paramMeta
	ret       int32 // return type index (-1 for data functions)
	retSlot   int32 // static scratch for aggregate returns (-1 otherwise)
}

type paramMeta struct {
	off int32
	typ int32
}

// Program is an immutable compiled table, shareable across any number
// of Machine instances (backends reopen and fork machines freely).
type Program struct {
	name string // module name

	types      []typ
	code       []instr
	stateEntry []int32 // bytecode entry per state index
	stateID    []int   // EFSM state ID per state index
	initial    int32   // initial state index

	globalsSize int32 // vars + signal stores + static scratch
	arenaSize   int32 // globals + C call-frame region
	maxStack    int32 // operand stack bound (compile-time measured)
	numTags     int32 // switch-dispatch scratch registers
	numSigs     int32 // internal presence vector length

	// Interned indices of the predeclared scalar types (arithmetic
	// results and promotions resolve to these without lookups).
	tInt, tUint, tFloat, tDouble, tBool, tVoid int32

	vars  []slotMeta
	sigs  []slotMeta
	ins   []portMeta
	outs  []portMeta
	emits []emitMeta
	funcs []funcMeta
	names []string // field-selector names
	errs  []string // deferred compile-error messages
}

// Name returns the compiled module's name.
func (p *Program) Name() string { return p.name }

// NumInputs returns the input port count (slot order = module input
// order).
func (p *Program) NumInputs() int { return len(p.ins) }

// NumOutputs returns the output port count (slot order = module output
// order).
func (p *Program) NumOutputs() int { return len(p.outs) }

// States returns the number of compiled control states.
func (p *Program) States() int { return len(p.stateEntry) }

// ---------------------------------------------------------------------------
// Machine instances

type callFrame struct {
	retPC int32
	base  int32
	top   int32
	fn    int32 // callee index (-1 for data-function subroutines)
}

// Machine is one runnable instance of a compiled Program. All mutable
// state lives in preallocated storage sized by the compiler; the
// steady-state Step path allocates nothing. A Machine is not safe for
// concurrent use.
type Machine struct {
	p       *Program
	arena   []byte
	present []bool // internal signal presence, one bit per signal
	stack   []ref
	calls   []callFrame
	tags    []int64
	state   int32
	done    bool
	steps   int
	base    int32 // current C frame base
	top     int32 // frame-region high-water mark
}

// New instantiates a machine at the program's boot state.
func New(p *Program) *Machine {
	return &Machine{
		p:       p,
		arena:   make([]byte, p.arenaSize),
		present: make([]bool, p.numSigs),
		stack:   make([]ref, p.maxStack),
		calls:   make([]callFrame, 0, maxCallDepth+2),
		tags:    make([]int64, p.numTags),
		state:   p.initial,
		base:    p.globalsSize,
		top:     p.globalsSize,
	}
}

// Program returns the shared compiled table.
func (m *Machine) Program() *Program { return m.p }

// Terminated reports whether the machine has finished.
func (m *Machine) Terminated() bool { return m.done }

// Reset returns the machine to its boot state with zeroed stores.
func (m *Machine) Reset() {
	for i := range m.arena[:m.p.globalsSize] {
		m.arena[i] = 0
	}
	m.state = m.p.initial
	m.done = false
	m.base = m.p.globalsSize
	m.top = m.p.globalsSize
}

// Step runs one synchronous instant over slot-indexed I/O.
//
// present is the external presence vector, inputs first then outputs
// (length >= NumInputs+NumOutputs): the caller sets input bits, the
// machine rewrites the output bits. in[i] optionally carries input
// slot i's value (an invalid Value leaves the stored value unchanged;
// values on pure inputs are rejected). out[j] is caller-owned storage
// for output slot j: when an emitted output carries a value the
// machine copies the value bytes into out[j] if it has storage of the
// value type's size, so a caller reusing buffers from Ports sees every
// emitted value without a single allocation.
func (m *Machine) Step(present []bool, in, out []cval.Value) (terminated bool, err error) {
	p := m.p
	nIn, nOut := len(p.ins), len(p.outs)
	if len(present) < nIn+nOut || len(in) < nIn || len(out) < nOut {
		return false, fmt.Errorf("table: %s: slot vectors too short (need %d presence, %d in, %d out)",
			p.name, nIn+nOut, nIn, nOut)
	}
	for j := 0; j < nOut; j++ {
		present[nIn+j] = false
	}
	if m.done || m.state < 0 {
		return true, nil
	}
	for i := range m.present {
		m.present[i] = false
	}
	for i := 0; i < nIn; i++ {
		if !present[i] {
			continue
		}
		pm := &p.ins[i]
		m.present[pm.sig] = true
		if v := in[i]; v.IsValid() {
			if pm.valOff < 0 {
				return false, fmt.Errorf("table: input %s is pure and carries no value", pm.name)
			}
			if err := m.assignValue(pm.valTyp, pm.valOff, pm.ct, v); err != nil {
				return false, fmt.Errorf("table: input %s: %w", pm.name, err)
			}
		}
	}
	m.steps = 0
	return m.run(p.stateEntry[m.state], present, out)
}

// assignValue stores an externally supplied cval into an arena slot,
// mirroring cval.Value.Assign (identical copy, arithmetic conversion,
// array reinterpretation) without allocating.
func (m *Machine) assignValue(ti, off int32, slotType ctypes.Type, v cval.Value) error {
	t := &m.p.types[ti]
	if ctypes.Identical(slotType, v.Type) {
		copy(m.arena[off:off+t.size], v.B)
		return nil
	}
	switch t.kind {
	case kFloat:
		if !ctypes.IsArithmetic(v.Type) {
			return fmt.Errorf("cannot assign %s to %s", v.Type, slotType)
		}
		if v.Type.Kind() == ctypes.KindFloat {
			m.writeFloat(t, off, v.Float())
		} else {
			m.writeFloat(t, off, float64(v.Int()))
		}
		return nil
	case kBool:
		if !ctypes.IsArithmetic(v.Type) {
			return fmt.Errorf("cannot assign %s to %s", v.Type, slotType)
		}
		m.arena[off] = 0
		if v.Bool() {
			m.arena[off] = 1
		}
		return nil
	case kInt, kUint:
		if at, ok := v.Type.(*ctypes.ArrayType); ok && ctypes.IsInteger(at.Elem) {
			// Leading bytes, right-aligned (the Figure 2 idiom).
			n := int(t.size)
			if len(v.B) < n {
				n = len(v.B)
			}
			for i := int32(0); i < t.size; i++ {
				m.arena[off+i] = 0
			}
			copy(m.arena[off+t.size-int32(n):off+t.size], v.B[:n])
			return nil
		}
		if !ctypes.IsArithmetic(v.Type) {
			return fmt.Errorf("cannot assign %s to %s", v.Type, slotType)
		}
		if v.Type.Kind() == ctypes.KindFloat {
			m.writeInt(t, off, int64(v.Float()))
		} else {
			m.writeInt(t, off, v.Int())
		}
		return nil
	}
	return fmt.Errorf("cannot assign %s to %s", v.Type, slotType)
}

// ---------------------------------------------------------------------------
// Snapshots

// Snapshot is a deep copy of a machine's execution state; it restores
// into any machine over the same Program.
type Snapshot struct {
	owner   *Program
	state   int32
	done    bool
	globals []byte
}

// Snapshot captures the machine's current state.
func (m *Machine) Snapshot() *Snapshot {
	g := make([]byte, m.p.globalsSize)
	copy(g, m.arena[:m.p.globalsSize])
	return &Snapshot{owner: m.p, state: m.state, done: m.done, globals: g}
}

// Restore rewinds the machine to a snapshot over the same Program.
func (m *Machine) Restore(s *Snapshot) error {
	if s.owner != m.p {
		return fmt.Errorf("table: snapshot belongs to a different program (%s)", s.owner.name)
	}
	copy(m.arena[:m.p.globalsSize], s.globals)
	m.state = s.state
	m.done = s.done
	m.base = m.p.globalsSize
	m.top = m.p.globalsSize
	return nil
}

// Portable converts a snapshot to the efsm-compatible name-keyed form:
// the control state by EFSM state ID, variables and signal stores by
// name with raw bytes.
func (s *Snapshot) Portable() *efsm.PortableSnapshot {
	id := -1
	if s.state >= 0 {
		id = s.owner.stateID[s.state]
	}
	p := &efsm.PortableSnapshot{
		StateID: id,
		Done:    s.done,
		Vars:    make(map[string][]byte, len(s.owner.vars)),
		Sigs:    make(map[string][]byte, len(s.owner.sigs)),
	}
	for _, sm := range s.owner.vars {
		p.Vars[sm.name] = append([]byte(nil), s.globals[sm.off:sm.off+sm.size]...)
	}
	for _, sm := range s.owner.sigs {
		p.Sigs[sm.name] = append([]byte(nil), s.globals[sm.off:sm.off+sm.size]...)
	}
	return p
}

// SnapshotFromPortable rebinds a portable snapshot's names to this
// machine's program, validating state ID and store coverage.
func (m *Machine) SnapshotFromPortable(ps *efsm.PortableSnapshot) (*Snapshot, error) {
	idx := int32(-1)
	for i, id := range m.p.stateID {
		if id == ps.StateID {
			idx = int32(i)
			break
		}
	}
	if idx < 0 {
		return nil, fmt.Errorf("table: portable snapshot: no state %d in program %s", ps.StateID, m.p.name)
	}
	g := make([]byte, m.p.globalsSize)
	fill := func(kind string, slots []slotMeta, src map[string][]byte) error {
		for _, sm := range slots {
			b, ok := src[sm.name]
			if !ok {
				return fmt.Errorf("table: portable snapshot: no value for %s %s", kind, sm.name)
			}
			if int32(len(b)) != sm.size {
				return fmt.Errorf("table: portable snapshot: %s %s: %d bytes (want %d)",
					kind, sm.name, len(b), sm.size)
			}
			copy(g[sm.off:sm.off+sm.size], b)
		}
		return nil
	}
	if err := fill("variable", m.p.vars, ps.Vars); err != nil {
		return nil, err
	}
	if err := fill("signal", m.p.sigs, ps.Sigs); err != nil {
		return nil, err
	}
	return &Snapshot{owner: m.p, state: idx, done: ps.Done, globals: g}, nil
}

// StateID returns the current control state's EFSM state ID, or -1
// when the machine has run off the end of its automaton.
func (m *Machine) StateID() int {
	if m.state < 0 {
		return -1
	}
	return m.p.stateID[m.state]
}

// ---------------------------------------------------------------------------
// Program-level memoization

// forCache memoizes table compilation per compiled EFSM, the same
// pattern exec uses for bisimulation minimization: sessions and
// conformance tests reopen backends over the same design constantly,
// and the compiled Program is immutable and shareable.
var forCache = newForCache()

type forResult struct {
	p   *Program
	err error
}

// For compiles (or returns the memoized table for) an EFSM machine.
func For(m *efsm.Machine) (*Program, error) {
	return forCache.get(m)
}

// Listing renders the compiled table as a deterministic textual
// artifact: slot layout, dispatch entries, and a bytecode disassembly.
// It is what the pipeline's emit-table phase caches — a reviewable,
// diffable record of exactly what the stepper will execute.
func (p *Program) Listing() string {
	return p.listing()
}

// itoa keeps strconv usage local (state IDs in listings).
func itoa(i int) string { return strconv.Itoa(i) }
