package table

import (
	"fmt"
	"sync"

	"repro/internal/ast"
	"repro/internal/efsm"
	"repro/internal/kernel"
	"repro/internal/sem"
)

// ---------------------------------------------------------------------------
// Statements (net zero stack effect)

func (c *compiler) stmts(sx sctx, list []ast.Stmt) {
	for _, s := range list {
		c.stmt(sx, s)
	}
}

func (c *compiler) stmt(sx sctx, s ast.Stmt) {
	d0 := c.depth
	defer func() { c.depth = d0 }() // statements are stack-neutral

	switch s := s.(type) {
	case nil, *ast.Empty:

	case *ast.Block:
		c.stmts(sx, s.Stmts)

	case *ast.VarDecl:
		vi := c.info.VarOf[s]
		if vi == nil {
			c.emitErr("unresolved declaration of %q", s.Name)
			return
		}
		if sx.cx.fn != nil {
			ls, ok := sx.cx.fn.locals[vi]
			if !ok {
				c.emitErr("unresolved declaration of %q", s.Name)
				return
			}
			// The frame slot zeroes each time the declaration executes
			// (mirrors dataexec's fresh cval.New per execution).
			c.emit(opZeroL, ls.off, c.p.types[ls.typ].size)
			if s.Init != nil {
				c.emit(opPushL, ls.off, ls.typ)
				c.expr(sx.cx, s.Init)
				c.emit(opAssign, 0, 0)
				c.emit(opDrop, 0, 0)
			}
			return
		}
		// Data-function context: the variable is a module store; only
		// the initializer runs.
		if s.Init != nil {
			c.varRef(sx.cx, vi)
			c.expr(sx.cx, s.Init)
			c.emit(opAssign, 0, 0)
			c.emit(opDrop, 0, 0)
		}

	case *ast.ExprStmt:
		c.expr(sx.cx, s.X)
		c.emit(opDrop, 0, 0)

	case *ast.If:
		c.expr(sx.cx, s.Cond)
		jf := c.emit(opJumpFalse, 0, 0)
		c.stmt(sx, s.Then)
		if s.Else != nil {
			j := c.emit(opJump, 0, 0)
			c.patchA(jf, c.here())
			c.stmt(sx, s.Else)
			c.patchA(j, c.here())
		} else {
			c.patchA(jf, c.here())
		}

	case *ast.While:
		lcond := c.here()
		c.emit(opTick, 0, 0)
		c.expr(sx.cx, s.Cond)
		jf := c.emit(opJumpFalse, 0, 0)
		brk, cont := []int32{}, []int32{}
		bsx := sx
		bsx.brk, bsx.cont = &brk, &cont
		c.stmt(bsx, s.Body)
		c.emit(opJump, lcond, 0)
		end := c.here()
		c.patchA(jf, end)
		for _, j := range brk {
			c.patchA(j, end)
		}
		for _, j := range cont {
			c.patchA(j, lcond)
		}

	case *ast.DoWhile:
		ltop := c.here()
		c.emit(opTick, 0, 0)
		brk, cont := []int32{}, []int32{}
		bsx := sx
		bsx.brk, bsx.cont = &brk, &cont
		c.stmt(bsx, s.Body)
		lcond := c.here()
		c.expr(sx.cx, s.Cond)
		c.emit(opJumpTrue, ltop, 0)
		end := c.here()
		for _, j := range brk {
			c.patchA(j, end)
		}
		for _, j := range cont {
			c.patchA(j, lcond)
		}

	case *ast.For:
		if s.Init != nil {
			c.stmt(sx, s.Init)
		}
		lcond := c.here()
		c.emit(opTick, 0, 0)
		jf := int32(-1)
		if s.Cond != nil {
			c.expr(sx.cx, s.Cond)
			jf = c.emit(opJumpFalse, 0, 0)
		}
		brk, cont := []int32{}, []int32{}
		bsx := sx
		bsx.brk, bsx.cont = &brk, &cont
		c.stmt(bsx, s.Body)
		lpost := c.here()
		if s.Post != nil {
			c.stmt(sx, s.Post)
		}
		c.emit(opJump, lcond, 0)
		end := c.here()
		if jf >= 0 {
			c.patchA(jf, end)
		}
		for _, j := range brk {
			c.patchA(j, end)
		}
		for _, j := range cont {
			c.patchA(j, lpost)
		}

	case *ast.Switch:
		c.switchStmt(sx, s)

	case *ast.Break:
		c.jumpOut(sx, sx.brk)

	case *ast.Continue:
		c.jumpOut(sx, sx.cont)

	case *ast.Return:
		if sx.cx.fn != nil {
			if s.X != nil {
				c.expr(sx.cx, s.X)
				c.emit(opRet, 1, 0)
			} else {
				c.emit(opRet, 0, 0)
			}
			return
		}
		// Data-function context: evaluate (for side effects and
		// errors), then return from the subroutine.
		if s.X != nil {
			c.expr(sx.cx, s.X)
			c.emit(opDrop, 0, 0)
		}
		c.emit(opRetData, 0, 0)

	default:
		c.emitErr("cannot execute %T in data context", s)
	}
}

// switchStmt mirrors dataexec's sequential matched-latch scan: case
// values are compared in clause order, a default clause matches as soon
// as the scan reaches it, non-constant case values never match, and
// bodies run through in order from the match (C fallthrough).
func (c *compiler) switchStmt(sx sctx, s *ast.Switch) {
	c.expr(sx.cx, s.Tag)
	reg := c.tags
	c.tags++
	c.emit(opStoreTag, reg, 0)

	type casePatch struct {
		at, clause int32
		inB        bool
	}
	var patches []casePatch
	hasDefault := false
	for ci, cc := range s.Cases {
		if cc.Values == nil {
			j := c.emit(opJump, 0, 0)
			patches = append(patches, casePatch{j, int32(ci), false})
			hasDefault = true
			break // clauses after a reached default are never tested
		}
		for _, vexpr := range cc.Values {
			v, ok := c.info.ConstEval(vexpr)
			if !ok {
				continue
			}
			at := c.emitImm(opCaseEq, reg, 0, uint64(v))
			patches = append(patches, casePatch{at, int32(ci), true})
		}
	}
	endJump := int32(-1)
	if !hasDefault {
		endJump = c.emit(opJump, 0, 0)
	}

	bodyPC := make([]int32, len(s.Cases))
	brk := []int32{}
	bsx := sx
	bsx.brk = &brk // continue passes through to the enclosing loop
	for ci, cc := range s.Cases {
		bodyPC[ci] = c.here()
		c.stmts(bsx, cc.Body)
	}
	end := c.here()
	for _, pt := range patches {
		if pt.inB {
			c.patchB(pt.at, bodyPC[pt.clause])
		} else {
			c.patchA(pt.at, bodyPC[pt.clause])
		}
	}
	if endJump >= 0 {
		c.patchA(endJump, end)
	}
	for _, j := range brk {
		c.patchA(j, end)
	}
}

// jumpOut compiles break/continue: to the enclosing loop/switch target,
// else (in a C function) to the epilogue — dataexec lets a stray
// break/continue fall out of the body, which returns the zero value —
// else (extracted data code) to the interpreter's escape error.
func (c *compiler) jumpOut(sx sctx, list *[]int32) {
	if list != nil {
		*list = append(*list, c.emit(opJump, 0, 0))
		return
	}
	if sx.cx.fn != nil {
		esc := sx.cx.fn.escapes
		*esc = append(*esc, c.emit(opJump, 0, 0))
		return
	}
	name := "data"
	if sx.cx.df != nil {
		name = sx.cx.df.Name
	}
	c.emitErr("%s: break/continue escaped extracted data code", name)
}

// ---------------------------------------------------------------------------
// C functions and data-function subroutines

func (c *compiler) funcFor(k funcKey) int32 {
	if i, ok := c.funcIdx[k]; ok {
		return i
	}
	i := int32(len(c.p.funcs))
	c.p.funcs = append(c.p.funcs, funcMeta{name: k.fi.Name, entry: -1, ret: -1, retSlot: -1})
	c.funcIdx[k] = i
	c.pendF = append(c.pendF, k)
	return i
}

func (c *compiler) dataFuncFor(df *kernel.DataFunc) int32 {
	if i, ok := c.dfIdx[df]; ok {
		return i
	}
	i := int32(len(c.p.funcs))
	c.p.funcs = append(c.p.funcs, funcMeta{name: df.Name, entry: -1, ret: -1, retSlot: -1})
	c.dfIdx[df] = i
	c.pendD = append(c.pendD, df)
	return i
}

func (c *compiler) compileFunc(idx int32, k funcKey) {
	fi := k.fi
	fm := funcMeta{name: fi.Name, ret: -1, retSlot: -1}
	locals := make(map[*sem.VarInfo]localSlot)
	off := int32(0)
	bad := ""
	addLocal := func(vi *sem.VarInfo) (localSlot, bool) {
		ti, ok := c.intern(vi.Type)
		if !ok {
			return localSlot{}, false
		}
		off = alignUp(off, int32(vi.Type.Align()))
		ls := localSlot{off: off, typ: ti}
		off += c.p.types[ti].size
		locals[vi] = ls
		return ls, true
	}
	for _, pv := range fi.Params {
		ls, ok := addLocal(pv)
		if !ok {
			bad = fmt.Sprintf("unsupported parameter type in %q", fi.Name)
			break
		}
		fm.params = append(fm.params, paramMeta{off: ls.off, typ: ls.typ})
	}
	walkDecls(fi.Decl.Body.Stmts, func(d *ast.VarDecl) {
		vi := c.info.VarOf[d]
		if vi == nil {
			return
		}
		if _, dup := locals[vi]; dup {
			return
		}
		addLocal(vi) // a failure surfaces at the declaration's use site
	})
	fm.frameSize = off
	if ti, ok := c.intern(fi.Ret); ok {
		fm.ret = ti
		t := &c.p.types[ti]
		if t.kind == kArray || t.kind == kStruct || t.kind == kOpaque {
			fm.retSlot = c.allocGlobal(t.size, int32(fi.Ret.Align()))
		}
	} else {
		bad = fmt.Sprintf("unsupported return type in %q", fi.Name)
	}
	fm.entry = c.here()
	c.depth = 0
	if bad != "" {
		c.emitErr("%s", bad)
	} else {
		esc := []int32{}
		fn := &fnCtx{idx: idx, locals: locals, escapes: &esc}
		c.stmts(sctx{cx: ectx{b: k.b, fn: fn}}, fi.Decl.Body.Stmts)
		for _, at := range esc {
			c.patchA(at, c.here())
		}
	}
	// Implicit epilogue: fall-through (and stray break/continue) return
	// the zero value of the declared type.
	c.emit(opRet, 0, 0)
	c.p.funcs[idx] = fm
}

func (c *compiler) compileDataFunc(idx int32, df *kernel.DataFunc) {
	fm := funcMeta{name: df.Name, entry: c.here(), ret: -1, retSlot: -1}
	c.depth = 0
	c.stmts(sctx{cx: ectx{b: df.B, df: df}}, df.Body)
	c.emit(opRetData, 0, 0)
	c.p.funcs[idx] = fm
}

// walkDecls visits every VarDecl in a statement tree (the compile-time
// frame layout: one slot per declared VarInfo).
func walkDecls(list []ast.Stmt, f func(*ast.VarDecl)) {
	for _, s := range list {
		walkDeclsStmt(s, f)
	}
}

func walkDeclsStmt(s ast.Stmt, f func(*ast.VarDecl)) {
	switch s := s.(type) {
	case *ast.VarDecl:
		f(s)
	case *ast.Block:
		walkDecls(s.Stmts, f)
	case *ast.If:
		walkDeclsStmt(s.Then, f)
		if s.Else != nil {
			walkDeclsStmt(s.Else, f)
		}
	case *ast.While:
		walkDeclsStmt(s.Body, f)
	case *ast.DoWhile:
		walkDeclsStmt(s.Body, f)
	case *ast.For:
		if s.Init != nil {
			walkDeclsStmt(s.Init, f)
		}
		walkDeclsStmt(s.Body, f)
		if s.Post != nil {
			walkDeclsStmt(s.Post, f)
		}
	case *ast.Switch:
		for _, cc := range s.Cases {
			walkDecls(cc.Body, f)
		}
	}
}

// ---------------------------------------------------------------------------
// Compile memoization

type forCacheT struct {
	mu sync.Mutex
	m  map[*efsm.Machine]forResult
}

func newForCache() *forCacheT {
	return &forCacheT{m: map[*efsm.Machine]forResult{}}
}

func (fc *forCacheT) get(em *efsm.Machine) (*Program, error) {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	if r, ok := fc.m[em]; ok {
		return r.p, r.err
	}
	p, err := Compile(em)
	fc.m[em] = forResult{p: p, err: err}
	return p, err
}
