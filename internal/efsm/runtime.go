package efsm

import (
	"fmt"

	"repro/internal/cval"
	"repro/internal/dataexec"
	"repro/internal/kernel"
)

// Runtime executes a compiled EFSM: the software implementation of the
// reactive part, behaviourally equivalent to the reference interpreter
// (tests co-simulate the two).
type Runtime struct {
	M *Machine

	cur     *State
	done    bool
	vars    map[*kernel.Var]cval.Value
	sigVals map[*kernel.Signal]cval.Value
	present map[*kernel.Signal]bool
	units   int

	// Trace, when non-nil, receives one entry per executed action.
	Trace func(Action)
}

// NewRuntime builds a runtime with zeroed variables.
func NewRuntime(m *Machine) *Runtime {
	rt := &Runtime{
		M:       m,
		cur:     m.Initial,
		vars:    make(map[*kernel.Var]cval.Value),
		sigVals: make(map[*kernel.Signal]cval.Value),
	}
	for _, v := range m.Mod.Vars {
		rt.vars[v] = cval.New(v.Type)
	}
	for _, s := range m.Mod.Signals() {
		if !s.Pure && s.Type != nil {
			rt.sigVals[s] = cval.New(s.Type)
		}
	}
	return rt
}

// VarValue implements dataexec.Env.
func (rt *Runtime) VarValue(v *kernel.Var) (cval.Value, error) {
	val, ok := rt.vars[v]
	if !ok {
		return cval.Value{}, fmt.Errorf("unknown variable %s", v.Name)
	}
	return val, nil
}

// SignalValue implements dataexec.Env.
func (rt *Runtime) SignalValue(s *kernel.Signal) (cval.Value, error) {
	val, ok := rt.sigVals[s]
	if !ok {
		return cval.Value{}, fmt.Errorf("signal %s carries no value", s.Name)
	}
	return val, nil
}

// Charge implements dataexec.Env.
func (rt *Runtime) Charge(units int) { rt.units += units }

// Snapshot is a deep copy of a runtime's full execution state. It can
// be restored into the runtime it came from or into a fresh runtime
// over the same Machine (state-save-and-branch).
type Snapshot struct {
	owner   *Machine
	cur     *State
	done    bool
	vars    map[*kernel.Var]cval.Value
	sigVals map[*kernel.Signal]cval.Value
}

// Snapshot captures the runtime's current state.
func (rt *Runtime) Snapshot() *Snapshot {
	return &Snapshot{
		owner:   rt.M,
		cur:     rt.cur,
		done:    rt.done,
		vars:    cloneValues(rt.vars),
		sigVals: cloneValues(rt.sigVals),
	}
}

// Restore rewinds the runtime to a snapshot taken from a runtime over
// the same Machine; a snapshot of a different machine (even a
// minimized variant of this one) is rejected, since its control states
// belong to a foreign automaton.
func (rt *Runtime) Restore(s *Snapshot) error {
	if s.owner != rt.M {
		return fmt.Errorf("snapshot belongs to a different machine (%s)", s.owner.Name)
	}
	rt.cur = s.cur
	rt.done = s.done
	rt.vars = cloneValues(s.vars)
	rt.sigVals = cloneValues(s.sigVals)
	return nil
}

// Reset returns the runtime to the initial state with zeroed stores.
func (rt *Runtime) Reset() {
	rt.cur = rt.M.Initial
	rt.done = false
	rt.units = 0
	for v := range rt.vars {
		rt.vars[v] = cval.New(v.Type)
	}
	for s := range rt.sigVals {
		rt.sigVals[s] = cval.New(s.Type)
	}
}

// cloneValues deep-copies a value store.
func cloneValues[K comparable](src map[K]cval.Value) map[K]cval.Value {
	out := make(map[K]cval.Value, len(src))
	for k, v := range src {
		out[k] = v.Clone()
	}
	return out
}

// StepResult reports one reaction of the runtime.
type StepResult struct {
	// Emitted lists all emitted signals in order (locals included).
	Emitted []*kernel.Signal
	// Outputs holds emitted output-class signals and their values.
	Outputs map[*kernel.Signal]cval.Value
	// Terminated reports whether the machine finished.
	Terminated bool
	// Units is the data work charged, and Depth the number of decision
	// tree nodes visited (the cost model prices both).
	Units int
	Depth int
}

// Terminated reports whether the machine has finished.
func (rt *Runtime) Terminated() bool { return rt.done }

// CurrentState returns the current control state.
func (rt *Runtime) CurrentState() *State { return rt.cur }

// SetState forces the control state (testing hook).
func (rt *Runtime) SetState(s *State) { rt.cur = s }

// Step runs one reaction with the given present inputs (values for
// valued inputs).
func (rt *Runtime) Step(inputs map[*kernel.Signal]cval.Value) (*StepResult, error) {
	res := &StepResult{Outputs: make(map[*kernel.Signal]cval.Value)}
	if rt.done || rt.cur == nil {
		res.Terminated = true
		return res, nil
	}
	rt.units = 0
	rt.present = make(map[*kernel.Signal]bool, len(inputs))
	for sig, val := range inputs {
		rt.present[sig] = true
		if val.IsValid() {
			slot, ok := rt.sigVals[sig]
			if !ok {
				return nil, fmt.Errorf("input %s carries no value slot", sig.Name)
			}
			if err := slot.Assign(val); err != nil {
				return nil, fmt.Errorf("input %s: %w", sig.Name, err)
			}
		}
	}

	ev := dataexec.New(rt.M.Info, rt)
	n := rt.cur.Root
	for {
		res.Depth++
		switch node := n.(type) {
		case nil:
			return nil, fmt.Errorf("state s%d: nil decision-tree node", rt.cur.ID)
		case *Leaf:
			rt.cur = node.To
			if node.Terminal {
				rt.done = true
				res.Terminated = true
			}
			res.Units = rt.units
			return res, nil
		case *InputBranch:
			rt.units += 2 // test + branch
			if rt.present[node.Sig] {
				n = node.Then
			} else {
				n = node.Else
			}
		case *DataBranch:
			v, err := ev.EvalBool(node.Expr)
			if err != nil {
				return nil, fmt.Errorf("state s%d: guard %s: %w", rt.cur.ID, node.Expr, err)
			}
			rt.units += 2
			if v {
				n = node.Then
			} else {
				n = node.Else
			}
		case *ActNode:
			if err := rt.execAction(ev, node.Act, res); err != nil {
				return nil, fmt.Errorf("state s%d: action %s: %w", rt.cur.ID, node.Act, err)
			}
			n = node.Next
		}
	}
}

func (rt *Runtime) execAction(ev *dataexec.Evaluator, a Action, res *StepResult) error {
	if rt.Trace != nil {
		rt.Trace(a)
	}
	switch a.Kind {
	case ActEmit:
		rt.units += 3
		if a.Value != nil {
			val, err := ev.Eval(*a.Value)
			if err != nil {
				return err
			}
			slot, ok := rt.sigVals[a.Sig]
			if !ok {
				return fmt.Errorf("emit %s: no value slot", a.Sig.Name)
			}
			if err := slot.Assign(val); err != nil {
				return err
			}
		}
		rt.present[a.Sig] = true
		res.Emitted = append(res.Emitted, a.Sig)
		if a.Sig.Class == kernel.Output {
			if v, ok := rt.sigVals[a.Sig]; ok {
				res.Outputs[a.Sig] = v.Clone()
			} else {
				res.Outputs[a.Sig] = cval.Value{}
			}
		}
	case ActAssign:
		return ev.ExecAssign(a.LHS, a.RHS)
	case ActEval:
		return ev.ExecEval(a.X)
	case ActCall:
		return ev.ExecDataFunc(a.F)
	}
	return nil
}
