package efsm

import (
	"fmt"
	"sort"
	"strings"
)

// Minimize merges bisimulation-equivalent states by partition
// refinement: two states are equivalent when their decision trees are
// isomorphic with successor states compared by equivalence class. It
// returns a new machine (the input is left untouched) and the number
// of merged states. This is the paper's "logic synthesis and
// optimization can be applied to reduce size" at the automaton level.
func Minimize(m *Machine) (*Machine, int) {
	if len(m.States) == 0 {
		return m, 0
	}
	// class[i] is state i's current equivalence class. Each round
	// re-signs every state under the current classes and re-partitions
	// by signature. The signature is prefixed with the state's current
	// class, so a round can only ever split blocks, never merge them:
	// the class count is monotone non-decreasing and bounded by the
	// state count, which makes termination immediate. (Without the
	// prefix, mutually-referring states can swap labels forever — the
	// signatures chase the relabeling and the loop never settles.)
	class := make(map[*State]int, len(m.States))
	for _, s := range m.States {
		class[s] = 0
	}
	for blocks := 1; ; {
		sigs := make(map[*State]string, len(m.States))
		for _, s := range m.States {
			sigs[s] = fmt.Sprintf("%09d|%s", class[s], treeSignature(s.Root, class))
		}
		// Assign new class ids by signature.
		bySig := make(map[string]int)
		var order []string
		for _, s := range m.States {
			if _, ok := bySig[sigs[s]]; !ok {
				bySig[sigs[s]] = 0
				order = append(order, sigs[s])
			}
		}
		if len(order) == blocks {
			// No block split this round; the partition is stable and
			// the existing labels still describe it.
			break
		}
		blocks = len(order)
		sort.Strings(order)
		for i, sg := range order {
			bySig[sg] = i
		}
		for _, s := range m.States {
			class[s] = bySig[sigs[s]]
		}
	}

	// Build the quotient machine: one representative per class.
	repByClass := make(map[int]*State)
	for _, s := range m.States {
		if _, ok := repByClass[class[s]]; !ok {
			repByClass[class[s]] = s
		}
	}
	if len(repByClass) == len(m.States) {
		return m, 0
	}
	out := &Machine{
		Name:    m.Name,
		Mod:     m.Mod,
		Info:    m.Info,
		Inputs:  m.Inputs,
		Outputs: m.Outputs,
	}
	newState := make(map[int]*State, len(repByClass))
	classes := make([]int, 0, len(repByClass))
	for c := range repByClass {
		classes = append(classes, c)
	}
	sort.Ints(classes)
	for i, c := range classes {
		ns := &State{ID: i, Key: repByClass[c].Key}
		newState[c] = ns
		out.States = append(out.States, ns)
	}
	for _, c := range classes {
		newState[c].Root = rebuildTree(repByClass[c].Root, class, newState)
	}
	out.Initial = newState[class[m.Initial]]
	return out, len(m.States) - len(out.States)
}

func rebuildTree(n Node, class map[*State]int, newState map[int]*State) Node {
	switch n := n.(type) {
	case nil:
		return nil
	case *ActNode:
		return &ActNode{Act: n.Act, Next: rebuildTree(n.Next, class, newState)}
	case *InputBranch:
		return &InputBranch{
			Sig:  n.Sig,
			Then: rebuildTree(n.Then, class, newState),
			Else: rebuildTree(n.Else, class, newState),
		}
	case *DataBranch:
		return &DataBranch{
			Expr: n.Expr,
			Then: rebuildTree(n.Then, class, newState),
			Else: rebuildTree(n.Else, class, newState),
		}
	case *Leaf:
		if n.To == nil {
			return &Leaf{Terminal: n.Terminal}
		}
		return &Leaf{To: newState[class[n.To]], Terminal: n.Terminal}
	}
	return nil
}

// treeSignature canonically serializes a tree with successor states
// replaced by their current class.
func treeSignature(n Node, class map[*State]int) string {
	var b strings.Builder
	var walk func(n Node)
	walk = func(n Node) {
		switch n := n.(type) {
		case nil:
			b.WriteString("_")
		case *ActNode:
			fmt.Fprintf(&b, "A(%s;", actionKey(n.Act))
			walk(n.Next)
			b.WriteString(")")
		case *InputBranch:
			fmt.Fprintf(&b, "I(%s?", n.Sig.Name)
			walk(n.Then)
			b.WriteString(":")
			walk(n.Else)
			b.WriteString(")")
		case *DataBranch:
			fmt.Fprintf(&b, "D(%s@%s?", n.Expr.String(), n.Expr.B.Label)
			walk(n.Then)
			b.WriteString(":")
			walk(n.Else)
			b.WriteString(")")
		case *Leaf:
			if n.To == nil {
				fmt.Fprintf(&b, "L(end,%v)", n.Terminal)
			} else {
				fmt.Fprintf(&b, "L(%d,%v)", class[n.To], n.Terminal)
			}
		}
	}
	walk(n)
	return b.String()
}

func actionKey(a Action) string {
	switch a.Kind {
	case ActEmit:
		if a.Value != nil {
			return fmt.Sprintf("emit:%s:%s@%s", a.Sig.Name, a.Value.String(), a.Value.B.Label)
		}
		return "emit:" + a.Sig.Name
	case ActAssign:
		return fmt.Sprintf("asg:%s:%s@%s", a.LHS.String(), a.RHS.String(), a.LHS.B.Label)
	case ActEval:
		return fmt.Sprintf("ev:%s@%s", a.X.String(), a.X.B.Label)
	case ActCall:
		return "call:" + a.F.Name
	}
	return "?"
}
