// Package efsm defines the extended finite state machine produced by
// the ECL compiler (internal/compile) from the Esterel kernel IR, and
// a runtime that executes it.
//
// Each control state owns a decision tree — the nested case analysis
// an Esterel automaton compiler would emit as C. Interior nodes test
// input presence or a C data condition, action nodes perform emits,
// assignments, and data-function calls in their recorded order, and
// leaves name the successor state. Interleaving actions and tests in
// one tree is what makes the machine an *extended* FSM: data guards
// are evaluated exactly where the original program evaluated them,
// after any earlier actions of the same reaction.
package efsm

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/kernel"
	"repro/internal/sem"
)

// ActionKind discriminates transition actions.
type ActionKind int

// Action kinds.
const (
	// ActEmit emits a signal (optionally valued).
	ActEmit ActionKind = iota
	// ActAssign performs an inline assignment.
	ActAssign
	// ActEval evaluates an expression for side effects.
	ActEval
	// ActCall invokes an extracted data function.
	ActCall
)

// Action is one executed step of a reaction.
type Action struct {
	Kind  ActionKind
	Sig   *kernel.Signal // ActEmit
	Value *kernel.Expr   // ActEmit (nil for pure)
	LHS   kernel.Expr    // ActAssign
	RHS   kernel.Expr    // ActAssign
	X     kernel.Expr    // ActEval
	F     *kernel.DataFunc
}

// String renders the action for DOT labels and debugging.
func (a Action) String() string {
	switch a.Kind {
	case ActEmit:
		if a.Value != nil {
			return fmt.Sprintf("emit %s(%s)", a.Sig.Name, a.Value)
		}
		return "emit " + a.Sig.Name
	case ActAssign:
		return fmt.Sprintf("%s = %s", a.LHS, a.RHS)
	case ActEval:
		return a.X.String()
	case ActCall:
		return a.F.Name + "()"
	}
	return "?"
}

// Node is a decision-tree node.
type Node interface{ efsmNode() }

// ActNode performs an action then continues.
type ActNode struct {
	Act  Action
	Next Node
}

// InputBranch tests an input signal's presence.
type InputBranch struct {
	Sig  *kernel.Signal
	Then Node // present
	Else Node // absent
}

// DataBranch tests a C data condition (evaluated at this point in the
// reaction, after earlier actions).
type DataBranch struct {
	Expr kernel.Expr
	Then Node
	Else Node
}

// Leaf ends the reaction, naming the successor state.
type Leaf struct {
	To       *State
	Terminal bool // the program terminates after this reaction
}

func (*ActNode) efsmNode()     {}
func (*InputBranch) efsmNode() {}
func (*DataBranch) efsmNode()  {}
func (*Leaf) efsmNode()        {}

// State is one EFSM control state.
type State struct {
	ID   int
	Key  string // canonical control-residue key from the interpreter
	Root Node   // nil only while under construction
}

// Machine is a compiled EFSM.
type Machine struct {
	Name    string
	Mod     *kernel.Module
	Info    *sem.Info
	Inputs  []*kernel.Signal
	Outputs []*kernel.Signal
	States  []*State
	Initial *State
}

// Stats summarizes machine size; the cost model prices these.
type Stats struct {
	States       int
	TreeNodes    int
	Branches     int // input + data branches
	DataBranches int
	Actions      int
	Leaves       int // transitions
	MaxDepth     int
}

// CollectStats walks every state tree and tallies sizes.
func (m *Machine) CollectStats() Stats {
	var st Stats
	st.States = len(m.States)
	for _, s := range m.States {
		d := walkStats(s.Root, &st, 0)
		if d > st.MaxDepth {
			st.MaxDepth = d
		}
	}
	return st
}

func walkStats(n Node, st *Stats, depth int) int {
	if n == nil {
		return depth
	}
	st.TreeNodes++
	switch n := n.(type) {
	case *ActNode:
		st.Actions++
		return walkStats(n.Next, st, depth+1)
	case *InputBranch:
		st.Branches++
		d1 := walkStats(n.Then, st, depth+1)
		d2 := walkStats(n.Else, st, depth+1)
		if d2 > d1 {
			return d2
		}
		return d1
	case *DataBranch:
		st.Branches++
		st.DataBranches++
		d1 := walkStats(n.Then, st, depth+1)
		d2 := walkStats(n.Else, st, depth+1)
		if d2 > d1 {
			return d2
		}
		return d1
	case *Leaf:
		st.Leaves++
		return depth
	}
	return depth
}

// Transition is a flattened view of one root-to-leaf path.
type Transition struct {
	From    *State
	To      *State
	Inputs  map[*kernel.Signal]bool // tested input presence along the path
	Data    []DataCond
	Actions []Action
	Term    bool
}

// DataCond is one data condition with its required outcome.
type DataCond struct {
	Expr kernel.Expr
	Want bool
}

// Transitions enumerates all root-to-leaf paths of a state.
func (m *Machine) Transitions(s *State) []*Transition {
	var out []*Transition
	var walk func(n Node, t *Transition)
	walk = func(n Node, t *Transition) {
		switch n := n.(type) {
		case nil:
			return
		case *ActNode:
			tt := *t
			tt.Actions = append(append([]Action{}, t.Actions...), n.Act)
			walk(n.Next, &tt)
		case *InputBranch:
			then := cloneTransition(t)
			then.Inputs[n.Sig] = true
			walk(n.Then, then)
			els := cloneTransition(t)
			els.Inputs[n.Sig] = false
			walk(n.Else, els)
		case *DataBranch:
			then := cloneTransition(t)
			then.Data = append(then.Data, DataCond{n.Expr, true})
			walk(n.Then, then)
			els := cloneTransition(t)
			els.Data = append(els.Data, DataCond{n.Expr, false})
			walk(n.Else, els)
		case *Leaf:
			tt := cloneTransition(t)
			tt.To = n.To
			tt.Term = n.Terminal
			out = append(out, tt)
		}
	}
	walk(s.Root, &Transition{From: s, Inputs: map[*kernel.Signal]bool{}})
	return out
}

func cloneTransition(t *Transition) *Transition {
	c := &Transition{
		From:    t.From,
		To:      t.To,
		Inputs:  make(map[*kernel.Signal]bool, len(t.Inputs)),
		Data:    append([]DataCond{}, t.Data...),
		Actions: append([]Action{}, t.Actions...),
		Term:    t.Term,
	}
	for k, v := range t.Inputs {
		c.Inputs[k] = v
	}
	return c
}

// GuardString renders a transition guard for display.
func (t *Transition) GuardString() string {
	var parts []string
	var names []string
	for sig := range t.Inputs {
		names = append(names, sig.Name)
	}
	sort.Strings(names)
	for _, name := range names {
		for sig, want := range t.Inputs {
			if sig.Name == name {
				if want {
					parts = append(parts, name)
				} else {
					parts = append(parts, "!"+name)
				}
			}
		}
	}
	for _, dc := range t.Data {
		s := dc.Expr.String()
		if !dc.Want {
			s = "!(" + s + ")"
		}
		parts = append(parts, s)
	}
	if len(parts) == 0 {
		return "true"
	}
	return strings.Join(parts, " & ")
}

// WriteDot renders the machine as Graphviz DOT (one edge per leaf).
func (m *Machine) WriteDot(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=LR;\n", m.Name)
	fmt.Fprintf(&b, "  init [shape=point];\n")
	if m.Initial != nil {
		fmt.Fprintf(&b, "  init -> s%d;\n", m.Initial.ID)
	}
	for _, s := range m.States {
		fmt.Fprintf(&b, "  s%d [shape=circle,label=\"s%d\"];\n", s.ID, s.ID)
		for _, t := range m.Transitions(s) {
			label := t.GuardString()
			if len(t.Actions) > 0 {
				var acts []string
				for _, a := range t.Actions {
					if a.Kind == ActEmit {
						acts = append(acts, a.String())
					}
				}
				if len(acts) > 0 {
					label += " / " + strings.Join(acts, ", ")
				}
			}
			to := "end"
			if t.To != nil {
				to = fmt.Sprintf("s%d", t.To.ID)
			}
			fmt.Fprintf(&b, "  s%d -> %s [label=%q];\n", s.ID, to, label)
		}
	}
	fmt.Fprintf(&b, "  end [shape=doublecircle,label=\"\"];\n}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// Dot returns the DOT rendering as a string.
func (m *Machine) Dot() string {
	var b strings.Builder
	_ = m.WriteDot(&b)
	return b.String()
}
