package efsm

import (
	"fmt"

	"repro/internal/cval"
	"repro/internal/kernel"
)

// PortableSnapshot is the pointer-free form of a runtime Snapshot: the
// control state by its ID, variables and signal values by name with
// raw big-endian bytes. A runtime over the same compiled Machine (even
// in a different process, as long as the machine was compiled from the
// same source) rebinds the names to its own identities and continues
// exactly where the snapshot left off.
type PortableSnapshot struct {
	// StateID is the current control state's Machine-assigned ID.
	StateID int
	// Done mirrors the runtime's termination flag.
	Done bool
	// Vars maps variable names to their raw value bytes.
	Vars map[string][]byte
	// Sigs maps valued-signal names to their stored value bytes.
	Sigs map[string][]byte
}

// Portable converts a snapshot to its name-keyed form.
func (s *Snapshot) Portable() *PortableSnapshot {
	p := &PortableSnapshot{
		StateID: s.cur.ID,
		Done:    s.done,
		Vars:    make(map[string][]byte, len(s.vars)),
		Sigs:    make(map[string][]byte, len(s.sigVals)),
	}
	for v, val := range s.vars {
		p.Vars[v.Name] = append([]byte(nil), val.B...)
	}
	for sig, val := range s.sigVals {
		p.Sigs[sig.Name] = append([]byte(nil), val.B...)
	}
	return p
}

// SnapshotFromPortable rebinds a portable snapshot's names to this
// runtime's machine, validating that the state ID exists and that
// every store the runtime owns is covered with bytes of the declared
// size. The result restores into this runtime (or any runtime over the
// same Machine).
func (rt *Runtime) SnapshotFromPortable(p *PortableSnapshot) (*Snapshot, error) {
	var cur *State
	for _, st := range rt.M.States {
		if st.ID == p.StateID {
			cur = st
			break
		}
	}
	if cur == nil {
		return nil, fmt.Errorf("efsm: portable snapshot: no state %d in machine %s", p.StateID, rt.M.Name)
	}
	s := &Snapshot{
		owner:   rt.M,
		cur:     cur,
		done:    p.Done,
		vars:    make(map[*kernel.Var]cval.Value, len(rt.vars)),
		sigVals: make(map[*kernel.Signal]cval.Value, len(rt.sigVals)),
	}
	for v := range rt.vars {
		b, ok := p.Vars[v.Name]
		if !ok {
			return nil, fmt.Errorf("efsm: portable snapshot: no value for variable %s", v.Name)
		}
		if len(b) != v.Type.Size() {
			return nil, fmt.Errorf("efsm: portable snapshot: variable %s: %d bytes for %s (want %d)",
				v.Name, len(b), v.Type, v.Type.Size())
		}
		s.vars[v] = cval.Value{Type: v.Type, B: append([]byte(nil), b...)}
	}
	for sig := range rt.sigVals {
		b, ok := p.Sigs[sig.Name]
		if !ok {
			return nil, fmt.Errorf("efsm: portable snapshot: no value for signal %s", sig.Name)
		}
		if len(b) != sig.Type.Size() {
			return nil, fmt.Errorf("efsm: portable snapshot: signal %s: %d bytes for %s (want %d)",
				sig.Name, len(b), sig.Type, sig.Type.Size())
		}
		s.sigVals[sig] = cval.Value{Type: sig.Type, B: append([]byte(nil), b...)}
	}
	return s, nil
}
