package efsm

import (
	"strings"
	"testing"

	"repro/internal/cval"
	"repro/internal/kernel"
)

// tinyMachine builds a two-state machine by hand:
//
//	s0: if A { emit O; -> s1 } else { -> s0 }
//	s1: -> s0 (terminal when B)
func tinyMachine() (*Machine, *kernel.Signal, *kernel.Signal, *kernel.Signal) {
	a := &kernel.Signal{Name: "A", Class: kernel.Input, Pure: true}
	b := &kernel.Signal{Name: "B", Class: kernel.Input, Pure: true}
	o := &kernel.Signal{Name: "O", Class: kernel.Output, Pure: true}
	mod := &kernel.Module{
		Name:    "tiny",
		Inputs:  []*kernel.Signal{a, b},
		Outputs: []*kernel.Signal{o},
		Body:    &kernel.Halt{},
	}
	mod.Number()
	s0 := &State{ID: 0, Key: "s0"}
	s1 := &State{ID: 1, Key: "s1"}
	s0.Root = &InputBranch{
		Sig: a,
		Then: &ActNode{
			Act:  Action{Kind: ActEmit, Sig: o},
			Next: &Leaf{To: s1},
		},
		Else: &Leaf{To: s0},
	}
	s1.Root = &InputBranch{
		Sig:  b,
		Then: &Leaf{Terminal: true},
		Else: &Leaf{To: s0},
	}
	m := &Machine{
		Name:    "tiny",
		Mod:     mod,
		Inputs:  mod.Inputs,
		Outputs: mod.Outputs,
		States:  []*State{s0, s1},
		Initial: s0,
	}
	return m, a, b, o
}

func TestRuntimeStep(t *testing.T) {
	m, a, b, _ := tinyMachine()
	rt := NewRuntime(m)
	r, err := rt.Step(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Outputs) != 0 || rt.CurrentState().ID != 0 {
		t.Fatal("idle step misbehaved")
	}
	r, err = rt.Step(map[*kernel.Signal]cval.Value{a: {}})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Outputs) != 1 || rt.CurrentState().ID != 1 {
		t.Fatalf("A step: outputs=%d state=%d", len(r.Outputs), rt.CurrentState().ID)
	}
	r, err = rt.Step(map[*kernel.Signal]cval.Value{b: {}})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Terminated || !rt.Terminated() {
		t.Fatal("termination missed")
	}
	r, err = rt.Step(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Terminated {
		t.Fatal("terminated runtime must stay terminated")
	}
}

func TestTransitionsFlatten(t *testing.T) {
	m, a, _, _ := tinyMachine()
	ts := m.Transitions(m.States[0])
	if len(ts) != 2 {
		t.Fatalf("transitions = %d, want 2", len(ts))
	}
	var withA *Transition
	for _, tr := range ts {
		if tr.Inputs[a] {
			withA = tr
		}
	}
	if withA == nil || len(withA.Actions) != 1 || withA.To.ID != 1 {
		t.Fatalf("A-transition wrong: %+v", withA)
	}
	if g := withA.GuardString(); g != "A" {
		t.Errorf("guard = %q", g)
	}
}

func TestStatsAndDepth(t *testing.T) {
	m, _, _, _ := tinyMachine()
	st := m.CollectStats()
	if st.States != 2 || st.Branches != 2 || st.Actions != 1 || st.Leaves != 4 {
		t.Errorf("stats: %+v", st)
	}
	if st.MaxDepth < 2 {
		t.Errorf("depth = %d", st.MaxDepth)
	}
}

func TestMinimizeMergesDuplicates(t *testing.T) {
	// Two states with identical trees must merge.
	m, a, _, o := tinyMachine()
	dup := &State{ID: 2, Key: "dup"}
	dup.Root = m.States[0].Root // structurally identical by sharing
	// Rebuild as a separate structure to avoid pointer aliasing.
	dup.Root = &InputBranch{
		Sig: a,
		Then: &ActNode{
			Act:  Action{Kind: ActEmit, Sig: o},
			Next: &Leaf{To: m.States[1]},
		},
		Else: &Leaf{To: dup},
	}
	// dup's Else goes to itself while s0's Else goes to s0; they are
	// bisimilar, so minimization should merge them.
	m.States = append(m.States, dup)
	min, merged := Minimize(m)
	if merged != 1 {
		t.Fatalf("merged = %d, want 1", merged)
	}
	if len(min.States) != 2 {
		t.Fatalf("states = %d, want 2", len(min.States))
	}
}

func TestMinimizeKeepsDistinct(t *testing.T) {
	m, _, _, _ := tinyMachine()
	min, merged := Minimize(m)
	if merged != 0 || len(min.States) != 2 {
		t.Fatalf("distinct states merged: %d", merged)
	}
}

func TestDotRendering(t *testing.T) {
	m, _, _, _ := tinyMachine()
	dot := m.Dot()
	for _, want := range []string{"digraph \"tiny\"", "init -> s0", "emit O", "s0 -> s1"} {
		if !strings.Contains(dot, want) {
			t.Errorf("dot missing %q\n%s", want, dot)
		}
	}
}

func TestActionString(t *testing.T) {
	o := &kernel.Signal{Name: "O", Pure: true}
	if got := (Action{Kind: ActEmit, Sig: o}).String(); got != "emit O" {
		t.Errorf("got %q", got)
	}
	f := &kernel.DataFunc{Name: "f1"}
	if got := (Action{Kind: ActCall, F: f}).String(); got != "f1()" {
		t.Errorf("got %q", got)
	}
}
