package hdl

import (
	"strings"
	"testing"

	"repro/internal/circuit"
	"repro/internal/compile"
	"repro/internal/lower"
	"repro/internal/paperex"
	"repro/internal/parser"
	"repro/internal/pp"
	"repro/internal/sem"
	"repro/internal/source"
)

func abroCircuit(t *testing.T) *circuit.Circuit {
	t.Helper()
	var diags source.DiagList
	expanded := pp.New(&diags, nil).Expand(source.NewFile("t.ecl", paperex.ABRO))
	f := parser.ParseFile(expanded, &diags)
	info := sem.Analyze(f, &diags)
	if diags.HasErrors() {
		t.Fatalf("front end: %s", diags.String())
	}
	res, err := lower.Lower(info, "abro", lower.MaximalReactive, &diags)
	if err != nil {
		t.Fatal(err)
	}
	m, err := compile.Compile(res)
	if err != nil {
		t.Fatal(err)
	}
	c, err := circuit.FromEFSM(m)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestVerilogOutput(t *testing.T) {
	v := VerilogString(abroCircuit(t))
	for _, want := range []string{
		"module abro(clk, rst, A, B, R, O);",
		"input clk, rst;",
		"output O;",
		"always @(posedge clk or posedge rst)",
		"assign O = ",
		"endmodule",
	} {
		if !strings.Contains(v, want) {
			t.Errorf("Verilog missing %q\n%s", want, v)
		}
	}
	// Every wire used must be declared.
	for _, line := range strings.Split(v, "\n") {
		if strings.Contains(line, "assign n") {
			name := strings.Fields(strings.TrimSpace(line))[1]
			if !strings.Contains(v, "wire "+name+";") {
				t.Errorf("wire %s used but not declared", name)
			}
		}
	}
}

func TestVHDLOutput(t *testing.T) {
	v := VHDLString(abroCircuit(t))
	for _, want := range []string{
		"entity abro is",
		"clk : in std_logic",
		"O : out std_logic",
		"architecture rtl of abro is",
		"rising_edge(clk)",
		"end rtl;",
	} {
		if !strings.Contains(v, want) {
			t.Errorf("VHDL missing %q", want)
		}
	}
}

func TestSanitizeHDL(t *testing.T) {
	if got := sanitize("toplevel.crc_ok"); got != "toplevel_crc_ok" {
		t.Errorf("sanitize = %q", got)
	}
}
