package httpjsonlint

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func check(t *testing.T, src string) []Finding {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "sample.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse sample: %v", err)
	}
	return CheckFile(fset, file)
}

func TestFlagsRawEncoderOnResponseWriter(t *testing.T) {
	findings := check(t, `
package p

import (
	"encoding/json"
	"net/http"
)

func handler(w http.ResponseWriter, r *http.Request) {
	json.NewEncoder(w).Encode(map[string]int{"a": 1})
}
`)
	if len(findings) != 1 || !strings.Contains(findings[0].Message, "json.NewEncoder over http.ResponseWriter") {
		t.Fatalf("findings = %v, want one raw-encoder finding", findings)
	}
}

func TestFlagsBufferedEncoderAndUncheckedEncode(t *testing.T) {
	// The exact shape the simd daemon used before httpjson.Stream:
	// encoder over a bufio wrapper of the ResponseWriter, bare Encode.
	findings := check(t, `
package p

import (
	"bufio"
	"encoding/json"
	"net/http"
)

func step(w http.ResponseWriter, r *http.Request) {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	enc.Encode("event")
	bw.Flush()
}
`)
	if len(findings) != 2 {
		t.Fatalf("findings = %v, want raw-encoder + unchecked-Encode", findings)
	}
	if !strings.Contains(findings[0].Message, "json.NewEncoder over http.ResponseWriter") {
		t.Errorf("first finding = %v, want raw-encoder", findings[0])
	}
	if !strings.Contains(findings[1].Message, "Encode error discarded") {
		t.Errorf("second finding = %v, want unchecked-Encode", findings[1])
	}
}

func TestFlagsClosureHandler(t *testing.T) {
	findings := check(t, `
package p

import (
	"encoding/json"
	"net/http"
)

func register(mux *http.ServeMux) {
	mux.HandleFunc("/x", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode("hi")
	})
}
`)
	if len(findings) != 1 {
		t.Fatalf("findings = %v, want one finding inside the closure", findings)
	}
}

func TestIgnoresPlainWriters(t *testing.T) {
	// Encoders over io.Writer / bytes.Buffer (traces, artifacts, request
	// bodies) are fine — even with the error checked or not.
	findings := check(t, `
package p

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
)

func writeTrace(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode("trace")
}

func buildBody(w http.ResponseWriter, r *http.Request) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.Encode("request")
	io.Copy(w, &buf)
}
`)
	if len(findings) != 0 {
		t.Fatalf("findings = %v, want none for plain writers", findings)
	}
}

func TestIgnoresFilesWithoutBothImports(t *testing.T) {
	findings := check(t, `
package p

import "encoding/json"

func encode(v any) ([]byte, error) { return json.Marshal(v) }
`)
	if len(findings) != 0 {
		t.Fatalf("findings = %v, want none without net/http", findings)
	}
}

// TestRepoClean is the dogfood gate: the repository itself must lint
// clean (internal/httpjson being the one exempt package).
func TestRepoClean(t *testing.T) {
	findings, err := CheckDir("../../..")
	if err != nil {
		t.Fatalf("CheckDir: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}
