// Package httpjsonlint is a repo-specific Go linter enforcing one
// invariant: HTTP handlers encode JSON responses through
// internal/httpjson (Write for single values, NewStream for NDJSON),
// never with a raw json.NewEncoder over the http.ResponseWriter. The
// helper sets Content-Type before the status commits and logs encode
// failures; a raw encoder silently drops both, which is exactly the
// bug class the helper exists to kill.
//
// The checker is purely syntactic (stdlib go/ast, no type checking):
// inside any function with an http.ResponseWriter parameter it taints
// the writer parameters, propagates taint through wrapping calls
// (bufio.NewWriter(w) and friends), and reports
//
//   - json.NewEncoder(tainted) — use httpjson instead, and
//   - a bare enc.Encode(v) statement on such an encoder — the error
//     is discarded.
//
// Encoders over ordinary io.Writers (trace files, buffers, stdout) are
// out of scope. internal/httpjson itself is exempt: it is the one
// place allowed to hold the raw encoder.
package httpjsonlint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strconv"
	"strings"
)

// Finding is one linter diagnostic.
type Finding struct {
	Pos     token.Position
	Message string
}

// String renders the finding in the usual file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Message)
}

// exemptDir is the one package allowed to hold raw encoders over an
// http.ResponseWriter.
const exemptDir = "internal/httpjson"

// CheckDir lints every .go file under root (skipping testdata
// directories and the exempt internal/httpjson package) and returns
// the findings in walk order.
func CheckDir(root string) ([]Finding, error) {
	var findings []Finding
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || strings.HasPrefix(name, ".") && name != "." && name != ".." {
				return filepath.SkipDir
			}
			if rel, err := filepath.Rel(root, path); err == nil && filepath.ToSlash(rel) == exemptDir {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		file, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
		if err != nil {
			return fmt.Errorf("httpjsonlint: %v", err)
		}
		findings = append(findings, CheckFile(fset, file)...)
		return nil
	})
	return findings, err
}

// CheckFile lints one parsed file.
func CheckFile(fset *token.FileSet, file *ast.File) []Finding {
	jsonName := importName(file, "encoding/json")
	httpName := importName(file, "net/http")
	if jsonName == "" || httpName == "" {
		return nil // cannot build the pattern without both imports
	}
	var findings []Finding
	for _, decl := range file.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if ok && fn.Body != nil {
			findings = append(findings, checkFunc(fset, jsonName, httpName, fn)...)
		}
	}
	return findings
}

// importName resolves the local name a file imports a package path
// under ("" when not imported; "_" and "." imports are ignored).
func importName(file *ast.File, path string) string {
	for _, imp := range file.Imports {
		p, err := strconv.Unquote(imp.Path.Value)
		if err != nil || p != path {
			continue
		}
		if imp.Name != nil {
			if imp.Name.Name == "_" || imp.Name.Name == "." {
				return ""
			}
			return imp.Name.Name
		}
		return path[strings.LastIndex(path, "/")+1:]
	}
	return ""
}

// checkFunc lints one top-level function, nested closures included.
func checkFunc(fset *token.FileSet, jsonName, httpName string, fn *ast.FuncDecl) []Finding {
	// Taint every http.ResponseWriter parameter, of the function itself
	// and of any closures inside it (a handler registered inline).
	tainted := make(map[string]bool)
	addRW := func(ft *ast.FuncType) {
		if ft.Params == nil {
			return
		}
		for _, field := range ft.Params.List {
			if !isRWType(field.Type, httpName) {
				continue
			}
			for _, name := range field.Names {
				tainted[name.Name] = true
			}
		}
	}
	addRW(fn.Type)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			addRW(lit.Type)
		}
		return true
	})
	if len(tainted) == 0 {
		return nil
	}

	var findings []Finding
	encoders := make(map[string]bool) // vars holding json.NewEncoder(tainted)
	report := func(pos token.Pos, format string, args ...any) {
		findings = append(findings, Finding{
			Pos:     fset.Position(pos),
			Message: fmt.Sprintf(format, args...),
		})
	}
	// ast.Inspect visits in source order, which is taint-before-use for
	// the straight-line handler code this rule targets.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isJSONNewEncoder(n, jsonName) && callArgTainted(n, tainted) != "" {
				report(n.Pos(), "json.NewEncoder over http.ResponseWriter %q: respond via internal/httpjson (Write, or NewStream for NDJSON)", callArgTainted(n, tainted))
			}
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				lhs, ok := n.Lhs[i].(*ast.Ident)
				if !ok || lhs.Name == "_" {
					continue
				}
				call, ok := rhs.(*ast.CallExpr)
				if !ok {
					continue
				}
				if isJSONNewEncoder(call, jsonName) {
					if callArgTainted(call, tainted) != "" {
						encoders[lhs.Name] = true
					}
					continue
				}
				// A wrapper over a tainted writer (bufio.NewWriter(w),
				// gzip.NewWriter(w), ...) is itself tainted.
				if callArgTainted(call, tainted) != "" {
					tainted[lhs.Name] = true
				}
			}
		case *ast.ExprStmt:
			// A bare enc.Encode(v) statement discards the error.
			call, ok := n.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Encode" {
				return true
			}
			if recv, ok := sel.X.(*ast.Ident); ok && encoders[recv.Name] {
				report(n.Pos(), "%s.Encode error discarded on an http.ResponseWriter stream: respond via internal/httpjson", recv.Name)
			}
		}
		return true
	})
	return findings
}

// isRWType reports whether a parameter type is http.ResponseWriter.
func isRWType(t ast.Expr, httpName string) bool {
	sel, ok := t.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "ResponseWriter" {
		return false
	}
	pkg, ok := sel.X.(*ast.Ident)
	return ok && pkg.Name == httpName
}

// isJSONNewEncoder reports whether a call is json.NewEncoder(...).
func isJSONNewEncoder(call *ast.CallExpr, jsonName string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "NewEncoder" {
		return false
	}
	pkg, ok := sel.X.(*ast.Ident)
	return ok && pkg.Name == jsonName
}

// callArgTainted returns the name of the first tainted identifier
// argument ("" when none), looking through unary &x.
func callArgTainted(call *ast.CallExpr, tainted map[string]bool) string {
	for _, arg := range call.Args {
		if u, ok := arg.(*ast.UnaryExpr); ok {
			arg = u.X
		}
		if id, ok := arg.(*ast.Ident); ok && tainted[id.Name] {
			return id.Name
		}
	}
	return ""
}
