package vetcoverage

import (
	"os"
	"path/filepath"
	"testing"
)

// TestRepoCoverage dogfoods the checker over the repo's own seeded vet
// corpus: every shipped analyzer rule must have its trigger + golden.
func TestRepoCoverage(t *testing.T) {
	dir := filepath.Join("..", "..", "analyze", "testdata", "vet")
	findings, err := CheckDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Error(f)
	}
}

// TestDetectsGaps builds a synthetic corpus with every violation kind:
// a rule with no seed, a seed with no golden, and a seed naming an
// unshipped rule.
func TestDetectsGaps(t *testing.T) {
	dir := t.TempDir()
	write := func(name string) {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("module m (input pure t) { await (t); }\n"), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	write("ecl001_x.ecl") // covered: seed + golden
	write("ecl001_x.golden")
	write("ecl002_y.ecl") // golden missing
	write("ecl999_z.ecl") // unshipped rule
	write("ecl999_z.golden")
	write("notes.txt") // ignored

	findings, err := CheckDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	byRule := map[string]int{}
	for _, f := range findings {
		byRule[f.Rule]++
	}
	if byRule["ECL001"] != 0 {
		t.Error("covered rule ECL001 was flagged")
	}
	if byRule["ECL002"] == 0 {
		t.Error("missing golden for ECL002 not flagged")
	}
	if byRule["ECL999"] == 0 {
		t.Error("unshipped-rule seed ECL999 not flagged")
	}
	// Every real rule except ECL001/ECL002 has no seed in the temp dir.
	if byRule["ECL030"] == 0 {
		t.Error("rule with no seed not flagged")
	}
}
