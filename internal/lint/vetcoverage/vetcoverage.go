// Package vetcoverage is a meta-rule over the ECL analyzer's rule
// registry: every shipped rule ID must have a seeded trigger program
// and a golden finding file under internal/analyze/testdata/vet. The
// convention is
//
//	ecl<NNN>_<slug>.ecl     — a program that triggers ECL<NNN>
//	ecl<NNN>_<slug>.golden  — its complete expected finding set
//
// (TestVetGoldens additionally asserts the named rule actually appears
// in the golden output.) A rule merged without its seeded pair is a
// rule whose behavior nothing pins; this checker makes that a lint
// failure, so the registry and the corpus can never drift apart.
package vetcoverage

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"

	"repro/internal/analyze"
)

// Finding is one coverage violation.
type Finding struct {
	Rule string // analyzer rule ID, e.g. "ECL030"
	Msg  string
}

func (f Finding) String() string {
	return fmt.Sprintf("vetcoverage: %s: %s", f.Rule, f.Msg)
}

var seedName = regexp.MustCompile(`^ecl(\d{3})_[a-z0-9_]+\.ecl$`)

// CheckDir audits one testdata/vet directory against the shipped rule
// registry: every rule needs a trigger seed and its golden; every seed
// must name a shipped rule and have its golden alongside.
func CheckDir(dir string) ([]Finding, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	known := make(map[string]bool)
	for _, id := range analyze.RuleIDs() {
		known[id] = true
	}
	covered := make(map[string]bool)
	var out []Finding
	for _, e := range entries {
		name := e.Name()
		m := seedName.FindStringSubmatch(name)
		if m == nil {
			continue
		}
		rule := "ECL" + m[1]
		if !known[rule] {
			out = append(out, Finding{Rule: rule, Msg: fmt.Sprintf(
				"seed %s names a rule the registry does not ship", name)})
			continue
		}
		golden := strings.TrimSuffix(name, ".ecl") + ".golden"
		if _, err := os.Stat(filepath.Join(dir, golden)); err != nil {
			out = append(out, Finding{Rule: rule, Msg: fmt.Sprintf(
				"seed %s has no golden %s (run go test ./internal/analyze -run Goldens -update)", name, golden)})
			continue
		}
		covered[rule] = true
	}
	for _, id := range analyze.RuleIDs() {
		if !covered[id] {
			out = append(out, Finding{Rule: id, Msg: fmt.Sprintf(
				"no trigger seed ecl%s_*.ecl under %s", strings.TrimPrefix(id, "ECL"), dir)})
		}
	}
	return out, nil
}
