package source

import (
	"strings"
	"testing"
)

func TestPositions(t *testing.T) {
	f := NewFile("a.ecl", "abc\ndef\n\nx")
	cases := []struct {
		off, line, col int
	}{
		{0, 1, 1}, {2, 1, 3}, {4, 2, 1}, {6, 2, 3}, {8, 3, 1}, {9, 4, 1},
	}
	for _, c := range cases {
		p := f.Pos(c.off)
		if p.Line() != c.line || p.Column() != c.col {
			t.Errorf("offset %d: %d:%d, want %d:%d", c.off, p.Line(), p.Column(), c.line, c.col)
		}
	}
	if f.NumLines() != 4 {
		t.Errorf("lines = %d, want 4", f.NumLines())
	}
}

func TestLineText(t *testing.T) {
	f := NewFile("a.ecl", "abc\ndef")
	if f.LineText(1) != "abc" || f.LineText(2) != "def" || f.LineText(3) != "" {
		t.Errorf("line texts: %q %q %q", f.LineText(1), f.LineText(2), f.LineText(3))
	}
}

func TestPosString(t *testing.T) {
	f := NewFile("a.ecl", "x")
	if got := f.Pos(0).String(); got != "a.ecl:1:1" {
		t.Errorf("got %q", got)
	}
	var zero Pos
	if zero.IsValid() || zero.String() != "<unknown>" {
		t.Error("zero Pos should be invalid")
	}
}

func TestDiagList(t *testing.T) {
	var l DiagList
	f := NewFile("a.ecl", "x")
	l.Warnf(f.Pos(0), "minor %d", 1)
	if l.HasErrors() {
		t.Error("warning counted as error")
	}
	l.Errorf(f.Pos(0), "boom %s", "here")
	l.Notef(f.Pos(0), "see also")
	if !l.HasErrors() || l.NumErrors() != 1 {
		t.Errorf("errors = %d", l.NumErrors())
	}
	if err := l.Err(); err == nil || !strings.Contains(err.Error(), "boom here") {
		t.Errorf("err = %v", err)
	}
	if !strings.Contains(l.String(), "warning: minor 1") {
		t.Errorf("list rendering: %q", l.String())
	}
}

func TestDiagErrorTruncation(t *testing.T) {
	var l DiagList
	f := NewFile("a.ecl", "x")
	for i := 0; i < 15; i++ {
		l.Errorf(f.Pos(0), "e%d", i)
	}
	msg := l.Err().Error()
	if !strings.Contains(msg, "and more errors") {
		t.Error("long error lists should truncate")
	}
}

func TestSeverityString(t *testing.T) {
	if Note.String() != "note" || Warning.String() != "warning" || Error.String() != "error" {
		t.Error("severity names wrong")
	}
}
