// Package source provides source-file management, positions, and
// diagnostics for the ECL toolchain. Every later phase (preprocessor,
// lexer, parser, semantic analysis, lowering) reports errors through
// this package so that messages carry file/line/column information.
package source

import (
	"fmt"
	"sort"
	"strings"
)

// Pos is a compact source position: a byte offset into a File.
// The zero Pos is "no position".
type Pos struct {
	// File identifies the file the offset refers to; nil means unknown.
	File *File
	// Offset is the byte offset within the file contents.
	Offset int
}

// IsValid reports whether the position refers to a real location.
func (p Pos) IsValid() bool { return p.File != nil }

// Line returns the 1-based line number of the position, or 0 if unknown.
func (p Pos) Line() int {
	if p.File == nil {
		return 0
	}
	return p.File.lineOf(p.Offset)
}

// Column returns the 1-based column number of the position, or 0 if unknown.
func (p Pos) Column() int {
	if p.File == nil {
		return 0
	}
	return p.File.columnOf(p.Offset)
}

// String renders the position as "name:line:col".
func (p Pos) String() string {
	if p.File == nil {
		return "<unknown>"
	}
	return fmt.Sprintf("%s:%d:%d", p.File.Name, p.Line(), p.Column())
}

// Span is a half-open region [Start, End) of a single file.
type Span struct {
	Start Pos
	End   Pos
}

// IsValid reports whether the span has a valid start position.
func (s Span) IsValid() bool { return s.Start.IsValid() }

// String renders the span by its start position.
func (s Span) String() string { return s.Start.String() }

// File holds the contents of one source file plus a lazily built line
// index used to translate byte offsets into line/column pairs.
type File struct {
	Name    string
	Content string

	lineStarts []int // byte offsets of the first byte of each line
}

// NewFile builds a File and indexes its line starts.
func NewFile(name, content string) *File {
	f := &File{Name: name, Content: content}
	f.lineStarts = append(f.lineStarts, 0)
	for i := 0; i < len(content); i++ {
		if content[i] == '\n' {
			f.lineStarts = append(f.lineStarts, i+1)
		}
	}
	return f
}

// Pos returns a Pos for the given byte offset within the file.
func (f *File) Pos(offset int) Pos { return Pos{File: f, Offset: offset} }

// NumLines returns the number of lines in the file.
func (f *File) NumLines() int { return len(f.lineStarts) }

func (f *File) lineOf(offset int) int {
	// Binary search for the greatest line start <= offset.
	i := sort.Search(len(f.lineStarts), func(i int) bool { return f.lineStarts[i] > offset })
	return i // lines are 1-based; i is the count of starts <= offset
}

func (f *File) columnOf(offset int) int {
	line := f.lineOf(offset)
	start := f.lineStarts[line-1]
	return offset - start + 1
}

// LineText returns the text of the given 1-based line without its
// trailing newline, or "" if the line does not exist.
func (f *File) LineText(line int) string {
	if line < 1 || line > len(f.lineStarts) {
		return ""
	}
	start := f.lineStarts[line-1]
	end := len(f.Content)
	if line < len(f.lineStarts) {
		end = f.lineStarts[line] - 1
	}
	return f.Content[start:end]
}

// Severity classifies a diagnostic.
type Severity int

// Severity levels, in increasing order of importance.
const (
	Note Severity = iota
	Warning
	Error
)

// String returns the lower-case name of the severity.
func (s Severity) String() string {
	switch s {
	case Note:
		return "note"
	case Warning:
		return "warning"
	case Error:
		return "error"
	}
	return fmt.Sprintf("Severity(%d)", int(s))
}

// Diagnostic is a single message attached to a source position.
type Diagnostic struct {
	Pos      Pos
	Severity Severity
	Message  string
}

// String renders the diagnostic in "file:line:col: severity: message" form.
func (d Diagnostic) String() string {
	if d.Pos.IsValid() {
		return fmt.Sprintf("%s: %s: %s", d.Pos, d.Severity, d.Message)
	}
	return fmt.Sprintf("%s: %s", d.Severity, d.Message)
}

// DiagList collects diagnostics produced by a compilation phase.
// The zero value is ready to use.
type DiagList struct {
	Diags []Diagnostic

	numErrors int
}

// Errorf records an error at pos.
func (l *DiagList) Errorf(pos Pos, format string, args ...interface{}) {
	l.Diags = append(l.Diags, Diagnostic{Pos: pos, Severity: Error, Message: fmt.Sprintf(format, args...)})
	l.numErrors++
}

// Warnf records a warning at pos.
func (l *DiagList) Warnf(pos Pos, format string, args ...interface{}) {
	l.Diags = append(l.Diags, Diagnostic{Pos: pos, Severity: Warning, Message: fmt.Sprintf(format, args...)})
}

// Notef records a note at pos.
func (l *DiagList) Notef(pos Pos, format string, args ...interface{}) {
	l.Diags = append(l.Diags, Diagnostic{Pos: pos, Severity: Note, Message: fmt.Sprintf(format, args...)})
}

// HasErrors reports whether any error-severity diagnostics were recorded.
func (l *DiagList) HasErrors() bool { return l.numErrors > 0 }

// NumErrors returns the number of error-severity diagnostics.
func (l *DiagList) NumErrors() int { return l.numErrors }

// Err returns an error summarizing the list if it contains errors,
// or nil otherwise.
func (l *DiagList) Err() error {
	if !l.HasErrors() {
		return nil
	}
	return &DiagError{Diags: l.Diags}
}

// String renders all diagnostics, one per line.
func (l *DiagList) String() string {
	var b strings.Builder
	for _, d := range l.Diags {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// DiagError is an error wrapping a list of diagnostics.
type DiagError struct {
	Diags []Diagnostic
}

// Error renders up to the first ten diagnostics.
func (e *DiagError) Error() string {
	var b strings.Builder
	n := 0
	for _, d := range e.Diags {
		if d.Severity != Error {
			continue
		}
		if n == 10 {
			fmt.Fprintf(&b, "... and more errors")
			break
		}
		if n > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(d.String())
		n++
	}
	if n == 0 {
		return "no errors"
	}
	return b.String()
}
