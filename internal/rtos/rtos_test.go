package rtos

import (
	"testing"

	"repro/internal/cost"
	"repro/internal/ctypes"
	"repro/internal/cval"
	"repro/internal/kernel"
)

// fakeRunner emits a fixed set of signals on each activation.
type fakeRunner struct {
	emits map[*kernel.Signal]cval.Value
	runs  int
}

func (f *fakeRunner) React(in map[*kernel.Signal]cval.Value) (*Reaction, error) {
	f.runs++
	return &Reaction{Emitted: f.emits, Depth: 2, Units: 10}, nil
}

func sig(name string) *kernel.Signal {
	return &kernel.Signal{Name: name, Class: kernel.LocalSig, Pure: true}
}

func TestPostReadiesSubscribers(t *testing.T) {
	k := New(cost.Default())
	s := sig("s")
	r := &fakeRunner{}
	k.AddTask(&Task{Name: "t", Inputs: []*kernel.Signal{s}, Run: r})
	k.Post(s, cval.Value{})
	if _, err := k.RunToIdle(); err != nil {
		t.Fatal(err)
	}
	if r.runs != 1 {
		t.Fatalf("task ran %d times, want 1", r.runs)
	}
	if k.Activations != 1 || k.Switches != 1 {
		t.Errorf("activations=%d switches=%d", k.Activations, k.Switches)
	}
}

func TestEmissionCascade(t *testing.T) {
	k := New(cost.Default())
	a, b := sig("a"), sig("b")
	producer := &fakeRunner{emits: map[*kernel.Signal]cval.Value{b: {}}}
	consumer := &fakeRunner{}
	k.AddTask(&Task{Name: "prod", Prio: 0, Inputs: []*kernel.Signal{a}, Run: producer})
	k.AddTask(&Task{Name: "cons", Prio: 1, Inputs: []*kernel.Signal{b}, Run: consumer})
	k.Post(a, cval.Value{})
	emitted, err := k.RunToIdle()
	if err != nil {
		t.Fatal(err)
	}
	if consumer.runs != 1 {
		t.Fatal("cascade did not reach the consumer")
	}
	if _, ok := emitted[b]; !ok {
		t.Error("emitted set missing b")
	}
}

func TestPriorityOrder(t *testing.T) {
	k := New(cost.Default())
	s := sig("s")
	var order []string
	mk := func(name string) Runner {
		return runnerFunc(func(map[*kernel.Signal]cval.Value) (*Reaction, error) {
			order = append(order, name)
			return &Reaction{}, nil
		})
	}
	k.AddTask(&Task{Name: "low", Prio: 5, Inputs: []*kernel.Signal{s}, Run: mk("low")})
	k.AddTask(&Task{Name: "high", Prio: 1, Inputs: []*kernel.Signal{s}, Run: mk("high")})
	k.Post(s, cval.Value{})
	if _, err := k.RunToIdle(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "high" || order[1] != "low" {
		t.Errorf("dispatch order: %v", order)
	}
}

type runnerFunc func(map[*kernel.Signal]cval.Value) (*Reaction, error)

func (f runnerFunc) React(in map[*kernel.Signal]cval.Value) (*Reaction, error) { return f(in) }

func TestCycleAccounting(t *testing.T) {
	model := cost.Default()
	k := New(model)
	s := sig("s")
	k.AddTask(&Task{Name: "t", Inputs: []*kernel.Signal{s}, Run: &fakeRunner{}})
	k.Post(s, cval.Value{})
	if _, err := k.RunToIdle(); err != nil {
		t.Fatal(err)
	}
	wantKernel := int64(model.EventPost + 2*model.SchedulerPass + model.ContextSwitch + model.TaskDispatch)
	if k.KernelCycles != wantKernel {
		t.Errorf("kernel cycles = %d, want %d", k.KernelCycles, wantKernel)
	}
	wantTask := int64(model.ReactionCycles(2, 10))
	if k.TaskCycles != wantTask {
		t.Errorf("task cycles = %d, want %d", k.TaskCycles, wantTask)
	}
	k.ResetCounters()
	if k.TaskCycles != 0 || k.KernelCycles != 0 {
		t.Error("reset failed")
	}
}

func TestValueLatching(t *testing.T) {
	k := New(cost.Default())
	s := &kernel.Signal{Name: "v", Class: kernel.LocalSig}
	var got int64 = -1
	k.AddTask(&Task{Name: "t", Inputs: []*kernel.Signal{s}, Run: runnerFunc(
		func(in map[*kernel.Signal]cval.Value) (*Reaction, error) {
			if v, ok := in[s]; ok && v.IsValid() {
				got = v.Int()
			}
			return &Reaction{}, nil
		})})
	val := cval.FromInt(ctypes.Int, 42)
	k.Post(s, val)
	// Mutating the poster's copy must not affect the latched value.
	val.SetInt(7)
	if _, err := k.RunToIdle(); err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Errorf("latched value = %d, want 42 (deep copy)", got)
	}
}

func TestReadyAll(t *testing.T) {
	k := New(cost.Default())
	r1, r2 := &fakeRunner{}, &fakeRunner{}
	k.AddTask(&Task{Name: "a", Run: r1})
	k.AddTask(&Task{Name: "b", Run: r2})
	k.ReadyAll()
	if _, err := k.RunToIdle(); err != nil {
		t.Fatal(err)
	}
	if r1.runs != 1 || r2.runs != 1 {
		t.Errorf("boot runs: %d, %d", r1.runs, r2.runs)
	}
}
