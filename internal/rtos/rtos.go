// Package rtos simulates the small real-time kernel the paper's
// asynchronous partitions run under: static priority tasks with
// run-to-completion reactions, signal delivery through event
// mailboxes, and cycle accounting that separates task work from
// kernel overhead (the two execution-time columns of Table 1).
package rtos

import (
	"fmt"

	"repro/internal/cost"
	"repro/internal/cval"
	"repro/internal/kernel"
)

// Reaction is the outcome of one task activation.
type Reaction struct {
	// Emitted maps emitted signals to values (invalid Value for pure).
	Emitted map[*kernel.Signal]cval.Value
	// Depth and Units are the dynamic costs (decision-tree nodes
	// visited, data work units) of the reaction.
	Depth int
	Units int
}

// Runner is the body of a task: one synchronous reaction over latched
// inputs.
type Runner interface {
	React(inputs map[*kernel.Signal]cval.Value) (*Reaction, error)
}

// Task is one schedulable activity.
type Task struct {
	Name string
	// Prio is the static priority; lower value runs first.
	Prio int
	// Inputs lists the signals that activate the task.
	Inputs []*kernel.Signal
	Run    Runner

	inbox map[*kernel.Signal]cval.Value
	ready bool
}

// Kernel is the simulated RTOS instance.
type Kernel struct {
	Model *cost.Model

	tasks []*Task
	// subscribers maps each signal to the tasks latching it.
	subscribers map[*kernel.Signal][]*Task

	// TaskCycles accumulates cycles spent in task code.
	TaskCycles int64
	// KernelCycles accumulates cycles spent in the kernel.
	KernelCycles int64
	// Switches counts context switches.
	Switches int64
	// Activations counts task activations.
	Activations int64

	// Trace, when non-nil, receives scheduler events.
	Trace func(format string, args ...interface{})
}

// New creates a kernel with the given cost model.
func New(model *cost.Model) *Kernel {
	return &Kernel{
		Model:       model,
		subscribers: make(map[*kernel.Signal][]*Task),
	}
}

// AddTask registers a task; its Inputs subscribe it to those signals.
func (k *Kernel) AddTask(t *Task) {
	t.inbox = make(map[*kernel.Signal]cval.Value)
	k.tasks = append(k.tasks, t)
	for _, sig := range t.Inputs {
		k.subscribers[sig] = append(k.subscribers[sig], t)
	}
}

// Tasks returns the registered tasks.
func (k *Kernel) Tasks() []*Task { return k.tasks }

// AddTaskInput subscribes an already registered task to one more
// signal (used for per-tick trigger wires).
func (k *Kernel) AddTaskInput(t *Task, sig *kernel.Signal) {
	t.Inputs = append(t.Inputs, sig)
	k.subscribers[sig] = append(k.subscribers[sig], t)
}

// Post delivers a signal occurrence to every subscriber, charging the
// kernel for each delivery. It is used both by the environment and by
// tasks' emissions.
func (k *Kernel) Post(sig *kernel.Signal, val cval.Value) {
	for _, t := range k.subscribers[sig] {
		k.KernelCycles += int64(k.Model.EventPost)
		if val.IsValid() {
			t.inbox[sig] = val.Clone()
		} else {
			t.inbox[sig] = cval.Value{}
		}
		if !t.ready {
			t.ready = true
		}
		if k.Trace != nil {
			k.Trace("post %s -> %s", sig.Name, t.Name)
		}
	}
}

// RunToIdle dispatches ready tasks (highest priority first, FIFO among
// equals) until none remain, charging scheduler, context-switch, and
// dispatch overhead. Emissions during a reaction post to subscribers
// and may ready further tasks. It returns the signals emitted
// (deduplicated, with last values).
func (k *Kernel) RunToIdle() (map[*kernel.Signal]cval.Value, error) {
	emitted := make(map[*kernel.Signal]cval.Value)
	for {
		k.KernelCycles += int64(k.Model.SchedulerPass)
		var next *Task
		for _, t := range k.tasks {
			if !t.ready {
				continue
			}
			if next == nil || t.Prio < next.Prio {
				next = t
			}
		}
		if next == nil {
			return emitted, nil
		}
		next.ready = false
		inputs := next.inbox
		next.inbox = make(map[*kernel.Signal]cval.Value)

		k.KernelCycles += int64(k.Model.ContextSwitch + k.Model.TaskDispatch)
		k.Switches++
		k.Activations++
		if k.Trace != nil {
			k.Trace("dispatch %s (%d inputs)", next.Name, len(inputs))
		}
		r, err := next.Run.React(inputs)
		if err != nil {
			return emitted, fmt.Errorf("task %s: %w", next.Name, err)
		}
		k.TaskCycles += int64(k.Model.ReactionCycles(r.Depth, r.Units))
		for sig, val := range r.Emitted {
			emitted[sig] = val
			k.Post(sig, val)
		}
	}
}

// Tick charges the kernel's per-tick housekeeping (timer interrupt).
func (k *Kernel) Tick() {
	k.KernelCycles += int64(k.Model.IdleTick)
}

// ReadyAll marks every task ready, as the kernel does at startup so
// each task runs its initialization (boot) reaction.
func (k *Kernel) ReadyAll() {
	for _, t := range k.tasks {
		t.ready = true
	}
}

// ResetCounters zeroes the cycle accounting (used after boot so the
// measurements cover steady state only).
func (k *Kernel) ResetCounters() {
	k.TaskCycles, k.KernelCycles, k.Switches, k.Activations = 0, 0, 0, 0
}
