// Package sim builds and runs system-level implementations of an ECL
// design, reproducing the paper's synchronous/asynchronous trade-off:
//
//   - Sync: the whole top-level module compiled into a single EFSM and
//     run as one task under the RTOS (the "1 task" partitions of
//     Table 1);
//   - Async: each module instantiated by the top level compiled
//     separately and run as its own task, with signals delivered
//     through RTOS mailboxes (the "3 tasks" partitions).
//
// Both systems expose the same tick-level Step interface, report
// task-vs-kernel cycle counts through the cost model, and estimate
// their memory images, which is everything Table 1 needs.
package sim

import (
	"fmt"
	"sort"

	"repro/internal/ast"
	"repro/internal/compile"
	"repro/internal/cost"
	"repro/internal/cval"
	"repro/internal/efsm"
	"repro/internal/kernel"
	"repro/internal/lower"
	"repro/internal/rtos"
	"repro/internal/sem"
	"repro/internal/source"
)

// Metrics aggregates what Table 1 reports for one implementation.
type Metrics struct {
	// TaskImage is the memory of the synthesized task code (the
	// "Task(s)" memory columns).
	TaskImage cost.Image
	// RTOSImage is the kernel's memory (the "RTOS" memory columns).
	RTOSImage cost.Image
	// TaskCycles and KernelCycles are the execution-time columns.
	TaskCycles   int64
	KernelCycles int64
	// Ticks counts environment instants driven so far.
	Ticks int64
	// States counts EFSM control states across all tasks.
	States int
	// Tasks is the partition size.
	Tasks int
}

// System is a runnable implementation of a design.
type System interface {
	// Step drives one environment tick: the named inputs are present
	// (with values for valued signals); the returned map holds the
	// design outputs emitted during the tick.
	Step(inputs map[string]cval.Value) (map[string]cval.Value, error)
	// Metrics returns the accumulated measurements.
	Metrics() Metrics
	// Inputs lists the design's environment-facing input signals.
	Inputs() []*kernel.Signal
	// Outputs lists the design's environment-facing output signals.
	Outputs() []*kernel.Signal
}

// Instance is one module instantiation of the top-level par.
type Instance struct {
	Module string
	// Args are the top-level signal names bound to the callee's
	// parameters, in parameter order.
	Args []string
}

// TopInstances extracts the instance list from a top-level module that
// consists of local signal declarations and a par of instantiations
// (the shape of the paper's Figure 4).
func TopInstances(info *sem.Info, top string) ([]Instance, error) {
	mi := info.Modules[top]
	if mi == nil {
		return nil, fmt.Errorf("module %q not found", top)
	}
	var insts []Instance
	var scan func(s ast.Stmt) error
	scan = func(s ast.Stmt) error {
		switch s := s.(type) {
		case *ast.Block:
			for _, st := range s.Stmts {
				if err := scan(st); err != nil {
					return err
				}
			}
		case *ast.SignalDecl, *ast.Empty, nil:
		case *ast.Par:
			for _, b := range s.Branches {
				if err := scan(b); err != nil {
					return err
				}
			}
		case *ast.ExprStmt:
			call, ok := s.X.(*ast.Call)
			if !ok || !info.IsInst[call] {
				return fmt.Errorf("top level contains a non-instantiation statement; cannot partition into tasks")
			}
			inst := Instance{Module: call.Fun.Name}
			for _, a := range call.Args {
				id, ok := a.(*ast.Ident)
				if !ok {
					return fmt.Errorf("instantiation argument is not a signal name")
				}
				inst.Args = append(inst.Args, id.Name)
			}
			insts = append(insts, inst)
		default:
			return fmt.Errorf("top level contains %T; cannot partition into tasks", s)
		}
		return nil
	}
	if err := scan(mi.Decl.Body); err != nil {
		return nil, err
	}
	if len(insts) == 0 {
		return nil, fmt.Errorf("top level instantiates no modules")
	}
	return insts, nil
}

// ---------------------------------------------------------------------------
// Task adapter

// efsmRunner adapts an EFSM runtime to the RTOS task interface,
// translating between system-level wire signals and the module's own
// interface signals.
type efsmRunner struct {
	rt *efsm.Runtime
	// wireToIn maps system wires to the module's input signals.
	wireToIn map[*kernel.Signal]*kernel.Signal
	// outToWire maps the module's outputs to system wires.
	outToWire map[*kernel.Signal]*kernel.Signal
}

// React implements rtos.Runner.
func (e *efsmRunner) React(inputs map[*kernel.Signal]cval.Value) (*rtos.Reaction, error) {
	local := make(map[*kernel.Signal]cval.Value, len(inputs))
	for wire, val := range inputs {
		if in, ok := e.wireToIn[wire]; ok {
			local[in] = val
		}
	}
	res, err := e.rt.Step(local)
	if err != nil {
		return nil, err
	}
	out := &rtos.Reaction{
		Emitted: make(map[*kernel.Signal]cval.Value),
		Depth:   res.Depth,
		Units:   res.Units,
	}
	for sig, val := range res.Outputs {
		wire := e.outToWire[sig]
		if wire == nil {
			continue
		}
		out.Emitted[wire] = val
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Shared system plumbing

type system struct {
	model  *cost.Model
	kern   *rtos.Kernel
	wires  map[string]*kernel.Signal // system signals by name
	inputs map[string]*kernel.Signal // design inputs by name
	outs   map[*kernel.Signal]string // design outputs
	// selfTrig tasks re-ready every tick (modules with empty-await
	// delta cycles; paper footnote 3: "a feature forcing the
	// rescheduling of the module must be used").
	selfTrig []*rtos.Task
	triggers map[*rtos.Task]*kernel.Signal

	taskImage cost.Image
	rtosImage cost.Image
	states    int
	ticks     int64
}

// Step implements System.
func (s *system) Step(inputs map[string]cval.Value) (map[string]cval.Value, error) {
	s.ticks++
	s.kern.Tick()
	for name, val := range inputs {
		wire := s.inputs[name]
		if wire == nil {
			return nil, fmt.Errorf("no input signal %q", name)
		}
		s.kern.Post(wire, val)
	}
	for _, t := range s.selfTrig {
		s.kern.Post(s.selfTriggerSignalFor(t), cval.Value{})
	}
	emitted, err := s.kern.RunToIdle()
	if err != nil {
		return nil, err
	}
	out := make(map[string]cval.Value)
	for sig, val := range emitted {
		if name, ok := s.outs[sig]; ok {
			out[name] = val
		}
	}
	return out, nil
}

// selfTriggerSignalFor returns the task's virtual per-tick trigger
// wire, creating it on first use.
func (s *system) selfTriggerSignalFor(t *rtos.Task) *kernel.Signal {
	if s.triggers == nil {
		s.triggers = map[*rtos.Task]*kernel.Signal{}
	}
	if sig, ok := s.triggers[t]; ok {
		return sig
	}
	sig := &kernel.Signal{Name: "tick." + t.Name, Class: kernel.Input, Pure: true}
	s.triggers[t] = sig
	return sig
}

// boot runs every task's initialization reaction (kernel startup),
// delivering boot emissions, then zeroes the counters so measurements
// cover steady state.
func (s *system) boot() error {
	s.kern.ReadyAll()
	if _, err := s.kern.RunToIdle(); err != nil {
		return err
	}
	s.kern.ResetCounters()
	return nil
}

// Inputs implements System.
func (s *system) Inputs() []*kernel.Signal {
	out := make([]*kernel.Signal, 0, len(s.inputs))
	for _, sig := range s.inputs {
		out = append(out, sig)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Outputs implements System.
func (s *system) Outputs() []*kernel.Signal {
	out := make([]*kernel.Signal, 0, len(s.outs))
	for sig := range s.outs {
		out = append(out, sig)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Metrics implements System.
func (s *system) Metrics() Metrics {
	return Metrics{
		TaskImage:    s.taskImage,
		RTOSImage:    s.rtosImage,
		TaskCycles:   s.kern.TaskCycles,
		KernelCycles: s.kern.KernelCycles,
		Ticks:        s.ticks,
		States:       s.states,
		Tasks:        len(s.kern.Tasks()),
	}
}

// hasDeltaPause reports whether a module pauses on empty await()
// (kernel.Pause), requiring per-tick rescheduling.
func hasDeltaPause(mod *kernel.Module) bool {
	found := false
	kernel.Walk(mod.Body, func(n kernel.Stmt) {
		if _, ok := n.(*kernel.Pause); ok {
			found = true
		}
	})
	return found
}

// ---------------------------------------------------------------------------
// Builders

// Config selects the build parameters shared by both systems.
type Config struct {
	Policy lower.Policy
	Model  *cost.Model
	// Compile bounds (zero values use compile defaults).
	Options compile.Options
}

func (c *Config) model() *cost.Model {
	if c.Model == nil {
		return cost.Default()
	}
	return c.Model
}

// BuildSync compiles the whole top-level module into one EFSM and runs
// it as a single task under the RTOS.
func BuildSync(info *sem.Info, top string, cfg Config) (System, error) {
	var diags source.DiagList
	res, err := lower.Lower(info, top, cfg.Policy, &diags)
	if err != nil {
		return nil, err
	}
	em, err := compile.CompileWith(res, cfg.Options)
	if err != nil {
		return nil, err
	}
	model := cfg.model()
	s := &system{
		model:  model,
		kern:   rtos.New(model),
		wires:  map[string]*kernel.Signal{},
		inputs: map[string]*kernel.Signal{},
		outs:   map[*kernel.Signal]string{},
	}
	rt := efsm.NewRuntime(em)
	runner := &efsmRunner{
		rt:        rt,
		wireToIn:  map[*kernel.Signal]*kernel.Signal{},
		outToWire: map[*kernel.Signal]*kernel.Signal{},
	}
	task := &rtos.Task{Name: top, Prio: 0, Run: runner}
	for _, in := range res.Module.Inputs {
		// The single task uses the module's own signals as wires.
		s.wires[in.Name] = in
		s.inputs[in.Name] = in
		runner.wireToIn[in] = in
		task.Inputs = append(task.Inputs, in)
	}
	for _, out := range res.Module.Outputs {
		s.wires[out.Name] = out
		s.outs[out] = out.Name
		runner.outToWire[out] = out
	}
	s.kern.AddTask(task)
	// A synchronous implementation reacts on every clock tick.
	s.kern.AddTaskInput(task, s.selfTriggerSignalFor(task))
	s.selfTrig = append(s.selfTrig, task)

	s.taskImage = model.SoftwareImage(em)
	s.taskImage.DataBytes += model.TaskDataBytes()
	ch, vch := cost.ChannelsOf(res.Module)
	s.rtosImage = model.RTOSImage(1, ch, vch)
	s.states = len(em.States)
	if err := s.boot(); err != nil {
		return nil, err
	}
	return s, nil
}

// BuildAsync compiles each top-level instance separately and runs them
// as independent tasks connected by RTOS mailboxes.
func BuildAsync(info *sem.Info, top string, cfg Config) (System, error) {
	insts, err := TopInstances(info, top)
	if err != nil {
		return nil, err
	}
	topMi := info.Modules[top]
	model := cfg.model()
	s := &system{
		model:  model,
		kern:   rtos.New(model),
		wires:  map[string]*kernel.Signal{},
		inputs: map[string]*kernel.Signal{},
		outs:   map[*kernel.Signal]string{},
	}
	// System wires: the top-level interface plus its local signals.
	for _, p := range topMi.Params {
		wire := &kernel.Signal{Name: p.Name, Pure: p.Pure, Type: p.ValueType}
		if p.Dir == ast.In {
			wire.Class = kernel.Input
			s.inputs[p.Name] = wire
		} else {
			wire.Class = kernel.Output
			s.outs[wire] = p.Name
		}
		s.wires[p.Name] = wire
	}
	for _, l := range topMi.Locals {
		wire := &kernel.Signal{Name: l.Name, Class: kernel.LocalSig, Pure: l.Pure, Type: l.ValueType}
		s.wires[l.Name] = wire
	}

	totalChannels, totalValued := 0, 0
	for _, w := range s.wires {
		totalChannels++
		if !w.Pure && w.Type != nil {
			totalValued++
		}
	}

	for prio, inst := range insts {
		var diags source.DiagList
		res, err := lower.Lower(info, inst.Module, cfg.Policy, &diags)
		if err != nil {
			return nil, fmt.Errorf("instance %s: %w", inst.Module, err)
		}
		em, err := compile.CompileWith(res, cfg.Options)
		if err != nil {
			return nil, fmt.Errorf("instance %s: %w", inst.Module, err)
		}
		rt := efsm.NewRuntime(em)
		runner := &efsmRunner{
			rt:        rt,
			wireToIn:  map[*kernel.Signal]*kernel.Signal{},
			outToWire: map[*kernel.Signal]*kernel.Signal{},
		}
		task := &rtos.Task{Name: fmt.Sprintf("%s%d", inst.Module, prio+1), Prio: prio, Run: runner}
		callee := info.Modules[inst.Module]
		for i, p := range callee.Params {
			wire := s.wires[inst.Args[i]]
			if wire == nil {
				return nil, fmt.Errorf("instance %s: unknown signal %q", inst.Module, inst.Args[i])
			}
			var local *kernel.Signal
			for _, sig := range res.Module.Signals() {
				if sig.Name == p.Name {
					local = sig
					break
				}
			}
			if local == nil {
				return nil, fmt.Errorf("instance %s: interface signal %q missing after lowering", inst.Module, p.Name)
			}
			if p.Dir == ast.In {
				runner.wireToIn[wire] = local
				task.Inputs = append(task.Inputs, wire)
			} else {
				runner.outToWire[local] = wire
			}
		}
		s.kern.AddTask(task)
		if hasDeltaPause(res.Module) {
			s.kern.AddTaskInput(task, s.selfTriggerSignalFor(task))
			s.selfTrig = append(s.selfTrig, task)
		}
		img := model.SoftwareImage(em)
		img.DataBytes += model.TaskDataBytes()
		s.taskImage.Add(img)
		s.states += len(em.States)
	}
	s.rtosImage = model.RTOSImage(len(insts), totalChannels, totalValued)
	if err := s.boot(); err != nil {
		return nil, err
	}
	return s, nil
}
