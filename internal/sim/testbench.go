package sim

import (
	"fmt"

	"repro/internal/ctypes"
	"repro/internal/cval"
	"repro/internal/paperex"
)

// StackResult reports a protocol-stack testbench run.
type StackResult struct {
	Packets     int
	GoodPackets int
	AddrMatches int
	Ticks       int64
}

// RunStack drives the paper's Table 1 stack workload: packets
// byte-per-tick with a short inter-packet gap (so the header scan can
// finish), every 4th packet corrupted, and a reset after packet 250.
// It checks that addr_match fires exactly for the good packets.
func RunStack(sys System, packets int) (*StackResult, error) {
	res := &StackResult{Packets: packets}
	// Boot tick.
	if _, err := sys.Step(nil); err != nil {
		return nil, err
	}
	res.Ticks++
	expectMatches := 0
	for p := 0; p < packets; p++ {
		good := p%4 != 3
		if good {
			expectMatches++
			res.GoodPackets++
		}
		pkt := paperex.MakePacket(good)
		for i := 0; i < paperex.PktSize; i++ {
			out, err := sys.Step(map[string]cval.Value{
				"in_byte": cval.FromInt(ctypes.UChar, int64(pkt[i])),
			})
			if err != nil {
				return nil, fmt.Errorf("packet %d byte %d: %w", p, i, err)
			}
			res.Ticks++
			if _, ok := out["addr_match"]; ok {
				res.AddrMatches++
			}
		}
		// Inter-packet gap: the header scan takes HDRSIZE instants.
		for i := 0; i < paperex.HdrSize+2; i++ {
			out, err := sys.Step(nil)
			if err != nil {
				return nil, fmt.Errorf("packet %d gap: %w", p, err)
			}
			res.Ticks++
			if _, ok := out["addr_match"]; ok {
				res.AddrMatches++
			}
		}
		if p == packets/2 {
			if _, err := sys.Step(map[string]cval.Value{"reset": {}}); err != nil {
				return nil, err
			}
			res.Ticks++
		}
	}
	return res, nil
}

// BufferResult reports an audio-buffer testbench run.
type BufferResult struct {
	Samples    int
	SpkSamples int
	LowWaters  int
	HighWaters int
	Ticks      int64
}

// RunBuffer drives the voice-mail-pager scenario: record a message
// (one mic sample every other tick), stop, then play it back (the
// environment answers each rd_req with a sample on the next tick),
// then stop. Messages repeats the record/playback cycle.
func RunBuffer(sys System, messages, samplesPerMessage int) (*BufferResult, error) {
	res := &BufferResult{}
	step := func(in map[string]cval.Value) (map[string]cval.Value, error) {
		out, err := sys.Step(in)
		if err != nil {
			return nil, err
		}
		res.Ticks++
		if _, ok := out["spk_sample"]; ok {
			res.SpkSamples++
		}
		if _, ok := out["low_water"]; ok {
			res.LowWaters++
		}
		if _, ok := out["high_water"]; ok {
			res.HighWaters++
		}
		return out, nil
	}
	if _, err := step(nil); err != nil {
		return nil, err
	}
	for msg := 0; msg < messages; msg++ {
		if _, err := step(map[string]cval.Value{"rec_btn": {}}); err != nil {
			return nil, err
		}
		for i := 0; i < samplesPerMessage; i++ {
			in := map[string]cval.Value{}
			if i%2 == 0 {
				in["mic_sample"] = cval.FromInt(ctypes.UChar, int64(40+i%80))
				res.Samples++
			}
			if _, err := step(in); err != nil {
				return nil, err
			}
		}
		if _, err := step(map[string]cval.Value{"stop_btn": {}}); err != nil {
			return nil, err
		}
		// Playback: answer rd_req with a sample next tick.
		pending := false
		out, err := step(map[string]cval.Value{"play_btn": {}})
		if err != nil {
			return nil, err
		}
		if _, ok := out["rd_req"]; ok {
			pending = true
		}
		for i := 0; i < samplesPerMessage*2; i++ {
			in := map[string]cval.Value{}
			if pending {
				in["rd_data"] = cval.FromInt(ctypes.UChar, int64(40+i%80))
				pending = false
			}
			out, err := step(in)
			if err != nil {
				return nil, err
			}
			if _, ok := out["rd_req"]; ok {
				pending = true
			}
			_ = out
		}
		if _, err := step(map[string]cval.Value{"stop_btn": {}}); err != nil {
			return nil, err
		}
		// Idle gap between messages.
		for i := 0; i < 4; i++ {
			if _, err := step(nil); err != nil {
				return nil, err
			}
		}
	}
	return res, nil
}
