package sim

import (
	"testing"

	"repro/internal/paperex"
)

func TestTopInstances(t *testing.T) {
	info, err := AnalyzeSource("stack.ecl", paperex.Stack)
	if err != nil {
		t.Fatal(err)
	}
	insts, err := TopInstances(info, "toplevel")
	if err != nil {
		t.Fatal(err)
	}
	if len(insts) != 3 {
		t.Fatalf("got %d instances, want 3", len(insts))
	}
	if insts[0].Module != "assemble" || insts[1].Module != "checkcrc" || insts[2].Module != "prochdr" {
		t.Errorf("instances: %+v", insts)
	}
	if len(insts[2].Args) != 4 || insts[2].Args[0] != "reset" || insts[2].Args[2] != "packet" {
		t.Errorf("prochdr args: %v", insts[2].Args)
	}
}

func TestStackSyncBehaviour(t *testing.T) {
	info, err := AnalyzeSource("stack.ecl", paperex.Stack)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := BuildSync(info, "toplevel", Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunStack(sys, 12)
	if err != nil {
		t.Fatal(err)
	}
	if res.AddrMatches != res.GoodPackets {
		t.Errorf("sync: %d matches for %d good packets", res.AddrMatches, res.GoodPackets)
	}
}

func TestStackAsyncBehaviour(t *testing.T) {
	info, err := AnalyzeSource("stack.ecl", paperex.Stack)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := BuildAsync(info, "toplevel", Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunStack(sys, 12)
	if err != nil {
		t.Fatal(err)
	}
	if res.AddrMatches != res.GoodPackets {
		t.Errorf("async: %d matches for %d good packets", res.AddrMatches, res.GoodPackets)
	}
	m := sys.Metrics()
	if m.Tasks != 3 {
		t.Errorf("tasks = %d, want 3", m.Tasks)
	}
	if m.KernelCycles == 0 || m.TaskCycles == 0 {
		t.Error("cycle accounting missing")
	}
}

func TestBufferBothPartitions(t *testing.T) {
	info, err := AnalyzeSource("buffer.ecl", paperex.Buffer)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []string{"sync", "async"} {
		var sys System
		if mode == "sync" {
			sys, err = BuildSync(info, "bufferctl", Config{})
		} else {
			sys, err = BuildAsync(info, "bufferctl", Config{})
		}
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		res, err := RunBuffer(sys, 2, 24)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if res.SpkSamples == 0 {
			t.Errorf("%s: no playback output", mode)
		}
	}
}

// TestSyncAsyncAgreeOnStack checks that both partitions produce the
// same number of address matches (the designer's obligation in the
// paper: "all the resulting variants of behavior are equally good").
func TestSyncAsyncAgreeOnStack(t *testing.T) {
	info, err := AnalyzeSource("stack.ecl", paperex.Stack)
	if err != nil {
		t.Fatal(err)
	}
	syncSys, err := BuildSync(info, "toplevel", Config{})
	if err != nil {
		t.Fatal(err)
	}
	asyncSys, err := BuildAsync(info, "toplevel", Config{})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := RunStack(syncSys, 8)
	if err != nil {
		t.Fatal(err)
	}
	ra, err := RunStack(asyncSys, 8)
	if err != nil {
		t.Fatal(err)
	}
	if rs.AddrMatches != ra.AddrMatches {
		t.Errorf("sync %d matches, async %d matches", rs.AddrMatches, ra.AddrMatches)
	}
}

func TestTable1SmallRun(t *testing.T) {
	cfg := DefaultTable1Config()
	cfg.Packets = 6
	cfg.Messages = 1
	cfg.SamplesPerMessage = 16
	rows, err := Table1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(rows))
	}
	text := FormatTable1(rows)
	if text == "" {
		t.Error("empty table")
	}
	t.Logf("\n%s", text)

	byKey := map[string]Table1Row{}
	for _, r := range rows {
		byKey[r.Example+"/"+r.Partition] = r
	}
	// Paper shape 1: async partitions carry more total memory.
	if byKey["Stack/3 tasks"].Total() <= byKey["Stack/1 task"].Total() {
		t.Errorf("stack: async total memory %d should exceed sync %d",
			byKey["Stack/3 tasks"].Total(), byKey["Stack/1 task"].Total())
	}
	// Paper shape 2: buffer sync task code exceeds async task code
	// (product-machine growth).
	if byKey["Buffer/1 task"].TaskCode <= byKey["Buffer/3 tasks"].TaskCode {
		t.Errorf("buffer: sync code %d should exceed async code %d",
			byKey["Buffer/1 task"].TaskCode, byKey["Buffer/3 tasks"].TaskCode)
	}
	// Paper shape 3: RTOS cycles grow with task count.
	if byKey["Stack/3 tasks"].RTOSKCycles <= byKey["Stack/1 task"].RTOSKCycles {
		t.Errorf("stack: async RTOS cycles %.0f should exceed sync %.0f",
			byKey["Stack/3 tasks"].RTOSKCycles, byKey["Stack/1 task"].RTOSKCycles)
	}
	if byKey["Buffer/3 tasks"].RTOSKCycles <= byKey["Buffer/1 task"].RTOSKCycles {
		t.Errorf("buffer: async RTOS cycles should exceed sync")
	}
}
