package sim

import (
	"fmt"
	"strings"

	"repro/internal/cost"
	"repro/internal/lower"
	"repro/internal/paperex"
	"repro/internal/parser"
	"repro/internal/pp"
	"repro/internal/sem"
	"repro/internal/source"
)

// Table1Row is one row of the paper's Table 1.
type Table1Row struct {
	Example   string
	Partition string // "1 task" or "3 tasks"
	TaskCode  int
	TaskData  int
	RTOSCode  int
	RTOSData  int
	// Execution time in thousands of cycles (the paper's unit).
	TaskKCycles float64
	RTOSKCycles float64
	States      int
}

// Total returns code+data+RTOS memory.
func (r Table1Row) Total() int { return r.TaskCode + r.TaskData + r.RTOSCode + r.RTOSData }

// TotalKCycles returns task+RTOS execution time.
func (r Table1Row) TotalKCycles() float64 { return r.TaskKCycles + r.RTOSKCycles }

// AnalyzeSource runs the ECL front end over source text.
func AnalyzeSource(name, src string) (*sem.Info, error) {
	var diags source.DiagList
	expanded := pp.New(&diags, nil).Expand(source.NewFile(name, src))
	f := parser.ParseFile(expanded, &diags)
	if diags.HasErrors() {
		return nil, diags.Err()
	}
	info := sem.Analyze(f, &diags)
	if diags.HasErrors() {
		return nil, diags.Err()
	}
	return info, nil
}

// Table1Config sizes the workloads. The paper used 500 packets for the
// stack; the buffer scenario is sized to a few voice messages.
type Table1Config struct {
	Packets           int
	Messages          int
	SamplesPerMessage int
	Policy            lower.Policy
	Model             *cost.Model
}

// DefaultTable1Config mirrors the paper's testbench (500 packets).
func DefaultTable1Config() Table1Config {
	return Table1Config{
		Packets:           500,
		Messages:          8,
		SamplesPerMessage: 48,
	}
}

// Table1 rebuilds the paper's Table 1: both examples, both partitions,
// memory and execution time.
func Table1(cfg Table1Config) ([]Table1Row, error) {
	var rows []Table1Row

	stackInfo, err := AnalyzeSource("stack.ecl", paperex.Stack)
	if err != nil {
		return nil, fmt.Errorf("stack front end: %w", err)
	}
	simCfg := Config{Policy: cfg.Policy, Model: cfg.Model}

	for _, partition := range []string{"1 task", "3 tasks"} {
		var sys System
		if partition == "1 task" {
			sys, err = BuildSync(stackInfo, "toplevel", simCfg)
		} else {
			sys, err = BuildAsync(stackInfo, "toplevel", simCfg)
		}
		if err != nil {
			return nil, fmt.Errorf("stack %s: %w", partition, err)
		}
		res, err := RunStack(sys, cfg.Packets)
		if err != nil {
			return nil, fmt.Errorf("stack %s run: %w", partition, err)
		}
		if res.AddrMatches != res.GoodPackets {
			return nil, fmt.Errorf("stack %s: %d addr_match for %d good packets (behavior broken)",
				partition, res.AddrMatches, res.GoodPackets)
		}
		rows = append(rows, rowFrom("Stack", partition, sys.Metrics()))
	}

	bufInfo, err := AnalyzeSource("buffer.ecl", paperex.Buffer)
	if err != nil {
		return nil, fmt.Errorf("buffer front end: %w", err)
	}
	for _, partition := range []string{"1 task", "3 tasks"} {
		var sys System
		if partition == "1 task" {
			sys, err = BuildSync(bufInfo, "bufferctl", simCfg)
		} else {
			sys, err = BuildAsync(bufInfo, "bufferctl", simCfg)
		}
		if err != nil {
			return nil, fmt.Errorf("buffer %s: %w", partition, err)
		}
		res, err := RunBuffer(sys, cfg.Messages, cfg.SamplesPerMessage)
		if err != nil {
			return nil, fmt.Errorf("buffer %s run: %w", partition, err)
		}
		if res.SpkSamples == 0 {
			return nil, fmt.Errorf("buffer %s: playback produced no samples (behavior broken)", partition)
		}
		rows = append(rows, rowFrom("Buffer", partition, sys.Metrics()))
	}
	return rows, nil
}

func rowFrom(example, partition string, m Metrics) Table1Row {
	return Table1Row{
		Example:     example,
		Partition:   partition,
		TaskCode:    m.TaskImage.CodeBytes,
		TaskData:    m.TaskImage.DataBytes,
		RTOSCode:    m.RTOSImage.CodeBytes,
		RTOSData:    m.RTOSImage.DataBytes,
		TaskKCycles: float64(m.TaskCycles) / 1000,
		RTOSKCycles: float64(m.KernelCycles) / 1000,
		States:      m.States,
	}
}

// FormatTable1 renders rows in the paper's layout.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %-8s | %10s %10s %10s %10s | %12s %12s\n",
		"Example", "Part.", "Task code", "Task data", "RTOS code", "RTOS data", "Tasks kcyc", "RTOS kcyc")
	fmt.Fprintf(&b, "%s\n", strings.Repeat("-", 102))
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %-8s | %10d %10d %10d %10d | %12.0f %12.0f\n",
			r.Example, r.Partition, r.TaskCode, r.TaskData, r.RTOSCode, r.RTOSData,
			r.TaskKCycles, r.RTOSKCycles)
	}
	return b.String()
}
