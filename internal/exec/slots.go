package exec

import (
	"sort"

	"repro/internal/cval"
	"repro/internal/kernel"
)

// Ports is the slot-indexed view of a machine's signal interface: each
// input and output signal gets a fixed integer slot, resolved from
// names once when the machine is opened. The exec hot path is designed
// around it — a SlotStepper steps over presence vectors and value
// arrays positioned by slot, so the per-instant cost is array indexing
// instead of map hashing, and a caller that reuses the buffers Ports
// hands out steps without allocating.
//
// The presence vector layout is inputs first, then outputs: input i is
// bit i, output j is bit NumInputs()+j.
type Ports struct {
	inputs  []Signal
	outputs []Signal
	inSlot  map[string]int
	outSlot map[string]int
	inNames []string // sorted, for error messages
}

// NewPorts builds a port table over a machine's signal interface. Slot
// order is the given signal order — for the built-in backends, module
// declaration order.
func NewPorts(inputs, outputs []Signal) *Ports {
	p := &Ports{
		inputs:  inputs,
		outputs: outputs,
		inSlot:  make(map[string]int, len(inputs)),
		outSlot: make(map[string]int, len(outputs)),
		inNames: make([]string, 0, len(inputs)),
	}
	for i, s := range inputs {
		p.inSlot[s.Name] = i
		p.inNames = append(p.inNames, s.Name)
	}
	sort.Strings(p.inNames)
	for j, s := range outputs {
		p.outSlot[s.Name] = j
	}
	return p
}

// newPortsFromKernel builds a port table straight from kernel signals.
func newPortsFromKernel(inputs, outputs []*kernel.Signal) *Ports {
	ins := make([]Signal, len(inputs))
	for i, s := range inputs {
		ins[i] = Signal{Name: s.Name, Pure: s.Pure, Type: s.Type}
	}
	outs := make([]Signal, len(outputs))
	for j, s := range outputs {
		outs[j] = Signal{Name: s.Name, Pure: s.Pure, Type: s.Type}
	}
	return NewPorts(ins, outs)
}

// NumInputs returns the input slot count.
func (p *Ports) NumInputs() int { return len(p.inputs) }

// NumOutputs returns the output slot count.
func (p *Ports) NumOutputs() int { return len(p.outputs) }

// Inputs lists the input signals in slot order.
func (p *Ports) Inputs() []Signal { return p.inputs }

// Outputs lists the output signals in slot order.
func (p *Ports) Outputs() []Signal { return p.outputs }

// InputSlot resolves an input signal name to its slot.
func (p *Ports) InputSlot(name string) (int, bool) {
	i, ok := p.inSlot[name]
	return i, ok
}

// OutputSlot resolves an output signal name to its slot.
func (p *Ports) OutputSlot(name string) (int, bool) {
	j, ok := p.outSlot[name]
	return j, ok
}

// PresentLen returns the presence vector length (inputs then outputs).
func (p *Ports) PresentLen() int { return len(p.inputs) + len(p.outputs) }

// NewPresent allocates a presence vector of the right length.
func (p *Ports) NewPresent() []bool { return make([]bool, p.PresentLen()) }

// NewInputs allocates the input value array (all entries invalid — the
// caller fills the slots of the valued inputs it presents).
func (p *Ports) NewInputs() []cval.Value { return make([]cval.Value, len(p.inputs)) }

// NewOutputs allocates the output value array with storage of each
// valued output's type preallocated, so a SlotStepper can copy emitted
// value bytes in place and the steady-state step never allocates. Pure
// output slots stay invalid.
func (p *Ports) NewOutputs() []cval.Value {
	out := make([]cval.Value, len(p.outputs))
	for j, s := range p.outputs {
		if !s.Pure && s.Type != nil {
			out[j] = cval.New(s.Type)
		}
	}
	return out
}

// BindInstant resolves a string-keyed input instant onto slot vectors:
// input presence bits are set (output bits are left alone — the step
// rewrites them), and vals[i] receives input i's supplied value (or the
// invalid value). Unknown names and values on pure signals are rejected
// with the same errors as the map Step path.
func (p *Ports) BindInstant(inputs map[string]cval.Value, present []bool, vals []cval.Value) error {
	for i := range p.inputs {
		present[i] = false
		vals[i] = cval.Value{}
	}
	for name, val := range inputs {
		i, ok := p.inSlot[name]
		if !ok {
			return &UnknownInputError{Name: name, Valid: p.inNames}
		}
		if val.IsValid() && p.inputs[i].Pure {
			return &PureValueError{Name: name}
		}
		present[i] = true
		vals[i] = val
	}
	return nil
}

// OutputMap translates a stepped presence vector and output value array
// back to the string-keyed Result form, cloning values so the caller
// owns them independently of the reused slot buffers.
func (p *Ports) OutputMap(present []bool, out []cval.Value) map[string]cval.Value {
	n := len(p.inputs)
	named := make(map[string]cval.Value, len(p.outputs))
	for j, s := range p.outputs {
		if !present[n+j] {
			continue
		}
		if v := out[j]; v.IsValid() {
			named[s.Name] = v.Clone()
		} else {
			named[s.Name] = cval.Value{}
		}
	}
	return named
}

// SlotStepper is the optional extension interface of Machine for
// backends whose hot path is slot-indexed. The Session batch paths,
// trace recording, and benchmarks detect it and step through slots,
// bypassing per-instant map construction; everything else keeps using
// the map Step, which such backends implement as a thin adapter
// (SlotAdapter).
type SlotStepper interface {
	Machine

	// Ports returns the machine's slot resolution table. It is fixed
	// for the machine's lifetime.
	Ports() *Ports

	// StepSlots runs one synchronous instant over slot-indexed I/O.
	// present holds input presence bits [0,NumInputs) set by the
	// caller; the machine clears and rewrites the output bits
	// [NumInputs,PresentLen). in[i] optionally carries input slot i's
	// value (invalid = presence only). out[j] is caller-owned storage
	// for output slot j: when it has storage of the output type's size
	// (as NewOutputs preallocates), the machine copies each emitted
	// value's bytes into it. The caller may reuse all three buffers
	// across instants; a steady-state step performs no allocations.
	StepSlots(present []bool, in, out []cval.Value) (terminated bool, err error)
}

// SlotAdapter implements the map-keyed Step contract on top of a slot
// stepper, reusing one set of slot buffers across instants. Backends
// embed one so the slot path is the only stepping code they carry.
type SlotAdapter struct {
	ports   *Ports
	present []bool
	in      []cval.Value
	out     []cval.Value
}

// NewSlotAdapter allocates the adapter's reusable slot buffers.
func NewSlotAdapter(p *Ports) *SlotAdapter {
	return &SlotAdapter{ports: p, present: p.NewPresent(), in: p.NewInputs(), out: p.NewOutputs()}
}

// Ports returns the adapter's port table.
func (a *SlotAdapter) Ports() *Ports { return a.ports }

// Step binds a string-keyed instant onto the adapter's slot buffers,
// runs the given slot step, and translates the outputs back to a
// Result.
func (a *SlotAdapter) Step(step func(present []bool, in, out []cval.Value) (bool, error),
	inputs map[string]cval.Value) (*Result, error) {
	if err := a.ports.BindInstant(inputs, a.present, a.in); err != nil {
		return nil, err
	}
	terminated, err := step(a.present, a.in, a.out)
	if err != nil {
		return nil, err
	}
	return &Result{Outputs: a.ports.OutputMap(a.present, a.out), Terminated: terminated}, nil
}

// stepSlotScratch is the per-entry scratch the Session and trace paths
// use when a machine turns out to be a SlotStepper: one buffer set,
// allocated on first use, reused for every instant of that machine.
type stepSlotScratch struct {
	s       SlotStepper
	present []bool
	in      []cval.Value
	out     []cval.Value
}

// newStepSlotScratch prepares scratch for a machine if (and only if) it
// steps through slots; otherwise it returns nil and callers fall back
// to the map path.
func newStepSlotScratch(m Machine) *stepSlotScratch {
	s, ok := m.(SlotStepper)
	if !ok {
		return nil
	}
	p := s.Ports()
	return &stepSlotScratch{s: s, present: p.NewPresent(), in: p.NewInputs(), out: p.NewOutputs()}
}

// step runs one instant through the slot path, returning the same
// Result shape as Machine.Step.
func (sc *stepSlotScratch) step(inputs map[string]cval.Value) (*Result, error) {
	p := sc.s.Ports()
	if err := p.BindInstant(inputs, sc.present, sc.in); err != nil {
		return nil, err
	}
	terminated, err := sc.s.StepSlots(sc.present, sc.in, sc.out)
	if err != nil {
		return nil, err
	}
	return &Result{Outputs: p.OutputMap(sc.present, sc.out), Terminated: terminated}, nil
}
