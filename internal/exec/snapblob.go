package exec

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"
)

// SnapshotBlobVersion is the current serialized-snapshot format
// version.
const SnapshotBlobVersion = 1

// SnapshotBlob is the serialized form of a machine's execution state:
// what an evicted daemon session persists in the content-addressed
// store and revives from later — possibly in another process, against
// a machine recompiled from the same source. Control state is encoded
// per backend (the interpreter's canonical residue key, the EFSM's
// state ID); variables and signal stores are name-keyed with values in
// the canonical trace encoding ("0x…" big-endian bytes), so a blob is
// inspectable with the same tools as a trace.
type SnapshotBlob struct {
	// Version is the format version (SnapshotBlobVersion).
	Version int `json:"v"`
	// Backend names the engine the snapshot was taken from; it only
	// restores into a machine of the same backend.
	Backend string `json:"backend"`
	// Module names the design's module, as a restore-time guard.
	Module string `json:"module"`
	// Instant is how many instants the machine had executed.
	Instant int `json:"instant"`
	// State is the backend-specific control-state encoding.
	State string `json:"state"`
	// Started and Done mirror the backend's lifecycle flags.
	Started bool `json:"started,omitempty"`
	Done    bool `json:"done,omitempty"`
	// Vars and Sigs hold the variable and signal stores, name-keyed,
	// values in trace encoding.
	Vars map[string]string `json:"vars,omitempty"`
	Sigs map[string]string `json:"sigs,omitempty"`
}

// snapshotCodec is implemented by backend machines whose snapshots
// convert to and from the portable blob fields. Backends without it
// (sim) cannot be serialized; EncodeSnapshot reports ErrUnsupported.
type snapshotCodec interface {
	encodeSnapshot(Snapshot) (*SnapshotBlob, error)
	decodeSnapshot(*SnapshotBlob) (Snapshot, error)
}

// EncodeSnapshot serializes a snapshot taken from m (with the
// machine's instant count) into a self-describing blob. Backends
// without portable snapshots report ErrUnsupported.
func EncodeSnapshot(m Machine, snap Snapshot, instant int) ([]byte, error) {
	c, ok := m.(snapshotCodec)
	if !ok {
		return nil, ErrUnsupported
	}
	b, err := c.encodeSnapshot(snap)
	if err != nil {
		return nil, err
	}
	b.Version = SnapshotBlobVersion
	b.Backend = m.Backend()
	b.Module = m.Module()
	b.Instant = instant
	return json.Marshal(b)
}

// DecodeSnapshot parses a serialized snapshot against a machine of the
// same backend over the same design, returning the restorable snapshot
// and the instant count it was taken at.
func DecodeSnapshot(m Machine, data []byte) (Snapshot, int, error) {
	var b SnapshotBlob
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, 0, fmt.Errorf("exec: snapshot blob: %w", err)
	}
	if b.Version != SnapshotBlobVersion {
		return nil, 0, fmt.Errorf("exec: snapshot blob version %d not supported (want %d)", b.Version, SnapshotBlobVersion)
	}
	if b.Backend != m.Backend() {
		return nil, 0, fmt.Errorf("exec: snapshot blob from backend %q cannot restore into %q", b.Backend, m.Backend())
	}
	if b.Module != m.Module() {
		return nil, 0, fmt.Errorf("exec: snapshot blob of module %q cannot restore into %q", b.Module, m.Module())
	}
	c, ok := m.(snapshotCodec)
	if !ok {
		return nil, 0, ErrUnsupported
	}
	snap, err := c.decodeSnapshot(&b)
	if err != nil {
		return nil, 0, err
	}
	return snap, b.Instant, nil
}

// encodeByteMap renders name-keyed raw bytes in the trace value
// encoding.
func encodeByteMap(in map[string][]byte) map[string]string {
	if len(in) == 0 {
		return nil
	}
	out := make(map[string]string, len(in))
	for name, b := range in {
		out[name] = "0x" + hex.EncodeToString(b)
	}
	return out
}

// decodeByteMap parses trace-encoded values back to raw bytes.
func decodeByteMap(in map[string]string) (map[string][]byte, error) {
	out := make(map[string][]byte, len(in))
	for name, enc := range in {
		b, err := hex.DecodeString(strings.TrimPrefix(enc, "0x"))
		if err != nil {
			return nil, fmt.Errorf("bad value %q for %s: %w", enc, name, err)
		}
		out[name] = b
	}
	return out, nil
}
