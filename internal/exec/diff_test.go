package exec

import (
	"errors"
	"strings"
	"testing"
)

func traceWith(backend string, obs ...map[string]string) *Trace {
	t := NewTrace("m", backend)
	for i, out := range obs {
		t.Events = append(t.Events, Event{Instant: i, Outputs: out})
	}
	return t
}

// TestDiffReportsFirstDivergencePosition pins the replay contract: the
// error always names the earliest diverging instant.
func TestDiffReportsFirstDivergencePosition(t *testing.T) {
	base := traceWith("a",
		map[string]string{"O": ""},
		map[string]string{"P": ""},
		map[string]string{"Q": ""})

	t.Run("agree", func(t *testing.T) {
		if err := Diff(base, traceWith("b",
			map[string]string{"O": ""},
			map[string]string{"P": ""},
			map[string]string{"Q": ""})); err != nil {
			t.Fatalf("identical traces diff: %v", err)
		}
	})

	t.Run("mid-trace divergence", func(t *testing.T) {
		err := Diff(base, traceWith("b",
			map[string]string{"O": ""},
			map[string]string{"X": ""},
			map[string]string{"Q": ""}))
		var de *DiffError
		if !errors.As(err, &de) || de.Instant != 1 {
			t.Fatalf("err = %v, want divergence at instant 1", err)
		}
		if !strings.Contains(err.Error(), "first divergence at instant 1") {
			t.Fatalf("message lacks position: %q", err)
		}
	})

	t.Run("prefix divergence beats length mismatch", func(t *testing.T) {
		// The shorter trace also differs at instant 0: the report must
		// point there, not at the length difference.
		err := Diff(base, traceWith("b", map[string]string{"X": ""}))
		var de *DiffError
		if !errors.As(err, &de) || de.Instant != 0 {
			t.Fatalf("err = %v, want divergence at instant 0", err)
		}
	})

	t.Run("strict prefix", func(t *testing.T) {
		err := Diff(base, traceWith("b",
			map[string]string{"O": ""},
			map[string]string{"P": ""}))
		var de *DiffError
		if !errors.As(err, &de) || de.Instant != 2 {
			t.Fatalf("err = %v, want divergence at instant 2 (first missing)", err)
		}
		if !strings.Contains(err.Error(), "trace ends after 2 instants") {
			t.Fatalf("message lacks prefix explanation: %q", err)
		}
	})
}
