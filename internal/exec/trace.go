package exec

import (
	"bufio"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/ctypes"
	"repro/internal/cval"
)

// TraceVersion is the current trace format version.
const TraceVersion = 1

// Event is one recorded instant. Signal values are encoded as strings:
// "" for a pure (valueless) presence, "0x…" for a valued signal's raw
// big-endian bytes — the same layout cval uses and generated code
// computes, so traces diff bit-for-bit across engines and languages.
type Event struct {
	// Instant is the zero-based instant index.
	Instant int `json:"i"`
	// Inputs maps present input names to encoded values.
	Inputs map[string]string `json:"in,omitempty"`
	// Outputs maps emitted output names to encoded values.
	Outputs map[string]string `json:"out,omitempty"`
	// Terminated marks the program's final instant.
	Terminated bool `json:"term,omitempty"`
}

// Trace is a canonical execution record: which module ran, on which
// backend, and what each instant consumed and emitted. On disk it is
// JSONL: a header object line followed by one Event object per line.
type Trace struct {
	// Version is the format version (TraceVersion).
	Version int `json:"v"`
	// Module names the executed module.
	Module string `json:"module"`
	// Backend names the engine that produced the trace.
	Backend string `json:"backend"`

	// Events are the recorded instants, in order.
	Events []Event `json:"-"`
}

// NewTrace starts an empty trace.
func NewTrace(module, backend string) *Trace {
	return &Trace{Version: TraceVersion, Module: module, Backend: backend}
}

// Append records one executed instant.
func (t *Trace) Append(inputs map[string]cval.Value, res *Result) {
	t.Events = append(t.Events, Event{
		Instant:    len(t.Events),
		Inputs:     EncodeInstant(inputs),
		Outputs:    EncodeInstant(res.Outputs),
		Terminated: res.Terminated,
	})
}

// Encode serializes the trace as JSONL.
func (t *Trace) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(t); err != nil {
		return err
	}
	for _, ev := range t.Events {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTrace parses a JSONL trace. Lines grow as needed: one instant of
// a design with many wide signals (or a batched daemon response) can
// exceed any fixed scanner cap, so lines are assembled through a
// growable buffer instead of bufio.Scanner's hard token limit.
func ReadTrace(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var t *Trace
	for {
		line, readErr := br.ReadString('\n')
		if readErr != nil && readErr != io.EOF {
			return nil, readErr
		}
		if s := strings.TrimSpace(line); s != "" {
			if t == nil {
				t = &Trace{}
				if err := json.Unmarshal([]byte(s), t); err != nil {
					return nil, fmt.Errorf("trace header: %w", err)
				}
				if t.Version != TraceVersion {
					return nil, fmt.Errorf("trace version %d not supported (want %d)", t.Version, TraceVersion)
				}
			} else {
				var ev Event
				if err := json.Unmarshal([]byte(s), &ev); err != nil {
					return nil, fmt.Errorf("trace event %d: %w", len(t.Events), err)
				}
				t.Events = append(t.Events, ev)
			}
		}
		if readErr == io.EOF {
			break
		}
	}
	if t == nil {
		return nil, fmt.Errorf("empty trace")
	}
	return t, nil
}

// EncodeValue renders a signal value canonically: "" for a pure
// presence, "0x…" hex of the big-endian bytes otherwise.
func EncodeValue(v cval.Value) string {
	if !v.IsValid() {
		return ""
	}
	return "0x" + hex.EncodeToString(v.B)
}

// DecodeValue parses an encoded value against the signal's type; ""
// yields the invalid (pure-presence) value.
func DecodeValue(t ctypes.Type, s string) (cval.Value, error) {
	if s == "" {
		return cval.Value{}, nil
	}
	if t == nil {
		return cval.Value{}, fmt.Errorf("value %q for a pure signal", s)
	}
	b, err := hex.DecodeString(strings.TrimPrefix(s, "0x"))
	if err != nil {
		return cval.Value{}, fmt.Errorf("bad value %q: %w", s, err)
	}
	if len(b) != t.Size() {
		return cval.Value{}, fmt.Errorf("value %q: %d bytes for %s (want %d)", s, len(b), t, t.Size())
	}
	return cval.Value{Type: t, B: b}, nil
}

// EncodeInstant renders one instant's signal map.
func EncodeInstant(in map[string]cval.Value) map[string]string {
	if len(in) == 0 {
		return nil
	}
	out := make(map[string]string, len(in))
	for name, v := range in {
		out[name] = EncodeValue(v)
	}
	return out
}

// DecodeInstant parses one instant's input map against a machine's
// input signal types.
func DecodeInstant(m Machine, in map[string]string) (map[string]cval.Value, error) {
	if len(in) == 0 {
		return nil, nil
	}
	types := make(map[string]ctypes.Type, len(m.Inputs()))
	names := make([]string, 0, len(m.Inputs()))
	for _, s := range m.Inputs() {
		types[s.Name] = s.Type
		names = append(names, s.Name)
	}
	sort.Strings(names)
	out := make(map[string]cval.Value, len(in))
	for name, enc := range in {
		t, ok := types[name]
		if !ok {
			return nil, &UnknownInputError{Name: name, Valid: names}
		}
		v, err := DecodeValue(t, enc)
		if err != nil {
			return nil, fmt.Errorf("input %s: %w", name, err)
		}
		out[name] = v
	}
	return out, nil
}

// Record steps the machine through the input instants, recording a
// trace. Recording stops after the instant in which the program
// terminates (that instant is included). Machines stepping through the
// slot-indexed hot path (SlotStepper) are driven through it with one
// reused buffer set.
func Record(m Machine, instants []map[string]cval.Value) (*Trace, error) {
	t := NewTrace(m.Module(), m.Backend())
	step := m.Step
	if sc := newStepSlotScratch(m); sc != nil {
		step = sc.step
	}
	for i, in := range instants {
		res, err := step(in)
		if err != nil {
			return nil, fmt.Errorf("instant %d: %w", i, err)
		}
		t.Append(in, res)
		if res.Terminated {
			break
		}
	}
	return t, nil
}

// Replay drives the machine with a recorded trace's inputs and returns
// the trace the machine actually produced; Diff the two to check
// cross-backend agreement.
func Replay(m Machine, t *Trace) (*Trace, error) {
	got := NewTrace(m.Module(), m.Backend())
	step := m.Step
	if sc := newStepSlotScratch(m); sc != nil {
		step = sc.step
	}
	for _, ev := range t.Events {
		in, err := DecodeInstant(m, ev.Inputs)
		if err != nil {
			return nil, fmt.Errorf("instant %d: %w", ev.Instant, err)
		}
		res, err := step(in)
		if err != nil {
			return nil, fmt.Errorf("instant %d: %w", ev.Instant, err)
		}
		got.Append(in, res)
		if res.Terminated {
			break
		}
	}
	return got, nil
}

// Hook observes executed instants as canonical trace events.
type Hook func(Event)

// WithHook wraps a machine so every successful Step also feeds the
// hook one encoded Event — the pluggable observation point trace
// recording, monitors, and debuggers share. Reset rewinds the instant
// counter.
func WithHook(m Machine, hook Hook) Machine {
	return &hookedMachine{Machine: m, hook: hook}
}

type hookedMachine struct {
	Machine
	hook    Hook
	instant int
}

func (h *hookedMachine) Step(inputs map[string]cval.Value) (*Result, error) {
	res, err := h.Machine.Step(inputs)
	if err != nil {
		return nil, err
	}
	h.hook(Event{
		Instant:    h.instant,
		Inputs:     EncodeInstant(inputs),
		Outputs:    EncodeInstant(res.Outputs),
		Terminated: res.Terminated,
	})
	h.instant++
	return res, nil
}

func (h *hookedMachine) Reset() error {
	if err := h.Machine.Reset(); err != nil {
		return err
	}
	h.instant = 0
	return nil
}

// hookedSnapshot pairs the inner snapshot with the instant counter so
// hook events stay correctly numbered across a restore.
type hookedSnapshot struct {
	inner   Snapshot
	instant int
}

func (h *hookedMachine) Snapshot() (Snapshot, error) {
	inner, err := h.Machine.Snapshot()
	if err != nil {
		return nil, err
	}
	return &hookedSnapshot{inner: inner, instant: h.instant}, nil
}

func (h *hookedMachine) Restore(s Snapshot) error {
	hs, ok := s.(*hookedSnapshot)
	if !ok {
		return fmt.Errorf("exec: hooked machine: cannot restore %T", s)
	}
	if err := h.Machine.Restore(hs.inner); err != nil {
		return err
	}
	h.instant = hs.instant
	return nil
}

// DiffError reports the first observable divergence between two
// traces. Instant is always the position of the first difference:
// when one trace is a strict prefix of the other, it is the first
// instant present on only one side.
type DiffError struct {
	// Instant is the index of the first diverging instant.
	Instant int
	// A and B describe each side's observation at that instant.
	A, B string
}

// Error renders the divergence.
func (e *DiffError) Error() string {
	return fmt.Sprintf("first divergence at instant %d:\n  A: [%s]\n  B: [%s]", e.Instant, e.A, e.B)
}

// Diff compares the observable behavior of two traces — emitted
// outputs and termination, instant by instant — and returns a
// *DiffError at the first divergence (inputs are provenance, not
// compared). Traces of different lengths are compared over their
// common prefix first, so the reported instant is the earliest real
// difference, not just "lengths differ". A nil return means the
// traces agree.
func Diff(a, b *Trace) error {
	n := min(len(a.Events), len(b.Events))
	for i := 0; i < n; i++ {
		ea, eb := a.Events[i], b.Events[i]
		sa := ObservationString(ea.Outputs, ea.Terminated)
		sb := ObservationString(eb.Outputs, eb.Terminated)
		if sa != sb {
			return &DiffError{Instant: i, A: sa, B: sb}
		}
	}
	if len(a.Events) != len(b.Events) {
		return &DiffError{
			Instant: n,
			A:       sideAt(a, n),
			B:       sideAt(b, n),
		}
	}
	return nil
}

// sideAt describes one trace's view of instant i, for length-mismatch
// diffs: either its observation or the fact that it already ended.
func sideAt(t *Trace, i int) string {
	if i >= len(t.Events) {
		return fmt.Sprintf("<trace ends after %d instants> (%s)", len(t.Events), t.Backend)
	}
	ev := t.Events[i]
	return fmt.Sprintf("%s (%d instants total, %s)",
		ObservationString(ev.Outputs, ev.Terminated), len(t.Events), t.Backend)
}

// ObservationString renders one instant's observable behavior
// canonically (sorted "name=value" list, plus a termination marker).
func ObservationString(outputs map[string]string, terminated bool) string {
	parts := make([]string, 0, len(outputs)+1)
	for name, v := range outputs {
		if v == "" {
			parts = append(parts, name)
		} else {
			parts = append(parts, name+"="+v)
		}
	}
	sort.Strings(parts)
	if terminated {
		parts = append(parts, "<terminated>")
	}
	return strings.Join(parts, " ")
}
