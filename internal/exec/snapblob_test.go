package exec

import (
	"encoding/json"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/paperex"
)

// TestSnapshotBlobRoundTrip serializes a mid-run machine on every
// snapshot-capable backend and restores the blob into a fresh machine,
// which must continue byte-identically with the original — across both
// a pure-signal design (abro) and one with valued signals and data
// state (the protocol stack).
func TestSnapshotBlobRoundTrip(t *testing.T) {
	designs := []struct {
		path, src, module string
	}{
		{"abro.ecl", paperex.ABRO, "abro"},
		{"stack.ecl", paperex.Stack, "toplevel"},
	}
	for _, d := range designs {
		design := buildDesign(t, d.path, d.src, d.module)
		for _, backend := range []string{"interp", "efsm", "efsm-min", "efsm-table"} {
			t.Run(d.module+"/"+backend, func(t *testing.T) {
				m, err := Open(backend, design)
				if err != nil {
					t.Fatal(err)
				}
				rng := rand.New(rand.NewSource(42))
				warmup := randomInstantsFor(rng, m, 11, 0.6)
				if _, err := Record(m, warmup); err != nil {
					t.Fatal(err)
				}
				snap, err := m.Snapshot()
				if err != nil {
					t.Fatal(err)
				}
				blob, err := EncodeSnapshot(m, snap, len(warmup))
				if err != nil {
					t.Fatal(err)
				}

				fresh, err := Open(backend, design)
				if err != nil {
					t.Fatal(err)
				}
				restored, instant, err := DecodeSnapshot(fresh, blob)
				if err != nil {
					t.Fatal(err)
				}
				if instant != len(warmup) {
					t.Fatalf("decoded instant %d, want %d", instant, len(warmup))
				}
				if err := fresh.Restore(restored); err != nil {
					t.Fatal(err)
				}

				tail := randomInstantsFor(rng, m, 25, 0.6)
				want, err := Record(m, tail)
				if err != nil {
					t.Fatal(err)
				}
				got, err := Record(fresh, tail)
				if err != nil {
					t.Fatal(err)
				}
				if err := Diff(want, got); err != nil {
					t.Fatalf("restored machine diverged: %v", err)
				}
			})
		}
	}
}

// TestSnapshotBlobValidation rejects blobs from the wrong backend,
// module, or format version, and reports ErrUnsupported for backends
// without portable snapshots.
func TestSnapshotBlobValidation(t *testing.T) {
	abro := buildDesign(t, "abro.ecl", paperex.ABRO, "abro")
	fin := buildDesign(t, "finis.ecl", finisSrc, "finis")

	m, err := Open("efsm", abro)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	blob, err := EncodeSnapshot(m, snap, 0)
	if err != nil {
		t.Fatal(err)
	}

	other, _ := Open("interp", abro)
	if _, _, err := DecodeSnapshot(other, blob); err == nil {
		t.Error("efsm blob decoded on interp")
	}
	wrongModule, _ := Open("efsm", fin)
	if _, _, err := DecodeSnapshot(wrongModule, blob); err == nil {
		t.Error("abro blob decoded on finis")
	}

	var sb SnapshotBlob
	if err := json.Unmarshal(blob, &sb); err != nil {
		t.Fatal(err)
	}
	sb.Version = 99
	bad, _ := json.Marshal(sb)
	if _, _, err := DecodeSnapshot(m, bad); err == nil {
		t.Error("future-version blob decoded")
	}

	simM, err := Open("sim", abro)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EncodeSnapshot(simM, nil, 0); !errors.Is(err, ErrUnsupported) {
		t.Errorf("sim EncodeSnapshot error %v, want ErrUnsupported", err)
	}
}
