package exec

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/cval"
	"repro/internal/paperex"
)

// fuzzCorpus compiles a spread of paper-example modules once: pure
// control (abro), weak abort (runner), valued data paths (assemble,
// checkcrc), and a multi-module product machine (recordctl).
var (
	fuzzOnce    sync.Once
	fuzzDesigns []*core.Design
	fuzzErr     error
)

func fuzzCorpusDesigns() ([]*core.Design, error) {
	fuzzOnce.Do(func() {
		for _, tc := range []struct{ path, src, module string }{
			{"abro.ecl", paperex.ABRO, "abro"},
			{"runner.ecl", paperex.RunnerStop, "runner"},
			{"stack.ecl", paperex.Stack, "assemble"},
			{"stack.ecl", paperex.Stack, "checkcrc"},
			{"buffer.ecl", paperex.Buffer, "recordctl"},
		} {
			prog, err := core.Parse(tc.path, tc.src, core.Options{})
			if err != nil {
				fuzzErr = err
				return
			}
			d, err := prog.Compile(tc.module)
			if err != nil {
				fuzzErr = err
				return
			}
			fuzzDesigns = append(fuzzDesigns, d)
		}
	})
	return fuzzDesigns, fuzzErr
}

// FuzzStep fuzzes the EFSM runtime step function through the Machine
// interface with arbitrary input-presence/value vectors: one byte per
// input per instant (bit 0 = present, remaining bits = value). The
// runtime must never panic, and a snapshot/restore round trip before
// each instant must reproduce the instant bit-for-bit.
func FuzzStep(f *testing.F) {
	if _, err := fuzzCorpusDesigns(); err != nil {
		f.Fatal(err)
	}
	f.Add(uint8(0), []byte{})
	f.Add(uint8(1), []byte{0x01, 0x00, 0xff, 0x83})
	f.Add(uint8(2), []byte{0x41, 0x41, 0x41, 0x41, 0x41, 0x41, 0x41, 0x41})
	f.Add(uint8(3), []byte{0xff, 0xff, 0xff, 0xff, 0x00, 0x00, 0x01, 0x01})
	f.Add(uint8(4), []byte{0x03, 0x05, 0x07, 0x09, 0x0b})
	f.Fuzz(func(t *testing.T, pick uint8, data []byte) {
		designs, err := fuzzCorpusDesigns()
		if err != nil {
			t.Fatal(err)
		}
		design := designs[int(pick)%len(designs)]
		m, err := Open("efsm", design)
		if err != nil {
			t.Fatal(err)
		}
		inputs := m.Inputs()
		if len(inputs) == 0 {
			return
		}
		const maxInstants = 64
		pos := 0
		for instant := 0; instant < maxInstants && pos < len(data); instant++ {
			in := map[string]cval.Value{}
			for _, sig := range inputs {
				if pos >= len(data) {
					break
				}
				b := data[pos]
				pos++
				if b&1 == 0 {
					continue
				}
				var v cval.Value
				if !sig.Pure && sig.Type != nil {
					v = cval.FromInt(sig.Type, int64(b>>1))
				}
				in[sig.Name] = v
			}

			snap, err := m.Snapshot()
			if err != nil {
				t.Fatalf("snapshot: %v", err)
			}
			res1, err1 := m.Step(in)
			if err := m.Restore(snap); err != nil {
				t.Fatalf("restore: %v", err)
			}
			res2, err2 := m.Step(in)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("snapshot round trip changed the outcome: %v vs %v", err1, err2)
			}
			if err1 != nil {
				// A data-execution error (e.g. division by zero driven
				// by a fuzzed value) is a legal outcome; panics are not.
				return
			}
			a := ObservationString(EncodeInstant(res1.Outputs), res1.Terminated)
			b := ObservationString(EncodeInstant(res2.Outputs), res2.Terminated)
			if a != b {
				t.Fatalf("snapshot round trip diverged at instant %d:\n  first:  [%s]\n  replay: [%s]", instant, a, b)
			}
			if res1.Terminated != m.Terminated() {
				t.Fatalf("Terminated() disagrees with the step result")
			}
			if res1.Terminated {
				return
			}
		}
	})
}

// FuzzTableDiff is the differential fuzz for the table-compiled
// backend: the flat-bytecode stepper and the tree-walking EFSM runtime
// are driven with identical arbitrary input vectors and must agree on
// every observation, error outcome, and on a portable snapshot round
// trip taken mid-run.
func FuzzTableDiff(f *testing.F) {
	if _, err := fuzzCorpusDesigns(); err != nil {
		f.Fatal(err)
	}
	f.Add(uint8(0), []byte{})
	f.Add(uint8(1), []byte{0x01, 0x00, 0xff, 0x83})
	f.Add(uint8(2), []byte{0x41, 0x41, 0x41, 0x41, 0x41, 0x41, 0x41, 0x41})
	f.Add(uint8(3), []byte{0xff, 0xff, 0xff, 0xff, 0x00, 0x00, 0x01, 0x01})
	f.Add(uint8(4), []byte{0x03, 0x05, 0x07, 0x09, 0x0b})
	f.Fuzz(func(t *testing.T, pick uint8, data []byte) {
		designs, err := fuzzCorpusDesigns()
		if err != nil {
			t.Fatal(err)
		}
		design := designs[int(pick)%len(designs)]
		ref, err := Open("efsm", design)
		if err != nil {
			t.Fatal(err)
		}
		tab, err := Open("efsm-table", design)
		if err != nil {
			t.Fatal(err)
		}
		inputs := ref.Inputs()
		if len(inputs) == 0 {
			return
		}
		const maxInstants = 64
		pos := 0
		for instant := 0; instant < maxInstants && pos < len(data); instant++ {
			in := map[string]cval.Value{}
			for _, sig := range inputs {
				if pos >= len(data) {
					break
				}
				b := data[pos]
				pos++
				if b&1 == 0 {
					continue
				}
				var v cval.Value
				if !sig.Pure && sig.Type != nil {
					v = cval.FromInt(sig.Type, int64(b>>1))
				}
				in[sig.Name] = v
			}

			// Round-trip the table machine's state through the portable
			// blob every instant: revival must not change behavior.
			snap, err := tab.Snapshot()
			if err != nil {
				t.Fatalf("table snapshot: %v", err)
			}
			blob, err := EncodeSnapshot(tab, snap, instant)
			if err != nil {
				t.Fatalf("table encode: %v", err)
			}
			restored, _, err := DecodeSnapshot(tab, blob)
			if err != nil {
				t.Fatalf("table decode: %v", err)
			}
			if err := tab.Restore(restored); err != nil {
				t.Fatalf("table restore: %v", err)
			}

			res1, err1 := ref.Step(in)
			res2, err2 := tab.Step(in)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("instant %d error outcome diverged: efsm=%v efsm-table=%v", instant, err1, err2)
			}
			if err1 != nil {
				// Both failed (e.g. fuzzed division by zero): legal, but
				// the machines are in backend-defined states now — stop.
				return
			}
			a := ObservationString(EncodeInstant(res1.Outputs), res1.Terminated)
			b := ObservationString(EncodeInstant(res2.Outputs), res2.Terminated)
			if a != b {
				t.Fatalf("instant %d diverged:\n  efsm:       [%s]\n  efsm-table: [%s]", instant, a, b)
			}
			if res1.Terminated {
				return
			}
		}
	})
}
