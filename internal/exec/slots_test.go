package exec

import (
	"math/rand"
	"testing"

	"repro/internal/cval"
	"repro/internal/paperex"
)

// TestPortsResolution checks name↔slot resolution and instant binding
// against the map-path error contract.
func TestPortsResolution(t *testing.T) {
	design := buildDesign(t, "stack.ecl", paperex.Stack, "toplevel")
	m, err := Open("efsm-table", design)
	if err != nil {
		t.Fatal(err)
	}
	s, ok := m.(SlotStepper)
	if !ok {
		t.Fatal("efsm-table machine is not a SlotStepper")
	}
	p := s.Ports()
	if p.NumInputs() != len(m.Inputs()) || p.NumOutputs() != len(m.Outputs()) {
		t.Fatalf("port counts: %d/%d vs %d/%d",
			p.NumInputs(), p.NumOutputs(), len(m.Inputs()), len(m.Outputs()))
	}
	if p.PresentLen() != p.NumInputs()+p.NumOutputs() {
		t.Fatalf("PresentLen %d", p.PresentLen())
	}
	for i, sig := range m.Inputs() {
		slot, ok := p.InputSlot(sig.Name)
		if !ok || slot != i {
			t.Errorf("input %s: slot %d ok=%v, want %d", sig.Name, slot, ok, i)
		}
	}
	for j, sig := range m.Outputs() {
		slot, ok := p.OutputSlot(sig.Name)
		if !ok || slot != j {
			t.Errorf("output %s: slot %d ok=%v, want %d", sig.Name, slot, ok, j)
		}
	}
	if _, ok := p.InputSlot("NOPE"); ok {
		t.Error("unknown input resolved")
	}

	present, vals := p.NewPresent(), p.NewInputs()
	if err := p.BindInstant(map[string]cval.Value{"NOPE": {}}, present, vals); err == nil {
		t.Error("BindInstant accepted an unknown input")
	} else if _, ok := err.(*UnknownInputError); !ok {
		t.Errorf("want UnknownInputError, got %T", err)
	}
	var pure string
	for _, sig := range m.Inputs() {
		if sig.Pure {
			pure = sig.Name
		}
	}
	if pure != "" {
		err := p.BindInstant(map[string]cval.Value{pure: cval.FromBool(true)}, present, vals)
		if _, ok := err.(*PureValueError); !ok {
			t.Errorf("value on pure input %s: want PureValueError, got %v", pure, err)
		}
	}
}

// TestSlotStepABRO drives ABRO's defining scenario entirely through
// the slot-indexed path.
func TestSlotStepABRO(t *testing.T) {
	design := buildDesign(t, "abro.ecl", paperex.ABRO, "abro")
	m, err := Open("efsm-table", design)
	if err != nil {
		t.Fatal(err)
	}
	s := m.(SlotStepper)
	p := s.Ports()
	present, in, out := p.NewPresent(), p.NewInputs(), p.NewOutputs()
	slotO, ok := p.OutputSlot("O")
	if !ok {
		t.Fatal("no output slot O")
	}
	nIn := p.NumInputs()
	step := func(names ...string) bool {
		for i := 0; i < nIn; i++ {
			present[i] = false
		}
		for _, n := range names {
			i, ok := p.InputSlot(n)
			if !ok {
				t.Fatalf("no input slot %s", n)
			}
			present[i] = true
		}
		if _, err := s.StepSlots(present, in, out); err != nil {
			t.Fatal(err)
		}
		return present[nIn+slotO]
	}
	step()
	if step("A") {
		t.Fatal("O before B")
	}
	if !step("B") {
		t.Fatal("no O after A then B")
	}
	if step("A", "B") {
		t.Fatal("O again before reset")
	}
	step("R")
	if !step("A", "B") {
		t.Fatal("no O after reset")
	}
}

// TestSlotStepZeroAllocs is the tentpole's hard performance contract:
// steady-state slot stepping performs no allocations, across a pure
// controller and the valued protocol stack (data guards, C function
// calls, valued emits).
func TestSlotStepZeroAllocs(t *testing.T) {
	cases := []struct {
		path, src, module string
	}{
		{"abro.ecl", paperex.ABRO, "abro"},
		{"stack.ecl", paperex.Stack, "toplevel"},
	}
	for _, tc := range cases {
		t.Run(tc.module, func(t *testing.T) {
			design := buildDesign(t, tc.path, tc.src, tc.module)
			m, err := Open("efsm-table", design)
			if err != nil {
				t.Fatal(err)
			}
			s := m.(SlotStepper)
			p := s.Ports()
			present, in, out := p.NewPresent(), p.NewInputs(), p.NewOutputs()
			// Pre-bind a representative instant: every valued input
			// present with a value, every pure input present.
			for i, sig := range p.Inputs() {
				present[i] = true
				if !sig.Pure && sig.Type != nil {
					in[i] = cval.FromInt(sig.Type, 0x41)
				}
			}
			// Warm up (first steps may lazily touch nothing, but keep
			// the measurement purely steady-state).
			for i := 0; i < 4; i++ {
				if _, err := s.StepSlots(present, in, out); err != nil {
					t.Fatal(err)
				}
			}
			allocs := testing.AllocsPerRun(200, func() {
				if _, err := s.StepSlots(present, in, out); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Errorf("StepSlots allocates %.1f objects/op, want 0", allocs)
			}
		})
	}
}

// TestTableDifferential is the direct table-vs-interpreter diff over
// the fuzz corpus modules (the conformance suite covers the paper
// examples too; this keeps the check close to the implementation and
// under independent seeds).
func TestTableDifferential(t *testing.T) {
	designs, err := fuzzCorpusDesigns()
	if err != nil {
		t.Fatal(err)
	}
	for _, design := range designs {
		ref, err := Open("interp", design)
		if err != nil {
			t.Fatal(err)
		}
		for seed := int64(100); seed < 104; seed++ {
			rng := rand.New(rand.NewSource(seed))
			instants := randomInstantsFor(rng, ref, 80, 0.45)
			want, err := Record(ref, instants)
			if err != nil {
				t.Fatal(err)
			}
			got, err := Open("efsm-table", design)
			if err != nil {
				t.Fatal(err)
			}
			tr, err := Record(got, instants)
			if err != nil {
				t.Fatalf("%s seed %d: %v", ref.Module(), seed, err)
			}
			if err := Diff(want, tr); err != nil {
				t.Errorf("%s seed %d (interp vs efsm-table): %v", ref.Module(), seed, err)
			}
			if err := ref.Reset(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestSessionUsesSlotPath checks that a session over an efsm-table
// machine batches through the slot path and produces the same events
// as the map path.
func TestSessionUsesSlotPath(t *testing.T) {
	design := buildDesign(t, "stack.ecl", paperex.Stack, "toplevel")
	s := NewSession()
	id, err := s.Open("", "efsm-table", design)
	if err != nil {
		t.Fatal(err)
	}
	e, err := s.lookup(id)
	if err != nil {
		t.Fatal(err)
	}
	if e.slots == nil {
		t.Fatal("session entry did not detect the slot path for efsm-table")
	}
	rng := rand.New(rand.NewSource(7))
	ref, err := Open("efsm", design)
	if err != nil {
		t.Fatal(err)
	}
	batch := randomInstantsFor(rng, ref, 40, 0.5)
	want, err := Record(ref, batch)
	if err != nil {
		t.Fatal(err)
	}
	results, err := s.StepBatch(id, batch)
	if err != nil {
		t.Fatal(err)
	}
	got := NewTrace("toplevel", "efsm-table")
	for i, res := range results {
		got.Append(batch[i], res)
	}
	if err := Diff(want, got); err != nil {
		t.Fatalf("session slot path diverged from efsm: %v", err)
	}

	// The interp entry must fall back to the map path.
	id2, err := s.Open("", "interp", design)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := s.lookup(id2)
	if err != nil {
		t.Fatal(err)
	}
	if e2.slots != nil {
		t.Error("interp entry unexpectedly claims the slot path")
	}
}
