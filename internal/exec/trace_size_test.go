package exec

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// TestReadTraceHugeLine is the regression test for the bufio.Scanner
// token cap: one instant of a wide design (or a batched daemon
// response) can exceed 1 MiB on a single JSONL line, which the old
// Scanner-based reader rejected as "token too long". The reader must
// assemble lines of any length.
func TestReadTraceHugeLine(t *testing.T) {
	wide := NewTrace("wide", "efsm")
	// One event whose encoded line is well past the old 1 MiB cap.
	huge := map[string]string{"blob": "0x" + strings.Repeat("ab", 1<<20)}
	wide.Events = append(wide.Events,
		Event{Instant: 0, Inputs: huge, Outputs: map[string]string{"ok": ""}},
		Event{Instant: 1, Terminated: true},
	)
	var buf bytes.Buffer
	if err := wide.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() < 2<<20 {
		t.Fatalf("test trace only %d bytes; not past the old cap", buf.Len())
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatalf("ReadTrace choked on a >1MiB line: %v", err)
	}
	if got.Module != "wide" || !reflect.DeepEqual(got.Events, wide.Events) {
		t.Fatal("huge trace did not round-trip intact")
	}
}

// TestReadTraceNoTrailingNewline accepts a trace whose final event line
// lacks the terminating newline (a truncated-but-complete tail written
// by a non-JSONL-strict producer).
func TestReadTraceNoTrailingNewline(t *testing.T) {
	text := `{"v":1,"module":"m","backend":"efsm"}` + "\n" + `{"i":0,"term":true}`
	got, err := ReadTrace(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Events) != 1 || !got.Events[0].Terminated {
		t.Fatalf("events: %+v", got.Events)
	}
}
