package exec

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/cval"
	"repro/internal/paperex"
)

func buildDesign(t testing.TB, path, src, module string) *core.Design {
	t.Helper()
	prog, err := core.Parse(path, src, core.Options{})
	if err != nil {
		t.Fatalf("parse %s: %v", path, err)
	}
	design, err := prog.Compile(module)
	if err != nil {
		t.Fatalf("compile %s: %v", module, err)
	}
	return design
}

// randomInstantsFor draws a deterministic pseudo-random input sequence
// from a machine's input descriptors.
func randomInstantsFor(rng *rand.Rand, m Machine, n int, p float64) []map[string]cval.Value {
	instants := make([]map[string]cval.Value, n)
	for i := range instants {
		in := map[string]cval.Value{}
		for _, sig := range m.Inputs() {
			if rng.Float64() >= p {
				continue
			}
			var v cval.Value
			if !sig.Pure && sig.Type != nil {
				v = cval.FromInt(sig.Type, int64(rng.Intn(256)))
			}
			in[sig.Name] = v
		}
		instants[i] = in
	}
	return instants
}

func TestRegistry(t *testing.T) {
	names := Backends()
	for _, want := range []string{"interp", "efsm", "efsm-min", "efsm-table", "sim"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("backend %q not registered (have %v)", want, names)
		}
	}
	for _, n := range ConformantBackends() {
		if n == "sim" {
			t.Error("sim must not be conformant (tick semantics, boot reaction)")
		}
	}
	if _, err := Open("no-such-backend", nil); err == nil || !strings.Contains(err.Error(), "interp") {
		t.Errorf("unknown backend error should list the registry: %v", err)
	}
}

// TestMachineABRO drives every conformant backend through ABRO's
// defining scenario via the unified string-keyed interface.
func TestMachineABRO(t *testing.T) {
	design := buildDesign(t, "abro.ecl", paperex.ABRO, "abro")
	for _, backend := range ConformantBackends() {
		t.Run(backend, func(t *testing.T) {
			m, err := Open(backend, design)
			if err != nil {
				t.Fatal(err)
			}
			if m.Module() != "abro" || m.Backend() != backend {
				t.Fatalf("identity: module=%q backend=%q", m.Module(), m.Backend())
			}
			if len(m.Inputs()) != 3 || len(m.Outputs()) != 1 {
				t.Fatalf("interface: %d inputs, %d outputs", len(m.Inputs()), len(m.Outputs()))
			}
			step := func(names ...string) *Result {
				in := map[string]cval.Value{}
				for _, n := range names {
					in[n] = cval.Value{}
				}
				res, err := m.Step(in)
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			step()
			step("A")
			if res := step("B"); len(res.Outputs) != 1 {
				t.Fatalf("O expected after A then B, got %v", res.Outputs)
			} else if _, ok := res.Outputs["O"]; !ok {
				t.Fatalf("O expected, got %v", res.Outputs)
			}
			if res := step("A", "B"); len(res.Outputs) != 0 {
				t.Fatalf("no output expected before reset, got %v", res.Outputs)
			}
			step("R")
			if res := step("A", "B"); len(res.Outputs) != 1 {
				t.Fatalf("O expected after reset, got %v", res.Outputs)
			}

			// Reset rewinds to boot.
			if err := m.Reset(); err != nil {
				t.Fatal(err)
			}
			step()
			step("A")
			if res := step("B"); len(res.Outputs) != 1 {
				t.Fatalf("O expected after Reset, got %v", res.Outputs)
			}
		})
	}
}

func TestStepRejectsBadInputs(t *testing.T) {
	design := buildDesign(t, "abro.ecl", paperex.ABRO, "abro")
	for _, backend := range Backends() {
		t.Run(backend, func(t *testing.T) {
			m, err := Open(backend, design)
			if err != nil {
				t.Fatal(err)
			}
			_, err = m.Step(map[string]cval.Value{"NOPE": {}})
			var ue *UnknownInputError
			if !errors.As(err, &ue) {
				t.Fatalf("want UnknownInputError, got %v", err)
			}
			for _, name := range []string{"A", "B", "R"} {
				found := false
				for _, v := range ue.Valid {
					if v == name {
						found = true
					}
				}
				if !found || !strings.Contains(err.Error(), name) {
					t.Errorf("error should list input %s: %v", name, err)
				}
			}
			// A value on a pure signal is rejected too.
			_, err = m.Step(map[string]cval.Value{"A": cval.FromBool(true)})
			var pe *PureValueError
			if !errors.As(err, &pe) {
				t.Errorf("want PureValueError, got %v", err)
			}
		})
	}
}

// TestSnapshotBranch checks state save-and-branch: after a restore the
// machine replays the same future, for both snapshotting backends.
func TestSnapshotBranch(t *testing.T) {
	design := buildDesign(t, "stack.ecl", paperex.Stack, "toplevel")
	for _, backend := range ConformantBackends() {
		t.Run(backend, func(t *testing.T) {
			m, err := Open(backend, design)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(11))
			prefix := randomInstantsFor(rng, m, 20, 0.4)
			suffix := randomInstantsFor(rng, m, 20, 0.4)
			if _, err := Record(m, prefix); err != nil {
				t.Fatal(err)
			}
			snap, err := m.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			first, err := Record(m, suffix)
			if err != nil {
				t.Fatal(err)
			}
			if err := m.Restore(snap); err != nil {
				t.Fatal(err)
			}
			second, err := Record(m, suffix)
			if err != nil {
				t.Fatal(err)
			}
			if err := Diff(first, second); err != nil {
				t.Fatalf("snapshot/restore not transparent: %v", err)
			}
		})
	}

	// The sim backend declares snapshots unsupported.
	m, err := Open("sim", design)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Snapshot(); !errors.Is(err, ErrUnsupported) {
		t.Errorf("sim snapshot: want ErrUnsupported, got %v", err)
	}

	// A snapshot must not restore into a machine over a different
	// automaton: a separate parse of the same source has foreign signal
	// and state identities.
	other := buildDesign(t, "stack.ecl", paperex.Stack, "toplevel")
	for _, backend := range []string{"interp", "efsm"} {
		a, err := Open(backend, design)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Open(backend, other)
		if err != nil {
			t.Fatal(err)
		}
		snap, err := a.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if err := b.Restore(snap); err == nil {
			t.Errorf("%s: snapshot restored into a machine over a different parse", backend)
		}
	}
}

func TestTraceRoundTripAndReplay(t *testing.T) {
	design := buildDesign(t, "buffer.ecl", paperex.Buffer, "bufferctl")
	m, err := Open("efsm", design)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	instants := randomInstantsFor(rng, m, 50, 0.35)
	recorded, err := Record(m, instants)
	if err != nil {
		t.Fatal(err)
	}
	if recorded.Module != "bufferctl" || recorded.Backend != "efsm" {
		t.Fatalf("trace header: %+v", recorded)
	}

	// JSONL round trip.
	var buf bytes.Buffer
	if err := recorded.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Module != recorded.Module || len(back.Events) != len(recorded.Events) {
		t.Fatalf("round trip lost events: %d vs %d", len(back.Events), len(recorded.Events))
	}
	if err := Diff(recorded, back); err != nil {
		t.Fatalf("round trip changed observations: %v", err)
	}

	// Replay against a different backend must agree.
	ref, err := Open("interp", design)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Replay(ref, back)
	if err != nil {
		t.Fatal(err)
	}
	if err := Diff(back, got); err != nil {
		t.Fatalf("interp replay diverged: %v", err)
	}
}

func TestWithHook(t *testing.T) {
	design := buildDesign(t, "abro.ecl", paperex.ABRO, "abro")
	inner, err := Open("efsm", design)
	if err != nil {
		t.Fatal(err)
	}
	var events []Event
	m := WithHook(inner, func(ev Event) { events = append(events, ev) })
	if _, err := m.Step(nil); err != nil { // boot instant (await is delayed)
		t.Fatal(err)
	}
	if _, err := m.Step(map[string]cval.Value{"A": {}}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Step(map[string]cval.Value{"B": {}}); err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 || events[0].Instant != 0 || events[2].Instant != 2 {
		t.Fatalf("hook events: %+v", events)
	}
	if _, ok := events[2].Outputs["O"]; !ok {
		t.Fatalf("hook missed output: %+v", events[2])
	}
	if err := m.Reset(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Step(nil); err != nil {
		t.Fatal(err)
	}
	if last := events[len(events)-1]; last.Instant != 0 {
		t.Fatalf("reset should rewind hook instants: %+v", last)
	}
}

func TestParseScript(t *testing.T) {
	design := buildDesign(t, "stack.ecl", paperex.Stack, "toplevel")
	m, err := Open("efsm", design)
	if err != nil {
		t.Fatal(err)
	}
	in, err := ParseScriptLine(m, "in_byte=0x41  # one byte")
	if err != nil {
		t.Fatal(err)
	}
	v, ok := in["in_byte"]
	if !ok || !v.IsValid() || v.Int() != 0x41 {
		t.Fatalf("parsed instant: %v", in)
	}
	if _, err := ParseScriptLine(m, "bogus"); err == nil ||
		!strings.Contains(err.Error(), "in_byte") {
		t.Errorf("unknown input should list valid names: %v", err)
	}
	if in, err := ParseScriptLine(m, "   # idle"); err != nil || len(in) != 0 {
		t.Errorf("comment line: %v %v", in, err)
	}
}

// TestSimBackend checks the RTOS adaptation end to end: a packet
// pushed through the stack's single-task system emits the same byte
// stream the EFSM emits (per-tick delivery order aside, the sync
// system is the same machine under the RTOS).
func TestSimBackend(t *testing.T) {
	design := buildDesign(t, "stack.ecl", paperex.Stack, "toplevel")
	m, err := Open("sim", design)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Inputs()) == 0 || len(m.Outputs()) == 0 {
		t.Fatalf("sim interface empty: %v %v", m.Inputs(), m.Outputs())
	}
	var inByte Signal
	for _, s := range m.Inputs() {
		if s.Name == "in_byte" {
			inByte = s
		}
	}
	if inByte.Type == nil {
		t.Fatalf("in_byte missing from sim inputs: %v", m.Inputs())
	}
	pkt := paperex.MakePacket(true)
	var emitted int
	if _, err := m.Step(nil); err != nil { // boot tick
		t.Fatal(err)
	}
	for j := 0; j < paperex.PktSize; j++ {
		res, err := m.Step(map[string]cval.Value{
			"in_byte": cval.FromInt(inByte.Type, int64(pkt[j])),
		})
		if err != nil {
			t.Fatal(err)
		}
		emitted += len(res.Outputs)
	}
	// The header scan needs a short inter-packet gap to finish.
	for j := 0; j < paperex.HdrSize+2; j++ {
		res, err := m.Step(nil)
		if err != nil {
			t.Fatal(err)
		}
		emitted += len(res.Outputs)
	}
	if emitted == 0 {
		t.Error("good packet produced no outputs through the sim backend")
	}
	// The design's own analysis tables must survive a sim open: the
	// efsm backend still works afterwards.
	em, err := Open("efsm", design)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := em.Step(nil); err != nil {
		t.Fatal(err)
	}
}
