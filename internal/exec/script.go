package exec

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/cval"
)

// ParseScriptLine parses one eclsim script line into an input instant
// for the machine: a whitespace-separated list of present inputs, with
// values as name=int for valued signals; '#' starts a comment; a blank
// line is an idle instant. Unknown signal names and values on pure
// signals are rejected with the machine's valid input list.
func ParseScriptLine(m Machine, line string) (map[string]cval.Value, error) {
	if idx := strings.IndexByte(line, '#'); idx >= 0 {
		line = line[:idx]
	}
	sigs := make(map[string]Signal, len(m.Inputs()))
	names := make([]string, 0, len(m.Inputs()))
	for _, s := range m.Inputs() {
		sigs[s.Name] = s
		names = append(names, s.Name)
	}
	sort.Strings(names)
	in := map[string]cval.Value{}
	for _, tok := range strings.Fields(line) {
		name, valText, hasVal := strings.Cut(tok, "=")
		sig, ok := sigs[name]
		if !ok {
			return nil, &UnknownInputError{Name: name, Valid: names}
		}
		var v cval.Value
		if hasVal {
			if sig.Pure {
				return nil, &PureValueError{Name: name}
			}
			x, err := strconv.ParseInt(valText, 0, 64)
			if err != nil {
				return nil, fmt.Errorf("bad value %q for input %s", valText, name)
			}
			v = cval.FromInt(sig.Type, x)
		}
		in[name] = v
	}
	return in, nil
}

// ParseScript parses a whole script, one instant per line.
func ParseScript(m Machine, lines []string) ([]map[string]cval.Value, error) {
	instants := make([]map[string]cval.Value, len(lines))
	for i, line := range lines {
		in, err := ParseScriptLine(m, line)
		if err != nil {
			return nil, fmt.Errorf("instant %d: %w", i, err)
		}
		instants[i] = in
	}
	return instants, nil
}
