// Package exec is the unified execution entry point for compiled ECL
// designs, mirroring what internal/driver is for compilation. The
// paper's environment runs a design many ways — reference
// interpretation, the compiled-EFSM software implementation, RTOS
// system simulation, synthesized code — and each engine historically
// had its own incompatible stepping interface. This package gives them
// one: a Machine is any engine that can run a design one synchronous
// instant at a time with string-keyed typed signal values, report
// termination, and (where the backend supports it) save and branch its
// full state.
//
// Backends register themselves by name (interp, efsm, efsm-min, sim);
// Open instantiates one over a compiled Design. A canonical JSONL
// Trace format (trace.go) records, replays, and diffs executions
// across backends — including externally generated code — and the
// Session layer (session.go) manages many concurrently stepping
// machines in one process.
package exec

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/ctypes"
	"repro/internal/cval"
	"repro/internal/kernel"
)

// Signal describes one interface signal of a machine.
type Signal struct {
	// Name is the signal's unique name within the design.
	Name string
	// Pure reports whether the signal carries no value.
	Pure bool
	// Type is the carried value's C type (nil for pure signals).
	Type ctypes.Type
}

// Result reports one executed instant.
type Result struct {
	// Outputs maps each emitted output signal's name to its carried
	// value (an invalid Value for pure signals).
	Outputs map[string]cval.Value
	// Terminated reports whether the program finished this instant.
	Terminated bool
}

// Snapshot is an opaque, backend-owned copy of a machine's full
// execution state. A snapshot taken from one machine restores into any
// machine opened by the same backend over the same design.
type Snapshot interface{}

// ErrUnsupported is returned by Snapshot/Restore on backends that
// cannot save and branch state (e.g. the RTOS system simulator).
var ErrUnsupported = errors.New("exec: operation not supported by this backend")

// Machine is one runnable instance of a compiled design. Machines are
// not safe for concurrent use; the Session layer serializes access.
//
// Extension interfaces: a backend whose hot path is slot-indexed also
// implements SlotStepper (Ports plus StepSlots); consumers must
// type-assert and fall back to Step when the assertion fails, and a
// machine that implements SlotStepper must give both paths identical
// observable behavior — Step is conventionally a thin adapter
// (SlotAdapter) over StepSlots.
type Machine interface {
	// Backend names the engine that opened this machine.
	Backend() string
	// Module names the executed module.
	Module() string
	// Inputs lists the machine's input signals.
	Inputs() []Signal
	// Outputs lists the machine's output signals.
	Outputs() []Signal
	// Step runs one synchronous instant. The map keys name the present
	// input signals; valued inputs carry their value (an invalid Value
	// leaves the signal's stored value unchanged). Naming a signal that
	// is not an input of the module is an error (*UnknownInputError).
	Step(inputs map[string]cval.Value) (*Result, error)
	// Reset returns the machine to its boot state.
	Reset() error
	// Terminated reports whether the program has finished.
	Terminated() bool
	// Snapshot captures the machine's full state, or ErrUnsupported.
	Snapshot() (Snapshot, error)
	// Restore rewinds to a snapshot taken from a machine of the same
	// backend over the same design, or ErrUnsupported.
	Restore(Snapshot) error
}

// UnknownInputError reports a Step or script input naming a signal
// that is not an input of the simulated module.
type UnknownInputError struct {
	// Name is the offending signal name.
	Name string
	// Valid lists the module's actual input names, sorted.
	Valid []string
}

// Error lists the valid input names so the caller can fix the script.
func (e *UnknownInputError) Error() string {
	if len(e.Valid) == 0 {
		return fmt.Sprintf("unknown input %q (the module has no inputs)", e.Name)
	}
	return fmt.Sprintf("unknown input %q (module inputs: %s)", e.Name, strings.Join(e.Valid, ", "))
}

// PureValueError reports a value given for a pure signal.
type PureValueError struct{ Name string }

// Error names the pure signal.
func (e *PureValueError) Error() string {
	return fmt.Sprintf("input %s is pure and carries no value", e.Name)
}

// ---------------------------------------------------------------------------
// Backend registry

// Backend is a named execution engine that can open Machines over
// compiled designs.
type Backend struct {
	// Name is the registry key (eclsim's -backend flag).
	Name string
	// Description is a one-line summary for usage messages.
	Description string
	// Conformant reports whether the backend steps with the reference
	// reaction semantics (one Step == one synchronous instant with no
	// extra boot reaction), making it eligible for N-way trace diffing.
	Conformant bool
	// Open instantiates a machine over a compiled design.
	Open func(d *core.Design) (Machine, error)
}

var (
	registryMu sync.RWMutex
	registry   = map[string]Backend{}
)

// Register adds a backend; it panics on a duplicate or empty name.
func Register(b Backend) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if b.Name == "" || b.Open == nil {
		panic("exec: Register with empty name or nil opener")
	}
	if _, dup := registry[b.Name]; dup {
		panic("exec: duplicate backend " + b.Name)
	}
	registry[b.Name] = b
}

// Backends lists the registered backend names, sorted.
func Backends() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// ConformantBackends lists the backends eligible for trace diffing.
func ConformantBackends() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	var names []string
	for name, b := range registry {
		if b.Conformant {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

// Lookup returns the named backend.
func Lookup(name string) (Backend, bool) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	b, ok := registry[name]
	return b, ok
}

// Open instantiates the named backend over a compiled design.
func Open(backend string, d *core.Design) (Machine, error) {
	b, ok := Lookup(backend)
	if !ok {
		return nil, fmt.Errorf("exec: unknown backend %q (available: %s)",
			backend, strings.Join(Backends(), ", "))
	}
	return b.Open(d)
}

// ---------------------------------------------------------------------------
// Signal-name translation shared by the kernel-signal backends

// sigTable maps between the string-keyed exec interface and a set of
// kernel signal identities.
type sigTable struct {
	inputs   []Signal
	outputs  []Signal
	inByName map[string]*kernel.Signal
	inNames  []string // sorted, for error messages
}

func newSigTable(inputs, outputs []*kernel.Signal) *sigTable {
	t := &sigTable{inByName: make(map[string]*kernel.Signal, len(inputs))}
	for _, s := range inputs {
		t.inputs = append(t.inputs, Signal{Name: s.Name, Pure: s.Pure, Type: s.Type})
		t.inByName[s.Name] = s
		t.inNames = append(t.inNames, s.Name)
	}
	sort.Strings(t.inNames)
	for _, s := range outputs {
		t.outputs = append(t.outputs, Signal{Name: s.Name, Pure: s.Pure, Type: s.Type})
	}
	return t
}

// resolve translates a string-keyed input instant onto the module's
// signal identities, rejecting unknown names and values on pure
// signals.
func (t *sigTable) resolve(in map[string]cval.Value) (map[*kernel.Signal]cval.Value, error) {
	out := make(map[*kernel.Signal]cval.Value, len(in))
	for name, val := range in {
		sig, ok := t.inByName[name]
		if !ok {
			return nil, &UnknownInputError{Name: name, Valid: t.inNames}
		}
		if val.IsValid() && sig.Pure {
			return nil, &PureValueError{Name: name}
		}
		out[sig] = val
	}
	return out, nil
}

// nameOutputs translates an output map back to string keys, cloning
// values so the caller owns them.
func nameOutputs(outs map[*kernel.Signal]cval.Value) map[string]cval.Value {
	named := make(map[string]cval.Value, len(outs))
	for sig, val := range outs {
		if val.IsValid() {
			named[sig.Name] = val.Clone()
		} else {
			named[sig.Name] = cval.Value{}
		}
	}
	return named
}
