package exec

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/cval"
)

// Session manages many independently stepping machines in one process
// — the serving substrate for concurrent simulations. Machines are
// id-addressed; each is guarded by its own mutex, so different
// machines step fully in parallel while a single machine's instants
// stay serialized. Snapshot-capable backends support forking: a forked
// machine is a fresh instance restored to the source's state, after
// which the two branch independently.
//
// A Session is safe for concurrent use.
type Session struct {
	mu      sync.Mutex
	entries map[string]*sessionEntry
	nextID  int
}

type sessionEntry struct {
	mu      sync.Mutex
	backend string
	design  *core.Design
	m       Machine
	instant int
}

// NewSession returns an empty session.
func NewSession() *Session {
	return &Session{entries: map[string]*sessionEntry{}}
}

// Open instantiates a machine of the named backend over the design and
// registers it under id (empty id allocates "m0", "m1", …). It returns
// the id the machine is addressable under.
func (s *Session) Open(id, backend string, d *core.Design) (string, error) {
	m, err := Open(backend, d)
	if err != nil {
		return "", err
	}
	return s.add(id, &sessionEntry{backend: backend, design: d, m: m})
}

// add registers a fully initialized entry; other goroutines can only
// address the machine once it is in the map.
func (s *Session) add(id string, e *sessionEntry) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if id == "" {
		// Skip ids already taken explicitly: Open("m0", ...) followed
		// by Open("", ...) must allocate the next free id, not collide.
		for {
			id = fmt.Sprintf("m%d", s.nextID)
			s.nextID++
			if _, taken := s.entries[id]; !taken {
				break
			}
		}
	}
	if _, dup := s.entries[id]; dup {
		return "", fmt.Errorf("session: machine %q already exists", id)
	}
	s.entries[id] = e
	return id, nil
}

// lookup finds an entry under the session lock.
func (s *Session) lookup(id string) (*sessionEntry, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[id]
	if !ok {
		return nil, fmt.Errorf("session: no machine %q", id)
	}
	return e, nil
}

// Step runs one instant of the identified machine.
func (s *Session) Step(id string, inputs map[string]cval.Value) (*Result, error) {
	e, err := s.lookup(id)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	res, err := e.m.Step(inputs)
	if err != nil {
		return nil, fmt.Errorf("machine %q instant %d: %w", id, e.instant, err)
	}
	e.instant++
	return res, nil
}

// Instant returns how many instants the machine has executed.
func (s *Session) Instant(id string) (int, error) {
	e, err := s.lookup(id)
	if err != nil {
		return 0, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.instant, nil
}

// Terminated reports whether the identified machine has finished.
func (s *Session) Terminated(id string) (bool, error) {
	e, err := s.lookup(id)
	if err != nil {
		return false, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.m.Terminated(), nil
}

// Reset rewinds the identified machine to its boot state.
func (s *Session) Reset(id string) error {
	e, err := s.lookup(id)
	if err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.m.Reset(); err != nil {
		return err
	}
	e.instant = 0
	return nil
}

// Fork snapshots the src machine and opens a fresh machine of the same
// backend restored to that state under dst (empty dst allocates an
// id). The two machines then evolve independently. Backends without
// snapshot support return ErrUnsupported. The forked machine is fully
// restored before it becomes addressable, so a concurrent Step can
// never observe it in boot state.
func (s *Session) Fork(src, dst string) (string, error) {
	e, err := s.lookup(src)
	if err != nil {
		return "", err
	}
	e.mu.Lock()
	snap, err := e.m.Snapshot()
	instant := e.instant
	e.mu.Unlock()
	if err != nil {
		return "", fmt.Errorf("session: fork %q: %w", src, err)
	}
	m, err := Open(e.backend, e.design)
	if err != nil {
		return "", err
	}
	if err := m.Restore(snap); err != nil {
		return "", fmt.Errorf("session: fork %q: %w", src, err)
	}
	return s.add(dst, &sessionEntry{backend: e.backend, design: e.design, m: m, instant: instant})
}

// Close removes the identified machine.
func (s *Session) Close(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.entries[id]; !ok {
		return fmt.Errorf("session: no machine %q", id)
	}
	delete(s.entries, id)
	return nil
}

// IDs lists the session's machine ids, sorted.
func (s *Session) IDs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]string, 0, len(s.entries))
	for id := range s.entries {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Len reports how many machines the session holds.
func (s *Session) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}
