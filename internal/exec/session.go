package exec

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/cval"
)

// Session manages many independently stepping machines in one process
// — the serving substrate for concurrent simulations. Machines are
// id-addressed; each is guarded by its own mutex, so different
// machines step fully in parallel while a single machine's instants
// stay serialized. Snapshot-capable backends support forking: a forked
// machine is a fresh instance restored to the source's state, after
// which the two branch independently.
//
// A Session is safe for concurrent use.
type Session struct {
	mu      sync.Mutex
	entries map[string]*sessionEntry
	nextID  int
}

type sessionEntry struct {
	mu      sync.Mutex
	backend string
	design  *core.Design
	m       Machine
	// slots is non-nil when the machine steps through the slot-indexed
	// hot path (SlotStepper); the batch loops then bypass per-instant
	// map translation inside the backend. Guarded by mu like the
	// machine itself.
	slots   *stepSlotScratch
	instant int
	// closed marks an entry whose machine has been shut down (Close or
	// Evict). It is guarded by mu, so setting it serializes with any
	// in-flight Step/Fork/Reset on the same machine, and every
	// operation that acquires mu afterwards fails cleanly instead of
	// running against a machine its owner believes gone.
	closed bool
}

// guard reports the closed state; call with e.mu held.
func (e *sessionEntry) guard(id string) error {
	if e.closed {
		return fmt.Errorf("session: machine %q is closed", id)
	}
	return nil
}

// step runs one instant through the machine's fastest stepping path;
// call with e.mu held.
func (e *sessionEntry) step(in map[string]cval.Value) (*Result, error) {
	if e.slots != nil {
		return e.slots.step(in)
	}
	return e.m.Step(in)
}

// newSessionEntry prepares an entry, detecting the slot-indexed path.
func newSessionEntry(backend string, d *core.Design, m Machine, instant int) *sessionEntry {
	return &sessionEntry{
		backend: backend,
		design:  d,
		m:       m,
		slots:   newStepSlotScratch(m),
		instant: instant,
	}
}

// NewSession returns an empty session.
func NewSession() *Session {
	return &Session{entries: map[string]*sessionEntry{}}
}

// Open instantiates a machine of the named backend over the design and
// registers it under id (empty id allocates "m0", "m1", …). It returns
// the id the machine is addressable under.
func (s *Session) Open(id, backend string, d *core.Design) (string, error) {
	m, err := Open(backend, d)
	if err != nil {
		return "", err
	}
	return s.add(id, newSessionEntry(backend, d, m, 0))
}

// add registers a fully initialized entry; other goroutines can only
// address the machine once it is in the map.
func (s *Session) add(id string, e *sessionEntry) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if id == "" {
		// Skip ids already taken explicitly: Open("m0", ...) followed
		// by Open("", ...) must allocate the next free id, not collide.
		for {
			id = fmt.Sprintf("m%d", s.nextID)
			s.nextID++
			if _, taken := s.entries[id]; !taken {
				break
			}
		}
	}
	if _, dup := s.entries[id]; dup {
		return "", fmt.Errorf("session: machine %q already exists", id)
	}
	s.entries[id] = e
	return id, nil
}

// lookup finds an entry under the session lock.
func (s *Session) lookup(id string) (*sessionEntry, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[id]
	if !ok {
		return nil, fmt.Errorf("session: no machine %q", id)
	}
	return e, nil
}

// Step runs one instant of the identified machine.
func (s *Session) Step(id string, inputs map[string]cval.Value) (*Result, error) {
	e, err := s.lookup(id)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.guard(id); err != nil {
		return nil, err
	}
	res, err := e.step(inputs)
	if err != nil {
		return nil, fmt.Errorf("machine %q instant %d: %w", id, e.instant, err)
	}
	e.instant++
	return res, nil
}

// StepBatch runs the machine through the input instants under one
// lock acquisition — the building block of the daemon's batched
// stepping, where the round trip rather than the step dominates.
// Stepping stops after the instant in which the program terminates
// (that instant's result is included). On a step error the results of
// the instants that did execute are returned alongside it.
func (s *Session) StepBatch(id string, batch []map[string]cval.Value) ([]*Result, error) {
	e, err := s.lookup(id)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.guard(id); err != nil {
		return nil, err
	}
	results := make([]*Result, 0, len(batch))
	for _, in := range batch {
		res, err := e.step(in)
		if err != nil {
			return results, fmt.Errorf("machine %q instant %d: %w", id, e.instant, err)
		}
		e.instant++
		results = append(results, res)
		if res.Terminated {
			break
		}
	}
	return results, nil
}

// StepEvents is StepBatch at the wire level: input instants arrive as
// encoded trace-event input maps, and each executed instant comes back
// as a full canonical trace Event (numbered by the machine's own
// instant counter) — so a daemon conversation transcribed as JSONL is
// literally a replayable trace. Events produced before a decode or
// step error are returned alongside it.
func (s *Session) StepEvents(id string, inputs []map[string]string) ([]Event, error) {
	e, err := s.lookup(id)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.guard(id); err != nil {
		return nil, err
	}
	events := make([]Event, 0, len(inputs))
	for _, enc := range inputs {
		in, err := DecodeInstant(e.m, enc)
		if err != nil {
			return events, fmt.Errorf("machine %q instant %d: %w", id, e.instant, err)
		}
		res, err := e.step(in)
		if err != nil {
			return events, fmt.Errorf("machine %q instant %d: %w", id, e.instant, err)
		}
		events = append(events, Event{
			Instant:    e.instant,
			Inputs:     EncodeInstant(in),
			Outputs:    EncodeInstant(res.Outputs),
			Terminated: res.Terminated,
		})
		e.instant++
		if res.Terminated {
			break
		}
	}
	return events, nil
}

// Instant returns how many instants the machine has executed.
func (s *Session) Instant(id string) (int, error) {
	e, err := s.lookup(id)
	if err != nil {
		return 0, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.guard(id); err != nil {
		return 0, err
	}
	return e.instant, nil
}

// MachineInfo describes one session machine's identity and progress.
type MachineInfo struct {
	ID         string
	Backend    string
	Module     string
	Instant    int
	Terminated bool
	Inputs     []Signal
	Outputs    []Signal
}

// Info reports a machine's identity, interface, and progress in one
// consistent observation.
func (s *Session) Info(id string) (MachineInfo, error) {
	e, err := s.lookup(id)
	if err != nil {
		return MachineInfo{}, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.guard(id); err != nil {
		return MachineInfo{}, err
	}
	return MachineInfo{
		ID:         id,
		Backend:    e.backend,
		Module:     e.m.Module(),
		Instant:    e.instant,
		Terminated: e.m.Terminated(),
		Inputs:     e.m.Inputs(),
		Outputs:    e.m.Outputs(),
	}, nil
}

// Terminated reports whether the identified machine has finished.
func (s *Session) Terminated(id string) (bool, error) {
	e, err := s.lookup(id)
	if err != nil {
		return false, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.guard(id); err != nil {
		return false, err
	}
	return e.m.Terminated(), nil
}

// Reset rewinds the identified machine to its boot state.
func (s *Session) Reset(id string) error {
	e, err := s.lookup(id)
	if err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.guard(id); err != nil {
		return err
	}
	if err := e.m.Reset(); err != nil {
		return err
	}
	e.instant = 0
	return nil
}

// Fork snapshots the src machine and opens a fresh machine of the same
// backend restored to that state under dst (empty dst allocates an
// id). The two machines then evolve independently. Backends without
// snapshot support return ErrUnsupported. The forked machine is fully
// restored before it becomes addressable, so a concurrent Step can
// never observe it in boot state.
func (s *Session) Fork(src, dst string) (string, error) {
	e, err := s.lookup(src)
	if err != nil {
		return "", err
	}
	e.mu.Lock()
	if err := e.guard(src); err != nil {
		e.mu.Unlock()
		return "", err
	}
	snap, err := e.m.Snapshot()
	instant := e.instant
	e.mu.Unlock()
	if err != nil {
		return "", fmt.Errorf("session: fork %q: %w", src, err)
	}
	m, err := Open(e.backend, e.design)
	if err != nil {
		return "", err
	}
	if err := m.Restore(snap); err != nil {
		return "", fmt.Errorf("session: fork %q: %w", src, err)
	}
	return s.add(dst, newSessionEntry(e.backend, e.design, m, instant))
}

// Close removes the identified machine. It serializes with the
// machine's own mutex, so an in-flight Step or Fork on another
// goroutine finishes (or fails) before the machine is considered
// closed — never silently continuing against a machine the caller
// believes gone — and any operation arriving after Close fails
// cleanly. Of two racing Closes exactly one succeeds.
func (s *Session) Close(id string) error {
	e, err := s.lookup(id)
	if err != nil {
		return err
	}
	e.mu.Lock()
	if err := e.guard(id); err != nil {
		e.mu.Unlock()
		return err
	}
	e.closed = true
	e.mu.Unlock()
	s.remove(id, e)
	return nil
}

// remove drops a closed entry from the id map (only if the id still
// names this entry: the id may have been reused after an earlier
// removal).
func (s *Session) remove(id string, e *sessionEntry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.entries[id] == e {
		delete(s.entries, id)
	}
}

// Evict atomically serializes and closes a machine: the snapshot is
// taken and encoded under the machine's own lock, so no concurrent
// Step can slip between the captured state and the close. The returned
// blob revives the machine via Restore — the daemon's idle-session
// persistence. Backends without portable snapshots (sim) report
// ErrUnsupported and stay open.
func (s *Session) Evict(id string) ([]byte, error) {
	e, err := s.lookup(id)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	if err := e.guard(id); err != nil {
		e.mu.Unlock()
		return nil, err
	}
	snap, err := e.m.Snapshot()
	if err != nil {
		e.mu.Unlock()
		return nil, fmt.Errorf("session: evict %q: %w", id, err)
	}
	blob, err := EncodeSnapshot(e.m, snap, e.instant)
	if err != nil {
		e.mu.Unlock()
		return nil, fmt.Errorf("session: evict %q: %w", id, err)
	}
	e.closed = true
	e.mu.Unlock()
	s.remove(id, e)
	return blob, nil
}

// Restore opens a machine of the named backend over the design,
// rewinds it to an Evict-produced blob, and registers it under id
// (empty id allocates one) — the other half of daemon session
// revival. The machine is fully restored before it becomes
// addressable.
func (s *Session) Restore(id, backend string, d *core.Design, blob []byte) (string, error) {
	m, err := Open(backend, d)
	if err != nil {
		return "", err
	}
	snap, instant, err := DecodeSnapshot(m, blob)
	if err != nil {
		return "", fmt.Errorf("session: restore %q: %w", id, err)
	}
	if err := m.Restore(snap); err != nil {
		return "", fmt.Errorf("session: restore %q: %w", id, err)
	}
	return s.add(id, newSessionEntry(backend, d, m, instant))
}

// IDs lists the session's machine ids, sorted.
func (s *Session) IDs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]string, 0, len(s.entries))
	for id := range s.entries {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Len reports how many machines the session holds.
func (s *Session) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}
