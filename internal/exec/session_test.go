package exec

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/cval"
	"repro/internal/paperex"
)

// TestSessionConcurrentSteps serves many independent simulations from
// one session: machines of different backends over different designs,
// stepped from concurrent goroutines (the -race run is the point).
func TestSessionConcurrentSteps(t *testing.T) {
	abro := buildDesign(t, "abro.ecl", paperex.ABRO, "abro")
	stack := buildDesign(t, "stack.ecl", paperex.Stack, "toplevel")
	s := NewSession()

	type job struct {
		id     string
		design string
	}
	var jobs []job
	for i := 0; i < 4; i++ {
		for _, backend := range []string{"interp", "efsm", "efsm-min"} {
			id, err := s.Open("", backend, abro)
			if err != nil {
				t.Fatal(err)
			}
			jobs = append(jobs, job{id, "abro"})
			id, err = s.Open(fmt.Sprintf("stack-%s-%d", backend, i), backend, stack)
			if err != nil {
				t.Fatal(err)
			}
			jobs = append(jobs, job{id, "stack"})
		}
	}
	if s.Len() != len(jobs) {
		t.Fatalf("session holds %d machines, want %d", s.Len(), len(jobs))
	}

	var wg sync.WaitGroup
	errs := make(chan error, len(jobs))
	for w, jb := range jobs {
		wg.Add(1)
		go func(w int, jb job) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 40; i++ {
				in := map[string]cval.Value{}
				if jb.design == "abro" {
					for _, name := range []string{"A", "B", "R"} {
						if rng.Intn(2) == 1 {
							in[name] = cval.Value{}
						}
					}
				}
				if _, err := s.Step(jb.id, in); err != nil {
					errs <- fmt.Errorf("%s: %w", jb.id, err)
					return
				}
			}
		}(w, jb)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	for _, jb := range jobs {
		n, err := s.Instant(jb.id)
		if err != nil {
			t.Fatal(err)
		}
		if n != 40 {
			t.Errorf("%s: %d instants, want 40", jb.id, n)
		}
	}
}

// TestSessionFork branches one simulation mid-run and checks the two
// branches evolve independently from the shared snapshot point.
func TestSessionFork(t *testing.T) {
	abro := buildDesign(t, "abro.ecl", paperex.ABRO, "abro")
	s := NewSession()
	id, err := s.Open("root", "efsm", abro)
	if err != nil {
		t.Fatal(err)
	}
	// Arm A: the fork point is after A has been seen.
	if _, err := s.Step(id, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Step(id, map[string]cval.Value{"A": {}}); err != nil {
		t.Fatal(err)
	}
	fork, err := s.Fork(id, "branch")
	if err != nil {
		t.Fatal(err)
	}
	if fork != "branch" {
		t.Fatalf("fork id %q", fork)
	}
	if n, _ := s.Instant(fork); n != 2 {
		t.Fatalf("fork inherits instant count, got %d", n)
	}

	// The branch completes AB and emits O; the root instead resets, so
	// its B alone must NOT emit.
	res, err := s.Step(fork, map[string]cval.Value{"B": {}})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Outputs["O"]; !ok {
		t.Fatalf("fork lost the snapshot state: %v", res.Outputs)
	}
	if _, err := s.Step(id, map[string]cval.Value{"R": {}}); err != nil {
		t.Fatal(err)
	}
	res, err = s.Step(id, map[string]cval.Value{"B": {}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outputs) != 0 {
		t.Fatalf("root affected by fork: %v", res.Outputs)
	}

	if got := s.IDs(); len(got) != 2 || got[0] != "branch" || got[1] != "root" {
		t.Fatalf("ids: %v", got)
	}
	if err := s.Close(fork); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Step(fork, nil); err == nil {
		t.Error("stepping a closed machine should fail")
	}

	// Forking a snapshot-less backend reports ErrUnsupported.
	simID, err := s.Open("", "sim", abro)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Fork(simID, ""); err == nil {
		t.Error("sim fork should fail")
	}
}

// TestSessionConcurrentForks hammers fork/step/close from many
// goroutines on one shared source machine.
func TestSessionConcurrentForks(t *testing.T) {
	abro := buildDesign(t, "abro.ecl", paperex.ABRO, "abro")
	s := NewSession()
	if _, err := s.Open("src", "interp", abro); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Step("src", nil); err != nil { // boot instant
		t.Fatal(err)
	}
	if _, err := s.Step("src", map[string]cval.Value{"A": {}}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				id, err := s.Fork("src", "")
				if err != nil {
					t.Error(err)
					return
				}
				res, err := s.Step(id, map[string]cval.Value{"B": {}})
				if err != nil {
					t.Error(err)
					return
				}
				if _, ok := res.Outputs["O"]; !ok {
					t.Errorf("fork %s missing O", id)
					return
				}
				if err := s.Close(id); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestSessionAutoIDSkipsTakenIDs is the regression test for the
// auto-id collision: Open("m0", ...) followed by Open("", ...) used to
// fail with `machine "m0" already exists` instead of allocating the
// next free id.
func TestSessionAutoIDSkipsTakenIDs(t *testing.T) {
	abro := buildDesign(t, "abro.ecl", paperex.ABRO, "abro")
	s := NewSession()

	if _, err := s.Open("m0", "efsm", abro); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Open("m2", "efsm", abro); err != nil {
		t.Fatal(err)
	}
	id, err := s.Open("", "efsm", abro)
	if err != nil {
		t.Fatalf("auto-id Open collided with an explicit id: %v", err)
	}
	if id != "m1" {
		t.Fatalf("auto id = %q, want m1 (the first free slot)", id)
	}
	// The allocator must also skip over m2 on the next request.
	id, err = s.Open("", "efsm", abro)
	if err != nil {
		t.Fatal(err)
	}
	if id != "m3" {
		t.Fatalf("auto id = %q, want m3", id)
	}
	// Forking into an auto id obeys the same rule.
	if _, err := s.Open("m4", "efsm", abro); err != nil {
		t.Fatal(err)
	}
	id, err = s.Fork("m0", "")
	if err != nil {
		t.Fatalf("fork with auto dst collided: %v", err)
	}
	if id != "m5" {
		t.Fatalf("forked auto id = %q, want m5", id)
	}
	// Explicit duplicates still fail loudly.
	if _, err := s.Open("m0", "efsm", abro); err == nil {
		t.Fatal("duplicate explicit id did not error")
	}
}
