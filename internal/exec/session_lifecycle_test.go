package exec

import (
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/cval"
	"repro/internal/paperex"
)

// finisSrc is a module that terminates: await one go, emit done, end.
const finisSrc = `
module finis (input pure go, output pure done)
{
    await (go);
    emit (done);
}
`

// TestSessionCloseRace is the regression test for the Close race:
// Close used to delete the map entry without taking the machine's own
// mutex, so a concurrent Step/Fork could run against a machine its
// owner believed gone, and two racing Closes both reported success.
// Run under -race.
func TestSessionCloseRace(t *testing.T) {
	abro := buildDesign(t, "abro.ecl", paperex.ABRO, "abro")
	s := NewSession()
	for round := 0; round < 20; round++ {
		id, err := s.Open("", "efsm", abro)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		var closed atomic.Int64
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 10; i++ {
					s.Step(id, map[string]cval.Value{"A": {}})
				}
			}()
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 5; i++ {
					if dst, err := s.Fork(id, ""); err == nil {
						s.Close(dst)
					}
				}
			}()
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := s.Close(id); err == nil {
					closed.Add(1)
				}
			}()
		}
		wg.Wait()
		if n := closed.Load(); n != 1 {
			t.Fatalf("round %d: %d racing Closes succeeded, want exactly 1", round, n)
		}
		// Every post-close operation fails cleanly.
		if _, err := s.Step(id, nil); err == nil {
			t.Fatal("Step after Close succeeded")
		}
		if _, err := s.Fork(id, ""); err == nil {
			t.Fatal("Fork after Close succeeded")
		}
		if err := s.Close(id); err == nil {
			t.Fatal("second Close succeeded")
		}
	}
	if n := s.Len(); n != 0 {
		t.Fatalf("%d machines leaked past their Close", n)
	}
}

// TestSessionStepBatch runs a whole input sequence under one lock
// acquisition and checks it matches instant-by-instant stepping.
func TestSessionStepBatch(t *testing.T) {
	abro := buildDesign(t, "abro.ecl", paperex.ABRO, "abro")
	s := NewSession()
	one, err := s.Open("", "efsm", abro)
	if err != nil {
		t.Fatal(err)
	}
	batched, err := s.Open("", "efsm", abro)
	if err != nil {
		t.Fatal(err)
	}
	batch := []map[string]cval.Value{
		nil,
		{"A": {}},
		{"B": {}},
		{"R": {}},
		{"A": {}, "B": {}},
	}
	var want []*Result
	for _, in := range batch {
		res, err := s.Step(one, in)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, res)
	}
	got, err := s.StepBatch(batched, batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("batch ran %d instants, want %d", len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(EncodeInstant(got[i].Outputs), EncodeInstant(want[i].Outputs)) {
			t.Errorf("instant %d: batch %v, single %v", i, got[i].Outputs, want[i].Outputs)
		}
	}
	if n, _ := s.Instant(batched); n != len(batch) {
		t.Errorf("instant counter %d, want %d", n, len(batch))
	}

	// A batch stops after the terminating instant, keeping what ran.
	fin := buildDesign(t, "finis.ecl", finisSrc, "finis")
	id, err := s.Open("", "efsm", fin)
	if err != nil {
		t.Fatal(err)
	}
	results, err := s.StepBatch(id, []map[string]cval.Value{
		nil, {"go": {}}, nil, nil,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || !results[1].Terminated {
		t.Fatalf("terminating batch ran %d instants (want 2, last terminated)", len(results))
	}
}

// TestSessionStepEvents checks the wire-level batch: encoded inputs in,
// canonical trace events out, numbered by the machine's own counter,
// with partial results surviving a mid-batch error.
func TestSessionStepEvents(t *testing.T) {
	abro := buildDesign(t, "abro.ecl", paperex.ABRO, "abro")
	s := NewSession()
	id, err := s.Open("", "interp", abro)
	if err != nil {
		t.Fatal(err)
	}
	events, err := s.StepEvents(id, []map[string]string{
		nil, {"A": ""}, {"B": ""},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 {
		t.Fatalf("%d events, want 3", len(events))
	}
	for i, ev := range events {
		if ev.Instant != i {
			t.Errorf("event %d numbered %d", i, ev.Instant)
		}
	}
	if _, ok := events[2].Outputs["O"]; !ok {
		t.Errorf("AB did not emit O: %v", events[2].Outputs)
	}

	// A bad input mid-batch returns the events that did execute.
	events, err = s.StepEvents(id, []map[string]string{
		{"R": ""}, {"bogus": ""}, {"A": ""},
	})
	if err == nil {
		t.Fatal("unknown input did not error")
	}
	if len(events) != 1 {
		t.Fatalf("partial batch kept %d events, want 1", len(events))
	}
	if n, _ := s.Instant(id); n != 4 {
		t.Errorf("instant counter %d after partial batch, want 4", n)
	}
}

// TestSessionEvictRestore parks a session as a snapshot blob and
// revives it, checking the revived machine continues byte-identically
// with an unevicted twin — including a forked child evicted while its
// parent keeps stepping.
func TestSessionEvictRestore(t *testing.T) {
	stack := buildDesign(t, "stack.ecl", paperex.Stack, "toplevel")
	for _, backend := range []string{"interp", "efsm", "efsm-min"} {
		t.Run(backend, func(t *testing.T) {
			s := NewSession()
			id, err := s.Open("victim", backend, stack)
			if err != nil {
				t.Fatal(err)
			}
			twin, err := s.Open("twin", backend, stack)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(7))
			m, _ := Open(backend, stack)
			warmup := encodeInstants(randomInstantsFor(rng, m, 9, 0.7))
			if _, err := s.StepEvents(id, warmup); err != nil {
				t.Fatal(err)
			}
			if _, err := s.StepEvents(twin, warmup); err != nil {
				t.Fatal(err)
			}

			// Fork a child at the warm point, then evict it while the
			// parent keeps stepping concurrently.
			child, err := s.Fork(id, "child")
			if err != nil {
				t.Fatal(err)
			}
			done := make(chan struct{})
			go func() {
				defer close(done)
				extra := encodeInstants(randomInstantsFor(rand.New(rand.NewSource(8)), m, 50, 0.5))
				for _, in := range extra {
					if _, err := s.StepEvents(id, []map[string]string{in}); err != nil {
						t.Error(err)
						return
					}
				}
			}()
			blob, err := s.Evict(child)
			<-done
			if err != nil {
				t.Fatal(err)
			}
			if _, err := s.StepEvents(child, nil); err == nil {
				t.Fatal("evicted machine still addressable")
			}
			revived, err := s.Restore("", backend, stack, blob)
			if err != nil {
				t.Fatal(err)
			}
			if n, _ := s.Instant(revived); n != 9 {
				t.Fatalf("revived instant counter %d, want 9", n)
			}

			// The revived child and the never-evicted twin must now be
			// byte-identical continuations of the same state.
			tail := encodeInstants(randomInstantsFor(rng, m, 30, 0.6))
			got, err := s.StepEvents(revived, tail)
			if err != nil {
				t.Fatal(err)
			}
			want, err := s.StepEvents(twin, tail)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("revived continuation diverged from twin:\ngot  %v\nwant %v", got, want)
			}
		})
	}

	// The sim backend has no portable snapshots: Evict reports
	// ErrUnsupported and leaves the machine open.
	abro := buildDesign(t, "abro.ecl", paperex.ABRO, "abro")
	s := NewSession()
	id, err := s.Open("", "sim", abro)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Evict(id); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("sim Evict error %v, want ErrUnsupported", err)
	}
	if _, err := s.Step(id, nil); err != nil {
		t.Fatalf("failed Evict closed the machine: %v", err)
	}
}

// encodeInstants renders cval instants as wire input maps.
func encodeInstants(instants []map[string]cval.Value) []map[string]string {
	out := make([]map[string]string, len(instants))
	for i, in := range instants {
		out[i] = EncodeInstant(in)
	}
	return out
}

// TestSessionInfo reads identity, interface, and progress in one call.
func TestSessionInfo(t *testing.T) {
	abro := buildDesign(t, "abro.ecl", paperex.ABRO, "abro")
	s := NewSession()
	id, err := s.Open("m", "efsm", abro)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Step(id, nil); err != nil {
		t.Fatal(err)
	}
	info, err := s.Info(id)
	if err != nil {
		t.Fatal(err)
	}
	if info.ID != "m" || info.Backend != "efsm" || info.Module != "abro" || info.Instant != 1 {
		t.Fatalf("info = %+v", info)
	}
	var names []string
	for _, sig := range info.Inputs {
		names = append(names, sig.Name)
	}
	if strings.Join(names, "") != "ABR" {
		t.Fatalf("inputs %v", names)
	}
	if err := s.Close(id); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Info(id); err == nil {
		t.Fatal("Info after Close succeeded")
	}
}
