package exec

import (
	"fmt"
	"strconv"
	"sync"

	"repro/internal/core"
	"repro/internal/cval"
	"repro/internal/efsm"
	"repro/internal/efsm/table"
	"repro/internal/interp"
	"repro/internal/sem"
	"repro/internal/sim"
	"repro/internal/source"
)

// The built-in backends. interp is the semantic oracle; efsm is the
// production software implementation; efsm-min runs the
// bisimulation-minimized automaton; sim runs the design as a single
// task under the simulated RTOS (tick-level, not instant-conformant:
// it boots tasks before the first Step and cannot snapshot).
func init() {
	Register(Backend{
		Name:        "interp",
		Description: "reference interpreter (Esterel logical semantics, constructive causality)",
		Conformant:  true,
		Open: func(d *core.Design) (Machine, error) {
			mod := d.Lowered.Module
			return &interpMachine{
				tbl: newSigTable(mod.Inputs, mod.Outputs),
				d:   d,
				// The lowered Info, not the program's: lowering registers
				// synthesized nodes (decl initializers, inlined args) in a
				// derived view that the base Info never sees.
				m: interp.NewMachine(mod, d.Lowered.Info),
			}, nil
		},
	})
	Register(Backend{
		Name:        "efsm",
		Description: "compiled EFSM software implementation",
		Conformant:  true,
		Open: func(d *core.Design) (Machine, error) {
			return newEFSMMachine("efsm", d, d.Machine), nil
		},
	})
	Register(Backend{
		Name:        "efsm-min",
		Description: "compiled EFSM after bisimulation minimization",
		Conformant:  true,
		Open: func(d *core.Design) (Machine, error) {
			return newEFSMMachine("efsm-min", d, minimized(d)), nil
		},
	})
	Register(Backend{
		Name:        "efsm-table",
		Description: "table-compiled EFSM: flat bytecode over a preallocated arena, slot-indexed I/O",
		Conformant:  true,
		Open:        openTable,
	})
	Register(Backend{
		Name:        "sim",
		Description: "single-task system simulation under the RTOS (tick-level; no snapshots)",
		Conformant:  false,
		Open:        openSim,
	})
}

// ---------------------------------------------------------------------------
// interp backend

type interpMachine struct {
	tbl *sigTable
	d   *core.Design
	m   *interp.Machine
}

func (im *interpMachine) Backend() string   { return "interp" }
func (im *interpMachine) Module() string    { return im.d.Lowered.Module.Name }
func (im *interpMachine) Inputs() []Signal  { return im.tbl.inputs }
func (im *interpMachine) Outputs() []Signal { return im.tbl.outputs }
func (im *interpMachine) Terminated() bool  { return im.m.Terminated() }

func (im *interpMachine) Step(inputs map[string]cval.Value) (*Result, error) {
	in, err := im.tbl.resolve(inputs)
	if err != nil {
		return nil, err
	}
	r, err := im.m.React(in)
	if err != nil {
		return nil, err
	}
	return &Result{Outputs: nameOutputs(r.Outputs), Terminated: r.Terminated}, nil
}

func (im *interpMachine) Reset() error {
	im.m.Reset()
	return nil
}

func (im *interpMachine) Snapshot() (Snapshot, error) { return im.m.Snapshot(), nil }

func (im *interpMachine) encodeSnapshot(s Snapshot) (*SnapshotBlob, error) {
	snap, ok := s.(*interp.Snapshot)
	if !ok {
		return nil, fmt.Errorf("exec: interp: cannot encode %T", s)
	}
	p := snap.Portable()
	return &SnapshotBlob{
		State: p.State, Started: p.Started, Done: p.Done,
		Vars: encodeByteMap(p.Vars), Sigs: encodeByteMap(p.Sigs),
	}, nil
}

func (im *interpMachine) decodeSnapshot(b *SnapshotBlob) (Snapshot, error) {
	vars, err := decodeByteMap(b.Vars)
	if err != nil {
		return nil, fmt.Errorf("exec: interp: snapshot blob: %w", err)
	}
	sigs, err := decodeByteMap(b.Sigs)
	if err != nil {
		return nil, fmt.Errorf("exec: interp: snapshot blob: %w", err)
	}
	return im.m.SnapshotFromPortable(&interp.PortableSnapshot{
		State: b.State, Started: b.Started, Done: b.Done, Vars: vars, Sigs: sigs,
	})
}

func (im *interpMachine) Restore(s Snapshot) error {
	snap, ok := s.(*interp.Snapshot)
	if !ok {
		return fmt.Errorf("exec: interp: cannot restore %T", s)
	}
	if err := im.m.Restore(snap); err != nil {
		return fmt.Errorf("exec: interp: %w", err)
	}
	return nil
}

// ---------------------------------------------------------------------------
// efsm backends

type efsmMachine struct {
	name string
	tbl  *sigTable
	d    *core.Design
	rt   *efsm.Runtime
}

func newEFSMMachine(name string, d *core.Design, m *efsm.Machine) *efsmMachine {
	return &efsmMachine{
		name: name,
		tbl:  newSigTable(m.Mod.Inputs, m.Mod.Outputs),
		d:    d,
		rt:   efsm.NewRuntime(m),
	}
}

func (em *efsmMachine) Backend() string   { return em.name }
func (em *efsmMachine) Module() string    { return em.rt.M.Name }
func (em *efsmMachine) Inputs() []Signal  { return em.tbl.inputs }
func (em *efsmMachine) Outputs() []Signal { return em.tbl.outputs }
func (em *efsmMachine) Terminated() bool  { return em.rt.Terminated() }

func (em *efsmMachine) Step(inputs map[string]cval.Value) (*Result, error) {
	in, err := em.tbl.resolve(inputs)
	if err != nil {
		return nil, err
	}
	r, err := em.rt.Step(in)
	if err != nil {
		return nil, err
	}
	return &Result{Outputs: nameOutputs(r.Outputs), Terminated: r.Terminated}, nil
}

func (em *efsmMachine) Reset() error {
	em.rt.Reset()
	return nil
}

func (em *efsmMachine) Snapshot() (Snapshot, error) { return em.rt.Snapshot(), nil }

func (em *efsmMachine) encodeSnapshot(s Snapshot) (*SnapshotBlob, error) {
	snap, ok := s.(*efsm.Snapshot)
	if !ok {
		return nil, fmt.Errorf("exec: %s: cannot encode %T", em.name, s)
	}
	p := snap.Portable()
	return &SnapshotBlob{
		State: strconv.Itoa(p.StateID), Done: p.Done,
		Vars: encodeByteMap(p.Vars), Sigs: encodeByteMap(p.Sigs),
	}, nil
}

func (em *efsmMachine) decodeSnapshot(b *SnapshotBlob) (Snapshot, error) {
	stateID, err := strconv.Atoi(b.State)
	if err != nil {
		return nil, fmt.Errorf("exec: %s: snapshot blob: bad state %q", em.name, b.State)
	}
	vars, err := decodeByteMap(b.Vars)
	if err != nil {
		return nil, fmt.Errorf("exec: %s: snapshot blob: %w", em.name, err)
	}
	sigs, err := decodeByteMap(b.Sigs)
	if err != nil {
		return nil, fmt.Errorf("exec: %s: snapshot blob: %w", em.name, err)
	}
	return em.rt.SnapshotFromPortable(&efsm.PortableSnapshot{
		StateID: stateID, Done: b.Done, Vars: vars, Sigs: sigs,
	})
}

func (em *efsmMachine) Restore(s Snapshot) error {
	snap, ok := s.(*efsm.Snapshot)
	if !ok {
		return fmt.Errorf("exec: %s: cannot restore %T", em.name, s)
	}
	if err := em.rt.Restore(snap); err != nil {
		return fmt.Errorf("exec: %s: %w", em.name, err)
	}
	return nil
}

// ---------------------------------------------------------------------------
// efsm-table backend

// tableMachine runs the table-compiled form of the minimized EFSM. It
// is the exec hot path's native citizen: StepSlots is the real stepping
// interface (zero allocations in steady state), and the map Step is a
// thin adapter over it.
type tableMachine struct {
	d       *core.Design
	m       *table.Machine
	ports   *Ports
	adapter *SlotAdapter
}

func openTable(d *core.Design) (Machine, error) {
	min := minimized(d)
	prog, err := table.For(min)
	if err != nil {
		return nil, fmt.Errorf("exec: efsm-table: %w", err)
	}
	ports := newPortsFromKernel(min.Inputs, min.Outputs)
	return &tableMachine{
		d:       d,
		m:       table.New(prog),
		ports:   ports,
		adapter: NewSlotAdapter(ports),
	}, nil
}

func (tm *tableMachine) Backend() string   { return "efsm-table" }
func (tm *tableMachine) Module() string    { return tm.m.Program().Name() }
func (tm *tableMachine) Inputs() []Signal  { return tm.ports.Inputs() }
func (tm *tableMachine) Outputs() []Signal { return tm.ports.Outputs() }
func (tm *tableMachine) Terminated() bool  { return tm.m.Terminated() }

func (tm *tableMachine) Ports() *Ports { return tm.ports }

func (tm *tableMachine) StepSlots(present []bool, in, out []cval.Value) (bool, error) {
	return tm.m.Step(present, in, out)
}

func (tm *tableMachine) Step(inputs map[string]cval.Value) (*Result, error) {
	return tm.adapter.Step(tm.m.Step, inputs)
}

func (tm *tableMachine) Reset() error {
	tm.m.Reset()
	return nil
}

func (tm *tableMachine) Snapshot() (Snapshot, error) { return tm.m.Snapshot(), nil }

func (tm *tableMachine) encodeSnapshot(s Snapshot) (*SnapshotBlob, error) {
	snap, ok := s.(*table.Snapshot)
	if !ok {
		return nil, fmt.Errorf("exec: efsm-table: cannot encode %T", s)
	}
	p := snap.Portable()
	return &SnapshotBlob{
		State: strconv.Itoa(p.StateID), Done: p.Done,
		Vars: encodeByteMap(p.Vars), Sigs: encodeByteMap(p.Sigs),
	}, nil
}

func (tm *tableMachine) decodeSnapshot(b *SnapshotBlob) (Snapshot, error) {
	stateID, err := strconv.Atoi(b.State)
	if err != nil {
		return nil, fmt.Errorf("exec: efsm-table: snapshot blob: bad state %q", b.State)
	}
	vars, err := decodeByteMap(b.Vars)
	if err != nil {
		return nil, fmt.Errorf("exec: efsm-table: snapshot blob: %w", err)
	}
	sigs, err := decodeByteMap(b.Sigs)
	if err != nil {
		return nil, fmt.Errorf("exec: efsm-table: snapshot blob: %w", err)
	}
	return tm.m.SnapshotFromPortable(&efsm.PortableSnapshot{
		StateID: stateID, Done: b.Done, Vars: vars, Sigs: sigs,
	})
}

func (tm *tableMachine) Restore(s Snapshot) error {
	snap, ok := s.(*table.Snapshot)
	if !ok {
		return fmt.Errorf("exec: efsm-table: cannot restore %T", s)
	}
	if err := tm.m.Restore(snap); err != nil {
		return fmt.Errorf("exec: efsm-table: %w", err)
	}
	return nil
}

// minCache memoizes bisimulation minimization per compiled machine so
// reopening the efsm-min backend (sessions fork a lot) stays cheap.
var minCache sync.Map // *efsm.Machine -> *efsm.Machine

func minimized(d *core.Design) *efsm.Machine {
	if m, ok := minCache.Load(d.Machine); ok {
		return m.(*efsm.Machine)
	}
	min, _ := efsm.Minimize(d.Machine)
	actual, _ := minCache.LoadOrStore(d.Machine, min)
	return actual.(*efsm.Machine)
}

// ---------------------------------------------------------------------------
// sim backend

type simMachine struct {
	d   *core.Design
	sys sim.System
	tbl *sigTable
}

// openSim builds a fresh single-task RTOS system over the design's
// module. The design's own analysis tables were consumed by its
// lowering, so the system is built from a fresh semantic analysis of
// the same parsed file.
func openSim(d *core.Design) (Machine, error) {
	var diags source.DiagList
	info := sem.Analyze(d.Program.File, &diags)
	if diags.HasErrors() {
		return nil, diags.Err()
	}
	sys, err := sim.BuildSync(info, d.Lowered.Module.Name, sim.Config{})
	if err != nil {
		return nil, fmt.Errorf("exec: sim: %w", err)
	}
	return &simMachine{d: d, sys: sys, tbl: newSigTable(sys.Inputs(), sys.Outputs())}, nil
}

func (sm *simMachine) Backend() string   { return "sim" }
func (sm *simMachine) Module() string    { return sm.d.Lowered.Module.Name }
func (sm *simMachine) Inputs() []Signal  { return sm.tbl.inputs }
func (sm *simMachine) Outputs() []Signal { return sm.tbl.outputs }
func (sm *simMachine) Terminated() bool  { return false }

func (sm *simMachine) Step(inputs map[string]cval.Value) (*Result, error) {
	// Validate through the shared table (the system's own Step takes
	// string keys already), then translate back for nameOutputs.
	if _, err := sm.tbl.resolve(inputs); err != nil {
		return nil, err
	}
	outs, err := sm.sys.Step(inputs)
	if err != nil {
		return nil, err
	}
	named := make(map[string]cval.Value, len(outs))
	for name, val := range outs {
		if val.IsValid() {
			named[name] = val.Clone()
		} else {
			named[name] = cval.Value{}
		}
	}
	return &Result{Outputs: named}, nil
}

func (sm *simMachine) Reset() error {
	fresh, err := openSim(sm.d)
	if err != nil {
		return err
	}
	sm.sys = fresh.(*simMachine).sys
	return nil
}

func (sm *simMachine) Snapshot() (Snapshot, error) { return nil, ErrUnsupported }
func (sm *simMachine) Restore(Snapshot) error      { return ErrUnsupported }
