package circuit

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/compile"
	"repro/internal/cval"
	"repro/internal/efsm"
	"repro/internal/kernel"
	"repro/internal/lower"
	"repro/internal/paperex"
	"repro/internal/parser"
	"repro/internal/pp"
	"repro/internal/sem"
	"repro/internal/source"
)

func buildEFSM(t *testing.T, src, modName string) *efsm.Machine {
	t.Helper()
	var diags source.DiagList
	expanded := pp.New(&diags, nil).Expand(source.NewFile("test.ecl", src))
	f := parser.ParseFile(expanded, &diags)
	if diags.HasErrors() {
		t.Fatalf("parse errors:\n%s", diags.String())
	}
	info := sem.Analyze(f, &diags)
	if diags.HasErrors() {
		t.Fatalf("sem errors:\n%s", diags.String())
	}
	res, err := lower.Lower(info, modName, lower.MaximalReactive, &diags)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	m, err := compile.Compile(res)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return m
}

func TestSynthesizeABRO(t *testing.T) {
	m := buildEFSM(t, paperex.ABRO, "abro")
	c, err := FromEFSM(m)
	if err != nil {
		t.Fatal(err)
	}
	st := c.CollectStats()
	if st.Registers != len(m.States) {
		t.Errorf("registers = %d, want one per state (%d)", st.Registers, len(m.States))
	}
	if st.Gates == 0 {
		t.Error("no gates synthesized")
	}
	if st.Inputs != 3 || st.Outputs != 1 {
		t.Errorf("ports: %+v", st)
	}
}

// TestCircuitMatchesEFSM co-simulates the netlist against the EFSM
// runtime on random input vectors.
func TestCircuitMatchesEFSM(t *testing.T) {
	m := buildEFSM(t, paperex.ABRO, "abro")
	c, err := FromEFSM(m)
	if err != nil {
		t.Fatal(err)
	}
	sim := NewSimulator(c)
	rt := efsm.NewRuntime(m)
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 500; i++ {
		present := map[string]bool{}
		in := map[*kernel.Signal]cval.Value{}
		for _, sig := range m.Inputs {
			if rng.Intn(3) == 0 {
				present[sig.Name] = true
				in[sig] = cval.Value{}
			}
		}
		hw := sim.Step(present)
		sw, err := rt.Step(in)
		if err != nil {
			t.Fatal(err)
		}
		swOut := map[string]bool{}
		for sig := range sw.Outputs {
			swOut[sig.Name] = true
		}
		for name := range hw {
			if !swOut[name] {
				t.Fatalf("cycle %d: hardware emits %s, software does not", i, name)
			}
		}
		for name := range swOut {
			if !hw[name] {
				t.Fatalf("cycle %d: software emits %s, hardware does not", i, name)
			}
		}
	}
}

func TestRejectDataPath(t *testing.T) {
	m := buildEFSM(t, paperex.Header+paperex.CheckCRC, "checkcrc")
	if _, err := FromEFSM(m); err == nil {
		t.Fatal("expected rejection of a module with a data part")
	} else if !strings.Contains(err.Error(), "datapath") {
		t.Fatalf("unhelpful error: %v", err)
	}
}

func TestReachableStates(t *testing.T) {
	m := buildEFSM(t, paperex.ABRO, "abro")
	c, err := FromEFSM(m)
	if err != nil {
		t.Fatal(err)
	}
	n, complete := c.ReachableStates(10000)
	if !complete {
		t.Fatal("exploration did not complete")
	}
	// One-hot: reachable states are at most the EFSM states (plus the
	// all-zero terminated state when reachable).
	if n < len(m.States) || n > len(m.States)+1 {
		t.Errorf("reachable register states = %d, EFSM states = %d", n, len(m.States))
	}
}

func TestOptimizationFolds(t *testing.T) {
	// A module whose output never fires after optimization still works.
	src := `module m(input pure a, output pure o, output pure never) {
        while (1) { await(a); emit(o); }
    }`
	m := buildEFSM(t, src, "m")
	c, err := FromEFSM(m)
	if err != nil {
		t.Fatal(err)
	}
	if c.Outputs["never"].Op != OpConst || c.Outputs["never"].Val {
		t.Error("never-emitted output should fold to constant false")
	}
	removed := c.Sweep()
	_ = removed
	sim := NewSimulator(c)
	sim.Step(nil)
	out := sim.Step(map[string]bool{"a": true})
	if !out["o"] || out["never"] {
		t.Errorf("post-sweep behavior wrong: %v", out)
	}
}

func TestStructuralHashing(t *testing.T) {
	c := &Circuit{Outputs: map[string]*Net{}, hash: map[string]*Net{}}
	a := c.newNet(OpInput)
	b := c.newNet(OpInput)
	g1 := c.And(a, b)
	g2 := c.And(b, a) // commuted: must hash to the same gate
	if g1 != g2 {
		t.Error("commuted AND not shared")
	}
	if c.Not(c.Not(a)) != a {
		t.Error("double negation not folded")
	}
	tr := c.Const(true)
	if c.And(a, tr) != a || c.Or(a, c.Const(false)) != a {
		t.Error("identity folding broken")
	}
	if c.And(a, c.Const(false)).Op != OpConst {
		t.Error("AND with false should fold to false")
	}
}

func TestTerminatingMachineHalts(t *testing.T) {
	src := `module m(input pure a, output pure o) { await(a); emit(o); }`
	m := buildEFSM(t, src, "m")
	c, err := FromEFSM(m)
	if err != nil {
		t.Fatal(err)
	}
	sim := NewSimulator(c)
	sim.Step(nil)
	out := sim.Step(map[string]bool{"a": true})
	if !out["o"] {
		t.Fatal("o missing")
	}
	// After termination all registers are zero: no further output.
	out = sim.Step(map[string]bool{"a": true})
	if out["o"] {
		t.Fatal("terminated circuit still emits")
	}
}
