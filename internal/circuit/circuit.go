// Package circuit implements hardware synthesis for the reactive part:
// it translates a compiled EFSM into a gate-level netlist (one-hot
// state registers plus AND/OR/NOT next-state and output logic), runs
// logic optimization (constant folding, structural hashing, dead-gate
// sweep), and simulates the result for equivalence checking.
//
// As the paper states, hardware implementation applies when the
// data-dominated C part is empty: a machine with data branches or data
// actions is rejected with an explanatory error.
package circuit

import (
	"fmt"
	"sort"

	"repro/internal/efsm"
	"repro/internal/kernel"
)

// Op is a net's operation.
type Op int

// Net operations.
const (
	OpInput Op = iota
	OpReg
	OpAnd
	OpOr
	OpNot
	OpConst
)

// Net is one node of the netlist.
type Net struct {
	ID   int
	Op   Op
	Name string // inputs, registers, and outputs carry names
	A, B *Net   // operands (A only for OpNot)
	// Init is the register's reset value.
	Init bool
	// Next is the register's next-state input, set after building.
	Next *Net
	// Val is the constant's value.
	Val bool
}

// Circuit is a synthesized synchronous circuit.
type Circuit struct {
	Name    string
	Inputs  []*Net
	Regs    []*Net
	Outputs map[string]*Net
	nets    []*Net
	hash    map[string]*Net
	// noOpt disables constant folding and structural hashing (the
	// logic-optimization ablation).
	noOpt bool
}

// Stats summarizes circuit size.
type Stats struct {
	Gates     int // and/or/not
	Registers int
	Inputs    int
	Outputs   int
}

// CollectStats counts live nets.
func (c *Circuit) CollectStats() Stats {
	var st Stats
	st.Registers = len(c.Regs)
	st.Inputs = len(c.Inputs)
	st.Outputs = len(c.Outputs)
	for _, n := range c.live() {
		switch n.Op {
		case OpAnd, OpOr, OpNot:
			st.Gates++
		}
	}
	return st
}

func (c *Circuit) newNet(op Op) *Net {
	n := &Net{ID: len(c.nets), Op: op}
	c.nets = append(c.nets, n)
	return n
}

// Const returns a constant net.
func (c *Circuit) Const(v bool) *Net {
	key := fmt.Sprintf("c%v", v)
	if n, ok := c.hash[key]; ok {
		return n
	}
	n := c.newNet(OpConst)
	n.Val = v
	c.hash[key] = n
	return n
}

// And builds a AND b with constant folding and structural hashing.
func (c *Circuit) And(a, b *Net) *Net {
	if c.noOpt {
		n := c.newNet(OpAnd)
		n.A, n.B = a, b
		return n
	}
	if a.Op == OpConst {
		if !a.Val {
			return a
		}
		return b
	}
	if b.Op == OpConst {
		if !b.Val {
			return b
		}
		return a
	}
	if a == b {
		return a
	}
	if a.ID > b.ID {
		a, b = b, a
	}
	key := fmt.Sprintf("a%d,%d", a.ID, b.ID)
	if n, ok := c.hash[key]; ok {
		return n
	}
	n := c.newNet(OpAnd)
	n.A, n.B = a, b
	c.hash[key] = n
	return n
}

// Or builds a OR b with constant folding and structural hashing.
func (c *Circuit) Or(a, b *Net) *Net {
	if c.noOpt {
		n := c.newNet(OpOr)
		n.A, n.B = a, b
		return n
	}
	if a.Op == OpConst {
		if a.Val {
			return a
		}
		return b
	}
	if b.Op == OpConst {
		if b.Val {
			return b
		}
		return a
	}
	if a == b {
		return a
	}
	if a.ID > b.ID {
		a, b = b, a
	}
	key := fmt.Sprintf("o%d,%d", a.ID, b.ID)
	if n, ok := c.hash[key]; ok {
		return n
	}
	n := c.newNet(OpOr)
	n.A, n.B = a, b
	c.hash[key] = n
	return n
}

// Not builds NOT a with folding (double negation, constants).
func (c *Circuit) Not(a *Net) *Net {
	if c.noOpt {
		n := c.newNet(OpNot)
		n.A = a
		return n
	}
	if a.Op == OpConst {
		return c.Const(!a.Val)
	}
	if a.Op == OpNot {
		return a.A
	}
	key := fmt.Sprintf("n%d", a.ID)
	if n, ok := c.hash[key]; ok {
		return n
	}
	n := c.newNet(OpNot)
	n.A = a
	c.hash[key] = n
	return n
}

// FromEFSM synthesizes a circuit from a pure-control EFSM: one-hot
// state registers, next-state logic from the decision trees, output
// logic from the emit actions. Machines with any data part are
// rejected (hardware needs the C part empty, per the paper).
func FromEFSM(m *efsm.Machine) (*Circuit, error) { return FromEFSMOpts(m, true) }

// FromEFSMOpts is FromEFSM with logic optimization switchable, for the
// optimization ablation (the paper's "battery of logic optimization
// algorithms").
func FromEFSMOpts(m *efsm.Machine, optimize bool) (*Circuit, error) {
	c := &Circuit{
		Name:    m.Name,
		Outputs: map[string]*Net{},
		hash:    map[string]*Net{},
		noOpt:   !optimize,
	}
	inputs := map[*kernel.Signal]*Net{}
	for _, sig := range m.Inputs {
		if !sig.Pure {
			return nil, fmt.Errorf("module %s: valued input %s requires a datapath; hardware synthesis needs a pure-control module (empty C part)", m.Name, sig.Name)
		}
		n := c.newNet(OpInput)
		n.Name = sig.Name
		c.Inputs = append(c.Inputs, n)
		inputs[sig] = n
	}

	stateReg := map[*efsm.State]*Net{}
	for _, s := range m.States {
		r := c.newNet(OpReg)
		r.Name = fmt.Sprintf("s%d", s.ID)
		r.Init = s == m.Initial
		c.Regs = append(c.Regs, r)
		stateReg[s] = r
	}

	nextState := map[*efsm.State]*Net{}
	outNet := map[*kernel.Signal]*Net{}
	for _, s := range m.States {
		for _, t := range m.Transitions(s) {
			if len(t.Data) > 0 {
				return nil, fmt.Errorf("module %s: data guard %q requires a datapath; hardware synthesis needs a pure-control module", m.Name, t.Data[0].Expr)
			}
			cond := stateReg[s]
			// Deterministic literal order for reproducible netlists.
			var sigNames []string
			byName := map[string]*kernel.Signal{}
			for sig := range t.Inputs {
				sigNames = append(sigNames, sig.Name)
				byName[sig.Name] = sig
			}
			sort.Strings(sigNames)
			for _, nm := range sigNames {
				sig := byName[nm]
				lit := inputs[sig]
				if lit == nil {
					return nil, fmt.Errorf("module %s: guard tests non-input %s", m.Name, sig.Name)
				}
				if !t.Inputs[sig] {
					lit = c.Not(lit)
				}
				cond = c.And(cond, lit)
			}
			for _, a := range t.Actions {
				switch a.Kind {
				case efsm.ActEmit:
					if a.Value != nil {
						return nil, fmt.Errorf("module %s: valued emit on %s requires a datapath", m.Name, a.Sig.Name)
					}
					if a.Sig.Class == kernel.Output {
						if prev, ok := outNet[a.Sig]; ok {
							outNet[a.Sig] = c.Or(prev, cond)
						} else {
							outNet[a.Sig] = cond
						}
					}
				default:
					return nil, fmt.Errorf("module %s: data action %s requires a datapath", m.Name, a)
				}
			}
			if !t.Term && t.To != nil {
				if prev, ok := nextState[t.To]; ok {
					nextState[t.To] = c.Or(prev, cond)
				} else {
					nextState[t.To] = cond
				}
			}
		}
	}
	for _, s := range m.States {
		if n, ok := nextState[s]; ok {
			stateReg[s].Next = n
		} else {
			stateReg[s].Next = c.Const(false)
		}
	}
	for _, sig := range m.Outputs {
		if n, ok := outNet[sig]; ok {
			c.Outputs[sig.Name] = n
		} else {
			c.Outputs[sig.Name] = c.Const(false)
		}
	}
	return c, nil
}

// live returns the nets reachable from outputs and register inputs, in
// a deterministic topological order (operands first).
func (c *Circuit) live() []*Net {
	seen := map[*Net]bool{}
	var order []*Net
	var visit func(n *Net)
	visit = func(n *Net) {
		if n == nil || seen[n] {
			return
		}
		seen[n] = true
		// Register next-inputs are visited from the root loop, not
		// through the register, to keep this a combinational DAG walk.
		if n.Op != OpReg {
			visit(n.A)
			visit(n.B)
		}
		order = append(order, n)
	}
	var outNames []string
	for name := range c.Outputs {
		outNames = append(outNames, name)
	}
	sort.Strings(outNames)
	for _, name := range outNames {
		visit(c.Outputs[name])
	}
	for _, r := range c.Regs {
		visit(r)
		visit(r.Next)
	}
	return order
}

// Sweep removes dead gates, returning how many were dropped. The
// builder already folds constants and hashes structure, so a sweep
// after construction reports the gates made unreachable by folding.
func (c *Circuit) Sweep() int {
	liveSet := map[*Net]bool{}
	for _, n := range c.live() {
		liveSet[n] = true
	}
	removed := 0
	var kept []*Net
	for _, n := range c.nets {
		if liveSet[n] || n.Op == OpInput {
			kept = append(kept, n)
		} else {
			removed++
		}
	}
	c.nets = kept
	return removed
}

// ---------------------------------------------------------------------------
// Simulation

// Simulator evaluates the circuit cycle by cycle.
type Simulator struct {
	C    *Circuit
	regs map[*Net]bool
}

// NewSimulator returns a simulator with registers at their reset values.
func NewSimulator(c *Circuit) *Simulator {
	s := &Simulator{C: c, regs: map[*Net]bool{}}
	for _, r := range c.Regs {
		s.regs[r] = r.Init
	}
	return s
}

// Step evaluates one clock cycle with the named inputs present and
// returns the active outputs.
func (s *Simulator) Step(present map[string]bool) map[string]bool {
	vals := map[*Net]bool{}
	var eval func(n *Net) bool
	eval = func(n *Net) bool {
		if v, ok := vals[n]; ok {
			return v
		}
		var v bool
		switch n.Op {
		case OpInput:
			v = present[n.Name]
		case OpReg:
			v = s.regs[n]
		case OpConst:
			v = n.Val
		case OpAnd:
			v = eval(n.A) && eval(n.B)
		case OpOr:
			v = eval(n.A) || eval(n.B)
		case OpNot:
			v = !eval(n.A)
		}
		vals[n] = v
		return v
	}
	out := map[string]bool{}
	for name, n := range s.C.Outputs {
		if eval(n) {
			out[name] = true
		}
	}
	next := map[*Net]bool{}
	for _, r := range s.C.Regs {
		next[r] = eval(r.Next)
	}
	s.regs = next
	return out
}

// ReachableStates explores the register state space breadth-first over
// all input combinations and returns the number of reachable register
// valuations (paper: "implicit state exploration techniques can be
// used for optimization and functional analysis"). The exploration is
// bounded by limit; it returns (count, true) if complete.
func (c *Circuit) ReachableStates(limit int) (int, bool) {
	type stateKey string
	encode := func(regs map[*Net]bool) stateKey {
		b := make([]byte, len(c.Regs))
		for i, r := range c.Regs {
			if regs[r] {
				b[i] = '1'
			} else {
				b[i] = '0'
			}
		}
		return stateKey(b)
	}
	inputCombos := 1 << uint(len(c.Inputs))
	if len(c.Inputs) > 16 {
		inputCombos = 1 << 16
	}

	init := map[*Net]bool{}
	for _, r := range c.Regs {
		init[r] = r.Init
	}
	seen := map[stateKey]map[*Net]bool{encode(init): init}
	queue := []map[*Net]bool{init}
	for len(queue) > 0 {
		if len(seen) > limit {
			return len(seen), false
		}
		cur := queue[0]
		queue = queue[1:]
		for combo := 0; combo < inputCombos; combo++ {
			present := map[string]bool{}
			for i, in := range c.Inputs {
				if combo&(1<<uint(i)) != 0 {
					present[in.Name] = true
				}
			}
			sim := &Simulator{C: c, regs: cur}
			sim.Step(present)
			key := encode(sim.regs)
			if _, ok := seen[key]; !ok {
				seen[key] = sim.regs
				queue = append(queue, sim.regs)
			}
		}
	}
	return len(seen), true
}
