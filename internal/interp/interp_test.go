package interp

import (
	"strings"
	"testing"

	"repro/internal/ctypes"
	"repro/internal/cval"
	"repro/internal/kernel"
	"repro/internal/lower"
	"repro/internal/paperex"
	"repro/internal/parser"
	"repro/internal/pp"
	"repro/internal/sem"
	"repro/internal/source"
)

// build compiles ECL source into a kernel module + machine.
func build(t *testing.T, src, modName string, pol lower.Policy) *Machine {
	t.Helper()
	var diags source.DiagList
	expanded := pp.New(&diags, nil).Expand(source.NewFile("test.ecl", src))
	f := parser.ParseFile(expanded, &diags)
	if diags.HasErrors() {
		t.Fatalf("parse errors:\n%s", diags.String())
	}
	info := sem.Analyze(f, &diags)
	if diags.HasErrors() {
		t.Fatalf("sem errors:\n%s", diags.String())
	}
	res, err := lower.Lower(info, modName, pol, &diags)
	if err != nil {
		t.Fatalf("lower: %v\n%s", err, diags.String())
	}
	return NewMachine(res.Module, info)
}

// react runs one instant with the named pure inputs present.
func react(t *testing.T, m *Machine, present ...string) *Reaction {
	t.Helper()
	in := Inputs{}
	for _, name := range present {
		sig := m.Mod.Signal(name)
		if sig == nil {
			t.Fatalf("no signal %q", name)
		}
		in[sig] = cval.Value{}
	}
	r, err := m.React(in)
	if err != nil {
		t.Fatalf("react(%v): %v", present, err)
	}
	return r
}

// reactV runs one instant with valued inputs.
func reactV(t *testing.T, m *Machine, vals map[string]cval.Value, pure ...string) *Reaction {
	t.Helper()
	in := Inputs{}
	for name, v := range vals {
		sig := m.Mod.Signal(name)
		if sig == nil {
			t.Fatalf("no signal %q", name)
		}
		in[sig] = v
	}
	for _, name := range pure {
		in[m.Mod.Signal(name)] = cval.Value{}
	}
	r, err := m.React(in)
	if err != nil {
		t.Fatalf("react: %v", err)
	}
	return r
}

func emittedNames(r *Reaction) string {
	var names []string
	for _, s := range r.Emitted {
		names = append(names, s.Name)
	}
	return strings.Join(names, " ")
}

func hasOutput(r *Reaction, name string) bool {
	for s := range r.Outputs {
		if s.Name == name {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// ABRO: the canonical behavior check

func TestABRO(t *testing.T) {
	m := build(t, paperex.ABRO, "abro", lower.MaximalReactive)

	// Instant 1: nothing.
	if r := react(t, m); hasOutput(r, "O") {
		t.Fatal("O emitted with no inputs")
	}
	// A then B: O at B's instant.
	if r := react(t, m, "A"); hasOutput(r, "O") {
		t.Fatal("O too early")
	}
	r := react(t, m, "B")
	if !hasOutput(r, "O") {
		t.Fatal("O missing after A then B")
	}
	// After O, it must not re-emit without reset.
	if r := react(t, m, "A", "B"); hasOutput(r, "O") {
		t.Fatal("O re-emitted without reset")
	}
	// Reset re-arms.
	react(t, m, "R")
	r = react(t, m, "A", "B")
	if !hasOutput(r, "O") {
		t.Fatal("O missing after reset with simultaneous A,B")
	}
}

func TestABROSimultaneous(t *testing.T) {
	m := build(t, paperex.ABRO, "abro", lower.MaximalReactive)
	react(t, m) // boot instant: awaits arm
	r := react(t, m, "A", "B")
	if !hasOutput(r, "O") {
		t.Fatal("O missing for simultaneous A,B")
	}
}

func TestABRORPreemptsSameInstant(t *testing.T) {
	m := build(t, paperex.ABRO, "abro", lower.MaximalReactive)
	react(t, m)
	react(t, m, "A")
	// R together with B: strong abort wins, no O.
	r := react(t, m, "B", "R")
	if hasOutput(r, "O") {
		t.Fatal("strong abort must suppress O when R and B coincide")
	}
}

// ---------------------------------------------------------------------------
// await / emit / halt basics

func TestAwaitIsDelayed(t *testing.T) {
	src := `module m(input pure a, output pure o) { await(a); emit(o); halt(); }`
	m := build(t, src, "m", lower.MaximalReactive)
	// await must not fire in its starting instant even if a is present.
	if r := react(t, m, "a"); hasOutput(r, "o") {
		t.Fatal("await fired in its start instant")
	}
	if r := react(t, m, "a"); !hasOutput(r, "o") {
		t.Fatal("await did not fire in a later instant")
	}
}

func TestEmptyAwaitDeltaCycle(t *testing.T) {
	src := `module m(input pure a, output pure s1, output pure s2) {
        emit(s1); await(); emit(s2); halt();
    }`
	m := build(t, src, "m", lower.MaximalReactive)
	r := react(t, m)
	if !hasOutput(r, "s1") || hasOutput(r, "s2") {
		t.Fatalf("instant 1 wrong: %s", emittedNames(r))
	}
	// Next instant continues regardless of inputs.
	r = react(t, m)
	if !hasOutput(r, "s2") {
		t.Fatalf("instant 2 wrong: %s", emittedNames(r))
	}
}

func TestTermination(t *testing.T) {
	src := `module m(input pure a, output pure o) { await(a); emit(o); }`
	m := build(t, src, "m", lower.MaximalReactive)
	react(t, m)
	r := react(t, m, "a")
	if !hasOutput(r, "o") || !r.Terminated {
		t.Fatalf("expected termination with o; got %s term=%v", emittedNames(r), r.Terminated)
	}
	if !m.Terminated() {
		t.Fatal("machine should be terminated")
	}
	// Further reactions are inert.
	r = react(t, m, "a")
	if len(r.Emitted) != 0 || !r.Terminated {
		t.Fatal("terminated machine reacted")
	}
}

// ---------------------------------------------------------------------------
// Signal expressions

func TestSigExprOrAnd(t *testing.T) {
	src := `module m(input pure a, input pure b, input pure c,
                     output pure or_o, output pure and_o) {
        par {
            while (1) { await (a | b); emit(or_o); }
            while (1) { await (a & c); emit(and_o); }
        }
    }`
	m := build(t, src, "m", lower.MaximalReactive)
	react(t, m) // boot
	r := react(t, m, "b")
	if !hasOutput(r, "or_o") || hasOutput(r, "and_o") {
		t.Fatalf("b instant: %s", emittedNames(r))
	}
	r = react(t, m, "a", "c")
	if !hasOutput(r, "or_o") || !hasOutput(r, "and_o") {
		t.Fatalf("a&c instant: %s", emittedNames(r))
	}
	r = react(t, m, "c")
	if hasOutput(r, "or_o") || hasOutput(r, "and_o") {
		t.Fatalf("c-only instant: %s", emittedNames(r))
	}
}

func TestSigExprNot(t *testing.T) {
	src := `module m(input pure a, input pure tick, output pure o) {
        while (1) { await (tick & ~a); emit(o); }
    }`
	m := build(t, src, "m", lower.MaximalReactive)
	react(t, m)
	if r := react(t, m, "tick", "a"); hasOutput(r, "o") {
		t.Fatal("~a should block when a present")
	}
	if r := react(t, m, "tick"); !hasOutput(r, "o") {
		t.Fatal("tick & ~a should fire when only tick present")
	}
}

// ---------------------------------------------------------------------------
// present

func TestPresentBothArms(t *testing.T) {
	src := `module m(input pure tick, input pure a, output pure yes, output pure no) {
        while (1) {
            await (tick);
            present (a) emit(yes); else emit(no);
        }
    }`
	m := build(t, src, "m", lower.MaximalReactive)
	react(t, m)
	r := react(t, m, "tick", "a")
	if !hasOutput(r, "yes") || hasOutput(r, "no") {
		t.Fatalf("tick+a: %s", emittedNames(r))
	}
	r = react(t, m, "tick")
	if hasOutput(r, "yes") || !hasOutput(r, "no") {
		t.Fatalf("tick only: %s", emittedNames(r))
	}
}

func TestPresentLocalSignalSameInstant(t *testing.T) {
	// Emission in one par branch must be seen by present in another.
	src := `module m(input pure tick, output pure got) {
        signal pure s;
        while (1) {
            await (tick);
            par {
                emit(s);
                present (s) emit(got);
            }
        }
    }`
	m := build(t, src, "m", lower.MaximalReactive)
	react(t, m)
	r := react(t, m, "tick")
	if !hasOutput(r, "got") {
		t.Fatal("same-instant local broadcast failed")
	}
}

func TestPresentAbsentLocalResolved(t *testing.T) {
	// present on a local that nobody emits must take the else branch
	// (Can analysis sets it absent).
	src := `module m(input pure tick, output pure no) {
        signal pure s;
        while (1) {
            await (tick);
            present (s) halt(); else emit(no);
        }
    }`
	m := build(t, src, "m", lower.MaximalReactive)
	react(t, m)
	r := react(t, m, "tick")
	if !hasOutput(r, "no") {
		t.Fatal("unemitted local signal should resolve absent")
	}
}

func TestCausalityError(t *testing.T) {
	// Classic paradox: s present iff s absent.
	src := `module m(input pure tick, output pure o) {
        signal pure s;
        await (tick);
        present (s) emit(o); else emit(s);
        halt();
    }`
	m := build(t, src, "m", lower.MaximalReactive)
	if _, err := m.React(Inputs{}); err != nil {
		t.Fatalf("boot instant should be fine: %v", err)
	}
	tick := m.Mod.Signal("tick")
	_, err := m.React(Inputs{tick: cval.Value{}})
	if err == nil {
		t.Fatal("expected causality error")
	}
	if _, ok := err.(*CausalityError); !ok {
		t.Fatalf("got %T: %v", err, err)
	}
}

// ---------------------------------------------------------------------------
// Preemption

func TestStrongAbortKillsBody(t *testing.T) {
	src := `module m(input pure kill, input pure tick, output pure beat, output pure dead) {
        do {
            while (1) { await(tick); emit(beat); }
        } abort (kill)
        handle { emit(dead); }
        halt();
    }`
	m := build(t, src, "m", lower.MaximalReactive)
	react(t, m)
	if r := react(t, m, "tick"); !hasOutput(r, "beat") {
		t.Fatal("beat missing")
	}
	// kill and tick together: strong abort suppresses beat, runs handler.
	r := react(t, m, "tick", "kill")
	if hasOutput(r, "beat") {
		t.Fatal("strong abort must suppress the body's instant")
	}
	if !hasOutput(r, "dead") {
		t.Fatal("handler did not run")
	}
	// Body stays dead.
	if r := react(t, m, "tick"); hasOutput(r, "beat") {
		t.Fatal("body survived abort")
	}
}

func TestWeakAbortLetsBodyFinishInstant(t *testing.T) {
	src := `module m(input pure kill, input pure tick, output pure beat, output pure dead) {
        do {
            while (1) { await(tick); emit(beat); }
        } weak_abort (kill)
        handle { emit(dead); }
        halt();
    }`
	m := build(t, src, "m", lower.MaximalReactive)
	react(t, m)
	r := react(t, m, "tick", "kill")
	if !hasOutput(r, "beat") {
		t.Fatal("weak abort must let the body run its last instant")
	}
	if !hasOutput(r, "dead") {
		t.Fatal("handler missing")
	}
}

func TestAbortIsDelayed(t *testing.T) {
	// Trigger present in the very start instant must not abort.
	src := `module m(input pure kill, output pure alive, output pure dead) {
        do {
            emit(alive); halt();
        } abort (kill)
        handle { emit(dead); }
        halt();
    }`
	m := build(t, src, "m", lower.MaximalReactive)
	r := react(t, m, "kill")
	if !hasOutput(r, "alive") || hasOutput(r, "dead") {
		t.Fatalf("start instant: %s", emittedNames(r))
	}
	r = react(t, m, "kill")
	if !hasOutput(r, "dead") {
		t.Fatal("abort missing in later instant")
	}
}

func TestSuspendFreezesBody(t *testing.T) {
	src := `module m(input pure hold, input pure tick, output pure beat) {
        do {
            while (1) { await(tick); emit(beat); }
        } suspend (hold);
    }`
	m := build(t, src, "m", lower.MaximalReactive)
	react(t, m)
	if r := react(t, m, "tick"); !hasOutput(r, "beat") {
		t.Fatal("beat missing")
	}
	// Suspended: tick ignored, state frozen.
	if r := react(t, m, "tick", "hold"); hasOutput(r, "beat") {
		t.Fatal("suspended body reacted")
	}
	// Resume: works again.
	if r := react(t, m, "tick"); !hasOutput(r, "beat") {
		t.Fatal("body did not resume after suspension")
	}
}

func TestWeakAbortHandlerFromPaper(t *testing.T) {
	m := build(t, paperex.RunnerStop, "runner", lower.MaximalReactive)
	react(t, m)       // boot
	react(t, m, "go") // await go fires -> enter weak_abort, emit started
	r := react(t, m, "stop")
	if !hasOutput(r, "aborted") {
		t.Fatalf("aborted missing: %s", emittedNames(r))
	}
}

// ---------------------------------------------------------------------------
// Par termination

func TestParJoins(t *testing.T) {
	src := `module m(input pure a, input pure b, output pure both) {
        while (1) {
            par {
                await (a);
                await (b);
            }
            emit(both);
        }
    }`
	m := build(t, src, "m", lower.MaximalReactive)
	react(t, m)
	if r := react(t, m, "a"); hasOutput(r, "both") {
		t.Fatal("par joined too early")
	}
	if r := react(t, m, "b"); !hasOutput(r, "both") {
		t.Fatal("par did not join")
	}
	// The loop restarts the par: both awaits re-arm.
	if r := react(t, m, "a", "b"); !hasOutput(r, "both") {
		t.Fatal("par did not rerun after loop")
	}
}

// ---------------------------------------------------------------------------
// Data: variables, loops, extracted functions

func TestCounterLoop(t *testing.T) {
	src := `module m(input pure tick, output pure fire) {
        int cnt;
        while (1) {
            for (cnt = 0; cnt < 3; cnt++) {
                await (tick);
            }
            emit(fire);
        }
    }`
	for _, pol := range []lower.Policy{lower.MaximalReactive, lower.MinimalReactive} {
		m := build(t, src, "m", pol)
		react(t, m)
		for round := 0; round < 2; round++ {
			for i := 0; i < 2; i++ {
				if r := react(t, m, "tick"); hasOutput(r, "fire") {
					t.Fatalf("policy %v: fire too early (tick %d)", pol, i)
				}
			}
			if r := react(t, m, "tick"); !hasOutput(r, "fire") {
				t.Fatalf("policy %v: fire missing after 3 ticks", pol)
			}
		}
	}
}

func TestValuedSignalEmission(t *testing.T) {
	src := `typedef unsigned char byte;
    module m(input byte in_b, output byte out_b) {
        while (1) {
            await (in_b);
            emit_v (out_b, in_b + 1);
        }
    }`
	m := build(t, src, "m", lower.MaximalReactive)
	react(t, m)
	r := reactV(t, m, map[string]cval.Value{"in_b": cval.FromInt(ctypes.UChar, 41)})
	var got int64 = -1
	for s, v := range r.Outputs {
		if s.Name == "out_b" {
			got = v.Int()
		}
	}
	if got != 42 {
		t.Fatalf("out_b = %d, want 42", got)
	}
}

func TestSignalValuePersists(t *testing.T) {
	src := `typedef unsigned char byte;
    module m(input byte v, input pure probe, output byte echo) {
        while (1) {
            await (probe);
            emit_v (echo, v);
        }
    }`
	m := build(t, src, "m", lower.MaximalReactive)
	react(t, m)
	reactV(t, m, map[string]cval.Value{"v": cval.FromInt(ctypes.UChar, 7)})
	// v absent now; its value must persist from the last emission.
	r := react(t, m, "probe")
	for s, val := range r.Outputs {
		if s.Name == "echo" && val.Int() != 7 {
			t.Fatalf("echo = %d, want persisted 7", val.Int())
		}
	}
}

// ---------------------------------------------------------------------------
// The paper's protocol stack, end to end

// feedPacket drives one 64-byte packet into the machine. good controls
// whether the CRC matches and the header matches the expected pattern.
func feedPacket(t *testing.T, m *Machine, good bool) []string {
	t.Helper()
	inByte := m.Mod.Signal("in_byte")
	if inByte == nil {
		t.Fatal("no in_byte signal")
	}
	pkt := paperex.MakePacket(good)

	var outs []string
	for i := 0; i < paperex.PktSize; i++ {
		r, err := m.React(Inputs{inByte: cval.FromInt(ctypes.UChar, int64(pkt[i]))})
		if err != nil {
			t.Fatalf("byte %d: %v", i, err)
		}
		for s := range r.Outputs {
			outs = append(outs, s.Name)
		}
	}
	// Drain instants for prochdr's multi-instant header scan.
	for i := 0; i < paperex.HdrSize+4; i++ {
		r, err := m.React(Inputs{})
		if err != nil {
			t.Fatalf("drain %d: %v", i, err)
		}
		for s := range r.Outputs {
			outs = append(outs, s.Name)
		}
	}
	return outs
}

func TestProtocolStackGoodPacket(t *testing.T) {
	for _, pol := range []lower.Policy{lower.MaximalReactive, lower.MinimalReactive} {
		m := build(t, paperex.Stack, "toplevel", pol)
		react(t, m) // boot
		outs := feedPacket(t, m, true)
		found := false
		for _, o := range outs {
			if o == "addr_match" {
				found = true
			}
		}
		if !found {
			t.Errorf("policy %v: addr_match missing for good packet (outputs: %v)", pol, outs)
		}
	}
}

func TestProtocolStackBadCRC(t *testing.T) {
	m := build(t, paperex.Stack, "toplevel", lower.MaximalReactive)
	react(t, m)
	outs := feedPacket(t, m, false)
	for _, o := range outs {
		if o == "addr_match" {
			t.Fatal("addr_match emitted for bad CRC")
		}
	}
}

func TestProtocolStackReset(t *testing.T) {
	m := build(t, paperex.Stack, "toplevel", lower.MaximalReactive)
	react(t, m)
	inByte := m.Mod.Signal("in_byte")
	reset := m.Mod.Signal("reset")
	// Feed half a packet, then reset, then a full good packet.
	for i := 0; i < 30; i++ {
		if _, err := m.React(Inputs{inByte: cval.FromInt(ctypes.UChar, 9)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.React(Inputs{reset: cval.Value{}}); err != nil {
		t.Fatal(err)
	}
	outs := feedPacket(t, m, true)
	found := false
	for _, o := range outs {
		if o == "addr_match" {
			found = true
		}
	}
	if !found {
		t.Error("addr_match missing after reset (outputs not realigned?)")
	}
}

// ---------------------------------------------------------------------------
// Buffer example

func TestBufferRecordPath(t *testing.T) {
	m := build(t, paperex.Buffer, "bufferctl", lower.MaximalReactive)
	react(t, m) // boot
	react(t, m, "rec_btn")
	mic := m.Mod.Signal("mic_sample")
	r, err := m.React(Inputs{mic: cval.FromInt(ctypes.UChar, 5)})
	if err != nil {
		t.Fatal(err)
	}
	// recording: a mic sample must raise low_water bookkeeping at least.
	_ = r
	// Stop and verify no further samples are consumed.
	react(t, m, "stop_btn")
	r2, err := m.React(Inputs{mic: cval.FromInt(ctypes.UChar, 6)})
	if err != nil {
		t.Fatal(err)
	}
	_ = r2
}

func TestBufferLevelMonitor(t *testing.T) {
	m := build(t, paperex.Buffer, "bufferctl", lower.MaximalReactive)
	r := react(t, m) // boot instant: level 0 -> buf_empty-ish signals
	// levelmon emits low_water when level <= LOWMARK (0 at boot).
	if !hasOutput(r, "low_water") {
		t.Fatalf("low_water missing at boot: %s", emittedNames(r))
	}
}

// ---------------------------------------------------------------------------
// State keys / determinism

func TestStateKeyDeterministic(t *testing.T) {
	m1 := build(t, paperex.ABRO, "abro", lower.MaximalReactive)
	m2 := build(t, paperex.ABRO, "abro", lower.MaximalReactive)
	react(t, m1)
	react(t, m2)
	react(t, m1, "A")
	react(t, m2, "A")
	if m1.State().Key() != m2.State().Key() {
		t.Error("same input sequence must give identical state keys")
	}
	react(t, m1, "B")
	if m1.State().Key() == m2.State().Key() {
		t.Error("different input sequences should move the state")
	}
}

func TestSetStateRoundTrip(t *testing.T) {
	m := build(t, paperex.ABRO, "abro", lower.MaximalReactive)
	react(t, m)
	react(t, m, "A")
	saved := m.State()
	r1 := react(t, m, "B")
	// Restore and replay.
	m.SetState(saved, true)
	r2 := react(t, m, "B")
	if hasOutput(r1, "O") != hasOutput(r2, "O") {
		t.Error("replay from saved state diverged")
	}
}

func TestInstantaneousLoopDetected(t *testing.T) {
	// A reactive loop whose body terminates instantly when c is false.
	src := `module m(input pure tick, output pure o) {
        int c;
        c = 0;
        while (1) {
            if (c) { await (tick); }
            emit(o);
        }
    }`
	m := build(t, src, "m", lower.MaximalReactive)
	_, err := m.React(Inputs{})
	if err == nil || !strings.Contains(err.Error(), "instantaneous loop") {
		t.Fatalf("expected instantaneous-loop error, got %v", err)
	}
}

// kernel writer smoke test against the lowered stack.
func TestEsterelArtifact(t *testing.T) {
	m := build(t, paperex.Stack, "toplevel", lower.MaximalReactive)
	text := kernel.EsterelString(m.Mod)
	for _, want := range []string{
		"module toplevel:",
		"input reset;",
		"input in_byte : unsigned char;",
		"output addr_match;",
		"await [in_byte]",
		"signal toplevel.packet : union",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("Esterel artifact missing %q", want)
		}
	}
}
