package interp

import "repro/internal/kernel"

// This file implements the Can analysis used to resolve signal absence
// at quiescence: which signals could still be emitted in the current
// instant by code that has not run yet. It follows Esterel's Can
// function, instant-bounded: walking into a statement stops at the
// first unavoidable pause, and a sequence's tail is reachable only if
// its head can terminate instantly. The result over-approximates
// emissions (data conditions count both arms), which keeps absence
// resolution sound.

// canInfo is the memoized start-analysis of one node.
type canInfo struct {
	emits   map[*kernel.Signal]bool
	canTerm bool
}

// canStart returns the signals s could emit if started this instant,
// and whether it could terminate (or exit) within the instant.
func (m *Machine) canStart(s kernel.Stmt) canInfo {
	if s == nil {
		return canInfo{canTerm: true}
	}
	if ci, ok := m.canStartMemo[s]; ok {
		return ci
	}
	ci := m.canStartCompute(s)
	m.canStartMemo[s] = ci
	return ci
}

func union(dst map[*kernel.Signal]bool, src map[*kernel.Signal]bool) map[*kernel.Signal]bool {
	if len(src) == 0 {
		return dst
	}
	if dst == nil {
		dst = make(map[*kernel.Signal]bool, len(src))
	}
	for k := range src {
		dst[k] = true
	}
	return dst
}

func (m *Machine) canStartCompute(s kernel.Stmt) canInfo {
	switch s := s.(type) {
	case *kernel.Nothing, *kernel.Assign, *kernel.Eval, *kernel.DataCall:
		return canInfo{canTerm: true}
	case *kernel.Emit:
		return canInfo{emits: map[*kernel.Signal]bool{s.Sig: true}, canTerm: true}
	case *kernel.Pause, *kernel.Halt, *kernel.Await:
		return canInfo{canTerm: false}
	case *kernel.Exit:
		// Treated as "can terminate" so enclosing continuations stay
		// reachable (a sound over-approximation).
		return canInfo{canTerm: true}
	case *kernel.Seq:
		var out canInfo
		out.canTerm = true
		for _, c := range s.List {
			ci := m.canStart(c)
			out.emits = union(out.emits, ci.emits)
			if !ci.canTerm {
				out.canTerm = false
				break
			}
		}
		return out
	case *kernel.Loop:
		body := m.canStart(s.Body)
		// A loop never terminates normally; it can only leave via an
		// exit somewhere in its body.
		return canInfo{emits: body.emits, canTerm: m.hasExit[s]}
	case *kernel.Par:
		var out canInfo
		out.canTerm = true
		for _, b := range s.Branches {
			ci := m.canStart(b)
			out.emits = union(out.emits, ci.emits)
			out.canTerm = out.canTerm && ci.canTerm
		}
		if m.hasExit[s] {
			out.canTerm = true
		}
		return out
	case *kernel.Present:
		t := m.canStart(s.Then)
		e := m.canStart(s.Else)
		return canInfo{emits: union(union(nil, t.emits), e.emits), canTerm: t.canTerm || e.canTerm}
	case *kernel.IfData:
		t := m.canStart(s.Then)
		e := m.canStart(s.Else)
		return canInfo{emits: union(union(nil, t.emits), e.emits), canTerm: t.canTerm || e.canTerm}
	case *kernel.Trap:
		body := m.canStart(s.Body)
		return canInfo{emits: body.emits, canTerm: body.canTerm || m.hasExit[s]}
	case *kernel.Abort:
		// Starting an abort is delayed: only the body runs; the
		// trigger and handler wait for later instants.
		return m.canStart(s.Body)
	case *kernel.Suspend:
		return m.canStart(s.Body)
	case *kernel.Local:
		return m.canStart(s.Body)
	}
	return canInfo{canTerm: true}
}

// canResume returns the signals s could emit when resumed in the
// current control state, and whether it could terminate this instant.
func (m *Machine) canResume(s kernel.Stmt) canInfo {
	cur := m.state
	switch s := s.(type) {
	case *kernel.Pause:
		return canInfo{canTerm: true}
	case *kernel.Halt:
		return canInfo{canTerm: false}
	case *kernel.Await:
		return canInfo{canTerm: true}
	case *kernel.Seq:
		ent := cur.get(s.ID())
		if ent == nil {
			return canInfo{canTerm: true}
		}
		i := ent[0]
		if i >= len(s.List) {
			return canInfo{canTerm: true}
		}
		out := m.canResume(s.List[i])
		if !out.canTerm {
			return out
		}
		for _, c := range s.List[i+1:] {
			ci := m.canStart(c)
			out.emits = union(out.emits, ci.emits)
			if !ci.canTerm {
				out.canTerm = false
				return out
			}
		}
		return out
	case *kernel.Loop:
		body := m.canResume(s.Body)
		if body.canTerm {
			again := m.canStart(s.Body)
			body.emits = union(body.emits, again.emits)
			body.canTerm = m.hasExit[s]
		}
		return body
	case *kernel.Par:
		ent := cur.get(s.ID())
		if ent == nil {
			return canInfo{canTerm: true}
		}
		out := canInfo{canTerm: true}
		for i, b := range s.Branches {
			if i < len(ent) && ent[i] == 1 {
				ci := m.canResume(b)
				out.emits = union(out.emits, ci.emits)
				out.canTerm = out.canTerm && ci.canTerm
			}
		}
		if m.hasExit[s] {
			out.canTerm = true
		}
		return out
	case *kernel.Present:
		ent := cur.get(s.ID())
		if ent == nil {
			return canInfo{canTerm: true}
		}
		arm := s.Then
		if ent[0] == 2 {
			arm = s.Else
		}
		return m.canResume(arm)
	case *kernel.IfData:
		ent := cur.get(s.ID())
		if ent == nil {
			return canInfo{canTerm: true}
		}
		arm := s.Then
		if ent[0] == 2 {
			arm = s.Else
		}
		return m.canResume(arm)
	case *kernel.Trap:
		body := m.canResume(s.Body)
		return canInfo{emits: body.emits, canTerm: body.canTerm || m.hasExit[s]}
	case *kernel.Exit:
		return canInfo{canTerm: true}
	case *kernel.Abort:
		ent := cur.get(s.ID())
		if ent == nil {
			return canInfo{canTerm: true}
		}
		if ent[0] == 2 {
			return m.canResume(s.Handler)
		}
		// Trigger undetermined: either the handler starts (strong),
		// the body runs then the handler (weak), or the body resumes.
		body := m.canResume(s.Body)
		h := m.canStart(s.Handler)
		return canInfo{
			emits:   union(union(nil, body.emits), h.emits),
			canTerm: body.canTerm || h.canTerm || s.Handler == nil,
		}
	case *kernel.Suspend:
		// Either frozen (no emissions, no termination) or resumed.
		return m.canResume(s.Body)
	case *kernel.Local:
		return m.canResume(s.Body)
	case nil:
		return canInfo{canTerm: true}
	}
	// Leaf data actions in resume position cannot occur, but be safe.
	return m.canStart(s)
}

// foldChain adds the continuation chain's reachable emissions to can,
// walking items in order and stopping at the first item that cannot
// terminate within the instant.
func (m *Machine) foldChain(k *cont, can map[*kernel.Signal]bool) map[*kernel.Signal]bool {
	for c := k; c != nil; c = c.next {
		for _, item := range c.items {
			ci := m.canStart(item)
			can = union(can, ci.emits)
			if !ci.canTerm {
				return can
			}
		}
	}
	return can
}
