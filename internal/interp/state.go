package interp

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/kernel"
)

// State is the explicit control state of a kernel module between
// instants: which pause points hold control, plus the bookkeeping
// composite nodes need to route resumption (sequence index, parallel
// branch statuses, chosen present/if arm, abort phase). It is exactly
// Esterel's "selected" control residue, and its canonical Key is the
// EFSM state identity.
type State struct {
	m map[int][]int
}

// NewState returns the boot state (nothing selected).
func NewState() *State { return &State{m: make(map[int][]int)} }

// Empty reports whether no control is held (program not started, or
// terminated).
func (s *State) Empty() bool { return len(s.m) == 0 }

// Clone returns a deep copy.
func (s *State) Clone() *State {
	c := NewState()
	for k, v := range s.m {
		vv := make([]int, len(v))
		copy(vv, v)
		c.m[k] = vv
	}
	return c
}

// get returns the entry for a node, or nil.
func (s *State) get(id int) []int { return s.m[id] }

// set stores an entry for a node.
func (s *State) set(id int, v ...int) { s.m[id] = v }

// clear removes the node's entry.
func (s *State) clear(id int) { delete(s.m, id) }

// clearSubtree removes entries for a statement and every descendant.
func (s *State) clearSubtree(st kernel.Stmt) {
	kernel.Walk(st, func(n kernel.Stmt) { delete(s.m, n.ID()) })
}

// copySubtree copies entries for a statement subtree from src.
func (s *State) copySubtree(src *State, st kernel.Stmt) {
	kernel.Walk(st, func(n kernel.Stmt) {
		if v, ok := src.m[n.ID()]; ok {
			vv := make([]int, len(v))
			copy(vv, v)
			s.m[n.ID()] = vv
		}
	})
}

// Key returns a canonical string identity for the state.
func (s *State) Key() string {
	if len(s.m) == 0 {
		return "boot"
	}
	ids := make([]int, 0, len(s.m))
	for id := range s.m {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var b strings.Builder
	for i, id := range ids {
		if i > 0 {
			b.WriteByte(';')
		}
		fmt.Fprintf(&b, "%d=", id)
		for j, v := range s.m[id] {
			if j > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%d", v)
		}
	}
	return b.String()
}

// hasActiveWithin reports whether any pause-point entry exists inside
// the subtree (the node holds control across instants).
func (s *State) hasActiveWithin(st kernel.Stmt) bool {
	found := false
	kernel.Walk(st, func(n kernel.Stmt) {
		if found {
			return
		}
		switch n.(type) {
		case *kernel.Pause, *kernel.Halt, *kernel.Await:
			if _, ok := s.m[n.ID()]; ok {
				found = true
			}
		}
	})
	return found
}
