package interp

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/cval"
	"repro/internal/kernel"
)

// PortableSnapshot is the pointer-free form of a Snapshot: control
// state by its canonical key, variables and signal values by name with
// raw big-endian bytes. It is what survives serialization — a machine
// over the same module (even in a different process, as long as the
// module was lowered from the same source) can rebind the names to its
// own identities and continue exactly where the snapshot left off.
type PortableSnapshot struct {
	// State is the control residue's canonical key (State.Key).
	State string
	// Started and Done mirror the machine's lifecycle flags.
	Started bool
	Done    bool
	// Vars maps variable names to their raw value bytes.
	Vars map[string][]byte
	// Sigs maps valued-signal names to their stored value bytes.
	Sigs map[string][]byte
}

// Portable converts a snapshot to its name-keyed form.
func (s *Snapshot) Portable() *PortableSnapshot {
	p := &PortableSnapshot{
		State:   s.state.Key(),
		Started: s.started,
		Done:    s.done,
		Vars:    make(map[string][]byte, len(s.vars)),
		Sigs:    make(map[string][]byte, len(s.sigVals)),
	}
	for v, val := range s.vars {
		p.Vars[v.Name] = append([]byte(nil), val.B...)
	}
	for sig, val := range s.sigVals {
		p.Sigs[sig.Name] = append([]byte(nil), val.B...)
	}
	return p
}

// SnapshotFromPortable rebinds a portable snapshot's names to this
// machine's identities, validating that every store the machine owns
// is covered with bytes of the declared size. The result restores into
// this machine (or any machine over the same module).
func (m *Machine) SnapshotFromPortable(p *PortableSnapshot) (*Snapshot, error) {
	state, err := ParseStateKey(p.State)
	if err != nil {
		return nil, fmt.Errorf("interp: portable snapshot: %w", err)
	}
	s := &Snapshot{
		owner:   m.Mod,
		state:   state,
		started: p.Started,
		done:    p.Done,
		vars:    make(map[*kernel.Var]cval.Value, len(m.vars)),
		sigVals: make(map[*kernel.Signal]cval.Value, len(m.sigVals)),
	}
	for v := range m.vars {
		b, ok := p.Vars[v.Name]
		if !ok {
			return nil, fmt.Errorf("interp: portable snapshot: no value for variable %s", v.Name)
		}
		if len(b) != v.Type.Size() {
			return nil, fmt.Errorf("interp: portable snapshot: variable %s: %d bytes for %s (want %d)",
				v.Name, len(b), v.Type, v.Type.Size())
		}
		s.vars[v] = cval.Value{Type: v.Type, B: append([]byte(nil), b...)}
	}
	for sig := range m.sigVals {
		b, ok := p.Sigs[sig.Name]
		if !ok {
			return nil, fmt.Errorf("interp: portable snapshot: no value for signal %s", sig.Name)
		}
		if len(b) != sig.Type.Size() {
			return nil, fmt.Errorf("interp: portable snapshot: signal %s: %d bytes for %s (want %d)",
				sig.Name, len(b), sig.Type, sig.Type.Size())
		}
		s.sigVals[sig] = cval.Value{Type: sig.Type, B: append([]byte(nil), b...)}
	}
	return s, nil
}

// ParseStateKey rebuilds a control state from its canonical Key
// encoding ("boot", or ";"-separated "id=v1,v2,..." entries).
func ParseStateKey(key string) (*State, error) {
	s := NewState()
	if key == "boot" || key == "" {
		return s, nil
	}
	for _, entry := range strings.Split(key, ";") {
		id, rest, ok := strings.Cut(entry, "=")
		if !ok {
			return nil, fmt.Errorf("bad state entry %q", entry)
		}
		node, err := strconv.Atoi(id)
		if err != nil {
			return nil, fmt.Errorf("bad state node id %q", id)
		}
		var vals []int
		if rest != "" {
			for _, f := range strings.Split(rest, ",") {
				v, err := strconv.Atoi(f)
				if err != nil {
					return nil, fmt.Errorf("bad state value %q in %q", f, entry)
				}
				vals = append(vals, v)
			}
		}
		if vals == nil {
			vals = []int{}
		}
		s.m[node] = vals
	}
	return s, nil
}
