// Package interp is the reference interpreter for the Esterel kernel
// IR: it executes one synchronous reaction at a time under Esterel's
// logical semantics. Parallel branches run as cooperatively scheduled
// threads; a thread that tests an undetermined signal blocks, and when
// no thread can run, signals that no remaining code can emit are set
// absent (a conservative Can analysis). If that resolves nothing, the
// reaction fails with a causality error.
//
// The interpreter is used three ways: directly as the simulation
// semantics, by the EFSM compiler (internal/compile) with symbolic
// data hooks, and by tests as the oracle the compiled EFSM must match.
package interp

import (
	"fmt"
	"sort"

	"repro/internal/cval"
	"repro/internal/dataexec"
	"repro/internal/kernel"
	"repro/internal/sem"
)

// Status is a three-valued signal presence.
type Status int

// Presence values.
const (
	Unknown Status = iota
	Present
	Absent
)

// DataHooks abstracts the data side of a reaction so that the EFSM
// compiler can run reactions symbolically. The default hooks execute
// concretely against the machine's stores.
type DataHooks interface {
	// EvalCond decides an IfData condition.
	EvalCond(e kernel.Expr) (bool, error)
	// ExecAssign performs an inline assignment action.
	ExecAssign(lhs, rhs kernel.Expr) error
	// ExecEval evaluates an expression action for side effects.
	ExecEval(x kernel.Expr) error
	// ExecData runs an extracted data function atomically.
	ExecData(f *kernel.DataFunc) error
	// EmitValue handles the value part of a valued emit.
	EmitValue(sig *kernel.Signal, v *kernel.Expr) error
}

// Inputs maps present input signals to their carried values for one
// instant (pure inputs map to an invalid Value).
type Inputs map[*kernel.Signal]cval.Value

// Reaction reports the result of one instant.
type Reaction struct {
	// Emitted lists every signal emitted this instant, in emission order.
	Emitted []*kernel.Signal
	// Outputs holds the emitted output-class signals and their values.
	Outputs map[*kernel.Signal]cval.Value
	// Terminated reports whether the program finished.
	Terminated bool
	// Units is the abstract data-execution work charged this instant.
	Units int
}

// EmittedSet returns the emitted signals as a set.
func (r *Reaction) EmittedSet() map[*kernel.Signal]bool {
	s := make(map[*kernel.Signal]bool, len(r.Emitted))
	for _, sig := range r.Emitted {
		s[sig] = true
	}
	return s
}

// CausalityError reports a reaction that could not be scheduled.
type CausalityError struct {
	Module  string
	Blocked []string // descriptions of blocked tests
}

// Error describes the blocked signal tests.
func (e *CausalityError) Error() string {
	return fmt.Sprintf("causality error in %s: no schedulable order for %v", e.Module, e.Blocked)
}

// Machine executes reactions over a kernel module.
type Machine struct {
	Mod  *kernel.Module
	Info *sem.Info

	state        *State
	started      bool
	done         bool
	vars         map[*kernel.Var]cval.Value
	sigVals      map[*kernel.Signal]cval.Value
	hooks        DataHooks
	units        int
	canStartMemo map[kernel.Stmt]canInfo
	hasExit      map[kernel.Stmt]bool

	// LoopLimit bounds same-instant loop iterations (instantaneous
	// loop detection); zero means the default.
	LoopLimit int

	// InputHook, when set, decides the presence of an input signal the
	// first time a reaction tests it, instead of presetting all inputs
	// from React's argument. The EFSM compiler uses it to explore input
	// combinations lazily.
	InputHook func(*kernel.Signal) Status
}

// debugCan enables quiescence-failure dumps (tests only).
var debugCan = false

// defaultLoopLimit bounds same-instant loop restarts.
const defaultLoopLimit = 4096

// NewMachine builds a machine with concrete data execution.
func NewMachine(mod *kernel.Module, info *sem.Info) *Machine {
	m := &Machine{
		Mod:          mod,
		Info:         info,
		state:        NewState(),
		vars:         make(map[*kernel.Var]cval.Value),
		sigVals:      make(map[*kernel.Signal]cval.Value),
		canStartMemo: make(map[kernel.Stmt]canInfo),
		hasExit:      make(map[kernel.Stmt]bool),
	}
	for _, v := range mod.Vars {
		m.vars[v] = cval.New(v.Type)
	}
	for _, s := range mod.Signals() {
		if !s.Pure && s.Type != nil {
			m.sigVals[s] = cval.New(s.Type)
		}
	}
	kernel.Walk(mod.Body, func(s kernel.Stmt) {
		found := false
		kernel.Walk(s, func(n kernel.Stmt) {
			if _, ok := n.(*kernel.Exit); ok {
				found = true
			}
		})
		m.hasExit[s] = found
	})
	m.hooks = &concreteHooks{m: m}
	return m
}

// SetHooks replaces the data hooks (used by the EFSM compiler).
func (m *Machine) SetHooks(h DataHooks) { m.hooks = h }

// State returns a clone of the current control state.
func (m *Machine) State() *State { return m.state.Clone() }

// SetState forces the control state (used when exploring states).
func (m *Machine) SetState(s *State, started bool) {
	m.state = s.Clone()
	m.started = started
	m.done = false
}

// Terminated reports whether the program has finished.
func (m *Machine) Terminated() bool { return m.done }

// VarValue implements dataexec.Env.
func (m *Machine) VarValue(v *kernel.Var) (cval.Value, error) {
	val, ok := m.vars[v]
	if !ok {
		return cval.Value{}, fmt.Errorf("unknown variable %s", v.Name)
	}
	return val, nil
}

// SignalValue implements dataexec.Env.
func (m *Machine) SignalValue(s *kernel.Signal) (cval.Value, error) {
	val, ok := m.sigVals[s]
	if !ok {
		return cval.Value{}, fmt.Errorf("signal %s carries no value", s.Name)
	}
	return val, nil
}

// Charge implements dataexec.Env.
func (m *Machine) Charge(units int) { m.units += units }

// Snapshot is a deep copy of a machine's full execution state: the
// control residue plus every variable and signal-value store. It can
// be restored into the machine it came from or into any fresh machine
// over the same compiled module (same signal/variable identities),
// which is what lets sessions fork a simulation mid-run.
type Snapshot struct {
	owner   *kernel.Module
	state   *State
	started bool
	done    bool
	vars    map[*kernel.Var]cval.Value
	sigVals map[*kernel.Signal]cval.Value
}

// Snapshot captures the machine's current state.
func (m *Machine) Snapshot() *Snapshot {
	return &Snapshot{
		owner:   m.Mod,
		state:   m.state.Clone(),
		started: m.started,
		done:    m.done,
		vars:    cloneValues(m.vars),
		sigVals: cloneValues(m.sigVals),
	}
}

// Restore rewinds the machine to a snapshot taken from a machine over
// the same module; a snapshot of a different module instance is
// rejected, since its state is keyed by foreign node and signal
// identities.
func (m *Machine) Restore(s *Snapshot) error {
	if s.owner != m.Mod {
		return fmt.Errorf("snapshot belongs to a different module instance (%s)", s.owner.Name)
	}
	m.state = s.state.Clone()
	m.started = s.started
	m.done = s.done
	m.vars = cloneValues(s.vars)
	m.sigVals = cloneValues(s.sigVals)
	return nil
}

// Reset returns the machine to its boot state with zeroed stores.
func (m *Machine) Reset() {
	m.state = NewState()
	m.started = false
	m.done = false
	m.units = 0
	for v := range m.vars {
		m.vars[v] = cval.New(v.Type)
	}
	for s := range m.sigVals {
		m.sigVals[s] = cval.New(s.Type)
	}
}

// cloneValues deep-copies a value store.
func cloneValues[K comparable](src map[K]cval.Value) map[K]cval.Value {
	out := make(map[K]cval.Value, len(src))
	for k, v := range src {
		out[k] = v.Clone()
	}
	return out
}

// SetVar overwrites a variable (testing hook).
func (m *Machine) SetVar(name string, v cval.Value) error {
	for kv := range m.vars {
		if kv.Name == name {
			return m.vars[kv].Assign(v)
		}
	}
	return fmt.Errorf("no variable %q", name)
}

// VarByName returns a variable's current value (testing hook).
func (m *Machine) VarByName(name string) (cval.Value, bool) {
	for kv, v := range m.vars {
		if kv.Name == name {
			return v, true
		}
	}
	return cval.Value{}, false
}

// concreteHooks executes data actions against the machine stores.
type concreteHooks struct{ m *Machine }

func (h *concreteHooks) evaluator() *dataexec.Evaluator {
	return dataexec.New(h.m.Info, h.m)
}

func (h *concreteHooks) EvalCond(e kernel.Expr) (bool, error) {
	return h.evaluator().EvalBool(e)
}

func (h *concreteHooks) ExecAssign(lhs, rhs kernel.Expr) error {
	return h.evaluator().ExecAssign(lhs, rhs)
}

func (h *concreteHooks) ExecEval(x kernel.Expr) error {
	return h.evaluator().ExecEval(x)
}

func (h *concreteHooks) ExecData(f *kernel.DataFunc) error {
	return h.evaluator().ExecDataFunc(f)
}

func (h *concreteHooks) EmitValue(sig *kernel.Signal, v *kernel.Expr) error {
	if v == nil {
		return nil
	}
	val, err := h.evaluator().Eval(*v)
	if err != nil {
		return err
	}
	slot, ok := h.m.sigVals[sig]
	if !ok {
		return fmt.Errorf("signal %s carries no value", sig.Name)
	}
	return slot.Assign(val)
}

// React runs one instant with the given present inputs.
func (m *Machine) React(in Inputs) (*Reaction, error) {
	if m.done {
		return &Reaction{Terminated: true, Outputs: map[*kernel.Signal]cval.Value{}}, nil
	}
	m.units = 0
	r := &reaction{
		m:      m,
		status: make(map[*kernel.Signal]Status),
		next:   NewState(),
	}
	if m.InputHook == nil {
		for _, s := range m.Mod.Inputs {
			r.status[s] = Absent
		}
	}
	for sig, val := range in {
		r.status[sig] = Present
		if val.IsValid() {
			if slot, ok := m.sigVals[sig]; ok {
				if err := slot.Assign(val); err != nil {
					return nil, fmt.Errorf("input %s: %w", sig.Name, err)
				}
			}
		}
	}

	mode := modeStart
	if m.started {
		mode = modeResume
	}
	root := r.newThread(nil)
	comp, err := r.run(root, m.Mod.Body, mode)
	if err != nil {
		return nil, err
	}

	m.state = r.next
	m.started = true
	out := &Reaction{Units: m.units, Outputs: make(map[*kernel.Signal]cval.Value)}
	out.Emitted = r.emitted
	for _, sig := range r.emitted {
		if sig.Class == kernel.Output {
			if v, ok := m.sigVals[sig]; ok {
				out.Outputs[sig] = v.Clone()
			} else {
				out.Outputs[sig] = cval.Value{}
			}
		}
	}
	if comp.kind == compTerminated || comp.kind == compExited {
		m.done = true
		out.Terminated = true
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Reaction engine

type compKind int

const (
	compTerminated compKind = iota
	compPaused
	compExited
)

type completion struct {
	kind compKind
	trap *kernel.Trap
}

// cont is the within-instant continuation chain used only for the
// conservative Can analysis: what code could still run after the
// current point in this thread.
type cont struct {
	items []kernel.Stmt
	next  *cont
}

type killedPanic struct{}

type threadState int

const (
	thReady threadState = iota
	thRunning
	thBlockedSig
	thWaitJoin
	thDone
)

type thread struct {
	id     int
	r      *reaction
	parent *thread

	resume chan struct{}
	yield  chan struct{}

	state threadState
	// when blockedSig:
	blockedExpr kernel.SigExpr
	blockedCan  map[*kernel.Signal]bool
	// when waitJoin:
	joinPending int
	joinCan     map[*kernel.Signal]bool
	// result when done:
	comp completion
	err  error

	body kernel.Stmt
	mode runMode
	k    *cont
}

type runMode int

const (
	modeStart runMode = iota
	modeResume
)

type reaction struct {
	m       *Machine
	status  map[*kernel.Signal]Status
	emitted []*kernel.Signal
	next    *State

	threads []*thread
	killing bool
	failure error
}

func (r *reaction) newThread(parent *thread) *thread {
	th := &thread{
		id:     len(r.threads),
		r:      r,
		parent: parent,
		resume: make(chan struct{}),
		yield:  make(chan struct{}),
		state:  thReady,
	}
	r.threads = append(r.threads, th)
	return th
}

// run executes the root statement in the root thread and drives the
// scheduler until the instant completes.
func (r *reaction) run(root *thread, body kernel.Stmt, mode runMode) (completion, error) {
	root.body = body
	root.mode = mode
	root.launch()
	if err := r.schedule(); err != nil {
		return completion{}, err
	}
	return root.comp, root.err
}

// launch starts the thread's goroutine; it runs until its first yield.
func (th *thread) launch() {
	go func() {
		defer func() {
			if p := recover(); p != nil {
				if _, ok := p.(killedPanic); ok {
					th.state = thDone
					th.comp = completion{kind: compTerminated}
					close(th.yield)
					return
				}
				panic(p)
			}
		}()
		<-th.resume
		comp, err := th.exec(th.body, th.mode, th.k)
		th.comp = comp
		th.err = err
		if err != nil && th.r.failure == nil {
			th.r.failure = err
		}
		th.state = thDone
		close(th.yield)
	}()
}

// step gives the thread the baton and waits for it to yield or finish.
func (th *thread) stepOnce() {
	th.state = thRunning
	th.resume <- struct{}{}
	<-th.yield
}

// yieldToScheduler parks the thread (already marked blocked/waiting)
// and waits to be resumed. Panics with killedPanic during shutdown.
func (th *thread) yieldToScheduler() {
	th.yield <- struct{}{}
	<-th.resume
	if th.r.killing {
		panic(killedPanic{})
	}
}

// schedule runs ready threads until all are done, resolving blocked
// signal tests by the Can rule, and returns the first error.
func (r *reaction) schedule() error {
	steps := 0
	for {
		steps++
		if steps > 10_000_000 {
			return fmt.Errorf("scheduler exceeded step budget (diverging reaction)")
		}
		if r.failure != nil {
			r.shutdown()
			return r.failure
		}
		// Find a ready thread (deterministic: lowest id first).
		var ready *thread
		for _, th := range r.threads {
			if th.state == thReady {
				ready = th
				break
			}
		}
		if ready != nil {
			if ready.yield == nil {
				return fmt.Errorf("internal: ready thread without goroutine")
			}
			ready.stepOnce()
			// Check for completed joins after every step.
			r.completeJoins()
			continue
		}
		// No ready thread: are we done?
		allDone := true
		for _, th := range r.threads {
			if th.state != thDone {
				allDone = false
				break
			}
		}
		if allDone {
			return r.failure
		}
		// Quiescent: first wake any thread whose test has been decided
		// by an emission that happened after it blocked.
		woke := false
		for _, th := range r.threads {
			if th.state == thBlockedSig && r.evalSig(th.blockedExpr) != Unknown {
				th.state = thReady
				woke = true
			}
		}
		if woke {
			continue
		}
		// Then apply the Can rule.
		if !r.resolveAbsent() {
			if debugCan {
				fmt.Println("=== quiescence failure ===")
				for _, th := range r.threads {
					switch th.state {
					case thBlockedSig:
						var names []string
						for s := range th.blockedCan {
							names = append(names, s.Name)
						}
						var sts []string
						for _, sg := range th.blockedExpr.Signals(nil) {
							sts = append(sts, fmt.Sprintf("%s:%d(class=%v)", sg.Name, r.statusOf(sg), sg.Class))
						}
						fmt.Printf("thread %d blocked on %s, can=%v, status=%v\n", th.id, th.blockedExpr, names, sts)
					case thWaitJoin:
						var names []string
						for s := range th.joinCan {
							names = append(names, s.Name)
						}
						fmt.Printf("thread %d waitjoin, can=%v\n", th.id, names)
					case thDone:
						fmt.Printf("thread %d done\n", th.id)
					}
				}
			}
			var blocked []string
			for _, th := range r.threads {
				if th.state == thBlockedSig {
					blocked = append(blocked, th.blockedExpr.String())
				}
			}
			sort.Strings(blocked)
			r.shutdown()
			return &CausalityError{Module: r.m.Mod.Name, Blocked: blocked}
		}
		// Wake all signal-blocked threads to retry their tests.
		for _, th := range r.threads {
			if th.state == thBlockedSig {
				th.state = thReady
			}
		}
	}
}

// completeJoins resumes parents whose children have all finished.
func (r *reaction) completeJoins() {
	for _, th := range r.threads {
		if th.state != thWaitJoin {
			continue
		}
		pending := 0
		for _, c := range r.threads {
			if c.parent == th && c.state != thDone {
				pending++
			}
		}
		if pending == 0 {
			th.state = thReady
		}
	}
}

// resolveAbsent sets signals that no blocked or pending code can emit
// to absent. It returns false when nothing changed.
func (r *reaction) resolveAbsent() bool {
	potential := make(map[*kernel.Signal]bool)
	for _, th := range r.threads {
		switch th.state {
		case thBlockedSig:
			for s := range th.blockedCan {
				potential[s] = true
			}
		case thWaitJoin:
			for s := range th.joinCan {
				potential[s] = true
			}
		}
	}
	changed := false
	// Any signal still unknown that nothing can emit becomes absent.
	for _, th := range r.threads {
		if th.state != thBlockedSig {
			continue
		}
		for _, sig := range th.blockedExpr.Signals(nil) {
			if r.statusOf(sig) == Unknown && !potential[sig] {
				r.status[sig] = Absent
				changed = true
			}
		}
	}
	return changed
}

// shutdown kills every live thread so no goroutine leaks.
func (r *reaction) shutdown() {
	r.killing = true
	for progress := true; progress; {
		progress = false
		for _, th := range r.threads {
			switch th.state {
			case thReady, thBlockedSig, thWaitJoin:
				th.stepOnce()
				progress = true
			}
		}
		r.completeJoins()
		// completeJoins may have made parents ready again; loop.
		for _, th := range r.threads {
			if th.state == thReady {
				progress = true
			}
		}
	}
}

func (r *reaction) statusOf(sig *kernel.Signal) Status {
	if s, ok := r.status[sig]; ok {
		return s
	}
	if sig.Class == kernel.Input && r.m.InputHook != nil {
		s := r.m.InputHook(sig)
		r.status[sig] = s
		return s
	}
	return Unknown
}

// emit makes the signal present and records it.
func (r *reaction) emit(sig *kernel.Signal) {
	r.status[sig] = Present
	r.emitted = append(r.emitted, sig)
}

// evalSig evaluates a presence formula three-valued.
func (r *reaction) evalSig(e kernel.SigExpr) Status {
	switch e := e.(type) {
	case *kernel.SigRef:
		return r.statusOf(e.Sig)
	case *kernel.SigNot:
		switch r.evalSig(e.X) {
		case Present:
			return Absent
		case Absent:
			return Present
		}
		return Unknown
	case *kernel.SigAnd:
		x, y := r.evalSig(e.X), r.evalSig(e.Y)
		if x == Absent || y == Absent {
			return Absent
		}
		if x == Present && y == Present {
			return Present
		}
		return Unknown
	case *kernel.SigOr:
		x, y := r.evalSig(e.X), r.evalSig(e.Y)
		if x == Present || y == Present {
			return Present
		}
		if x == Absent && y == Absent {
			return Absent
		}
		return Unknown
	}
	return Unknown
}

// ---------------------------------------------------------------------------
// Thread execution

// testSig evaluates a presence formula, blocking while it is
// undetermined. localCan describes what the thread could emit from the
// test point onward (both outcomes), so the Can analysis can decide
// which undetermined signals are truly unemittable.
func (th *thread) testSig(e kernel.SigExpr, localCan canInfo, k *cont) bool {
	for {
		switch th.r.evalSig(e) {
		case Present:
			return true
		case Absent:
			return false
		}
		// Blocked: register what we could still emit, then yield.
		can := union(nil, localCan.emits)
		if localCan.canTerm {
			can = th.r.m.foldChain(k, can)
		}
		if can == nil {
			can = map[*kernel.Signal]bool{}
		}
		th.blockedExpr = e
		th.blockedCan = can
		th.state = thBlockedSig
		th.yieldToScheduler()
	}
}

func (th *thread) exec(s kernel.Stmt, mode runMode, k *cont) (completion, error) {
	r := th.r
	cur := r.m.state
	switch s := s.(type) {
	case *kernel.Nothing:
		return completion{kind: compTerminated}, nil

	case *kernel.Pause:
		if mode == modeResume && cur.get(s.ID()) != nil {
			return completion{kind: compTerminated}, nil
		}
		r.next.set(s.ID(), 1)
		return completion{kind: compPaused}, nil

	case *kernel.Halt:
		r.next.set(s.ID(), 1)
		return completion{kind: compPaused}, nil

	case *kernel.Await:
		if mode == modeResume && cur.get(s.ID()) != nil {
			if th.testSig(s.Sig, canInfo{canTerm: true}, k) {
				return completion{kind: compTerminated}, nil
			}
		}
		r.next.set(s.ID(), 1)
		return completion{kind: compPaused}, nil

	case *kernel.Emit:
		if err := r.m.hooks.EmitValue(s.Sig, s.Value); err != nil {
			return completion{}, err
		}
		r.emit(s.Sig)
		return completion{kind: compTerminated}, nil

	case *kernel.Assign:
		if err := r.m.hooks.ExecAssign(s.LHS, s.RHS); err != nil {
			return completion{}, err
		}
		return completion{kind: compTerminated}, nil

	case *kernel.Eval:
		if err := r.m.hooks.ExecEval(s.X); err != nil {
			return completion{}, err
		}
		return completion{kind: compTerminated}, nil

	case *kernel.DataCall:
		if err := r.m.hooks.ExecData(s.F); err != nil {
			return completion{}, err
		}
		return completion{kind: compTerminated}, nil

	case *kernel.Seq:
		start := 0
		if mode == modeResume {
			ent := cur.get(s.ID())
			if ent == nil {
				return completion{kind: compTerminated}, nil
			}
			start = ent[0]
		}
		for i := start; i < len(s.List); i++ {
			childMode := modeStart
			if mode == modeResume && i == start {
				childMode = modeResume
			}
			kk := &cont{items: s.List[i+1:], next: k}
			comp, err := th.exec(s.List[i], childMode, kk)
			if err != nil {
				return completion{}, err
			}
			switch comp.kind {
			case compPaused:
				r.next.set(s.ID(), i)
				return comp, nil
			case compExited:
				return comp, nil
			}
		}
		return completion{kind: compTerminated}, nil

	case *kernel.Loop:
		limit := r.m.LoopLimit
		if limit == 0 {
			limit = defaultLoopLimit
		}
		childMode := mode
		for iter := 0; ; iter++ {
			if iter > limit {
				return completion{}, fmt.Errorf("instantaneous loop detected (node %d)", s.ID())
			}
			kk := &cont{items: []kernel.Stmt{s}, next: k}
			comp, err := th.exec(s.Body, childMode, kk)
			if err != nil {
				return completion{}, err
			}
			switch comp.kind {
			case compPaused, compExited:
				return comp, nil
			}
			childMode = modeStart // loop back
		}

	case *kernel.Par:
		statuses := make([]int, len(s.Branches))
		if mode == modeResume {
			ent := cur.get(s.ID())
			if ent == nil {
				return completion{kind: compTerminated}, nil
			}
			copy(statuses, ent)
		} else {
			for i := range statuses {
				statuses[i] = 1 // running
			}
		}
		// Spawn a thread per running branch.
		children := make([]*thread, len(s.Branches))
		for i, b := range s.Branches {
			if statuses[i] != 1 {
				continue
			}
			ct := r.newThread(th)
			ct.body = b
			ct.mode = mode
			ct.k = nil
			children[i] = ct
			ct.launch()
		}
		// Wait for all children: register our continuation for Can.
		joinCan := r.m.foldChain(k, nil)
		if joinCan == nil {
			joinCan = map[*kernel.Signal]bool{}
		}
		th.joinCan = joinCan
		anyChild := false
		for _, c := range children {
			if c != nil {
				anyChild = true
			}
		}
		if anyChild {
			th.state = thWaitJoin
			th.yieldToScheduler()
		}
		// Collect completions.
		var exitComp *completion
		anyPaused := false
		for i, c := range children {
			if c == nil {
				continue
			}
			if c.err != nil {
				return completion{}, c.err
			}
			switch c.comp.kind {
			case compTerminated:
				statuses[i] = 2
			case compPaused:
				anyPaused = true
			case compExited:
				// The outermost targeted trap (smallest preorder ID) wins.
				if exitComp == nil || c.comp.trap.ID() < exitComp.trap.ID() {
					cc := c.comp
					exitComp = &cc
				}
			}
		}
		if exitComp != nil {
			r.next.clearSubtree(s)
			return *exitComp, nil
		}
		if !anyPaused {
			r.next.clear(s.ID())
			return completion{kind: compTerminated}, nil
		}
		r.next.set(s.ID(), statuses...)
		return completion{kind: compPaused}, nil

	case *kernel.Present:
		if mode == modeResume {
			ent := cur.get(s.ID())
			if ent == nil {
				return completion{kind: compTerminated}, nil
			}
			arm := s.Then
			if ent[0] == 2 {
				arm = s.Else
			}
			comp, err := th.exec(arm, modeResume, k)
			if err != nil {
				return completion{}, err
			}
			if comp.kind == compPaused {
				r.next.set(s.ID(), ent[0])
			}
			return comp, nil
		}
		taken := th.testSig(s.Sig, r.m.canStart(s), k)
		arm, armIdx := s.Then, 1
		if !taken {
			arm, armIdx = s.Else, 2
		}
		if arm == nil {
			return completion{kind: compTerminated}, nil
		}
		comp, err := th.exec(arm, modeStart, k)
		if err != nil {
			return completion{}, err
		}
		if comp.kind == compPaused {
			r.next.set(s.ID(), armIdx)
		}
		return comp, nil

	case *kernel.IfData:
		if mode == modeResume {
			ent := cur.get(s.ID())
			if ent == nil {
				return completion{kind: compTerminated}, nil
			}
			arm := s.Then
			if ent[0] == 2 {
				arm = s.Else
			}
			comp, err := th.exec(arm, modeResume, k)
			if err != nil {
				return completion{}, err
			}
			if comp.kind == compPaused {
				r.next.set(s.ID(), ent[0])
			}
			return comp, nil
		}
		val, err := r.m.hooks.EvalCond(s.Cond)
		if err != nil {
			return completion{}, err
		}
		arm, armIdx := s.Then, 1
		if !val {
			arm, armIdx = s.Else, 2
		}
		if arm == nil {
			return completion{kind: compTerminated}, nil
		}
		comp, err := th.exec(arm, modeStart, k)
		if err != nil {
			return completion{}, err
		}
		if comp.kind == compPaused {
			r.next.set(s.ID(), armIdx)
		}
		return comp, nil

	case *kernel.Trap:
		comp, err := th.exec(s.Body, mode, k)
		if err != nil {
			return completion{}, err
		}
		if comp.kind == compExited && comp.trap == s {
			r.next.clearSubtree(s)
			return completion{kind: compTerminated}, nil
		}
		return comp, nil

	case *kernel.Exit:
		return completion{kind: compExited, trap: s.Target}, nil

	case *kernel.Abort:
		return th.execAbort(s, mode, k)

	case *kernel.Suspend:
		if mode == modeResume && cur.hasActiveWithin(s.Body) {
			if th.testSig(s.Sig, r.m.canResume(s), k) {
				// Frozen: carry the body's control state over unchanged.
				r.next.copySubtree(cur, s.Body)
				return completion{kind: compPaused}, nil
			}
			return th.exec(s.Body, modeResume, k)
		}
		return th.exec(s.Body, modeStart, k)

	case *kernel.Local:
		// A fresh scope each start; statuses are per-instant anyway.
		childMode := modeStart
		if mode == modeResume && cur.hasActiveWithin(s.Body) {
			childMode = modeResume
		}
		return th.exec(s.Body, childMode, k)
	}
	return completion{}, fmt.Errorf("internal: cannot execute %T", s)
}

func (th *thread) execAbort(s *kernel.Abort, mode runMode, k *cont) (completion, error) {
	r := th.r
	cur := r.m.state
	if mode == modeResume {
		ent := cur.get(s.ID())
		if ent == nil {
			return completion{kind: compTerminated}, nil
		}
		if ent[0] == 2 {
			// Resuming inside the handler.
			comp, err := th.exec(s.Handler, modeResume, k)
			if err != nil {
				return completion{}, err
			}
			if comp.kind == compPaused {
				r.next.set(s.ID(), 2)
			}
			return comp, nil
		}
		// Resuming inside the body: test the trigger first (delayed).
		trig := th.testSig(s.Sig, r.m.canResume(s), k)
		if trig && !s.Weak {
			// Strong abort: the body does not run this instant.
			return th.runHandler(s, k)
		}
		comp, err := th.exec(s.Body, modeResume, k)
		if err != nil {
			return completion{}, err
		}
		if trig && s.Weak {
			// Weak abort: the body ran its final instant. Normal
			// termination wins over the abort.
			switch comp.kind {
			case compTerminated, compExited:
				return comp, nil
			}
			r.next.clearSubtree(s.Body)
			return th.runHandler(s, k)
		}
		if comp.kind == compPaused {
			r.next.set(s.ID(), 1)
		}
		return comp, nil
	}
	// Start: no trigger test in the first instant.
	comp, err := th.exec(s.Body, modeStart, k)
	if err != nil {
		return completion{}, err
	}
	if comp.kind == compPaused {
		r.next.set(s.ID(), 1)
	}
	return comp, nil
}

func (th *thread) runHandler(s *kernel.Abort, k *cont) (completion, error) {
	if s.Handler == nil {
		return completion{kind: compTerminated}, nil
	}
	comp, err := th.exec(s.Handler, modeStart, k)
	if err != nil {
		return completion{}, err
	}
	if comp.kind == compPaused {
		th.r.next.set(s.ID(), 2)
	}
	return comp, nil
}

// DebugCan toggles quiescence-failure dumps (testing aid).
func DebugCan(on bool) { debugCan = on }
