package interp

import (
	"testing"

	"repro/internal/lower"
)

// Additional semantic edge cases: nested preemption, exits crossing
// parallels, loop re-entry of local signal scopes, and priorities
// between simultaneous aborts.

func TestNestedAbortOuterWins(t *testing.T) {
	src := `module m(input pure inner, input pure outer, input pure tick,
                     output pure beat, output pure ih, output pure oh) {
        do {
            do {
                while (1) { await(tick); emit(beat); }
            } abort (inner)
            handle { emit(ih); halt(); }
        } abort (outer)
        handle { emit(oh); halt(); }
        halt();
    }`
	m := build(t, src, "m", lower.MaximalReactive)
	react(t, m)
	// Both triggers at once: the outer abort preempts the inner one,
	// so only the outer handler runs.
	r := react(t, m, "inner", "outer")
	if hasOutput(r, "ih") {
		t.Error("inner handler ran although the outer abort kills it")
	}
	if !hasOutput(r, "oh") {
		t.Error("outer handler missing")
	}
}

func TestBreakOutOfParViaEnclosingLoop(t *testing.T) {
	// A break inside one par branch must not exist (sem catches break
	// crossing par); this checks the legal form: abort around par.
	src := `module m(input pure stop, input pure tick, output pure l, output pure r,
                     output pure after) {
        do {
            par {
                while (1) { await (tick); emit(l); }
                while (1) { await (tick); emit(r); }
            }
        } abort (stop);
        emit (after);
        halt();
    }`
	m := build(t, src, "m", lower.MaximalReactive)
	react(t, m)
	rr := react(t, m, "tick")
	if !hasOutput(rr, "l") || !hasOutput(rr, "r") {
		t.Fatal("both branches should beat")
	}
	rr = react(t, m, "stop")
	if !hasOutput(rr, "after") {
		t.Fatal("abort should kill the par and continue")
	}
	// Both branches must be dead now.
	rr = react(t, m, "tick")
	if hasOutput(rr, "l") || hasOutput(rr, "r") {
		t.Fatal("par survived the abort")
	}
}

func TestLocalSignalScopeReentry(t *testing.T) {
	// A local signal re-enters its scope fresh each loop iteration.
	src := `module m(input pure tick, output pure saw) {
        while (1) {
            await (tick);
            signal pure s;
            par {
                emit (s);
                present (s) emit (saw);
            }
        }
    }`
	m := build(t, src, "m", lower.MaximalReactive)
	react(t, m)
	for i := 0; i < 3; i++ {
		if r := react(t, m, "tick"); !hasOutput(r, "saw") {
			t.Fatalf("iteration %d: local broadcast failed", i)
		}
		if r := react(t, m); hasOutput(r, "saw") {
			t.Fatalf("iteration %d: saw without tick", i)
		}
	}
}

func TestSuspendDefersAbortCheck(t *testing.T) {
	// While suspended, the inner abort's trigger is not even checked
	// (the whole body is frozen).
	src := `module m(input pure hold, input pure kill, input pure tick,
                     output pure beat, output pure dead) {
        do {
            do {
                while (1) { await (tick); emit (beat); }
            } abort (kill)
            handle { emit (dead); halt(); }
        } suspend (hold);
    }`
	m := build(t, src, "m", lower.MaximalReactive)
	react(t, m)
	react(t, m, "tick")
	// kill arrives while suspended: nothing happens.
	r := react(t, m, "kill", "hold")
	if hasOutput(r, "dead") {
		t.Fatal("suspended body reacted to kill")
	}
	// After release, kill is gone (signals are not latched): body lives.
	r = react(t, m, "tick")
	if !hasOutput(r, "beat") {
		t.Fatal("body did not resume")
	}
}

func TestParTerminationCodesAcrossInstants(t *testing.T) {
	// One branch terminates immediately, the other after two ticks; the
	// par joins at the later one.
	src := `module m(input pure tick, output pure joined) {
        while (1) {
            await (tick);
            par {
                emit (joined);
                { await (tick); await (tick); }
            }
            emit (joined);
        }
    }`
	m := build(t, src, "m", lower.MaximalReactive)
	react(t, m)
	r := react(t, m, "tick")
	if !hasOutput(r, "joined") {
		t.Fatal("first branch emission missing")
	}
	react(t, m, "tick")
	r = react(t, m, "tick")
	if !hasOutput(r, "joined") {
		t.Fatal("join emission missing after second tick")
	}
}

func TestValuedSignalStructThroughModules(t *testing.T) {
	// A struct value crosses a module boundary via inlining.
	src := `typedef unsigned char byte;
    typedef struct { byte a; byte b; } pair_t;
    module producer(input pure tick, output pair_t out) {
        pair_t p;
        while (1) {
            await (tick);
            p.a = 3; p.b = 4;
            emit_v (out, p);
        }
    }
    module consumer(input pair_t in, output byte sum) {
        while (1) {
            await (in);
            emit_v (sum, in.a + in.b);
        }
    }
    module top(input pure tick, output byte sum) {
        signal pair_t wire;
        par {
            producer (tick, wire);
            consumer (wire, sum);
        }
    }`
	m := build(t, src, "top", lower.MaximalReactive)
	react(t, m)
	r := react(t, m, "tick")
	found := false
	for s, v := range r.Outputs {
		if s.Name == "sum" {
			found = true
			if v.Int() != 7 {
				t.Errorf("sum = %d, want 7", v.Int())
			}
		}
	}
	if !found {
		t.Fatal("sum missing")
	}
}

func TestWeakAbortBodyTerminationWins(t *testing.T) {
	// If the body terminates in the same instant the trigger fires,
	// termination wins (no handler).
	src := `module m(input pure go, input pure stop, output pure done, output pure h) {
        await (go);
        do {
            await (stop);
            emit (done);
        } weak_abort (stop)
        handle { emit (h); }
        halt();
    }`
	m := build(t, src, "m", lower.MaximalReactive)
	react(t, m)
	react(t, m, "go")
	r := react(t, m, "stop")
	if !hasOutput(r, "done") {
		t.Fatal("body's final instant missing")
	}
	if hasOutput(r, "h") {
		t.Fatal("handler ran although the body terminated normally")
	}
}
