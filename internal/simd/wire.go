// Package simd is the multi-tenant execution daemon behind the
// eclsimd binary, and the client eclsim -connect drives it with: many
// concurrently stepping exec.Session machines served over HTTP, with
// the canonical trace Event encoding as the wire format — a daemon
// conversation transcribed as JSONL is literally a replayable trace.
//
// The protocol (all JSON unless noted):
//
//	POST   /v1/machines            open (OpenRequest -> MachineInfo)
//	GET    /v1/machines            list machine ids
//	GET    /v1/machines/{id}       MachineInfo (evicted sessions included)
//	DELETE /v1/machines/{id}       close
//	POST   /v1/machines/{id}/step  batched stepping: JSONL trace events
//	                               in (inputs read), JSONL events out
//	POST   /v1/machines/{id}/fork  fork (ForkRequest -> child MachineInfo)
//	POST   /v1/machines/{id}/reset rewind to boot state
//	GET    /healthz                liveness
//	GET    /statsz                 Stats counters
//
// Batched stepping is the centerpiece: at scale the round trip, not
// the step, dominates, so a client POSTs N input instants (one Event
// per line, only the "in" field read) and receives the N executed
// instants back in one exchange. A step or decode error mid-batch
// terminates the response with a single {"error": ...} line after the
// events that did execute.
//
// Sessions idle past the daemon's TTL (or squeezed out by the
// max-sessions bound) are evicted: serialized as exec.SnapshotBlob
// entries in the content-addressed store and transparently revived —
// recompile through the tiered cache, restore, continue — on next
// touch.
package simd

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/exec"
)

// OpenRequest asks the daemon to compile a design and open a machine
// over it.
type OpenRequest struct {
	// ID requests a specific machine id ("" lets the daemon allocate).
	ID string `json:"id,omitempty"`
	// Path names a daemon-local source file; Source carries inline ECL
	// text (at least one must be set — Source wins, with Path as its
	// display name).
	Path   string `json:"path,omitempty"`
	Source string `json:"source,omitempty"`
	// Module selects the module (default: last in the file).
	Module string `json:"module,omitempty"`
	// Backend names the execution backend (default: the daemon's).
	Backend string `json:"backend,omitempty"`
}

// SignalInfo describes one interface signal, with enough type shape
// (byte size) for a client to encode script values without compiling
// the design locally.
type SignalInfo struct {
	Name string `json:"name"`
	Pure bool   `json:"pure,omitempty"`
	// Type is the C type's display name ("" for pure signals).
	Type string `json:"type,omitempty"`
	// Size is the value width in bytes (0 for pure signals).
	Size int `json:"size,omitempty"`
}

// MachineInfo describes one daemon machine.
type MachineInfo struct {
	ID         string `json:"id"`
	Module     string `json:"module"`
	Backend    string `json:"backend"`
	Instant    int    `json:"instant"`
	Terminated bool   `json:"terminated,omitempty"`
	// Evicted marks a session currently persisted as a snapshot blob;
	// it revives transparently on the next step/fork/reset.
	Evicted bool         `json:"evicted,omitempty"`
	Inputs  []SignalInfo `json:"inputs,omitempty"`
	Outputs []SignalInfo `json:"outputs,omitempty"`
}

// ForkRequest asks for a fork of an existing machine.
type ForkRequest struct {
	// ID requests a specific id for the child ("" allocates one).
	ID string `json:"id,omitempty"`
}

// Stats is the /statsz payload, mirroring eclcached's counters: how
// the fleet is using this daemon.
type Stats struct {
	// Resident counts machines currently live in memory; Evicted the
	// sessions parked as snapshot blobs.
	Resident int `json:"resident"`
	Evicted  int `json:"evicted"`

	Opens  int64 `json:"opens"`
	Closes int64 `json:"closes"`
	Forks  int64 `json:"forks"`
	Resets int64 `json:"resets"`
	// Steps counts executed instants, Batches step requests — their
	// ratio is the batching factor the fleet actually achieves.
	Steps   int64 `json:"steps"`
	Batches int64 `json:"batches"`

	Evictions int64 `json:"evictions"`
	Revivals  int64 `json:"revivals"`
	Errors    int64 `json:"errors"`
}

// wireEvent is one JSONL line of a step exchange: a canonical trace
// event, or (as the final line of a failed batch) an error report.
type wireEvent struct {
	exec.Event
	Error string `json:"error,omitempty"`
}

// signalInfos converts exec signal descriptors to their wire form.
func signalInfos(sigs []exec.Signal) []SignalInfo {
	out := make([]SignalInfo, 0, len(sigs))
	for _, s := range sigs {
		info := SignalInfo{Name: s.Name, Pure: s.Pure}
		if s.Type != nil {
			info.Type = s.Type.String()
			info.Size = s.Type.Size()
		}
		out = append(out, info)
	}
	return out
}

// ParseScriptInstant parses one eclsim script line (present inputs,
// values as name=int, '#' comments) into a wire input map against a
// machine's signal descriptors, encoding values in the canonical trace
// encoding — the client-side twin of exec.ParseScriptLine for machines
// that live on a daemon.
func ParseScriptInstant(inputs []SignalInfo, line string) (map[string]string, error) {
	if idx := strings.IndexByte(line, '#'); idx >= 0 {
		line = line[:idx]
	}
	byName := make(map[string]SignalInfo, len(inputs))
	names := make([]string, 0, len(inputs))
	for _, s := range inputs {
		byName[s.Name] = s
		names = append(names, s.Name)
	}
	in := map[string]string{}
	for _, tok := range strings.Fields(line) {
		name, valText, hasVal := strings.Cut(tok, "=")
		sig, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown input %q (module inputs: %s)", name, strings.Join(names, ", "))
		}
		if !hasVal {
			in[name] = ""
			continue
		}
		if sig.Pure {
			return nil, fmt.Errorf("input %s is pure and carries no value", name)
		}
		x, err := strconv.ParseInt(valText, 0, 64)
		if err != nil {
			return nil, fmt.Errorf("bad value %q for input %s", valText, name)
		}
		in[name] = EncodeIntValue(sig.Size, x)
	}
	return in, nil
}

// EncodeIntValue renders an integer in the canonical trace value
// encoding for a signal of the given byte size: "0x…" big-endian
// two's-complement, exactly what cval.FromInt stores.
func EncodeIntValue(size int, x int64) string {
	b := make([]byte, size)
	u := uint64(x)
	for i := size - 1; i >= 0; i-- {
		b[i] = byte(u)
		u >>= 8
	}
	const hexdigits = "0123456789abcdef"
	out := make([]byte, 2, 2+2*size)
	out[0], out[1] = '0', 'x'
	for _, c := range b {
		out = append(out, hexdigits[c>>4], hexdigits[c&0xf])
	}
	return string(out)
}
