package simd

import (
	"bytes"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/driver"
	"repro/internal/exec"
	"repro/internal/paperex"
)

// testDaemon assembles a daemon over a temp store and serves it from
// an httptest server, returning a dialed client and the daemon itself.
func testDaemon(t *testing.T, mutate func(*Config)) (*Client, *Daemon) {
	t.Helper()
	store, err := cache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	d := driver.New(2)
	d.Disk = store
	cfg := Config{Driver: d, Store: store, Logf: t.Logf}
	if mutate != nil {
		mutate(&cfg)
	}
	daemon, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(daemon.Close)
	srv := httptest.NewServer(daemon)
	t.Cleanup(srv.Close)
	c, err := Dial(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	return c, daemon
}

func TestDaemonOpenStepClose(t *testing.T) {
	c, _ := testDaemon(t, nil)
	info, err := c.Open(OpenRequest{Path: "abro.ecl", Source: paperex.ABRO})
	if err != nil {
		t.Fatal(err)
	}
	if info.Module != "abro" || info.Backend != "efsm" || info.Instant != 0 {
		t.Fatalf("open info = %+v", info)
	}
	if len(info.Inputs) != 3 || !info.Inputs[0].Pure {
		t.Fatalf("inputs = %+v", info.Inputs)
	}

	events, err := c.StepEvents(info.ID, []map[string]string{
		nil, {"A": ""}, {"B": ""},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 {
		t.Fatalf("%d events, want 3", len(events))
	}
	if _, ok := events[2].Outputs["O"]; !ok {
		t.Fatalf("AB did not emit O: %v", events[2].Outputs)
	}
	if events[2].Instant != 2 {
		t.Fatalf("instants numbered %d", events[2].Instant)
	}

	ids, err := c.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || ids[0] != info.ID {
		t.Fatalf("list = %v", ids)
	}
	if err := c.Reset(info.ID); err != nil {
		t.Fatal(err)
	}
	after, err := c.Info(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if after.Instant != 0 {
		t.Fatalf("reset left instant %d", after.Instant)
	}
	if err := c.Close(info.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Info(info.ID); err == nil || !strings.Contains(err.Error(), "no machine") {
		t.Fatalf("closed machine still visible: %v", err)
	}

	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Opens != 1 || st.Closes != 1 || st.Steps != 3 || st.Batches != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if !c.Healthy() {
		t.Fatal("daemon not healthy")
	}
}

// TestDaemonErrors maps protocol failures onto statuses: unknown
// machines are 404, bad designs and bad batches 400, duplicate ids 409.
func TestDaemonErrors(t *testing.T) {
	c, _ := testDaemon(t, nil)
	if _, err := c.Info("nope"); err == nil || !strings.Contains(err.Error(), "no machine") {
		t.Fatalf("info on unknown machine: %v", err)
	}
	if _, err := c.StepEvents("nope", nil); err == nil || !strings.Contains(err.Error(), "no machine") {
		t.Fatalf("step on unknown machine: %v", err)
	}
	if _, err := c.Open(OpenRequest{Source: "module broken ( {"}); err == nil {
		t.Fatal("bad source compiled")
	}
	if _, err := c.Open(OpenRequest{}); err == nil {
		t.Fatal("empty open succeeded")
	}
	info, err := c.Open(OpenRequest{ID: "dup", Source: paperex.ABRO})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Open(OpenRequest{ID: "dup", Source: paperex.ABRO}); err == nil {
		t.Fatal("duplicate id succeeded")
	}
	// A bad input mid-batch keeps the events that executed and reports
	// the error as the final JSONL line.
	events, err := c.StepEvents(info.ID, []map[string]string{
		{"A": ""}, {"bogus": ""},
	})
	if err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Fatalf("bad batch error: %v", err)
	}
	if len(events) != 1 {
		t.Fatalf("partial batch kept %d events", len(events))
	}
}

// TestDaemonConversationIsReplayableTrace is the acceptance check: the
// events a daemon conversation produces, written verbatim as a JSONL
// trace, replay clean through exec.Replay on the oracle interpreter.
func TestDaemonConversationIsReplayableTrace(t *testing.T) {
	c, _ := testDaemon(t, nil)
	info, err := c.Open(OpenRequest{Path: "stack.ecl", Source: paperex.Stack, Module: "toplevel"})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	var inputs []map[string]string
	for i := 0; i < 100; i++ {
		in := map[string]string{}
		if rng.Intn(4) != 0 {
			in["in_byte"] = EncodeIntValue(1, int64(rng.Intn(256)))
		}
		if rng.Intn(20) == 0 {
			in["reset"] = ""
		}
		inputs = append(inputs, in)
	}
	events, err := c.StepAll(info.ID, inputs, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 100 {
		t.Fatalf("%d events", len(events))
	}

	// Transcribe the conversation as a trace file and replay it on a
	// locally built interp machine.
	trace := &exec.Trace{Version: exec.TraceVersion, Module: info.Module, Backend: info.Backend, Events: events}
	var buf bytes.Buffer
	if err := trace.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	recorded, err := exec.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	res := driver.New(1).BuildOne(driver.Request{Path: "stack.ecl", Source: paperex.Stack, Module: "toplevel"})
	if res.Failed() {
		t.Fatal(res.Err)
	}
	m, err := exec.Open("interp", res.Design)
	if err != nil {
		t.Fatal(err)
	}
	got, err := exec.Replay(m, recorded)
	if err != nil {
		t.Fatal(err)
	}
	if err := exec.Diff(recorded, got); err != nil {
		t.Fatalf("daemon conversation does not replay on interp: %v", err)
	}
}

// TestDaemonEvictRevive parks an idle session as a snapshot blob and
// checks the revived continuation is byte-identical with a twin that
// never left memory — including a forked child evicted while its
// parent keeps getting touched.
func TestDaemonEvictRevive(t *testing.T) {
	c, daemon := testDaemon(t, func(cfg *Config) {
		cfg.IdleTTL = 30 * time.Minute // TTL loop effectively off; evict explicitly
	})
	open := func(id string) MachineInfo {
		info, err := c.Open(OpenRequest{ID: id, Path: "stack.ecl", Source: paperex.Stack, Module: "toplevel"})
		if err != nil {
			t.Fatal(err)
		}
		return info
	}
	victim := open("victim")
	twin := open("twin")
	rng := rand.New(rand.NewSource(9))
	instants := func(n int) []map[string]string {
		out := make([]map[string]string, n)
		for i := range out {
			in := map[string]string{}
			if rng.Intn(3) != 0 {
				in["in_byte"] = EncodeIntValue(1, int64(rng.Intn(256)))
			}
			out[i] = in
		}
		return out
	}
	warm := instants(13)
	if _, err := c.StepEvents(victim.ID, warm); err != nil {
		t.Fatal(err)
	}
	if _, err := c.StepEvents(twin.ID, warm); err != nil {
		t.Fatal(err)
	}
	// Fork a child off the victim, then evict both while the parent's
	// twin keeps stepping.
	child, err := c.Fork(victim.ID, ForkRequest{ID: "child"})
	if err != nil {
		t.Fatal(err)
	}
	if child.Instant != 13 {
		t.Fatalf("child instant %d", child.Instant)
	}

	// Force eviction of everything resident, as a TTL sweep would.
	if n := daemon.evictIdle(0); n != 3 {
		t.Fatalf("evicted %d sessions, want 3", n)
	}
	info, err := c.Info(child.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Evicted || info.Instant != 13 {
		t.Fatalf("evicted child info = %+v", info)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Resident != 0 || st.Evicted != 3 || st.Evictions != 3 {
		t.Fatalf("stats after eviction = %+v", st)
	}

	// Touching the sessions revives them transparently; child and twin
	// must continue byte-identically.
	tail := instants(40)
	got, err := c.StepEvents(child.ID, tail)
	if err != nil {
		t.Fatal(err)
	}
	want, err := c.StepEvents(twin.ID, tail)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("revived child ran %d instants, twin %d", len(got), len(want))
	}
	for i := range want {
		if exec.ObservationString(got[i].Outputs, got[i].Terminated) !=
			exec.ObservationString(want[i].Outputs, want[i].Terminated) {
			t.Fatalf("instant %d: revived child %v, twin %v", want[i].Instant, got[i].Outputs, want[i].Outputs)
		}
	}
	st, err = c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Revivals != 2 || st.Evicted != 1 {
		t.Fatalf("stats after revival = %+v", st)
	}
	// The still-parked victim is also intact and addressable.
	if _, err := c.StepEvents(victim.ID, instants(5)); err != nil {
		t.Fatal(err)
	}
	if st, err = c.Stats(); err != nil || st.Revivals != 3 || st.Evicted != 0 {
		t.Fatalf("stats after full revival = %+v (%v)", st, err)
	}
}

// TestDaemonEvictReviveTable parks an efsm-table session as a snapshot
// blob and revives it: the table backend's slot-indexed machine must
// round-trip through the daemon's eviction path and continue
// byte-identically with an interpreter-family twin that never left
// memory (cross-backend conformance through a park/revive cycle).
func TestDaemonEvictReviveTable(t *testing.T) {
	c, daemon := testDaemon(t, func(cfg *Config) {
		cfg.IdleTTL = 30 * time.Minute
	})
	victim, err := c.Open(OpenRequest{
		ID: "victim", Path: "stack.ecl", Source: paperex.Stack,
		Module: "toplevel", Backend: "efsm-table",
	})
	if err != nil {
		t.Fatal(err)
	}
	if victim.Backend != "efsm-table" {
		t.Fatalf("backend = %q, want efsm-table", victim.Backend)
	}
	twin, err := c.Open(OpenRequest{
		ID: "twin", Path: "stack.ecl", Source: paperex.Stack,
		Module: "toplevel", Backend: "efsm",
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	instants := func(n int) []map[string]string {
		out := make([]map[string]string, n)
		for i := range out {
			in := map[string]string{}
			if rng.Intn(3) != 0 {
				in["in_byte"] = EncodeIntValue(1, int64(rng.Intn(256)))
			}
			out[i] = in
		}
		return out
	}
	warm := instants(17)
	if _, err := c.StepEvents(victim.ID, warm); err != nil {
		t.Fatal(err)
	}
	if _, err := c.StepEvents(twin.ID, warm); err != nil {
		t.Fatal(err)
	}
	// Park the table session; keep the interpreter twin resident.
	daemon.mu.Lock()
	rec := daemon.recs[victim.ID]
	daemon.mu.Unlock()
	if rec == nil || !daemon.evict(rec) {
		t.Fatal("victim not evicted")
	}
	info, err := c.Info(victim.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Evicted || info.Instant != 17 || info.Backend != "efsm-table" {
		t.Fatalf("evicted info = %+v", info)
	}
	// Stepping revives it; the continuation must match the twin.
	tail := instants(40)
	got, err := c.StepEvents(victim.ID, tail)
	if err != nil {
		t.Fatal(err)
	}
	want, err := c.StepEvents(twin.ID, tail)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("revived session ran %d instants, twin %d", len(got), len(want))
	}
	for i := range want {
		if exec.ObservationString(got[i].Outputs, got[i].Terminated) !=
			exec.ObservationString(want[i].Outputs, want[i].Terminated) {
			t.Fatalf("instant %d: revived table session %v, efsm twin %v",
				want[i].Instant, got[i].Outputs, want[i].Outputs)
		}
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Revivals != 1 || st.Evicted != 0 {
		t.Fatalf("stats after revival = %+v", st)
	}
}

// TestDaemonMaxSessionsLRU opens past the resident bound and checks the
// least recently touched session is evicted to make room, not refused.
func TestDaemonMaxSessionsLRU(t *testing.T) {
	c, daemon := testDaemon(t, func(cfg *Config) {
		cfg.MaxSessions = 3
	})
	for i := 0; i < 3; i++ {
		if _, err := c.Open(OpenRequest{ID: fmt.Sprintf("s%d", i), Path: "abro.ecl", Source: paperex.ABRO}); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond) // distinct lastTouch order
	}
	// Touch s0 so s1 becomes the LRU victim.
	if _, err := c.StepEvents("s0", []map[string]string{nil}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Open(OpenRequest{ID: "s3", Path: "abro.ecl", Source: paperex.ABRO}); err != nil {
		t.Fatal(err)
	}
	if daemon.session.Len() != 3 {
		t.Fatalf("%d resident, want 3", daemon.session.Len())
	}
	info, err := c.Info("s1")
	if err != nil {
		t.Fatal(err)
	}
	if !info.Evicted {
		t.Fatalf("s1 not the evicted one: %+v", info)
	}
	// The evicted session is still fully usable.
	if _, err := c.StepEvents("s1", []map[string]string{{"A": ""}}); err != nil {
		t.Fatal(err)
	}
}

// TestDaemonConcurrentSessions hammers many machines from concurrent
// clients (run under -race).
func TestDaemonConcurrentSessions(t *testing.T) {
	c, _ := testDaemon(t, nil)
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			info, err := c.Open(OpenRequest{Path: "abro.ecl", Source: paperex.ABRO})
			if err != nil {
				errs <- err
				return
			}
			rng := rand.New(rand.NewSource(int64(w)))
			for batch := 0; batch < 5; batch++ {
				inputs := make([]map[string]string, 8)
				for i := range inputs {
					in := map[string]string{}
					for _, name := range []string{"A", "B", "R"} {
						if rng.Intn(2) == 1 {
							in[name] = ""
						}
					}
					inputs[i] = in
				}
				if _, err := c.StepEvents(info.ID, inputs); err != nil {
					errs <- err
					return
				}
			}
			if err := c.Close(info.ID); err != nil {
				errs <- err
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Steps != 16*5*8 || st.Resident != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestDaemonHealthz checks the liveness endpoint's exact contract.
func TestDaemonHealthz(t *testing.T) {
	_, daemon := testDaemon(t, nil)
	srv := httptest.NewServer(daemon)
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
}

// TestParseScriptInstant covers the client-side script parser against
// signal descriptors.
func TestParseScriptInstant(t *testing.T) {
	inputs := []SignalInfo{
		{Name: "go", Pure: true},
		{Name: "x", Type: "int", Size: 4},
	}
	in, err := ParseScriptInstant(inputs, "go x=-2 # trailing comment")
	if err != nil {
		t.Fatal(err)
	}
	if in["go"] != "" || in["x"] != "0xfffffffe" {
		t.Fatalf("parsed %v", in)
	}
	if _, err := ParseScriptInstant(inputs, "nope"); err == nil || !strings.Contains(err.Error(), "go, x") {
		t.Fatalf("unknown input error: %v", err)
	}
	if _, err := ParseScriptInstant(inputs, "go=1"); err == nil {
		t.Fatal("value on pure signal accepted")
	}
	if _, err := ParseScriptInstant(inputs, "x=zz"); err == nil {
		t.Fatal("bad value accepted")
	}
	if in, err := ParseScriptInstant(inputs, "  # just a comment"); err != nil || len(in) != 0 {
		t.Fatalf("comment line: %v %v", in, err)
	}
}
