package simd

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"repro/internal/exec"
)

// Client drives a daemon over HTTP — the library behind
// eclsim -connect.
type Client struct {
	base string
	http *http.Client
}

// Dial validates a daemon URL ("http://host:port") and returns a
// client for it. Like the remote cache's Dial it does not probe the
// daemon; use Healthy for that.
func Dial(rawURL string) (*Client, error) {
	return DialWith(rawURL, &http.Client{Timeout: 5 * time.Minute})
}

// DialWith is Dial with a caller-supplied HTTP client (custom
// timeouts, transports, test doubles).
func DialWith(rawURL string, hc *http.Client) (*Client, error) {
	u, err := url.Parse(rawURL)
	if err != nil {
		return nil, fmt.Errorf("simd: bad daemon URL %q: %v", rawURL, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, fmt.Errorf("simd: daemon URL %q must be http or https", rawURL)
	}
	if u.Host == "" {
		return nil, fmt.Errorf("simd: daemon URL %q has no host", rawURL)
	}
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(u.String(), "/"), http: hc}, nil
}

// Healthy reports whether the daemon answers its liveness probe.
func (c *Client) Healthy() bool {
	resp, err := c.http.Get(c.base + "/healthz")
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// do runs one JSON exchange: encode in (nil for an empty body), decode
// a 2xx response into out (unless nil), turn anything else into an
// error carrying the server's message.
func (c *Client) do(method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("simd: encode request: %v", err)
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, c.base+path, body)
	if err != nil {
		return fmt.Errorf("simd: %v", err)
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("simd: %s %s: %v", method, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return errorFromResponse(method, path, resp)
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("simd: %s %s: decode response: %v", method, path, err)
	}
	return nil
}

// errorFromResponse folds a non-2xx response body into an error.
func errorFromResponse(method, path string, resp *http.Response) error {
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 16<<10))
	text := strings.TrimSpace(string(msg))
	if text == "" {
		text = resp.Status
	}
	return fmt.Errorf("simd: %s %s: %s", method, path, text)
}

// Open compiles a design on the daemon and opens a machine over it.
func (c *Client) Open(req OpenRequest) (MachineInfo, error) {
	var info MachineInfo
	err := c.do(http.MethodPost, "/v1/machines", req, &info)
	return info, err
}

// Info describes one machine (evicted sessions included).
func (c *Client) Info(id string) (MachineInfo, error) {
	var info MachineInfo
	err := c.do(http.MethodGet, "/v1/machines/"+url.PathEscape(id), nil, &info)
	return info, err
}

// List returns the daemon's machine ids, sorted.
func (c *Client) List() ([]string, error) {
	var ids []string
	err := c.do(http.MethodGet, "/v1/machines", nil, &ids)
	return ids, err
}

// Fork asks for an independent copy of a machine.
func (c *Client) Fork(src string, req ForkRequest) (MachineInfo, error) {
	var info MachineInfo
	err := c.do(http.MethodPost, "/v1/machines/"+url.PathEscape(src)+"/fork", req, &info)
	return info, err
}

// Reset rewinds a machine to its boot state.
func (c *Client) Reset(id string) error {
	return c.do(http.MethodPost, "/v1/machines/"+url.PathEscape(id)+"/reset", struct{}{}, nil)
}

// Close removes a machine from the daemon.
func (c *Client) Close(id string) error {
	return c.do(http.MethodDelete, "/v1/machines/"+url.PathEscape(id), nil, nil)
}

// Stats fetches the daemon's counters.
func (c *Client) Stats() (Stats, error) {
	var st Stats
	err := c.do(http.MethodGet, "/statsz", nil, &st)
	return st, err
}

// StepEvents runs one batched step exchange: the input instants (trace
// input maps) go up as JSONL, the executed instants come back as
// canonical trace events. On a mid-batch failure the events that did
// execute are returned alongside the error — exactly the semantics of
// exec.Session.StepEvents, stretched over HTTP.
func (c *Client) StepEvents(id string, inputs []map[string]string) ([]exec.Event, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, in := range inputs {
		if err := enc.Encode(exec.Event{Inputs: in}); err != nil {
			return nil, fmt.Errorf("simd: encode batch: %v", err)
		}
	}
	path := "/v1/machines/" + url.PathEscape(id) + "/step"
	req, err := http.NewRequest(http.MethodPost, c.base+path, &buf)
	if err != nil {
		return nil, fmt.Errorf("simd: %v", err)
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, fmt.Errorf("simd: step %s: %v", id, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return nil, errorFromResponse(http.MethodPost, path, resp)
	}
	var events []exec.Event
	br := bufio.NewReader(resp.Body)
	for {
		line, readErr := br.ReadString('\n')
		if readErr != nil && readErr != io.EOF {
			return events, fmt.Errorf("simd: step %s: read response: %v", id, readErr)
		}
		if s := strings.TrimSpace(line); s != "" {
			var ev wireEvent
			if err := json.Unmarshal([]byte(s), &ev); err != nil {
				return events, fmt.Errorf("simd: step %s: bad response line: %v", id, err)
			}
			if ev.Error != "" {
				return events, fmt.Errorf("simd: step %s: %s", id, ev.Error)
			}
			events = append(events, ev.Event)
		}
		if readErr == io.EOF {
			return events, nil
		}
	}
}

// StepAll steps a machine through all input instants in batches of
// batchSize (<=0 means one batch for everything), collecting the
// executed events. Stepping ends early when the machine terminates.
func (c *Client) StepAll(id string, inputs []map[string]string, batchSize int) ([]exec.Event, error) {
	if batchSize <= 0 {
		batchSize = len(inputs)
	}
	var all []exec.Event
	for start := 0; start < len(inputs); start += batchSize {
		end := start + batchSize
		if end > len(inputs) {
			end = len(inputs)
		}
		events, err := c.StepEvents(id, inputs[start:end])
		all = append(all, events...)
		if err != nil {
			return all, err
		}
		if len(events) > 0 && events[len(events)-1].Terminated {
			break
		}
	}
	return all, nil
}
