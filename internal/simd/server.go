package simd

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/driver"
	"repro/internal/exec"
	"repro/internal/httpjson"
)

// DefaultMaxSessions bounds resident machines when Config.MaxSessions
// is zero.
const DefaultMaxSessions = 1024

// maxBodyBytes bounds one request body (an open request's inline
// source, or one batch of input events).
const maxBodyBytes = 64 << 20

// Config assembles a Daemon.
type Config struct {
	// Driver compiles designs (through its tiered cache) for opens and
	// revivals. Required.
	Driver *driver.Driver
	// Store persists evicted sessions as snapshot blobs. Without it
	// eviction is disabled: idle sessions stay resident and the
	// max-sessions bound refuses new opens instead of evicting.
	Store *cache.Store
	// Backend is the default execution backend for opens ("efsm" when
	// empty).
	Backend string
	// MaxSessions bounds resident machines (0 means
	// DefaultMaxSessions); opening past the bound evicts the least
	// recently touched session first.
	MaxSessions int
	// IdleTTL evicts sessions untouched for this long (0 disables
	// TTL eviction).
	IdleTTL time.Duration
	// Logf receives operational messages (nil discards them).
	Logf func(format string, args ...any)
}

// Daemon serves many concurrently stepping execution sessions over
// HTTP — the execution-side counterpart of eclcached. It implements
// http.Handler; Close stops its background eviction loop.
type Daemon struct {
	cfg     Config
	session *exec.Session
	mux     *http.ServeMux

	stopOnce sync.Once
	stop     chan struct{}

	mu   sync.Mutex
	recs map[string]*record

	opens, closes, forks, resets  atomic.Int64
	steps, batches                atomic.Int64
	evictions, revivals, errCount atomic.Int64
}

// record is the daemon's per-session bookkeeping: how to recompile the
// design (for revival), when the session was last touched, and where
// its snapshot lives while evicted.
type record struct {
	id      string
	backend string
	req     driver.Request // recompile recipe for revival

	// reviveMu serializes this session's evict/revive transitions.
	reviveMu sync.Mutex

	// Guarded by Daemon.mu:
	lastTouch time.Time
	evicted   bool
	snapKey   string // cache key of the snapshot blob while evicted
	instant   int    // instant count at eviction (for Info)
	module    string
	done      bool // terminated flag at eviction
}

// New assembles a daemon over the config. The caller serves it with
// http.Serve and should Close it on shutdown.
func New(cfg Config) (*Daemon, error) {
	if cfg.Driver == nil {
		return nil, errors.New("simd: config needs a Driver")
	}
	if cfg.Backend == "" {
		cfg.Backend = "efsm"
	}
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = DefaultMaxSessions
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	d := &Daemon{
		cfg:     cfg,
		session: exec.NewSession(),
		mux:     http.NewServeMux(),
		stop:    make(chan struct{}),
		recs:    make(map[string]*record),
	}
	d.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok\n")
	})
	d.mux.HandleFunc("GET /statsz", d.statsz)
	d.mux.HandleFunc("POST /v1/machines", d.open)
	d.mux.HandleFunc("GET /v1/machines", d.list)
	d.mux.HandleFunc("GET /v1/machines/{id}", d.info)
	d.mux.HandleFunc("DELETE /v1/machines/{id}", d.close)
	d.mux.HandleFunc("POST /v1/machines/{id}/step", d.step)
	d.mux.HandleFunc("POST /v1/machines/{id}/fork", d.fork)
	d.mux.HandleFunc("POST /v1/machines/{id}/reset", d.reset)
	if cfg.IdleTTL > 0 && cfg.Store != nil {
		go d.ttlLoop()
	}
	return d, nil
}

// ServeHTTP implements http.Handler.
func (d *Daemon) ServeHTTP(w http.ResponseWriter, r *http.Request) { d.mux.ServeHTTP(w, r) }

// Close stops the background eviction loop. In-flight requests finish
// normally.
func (d *Daemon) Close() { d.stopOnce.Do(func() { close(d.stop) }) }

// Stats snapshots the daemon's counters.
func (d *Daemon) Stats() Stats {
	d.mu.Lock()
	evicted := 0
	for _, rec := range d.recs {
		if rec.evicted {
			evicted++
		}
	}
	d.mu.Unlock()
	return Stats{
		Resident:  d.session.Len(),
		Evicted:   evicted,
		Opens:     d.opens.Load(),
		Closes:    d.closes.Load(),
		Forks:     d.forks.Load(),
		Resets:    d.resets.Load(),
		Steps:     d.steps.Load(),
		Batches:   d.batches.Load(),
		Evictions: d.evictions.Load(),
		Revivals:  d.revivals.Load(),
		Errors:    d.errCount.Load(),
	}
}

// ttlLoop periodically evicts sessions idle past the TTL.
func (d *Daemon) ttlLoop() {
	interval := d.cfg.IdleTTL / 4
	if interval < 50*time.Millisecond {
		interval = 50 * time.Millisecond
	}
	if interval > time.Minute {
		interval = time.Minute
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-d.stop:
			return
		case <-t.C:
			d.EvictIdle()
		}
	}
}

// EvictIdle evicts every resident session untouched for at least the
// configured IdleTTL, returning how many were evicted. (The TTL loop
// calls it; tests may too.)
func (d *Daemon) EvictIdle() int {
	if d.cfg.IdleTTL <= 0 {
		return 0
	}
	return d.evictIdle(d.cfg.IdleTTL)
}

// evictIdle evicts residents untouched for at least ttl (0 evicts
// every resident).
func (d *Daemon) evictIdle(ttl time.Duration) int {
	if d.cfg.Store == nil {
		return 0
	}
	cutoff := time.Now().Add(-ttl)
	d.mu.Lock()
	var victims []*record
	for _, rec := range d.recs {
		if !rec.evicted && rec.lastTouch.Before(cutoff) {
			victims = append(victims, rec)
		}
	}
	d.mu.Unlock()
	n := 0
	for _, rec := range victims {
		if d.evict(rec) {
			n++
		}
	}
	return n
}

// evict serializes one resident session into the store and closes it.
// It returns false when the session cannot be evicted (already gone,
// or a backend without portable snapshots).
func (d *Daemon) evict(rec *record) bool {
	rec.reviveMu.Lock()
	defer rec.reviveMu.Unlock()
	d.mu.Lock()
	gone := d.recs[rec.id] != rec || rec.evicted
	d.mu.Unlock()
	if gone {
		return false
	}
	blob, err := d.session.Evict(rec.id)
	if err != nil {
		// ErrUnsupported (sim backend) or a racing close: leave the
		// session as it is.
		if !errors.Is(err, exec.ErrUnsupported) {
			d.errCount.Add(1)
		}
		d.cfg.Logf("simd: evict %s: %v", rec.id, err)
		return false
	}
	key, err := d.cfg.Store.PutSnapshot(blob)
	if err != nil {
		// The machine is already closed; losing the blob would lose
		// the session. Restore it in place from the blob we hold.
		d.errCount.Add(1)
		d.cfg.Logf("simd: evict %s: persist: %v", rec.id, err)
		if _, rerr := d.restoreResident(rec, blob); rerr != nil {
			d.cfg.Logf("simd: evict %s: rollback failed: %v", rec.id, rerr)
		}
		return false
	}
	var meta struct {
		Instant int    `json:"instant"`
		Module  string `json:"module"`
		Done    bool   `json:"done"`
	}
	json.Unmarshal(blob, &meta)
	d.mu.Lock()
	rec.evicted = true
	rec.snapKey = key
	rec.instant = meta.Instant
	rec.module = meta.Module
	rec.done = meta.Done
	d.mu.Unlock()
	d.evictions.Add(1)
	return true
}

// restoreResident recompiles a record's design and restores its
// machine into the session from a snapshot blob.
func (d *Daemon) restoreResident(rec *record, blob []byte) (string, error) {
	res := d.cfg.Driver.BuildOne(rec.req)
	if res.Failed() {
		return "", fmt.Errorf("recompile: %w", res.Err)
	}
	return d.session.Restore(rec.id, rec.backend, res.Design, blob)
}

// revive brings an evicted session back to residency: fetch the blob,
// recompile the design through the tiered cache, restore. It is a
// no-op for resident sessions, so racing revivals are safe.
func (d *Daemon) revive(rec *record) error {
	rec.reviveMu.Lock()
	defer rec.reviveMu.Unlock()
	d.mu.Lock()
	evicted, key := rec.evicted, rec.snapKey
	d.mu.Unlock()
	if !evicted {
		return nil
	}
	blob, ok := d.cfg.Store.GetSnapshot(key)
	if !ok {
		return fmt.Errorf("simd: session %s: snapshot %s no longer in the store (GC'd?)", rec.id, key)
	}
	if _, err := d.restoreResident(rec, blob); err != nil {
		return fmt.Errorf("simd: session %s: revive: %w", rec.id, err)
	}
	d.mu.Lock()
	rec.evicted = false
	rec.snapKey = ""
	d.mu.Unlock()
	d.revivals.Add(1)
	return nil
}

// touch finds a session's record, refreshes its idle clock, and
// revives it if evicted. It returns nil when the id is unknown.
func (d *Daemon) touch(id string) (*record, error) {
	d.mu.Lock()
	rec := d.recs[id]
	if rec != nil {
		rec.lastTouch = time.Now()
	}
	d.mu.Unlock()
	if rec == nil {
		return nil, fmt.Errorf("simd: no machine %q", id)
	}
	if err := d.revive(rec); err != nil {
		d.errCount.Add(1)
		return nil, err
	}
	return rec, nil
}

// ensureCapacity makes room for n new resident machines, evicting the
// least recently touched residents until the bound holds. A burst of
// concurrent opens can transiently overshoot the bound (admission is
// not globally serialized); each admission keeps evicting until its
// own observation fits, so the population converges back under the
// limit. Without a store eviction is impossible and the bound refuses
// growth instead.
func (d *Daemon) ensureCapacity(n int) error {
	// skip holds residents that failed to evict and are still present
	// — backends without portable snapshots — so the victim scan does
	// not pick the same immovable machine forever.
	var skip map[*record]bool
	for d.session.Len()+n > d.cfg.MaxSessions {
		if d.cfg.Store == nil {
			return fmt.Errorf("simd: session limit reached (%d resident, max %d)", d.session.Len(), d.cfg.MaxSessions)
		}
		d.mu.Lock()
		var oldest *record
		for _, rec := range d.recs {
			if rec.evicted || skip[rec] {
				continue
			}
			if oldest == nil || rec.lastTouch.Before(oldest.lastTouch) {
				oldest = rec
			}
		}
		d.mu.Unlock()
		if oldest == nil {
			return fmt.Errorf("simd: session limit reached (%d resident, max %d)", d.session.Len(), d.cfg.MaxSessions)
		}
		if !d.evict(oldest) {
			// Gone to a racing close/evict (harmless to skip — it is no
			// longer resident) or not serializable (must skip).
			if skip == nil {
				skip = map[*record]bool{}
			}
			skip[oldest] = true
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Handlers

func (d *Daemon) statsz(w http.ResponseWriter, r *http.Request) {
	httpjson.Write(w, http.StatusOK, d.Stats())
}

func (d *Daemon) open(w http.ResponseWriter, r *http.Request) {
	var req OpenRequest
	if err := decodeBody(w, r, &req); err != nil {
		return
	}
	if req.Source == "" && req.Path == "" {
		http.Error(w, "open needs source text or a daemon-local path", http.StatusBadRequest)
		return
	}
	backend := req.Backend
	if backend == "" {
		backend = d.cfg.Backend
	}
	if err := d.ensureCapacity(1); err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	breq := driver.Request{Path: req.Path, Source: req.Source, Module: req.Module}
	if breq.Path == "" {
		breq.Path = "daemon.ecl"
	}
	res := d.cfg.Driver.BuildOne(breq)
	if res.Failed() {
		lines := make([]string, 0, len(res.Diags))
		for _, diag := range res.Diags {
			lines = append(lines, diag.String())
		}
		if len(lines) == 0 {
			lines = append(lines, res.Err.Error())
		}
		http.Error(w, strings.Join(lines, "\n"), http.StatusBadRequest)
		return
	}
	id, err := d.session.Open(req.ID, backend, res.Design)
	if err != nil {
		status := http.StatusBadRequest
		if strings.Contains(err.Error(), "already exists") {
			status = http.StatusConflict
		}
		http.Error(w, err.Error(), status)
		return
	}
	rec := &record{id: id, backend: backend, req: breq, lastTouch: time.Now()}
	d.mu.Lock()
	d.recs[id] = rec
	d.mu.Unlock()
	d.opens.Add(1)
	d.writeInfo(w, http.StatusCreated, id)
}

func (d *Daemon) list(w http.ResponseWriter, r *http.Request) {
	d.mu.Lock()
	ids := make([]string, 0, len(d.recs))
	for id := range d.recs {
		ids = append(ids, id)
	}
	d.mu.Unlock()
	sort.Strings(ids)
	httpjson.Write(w, http.StatusOK, ids)
}

func (d *Daemon) info(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	d.mu.Lock()
	rec := d.recs[id]
	var snap record
	if rec != nil {
		snap = record{evicted: rec.evicted, instant: rec.instant, module: rec.module, done: rec.done, backend: rec.backend}
	}
	d.mu.Unlock()
	if rec == nil {
		http.Error(w, fmt.Sprintf("simd: no machine %q", id), http.StatusNotFound)
		return
	}
	if snap.evicted {
		// Report the parked session without reviving it: observability
		// must not defeat eviction.
		httpjson.Write(w, http.StatusOK, MachineInfo{
			ID: id, Module: snap.module, Backend: snap.backend,
			Instant: snap.instant, Terminated: snap.done, Evicted: true,
		})
		return
	}
	d.writeInfo(w, http.StatusOK, id)
}

// writeInfo responds with a resident machine's MachineInfo.
func (d *Daemon) writeInfo(w http.ResponseWriter, status int, id string) {
	info, err := d.session.Info(id)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	httpjson.Write(w, status, MachineInfo{
		ID:         info.ID,
		Module:     info.Module,
		Backend:    info.Backend,
		Instant:    info.Instant,
		Terminated: info.Terminated,
		Inputs:     signalInfos(info.Inputs),
		Outputs:    signalInfos(info.Outputs),
	})
}

func (d *Daemon) close(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	d.mu.Lock()
	rec := d.recs[id]
	delete(d.recs, id)
	d.mu.Unlock()
	if rec == nil {
		http.Error(w, fmt.Sprintf("simd: no machine %q", id), http.StatusNotFound)
		return
	}
	// An evicted session has no resident machine; dropping the record
	// is the close (the snapshot blob ages out of the store with GC).
	rec.reviveMu.Lock()
	evicted := rec.evicted
	rec.reviveMu.Unlock()
	if !evicted {
		if err := d.session.Close(id); err != nil {
			d.cfg.Logf("simd: close %s: %v", id, err)
		}
	}
	d.closes.Add(1)
	w.WriteHeader(http.StatusNoContent)
}

func (d *Daemon) step(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, err := d.touch(id); err != nil {
		http.Error(w, err.Error(), statusFor(err))
		return
	}
	inputs, err := readInputEvents(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	events, stepErr := d.session.StepEvents(id, inputs)
	d.batches.Add(1)
	d.steps.Add(int64(len(events)))
	st := httpjson.NewStream(w, "simd: step "+id)
	for _, ev := range events {
		if !st.Encode(ev) {
			return
		}
	}
	if stepErr != nil {
		d.errCount.Add(1)
		if !st.Encode(wireEvent{Error: stepErr.Error()}) {
			return
		}
	}
	st.Flush()
}

func (d *Daemon) fork(w http.ResponseWriter, r *http.Request) {
	src := r.PathValue("id")
	var req ForkRequest
	if err := decodeBody(w, r, &req); err != nil {
		return
	}
	rec, err := d.touch(src)
	if err != nil {
		http.Error(w, err.Error(), statusFor(err))
		return
	}
	if err := d.ensureCapacity(1); err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	dst, err := d.session.Fork(src, req.ID)
	if err != nil {
		status := http.StatusBadRequest
		if strings.Contains(err.Error(), "already exists") {
			status = http.StatusConflict
		}
		http.Error(w, err.Error(), status)
		return
	}
	child := &record{id: dst, backend: rec.backend, req: rec.req, lastTouch: time.Now()}
	d.mu.Lock()
	d.recs[dst] = child
	d.mu.Unlock()
	d.forks.Add(1)
	d.writeInfo(w, http.StatusCreated, dst)
}

func (d *Daemon) reset(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, err := d.touch(id); err != nil {
		http.Error(w, err.Error(), statusFor(err))
		return
	}
	if err := d.session.Reset(id); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	d.resets.Add(1)
	w.WriteHeader(http.StatusNoContent)
}

// ---------------------------------------------------------------------------
// Request plumbing

// decodeBody parses a JSON request body, writing the error response
// itself on failure. An empty body decodes as the zero request.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		http.Error(w, "unreadable body", http.StatusBadRequest)
		return err
	}
	if len(body) == 0 {
		return nil
	}
	if err := json.Unmarshal(body, v); err != nil {
		http.Error(w, fmt.Sprintf("bad request JSON: %v", err), http.StatusBadRequest)
		return err
	}
	return nil
}

// readInputEvents parses a step request's JSONL body: one trace event
// per line, of which only the input map is read. Blank lines are idle
// instants only when explicitly encoded as "{}" — a fully blank line
// is skipped, matching trace format tolerance.
func readInputEvents(r *http.Request) ([]map[string]string, error) {
	br := bufio.NewReader(http.MaxBytesReader(nil, r.Body, maxBodyBytes))
	var inputs []map[string]string
	line := 0
	for {
		text, readErr := br.ReadString('\n')
		if readErr != nil && readErr != io.EOF {
			return nil, fmt.Errorf("read body: %w", readErr)
		}
		if s := strings.TrimSpace(text); s != "" {
			line++
			var ev exec.Event
			if err := json.Unmarshal([]byte(s), &ev); err != nil {
				return nil, fmt.Errorf("input event %d: %v", line, err)
			}
			if ev.Inputs == nil {
				ev.Inputs = map[string]string{}
			}
			inputs = append(inputs, ev.Inputs)
		}
		if readErr == io.EOF {
			return inputs, nil
		}
	}
}

// statusFor maps daemon errors onto HTTP statuses: unknown machines
// are 404, everything else a 500-class revival failure.
func statusFor(err error) int {
	if strings.Contains(err.Error(), "no machine") {
		return http.StatusNotFound
	}
	return http.StatusInternalServerError
}
