// Package paperex holds the ECL sources of the paper's running
// examples as string constants, shared by tests, examples, and the
// benchmark harness:
//
//   - the protocol-stack fragment of Figures 1-4 (assemble, checkcrc,
//     prochdr, toplevel), reproduced from the paper with the one
//     elision ("some lengthy computation") filled in as a multi-instant
//     header-matching loop, exactly as the surrounding text describes;
//   - the voice-mail-pager audio buffer controller, reconstructed from
//     the paper's description in Section 4 (three controllers with
//     independent modes, which makes the synchronous product automaton
//     grow — the effect shown in Table 1's second example);
//   - ABRO, Esterel's classic "hello world", used by the quickstart.
package paperex

// Header is the type/constant prelude of Figure 1.
const Header = `
#define HDRSIZE 6
#define DATASIZE 56
#define CRCSIZE 2
#define PKTSIZE HDRSIZE+DATASIZE+CRCSIZE

typedef unsigned char byte;

typedef struct {
    byte packet[PKTSIZE];
} packet_view_1_t;

typedef struct {
    byte header[HDRSIZE];
    byte data[DATASIZE];
    byte crc[CRCSIZE];
} packet_view_2_t;

typedef union {
    packet_view_1_t raw;
    packet_view_2_t cooked;
} packet_t;
`

// Assemble is Figure 1: an ECL module assembling bytes into packets.
const Assemble = `
module assemble (input pure reset,
                 input byte in_byte, output packet_t outpkt)
{
    int cnt;
    packet_t buffer;

    /* outermost reactive loop */
    while (1) {
        do {
            /* get PKTSIZE bytes */
            for (cnt = 0; cnt < PKTSIZE; cnt++) {
                await (in_byte);
                buffer.raw.packet[cnt] = in_byte;
            }
            /* assemble them and emit the output */
            emit_v (outpkt, buffer);
        } abort (reset);
    }
}
`

// CheckCRC is Figure 2: an ECL module checking a Cyclic Redundancy
// Code. Its for loop has no halting statement, so the splitter
// extracts it as a C data function.
const CheckCRC = `
module checkcrc (input pure reset,
                 input packet_t inpkt, output bool crc_ok)
{
    int i;
    unsigned int crc;

    while (1) {
        do {
            await (inpkt);
            for (i = 0, crc = 0; i < PKTSIZE; i++) {
                crc = (crc ^ inpkt.raw.packet[i]) << 1;
            }
            emit_v (crc_ok, crc == (int) inpkt.cooked.crc);
        } abort (reset);
    }
}
`

// ProcHdr is Figure 3: an ECL module performing a computation on the
// packet header. Two reconstruction notes:
//
//  1. The paper elides the "lengthy computation" body; here it is a
//     byte-per-instant header scan (empty await() delta cycles make it
//     span instants, so the surrounding abort can check kill_check
//     periodically, exactly as the paper's text explains).
//  2. Figure 3 writes "await (crc_ok)", but checkcrc's CRC loop is a
//     data loop and therefore instantaneous: crc_ok arrives in the very
//     instant both modules receive inpkt. Under ECL's stated await
//     semantics ("waits ... in some later instant") a plain await would
//     miss it by one packet. The paper's text says this branch "catches
//     the crc_ok signal", i.e. Esterel's await-immediate; we encode
//     that as present(crc_ok){}else{await(crc_ok);}. DESIGN.md records
//     the substitution.
const ProcHdr = `
module prochdr (input pure reset, input bool crc_ok,
                input packet_t inpkt, output pure addr_match)
{
    signal pure kill_check; /* local signal */
    bool match_ok;
    int hi;

    while (1) {
        do {
            await (inpkt);
            par {
                do {
                    /* lengthy computation, determining match_ok:
                       scan the header one byte per instant */
                    match_ok = 1;
                    for (hi = 0; hi < HDRSIZE; hi++) {
                        if (inpkt.cooked.header[hi] != (byte)(hi + 1))
                            match_ok = 0;
                        await ();
                    }
                } abort (kill_check);
                {
                    /* await immediate crc_ok (see note 2 above) */
                    present (crc_ok) { } else { await (crc_ok); }
                    if (~crc_ok) emit (kill_check);
                    /* else just wait for both to complete */
                }
            }
            /* now both branches have terminated */
            if (crc_ok && match_ok) emit (addr_match);
        } abort (reset);
    }
}
`

// TopLevel is Figure 4: the ECL top-level module for the protocol
// stack, instantiating the three modules concurrently.
const TopLevel = `
module toplevel (input pure reset,
                 input byte in_byte, output pure addr_match)
{
    signal packet_t packet;
    signal bool crc_ok;

    par {
        assemble (reset, in_byte, packet);
        checkcrc (reset, packet, crc_ok);
        prochdr (reset, crc_ok, packet, addr_match);
    }
}
`

// Stack is the complete protocol-stack translation unit (Figures 1-4).
const Stack = Header + Assemble + CheckCRC + ProcHdr + TopLevel

// Packet geometry constants mirrored from the #defines above.
const (
	HdrSize  = 6
	DataSize = 56
	CrcSize  = 2
	PktSize  = HdrSize + DataSize + CrcSize
)

// Buffer is the audio buffer controller from the voice-mail pager
// design (paper Section 4, second Table 1 example). The paper gives
// only its name; this reconstruction follows the standard structure of
// such a design: a record controller, a playback controller, and a
// buffer-level monitor run concurrently, each cycling through its own
// modes mostly independently. Independent concurrent mode machines are
// what makes the synchronous product automaton large relative to the
// sum of the parts — the effect the paper's Table 1 reports for this
// example.
const Buffer = `
#define BUFCAP 64
#define LOWMARK 16
#define HIGHMARK 48

typedef unsigned char byte;

module recordctl (input pure rec_btn, input pure stop_btn,
                  input byte mic_sample, input pure buf_full,
                  output byte wr_data, output pure rec_led)
{
    while (1) {
        await (rec_btn);
        emit (rec_led);
        do {
            while (1) {
                await (mic_sample);
                emit_v (wr_data, mic_sample);
            }
        } abort (stop_btn | buf_full);
    }
}

module playctl (input pure play_btn, input pure stop_btn,
                input pure buf_empty, input byte rd_data,
                output pure rd_req, output byte spk_sample)
{
    while (1) {
        await (play_btn);
        do {
            while (1) {
                emit (rd_req);
                await (rd_data);
                emit_v (spk_sample, rd_data);
                await ();
            }
        } abort (stop_btn | buf_empty);
    }
}

module levelmon (input byte wr_data, input pure rd_req,
                 output pure buf_full, output pure buf_empty,
                 output pure low_water, output pure high_water)
{
    int level;

    level = 0;
    while (1) {
        /* Publish the fill status computed from the previous instant's
           level first (register semantics: "every reader sees the value
           of the previous instant", as the paper puts it), then account
           for this instant's writes and reads. */
        if (level >= BUFCAP) emit (buf_full);
        if (level == 0) emit (buf_empty);
        if (level <= LOWMARK) emit (low_water);
        if (level >= HIGHMARK) emit (high_water);
        present (wr_data) {
            if (level < BUFCAP) level = level + 1;
        }
        present (rd_req) {
            if (level > 0) level = level - 1;
        }
        await ();
    }
}

module bufferctl (input pure rec_btn, input pure play_btn,
                  input pure stop_btn, input byte mic_sample,
                  input byte rd_data,
                  output byte spk_sample, output pure rec_led,
                  output pure rd_req,
                  output pure low_water, output pure high_water)
{
    signal byte wr_data;
    signal pure buf_full;
    signal pure buf_empty;

    par {
        recordctl (rec_btn, stop_btn, mic_sample, buf_full, wr_data, rec_led);
        playctl (play_btn, stop_btn, buf_empty, rd_data, rd_req, spk_sample);
        levelmon (wr_data, rd_req, buf_full, buf_empty, low_water, high_water);
    }
}
`

// Buffer geometry constants mirrored from the #defines above.
const (
	BufCap   = 64
	LowMark  = 16
	HighMark = 48
)

// MakePacket builds one protocol-stack packet. The header carries the
// pattern prochdr expects (1..HDRSIZE). checkcrc's toy CRC —
// crc = (crc ^ b) << 1 over all PKTSIZE bytes, compared against the
// stored bytes reinterpreted as an int — feeds the stored CRC back
// into itself, so a "good" packet must be self-consistent: with the
// last 32 payload bytes zero, every earlier bit has been shifted out
// of the 32-bit accumulator by the time the CRC bytes are read, and a
// stored CRC of zero satisfies the check. A bad packet stores a
// nonzero CRC instead.
func MakePacket(good bool) [PktSize]byte {
	var pkt [PktSize]byte
	for i := 0; i < HdrSize; i++ {
		pkt[i] = byte(i + 1) // prochdr's expected header pattern
	}
	// First part of the payload is arbitrary; the last 32 payload
	// bytes stay zero so the CRC accumulator drains (see above).
	for i := HdrSize; i < PktSize-CrcSize-32; i++ {
		pkt[i] = byte(i * 3)
	}
	if !good {
		pkt[PktSize-2], pkt[PktSize-1] = 0xFF, 0xFE
	}
	return pkt
}

// CRCOf computes checkcrc's toy CRC over a whole packet, for tests
// that want to cross-check the data path.
func CRCOf(pkt [PktSize]byte) uint32 {
	crc := uint32(0)
	for i := 0; i < PktSize; i++ {
		crc = (crc ^ uint32(pkt[i])) << 1
	}
	return crc
}

// ABRO is Esterel's canonical first example written in ECL: emit O as
// soon as both A and B have occurred, reset on R. The quickstart
// example and the hardware-synthesis tests use it because it is pure
// control (no data part), so it can go to hardware unchanged.
const ABRO = `
module abro (input pure A, input pure B, input pure R,
             output pure O)
{
    while (1) {
        do {
            par {
                await (A);
                await (B);
            }
            emit (O);
            halt ();
        } abort (R);
    }
}
`

// RunnerStop exercises weak abort and handlers; used in tests.
const RunnerStop = `
module runner (input pure go, input pure stop, output pure started,
               output pure done, output pure aborted)
{
    while (1) {
        await (go);
        do {
            emit (started);
            await (go);
            await (go);
            emit (done);
            halt ();
        } weak_abort (stop)
        handle {
            emit (aborted);
        }
    }
}
`
