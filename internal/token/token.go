// Package token defines the lexical tokens of the ECL language: the C
// token set extended with ECL's reactive keywords (module, signal,
// emit, await, present, abort, and friends).
package token

import "strconv"

// Kind identifies a lexical token class.
type Kind int

// The token kinds. Layout mirrors go/token: literals, operators,
// keywords, each in a contiguous range.
const (
	ILLEGAL Kind = iota
	EOF
	COMMENT

	literalBeg
	IDENT  // assemble
	INT    // 12345, 0x1F, 017
	FLOAT  // 1.25, 1e9
	CHAR   // 'a'
	STRING // "abc"
	literalEnd

	operatorBeg
	ADD // +
	SUB // -
	MUL // *
	QUO // /
	REM // %

	AND     // &
	OR      // |
	XOR     // ^
	SHL     // <<
	SHR     // >>
	AND_NOT // &^ (unused in C, kept for symmetry)

	LAND // &&
	LOR  // ||
	NOT  // !
	TILDE

	ASSIGN     // =
	ADD_ASSIGN // +=
	SUB_ASSIGN // -=
	MUL_ASSIGN // *=
	QUO_ASSIGN // /=
	REM_ASSIGN // %=
	AND_ASSIGN // &=
	OR_ASSIGN  // |=
	XOR_ASSIGN // ^=
	SHL_ASSIGN // <<=
	SHR_ASSIGN // >>=

	EQL // ==
	NEQ // !=
	LSS // <
	GTR // >
	LEQ // <=
	GEQ // >=

	INC // ++
	DEC // --

	LPAREN   // (
	RPAREN   // )
	LBRACE   // {
	RBRACE   // }
	LBRACK   // [
	RBRACK   // ]
	COMMA    // ,
	SEMI     // ;
	COLON    // :
	DOT      // .
	ARROW    // ->
	QUESTION // ?
	operatorEnd

	keywordBeg
	// C keywords (the subset ECL supports).
	BREAK
	CASE
	CONST
	CONTINUE
	DEFAULT
	DO
	ELSE
	ENUM
	FOR
	IF
	RETURN
	SIZEOF
	STATIC
	STRUCT
	SWITCH
	TYPEDEF
	UNION
	WHILE

	// Type keywords.
	VOID
	CHAR_KW
	SHORT
	INT_KW
	LONG
	FLOAT_KW
	DOUBLE
	SIGNED
	UNSIGNED
	BOOL_KW

	// ECL reactive keywords.
	MODULE
	SIGNAL
	INPUT
	OUTPUT
	PURE
	EMIT
	EMIT_V
	AWAIT
	HALT
	PRESENT
	ABORT
	WEAK_ABORT
	SUSPEND
	HANDLE
	PAR
	keywordEnd
)

var names = map[Kind]string{
	ILLEGAL: "ILLEGAL",
	EOF:     "EOF",
	COMMENT: "COMMENT",

	IDENT:  "IDENT",
	INT:    "INT",
	FLOAT:  "FLOAT",
	CHAR:   "CHAR",
	STRING: "STRING",

	ADD:     "+",
	SUB:     "-",
	MUL:     "*",
	QUO:     "/",
	REM:     "%",
	AND:     "&",
	OR:      "|",
	XOR:     "^",
	SHL:     "<<",
	SHR:     ">>",
	AND_NOT: "&^",
	LAND:    "&&",
	LOR:     "||",
	NOT:     "!",
	TILDE:   "~",

	ASSIGN:     "=",
	ADD_ASSIGN: "+=",
	SUB_ASSIGN: "-=",
	MUL_ASSIGN: "*=",
	QUO_ASSIGN: "/=",
	REM_ASSIGN: "%=",
	AND_ASSIGN: "&=",
	OR_ASSIGN:  "|=",
	XOR_ASSIGN: "^=",
	SHL_ASSIGN: "<<=",
	SHR_ASSIGN: ">>=",

	EQL: "==",
	NEQ: "!=",
	LSS: "<",
	GTR: ">",
	LEQ: "<=",
	GEQ: ">=",

	INC: "++",
	DEC: "--",

	LPAREN:   "(",
	RPAREN:   ")",
	LBRACE:   "{",
	RBRACE:   "}",
	LBRACK:   "[",
	RBRACK:   "]",
	COMMA:    ",",
	SEMI:     ";",
	COLON:    ":",
	DOT:      ".",
	ARROW:    "->",
	QUESTION: "?",

	BREAK:    "break",
	CASE:     "case",
	CONST:    "const",
	CONTINUE: "continue",
	DEFAULT:  "default",
	DO:       "do",
	ELSE:     "else",
	ENUM:     "enum",
	FOR:      "for",
	IF:       "if",
	RETURN:   "return",
	SIZEOF:   "sizeof",
	STATIC:   "static",
	STRUCT:   "struct",
	SWITCH:   "switch",
	TYPEDEF:  "typedef",
	UNION:    "union",
	WHILE:    "while",

	VOID:     "void",
	CHAR_KW:  "char",
	SHORT:    "short",
	INT_KW:   "int",
	LONG:     "long",
	FLOAT_KW: "float",
	DOUBLE:   "double",
	SIGNED:   "signed",
	UNSIGNED: "unsigned",
	BOOL_KW:  "bool",

	MODULE:     "module",
	SIGNAL:     "signal",
	INPUT:      "input",
	OUTPUT:     "output",
	PURE:       "pure",
	EMIT:       "emit",
	EMIT_V:     "emit_v",
	AWAIT:      "await",
	HALT:       "halt",
	PRESENT:    "present",
	ABORT:      "abort",
	WEAK_ABORT: "weak_abort",
	SUSPEND:    "suspend",
	HANDLE:     "handle",
	PAR:        "par",
}

// String returns the literal text of operators and keywords and the
// upper-case class name of other tokens.
func (k Kind) String() string {
	if s, ok := names[k]; ok {
		return s
	}
	return "Kind(" + strconv.Itoa(int(k)) + ")"
}

// IsLiteral reports whether the kind is an identifier or basic literal.
func (k Kind) IsLiteral() bool { return literalBeg < k && k < literalEnd }

// IsOperator reports whether the kind is an operator or delimiter.
func (k Kind) IsOperator() bool { return operatorBeg < k && k < operatorEnd }

// IsKeyword reports whether the kind is a C or ECL keyword.
func (k Kind) IsKeyword() bool { return keywordBeg < k && k < keywordEnd }

// IsReactiveKeyword reports whether the kind is one of ECL's added
// reactive keywords (as opposed to a plain C keyword).
func (k Kind) IsReactiveKeyword() bool { return MODULE <= k && k <= PAR }

// IsTypeKeyword reports whether the kind starts a C type specifier.
func (k Kind) IsTypeKeyword() bool {
	switch k {
	case VOID, CHAR_KW, SHORT, INT_KW, LONG, FLOAT_KW, DOUBLE, SIGNED, UNSIGNED, BOOL_KW, STRUCT, UNION, ENUM:
		return true
	}
	return false
}

// IsAssignOp reports whether the kind is an assignment operator.
func (k Kind) IsAssignOp() bool { return ASSIGN <= k && k <= SHR_ASSIGN }

var keywords map[string]Kind

func init() {
	keywords = make(map[string]Kind)
	for k := keywordBeg + 1; k < keywordEnd; k++ {
		keywords[names[k]] = k
	}
}

// Lookup maps an identifier spelling to its keyword kind, or IDENT if
// it is not a keyword.
func Lookup(ident string) Kind {
	if k, ok := keywords[ident]; ok {
		return k
	}
	return IDENT
}

// Precedence returns the binary-operator precedence of k, following C
// (higher binds tighter), or 0 if k is not a binary operator.
func (k Kind) Precedence() int {
	switch k {
	case LOR:
		return 1
	case LAND:
		return 2
	case OR:
		return 3
	case XOR:
		return 4
	case AND:
		return 5
	case EQL, NEQ:
		return 6
	case LSS, GTR, LEQ, GEQ:
		return 7
	case SHL, SHR:
		return 8
	case ADD, SUB:
		return 9
	case MUL, QUO, REM:
		return 10
	}
	return 0
}

// Token is a lexed token: its kind, literal text, and offset within the
// (preprocessed) source.
type Token struct {
	Kind   Kind
	Lit    string
	Offset int
}

// String renders the token for debugging.
func (t Token) String() string {
	if t.Kind.IsLiteral() {
		return t.Kind.String() + "(" + t.Lit + ")"
	}
	return t.Kind.String()
}
