package token

import "testing"

func TestLookup(t *testing.T) {
	cases := map[string]Kind{
		"module": MODULE, "await": AWAIT, "emit_v": EMIT_V, "par": PAR,
		"while": WHILE, "int": INT_KW, "bool": BOOL_KW, "frob": IDENT,
		"weak_abort": WEAK_ABORT, "suspend": SUSPEND, "handle": HANDLE,
	}
	for s, want := range cases {
		if got := Lookup(s); got != want {
			t.Errorf("Lookup(%q) = %v, want %v", s, got, want)
		}
	}
}

func TestPredicates(t *testing.T) {
	if !IDENT.IsLiteral() || !INT.IsLiteral() || ADD.IsLiteral() {
		t.Error("IsLiteral wrong")
	}
	if !ADD.IsOperator() || !SEMI.IsOperator() || MODULE.IsOperator() {
		t.Error("IsOperator wrong")
	}
	if !MODULE.IsKeyword() || !WHILE.IsKeyword() || IDENT.IsKeyword() {
		t.Error("IsKeyword wrong")
	}
	if !AWAIT.IsReactiveKeyword() || WHILE.IsReactiveKeyword() {
		t.Error("IsReactiveKeyword wrong")
	}
	if !INT_KW.IsTypeKeyword() || !STRUCT.IsTypeKeyword() || AWAIT.IsTypeKeyword() {
		t.Error("IsTypeKeyword wrong")
	}
	if !ASSIGN.IsAssignOp() || !SHR_ASSIGN.IsAssignOp() || EQL.IsAssignOp() {
		t.Error("IsAssignOp wrong")
	}
}

func TestPrecedenceOrdering(t *testing.T) {
	// C precedence: || < && < | < ^ < & < == < < < << < + < *
	order := []Kind{LOR, LAND, OR, XOR, AND, EQL, LSS, SHL, ADD, MUL}
	for i := 1; i < len(order); i++ {
		if order[i-1].Precedence() >= order[i].Precedence() {
			t.Errorf("%v should bind looser than %v", order[i-1], order[i])
		}
	}
	if SEMI.Precedence() != 0 {
		t.Error("non-operator precedence must be 0")
	}
}

func TestTokenString(t *testing.T) {
	if (Token{Kind: IDENT, Lit: "x"}).String() != "IDENT(x)" {
		t.Error("literal token string wrong")
	}
	if (Token{Kind: LBRACE}).String() != "{" {
		t.Error("operator token string wrong")
	}
}
