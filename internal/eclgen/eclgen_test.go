package eclgen_test

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/eclgen"
)

var update = flag.Bool("update", false, "regenerate testdata/corpus from the generator")

// TestDeterministic: equal configs must render equal text — the
// property the committed corpus, fuzz seeds, and CI mega-design
// reproduction all rely on.
func TestDeterministic(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		a := eclgen.Generate(eclgen.Config{Seed: seed, Modules: 5})
		b := eclgen.Generate(eclgen.Config{Seed: seed, Modules: 5})
		if a != b {
			t.Fatalf("seed %d: two generations differ", seed)
		}
	}
	if eclgen.Generate(eclgen.Config{Seed: 1, Modules: 5}) == eclgen.Generate(eclgen.Config{Seed: 2, Modules: 5}) {
		t.Fatal("distinct seeds generated identical programs")
	}
}

// TestGeneratedProgramsCompile is the generator's well-formedness
// gate: across many seeds, every module of every generated program
// must parse, analyze, and compile to an EFSM without diagnostics.
func TestGeneratedProgramsCompile(t *testing.T) {
	seeds := 60
	if testing.Short() {
		seeds = 12
	}
	for seed := 0; seed < seeds; seed++ {
		src := eclgen.Program(int64(seed))
		prog, err := core.Parse("gen.ecl", src, core.Options{})
		if err != nil {
			t.Fatalf("seed %d: parse/sem failed: %v\nsource:\n%s", seed, err, src)
		}
		for _, mod := range prog.Modules() {
			if _, err := prog.Compile(mod); err != nil {
				t.Fatalf("seed %d: compile %s failed: %v\nsource:\n%s", seed, mod, err, src)
			}
		}
	}
}

// TestMegaDesignCompiles exercises the batch shape: one file, many
// modules, including instantiation wrappers that inline earlier
// modules. Every module must compile from the single shared parse.
func TestMegaDesignCompiles(t *testing.T) {
	n := 80
	if testing.Short() {
		n = 20
	}
	src := eclgen.File(7, n)
	prog, err := core.Parse("mega.ecl", src, core.Options{})
	if err != nil {
		t.Fatalf("parse/sem failed: %v", err)
	}
	mods := prog.Modules()
	if len(mods) != n {
		t.Fatalf("generated %d modules, want %d", len(mods), n)
	}
	for _, mod := range mods {
		if _, err := prog.Compile(mod); err != nil {
			t.Fatalf("compile %s failed: %v", mod, err)
		}
	}
}

// TestCorpusPinned keeps the committed fuzz-seed corpus in lockstep
// with the generator: each testdata/corpus file must be exactly what
// the generator produces for its seed today. Regenerate with
//
//	go test ./internal/eclgen -run TestCorpusPinned -update
func TestCorpusPinned(t *testing.T) {
	for _, c := range eclgen.Corpus() {
		path := filepath.Join("testdata", "corpus", c.Name)
		want := eclgen.Generate(c.Config)
		got, err := os.ReadFile(path)
		if err != nil || string(got) != want {
			if *update {
				if err := os.WriteFile(path, []byte(want), 0o644); err != nil {
					t.Fatal(err)
				}
				continue
			}
			t.Errorf("%s out of date with generator (rerun with -update): readErr=%v", path, err)
		}
	}
}
