#define GK0 5
#define GK1 2

module gen0 (input pure pa, input int va, output int oa, output pure qa)
{
    int x0 = 5;
    int x1 = 0;
    int t;

    while (1) {
        await ();
        present (pa) {
            x0 = x0 + (13 * x0);
        } else {
            x1 = 2;
        }
        emit_v (oa, x1);
        if (x0 == x1) emit (qa);
    }
}

module gen1 (input pure pa, input pure pb, input int va, output int oa, output pure qa)
{
    int x0 = 3;
    int x1 = 6;
    int t;

    while (1) {
        await (pa);
        do {
            while (1) {
                await (pb);
                while (x1 > 0) {
                    x1 = x1 >> 1;
                }
                x1 = ((9 | GK1) << 0);
                x0 = x1;
                emit_v (oa, x1);
            }
        } weak_abort (pa)
        handle {
            emit (qa);
        }
    }
}

module gen2 (input pure pa, input int va, output int oa, output pure qa)
{
    int x0 = 4;
    int x1 = 1;
    int t;

    while (1) {
        await (va);
        switch (va & 3) {
        case 0:
            x0 = x1;
            break;
        case 1:
        case 2:
            x1 = 14;
            break;
        default:
            x0 = 3;
        }
        emit_v (oa, (x0 + x1));
        if ((va & 1) == 0) emit (qa);
    }
}

