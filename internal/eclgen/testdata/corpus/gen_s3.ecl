#define GK0 6
#define GK1 1

module gen0 (input pure pa, output int oa, output pure qa)
{
    int x0 = 5;
    int x1 = 0;
    int t;

    while (1) {
        await (pa);
        for (t = 0; t < 7; t++) {
            x0 = x0 + (t * t);
        }
        emit_v (oa, (x1 | (GK1 < x0)));
        if (x0 > x1) emit (qa);
    }
}

