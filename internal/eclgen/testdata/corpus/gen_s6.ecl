#define GK0 12
#define GK1 9

module gen0 (input pure pa, input pure pb, output int oa, output pure qa)
{
    int x0 = 6;
    int x1 = 7;
    int t;

    while (1) {
        await ();
        present (pa) {
            x0 = x0 + GK1;
        } else {
            x1 = (x1 + GK0);
        }
        emit_v (oa, GK0);
        if (x0 == x1) emit (qa);
    }
}

