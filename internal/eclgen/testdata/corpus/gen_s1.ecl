#define GK0 4
#define GK1 12
#define GK2 12

module gen0 (input pure pa, input pure pb, input int va, output int oa)
{
    int x0 = 4;
    int x1 = 0;
    int t;

    while (1) {
        await (pa);
        do {
            while (1) {
                await (va);
                while (x1 > 0) {
                    x1 = x1 >> 1;
                }
                x1 = (GK2 << 3);
                for (t = 0; t < 5; t++) {
                    x0 = x0 + (9 >> 1);
                }
                emit_v (oa, (x1 - (x0 << 0)));
            }
        } abort (pa);
    }
}

module gen1 (input pure pa, input int va, output int oa)
{
    int x0 = 7;
    int x1 = 0;
    int t;

    while (1) {
        await (va);
        switch (va & 3) {
        case 0:
            x0 = ((x0 < x1) >> 3);
            break;
        case 1:
        case 2:
            x1 = ((x0 ^ 1) | x0);
            break;
        default:
            x0 = 7;
        }
        emit_v (oa, (x0 + x1));
    }
}

