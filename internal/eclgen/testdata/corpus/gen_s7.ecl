#define GK0 7
#define GK1 10

module gen0 (input pure pa, input pure pb, input int va, output int oa, output pure qa)
{
    int x0 = 0;
    int x1 = 6;
    int t;

    while (1) {
        await (va);
        switch (va & 3) {
        case 0:
            x0 = (11 ^ (x0 & 2));
            break;
        case 1:
        case 2:
            x1 = (va | (GK1 - x1));
            break;
        default:
            x0 = 0;
        }
        emit_v (oa, (x0 + x1));
        if ((va & 1) == 0) emit (qa);
    }
}

module gen1 (input pure pa, input pure pb, output int oa)
{
    int x0 = 5;
    int x1 = 4;
    int t;

    while (1) {
        await (pa);
        for (t = 0; t < 2; t++) {
            x0 = x0 + (GK1 << 1);
        }
        emit_v (oa, GK0);
    }
}

