#define GK0 1
#define GK1 6

module gen0 (input pure pa, input pure pb, input int va, output int oa)
{
    int x0 = 5;
    int x1 = 7;
    int t;

    while (1) {
        await ();
        present (pa) {
            x0 = x0 + GK0;
        } else {
            x1 = (14 + x0);
        }
        emit_v (oa, (GK0 >> 3));
    }
}

module gen1 (input pure pa, input pure pb, output int oa)
{
    int x0 = 0;
    int x1 = 0;
    int t;

    while (1) {
        await ();
        present (pa) {
            x0 = x0 + (x1 * GK1);
        } else {
            x1 = (GK1 ^ 3);
        }
        emit_v (oa, 4);
    }
}

module gen2 (input pure pa, input pure pb, input int va, output int oa)
{
    int x0 = 6;
    int x1 = 5;
    int t;

    while (1) {
        await (va);
        switch (va & 3) {
        case 0:
            x0 = (8 | va);
            break;
        case 1:
        case 2:
            x1 = ((x1 ^ x0) | x1);
            break;
        default:
            x0 = 4;
        }
        emit_v (oa, (x0 + x1));
    }
}

