#define GK0 7
#define GK1 1

module gen0 (input pure pa, input pure pb, input int va, output int oa, output int ob, output pure qa)
{
    int x0 = 4;
    int x1 = 7;
    int t;

    signal pure lnk;

    par {
        while (1) {
            await (pa);
            x0 = (GK0 * (x0 - 9));
            emit (lnk);
            emit_v (ob, GK0);
        }
        while (1) {
            await (pb);
            x1 = 5;
            emit_v (oa, x1);
            emit (qa);
        }
    }
}

module gen1 (input pure pa, input pure pb, output int oa, output pure qa)
{
    int x0 = 5;
    int x1 = 5;
    int t;

    while (1) {
        await (pa);
        do {
            while (1) {
                await (pb);
                while (x0 > 0) {
                    x0 = x0 >> 1;
                }
                emit_v (oa, ((x1 | GK0) < (x1 << 3)));
            }
        } suspend (pa);
    }
}

module gen2 (input pure pa, input int va, output int oa, output pure qa)
{
    int x0 = 5;
    int x1 = 4;
    int t;

    while (1) {
        await (va);
        switch (va & 3) {
        case 0:
            x0 = ((16 ^ x1) < (x1 - x1));
            break;
        case 1:
        case 2:
            x1 = GK1;
            break;
        default:
            x0 = 8;
        }
        emit_v (oa, (x0 + x1));
        if ((va & 1) == 0) emit (qa);
    }
}

