#define GK0 5
#define GK1 2
#define GK2 12

module gen0 (input pure pa, input int va, output int oa, output pure qa)
{
    int x0 = 5;
    int x1 = 7;
    int t;

    while (1) {
        await (va);
        switch (va & 3) {
        case 0:
            x0 = GK0;
            break;
        case 1:
        case 2:
            x1 = GK0;
            break;
        default:
            x0 = 4;
        }
        emit_v (oa, (x0 + x1));
        if ((va & 1) == 0) emit (qa);
    }
}

module gen1 (input pure pa, input pure pb, input int va, output int oa, output pure qa)
{
    int x0 = 5;
    int x1 = 7;
    int t;

    while (1) {
        await (pa);
        while (x0 > 0) {
            x0 = x0 >> 1;
        }
        x0 = x0;
        emit_v (oa, 4);
        if (x0 > x1) emit (qa);
    }
}

