// Package eclgen generates well-typed random ECL programs, in the
// spirit of csmith: every emitted program parses, analyzes, lowers,
// and compiles through every backend by construction. The generator
// serves two workloads the hand-written example corpus cannot cover:
//
//   - differential conformance at scale — small programs whose modules
//     are stepped through every registered execution backend and
//     trace-diffed against the interpreter;
//   - synthetic mega-designs — files with hundreds to thousands of
//     modules that stress batch compilation (and the shared-front-end
//     path in particular) the way production traffic would.
//
// Correctness-by-construction rules, chosen so that no generated
// program can be rejected or behave non-deterministically:
//
//   - every reactive loop body starts with an await, so no loop is
//     instantaneous; data loops are bounded counter loops;
//   - presence tests (present, preemption guards) use input signals
//     only; awaits may also use module-local signals, whose emission
//     is delayed-consumed, so no causality cycle can close;
//   - each valued signal is emitted by exactly one par branch and at
//     most once per instant, so no emit conflicts arise;
//   - valued inputs are read only in reaction segments guarded by an
//     await of that signal;
//   - expressions use int arithmetic without division, so all backends
//     agree bit-for-bit under int32 wrap-around semantics.
//
// Generation is fully deterministic in the seed.
package eclgen

import (
	"fmt"
	"math/rand"
	"strings"
)

// Config parameterizes one generated translation unit.
type Config struct {
	// Seed drives every random choice; equal configs generate equal text.
	Seed int64
	// Modules is the number of modules to generate (min 1).
	Modules int
	// NoWrappers suppresses instantiation-wrapper modules (used by
	// conformance tests that want every module to be a leaf).
	NoWrappers bool
}

// File generates a translation unit with the given seed and module
// count — the mega-design entry point.
func File(seed int64, modules int) string {
	return Generate(Config{Seed: seed, Modules: modules})
}

// Program generates a small translation unit (one to three modules)
// for differential conformance runs.
func Program(seed int64) string {
	r := rand.New(rand.NewSource(seed))
	return Generate(Config{Seed: r.Int63(), Modules: 1 + r.Intn(3)})
}

// Generate renders one translation unit under the config.
func Generate(cfg Config) string {
	n := cfg.Modules
	if n < 1 {
		n = 1
	}
	g := &gen{r: rand.New(rand.NewSource(cfg.Seed))}
	g.prelude()
	for i := 0; i < n; i++ {
		canWrap := !cfg.NoWrappers && len(g.mods) >= 2
		if canWrap && g.r.Intn(6) == 0 {
			g.wrapper(i)
		} else {
			g.leaf(i)
		}
	}
	return g.b.String()
}

// CorpusEntry names one committed generated program under
// testdata/corpus — the mini-corpus that seeds the parser and
// compiler fuzz targets.
type CorpusEntry struct {
	Name   string
	Config Config
}

// Corpus returns the fixed set of corpus entries. The committed files
// are pinned to the generator by TestCorpusPinned, so fuzz seeds never
// drift from what the generator produces.
func Corpus() []CorpusEntry {
	var cs []CorpusEntry
	for seed := int64(1); seed <= 8; seed++ {
		cs = append(cs, CorpusEntry{
			Name:   fmt.Sprintf("gen_s%d.ecl", seed),
			Config: Config{Seed: seed, Modules: 1 + int(seed)%3},
		})
	}
	return cs
}

// param is one interface signal of a generated module.
type param struct {
	name string
	pure bool
	in   bool
}

// modSig records a generated module's interface so later wrapper
// modules can instantiate it with matching arguments.
type modSig struct {
	name   string
	params []param
}

type gen struct {
	r      *rand.Rand
	b      strings.Builder
	consts []string // #define names usable as int operands
	mods   []modSig // instantiable modules generated so far
}

func (g *gen) pf(format string, args ...interface{}) {
	fmt.Fprintf(&g.b, format, args...)
}

// prelude emits a couple of macro constants the expression generator
// draws on, mirroring the #define-heavy style of real ECL sources.
func (g *gen) prelude() {
	n := 2 + g.r.Intn(2)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("GK%d", i)
		g.pf("#define %s %d\n", name, 1+g.r.Intn(12))
		g.consts = append(g.consts, name)
	}
	g.pf("\n")
}

// ---------------------------------------------------------------------------
// Expressions

// expr renders a random int expression over the given operand names
// (variables and readable valued signals). Division and modulo are
// excluded; every remaining operator wraps identically (int32) across
// the interpreter, the table backend, and generated C/Go.
func (g *gen) expr(depth int, operands []string) string {
	if depth <= 0 || g.r.Intn(3) == 0 {
		switch g.r.Intn(4) {
		case 0:
			return fmt.Sprintf("%d", g.r.Intn(17))
		case 1:
			return g.consts[g.r.Intn(len(g.consts))]
		default:
			if len(operands) == 0 {
				return fmt.Sprintf("%d", 1+g.r.Intn(9))
			}
			return operands[g.r.Intn(len(operands))]
		}
	}
	x := g.expr(depth-1, operands)
	y := g.expr(depth-1, operands)
	switch g.r.Intn(9) {
	case 0:
		return fmt.Sprintf("(%s + %s)", x, y)
	case 1:
		return fmt.Sprintf("(%s - %s)", x, y)
	case 2:
		return fmt.Sprintf("(%s * %s)", x, y)
	case 3:
		return fmt.Sprintf("(%s & %s)", x, y)
	case 4:
		return fmt.Sprintf("(%s | %s)", x, y)
	case 5:
		return fmt.Sprintf("(%s ^ %s)", x, y)
	case 6:
		return fmt.Sprintf("(%s < %s)", x, y)
	case 7:
		return fmt.Sprintf("(%s << %d)", x, g.r.Intn(4))
	default:
		return fmt.Sprintf("(%s >> %d)", x, 1+g.r.Intn(3))
	}
}

// dataStmts renders 1..3 pure-data statements over the mutable vars,
// reading from operands. ind is the indentation depth.
func (g *gen) dataStmts(ind int, vars, operands []string) {
	n := 1 + g.r.Intn(3)
	for i := 0; i < n; i++ {
		v := vars[g.r.Intn(len(vars))]
		switch g.r.Intn(5) {
		case 0: // bounded counter loop (extracted as a data function)
			g.pf("%sfor (t = 0; t < %d; t++) {\n", tabs(ind), 2+g.r.Intn(6))
			g.pf("%s%s = %s + %s;\n", tabs(ind+1), v, v, g.expr(1, append(operands, "t")))
			g.pf("%s}\n", tabs(ind))
		case 1: // guarded update
			g.pf("%sif (%s) {\n", tabs(ind), g.expr(1, operands))
			g.pf("%s%s = %s;\n", tabs(ind+1), v, g.expr(2, operands))
			g.pf("%s} else {\n", tabs(ind))
			g.pf("%s%s = %s;\n", tabs(ind+1), v, g.expr(1, operands))
			g.pf("%s}\n", tabs(ind))
		case 2: // draining while loop: halves each pass, so it terminates
			// in at most 31 iterations however large the value grew
			g.pf("%swhile (%s > 0) {\n", tabs(ind), v)
			g.pf("%s%s = %s >> 1;\n", tabs(ind+1), v, v)
			g.pf("%s}\n", tabs(ind))
		default:
			g.pf("%s%s = %s;\n", tabs(ind), v, g.expr(2, operands))
		}
	}
}

func tabs(n int) string { return strings.Repeat("    ", n) }

// ---------------------------------------------------------------------------
// Leaf modules

// leaf generates one self-contained module. The reactive skeleton is
// drawn from a handful of templates covering await/emit, preemption
// (abort, weak_abort with handler, suspend), par with local-signal
// communication, switch dispatch, and present tests.
func (g *gen) leaf(idx int) {
	name := fmt.Sprintf("gen%d", idx)
	tmpl := g.r.Intn(6)

	// Interface: templates fix the minimum shape, randomness adds to it.
	pins := []string{"pa"}
	if tmpl == 1 || g.r.Intn(2) == 0 {
		pins = append(pins, "pb")
	}
	var vins []string
	if tmpl == 3 || g.r.Intn(2) == 0 {
		vins = append(vins, "va")
	}
	vouts := []string{"oa"}
	if tmpl == 2 {
		vouts = append(vouts, "ob")
	}
	var pouts []string
	if g.r.Intn(2) == 0 {
		pouts = append(pouts, "qa")
	}

	var sig []string
	for _, p := range pins {
		sig = append(sig, "input pure "+p)
	}
	for _, v := range vins {
		sig = append(sig, "input int "+v)
	}
	for _, o := range vouts {
		sig = append(sig, "output int "+o)
	}
	for _, q := range pouts {
		sig = append(sig, "output pure "+q)
	}
	g.pf("module %s (%s)\n{\n", name, strings.Join(sig, ", "))

	// Variables: two mutable ints plus the dedicated data-loop counter.
	vars := []string{"x0", "x1"}
	for _, v := range vars {
		g.pf("    int %s = %d;\n", v, g.r.Intn(8))
	}
	g.pf("    int t;\n\n")

	switch tmpl {
	case 0: // plain await/react loop
		g.reactLoop(1, pins[0], vars, vins, vouts[0], pouts)
	case 1: // preemption around an inner react loop
		g.preemptLoop(1, pins, vars, vins, vouts[0], pouts)
	case 2: // par with local-signal hand-off between branches
		g.parBody(pins, vars, vins, vouts, pouts)
	case 3: // switch dispatch on a valued input
		g.switchLoop(1, vars, vins[0], vouts[0], pouts)
	case 4: // present test each instant
		g.presentLoop(1, pins[0], vars, vouts[0], pouts)
	default: // data-heavy reaction
		g.reactLoop(1, pins[0], vars, vins, vouts[0], pouts)
	}
	g.pf("}\n\n")

	g.mods = append(g.mods, modSig{name: name, params: collectParams(pins, vins, vouts, pouts)})
}

func collectParams(pins, vins, vouts, pouts []string) []param {
	var ps []param
	for _, p := range pins {
		ps = append(ps, param{name: p, pure: true, in: true})
	}
	for _, v := range vins {
		ps = append(ps, param{name: v, pure: false, in: true})
	}
	for _, o := range vouts {
		ps = append(ps, param{name: o, pure: false, in: false})
	}
	for _, q := range pouts {
		ps = append(ps, param{name: q, pure: true, in: false})
	}
	return ps
}

// reactLoop: while(1) { await(trigger); data; emit_v; [emit pure] }.
// When a valued input exists it becomes the trigger, so its value is
// only read in instants where it was just present.
func (g *gen) reactLoop(ind int, ptrig string, vars, vins []string, vout string, pouts []string) {
	trigger := ptrig
	operands := append([]string{}, vars...)
	if len(vins) > 0 && g.r.Intn(2) == 0 {
		trigger = vins[0]
		operands = append(operands, vins[0])
	}
	g.pf("%swhile (1) {\n", tabs(ind))
	g.pf("%sawait (%s);\n", tabs(ind+1), trigger)
	g.dataStmts(ind+1, vars, operands)
	g.pf("%semit_v (%s, %s);\n", tabs(ind+1), vout, g.expr(2, operands))
	if len(pouts) > 0 {
		g.pf("%sif (%s > %s) emit (%s);\n", tabs(ind+1), vars[0], vars[1], pouts[0])
	}
	g.pf("%s}\n", tabs(ind))
}

// preemptLoop: an inner react loop under abort/weak_abort/suspend,
// guarded by a pure input, re-armed by an outer await.
func (g *gen) preemptLoop(ind int, pins []string, vars, vins []string, vout string, pouts []string) {
	guard, inner := pins[0], pins[1]
	g.pf("%swhile (1) {\n", tabs(ind))
	g.pf("%sawait (%s);\n", tabs(ind+1), guard)
	g.pf("%sdo {\n", tabs(ind+1))
	g.reactLoop(ind+2, inner, vars, vins, vout, nil)
	kind := g.r.Intn(3)
	switch kind {
	case 0:
		g.pf("%s} abort (%s);\n", tabs(ind+1), guard)
	case 1:
		g.pf("%s} weak_abort (%s)", tabs(ind+1), guard)
		if len(pouts) > 0 {
			g.pf("\n%shandle {\n%semit (%s);\n%s}\n", tabs(ind+1), tabs(ind+2), pouts[0], tabs(ind+1))
		} else {
			g.pf(";\n")
		}
	default:
		g.pf("%s} suspend (%s);\n", tabs(ind+1), guard)
	}
	g.pf("%s}\n", tabs(ind))
}

// parBody: two branches with disjoint outputs; the first hands a pure
// local signal to the second, which only awaits it (delayed
// consumption — no causality cycle can close).
func (g *gen) parBody(pins []string, vars, vins, vouts, pouts []string) {
	g.pf("    signal pure lnk;\n\n")
	operands0 := []string{vars[0]}
	operands1 := append([]string{vars[1]}, vins...)
	trig1 := "lnk"
	if len(pins) > 1 && g.r.Intn(3) == 0 {
		trig1 = pins[1]
	}
	g.pf("    par {\n")
	// Branch 0: owns vouts[1] and the link signal, driven by pins[0].
	g.pf("        while (1) {\n")
	g.pf("            await (%s);\n", pins[0])
	g.pf("            %s = %s;\n", vars[0], g.expr(2, operands0))
	g.pf("            emit (lnk);\n")
	g.pf("            emit_v (%s, %s);\n", vouts[1], g.expr(1, operands0))
	g.pf("        }\n")
	// Branch 1: owns vouts[0] (and the pure outputs), driven by the link.
	g.pf("        while (1) {\n")
	g.pf("            await (%s);\n", trig1)
	g.dataStmts(3, []string{vars[1]}, operands1)
	g.pf("            emit_v (%s, %s);\n", vouts[0], g.expr(2, operands1))
	if len(pouts) > 0 {
		g.pf("            emit (%s);\n", pouts[0])
	}
	g.pf("        }\n")
	g.pf("    }\n")
}

// switchLoop: dispatch each reaction on the low bits of a valued input.
func (g *gen) switchLoop(ind int, vars []string, vin, vout string, pouts []string) {
	operands := append([]string{vin}, vars...)
	g.pf("%swhile (1) {\n", tabs(ind))
	g.pf("%sawait (%s);\n", tabs(ind+1), vin)
	g.pf("%sswitch (%s & 3) {\n", tabs(ind+1), vin)
	g.pf("%scase 0:\n", tabs(ind+1))
	g.pf("%s%s = %s;\n", tabs(ind+2), vars[0], g.expr(2, operands))
	g.pf("%sbreak;\n", tabs(ind+2))
	g.pf("%scase 1:\n%scase 2:\n", tabs(ind+1), tabs(ind+1))
	g.pf("%s%s = %s;\n", tabs(ind+2), vars[1], g.expr(2, operands))
	g.pf("%sbreak;\n", tabs(ind+2))
	g.pf("%sdefault:\n", tabs(ind+1))
	g.pf("%s%s = %d;\n", tabs(ind+2), vars[0], g.r.Intn(9))
	g.pf("%s}\n", tabs(ind+1))
	g.pf("%semit_v (%s, (%s + %s));\n", tabs(ind+1), vout, vars[0], vars[1])
	if len(pouts) > 0 {
		g.pf("%sif ((%s & 1) == 0) emit (%s);\n", tabs(ind+1), vin, pouts[0])
	}
	g.pf("%s}\n", tabs(ind))
}

// presentLoop: sample a pure input every instant and react to both
// presence and absence.
func (g *gen) presentLoop(ind int, pin string, vars []string, vout string, pouts []string) {
	g.pf("%swhile (1) {\n", tabs(ind))
	g.pf("%sawait ();\n", tabs(ind+1))
	g.pf("%spresent (%s) {\n", tabs(ind+1), pin)
	g.pf("%s%s = %s + %s;\n", tabs(ind+2), vars[0], vars[0], g.expr(1, vars))
	g.pf("%s} else {\n", tabs(ind+1))
	g.pf("%s%s = %s;\n", tabs(ind+2), vars[1], g.expr(1, vars))
	g.pf("%s}\n", tabs(ind+1))
	g.pf("%semit_v (%s, %s);\n", tabs(ind+1), vout, g.expr(2, vars))
	if len(pouts) > 0 {
		g.pf("%sif (%s == %s) emit (%s);\n", tabs(ind+1), vars[0], vars[1], pouts[0])
	}
	g.pf("%s}\n", tabs(ind))
}

// ---------------------------------------------------------------------------
// Wrapper modules (instantiation)

// wrapper generates a module that instantiates one or two previously
// generated modules in parallel, wiring each callee to a private set
// of fresh interface signals — directions and value types match by
// construction, and no two instances share a valued output.
func (g *gen) wrapper(idx int) {
	name := fmt.Sprintf("gen%d", idx)
	nc := 1
	if len(g.mods) >= 2 && g.r.Intn(2) == 0 {
		nc = 2
	}
	// Only instantiate small interfaces, so wrapper-of-wrapper chains
	// stay bounded.
	var callees []modSig
	for attempts := 0; len(callees) < nc && attempts < 8; attempts++ {
		c := g.mods[g.r.Intn(len(g.mods))]
		if len(c.params) <= 6 {
			callees = append(callees, c)
		}
	}
	if len(callees) == 0 {
		g.leaf(idx)
		return
	}

	var sig []string
	var params []param
	var calls []string
	for ci, c := range callees {
		var args []string
		for _, p := range c.params {
			fresh := fmt.Sprintf("c%d_%s", ci, p.name)
			args = append(args, fresh)
			params = append(params, param{name: fresh, pure: p.pure, in: p.in})
			dir, ty := "input", "int "
			if !p.in {
				dir = "output"
			}
			if p.pure {
				ty = "pure "
			}
			sig = append(sig, dir+" "+ty+fresh)
		}
		calls = append(calls, fmt.Sprintf("%s (%s);", c.name, strings.Join(args, ", ")))
	}
	g.pf("module %s (%s)\n{\n", name, strings.Join(sig, ", "))
	if len(calls) == 1 {
		g.pf("    %s\n", calls[0])
	} else {
		g.pf("    par {\n")
		for _, call := range calls {
			g.pf("        %s\n", call)
		}
		g.pf("    }\n")
	}
	g.pf("}\n\n")
	g.mods = append(g.mods, modSig{name: name, params: params})
}
