package benchfmt

import (
	"strings"
	"testing"
)

// sampleStream mirrors real `go test -bench -json` output, including
// the split the testing package produces between a benchmark's name
// event and its result event, a bare name announcement line, and
// interleaving between two packages.
const sampleStream = `
{"Action":"start","Package":"repro"}
{"Action":"output","Package":"repro","Output":"goos: linux\n"}
{"Action":"output","Package":"repro","Output":"BenchmarkStepPacket/interp\n"}
{"Action":"output","Package":"repro","Output":"BenchmarkStepPacket/interp-8 \t"}
{"Action":"output","Package":"other","Output":"BenchmarkUnrelated-8 \t"}
{"Action":"output","Package":"repro","Output":"       1\t   9305208 ns/op\t        64.00 instants/op\n"}
{"Action":"output","Package":"other","Output":"       2\t       100 ns/op\n"}
{"Action":"output","Package":"repro","Output":"BenchmarkStepPacket/efsm-8 \t       1\t    120000 ns/op\t        64.00 instants/op\t       0 B/op\t       0 allocs/op\n"}
{"Action":"output","Package":"repro","Output":"BenchmarkBatchSequential-8 \t       1\t  55000000 ns/op\t        10.00 modules\n"}
{"Action":"output","Package":"repro","Output":"ok  \trepro\t1.2s\n"}
not even json
{"Action":"pass","Package":"repro"}
`

func TestParseTestJSON(t *testing.T) {
	rep, err := ParseTestJSON(strings.NewReader(sampleStream))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4: %+v", len(rep.Benchmarks), rep.Benchmarks)
	}
	// Sorted by name; check the split-across-events one in detail.
	b := rep.Benchmarks[2]
	if b.Name != "BenchmarkStepPacket/interp-8" || b.Iters != 1 {
		t.Fatalf("benchmark = %+v", b)
	}
	if b.Metrics["ns/op"] != 9305208 || b.Metrics["instants/op"] != 64 {
		t.Fatalf("metrics = %+v", b.Metrics)
	}
	// -benchmem metrics ride along in the generic metric map.
	efsm := rep.Benchmarks[1]
	if efsm.Name != "BenchmarkStepPacket/efsm-8" {
		t.Fatalf("benchmark = %+v", efsm)
	}
	if v, ok := efsm.Metrics["allocs/op"]; !ok || v != 0 {
		t.Fatalf("allocs/op not carried: %+v", efsm.Metrics)
	}
}

func TestCheckZeroAlloc(t *testing.T) {
	mk := func(metrics map[string]float64) *Report {
		return &Report{Version: Version, Benchmarks: []Benchmark{
			{Name: "BenchmarkStepPacket/efsm-table-8", Iters: 1, Metrics: metrics},
		}}
	}
	names := []string{"BenchmarkStepPacket/efsm-table"}

	if err := CheckZeroAlloc(mk(map[string]float64{"ns/op": 100, "allocs/op": 0}), names); err != nil {
		t.Fatalf("clean artifact rejected: %v", err)
	}
	if err := CheckZeroAlloc(mk(map[string]float64{"ns/op": 100, "allocs/op": 2}), names); err == nil ||
		!strings.Contains(err.Error(), "allocates") {
		t.Fatalf("allocating benchmark not flagged: %v", err)
	}
	if err := CheckZeroAlloc(mk(map[string]float64{"ns/op": 100}), names); err == nil ||
		!strings.Contains(err.Error(), "benchmem") {
		t.Fatalf("missing metric not flagged: %v", err)
	}
	if err := CheckZeroAlloc(&Report{Version: Version}, names); err == nil ||
		!strings.Contains(err.Error(), "not in artifact") {
		t.Fatalf("missing benchmark not flagged: %v", err)
	}
}

func TestCheckSpeedups(t *testing.T) {
	mk := func(slowNs, fastNs float64) *Report {
		return &Report{Version: Version, Benchmarks: []Benchmark{
			{Name: "BenchmarkMegaDesignBatch/per-module-8", Iters: 1, Metrics: map[string]float64{"ns/op": slowNs}},
			{Name: "BenchmarkMegaDesignBatch/shared-8", Iters: 1, Metrics: map[string]float64{"ns/op": fastNs}},
		}}
	}
	gates := []SpeedupGate{{
		Slow: "BenchmarkMegaDesignBatch/per-module",
		Fast: "BenchmarkMegaDesignBatch/shared",
		Min:  3,
	}}

	if err := CheckSpeedups(mk(10_000, 1_000), gates); err != nil {
		t.Fatalf("10x speedup rejected: %v", err)
	}
	if err := CheckSpeedups(mk(2_000, 1_000), gates); err == nil ||
		!strings.Contains(err.Error(), "only 2.00x") {
		t.Fatalf("2x speedup not flagged: %v", err)
	}
	if err := CheckSpeedups(&Report{Version: Version}, gates); err == nil ||
		!strings.Contains(err.Error(), "not in artifact") {
		t.Fatalf("missing benchmark not flagged: %v", err)
	}
	missingNs := &Report{Version: Version, Benchmarks: []Benchmark{
		{Name: "BenchmarkMegaDesignBatch/per-module-8", Iters: 1, Metrics: map[string]float64{"modules": 1000}},
		{Name: "BenchmarkMegaDesignBatch/shared-8", Iters: 1, Metrics: map[string]float64{"ns/op": 1}},
	}}
	if err := CheckSpeedups(missingNs, gates); err == nil ||
		!strings.Contains(err.Error(), "ns/op") {
		t.Fatalf("missing ns/op not flagged: %v", err)
	}
}

func TestParseTestJSONRoundTrip(t *testing.T) {
	rep, err := ParseTestJSON(strings.NewReader(sampleStream))
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := rep.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadReport(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Benchmarks) != len(rep.Benchmarks) {
		t.Fatalf("round trip lost benchmarks: %d != %d", len(back.Benchmarks), len(rep.Benchmarks))
	}
}

func TestParseTestJSONEmpty(t *testing.T) {
	if _, err := ParseTestJSON(strings.NewReader(`{"Action":"pass"}`)); err == nil {
		t.Fatal("want error for a stream with no benchmarks")
	}
}

func report(costs map[string]float64) *Report {
	r := &Report{Version: Version}
	for name, ns := range costs {
		r.Benchmarks = append(r.Benchmarks, Benchmark{
			Name: name, Iters: 1,
			Metrics: map[string]float64{"ns/op": ns * 64, "instants/op": 64},
		})
	}
	return r
}

func TestCompareStep(t *testing.T) {
	old := report(map[string]float64{
		"BenchmarkStepPacket/interp-8": 1000,
		"BenchmarkStepPacket/efsm-8":   100,
		"BenchmarkOther-8":             5,
	})

	t.Run("unchanged passes", func(t *testing.T) {
		cmp, err := CompareStep(old, report(map[string]float64{
			"BenchmarkStepPacket/interp-4": 1000, // different core count still matches
			"BenchmarkStepPacket/efsm-4":   100,
		}), 30)
		if err != nil {
			t.Fatal(err)
		}
		if cmp.Regressed || len(cmp.Ratios) != 2 || cmp.GeoMean < 0.99 || cmp.GeoMean > 1.01 {
			t.Fatalf("cmp = %+v", cmp)
		}
	})

	t.Run("broad slowdown fails", func(t *testing.T) {
		cmp, err := CompareStep(old, report(map[string]float64{
			"BenchmarkStepPacket/interp-8": 1500,
			"BenchmarkStepPacket/efsm-8":   150,
		}), 30)
		if err != nil {
			t.Fatal(err)
		}
		if !cmp.Regressed {
			t.Fatalf("1.5x slowdown not flagged: %+v", cmp)
		}
		if !strings.Contains(cmp.Format(), "REGRESSED") {
			t.Fatalf("format lacks verdict: %s", cmp.Format())
		}
	})

	t.Run("one noisy backend does not fail the geomean", func(t *testing.T) {
		cmp, err := CompareStep(old, report(map[string]float64{
			"BenchmarkStepPacket/interp-8": 1400, // 1.4x on one
			"BenchmarkStepPacket/efsm-8":   100,  // flat on the other
		}), 30)
		if err != nil {
			t.Fatal(err)
		}
		if cmp.Regressed {
			t.Fatalf("geomean %.2f wrongly regressed: %+v", cmp.GeoMean, cmp)
		}
	})

	t.Run("renamed baseline benchmark errors", func(t *testing.T) {
		// efsm regressed out of existence (renamed/deleted) while
		// interp slows 1.25x: the gate must refuse, not pass at 1.25.
		_, err := CompareStep(old, report(map[string]float64{
			"BenchmarkStepPacket/interp-8":  1250,
			"BenchmarkStepPacket/renamed-8": 100,
		}), 30)
		if err == nil || !strings.Contains(err.Error(), "BenchmarkStepPacket/efsm") {
			t.Fatalf("missing baseline benchmark not reported: %v", err)
		}
	})

	t.Run("no common step benchmarks errors", func(t *testing.T) {
		if _, err := CompareStep(old, report(map[string]float64{"BenchmarkRenamed-8": 1}), 30); err == nil {
			t.Fatal("want error when the gate has nothing to compare")
		}
	})
}
