// Package benchfmt converts `go test -bench -json` output into the
// compact benchmark artifact CI commits per PR (BENCH_PR<k>.json) and
// compares two artifacts for Step-throughput regressions.
//
// The artifact is a single JSON object listing every benchmark with
// its iteration count and metric map (ns/op plus any testing.B
// ReportMetric units). The regression check focuses on the
// Step-throughput benchmarks (BenchmarkStepPacket/<backend>): each
// backend's per-instant cost is ns/op divided by its instants/op
// metric, and the verdict is the geometric mean of the new/old ratios,
// so one noisy backend cannot hide a broad slowdown (or fabricate
// one).
package benchfmt

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Version is the artifact schema version.
const Version = 1

// StepBenchPrefix selects the benchmarks whose throughput the
// regression gate tracks.
const StepBenchPrefix = "BenchmarkStepPacket/"

// ZeroAllocBenches lists the benchmarks the gate requires to report 0
// allocs/op (so the bench run must pass -benchmem). The table backend
// advertises an allocation-free hot path; any alloc that creeps in is
// a regression even when throughput looks fine.
var ZeroAllocBenches = []string{
	StepBenchPrefix + "efsm-table",
}

// Benchmark is one benchmark result.
type Benchmark struct {
	Name    string             `json:"name"`
	Iters   int64              `json:"iters"`
	Metrics map[string]float64 `json:"metrics"`
}

// Report is the committed benchmark artifact.
type Report struct {
	Version    int         `json:"version"`
	GoOS       string      `json:"goos,omitempty"`
	GoArch     string      `json:"goarch,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// benchLine matches a benchmark result line: name, iteration count,
// then value/unit pairs.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.+)$`)

// ParseBenchLine parses one textual benchmark result line
// ("BenchmarkX-8  10  123 ns/op  64.0 instants/op"), reporting ok =
// false for non-benchmark lines.
func ParseBenchLine(line string) (Benchmark, bool) {
	m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
	if m == nil {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(m[2], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	fields := strings.Fields(m[3])
	if len(fields) == 0 || len(fields)%2 != 0 {
		return Benchmark{}, false
	}
	b := Benchmark{Name: m[1], Iters: iters, Metrics: make(map[string]float64, len(fields)/2)}
	for i := 0; i < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}

// ParseTestJSON reads a `go test -json` event stream and collects
// every benchmark result line into a Report stamped with the host
// platform. The testing package writes a benchmark's name and its
// timing as separate output events, so events are reassembled into
// whole lines per package before parsing.
func ParseTestJSON(r io.Reader) (*Report, error) {
	type event struct {
		Action  string `json:"Action"`
		Package string `json:"Package"`
		Output  string `json:"Output"`
	}
	rep := &Report{Version: Version, GoOS: runtime.GOOS, GoArch: runtime.GOARCH}
	partial := map[string]string{} // package -> unterminated output tail
	take := func(pkg, out string) {
		buf := partial[pkg] + out
		for {
			nl := strings.IndexByte(buf, '\n')
			if nl < 0 {
				break
			}
			if b, ok := ParseBenchLine(buf[:nl]); ok {
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
			buf = buf[nl+1:]
		}
		partial[pkg] = buf
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var ev event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			// Tolerate interleaved non-JSON noise (build output).
			continue
		}
		if ev.Action == "output" {
			take(ev.Package, ev.Output)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rep.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark results in input (was it `go test -bench -json` output?)")
	}
	sort.Slice(rep.Benchmarks, func(i, j int) bool {
		return rep.Benchmarks[i].Name < rep.Benchmarks[j].Name
	})
	return rep, nil
}

// Write serializes the artifact (stable field order, indented for
// reviewable diffs).
func (r *Report) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadReport parses a committed artifact.
func ReadReport(r io.Reader) (*Report, error) {
	var rep Report
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return nil, err
	}
	if rep.Version != Version {
		return nil, fmt.Errorf("artifact version %d not supported (want %d)", rep.Version, Version)
	}
	return &rep, nil
}

// stepCost returns a benchmark's per-instant step cost in ns, or ok =
// false if it is not a Step benchmark.
func stepCost(b Benchmark) (float64, bool) {
	if !strings.HasPrefix(b.Name, StepBenchPrefix) {
		return 0, false
	}
	ns, ok := b.Metrics["ns/op"]
	if !ok || ns <= 0 {
		return 0, false
	}
	if instants, ok := b.Metrics["instants/op"]; ok && instants > 0 {
		return ns / instants, true
	}
	return ns, true
}

// baseName strips the trailing -<GOMAXPROCS> suffix so artifacts from
// hosts with different core counts compare.
func baseName(name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

// Ratio is one matched Step benchmark's new/old cost ratio.
type Ratio struct {
	Name     string
	Old, New float64 // ns per instant
	Ratio    float64
}

// Comparison is the regression verdict over two artifacts.
type Comparison struct {
	Ratios []Ratio
	// GeoMean is the geometric mean of the ratios (1.0 = unchanged,
	// 1.3 = 30% slower).
	GeoMean float64
	// Threshold is the ratio above which Regressed is set.
	Threshold float64
	Regressed bool
}

// CompareStep compares Step-throughput between two artifacts.
// maxRegressPercent is the allowed slowdown (30 means fail above
// 1.30x). Every Step benchmark in the old artifact must appear in the
// new one — the gate must not silently pass because a benchmark was
// renamed or deleted (which would drop its regression out of the
// geomean).
func CompareStep(old, new *Report, maxRegressPercent float64) (*Comparison, error) {
	oldCost := map[string]float64{}
	for _, b := range old.Benchmarks {
		if c, ok := stepCost(b); ok {
			oldCost[baseName(b.Name)] = c
		}
	}
	cmp := &Comparison{Threshold: 1 + maxRegressPercent/100}
	logSum := 0.0
	matched := map[string]bool{}
	for _, b := range new.Benchmarks {
		c, ok := stepCost(b)
		if !ok {
			continue
		}
		name := baseName(b.Name)
		oc, ok := oldCost[name]
		if !ok || oc <= 0 {
			continue
		}
		matched[name] = true
		r := Ratio{Name: name, Old: oc, New: c, Ratio: c / oc}
		cmp.Ratios = append(cmp.Ratios, r)
		logSum += math.Log(r.Ratio)
	}
	if len(cmp.Ratios) == 0 {
		return nil, fmt.Errorf("no Step benchmarks (%s*) in common between the artifacts", StepBenchPrefix)
	}
	var missing []string
	for name := range oldCost {
		if !matched[name] {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		return nil, fmt.Errorf("baseline Step benchmarks missing from the new artifact (renamed or deleted?): %s",
			strings.Join(missing, ", "))
	}
	cmp.GeoMean = math.Exp(logSum / float64(len(cmp.Ratios)))
	cmp.Regressed = cmp.GeoMean > cmp.Threshold
	return cmp, nil
}

// SpeedupGate requires one benchmark in an artifact to be at least Min
// times faster (by ns/op) than another in the same artifact. Unlike
// CompareStep this is an intra-artifact invariant — "the shared front
// end beats the per-module front end" must hold on every host, not
// relative to a baseline commit.
type SpeedupGate struct {
	// Slow and Fast name the two benchmarks (base names, without the
	// -<GOMAXPROCS> suffix).
	Slow, Fast string
	// Min is the minimum required Slow/Fast ns-per-op ratio.
	Min float64
}

// SpeedupGates lists the intra-artifact speedup invariants the bench
// gate enforces: batch compilation of a generated mega-design with the
// file-level shared front end must beat the per-module front end by at
// least 3x (measured well above 100x on one core — the baseline
// re-parses the whole file per module).
var SpeedupGates = []SpeedupGate{
	{Slow: "BenchmarkMegaDesignBatch/per-module", Fast: "BenchmarkMegaDesignBatch/shared", Min: 3},
}

// CheckSpeedups verifies every gate against one artifact. A missing
// benchmark or a missing ns/op metric is an error — the gate must not
// silently pass because the measurement was never taken.
func CheckSpeedups(rep *Report, gates []SpeedupGate) error {
	byBase := map[string]Benchmark{}
	for _, b := range rep.Benchmarks {
		byBase[baseName(b.Name)] = b
	}
	nsOf := func(name string) (float64, error) {
		b, ok := byBase[name]
		if !ok {
			return 0, fmt.Errorf("speedup gate: benchmark %s not in artifact", name)
		}
		ns, ok := b.Metrics["ns/op"]
		if !ok || ns <= 0 {
			return 0, fmt.Errorf("speedup gate: %s has no usable ns/op metric", name)
		}
		return ns, nil
	}
	for _, g := range gates {
		slow, err := nsOf(g.Slow)
		if err != nil {
			return err
		}
		fast, err := nsOf(g.Fast)
		if err != nil {
			return err
		}
		if ratio := slow / fast; ratio < g.Min {
			return fmt.Errorf("speedup gate: %s is only %.2fx faster than %s (want >= %.1fx)",
				g.Fast, ratio, g.Slow, g.Min)
		}
	}
	return nil
}

// CheckZeroAlloc verifies that every named benchmark appears in the
// artifact and reports an allocs/op metric of exactly zero. A missing
// benchmark or a missing allocs/op metric (bench run without
// -benchmem) is an error too — the gate must not silently pass because
// the measurement was never taken.
func CheckZeroAlloc(rep *Report, names []string) error {
	byBase := map[string]Benchmark{}
	for _, b := range rep.Benchmarks {
		byBase[baseName(b.Name)] = b
	}
	for _, name := range names {
		b, ok := byBase[name]
		if !ok {
			return fmt.Errorf("zero-alloc gate: benchmark %s not in artifact", name)
		}
		allocs, ok := b.Metrics["allocs/op"]
		if !ok {
			return fmt.Errorf("zero-alloc gate: %s has no allocs/op metric (bench run without -benchmem?)", name)
		}
		if allocs != 0 {
			return fmt.Errorf("zero-alloc gate: %s allocates %.0f allocs/op, want 0", name, allocs)
		}
	}
	return nil
}

// Format renders the comparison for CI logs.
func (c *Comparison) Format() string {
	var b strings.Builder
	for _, r := range c.Ratios {
		fmt.Fprintf(&b, "  %-40s %10.1f -> %10.1f ns/instant  (%.2fx)\n", r.Name, r.Old, r.New, r.Ratio)
	}
	verdict := "ok"
	if c.Regressed {
		verdict = "REGRESSED"
	}
	fmt.Fprintf(&b, "Step-throughput geomean: %.2fx (threshold %.2fx): %s\n", c.GeoMean, c.Threshold, verdict)
	return b.String()
}
