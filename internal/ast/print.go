package ast

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/token"
)

// Fprint writes a canonical source rendering of the node to w. The
// output parses back to an equivalent tree, which the parser tests
// check by printing twice.
func Fprint(w io.Writer, n Node) error {
	p := &printer{w: w}
	p.node(n)
	return p.err
}

// String returns the canonical source rendering of the node.
func String(n Node) string {
	var b strings.Builder
	_ = Fprint(&b, n)
	return b.String()
}

type printer struct {
	w      io.Writer
	indent int
	err    error
}

func (p *printer) printf(format string, args ...interface{}) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

func (p *printer) line(format string, args ...interface{}) {
	p.printf("%s", strings.Repeat("    ", p.indent))
	p.printf(format, args...)
	p.printf("\n")
}

func (p *printer) node(n Node) {
	switch n := n.(type) {
	case *File:
		for i, d := range n.Decls {
			if i > 0 {
				p.printf("\n")
			}
			p.node(d)
		}
	case Decl:
		p.decl(n)
	case Stmt:
		p.stmt(n)
	case Expr:
		p.printf("%s", exprString(n))
	case TypeExpr:
		p.printf("%s", TypeString(n))
	default:
		p.printf("/* unknown node %T */", n)
	}
}

// ---------------------------------------------------------------------------
// Declarations

func (p *printer) decl(d Decl) {
	switch d := d.(type) {
	case *TypedefDecl:
		if at, ok := d.Type.(*ArrayType); ok {
			p.line("typedef %s %s[%s];", TypeString(at.Elem), d.Name, exprString(at.Len))
		} else {
			p.line("typedef %s %s;", TypeString(d.Type), d.Name)
		}
	case *TypeDecl:
		p.line("%s;", TypeString(d.Type))
	case *GlobalVarDecl:
		p.line("%s", varDeclString(d.Var))
	case *FuncDecl:
		var params []string
		for _, prm := range d.Params {
			params = append(params, fmt.Sprintf("%s %s", TypeString(prm.Type), prm.Name))
		}
		if len(params) == 0 {
			params = append(params, "void")
		}
		p.line("%s %s(%s)", TypeString(d.Ret), d.Name, strings.Join(params, ", "))
		p.stmt(d.Body)
	case *ModuleDecl:
		var params []string
		for _, sp := range d.Params {
			params = append(params, sigParamString(sp))
		}
		p.line("module %s(%s)", d.Name, strings.Join(params, ", "))
		p.stmt(d.Body)
	default:
		p.line("/* unknown decl %T */", d)
	}
}

func sigParamString(sp *SigParam) string {
	var b strings.Builder
	b.WriteString(sp.Dir.String())
	b.WriteByte(' ')
	if sp.Pure {
		b.WriteString("pure ")
	} else {
		b.WriteString(TypeString(sp.Type))
		b.WriteByte(' ')
	}
	b.WriteString(sp.Name)
	return b.String()
}

func varDeclString(v *VarDecl) string {
	var b strings.Builder
	if at, ok := v.Type.(*ArrayType); ok {
		// Unwrap nested arrays: innermost element first, dims after name.
		elem, dims := unwrapArray(at)
		fmt.Fprintf(&b, "%s %s", TypeString(elem), v.Name)
		for _, d := range dims {
			fmt.Fprintf(&b, "[%s]", exprString(d))
		}
	} else {
		fmt.Fprintf(&b, "%s %s", TypeString(v.Type), v.Name)
	}
	if v.Init != nil {
		fmt.Fprintf(&b, " = %s", exprString(v.Init))
	}
	b.WriteByte(';')
	return b.String()
}

func unwrapArray(t TypeExpr) (TypeExpr, []Expr) {
	var dims []Expr
	for {
		at, ok := t.(*ArrayType)
		if !ok {
			return t, dims
		}
		dims = append(dims, at.Len)
		t = at.Elem
	}
}

// TypeString renders a syntactic type expression as C source.
func TypeString(t TypeExpr) string {
	switch t := t.(type) {
	case nil:
		return "/*nil-type*/"
	case *BuiltinType:
		return t.Kind.String()
	case *NamedType:
		return t.Name
	case *PointerType:
		return TypeString(t.Elem) + " *"
	case *ArrayType:
		return fmt.Sprintf("%s[%s]", TypeString(t.Elem), exprString(t.Len))
	case *EnumType:
		if t.Items == nil {
			return "enum " + t.Tag
		}
		var b strings.Builder
		b.WriteString("enum ")
		if t.Tag != "" {
			b.WriteString(t.Tag + " ")
		}
		b.WriteString("{ ")
		for i, it := range t.Items {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(it.Name)
			if it.Value != nil {
				b.WriteString(" = " + exprString(it.Value))
			}
		}
		b.WriteString(" }")
		return b.String()
	case *StructType:
		kw := "struct"
		if t.Union {
			kw = "union"
		}
		if t.Fields == nil {
			return kw + " " + t.Tag
		}
		var b strings.Builder
		b.WriteString(kw)
		if t.Tag != "" {
			b.WriteString(" " + t.Tag)
		}
		b.WriteString(" { ")
		for _, f := range t.Fields {
			elem, dims := f.Type, f.Dims
			fmt.Fprintf(&b, "%s %s", TypeString(elem), f.Name)
			for _, d := range dims {
				fmt.Fprintf(&b, "[%s]", exprString(d))
			}
			b.WriteString("; ")
		}
		b.WriteString("}")
		return b.String()
	}
	return fmt.Sprintf("/*type %T*/", t)
}

// ---------------------------------------------------------------------------
// Statements

func (p *printer) stmt(s Stmt) {
	switch s := s.(type) {
	case *Block:
		p.line("{")
		p.indent++
		for _, st := range s.Stmts {
			p.stmt(st)
		}
		p.indent--
		p.line("}")
	case *VarDecl:
		p.line("%s", varDeclString(s))
	case *SignalDecl:
		if s.Pure {
			p.line("signal pure %s;", s.Name)
		} else {
			p.line("signal %s %s;", TypeString(s.Type), s.Name)
		}
	case *ExprStmt:
		p.line("%s;", exprString(s.X))
	case *Empty:
		p.line(";")
	case *If:
		p.line("if (%s)", exprString(s.Cond))
		p.indentedStmt(s.Then)
		if s.Else != nil {
			p.line("else")
			p.indentedStmt(s.Else)
		}
	case *While:
		p.line("while (%s)", exprString(s.Cond))
		p.indentedStmt(s.Body)
	case *DoWhile:
		p.line("do")
		p.indentedStmt(s.Body)
		p.line("while (%s);", exprString(s.Cond))
	case *For:
		init, post := "", ""
		if s.Init != nil {
			init = strings.TrimSuffix(strings.TrimSpace(stmtOneLine(s.Init)), ";")
		}
		cond := ""
		if s.Cond != nil {
			cond = exprString(s.Cond)
		}
		if s.Post != nil {
			post = strings.TrimSuffix(strings.TrimSpace(stmtOneLine(s.Post)), ";")
		}
		p.line("for (%s; %s; %s)", init, cond, post)
		p.indentedStmt(s.Body)
	case *Switch:
		p.line("switch (%s) {", exprString(s.Tag))
		for _, c := range s.Cases {
			if c.Values == nil {
				p.line("default:")
			} else {
				for _, v := range c.Values {
					p.line("case %s:", exprString(v))
				}
			}
			p.indent++
			for _, st := range c.Body {
				p.stmt(st)
			}
			p.indent--
		}
		p.line("}")
	case *Break:
		p.line("break;")
	case *Continue:
		p.line("continue;")
	case *Return:
		if s.X != nil {
			p.line("return %s;", exprString(s.X))
		} else {
			p.line("return;")
		}
	case *Emit:
		if s.Value != nil {
			p.line("emit_v(%s, %s);", s.Signal.Name, exprString(s.Value))
		} else {
			p.line("emit(%s);", s.Signal.Name)
		}
	case *Await:
		if s.Sig == nil {
			p.line("await();")
		} else {
			p.line("await(%s);", exprString(s.Sig))
		}
	case *Halt:
		p.line("halt();")
	case *Present:
		p.line("present (%s)", exprString(s.Sig))
		p.indentedStmt(s.Then)
		if s.Else != nil {
			p.line("else")
			p.indentedStmt(s.Else)
		}
	case *DoPreempt:
		p.line("do")
		p.indentedStmt(s.Body)
		p.line("%s (%s)%s", s.Kind, exprString(s.Sig), map[bool]string{true: "", false: ";"}[s.Handler != nil])
		if s.Handler != nil {
			p.line("handle")
			p.indentedStmt(s.Handler)
		}
	case *Par:
		p.line("par {")
		p.indent++
		for _, b := range s.Branches {
			p.stmt(b)
		}
		p.indent--
		p.line("}")
	default:
		p.line("/* unknown stmt %T */", s)
	}
}

// indentedStmt prints blocks flush and other statements indented one level.
func (p *printer) indentedStmt(s Stmt) {
	if _, ok := s.(*Block); ok {
		p.stmt(s)
		return
	}
	p.indent++
	p.stmt(s)
	p.indent--
}

func stmtOneLine(s Stmt) string {
	var b strings.Builder
	pp := &printer{w: &b}
	pp.stmt(s)
	return strings.TrimSpace(strings.ReplaceAll(b.String(), "\n", " "))
}

// ---------------------------------------------------------------------------
// Expressions

// ExprString renders an expression as C source.
func ExprString(e Expr) string { return exprString(e) }

func exprString(e Expr) string {
	switch e := e.(type) {
	case nil:
		return "/*nil*/"
	case *Ident:
		return e.Name
	case *BasicLit:
		return e.Value
	case *Unary:
		op := e.Op.String()
		if e.Op == token.TILDE {
			op = "~"
		}
		return op + exprString(e.X)
	case *Postfix:
		return exprString(e.X) + e.Op.String()
	case *Binary:
		return fmt.Sprintf("(%s %s %s)", exprString(e.X), e.Op, exprString(e.Y))
	case *Assign:
		return fmt.Sprintf("%s %s %s", exprString(e.LHS), e.Op, exprString(e.RHS))
	case *Cond:
		return fmt.Sprintf("(%s ? %s : %s)", exprString(e.CondX), exprString(e.Then), exprString(e.Else))
	case *Call:
		var args []string
		for _, a := range e.Args {
			args = append(args, exprString(a))
		}
		return fmt.Sprintf("%s(%s)", e.Fun.Name, strings.Join(args, ", "))
	case *Index:
		return fmt.Sprintf("%s[%s]", exprString(e.X), exprString(e.Sub))
	case *Member:
		sep := "."
		if e.Arrow {
			sep = "->"
		}
		return exprString(e.X) + sep + e.Name
	case *Cast:
		return fmt.Sprintf("(%s) %s", TypeString(e.Type), exprString(e.X))
	case *SizeofExpr:
		if e.Type != nil {
			return fmt.Sprintf("sizeof(%s)", TypeString(e.Type))
		}
		return fmt.Sprintf("sizeof(%s)", exprString(e.X))
	case *Paren:
		switch e.X.(type) {
		case *Binary, *Cond:
			// These already print parenthesized.
			return exprString(e.X)
		}
		return "(" + exprString(e.X) + ")"
	}
	return fmt.Sprintf("/*expr %T*/", e)
}
