package ast_test

import (
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/paperex"
	"repro/internal/parser"
	"repro/internal/pp"
	"repro/internal/source"
)

// parse runs the real front-end order: preprocess, then parse.
func parse(t *testing.T, name, src string) *ast.File {
	t.Helper()
	var diags source.DiagList
	expanded := pp.New(&diags, pp.MapResolver(nil)).Expand(source.NewFile(name, src))
	f := parser.ParseFile(expanded, &diags)
	if diags.HasErrors() {
		t.Fatalf("%s: %v", name, diags.Err())
	}
	return f
}

// TestPrintReparseRoundTrip checks that the printer emits valid ECL:
// printing a parsed file, reparsing the output, and printing again
// must reach a fixed point.
func TestPrintReparseRoundTrip(t *testing.T) {
	cases := []struct{ name, src string }{
		{"abro.ecl", paperex.ABRO},
		{"runner.ecl", paperex.RunnerStop},
		{"stack.ecl", paperex.Stack},
		{"buffer.ecl", paperex.Buffer},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			first := ast.String(parse(t, tc.name, tc.src))
			second := ast.String(parse(t, "printed:"+tc.name, first))
			if first != second {
				t.Errorf("print -> reparse -> print is not a fixed point:\n--- first ---\n%s\n--- second ---\n%s",
					first, second)
			}
		})
	}
}

// TestPrintKeepsDeclarations spot-checks that printing preserves the
// declarations the paper's figures rely on.
func TestPrintKeepsDeclarations(t *testing.T) {
	f := parse(t, "stack.ecl", paperex.Stack)
	text := ast.String(f)
	for _, want := range []string{
		"module assemble", "module checkcrc", "module prochdr", "module toplevel",
		"typedef", "signal",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("printed file lacks %q", want)
		}
	}
}

// TestPrintModulesIndividually round-trips each module declaration on
// its own (the printer must not depend on file context).
func TestPrintModulesIndividually(t *testing.T) {
	f := parse(t, "buffer.ecl", paperex.Buffer)
	if len(f.Modules()) != 4 {
		t.Fatalf("modules = %d", len(f.Modules()))
	}
	for _, m := range f.Modules() {
		if s := ast.String(m); !strings.Contains(s, "module "+m.Name) {
			t.Errorf("module %s prints wrong:\n%s", m.Name, s)
		}
	}
}
