// Package ast defines the abstract syntax tree for ECL: the supported
// C subset (declarations, statements, expressions, types) extended
// with ECL's reactive constructs — modules, signals, emit, await,
// halt, present, do/abort, do/weak_abort, do/suspend, and par.
package ast

import (
	"repro/internal/source"
	"repro/internal/token"
)

// Node is implemented by every AST node.
type Node interface {
	Pos() source.Pos
}

// Expr is implemented by all expression nodes.
type Expr interface {
	Node
	exprNode()
}

// Stmt is implemented by all statement nodes.
type Stmt interface {
	Node
	stmtNode()
}

// Decl is implemented by all top-level declaration nodes.
type Decl interface {
	Node
	declNode()
}

// TypeExpr is implemented by syntactic type expressions.
type TypeExpr interface {
	Node
	typeNode()
}

// ---------------------------------------------------------------------------
// Expressions

// Ident is a name: a variable, signal, function, module, or type name.
type Ident struct {
	NamePos source.Pos
	Name    string
}

// BasicLit is an integer, float, char, or string literal.
type BasicLit struct {
	LitPos source.Pos
	Kind   token.Kind // token.INT, token.FLOAT, token.CHAR, token.STRING
	Value  string     // literal text as written
}

// Unary is a prefix operator expression: -x, +x, !x, ~x, ++x, --x, &x, *x.
type Unary struct {
	OpPos source.Pos
	Op    token.Kind
	X     Expr
}

// Postfix is a postfix increment or decrement: x++, x--.
type Postfix struct {
	X  Expr
	Op token.Kind // token.INC or token.DEC
}

// Binary is a binary operator expression.
type Binary struct {
	X  Expr
	Op token.Kind
	Y  Expr
}

// Assign is an assignment expression: lhs = rhs, lhs += rhs, etc.
type Assign struct {
	LHS Expr
	Op  token.Kind // token.ASSIGN or a compound-assignment kind
	RHS Expr
}

// Cond is the ternary conditional: cond ? then : else.
type Cond struct {
	CondX Expr
	Then  Expr
	Else  Expr
}

// Call is a function call or, when the callee names a module, a module
// instantiation (distinguished during semantic analysis).
type Call struct {
	Fun  *Ident
	Args []Expr
}

// Index is an array subscript: x[i].
type Index struct {
	X   Expr
	Sub Expr
}

// Member is a field selection: x.f or x->f.
type Member struct {
	X     Expr
	Name  string
	Arrow bool
}

// Cast is a C cast: (type) x.
type Cast struct {
	LP   source.Pos
	Type TypeExpr
	X    Expr
}

// SizeofExpr is sizeof(type) or sizeof(expr).
type SizeofExpr struct {
	KwPos source.Pos
	Type  TypeExpr // exactly one of Type, X is set
	X     Expr
}

// Paren is a parenthesized expression, retained for faithful printing.
type Paren struct {
	LP source.Pos
	X  Expr
}

// Pos implementations for expressions.

// Pos returns the position of the identifier.
func (e *Ident) Pos() source.Pos { return e.NamePos }

// Pos returns the position of the literal.
func (e *BasicLit) Pos() source.Pos { return e.LitPos }

// Pos returns the position of the operator.
func (e *Unary) Pos() source.Pos { return e.OpPos }

// Pos returns the position of the operand.
func (e *Postfix) Pos() source.Pos { return e.X.Pos() }

// Pos returns the position of the left operand.
func (e *Binary) Pos() source.Pos { return e.X.Pos() }

// Pos returns the position of the left-hand side.
func (e *Assign) Pos() source.Pos { return e.LHS.Pos() }

// Pos returns the position of the condition.
func (e *Cond) Pos() source.Pos { return e.CondX.Pos() }

// Pos returns the position of the callee.
func (e *Call) Pos() source.Pos { return e.Fun.Pos() }

// Pos returns the position of the indexed expression.
func (e *Index) Pos() source.Pos { return e.X.Pos() }

// Pos returns the position of the selected expression.
func (e *Member) Pos() source.Pos { return e.X.Pos() }

// Pos returns the position of the opening parenthesis.
func (e *Cast) Pos() source.Pos { return e.LP }

// Pos returns the position of the sizeof keyword.
func (e *SizeofExpr) Pos() source.Pos { return e.KwPos }

// Pos returns the position of the opening parenthesis.
func (e *Paren) Pos() source.Pos { return e.LP }

func (*Ident) exprNode()      {}
func (*BasicLit) exprNode()   {}
func (*Unary) exprNode()      {}
func (*Postfix) exprNode()    {}
func (*Binary) exprNode()     {}
func (*Assign) exprNode()     {}
func (*Cond) exprNode()       {}
func (*Call) exprNode()       {}
func (*Index) exprNode()      {}
func (*Member) exprNode()     {}
func (*Cast) exprNode()       {}
func (*SizeofExpr) exprNode() {}
func (*Paren) exprNode()      {}

// ---------------------------------------------------------------------------
// Types (syntactic)

// BuiltinKind enumerates C scalar type spellings after specifier merging.
type BuiltinKind int

// Builtin scalar kinds.
const (
	Void BuiltinKind = iota
	Bool
	Char
	SChar
	UChar
	Short
	UShort
	Int
	UInt
	Long
	ULong
	Float
	Double
)

var builtinNames = [...]string{
	Void: "void", Bool: "bool", Char: "char", SChar: "signed char",
	UChar: "unsigned char", Short: "short", UShort: "unsigned short",
	Int: "int", UInt: "unsigned int", Long: "long", ULong: "unsigned long",
	Float: "float", Double: "double",
}

// String returns the C spelling of the builtin kind.
func (k BuiltinKind) String() string {
	if int(k) < len(builtinNames) {
		return builtinNames[k]
	}
	return "BuiltinKind(?)"
}

// BuiltinType is a scalar type written with C specifier keywords.
type BuiltinType struct {
	KwPos source.Pos
	Kind  BuiltinKind
}

// NamedType refers to a typedef name.
type NamedType struct {
	NamePos source.Pos
	Name    string
}

// Field is one member of a struct or union.
type Field struct {
	Type TypeExpr
	Name string
	// Dims holds array dimensions applied to the field name, innermost
	// last, e.g. "byte data[56]" has one entry.
	Dims []Expr
}

// StructType is a struct or union type, either a full definition
// (Fields non-nil) or a reference by tag (Fields nil).
type StructType struct {
	KwPos  source.Pos
	Union  bool
	Tag    string // optional
	Fields []*Field
}

// EnumItem is one enumerator, with an optional explicit value.
type EnumItem struct {
	Name  string
	Value Expr // may be nil
}

// EnumType is an enum definition or tag reference.
type EnumType struct {
	KwPos source.Pos
	Tag   string
	Items []*EnumItem // nil for a reference
}

// ArrayType wraps an element type with a length.
type ArrayType struct {
	Elem TypeExpr
	Len  Expr
}

// PointerType is a pointer to an element type. ECL allows pointers only
// in extracted data code.
type PointerType struct {
	StarPos source.Pos
	Elem    TypeExpr
}

// Pos returns the position of the type keyword.
func (t *BuiltinType) Pos() source.Pos { return t.KwPos }

// Pos returns the position of the type name.
func (t *NamedType) Pos() source.Pos { return t.NamePos }

// Pos returns the position of the struct/union keyword.
func (t *StructType) Pos() source.Pos { return t.KwPos }

// Pos returns the position of the enum keyword.
func (t *EnumType) Pos() source.Pos { return t.KwPos }

// Pos returns the position of the element type.
func (t *ArrayType) Pos() source.Pos { return t.Elem.Pos() }

// Pos returns the position of the star.
func (t *PointerType) Pos() source.Pos { return t.StarPos }

func (*BuiltinType) typeNode() {}
func (*NamedType) typeNode()   {}
func (*StructType) typeNode()  {}
func (*EnumType) typeNode()    {}
func (*ArrayType) typeNode()   {}
func (*PointerType) typeNode() {}

// ---------------------------------------------------------------------------
// Statements

// Block is a brace-delimited statement list.
type Block struct {
	LBrace source.Pos
	Stmts  []Stmt
}

// VarDecl declares one local variable (or, at top level, wraps into a
// declaration). Multiple declarators in one source declaration are
// split into separate VarDecls by the parser.
type VarDecl struct {
	DeclPos source.Pos
	Type    TypeExpr
	Name    string
	Init    Expr // may be nil
}

// SignalDecl declares a module-local signal:
//
//	signal pure kill_check;
//	signal packet_t packet;
type SignalDecl struct {
	KwPos source.Pos
	Pure  bool
	Type  TypeExpr // nil when Pure
	Name  string
}

// ExprStmt is an expression used as a statement.
type ExprStmt struct {
	X Expr
}

// Empty is a lone semicolon.
type Empty struct {
	SemiPos source.Pos
}

// If is the C conditional statement.
type If struct {
	KwPos source.Pos
	Cond  Expr
	Then  Stmt
	Else  Stmt // may be nil
}

// While is the C while loop.
type While struct {
	KwPos source.Pos
	Cond  Expr
	Body  Stmt
}

// DoWhile is the C do/while loop.
type DoWhile struct {
	KwPos source.Pos
	Body  Stmt
	Cond  Expr
}

// For is the C for loop. Init and Post may be nil; Cond may be nil.
type For struct {
	KwPos source.Pos
	Init  Stmt
	Cond  Expr
	Post  Stmt
	Body  Stmt
}

// CaseClause is one case (or default, when Values is nil) of a switch.
type CaseClause struct {
	KwPos  source.Pos
	Values []Expr // nil means default
	Body   []Stmt
}

// Switch is the C switch statement.
type Switch struct {
	KwPos source.Pos
	Tag   Expr
	Cases []*CaseClause
}

// Break is the C break statement.
type Break struct {
	KwPos source.Pos
}

// Continue is the C continue statement.
type Continue struct {
	KwPos source.Pos
}

// Return is the C return statement.
type Return struct {
	KwPos source.Pos
	X     Expr // may be nil
}

// Emit is ECL's emit(signal) / emit_v(signal, value).
type Emit struct {
	KwPos  source.Pos
	Signal *Ident
	Value  Expr // nil for a pure emit
}

// Await is ECL's await(signal_expression). A nil Sig is the empty
// await(), which ends the instant unconditionally (a "delta cycle").
type Await struct {
	KwPos source.Pos
	Sig   Expr
}

// Halt is ECL's halt(): stop until preempted.
type Halt struct {
	KwPos source.Pos
}

// Present is ECL's present(sigexpr) stmt [else stmt].
type Present struct {
	KwPos source.Pos
	Sig   Expr
	Then  Stmt
	Else  Stmt // may be nil
}

// AbortKind distinguishes the three preemption statements that share
// the do { ... } <kind> (sigexpr) syntax.
type AbortKind int

// Preemption kinds.
const (
	// Strong abort kills the body the instant the condition holds.
	Strong AbortKind = iota
	// Weak abort lets the body run for the triggering instant.
	Weak
	// Susp suspends (freezes) the body while the condition holds.
	Susp
)

// String names the preemption kind with its ECL keyword.
func (k AbortKind) String() string {
	switch k {
	case Strong:
		return "abort"
	case Weak:
		return "weak_abort"
	case Susp:
		return "suspend"
	}
	return "AbortKind(?)"
}

// DoPreempt is do stmt abort(sig) [handle stmt], do stmt
// weak_abort(sig) [handle stmt], or do stmt suspend(sig).
type DoPreempt struct {
	KwPos   source.Pos
	Kind    AbortKind
	Body    Stmt
	Sig     Expr
	Handler Stmt // only for Strong/Weak; may be nil
}

// Par is ECL's par { stmt; stmt; ... }: concurrent execution of each
// top-level statement in the block.
type Par struct {
	KwPos    source.Pos
	Branches []Stmt
}

// Pos implementations for statements.

// Pos returns the position of the opening brace.
func (s *Block) Pos() source.Pos { return s.LBrace }

// Pos returns the position of the declaration.
func (s *VarDecl) Pos() source.Pos { return s.DeclPos }

// Pos returns the position of the signal keyword.
func (s *SignalDecl) Pos() source.Pos { return s.KwPos }

// Pos returns the position of the expression.
func (s *ExprStmt) Pos() source.Pos { return s.X.Pos() }

// Pos returns the position of the semicolon.
func (s *Empty) Pos() source.Pos { return s.SemiPos }

// Pos returns the position of the if keyword.
func (s *If) Pos() source.Pos { return s.KwPos }

// Pos returns the position of the while keyword.
func (s *While) Pos() source.Pos { return s.KwPos }

// Pos returns the position of the do keyword.
func (s *DoWhile) Pos() source.Pos { return s.KwPos }

// Pos returns the position of the for keyword.
func (s *For) Pos() source.Pos { return s.KwPos }

// Pos returns the position of the switch keyword.
func (s *Switch) Pos() source.Pos { return s.KwPos }

// Pos returns the position of the break keyword.
func (s *Break) Pos() source.Pos { return s.KwPos }

// Pos returns the position of the continue keyword.
func (s *Continue) Pos() source.Pos { return s.KwPos }

// Pos returns the position of the return keyword.
func (s *Return) Pos() source.Pos { return s.KwPos }

// Pos returns the position of the emit keyword.
func (s *Emit) Pos() source.Pos { return s.KwPos }

// Pos returns the position of the await keyword.
func (s *Await) Pos() source.Pos { return s.KwPos }

// Pos returns the position of the halt keyword.
func (s *Halt) Pos() source.Pos { return s.KwPos }

// Pos returns the position of the present keyword.
func (s *Present) Pos() source.Pos { return s.KwPos }

// Pos returns the position of the do keyword.
func (s *DoPreempt) Pos() source.Pos { return s.KwPos }

// Pos returns the position of the par keyword.
func (s *Par) Pos() source.Pos { return s.KwPos }

func (*Block) stmtNode()      {}
func (*VarDecl) stmtNode()    {}
func (*SignalDecl) stmtNode() {}
func (*ExprStmt) stmtNode()   {}
func (*Empty) stmtNode()      {}
func (*If) stmtNode()         {}
func (*While) stmtNode()      {}
func (*DoWhile) stmtNode()    {}
func (*For) stmtNode()        {}
func (*Switch) stmtNode()     {}
func (*Break) stmtNode()      {}
func (*Continue) stmtNode()   {}
func (*Return) stmtNode()     {}
func (*Emit) stmtNode()       {}
func (*Await) stmtNode()      {}
func (*Halt) stmtNode()       {}
func (*Present) stmtNode()    {}
func (*DoPreempt) stmtNode()  {}
func (*Par) stmtNode()        {}

// ---------------------------------------------------------------------------
// Declarations

// TypedefDecl is "typedef <type> <name>;" with optional array dims on
// the name, already folded into Type.
type TypedefDecl struct {
	KwPos source.Pos
	Name  string
	Type  TypeExpr
}

// TypeDecl is a bare struct/union/enum definition at file scope.
type TypeDecl struct {
	Type TypeExpr
}

// GlobalVarDecl is a file-scope variable declaration (allowed only for
// const-style data tables used by extracted C code).
type GlobalVarDecl struct {
	Var *VarDecl
}

// Param is one parameter of a C function.
type Param struct {
	Type TypeExpr
	Name string
}

// FuncDecl is a plain C function usable from data code.
type FuncDecl struct {
	KwPos  source.Pos
	Ret    TypeExpr
	Name   string
	Params []*Param
	Body   *Block
}

// SigDir is the direction of a module signal parameter.
type SigDir int

// Signal parameter directions.
const (
	In SigDir = iota
	Out
)

// String names the direction with its ECL keyword.
func (d SigDir) String() string {
	if d == In {
		return "input"
	}
	return "output"
}

// SigParam is one signal parameter of a module: direction, optional
// "pure", a value type for valued signals, and a name.
type SigParam struct {
	DirPos source.Pos
	Dir    SigDir
	Pure   bool
	Type   TypeExpr // nil when Pure
	Name   string
}

// ModuleDecl is an ECL module: a subroutine-like unit whose parameters
// are signals and whose body mixes C and reactive statements.
type ModuleDecl struct {
	KwPos  source.Pos
	Name   string
	Params []*SigParam
	Body   *Block
}

// Pos returns the position of the typedef keyword.
func (d *TypedefDecl) Pos() source.Pos { return d.KwPos }

// Pos returns the position of the underlying type.
func (d *TypeDecl) Pos() source.Pos { return d.Type.Pos() }

// Pos returns the position of the variable.
func (d *GlobalVarDecl) Pos() source.Pos { return d.Var.Pos() }

// Pos returns the position of the return type.
func (d *FuncDecl) Pos() source.Pos { return d.KwPos }

// Pos returns the position of the module keyword.
func (d *ModuleDecl) Pos() source.Pos { return d.KwPos }

func (*TypedefDecl) declNode()   {}
func (*TypeDecl) declNode()      {}
func (*GlobalVarDecl) declNode() {}
func (*FuncDecl) declNode()      {}
func (*ModuleDecl) declNode()    {}

// File is one parsed translation unit.
type File struct {
	Name  string
	Decls []Decl
}

// Pos returns the position of the first declaration, if any.
func (f *File) Pos() source.Pos {
	if len(f.Decls) > 0 {
		return f.Decls[0].Pos()
	}
	return source.Pos{}
}

// Modules returns the module declarations of the file, in order.
func (f *File) Modules() []*ModuleDecl {
	var ms []*ModuleDecl
	for _, d := range f.Decls {
		if m, ok := d.(*ModuleDecl); ok {
			ms = append(ms, m)
		}
	}
	return ms
}

// Module returns the module with the given name, or nil.
func (f *File) Module(name string) *ModuleDecl {
	for _, d := range f.Decls {
		if m, ok := d.(*ModuleDecl); ok && m.Name == name {
			return m
		}
	}
	return nil
}
