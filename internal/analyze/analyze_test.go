package analyze

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/paperex"
)

var update = flag.Bool("update", false, "rewrite golden files")

// compileModule builds one module of one source into a Design.
func compileModule(t *testing.T, path, src, module string) *core.Design {
	t.Helper()
	prog, err := core.Parse(path, src, core.Options{})
	if err != nil {
		t.Fatalf("parse %s: %v", path, err)
	}
	d, err := prog.Compile(module)
	if err != nil {
		t.Fatalf("compile %s %s: %v", path, module, err)
	}
	return d
}

// TestPaperExamplesClean pins the analyzer's precision: every module of
// the paper's examples must analyze without findings.
func TestPaperExamplesClean(t *testing.T) {
	cases := []struct {
		path, src, module string
	}{
		{"abro.ecl", paperex.ABRO, "abro"},
		{"runner.ecl", paperex.RunnerStop, "runner"},
		{"stack.ecl", paperex.Stack, "assemble"},
		{"stack.ecl", paperex.Stack, "checkcrc"},
		{"stack.ecl", paperex.Stack, "prochdr"},
		{"stack.ecl", paperex.Stack, "toplevel"},
		{"buffer.ecl", paperex.Buffer, "recordctl"},
		{"buffer.ecl", paperex.Buffer, "playctl"},
		{"buffer.ecl", paperex.Buffer, "levelmon"},
		{"buffer.ecl", paperex.Buffer, "bufferctl"},
	}
	for _, c := range cases {
		t.Run(c.path+"/"+c.module, func(t *testing.T) {
			d := compileModule(t, c.path, c.src, c.module)
			for _, f := range Analyze(d) {
				t.Errorf("unexpected finding: %s", f)
			}
		})
	}
}

// TestExamplesCorpusClean requires the shipped examples/ corpus to be
// vet-clean — the same gate CI enforces with `eclvet -all examples`.
func TestExamplesCorpusClean(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "examples", "*.ecl"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no examples found: %v", err)
	}
	for _, path := range paths {
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := core.Parse(filepath.Base(path), string(src), core.Options{})
		if err != nil {
			t.Fatalf("parse %s: %v", path, err)
		}
		for _, module := range prog.Modules() {
			t.Run(filepath.Base(path)+"/"+module, func(t *testing.T) {
				d, err := prog.Compile(module)
				if err != nil {
					t.Fatalf("compile: %v", err)
				}
				for _, f := range Analyze(d) {
					t.Errorf("unexpected finding: %s", f)
				}
			})
		}
	}
}

// TestVetGoldens runs the analyzer over the seeded rule-trigger
// programs in testdata/vet: one program per rule ID, each golden file
// holding the complete expected finding set. The module under analysis
// is the file's last module (multi-module seeds wire helper modules
// first). Refresh with `go test ./internal/analyze -run Goldens -update`.
func TestVetGoldens(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("testdata", "vet", "*.ecl"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no vet seeds found: %v", err)
	}
	for _, path := range paths {
		t.Run(filepath.Base(path), func(t *testing.T) {
			src, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			prog, err := core.Parse(filepath.Base(path), string(src), core.Options{})
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			modules := prog.Modules()
			if len(modules) == 0 {
				t.Fatal("no modules in seed")
			}
			d, err := prog.Compile(modules[len(modules)-1])
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			fs := Analyze(d)
			fs = append(fs, AnalyzeFile(prog.Info)...)
			Sort(fs)
			var b strings.Builder
			for _, f := range fs {
				b.WriteString(f.String())
				b.WriteByte('\n')
			}
			got := b.String()

			golden := strings.TrimSuffix(path, ".ecl") + ".golden"
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o666); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("findings mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
			}

			// The seed's filename names the rule it must trigger
			// (ecl001_xxx.ecl -> ECL001); companion findings may ride
			// along in the golden, but the named rule must be present.
			name := filepath.Base(path)
			rule := "ECL" + name[3:6]
			if !strings.Contains(got, rule+" ") {
				t.Errorf("seed %s did not trigger %s:\n%s", name, rule, got)
			}
		})
	}
}

// TestValuePrecisionRegression pins the precision upgrade of the value
// rules over the syntactic EFSM rules: on a design whose guards are
// individually satisfiable (so per-transition satisfiability calls
// every state reachable) but refuted by interval analysis, ECL033 and
// ECL034 must fire while ECL020 and ECL021 stay silent — before the
// value rules landed, this design analyzed clean.
func TestValuePrecisionRegression(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("testdata", "vet", "ecl034_value_unreachable.ecl"))
	if err != nil {
		t.Fatal(err)
	}
	d := compileModule(t, "prec.ecl", string(src), "m")
	fired := map[string]bool{}
	for _, f := range Analyze(d) {
		fired[f.Rule] = true
	}
	for _, want := range []string{"ECL033", "ECL034"} {
		if !fired[want] {
			t.Errorf("value rule %s did not fire", want)
		}
	}
	for _, silent := range []string{"ECL020", "ECL021"} {
		if fired[silent] {
			t.Errorf("syntactic rule %s fired on a value-only refutation", silent)
		}
	}
}

// TestFindingRoundTrip pins the snapshot codec: findings replayed from
// the phase cache must be byte-identical to fresh ones.
func TestFindingRoundTrip(t *testing.T) {
	fs := []Finding{
		{Rule: "ECL001", Severity: "warning", File: "x.ecl", Line: 3, Col: 9, Module: "m", Message: "msg"},
		{Rule: "ECL023", Severity: "warning", Module: "m", Message: "no pos"},
	}
	blob, err := Encode(fs)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(fs) {
		t.Fatalf("got %d findings, want %d", len(back), len(fs))
	}
	for i := range fs {
		if back[i] != fs[i] {
			t.Errorf("finding %d: got %+v want %+v", i, back[i], fs[i])
		}
	}
	if _, err := Decode([]byte("not json")); err == nil {
		t.Error("Decode accepted garbage")
	}
	empty, err := Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := Decode(empty); err != nil || len(got) != 0 {
		t.Errorf("empty round trip: %v %v", got, err)
	}
}

// TestRuleTable pins the registry invariants the CLIs rely on.
func TestRuleTable(t *testing.T) {
	seen := map[string]bool{}
	for _, r := range Rules() {
		if seen[r.ID] {
			t.Errorf("duplicate rule ID %s", r.ID)
		}
		seen[r.ID] = true
		if r.Doc == "" {
			t.Errorf("rule %s has no doc", r.ID)
		}
		switch r.Level {
		case LevelSem, LevelKernel, LevelEFSM, LevelValue, LevelDesign:
		default:
			t.Errorf("rule %s has unknown level %q", r.ID, r.Level)
		}
		switch r.Severity {
		case SeverityError, SeverityWarning:
		default:
			t.Errorf("rule %s has unknown severity %q", r.ID, r.Severity)
		}
		if (r.run == nil) == (r.runFile == nil) {
			t.Errorf("rule %s must have exactly one of run/runFile", r.ID)
		}
		if r.Level == LevelDesign != (r.runFile != nil) {
			t.Errorf("rule %s: design level and runFile must coincide", r.ID)
		}
	}
	if len(RuleIDs()) != len(Rules()) {
		t.Error("RuleIDs/Rules length mismatch")
	}
	if KeySalt() == "" {
		t.Error("empty key salt")
	}
}
