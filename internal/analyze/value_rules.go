package analyze

import (
	"repro/internal/analyze/absint"
	"repro/internal/ast"
	"repro/internal/efsm"
	"repro/internal/kernel"
	"repro/internal/sem"
	"repro/internal/source"
	"repro/internal/token"
)

// The value-flow rules (ECL030–ECL035) read the abstract interpreter's
// converged result (efsmFacts.abs). Everything they report is a
// certainty — a fact that holds on every concrete run — so their
// severity is "error" while the syntactic rules stay warnings.

// divByZero is ECL030: an integer division or modulo whose divisor the
// intervals prove is always zero. The concrete machine is guaranteed
// to trap here (see the soundness test: every flagged program really
// errors when stepped in the interp backend).
func (p *pass) divByZero() {
	p.trapRule(absint.TrapDivZero, "division by zero is guaranteed here: %s in %q")
}

// shiftRange is ECL031: a shift whose count is provably outside 0..31.
// The runtime masks the count with &31 and carries on, so this is
// silent data corruption, not a trap — but it is certain.
func (p *pass) shiftRange() {
	p.trapRule(absint.TrapShift, "shift count is always out of range (0..31): %s in %q")
}

// certainWrap is ECL032: signed +, -, *, or / whose exact result
// provably never fits int32. Unsigned arithmetic and shifts wrap by
// design and are never flagged.
func (p *pass) certainWrap() {
	p.trapRule(absint.TrapWrap, "signed arithmetic always overflows int32: %s in %q")
}

func (p *pass) trapRule(kind absint.TrapKind, format string) {
	f := p.efsmFacts()
	if f == nil || f.abs == nil {
		return
	}
	for _, t := range f.abs.Traps {
		if t.Kind != kind {
			continue
		}
		pos := t.Pos
		if !pos.IsValid() {
			pos = p.modulePos()
		}
		p.report(pos, format, t.Detail, ast.ExprString(t.Expr))
	}
}

// refutedTransitions is ECL033: a guard condition on a transition of a
// reachable state that interval analysis proves can never have the
// required outcome — the transition can never fire. Strictly stronger
// than ECL021: syntactically refuted paths are pruned before the value
// analysis, so the two rules partition the dead transitions and never
// double-report.
//
// Only refutations of a path's first data condition are reported: those
// are forced by value facts flowing in from previous instants (the
// state's entry store and the reaction's own actions), which is the
// cross-instant precision this rule adds. A later condition
// contradicting an earlier one on the same path is an artifact of the
// decision-tree expansion (an if/else-if cascade flattens into paths
// that test the same value with contradictory outcomes and are simply
// never walked) and stays unreported, like ECL021's conservative
// handling of the same shape.
func (p *pass) refutedTransitions() {
	f := p.efsmFacts()
	if f == nil || f.abs == nil {
		return
	}
	type key struct {
		state int
		pos   source.Pos
		want  bool
	}
	seen := make(map[key]bool)
	for _, s := range f.m.States {
		paths := f.abs.Paths[s]
		ts := f.trans[s]
		for i, pf := range paths {
			if pf.RefIndex != 0 || pf.Pruned || i >= len(ts) {
				continue
			}
			t := ts[i]
			if pf.RefIndex >= len(t.Data) {
				continue
			}
			dc := t.Data[pf.RefIndex]
			pos := source.Pos{}
			if pf.RefExpr != nil {
				pos = pf.RefExpr.Pos()
			}
			k := key{s.ID, pos, dc.Want}
			if seen[k] {
				continue
			}
			seen[k] = true
			if !pos.IsValid() {
				pos = p.modulePos()
			}
			outcome := "false"
			if !dc.Want {
				outcome = "true"
			}
			p.report(pos, "transition from state s%d can never fire: value analysis proves %q is always %s here (guard %q)",
				s.ID, ast.ExprString(pf.RefExpr), outcome, t.GuardString())
		}
	}
}

// valueUnreachableStates is ECL034: a state per-transition
// satisfiability calls reachable but no value-consistent execution can
// enter. Strictly stronger than ECL020 (which keeps the states every
// path to which is syntactically refuted); the pair never
// double-reports.
func (p *pass) valueUnreachableStates() {
	f := p.efsmFacts()
	if f == nil || f.abs == nil {
		return
	}
	for _, s := range f.m.States {
		if !f.synReach[s] || f.reachable[s] {
			continue
		}
		p.report(p.modulePos(), "state s%d is unreachable: value analysis refutes every path into it", s.ID)
	}
}

// ---------------------------------------------------------------------------
// ECL035: dead stores

// storeEv is one variable access event on a transition path, in
// execution order.
type storeEv struct {
	read    *kernel.Var // non-nil: reads this variable
	readAll bool        // opaque code (C call): may read anything
	kill    *kernel.Var // non-nil: overwrites this variable whole
	pos     source.Pos  // kill site (the assignment)
	name    string      // source-level variable name at the kill
	report  bool        // kill is a user-written store (not a decl init)
}

// pathEvs is the event list of one root-to-leaf path, aligned with
// efsm.Machine.Transitions order.
type pathEvs struct {
	evs []storeEv
	to  *efsm.State // nil: the machine stops after this reaction
}

// deadStores is ECL035: a variable assigned and then assigned again
// with no feasible read in between — on every feasible continuation
// the first store's value is overwritten unread. Reads through calls
// are conservative (a call may read anything), aggregates and frame
// locals are skipped, and synthesized declaration initializers are
// never themselves flagged.
func (p *pass) deadStores() {
	f := p.efsmFacts()
	if f == nil || f.abs == nil {
		return
	}
	// Collect per-state, per-feasible-path event lists.
	evs := make(map[*efsm.State][]pathEvs)
	candidates := make(map[*kernel.Var]bool)
	for _, s := range f.m.States {
		if !f.reachable[s] {
			continue
		}
		c := &evCollector{info: f.m.Info}
		c.walk(s.Root, nil)
		facts := f.abs.Paths[s]
		var keep []pathEvs
		for i, pe := range c.paths {
			if i < len(facts) && !facts[i].Feasible {
				continue
			}
			keep = append(keep, pe)
			for _, ev := range pe.evs {
				if ev.kill != nil && ev.report {
					candidates[ev.kill] = true
				}
			}
		}
		evs[s] = keep
	}
	if len(candidates) == 0 {
		return
	}
	// liveIn[s][v]: some feasible execution from state s reads v before
	// overwriting it. Least fixpoint (monotone: live only grows).
	liveIn := make(map[*efsm.State]map[*kernel.Var]bool)
	for s := range evs {
		liveIn[s] = make(map[*kernel.Var]bool)
	}
	for changed := true; changed; {
		changed = false
		for s, paths := range evs {
			for v := range candidates {
				if liveIn[s][v] {
					continue
				}
				for _, pe := range paths {
					if pathReadsFirst(pe, v, liveIn) {
						liveIn[s][v] = true
						changed = true
						break
					}
				}
			}
		}
	}
	// canKill[s][v]: some feasible execution from state s overwrites v
	// before reading it. Least fixpoint, mirroring liveIn.
	canKill := make(map[*efsm.State]map[*kernel.Var]bool)
	for s := range evs {
		canKill[s] = make(map[*kernel.Var]bool)
	}
	for changed := true; changed; {
		changed = false
		for s, paths := range evs {
			for v := range candidates {
				if canKill[s][v] {
					continue
				}
				for _, pe := range paths {
					if pathKillsFirst(pe, v, canKill) {
						canKill[s][v] = true
						changed = true
						break
					}
				}
			}
		}
	}
	// A kill is dead on one path when the continuation kills again (or
	// stops) before any read. Report a store only if every feasible
	// occurrence is dead AND some occurrence is actually rewritten
	// downstream ("written then rewritten" — a store the machine merely
	// halts after is not flagged).
	type agg struct {
		name      string
		dead      bool
		rewritten bool
	}
	sites := make(map[source.Pos]*agg)
	var order []source.Pos
	for _, paths := range evs {
		for _, pe := range paths {
			for i, ev := range pe.evs {
				if ev.kill == nil || !ev.report {
					continue
				}
				a := sites[ev.pos]
				if a == nil {
					a = &agg{name: ev.name, dead: true}
					sites[ev.pos] = a
					order = append(order, ev.pos)
				}
				if !killIsDead(pe, i, liveIn) {
					a.dead = false
				}
				if killIsRewritten(pe, i, canKill) {
					a.rewritten = true
				}
			}
		}
	}
	for _, pos := range order {
		a := sites[pos]
		if !a.dead || !a.rewritten {
			continue
		}
		p.report(pos, "dead store: the value assigned to %q here is overwritten on every feasible path before being read", a.name)
	}
}

// pathReadsFirst reports whether path pe reads v before killing it,
// either directly or through its successor's liveness.
func pathReadsFirst(pe pathEvs, v *kernel.Var, liveIn map[*efsm.State]map[*kernel.Var]bool) bool {
	for _, ev := range pe.evs {
		if ev.readAll || ev.read == v {
			return true
		}
		if ev.kill == v {
			return false
		}
	}
	if pe.to == nil {
		return false
	}
	return liveIn[pe.to][v]
}

// killIsDead reports whether the kill at index i of path pe is
// overwritten (or the machine stops) before any read of the variable.
func killIsDead(pe pathEvs, i int, liveIn map[*efsm.State]map[*kernel.Var]bool) bool {
	v := pe.evs[i].kill
	for _, ev := range pe.evs[i+1:] {
		if ev.readAll || ev.read == v {
			return false
		}
		if ev.kill == v {
			return true
		}
	}
	if pe.to == nil {
		return true
	}
	return !liveIn[pe.to][v]
}

// pathKillsFirst reports whether path pe overwrites v before reading
// it, directly or through its successor.
func pathKillsFirst(pe pathEvs, v *kernel.Var, canKill map[*efsm.State]map[*kernel.Var]bool) bool {
	for _, ev := range pe.evs {
		if ev.kill == v {
			return true
		}
		if ev.readAll || ev.read == v {
			return false
		}
	}
	if pe.to == nil {
		return false
	}
	return canKill[pe.to][v]
}

// killIsRewritten reports whether some feasible continuation of the
// kill at index i actually overwrites the variable (rather than the
// machine just stopping).
func killIsRewritten(pe pathEvs, i int, canKill map[*efsm.State]map[*kernel.Var]bool) bool {
	v := pe.evs[i].kill
	for _, ev := range pe.evs[i+1:] {
		if ev.kill == v {
			return true
		}
		if ev.readAll || ev.read == v {
			return false
		}
	}
	if pe.to == nil {
		return false
	}
	return canKill[pe.to][v]
}

// evCollector walks a state's decision tree accumulating per-path
// variable access events, leaf order matching Transitions.
type evCollector struct {
	info  *sem.Info
	paths []pathEvs
}

func (c *evCollector) walk(n efsm.Node, evs []storeEv) {
	switch n := n.(type) {
	case nil:
		return
	case *efsm.ActNode:
		evs = c.action(n.Act, evs)
		c.walk(n.Next, evs)
	case *efsm.InputBranch:
		c.walk(n.Then, evs)
		c.walk(n.Else, evs)
	case *efsm.DataBranch:
		evs = c.expr(n.Expr.B, n.Expr.E, evs)
		c.walk(n.Then, evs)
		c.walk(n.Else, evs)
	case *efsm.Leaf:
		// Copy: sibling paths share the prefix backing array.
		c.paths = append(c.paths, pathEvs{evs: append([]storeEv(nil), evs...), to: n.To})
	}
}

func (c *evCollector) action(a efsm.Action, evs []storeEv) []storeEv {
	switch a.Kind {
	case efsm.ActEmit:
		if a.Value != nil {
			evs = c.expr(a.Value.B, a.Value.E, evs)
		}
	case efsm.ActAssign:
		evs = c.assign(a.LHS.B, a.LHS.E, a.RHS.E, evs)
	case efsm.ActEval:
		evs = c.expr(a.X.B, a.X.E, evs)
	case efsm.ActCall:
		if a.F != nil {
			for _, st := range a.F.Body {
				evs = c.stmt(a.F.B, st, evs)
			}
		}
	}
	return evs
}

// assign handles "lhs = rhs": rhs (and any lhs subscripts) read first,
// then a plain whole-variable lhs kills. A synthesized declaration
// initializer (lowering rewrites "int x = e;" into an assignment whose
// LHS ident sits exactly at the declaration) kills without being a
// reportable store.
func (c *evCollector) assign(b *kernel.Binding, lhs, rhs ast.Expr, evs []storeEv) []storeEv {
	evs = c.expr(b, rhs, evs)
	for {
		pp, ok := lhs.(*ast.Paren)
		if !ok {
			break
		}
		lhs = pp.X
	}
	id, ok := lhs.(*ast.Ident)
	if !ok {
		return c.expr(b, lhs, evs) // aggregate element: treat as read
	}
	vi, ok := c.info.UseOf(id).(*sem.VarInfo)
	if !ok {
		return evs
	}
	kv := b.Vars[vi]
	if kv == nil {
		return evs
	}
	report := true
	if vi.Decl != nil && id.Pos() == vi.Decl.Pos() {
		report = false // decl initializer, not a user store
	}
	return append(evs, storeEv{kill: kv, pos: id.Pos(), name: id.Name, report: report})
}

// stmt collects events from extracted data-function statements. Only
// straight-line assignment statements kill; anything branchy degrades
// to reads (a branch that kills on one side only must not cancel a
// prior store).
func (c *evCollector) stmt(b *kernel.Binding, s ast.Stmt, evs []storeEv) []storeEv {
	switch s := s.(type) {
	case nil, *ast.Empty, *ast.Break, *ast.Continue:
		return evs
	case *ast.Block:
		for _, st := range s.Stmts {
			evs = c.stmt(b, st, evs)
		}
		return evs
	case *ast.VarDecl:
		if s.Init == nil {
			return evs
		}
		evs = c.expr(b, s.Init, evs)
		if vi := c.info.VarOf[s]; vi != nil {
			if kv := b.Vars[vi]; kv != nil {
				// The declaration writes the slot but is not a user
				// "store" to flag.
				evs = append(evs, storeEv{kill: kv, pos: s.Pos(), name: s.Name})
			}
		}
		return evs
	case *ast.ExprStmt:
		if as, ok := s.X.(*ast.Assign); ok && as.Op == token.ASSIGN {
			return c.assign(b, as.LHS, as.RHS, evs)
		}
		return c.expr(b, s.X, evs)
	case *ast.Return:
		if s.X != nil {
			evs = c.expr(b, s.X, evs)
		}
		return evs
	}
	// Branchy or opaque statement: every variable mentioned is a read,
	// nothing kills.
	walkStmt(s, func(n ast.Node) {
		if id, ok := n.(*ast.Ident); ok {
			evs = c.readIdent(b, id, evs)
		}
		if _, ok := n.(*ast.Call); ok {
			evs = append(evs, storeEv{readAll: true})
		}
	})
	return evs
}

// expr records every variable whose value e may read; embedded
// assignments and increments count as reads (conservative: they never
// cancel a prior store), and calls read everything.
func (c *evCollector) expr(b *kernel.Binding, e ast.Expr, evs []storeEv) []storeEv {
	if e == nil {
		return evs
	}
	walkExpr(e, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.Ident:
			evs = c.readIdent(b, n, evs)
		case *ast.Call:
			evs = append(evs, storeEv{readAll: true})
		}
	})
	return evs
}

func (c *evCollector) readIdent(b *kernel.Binding, id *ast.Ident, evs []storeEv) []storeEv {
	if vi, ok := c.info.UseOf(id).(*sem.VarInfo); ok {
		if kv := b.Vars[vi]; kv != nil {
			evs = append(evs, storeEv{read: kv})
		}
	}
	return evs
}
