/* ECL012: a data condition that is compile-time constant — the else
 * arm can never run. */
module m (input pure i, output pure o)
{
    while (1) {
        await (i);
        if (2 > 1) {
            emit (o);
        }
    }
}
