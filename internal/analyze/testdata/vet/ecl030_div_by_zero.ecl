/* ECL030: the divisor is zero-initialized and never written, so the
 * interval analysis proves every execution of the division traps. */
module m (input pure t, input int x, output int o)
{
    int d;
    d = 0;
    while (1) {
        await (t);
        emit_v (o, x / d);
    }
}
