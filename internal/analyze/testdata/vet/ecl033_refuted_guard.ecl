/* ECL033: k only ever holds 2 or 3, so the guard `k > 10` is refuted
 * by interval analysis — per-transition satisfiability alone cannot
 * see this (the guard is not self-contradictory). */
module m (input pure t, output int o)
{
    int k;
    k = 3;
    while (1) {
        await (t);
        if (k > 10) {
            emit_v (o, k);
        } else {
            k = 2;
        }
    }
}
