/* ECL035: the first assignment to d is overwritten by the second on
 * every feasible path before anything reads it. */
module m (input pure t, input int x, output int o)
{
    int d;
    while (1) {
        await (t);
        d = x;
        d = x + 1;
        emit_v (o, d);
    }
}
