/* ECL023: top declares output o but only ever wires it into sub as an
 * input, which nothing can emit — no reachable transition drives o. */
module sub (input pure watched, input pure tick, output pure done)
{
    par {
        while (1) {
            await (tick);
            emit (done);
        }
        {
            await (watched);
            emit (done);
        }
    }
}

module top (input pure tick, output pure o, output pure done)
{
    sub (o, tick, done);
}
