/* ECL021: the inner `if (x > 0)` can only be reached when the same
 * test was just false, so its transition can never fire. */
module m (input pure t, input int x, output pure o)
{
    while (1) {
        await (t);
        if (x > 0) {
            emit (o);
        } else {
            if (x > 0) {
                emit (o);
            }
        }
    }
}
