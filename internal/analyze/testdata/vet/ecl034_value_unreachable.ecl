/* ECL034: the await inside the `k > 10` branch compiles to a state of
 * its own; every path into it crosses a guard the intervals refute
 * (k is always 2 or 3), so no value-consistent run can enter it. The
 * refuted transition itself is the companion ECL033 finding. */
module m (input pure t, output pure o)
{
    int k;
    k = 3;
    while (1) {
        await (t);
        if (k > 10) {
            await (t);
            emit (o);
        } else {
            k = 2;
            emit (o);
        }
    }
}
