/* ECL020: the inner `if (x > 0)` sits in the outer test's else arm, so
 * its then-branch — and the await state inside it — is reachable only
 * through a contradictory guard. (The dead transition into that state
 * is the companion ECL021 finding.) */
module m (input pure t, input int x, output pure o)
{
    while (1) {
        await (t);
        if (x > 0) {
            emit (o);
        } else {
            if (x > 0) {
                await (t);
                emit (o);
            }
        }
    }
}
