/* ECL031: the shift count is provably 35, outside 0..31 — the runtime
 * masks it with &31, silently shifting by 3 instead. */
module m (input pure t, input int x, output int o)
{
    int s;
    s = 35;
    while (1) {
        await (t);
        emit_v (o, x << s);
    }
}
