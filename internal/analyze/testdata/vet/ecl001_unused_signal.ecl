/* ECL001: a declared local signal nothing ever references. */
module m (input pure i, output pure o)
{
    signal pure unused_sig;
    while (1) {
        await (i);
        emit (o);
    }
}
