/* ECL010: two parallel branches both emit the valued signal o; in an
 * instant where both fire, one write is lost. */
module m (input pure t, output int o)
{
    par {
        while (1) {
            await (t);
            emit_v (o, 1);
        }
        while (1) {
            await (t);
            await (t);
            emit_v (o, 2);
        }
    }
}
