/* ECL003: a data function no module ever calls. */
int helper (int a)
{
    return a + 1;
}

module m (input pure i, output pure o)
{
    while (1) {
        await (i);
        emit (o);
    }
}
