/* ECL040: the local signal w is wired into helper, which reads its
 * value, but no module in the design ever emits it — the design-level
 * pass follows the instantiation wiring across both modules. */
module helper (input pure t, input int w, output int o)
{
    while (1) {
        await (t);
        emit_v (o, w + 1);
    }
}

module top (input pure t, output int o)
{
    signal int w;
    helper (t, w, o);
}
