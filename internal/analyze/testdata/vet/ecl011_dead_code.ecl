/* ECL011: code after halt() can never run. */
module m (input pure i, output pure o)
{
    int n;
    n = 0;
    await (i);
    emit (o);
    halt ();
    n = 1;
}
