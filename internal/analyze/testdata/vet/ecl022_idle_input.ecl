/* ECL022: top wires its input x into sub, but sub never looks at it —
 * no reachable transition of the compiled machine tests or reads x.
 * (Analyzing sub by itself would flag its parameter as ECL001; the
 * analyzed module here is top, whose own use of x — the instantiation
 * argument — is legitimate at the source level.) */
module sub (input pure ignored, input pure tick, output pure done)
{
    while (1) {
        await (tick);
        emit (done);
    }
}

module top (input pure x, input pure tick, output pure done)
{
    sub (x, tick, done);
}
