/* ECL032: 2000000000 + 2000000000 never fits int32, so the signed
 * addition wraps on every execution. */
module m (input pure t, output int o)
{
    int a;
    int b;
    a = 2000000000;
    while (1) {
        await (t);
        b = a + a;
        emit_v (o, b);
    }
}
