/* ECL002: a declared variable nothing ever references. */
module m (input int x, output int y)
{
    int dead;
    while (1) {
        await (x);
        emit_v (y, x + 1);
    }
}
