/* ECL004: awaiting a local signal nothing emits — the await can never
 * see it present. */
module m (input pure i, output pure o)
{
    signal pure never_up;
    par {
        while (1) {
            await (i);
            emit (o);
        }
        {
            await (never_up);
            emit (o);
        }
    }
}
