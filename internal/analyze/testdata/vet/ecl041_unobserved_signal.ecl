/* ECL041: helper emits w every instant, but no module in the design
 * (and no environment port) ever reads or tests it. */
module helper (input pure t, output int w)
{
    while (1) {
        await (t);
        emit_v (w, 1);
    }
}

module top (input pure t, output pure d)
{
    signal int w;
    par {
        helper (t, w);
        while (1) {
            await (t);
            emit (d);
        }
    }
}
