package analyze

import "repro/internal/ast"

// walkStmt calls visit for s, every statement nested below it, and
// every expression those statements contain (via walkExpr). It is the
// analyzer's structural traversal over the ECL AST; sem rules resolve
// the visited identifiers through sem.Info.Uses.
func walkStmt(s ast.Stmt, visit func(ast.Node)) {
	if s == nil {
		return
	}
	visit(s)
	switch s := s.(type) {
	case *ast.Block:
		for _, st := range s.Stmts {
			walkStmt(st, visit)
		}
	case *ast.VarDecl:
		walkExpr(s.Init, visit)
	case *ast.SignalDecl:
	case *ast.ExprStmt:
		walkExpr(s.X, visit)
	case *ast.Empty:
	case *ast.If:
		walkExpr(s.Cond, visit)
		walkStmt(s.Then, visit)
		walkStmt(s.Else, visit)
	case *ast.While:
		walkExpr(s.Cond, visit)
		walkStmt(s.Body, visit)
	case *ast.DoWhile:
		walkStmt(s.Body, visit)
		walkExpr(s.Cond, visit)
	case *ast.For:
		walkStmt(s.Init, visit)
		walkExpr(s.Cond, visit)
		walkStmt(s.Post, visit)
		walkStmt(s.Body, visit)
	case *ast.Switch:
		walkExpr(s.Tag, visit)
		for _, c := range s.Cases {
			for _, v := range c.Values {
				walkExpr(v, visit)
			}
			for _, st := range c.Body {
				walkStmt(st, visit)
			}
		}
	case *ast.Break, *ast.Continue, *ast.Halt:
	case *ast.Return:
		walkExpr(s.X, visit)
	case *ast.Emit:
		walkExpr(s.Signal, visit)
		walkExpr(s.Value, visit)
	case *ast.Await:
		walkExpr(s.Sig, visit)
	case *ast.Present:
		walkExpr(s.Sig, visit)
		walkStmt(s.Then, visit)
		walkStmt(s.Else, visit)
	case *ast.DoPreempt:
		walkExpr(s.Sig, visit)
		walkStmt(s.Body, visit)
		walkStmt(s.Handler, visit)
	case *ast.Par:
		for _, b := range s.Branches {
			walkStmt(b, visit)
		}
	}
}

// walkExpr calls visit for e and every expression nested below it.
func walkExpr(e ast.Expr, visit func(ast.Node)) {
	if e == nil {
		return
	}
	visit(e)
	switch e := e.(type) {
	case *ast.Ident, *ast.BasicLit:
	case *ast.Unary:
		walkExpr(e.X, visit)
	case *ast.Postfix:
		walkExpr(e.X, visit)
	case *ast.Binary:
		walkExpr(e.X, visit)
		walkExpr(e.Y, visit)
	case *ast.Assign:
		walkExpr(e.LHS, visit)
		walkExpr(e.RHS, visit)
	case *ast.Cond:
		walkExpr(e.CondX, visit)
		walkExpr(e.Then, visit)
		walkExpr(e.Else, visit)
	case *ast.Call:
		walkExpr(e.Fun, visit)
		for _, a := range e.Args {
			walkExpr(a, visit)
		}
	case *ast.Index:
		walkExpr(e.X, visit)
		walkExpr(e.Sub, visit)
	case *ast.Member:
		walkExpr(e.X, visit)
	case *ast.Cast:
		walkExpr(e.X, visit)
	case *ast.SizeofExpr:
		walkExpr(e.X, visit)
	case *ast.Paren:
		walkExpr(e.X, visit)
	}
}
