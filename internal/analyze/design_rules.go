package analyze

import (
	"fmt"
	"sort"

	"repro/internal/ast"
	"repro/internal/sem"
	"repro/internal/source"
)

// The design-level rules (ECL040/ECL041) look at a whole file's module
// interfaces at once: instantiation wiring connects each actual signal
// to the formal parameter it drives, so "is this signal ever emitted /
// ever read" becomes a question about the connected component, not one
// module. They run once per file through AnalyzeFile — batch `eclvet
// -all` analyzes interfaces once per shared compilation unit.

// filePass carries one AnalyzeFile run's state.
type filePass struct {
	info     *sem.Info
	rule     Rule
	findings []Finding

	facts *designFacts
}

// report records one finding for the current design-level rule.
func (fp *filePass) report(pos source.Pos, module string, format string, args ...interface{}) {
	sev := fp.rule.Severity
	if sev == "" {
		sev = SeverityWarning
	}
	f := Finding{
		Rule:     fp.rule.ID,
		Severity: sev,
		Module:   module,
		Message:  fmt.Sprintf(format, args...),
	}
	if pos.IsValid() {
		f.File = pos.File.Name
		f.Line = pos.Line()
		f.Col = pos.Column()
	}
	fp.findings = append(fp.findings, f)
}

// sigNode is one module's view of a signal (parameter or local) in the
// design connection graph.
type sigNode struct {
	si     *sem.SignalInfo
	mod    *sem.ModuleInfo
	pos    source.Pos
	driven bool // some module emits it (or the environment drives it)
	read   bool // some module tests/reads it (or the environment observes it)
	parent *sigNode
	order  int
}

func (n *sigNode) find() *sigNode {
	for n.parent != n {
		n.parent = n.parent.parent
		n = n.parent
	}
	return n
}

func union(a, b *sigNode) {
	ra, rb := a.find(), b.find()
	if ra == rb {
		return
	}
	if rb.order < ra.order {
		ra, rb = rb, ra
	}
	rb.parent = ra
	ra.driven = ra.driven || rb.driven
	ra.read = ra.read || rb.read
}

// designFacts is the solved connection graph of one file.
type designFacts struct {
	nodes   []*sigNode // stable (module, declaration) order
	byInfo  map[*sem.SignalInfo]*sigNode
	modules []*sem.ModuleInfo // name order
}

func (fp *filePass) designFacts() *designFacts {
	if fp.facts != nil {
		return fp.facts
	}
	df := &designFacts{byInfo: make(map[*sem.SignalInfo]*sigNode)}
	fp.facts = df
	info := fp.info
	var names []string
	for name := range info.Modules {
		names = append(names, name)
	}
	sort.Strings(names)
	instantiated := make(map[string]bool)
	for _, name := range names {
		mi := info.Modules[name]
		if mi == nil || mi.Decl == nil {
			continue
		}
		df.modules = append(df.modules, mi)
		for _, other := range mi.Instantiates {
			instantiated[other] = true
		}
	}
	// Nodes: every parameter and local of every module.
	for _, mi := range df.modules {
		for _, si := range mi.Params {
			df.addNode(si, mi, paramPos(mi, si.Name))
		}
		for _, si := range mi.Locals {
			df.addNode(si, mi, localPos(mi, si.Name))
		}
	}
	// Per-module usage: emits drive, everything else observed; the
	// identifiers consumed by instantiation wiring are neither.
	for _, mi := range df.modules {
		fp.markUsage(mi)
	}
	// Instantiation wiring: union each plain-ident actual with the
	// formal it binds; computed actuals conservatively satisfy the
	// formal both ways.
	for _, mi := range df.modules {
		fp.wireInstantiations(mi)
	}
	// Root modules (instantiated nowhere in the file) face the
	// environment: inputs arrive driven, outputs are observed.
	for _, mi := range df.modules {
		if instantiated[mi.Name] {
			continue
		}
		for _, si := range mi.Params {
			n := df.byInfo[si].find()
			if si.Dir == ast.In {
				n.driven = true
			} else {
				n.read = true
			}
		}
	}
	return df
}

func (df *designFacts) addNode(si *sem.SignalInfo, mi *sem.ModuleInfo, pos source.Pos) {
	if _, ok := df.byInfo[si]; ok {
		return
	}
	n := &sigNode{si: si, mod: mi, pos: pos, order: len(df.nodes)}
	n.parent = n
	df.nodes = append(df.nodes, n)
	df.byInfo[si] = n
}

// markUsage classifies every signal identifier in a module body as
// driving (emit target) or observed (anything else), skipping the
// identifiers that belong to instantiation wiring.
func (fp *filePass) markUsage(mi *sem.ModuleInfo) {
	df := fp.facts
	info := fp.info
	skip := make(map[*ast.Ident]bool)
	walkStmt(mi.Decl.Body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.Emit:
			if n.Signal != nil {
				skip[n.Signal] = true
			}
		case *ast.Call:
			if info.IsInst[n] {
				skip[n.Fun] = true
				for _, arg := range n.Args {
					if id, ok := plainIdent(arg); ok {
						skip[id] = true
					}
				}
			}
		}
	})
	walkStmt(mi.Decl.Body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.Emit:
			if n.Signal == nil {
				return
			}
			if si, ok := info.UseOf(n.Signal).(*sem.SignalInfo); ok {
				if nd := df.byInfo[si]; nd != nil {
					nd.find().driven = true
				}
			}
		case *ast.Ident:
			if skip[n] {
				return
			}
			if si, ok := info.UseOf(n).(*sem.SignalInfo); ok {
				if nd := df.byInfo[si]; nd != nil {
					nd.find().read = true
				}
			}
		}
	})
}

func (fp *filePass) wireInstantiations(mi *sem.ModuleInfo) {
	df := fp.facts
	info := fp.info
	walkStmt(mi.Decl.Body, func(n ast.Node) {
		call, ok := n.(*ast.Call)
		if !ok || !info.IsInst[call] {
			return
		}
		callee := info.Modules[call.Fun.Name]
		if callee == nil {
			return
		}
		for i, arg := range call.Args {
			if i >= len(callee.Params) {
				break
			}
			formal := df.byInfo[callee.Params[i]]
			if formal == nil {
				continue
			}
			if id, ok := plainIdent(arg); ok {
				if si, ok := info.UseOf(id).(*sem.SignalInfo); ok {
					if actual := df.byInfo[si]; actual != nil {
						union(actual, formal)
						continue
					}
				}
			}
			// Computed actual: can't track, assume fully used.
			fr := formal.find()
			fr.driven = true
			fr.read = true
		}
	})
}

func plainIdent(e ast.Expr) (*ast.Ident, bool) {
	for {
		p, ok := e.(*ast.Paren)
		if !ok {
			break
		}
		e = p.X
	}
	id, ok := e.(*ast.Ident)
	return id, ok
}

func paramPos(mi *sem.ModuleInfo, name string) source.Pos {
	for _, sp := range mi.Decl.Params {
		if sp.Name == name {
			return sp.DirPos
		}
	}
	return mi.Decl.Pos()
}

func localPos(mi *sem.ModuleInfo, name string) source.Pos {
	pos := mi.Decl.Pos()
	walkStmt(mi.Decl.Body, func(n ast.Node) {
		if sd, ok := n.(*ast.SignalDecl); ok && sd.Name == name && pos == mi.Decl.Pos() {
			pos = sd.Pos()
		}
	})
	return pos
}

// classes groups the connection graph into components, each
// represented by its first-declared member, in stable order.
func (df *designFacts) classes() [][]*sigNode {
	byRoot := make(map[*sigNode][]*sigNode)
	var roots []*sigNode
	for _, n := range df.nodes {
		r := n.find()
		if _, ok := byRoot[r]; !ok {
			roots = append(roots, r)
		}
		byRoot[r] = append(byRoot[r], n)
	}
	out := make([][]*sigNode, 0, len(roots))
	for _, r := range roots {
		out = append(out, byRoot[r])
	}
	return out
}

// spansModules reports whether the component touches at least two
// distinct modules; single-module signals are ECL001/ECL004's
// territory and are not re-reported here.
func spansModules(class []*sigNode) bool {
	var first *sem.ModuleInfo
	for _, n := range class {
		if first == nil {
			first = n.mod
		} else if n.mod != first {
			return true
		}
	}
	return false
}

// anchor is the component member to report on: the first-declared one.
func anchor(class []*sigNode) *sigNode {
	best := class[0]
	for _, n := range class[1:] {
		if n.order < best.order {
			best = n
		}
	}
	return best
}

// undrivenSignals is ECL040: a signal wired across modules that
// somebody tests or reads but no module in the design ever emits (and
// the environment cannot drive: it is not a root input).
func (fp *filePass) undrivenSignals() {
	df := fp.designFacts()
	for _, class := range df.classes() {
		r := class[0].find()
		if r.driven || !r.read || !spansModules(class) {
			continue
		}
		a := anchor(class)
		fp.report(a.pos, a.mod.Name,
			"signal %q is read or tested across %d modules but no module in the design ever emits it",
			a.si.Name, countModules(class))
	}
}

// unobservedSignals is ECL041: a signal wired across modules that
// somebody emits but nobody — module or environment — ever reads.
func (fp *filePass) unobservedSignals() {
	df := fp.designFacts()
	for _, class := range df.classes() {
		r := class[0].find()
		if r.read || !r.driven || !spansModules(class) {
			continue
		}
		a := anchor(class)
		fp.report(a.pos, a.mod.Name,
			"signal %q is emitted across %d modules but no module in the design ever reads it",
			a.si.Name, countModules(class))
	}
}

func countModules(class []*sigNode) int {
	seen := make(map[*sem.ModuleInfo]bool)
	for _, n := range class {
		seen[n.mod] = true
	}
	return len(seen)
}
