package absint_test

import (
	"strings"
	"testing"

	"repro/internal/analyze/absint"
	"repro/internal/core"
)

func TestValLattice(t *testing.T) {
	if !absint.Bot().IsBot() || !absint.Top().IsTop() {
		t.Fatal("Bot/Top constructors broken")
	}
	if c, ok := absint.Const(7).Const(); !ok || c != 7 {
		t.Errorf("Const(7).Const() = %d, %v", c, ok)
	}
	v := absint.Interval(3, 9)
	if lo, hi, ok := v.Bounds(); !ok || lo != 3 || hi != 9 {
		t.Errorf("Bounds() = %d, %d, %v", lo, hi, ok)
	}
	if _, ok := v.Const(); ok {
		t.Error("non-singleton interval reported as constant")
	}
	// An empty interval is Bot: no concrete value satisfies it.
	if !absint.Interval(5, 2).IsBot() {
		t.Error("empty interval did not normalize to Bot")
	}
	if !v.Contains(3) || !v.Contains(9) || v.Contains(10) || v.Contains(2) {
		t.Error("Contains misjudges interval membership")
	}
	if absint.Top().Contains(123) != true {
		t.Error("Top must contain everything")
	}
	if absint.Bot().Contains(0) {
		t.Error("Bot must contain nothing")
	}
	if !absint.Interval(1, 5).DefinitelyTrue() || !absint.Interval(-4, -1).DefinitelyTrue() {
		t.Error("nonzero-only interval not definitely true")
	}
	if absint.Interval(0, 5).DefinitelyTrue() {
		t.Error("interval containing zero must not be definitely true")
	}
	if !absint.Const(0).DefinitelyFalse() || absint.Interval(0, 1).DefinitelyFalse() {
		t.Error("DefinitelyFalse misjudges")
	}
	for _, v := range []absint.Val{absint.Bot(), absint.Top(), absint.Const(3), absint.Interval(-2, 8)} {
		if v.String() == "" {
			t.Error("empty String()")
		}
	}
}

func TestStoreOps(t *testing.T) {
	s := absint.NewStore()
	if s.Bot {
		t.Fatal("fresh store is Bot")
	}
	c := s.Clone()
	c.SetBot()
	if s.Bot {
		t.Error("SetBot on a clone leaked into the original")
	}
	// Joining a Bot store into a live one changes nothing.
	live := absint.NewStore()
	if live.JoinWith(c) {
		t.Error("join with Bot store reported a change")
	}
}

// analyzeSrc compiles one module and runs the abstract interpreter.
func analyzeSrc(t *testing.T, src, module string) *absint.Result {
	t.Helper()
	prog, err := core.Parse("t.ecl", src, core.Options{})
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	d, err := prog.Compile(module)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return absint.Analyze(d.Machine, nil)
}

// TestAnalyzeTrapDivZero: a provably-zero divisor must surface exactly
// one div-zero trap under the converged stores.
func TestAnalyzeTrapDivZero(t *testing.T) {
	res := analyzeSrc(t, `
module m (input pure t, input int x, output int o)
{
    int d;
    d = 0;
    while (1) {
        await (t);
        emit_v (o, x / d);
    }
}
`, "m")
	var div int
	for _, tr := range res.Traps {
		if tr.Kind == absint.TrapDivZero {
			div++
		}
	}
	if div != 1 {
		t.Errorf("got %d div-zero traps, want 1: %+v", div, res.Traps)
	}
}

// TestAnalyzeNoFalseTrap: a divisor the environment controls must not
// trap — the input is havocked to its full type range every instant.
func TestAnalyzeNoFalseTrap(t *testing.T) {
	res := analyzeSrc(t, `
module m (input pure t, input int x, output int o)
{
    while (1) {
        await (t);
        emit_v (o, 100 / (x + 1));
    }
}
`, "m")
	if len(res.Traps) != 0 {
		t.Errorf("unexpected traps on environment-driven divisor: %+v", res.Traps)
	}
}

// TestAnalyzeGuardNarrowing: inside `if (k > 10)` the store must know
// k > 10; with k provably in [2,3] the branch is refuted and the path
// carries RefIndex 0.
func TestAnalyzeGuardNarrowing(t *testing.T) {
	res := analyzeSrc(t, `
module m (input pure t, output int o)
{
    int k;
    k = 3;
    while (1) {
        await (t);
        if (k > 10) {
            emit_v (o, k);
        } else {
            k = 2;
        }
    }
}
`, "m")
	var refuted int
	for _, facts := range res.Paths {
		for _, pf := range facts {
			if pf.RefIndex == 0 && pf.RefExpr != nil {
				refuted++
			}
		}
	}
	if refuted == 0 {
		t.Error("interval analysis did not refute the k > 10 guard")
	}
}

// TestAnalyzeValueReachability: the state behind a refuted guard is
// not value-reachable, while every other state is.
func TestAnalyzeValueReachability(t *testing.T) {
	res := analyzeSrc(t, `
module m (input pure t, output pure o)
{
    int k;
    k = 3;
    while (1) {
        await (t);
        if (k > 10) {
            await (t);
            emit (o);
        } else {
            k = 2;
            emit (o);
        }
    }
}
`, "m")
	reach := len(res.Reachable)
	total := 0
	for range res.In {
		total++
	}
	if reach != total {
		t.Fatalf("Reachable (%d) and In (%d) disagree", reach, total)
	}
	// The machine has three states (boot, main await, inner await); the
	// inner one must be missing.
	if reach != 2 {
		t.Errorf("got %d value-reachable states, want 2", reach)
	}
}

// TestAnalyzeLoopWidening: a counter bumped every instant must
// converge (widening) without losing the guard refutation soundness —
// `k < 0` stays refutable only if widening kept the lower bound.
func TestAnalyzeLoopWidening(t *testing.T) {
	res := analyzeSrc(t, `
module m (input pure t, output int o)
{
    int k;
    k = 0;
    while (1) {
        await (t);
        k = k + 1;
        emit_v (o, k);
    }
}
`, "m")
	if len(res.Reachable) == 0 {
		t.Fatal("analysis lost every state")
	}
	if len(res.Traps) != 0 {
		// k+1 can overflow only after 2^31 instants; widening to the
		// full int32 range must not turn that into a certain wrap.
		t.Errorf("widened counter produced spurious traps: %+v", res.Traps)
	}
}

// TestTrapKindStrings pins the trap kinds' wire names, which appear in
// finding messages.
func TestTrapKindStrings(t *testing.T) {
	for _, k := range []absint.TrapKind{absint.TrapDivZero, absint.TrapShift, absint.TrapWrap} {
		if strings.TrimSpace(string(k)) == "" {
			t.Error("empty trap kind name")
		}
	}
}
