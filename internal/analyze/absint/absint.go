// Package absint is the analyzer's abstract interpreter: an
// interval/constant dataflow engine over the compiled EFSM. It runs a
// worklist fixpoint over (control state × abstract store), where the
// store maps every variable and valued-signal slot to an integer
// interval, and the transfer functions mirror internal/dataexec's C
// semantics — int32/uint32 value spaces, truncating stores, the &31
// shift mask, div-by-zero traps — so that anything the abstract
// execution calls certain really happens on the concrete machine.
//
// The engine reports three things the rule layer turns into findings:
//
//   - value-aware reachability (states no interval-consistent path can
//     enter, even though per-transition satisfiability says otherwise);
//   - per-path feasibility with the refuting guard condition (a
//     transition whose guard an interval proves false can never fire);
//   - certain data traps and certain integer wraps (a division whose
//     divisor is provably always zero, a shift count provably outside
//     0..31, signed arithmetic whose exact result never fits int32).
//
// Precision discipline: joins use interval hulls, loop heads and state
// entries widen to the slot's full type range after a few growing
// joins, and guard edges narrow the store by the tested comparison.
// Everything uncertain degrades to the slot type's full range, so the
// engine is sound for the "certain" verdicts the rules need and always
// terminates.
package absint

import (
	"fmt"

	"repro/internal/ctypes"
	"repro/internal/kernel"
	"repro/internal/sem"
)

// valKind discriminates the three shapes of an abstract value.
type valKind uint8

const (
	kBot   valKind = iota // no concrete value reaches this point
	kTop                  // untracked (floats, aggregates, given up)
	kRange                // integer interval [lo, hi]
)

// Val is an abstract value: bottom, top, or an integer interval. The
// interval invariant lo <= hi always holds for kRange.
type Val struct {
	k      valKind
	lo, hi int64
}

// Bot is the empty value (unreachable).
func Bot() Val { return Val{k: kBot} }

// Top is the unknown value (untracked type or lost precision).
func Top() Val { return Val{k: kTop} }

// Const is the singleton interval [c, c].
func Const(c int64) Val { return Val{k: kRange, lo: c, hi: c} }

// Interval is [lo, hi]; an empty interval (lo > hi) is Bot.
func Interval(lo, hi int64) Val {
	if lo > hi {
		return Bot()
	}
	return Val{k: kRange, lo: lo, hi: hi}
}

// IsBot reports whether no concrete value reaches here.
func (v Val) IsBot() bool { return v.k == kBot }

// IsTop reports whether the value is untracked.
func (v Val) IsTop() bool { return v.k == kTop }

// Const reports the single concrete value, if the interval is a point.
func (v Val) Const() (int64, bool) {
	if v.k == kRange && v.lo == v.hi {
		return v.lo, true
	}
	return 0, false
}

// Bounds reports the interval bounds (ok only for ranges).
func (v Val) Bounds() (lo, hi int64, ok bool) {
	if v.k != kRange {
		return 0, 0, false
	}
	return v.lo, v.hi, true
}

// Contains reports whether c may be the concrete value.
func (v Val) Contains(c int64) bool {
	switch v.k {
	case kBot:
		return false
	case kTop:
		return true
	}
	return v.lo <= c && c <= v.hi
}

// DefinitelyTrue reports whether every concrete value is nonzero.
func (v Val) DefinitelyTrue() bool { return v.k == kRange && (v.lo > 0 || v.hi < 0) }

// DefinitelyFalse reports whether the only concrete value is zero.
func (v Val) DefinitelyFalse() bool { return v.k == kRange && v.lo == 0 && v.hi == 0 }

// String renders the value for trap details and debugging.
func (v Val) String() string {
	switch v.k {
	case kBot:
		return "unreachable"
	case kTop:
		return "unknown"
	}
	if v.lo == v.hi {
		return fmt.Sprintf("%d", v.lo)
	}
	return fmt.Sprintf("[%d..%d]", v.lo, v.hi)
}

// join is the interval hull (least upper bound).
func join(a, b Val) Val {
	switch {
	case a.k == kBot:
		return b
	case b.k == kBot:
		return a
	case a.k == kTop || b.k == kTop:
		return Top()
	}
	return Interval(min64(a.lo, b.lo), max64(a.hi, b.hi))
}

// meet is the interval intersection (greatest lower bound).
func meet(a, b Val) Val {
	switch {
	case a.k == kBot || b.k == kBot:
		return Bot()
	case a.k == kTop:
		return b
	case b.k == kTop:
		return a
	}
	return Interval(max64(a.lo, b.lo), min64(a.hi, b.hi))
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// typeRange is the representable range of an integer-like type; ok is
// false for floats, aggregates, and anything else the engine does not
// track.
func typeRange(t ctypes.Type) (lo, hi int64, ok bool) {
	if t == nil {
		return 0, 0, false
	}
	switch tt := t.(type) {
	case *ctypes.BoolType:
		return 0, 1, true
	case *ctypes.EnumType:
		return -1 << 31, 1<<31 - 1, true
	case *ctypes.IntType:
		bits := int64(tt.Bytes) * 8
		if tt.Unsigned {
			return 0, 1<<uint(bits) - 1, true
		}
		return -1 << uint(bits-1), 1<<uint(bits-1) - 1, true
	}
	return 0, 0, false
}

// topOf is the full range of t, or Top for untracked types.
func topOf(t ctypes.Type) Val {
	lo, hi, ok := typeRange(t)
	if !ok {
		return Top()
	}
	return Interval(lo, hi)
}

// inSpace reinterprets v as a value of type t, mirroring cval's
// truncating stores and conversions conservatively: a value that fits
// t's range is unchanged (the reinterpretation is the identity), and
// anything else degrades to t's full range.
func inSpace(v Val, t ctypes.Type) Val {
	lo, hi, ok := typeRange(t)
	if !ok {
		if v.k == kBot {
			return v
		}
		return Top()
	}
	if v.k == kBot {
		return v
	}
	if v.k == kRange && v.lo >= lo && v.hi <= hi {
		return v
	}
	return Interval(lo, hi)
}

// zeroOf is the abstract zero-initialized value of a slot of type t
// (cval.New zero-fills storage).
func zeroOf(t ctypes.Type) Val {
	if _, _, ok := typeRange(t); ok {
		return Const(0)
	}
	return Top()
}

// ---------------------------------------------------------------------------
// Store

// Store is one abstract machine state: every module variable and
// valued-signal slot, plus the C-function frame slots live during a
// call. Bot marks the whole store unreachable (an infeasible path).
type Store struct {
	Bot   bool
	Vars  map[*kernel.Var]Val
	Sigs  map[*kernel.Signal]Val
	Frame map[*sem.VarInfo]Val // function parameters and locals
}

// NewStore returns an empty (top-everything) store.
func NewStore() *Store {
	return &Store{
		Vars: make(map[*kernel.Var]Val),
		Sigs: make(map[*kernel.Signal]Val),
	}
}

// Clone deep-copies the store.
func (s *Store) Clone() *Store {
	c := &Store{
		Bot:  s.Bot,
		Vars: make(map[*kernel.Var]Val, len(s.Vars)),
		Sigs: make(map[*kernel.Signal]Val, len(s.Sigs)),
	}
	for k, v := range s.Vars {
		c.Vars[k] = v
	}
	for k, v := range s.Sigs {
		c.Sigs[k] = v
	}
	if s.Frame != nil {
		c.Frame = make(map[*sem.VarInfo]Val, len(s.Frame))
		for k, v := range s.Frame {
			c.Frame[k] = v
		}
	}
	return c
}

// SetBot marks the store unreachable.
func (s *Store) SetBot() { s.Bot = true }

// VarVal reads a module variable slot.
func (s *Store) VarVal(v *kernel.Var) Val {
	if s.Bot {
		return Bot()
	}
	if val, ok := s.Vars[v]; ok {
		return val
	}
	return topOf(v.Type)
}

// SetVar writes a module variable slot, truncating into its storage
// type like a concrete assignment would.
func (s *Store) SetVar(v *kernel.Var, val Val) {
	if s.Bot {
		return
	}
	s.Vars[v] = inSpace(val, v.Type)
}

// SigVal reads a valued signal slot.
func (s *Store) SigVal(sig *kernel.Signal) Val {
	if s.Bot {
		return Bot()
	}
	if val, ok := s.Sigs[sig]; ok {
		return val
	}
	return topOf(sig.Type)
}

// SetSig writes a valued signal slot (an emit).
func (s *Store) SetSig(sig *kernel.Signal, val Val) {
	if s.Bot {
		return
	}
	s.Sigs[sig] = inSpace(val, sig.Type)
}

// FrameVal reads a function frame slot; ok is false when the slot is
// not in the frame (the variable is module-level).
func (s *Store) FrameVal(vi *sem.VarInfo) (Val, bool) {
	if s.Frame == nil {
		return Val{}, false
	}
	v, ok := s.Frame[vi]
	return v, ok
}

// SetFrame writes a function frame slot.
func (s *Store) SetFrame(vi *sem.VarInfo, val Val) {
	if s.Bot {
		return
	}
	if s.Frame == nil {
		s.Frame = make(map[*sem.VarInfo]Val)
	}
	s.Frame[vi] = inSpace(val, vi.Type)
}

// HavocVars forgets every mutable slot a call with unknown effects
// could touch: module variables and frame slots (emits cannot happen
// in data code, so signal values survive).
func (s *Store) HavocVars() {
	for v := range s.Vars {
		s.Vars[v] = topOf(v.Type)
	}
	for vi := range s.Frame {
		s.Frame[vi] = topOf(vi.Type)
	}
}

// JoinWith merges o into s (interval hulls slot-wise), reporting
// whether s changed. A Bot side contributes nothing.
func (s *Store) JoinWith(o *Store) bool {
	if o == nil || o.Bot {
		return false
	}
	if s.Bot {
		s.Bot = false
		s.Vars = make(map[*kernel.Var]Val, len(o.Vars))
		for k, v := range o.Vars {
			s.Vars[k] = v
		}
		s.Sigs = make(map[*kernel.Signal]Val, len(o.Sigs))
		for k, v := range o.Sigs {
			s.Sigs[k] = v
		}
		s.Frame = nil
		if o.Frame != nil {
			s.Frame = make(map[*sem.VarInfo]Val, len(o.Frame))
			for k, v := range o.Frame {
				s.Frame[k] = v
			}
		}
		return true
	}
	changed := false
	for k, ov := range o.Vars {
		nv := join(s.Vars[k], ov)
		if nv != s.Vars[k] {
			s.Vars[k] = nv
			changed = true
		}
	}
	for k, ov := range o.Sigs {
		nv := join(s.Sigs[k], ov)
		if nv != s.Sigs[k] {
			s.Sigs[k] = nv
			changed = true
		}
	}
	for vi, ov := range o.Frame {
		cur, ok := s.Frame[vi]
		if !ok {
			// Slot scoped to the other branch: unreadable here, adopt it.
			s.SetFrame(vi, ov)
			continue
		}
		nv := join(cur, ov)
		if nv != cur {
			s.Frame[vi] = nv
			changed = true
		}
	}
	return changed
}

// WidenFrom replaces every slot that grew beyond prev with its full
// type range, guaranteeing the fixpoint converges.
func (s *Store) WidenFrom(prev *Store) {
	if s.Bot || prev == nil || prev.Bot {
		return
	}
	for k, v := range s.Vars {
		if pv, ok := prev.Vars[k]; !ok || v != pv {
			s.Vars[k] = topOf(k.Type)
		}
	}
	for k, v := range s.Sigs {
		if pv, ok := prev.Sigs[k]; !ok || v != pv {
			s.Sigs[k] = topOf(k.Type)
		}
	}
	for vi, v := range s.Frame {
		if pv, ok := prev.Frame[vi]; !ok || v != pv {
			s.Frame[vi] = topOf(vi.Type)
		}
	}
}
