package absint

import (
	"repro/internal/ast"
	"repro/internal/efsm"
	"repro/internal/source"
)

// PathFact is the verdict on one root-to-leaf path of one state's
// decision tree, indexed exactly like efsm.Machine.Transitions (then
// before else).
type PathFact struct {
	// Feasible: some interval-consistent execution takes this path.
	Feasible bool
	// Pruned: the caller's syntactic prune callback already refuted the
	// path (the old per-transition analysis sees it too).
	Pruned bool
	// RefIndex, when >= 0, is the index into Transition.Data of the
	// first guard condition the intervals refuted on this path; RefExpr
	// is that condition's expression.
	RefIndex int
	RefExpr  ast.Expr
}

// Trap is one certain runtime event found during the reporting pass.
type Trap struct {
	Kind   TrapKind
	Pos    source.Pos
	Expr   ast.Expr
	Detail string
}

// Result is the converged analysis of one machine.
type Result struct {
	// Reachable holds the states some interval-consistent run enters.
	Reachable map[*efsm.State]bool
	// In is each reachable state's converged entry store.
	In map[*efsm.State]*Store
	// Paths are the per-state path verdicts under the final stores.
	Paths map[*efsm.State][]PathFact
	// Traps are the certain traps/wraps on feasible paths, deduplicated
	// by (kind, position).
	Traps []Trap
}

// stateJoinWiden is how many growing joins a state's entry store
// absorbs before widening to full type ranges.
const stateJoinWiden = 4

// Analyze runs the worklist fixpoint over (state × store) and then one
// reporting pass per reachable state under the converged stores. The
// optional prune callback flags paths the caller's syntactic analysis
// already refutes (by state and Transitions-order leaf index); those
// paths carry no value flow and their refutations are attributed to
// the syntactic layer, not the intervals.
//
// Certainty discipline: traps and refutations are only recorded during
// the reporting pass, when every store is at its final (widest) value —
// a verdict that holds there holds on every concrete run.
func Analyze(m *efsm.Machine, prune func(s *efsm.State, leaf int) bool) *Result {
	a := &analysis{
		m:     m,
		prune: prune,
		in:    make(map[*efsm.State]*Store),
		joins: make(map[*efsm.State]int),
	}
	if m.Initial != nil {
		a.in[m.Initial] = a.initialStore()
		a.work = append(a.work, m.Initial)
		a.onList = map[*efsm.State]bool{m.Initial: true}
	}
	for steps := 0; len(a.work) > 0 && steps < 10000; steps++ {
		s := a.work[0]
		a.work = a.work[1:]
		a.onList[s] = false
		a.transfer(s, false)
	}
	res := &Result{
		Reachable: make(map[*efsm.State]bool, len(a.in)),
		In:        a.in,
		Paths:     make(map[*efsm.State][]PathFact),
	}
	a.res = res
	a.trapSeen = make(map[trapKey]bool)
	for _, s := range m.States {
		if _, ok := a.in[s]; !ok {
			continue
		}
		res.Reachable[s] = true
		a.transfer(s, true)
	}
	return res
}

type trapKey struct {
	kind TrapKind
	pos  source.Pos
}

type analysis struct {
	m     *efsm.Machine
	prune func(s *efsm.State, leaf int) bool

	in     map[*efsm.State]*Store
	joins  map[*efsm.State]int
	work   []*efsm.State
	onList map[*efsm.State]bool

	// reporting pass state
	res      *Result
	curState *efsm.State
	leaf     int
	trapSeen map[trapKey]bool
}

// initialStore is the machine's boot state: every module variable and
// valued signal zero-initialized, exactly like the concrete runtime's
// cval.New slots.
func (a *analysis) initialStore() *Store {
	st := NewStore()
	for _, v := range a.m.Mod.Vars {
		st.Vars[v] = zeroOf(v.Type)
	}
	for _, sig := range a.m.Inputs {
		if sig.Type != nil {
			st.Sigs[sig] = zeroOf(sig.Type)
		}
	}
	for _, sig := range a.m.Outputs {
		if sig.Type != nil {
			st.Sigs[sig] = zeroOf(sig.Type)
		}
	}
	for _, sig := range a.m.Mod.Locals {
		if sig.Type != nil {
			st.Sigs[sig] = zeroOf(sig.Type)
		}
	}
	return st
}

// transfer abstractly executes one state's decision tree from its
// entry store. In fixpoint mode (report=false) feasible leaves flow
// their stores into successors; in report mode path facts and traps
// are recorded instead.
func (a *analysis) transfer(s *efsm.State, report bool) {
	st := a.in[s].Clone()
	// The environment drives valued inputs: any present input may carry
	// any value this instant.
	for _, sig := range a.m.Inputs {
		if sig.Type != nil {
			st.Sigs[sig] = topOf(sig.Type)
		}
	}
	it := &Interp{Info: a.m.Info, St: st}
	if report {
		a.curState = s
		it.OnTrap = a.recordTrap
	}
	a.leaf = 0
	a.walkNode(s, s.Root, it, pctx{refIdx: -1}, report)
}

func (a *analysis) recordTrap(kind TrapKind, e ast.Expr, detail string) {
	k := trapKey{kind, e.Pos()}
	if a.trapSeen[k] {
		return
	}
	a.trapSeen[k] = true
	a.res.Traps = append(a.res.Traps, Trap{Kind: kind, Pos: e.Pos(), Expr: e, Detail: detail})
}

// pctx is per-path context threaded down the decision tree by value.
type pctx struct {
	dataIdx int // DataBranch conditions seen so far (Transition.Data index)
	refIdx  int // first interval-refuted condition on this path, or -1
	refExpr ast.Expr
}

func (a *analysis) walkNode(s *efsm.State, n efsm.Node, it *Interp, pc pctx, report bool) {
	switch n := n.(type) {
	case nil:
		return

	case *efsm.ActNode:
		a.applyAction(it, n.Act)
		a.walkNode(s, n.Next, it, pc, report)

	case *efsm.InputBranch:
		// Presence is untracked: both outcomes are possible. Valued
		// tests do not read the value, so the stores only diverge
		// through the subtrees.
		base := it.St
		trapped := it.trapped
		it.St = base.Clone()
		a.walkNode(s, n.Then, it, pc, report)
		it.St = base
		it.trapped = trapped
		a.walkNode(s, n.Else, it, pc, report)

	case *efsm.DataBranch:
		// The condition's side effects happen exactly once, before the
		// split — mirroring the concrete single evaluation.
		cv := it.Eval(n.Expr.B, n.Expr.E)
		base := it.St
		trapped := it.trapped
		next := pc
		next.dataIdx = pc.dataIdx + 1

		thenPC := next
		it.St = base.Clone()
		wasBot := it.St.Bot
		it.assume(n.Expr.B, n.Expr.E, cv, true)
		if report && !wasBot && it.St.Bot && pc.refIdx < 0 {
			thenPC.refIdx = pc.dataIdx
			thenPC.refExpr = n.Expr.E
		}
		a.walkNode(s, n.Then, it, thenPC, report)

		elsePC := next
		it.St = base
		it.trapped = trapped
		wasBot = it.St.Bot
		it.assume(n.Expr.B, n.Expr.E, cv, false)
		if report && !wasBot && it.St.Bot && pc.refIdx < 0 {
			elsePC.refIdx = pc.dataIdx
			elsePC.refExpr = n.Expr.E
		}
		a.walkNode(s, n.Else, it, elsePC, report)

	case *efsm.Leaf:
		idx := a.leaf
		a.leaf++
		feasible := !it.St.Bot
		pruned := a.prune != nil && a.prune(s, idx)
		if report {
			a.res.Paths[s] = append(a.res.Paths[s], PathFact{
				Feasible: feasible && !pruned,
				Pruned:   pruned,
				RefIndex: pc.refIdx,
				RefExpr:  pc.refExpr,
			})
			return
		}
		if feasible && !pruned && n.To != nil {
			a.flowInto(n.To, it.St)
		}
	}
}

func (a *analysis) applyAction(it *Interp, act efsm.Action) {
	if it.St.Bot {
		return
	}
	switch act.Kind {
	case efsm.ActEmit:
		if act.Sig != nil && act.Sig.Type != nil && act.Value != nil {
			v := it.Eval(act.Value.B, act.Value.E)
			it.St.SetSig(act.Sig, v)
		}
	case efsm.ActAssign:
		r := it.lvalue(act.LHS.B, act.LHS.E)
		src := it.Eval(act.RHS.B, act.RHS.E)
		it.writeRef(act.LHS.B, r, src)
	case efsm.ActEval:
		it.Eval(act.X.B, act.X.E)
	case efsm.ActCall:
		if act.F != nil {
			// Extracted data functions run frameless at module scope,
			// exactly like dataexec.ExecDataFunc.
			it.ExecStmts(act.F.B, act.F.Body)
		}
	}
}

// flowInto joins a feasible leaf's store into the successor's entry
// store, widening after a few growing joins, and requeues the
// successor when its entry changed.
func (a *analysis) flowInto(to *efsm.State, st *Store) {
	cur, ok := a.in[to]
	if !ok {
		a.in[to] = st.Clone()
		a.enqueue(to)
		return
	}
	prev := cur.Clone()
	if !cur.JoinWith(st) {
		return
	}
	a.joins[to]++
	if a.joins[to] >= stateJoinWiden {
		cur.WidenFrom(prev)
	}
	a.enqueue(to)
}

func (a *analysis) enqueue(s *efsm.State) {
	if a.onList == nil {
		a.onList = make(map[*efsm.State]bool)
	}
	if a.onList[s] {
		return
	}
	a.onList[s] = true
	a.work = append(a.work, s)
}
