package absint

import (
	"repro/internal/ast"
	"repro/internal/ctypes"
	"repro/internal/kernel"
	"repro/internal/sem"
	"repro/internal/token"
)

// assume refines the store with the knowledge that e's C truth value
// is want: a constant contradiction kills the path outright, otherwise
// a side-effect-free condition narrows the tested slots. cv must be
// e's already-evaluated abstract value (so its side effects happened
// exactly once).
func (it *Interp) assume(b *kernel.Binding, e ast.Expr, cv Val, want bool) {
	if it.St.Bot {
		return
	}
	if cv.IsBot() || (want && cv.DefinitelyFalse()) || (!want && cv.DefinitelyTrue()) {
		it.St.SetBot()
		return
	}
	if sideEffectFree(e) {
		it.Narrow(b, e, want)
	}
}

// Narrow refines the current store by asserting that the (side-effect-
// free) condition e evaluates to want. It clamps the intervals of
// plain variable and valued-signal operands of comparisons, truthiness
// tests, and &&/||/! combinations; an empty clamp kills the path.
func (it *Interp) Narrow(b *kernel.Binding, e ast.Expr, want bool) {
	if it.St.Bot {
		return
	}
	switch e := e.(type) {
	case *ast.Paren:
		it.Narrow(b, e.X, want)
	case *ast.Unary:
		switch e.Op {
		case token.NOT:
			it.Narrow(b, e.X, !want)
		case token.TILDE:
			if it.Info.TypeOf(e.X) == ctypes.Bool {
				it.Narrow(b, e.X, !want) // ECL's bool negation
			}
		}
	case *ast.Binary:
		switch e.Op {
		case token.LAND:
			if want { // both operands are true
				it.Narrow(b, e.X, true)
				it.Narrow(b, e.Y, true)
			}
		case token.LOR:
			if !want { // both operands are false
				it.Narrow(b, e.X, false)
				it.Narrow(b, e.Y, false)
			}
		case token.EQL, token.NEQ, token.LSS, token.GTR, token.LEQ, token.GEQ:
			it.narrowCmp(b, e, want)
		}
	case *ast.Ident:
		it.narrowTruth(b, e, want)
	}
}

// slot is a narrowable storage location, resolved to the concrete
// store key (frame VarInfo, module Var, or valued Signal).
type slot struct {
	frame *sem.VarInfo
	kv    *kernel.Var
	sig   *kernel.Signal
	typ   ctypes.Type
}

// slotFor resolves a plain (possibly parenthesized) identifier to a
// narrowable integer slot, through the same frame-then-module rule the
// evaluator reads with.
func (it *Interp) slotFor(b *kernel.Binding, e ast.Expr) (slot, bool) {
	for {
		p, ok := e.(*ast.Paren)
		if !ok {
			break
		}
		e = p.X
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return slot{}, false
	}
	switch obj := it.Info.UseOf(id).(type) {
	case *sem.VarInfo:
		if _, _, ok := typeRange(obj.Type); !ok {
			return slot{}, false
		}
		if _, inFrame := it.St.FrameVal(obj); inFrame {
			return slot{frame: obj, typ: obj.Type}, true
		}
		kv := b.Vars[obj]
		if kv == nil {
			return slot{}, false
		}
		return slot{kv: kv, typ: kv.Type}, true
	case *sem.SignalInfo:
		sig := b.Sigs[obj]
		if sig == nil || sig.Type == nil {
			return slot{}, false
		}
		if _, _, ok := typeRange(sig.Type); !ok {
			return slot{}, false
		}
		return slot{sig: sig, typ: sig.Type}, true
	}
	return slot{}, false
}

func (it *Interp) slotRead(b *kernel.Binding, s slot) Val {
	switch {
	case s.sig != nil:
		return it.St.SigVal(s.sig)
	case s.frame != nil:
		v, _ := it.St.FrameVal(s.frame)
		return v
	}
	return it.St.VarVal(s.kv)
}

// slotWrite stores a narrowed value directly (it is already a subset
// of the slot's current value, hence in range — no truncation).
func (it *Interp) slotWrite(s slot, v Val) {
	if it.St.Bot {
		return
	}
	switch {
	case s.sig != nil:
		it.St.Sigs[s.sig] = v
	case s.frame != nil:
		it.St.Frame[s.frame] = v
	default:
		it.St.Vars[s.kv] = v
	}
}

// narrowTruth clamps a bare identifier condition: "if (x)" removes a
// zero endpoint, "if (!x)" pins the slot to zero.
func (it *Interp) narrowTruth(b *kernel.Binding, id *ast.Ident, want bool) {
	s, ok := it.slotFor(b, id)
	if !ok {
		return
	}
	cur := it.slotRead(b, s)
	lo, hi, ok := cur.Bounds()
	if !ok {
		if cur.IsTop() {
			cur = topOf(s.typ)
			lo, hi, ok = cur.Bounds()
		}
		if !ok {
			return
		}
	}
	if !want {
		if lo <= 0 && 0 <= hi {
			it.slotWrite(s, Const(0))
		} else {
			it.St.SetBot()
		}
		return
	}
	// Nonzero: trim zero endpoints (interior holes are inexpressible).
	if lo == 0 && hi == 0 {
		it.St.SetBot()
		return
	}
	if lo == 0 {
		lo = 1
	}
	if hi == 0 {
		hi = -1
	}
	it.slotWrite(s, Interval(lo, hi))
}

// narrowCmp clamps the plain-slot operands of an integer comparison.
func (it *Interp) narrowCmp(b *kernel.Binding, e *ast.Binary, want bool) {
	op := e.Op
	if !want {
		op = negateCmp(op)
	}
	tx, ty := it.Info.TypeOf(e.X), it.Info.TypeOf(e.Y)
	if tx == nil || ty == nil || !ctypes.IsInteger(tx) || !ctypes.IsInteger(ty) {
		return
	}
	space := ctypes.UsualArithmetic(tx, ty)
	spLo, spHi, ok := typeRange(space)
	if !ok {
		return
	}
	xv := inSpace(it.Eval(b, e.X), space)
	yv := inSpace(it.Eval(b, e.Y), space)
	if it.St.Bot {
		return
	}
	if sx, ok := it.slotFor(b, e.X); ok {
		it.clampSlot(b, sx, op, yv, spLo, spHi)
	}
	if sy, ok := it.slotFor(b, e.Y); ok {
		it.clampSlot(b, sy, flipCmp(op), xv, spLo, spHi)
	}
}

// clampSlot narrows slot s by "s OP bound" in the comparison space
// [spLo, spHi]. The clamp only applies when the slot's current value
// already fits the comparison space (so the space conversion is the
// identity and shrinking the converted value shrinks the slot).
func (it *Interp) clampSlot(b *kernel.Binding, s slot, op token.Kind, bound Val, spLo, spHi int64) {
	bl, bh, ok := bound.Bounds()
	if !ok {
		return
	}
	cur := it.slotRead(b, s)
	if cur.IsTop() {
		cur = topOf(s.typ)
	}
	cl, ch, ok := cur.Bounds()
	if !ok {
		return
	}
	if cl < spLo || ch > spHi {
		return // reinterpreted in the comparison: can't clamp the slot
	}
	var lo, hi int64 = spLo, spHi
	switch op {
	case token.EQL:
		lo, hi = bl, bh
	case token.NEQ:
		if bl == bh {
			nv := trimPoint(Interval(cl, ch), bl)
			if nv.IsBot() {
				it.St.SetBot()
			} else {
				it.slotWrite(s, nv)
			}
		}
		return
	case token.LSS:
		hi = bh - 1
	case token.LEQ:
		hi = bh
	case token.GTR:
		lo = bl + 1
	case token.GEQ:
		lo = bl
	default:
		return
	}
	nv := Interval(max64(cl, lo), min64(ch, hi))
	if nv.IsBot() {
		it.St.SetBot()
		return
	}
	it.slotWrite(s, nv)
}

// trimPoint removes c from v when c sits on an endpoint (interior
// holes are inexpressible in an interval).
func trimPoint(v Val, c int64) Val {
	lo, hi, ok := v.Bounds()
	if !ok {
		return v
	}
	if lo == c && hi == c {
		return Bot()
	}
	if lo == c {
		return Interval(lo+1, hi)
	}
	if hi == c {
		return Interval(lo, hi-1)
	}
	return v
}

// negateCmp is the comparison that holds when op does not.
func negateCmp(op token.Kind) token.Kind {
	switch op {
	case token.EQL:
		return token.NEQ
	case token.NEQ:
		return token.EQL
	case token.LSS:
		return token.GEQ
	case token.GEQ:
		return token.LSS
	case token.GTR:
		return token.LEQ
	case token.LEQ:
		return token.GTR
	}
	return op
}

// flipCmp is the comparison seen from the right operand's side.
func flipCmp(op token.Kind) token.Kind {
	switch op {
	case token.LSS:
		return token.GTR
	case token.GTR:
		return token.LSS
	case token.LEQ:
		return token.GEQ
	case token.GEQ:
		return token.LEQ
	}
	return op // EQL and NEQ are symmetric
}

// sideEffectFree reports whether evaluating e cannot change the store:
// no assignments, no increments, no calls. Such a condition may be
// re-walked for narrowing after its value was computed.
func sideEffectFree(e ast.Expr) bool {
	switch e := e.(type) {
	case nil:
		return true
	case *ast.Ident, *ast.BasicLit:
		return true
	case *ast.Paren:
		return sideEffectFree(e.X)
	case *ast.Unary:
		if e.Op == token.INC || e.Op == token.DEC {
			return false
		}
		return sideEffectFree(e.X)
	case *ast.Postfix:
		return false
	case *ast.Binary:
		return sideEffectFree(e.X) && sideEffectFree(e.Y)
	case *ast.Assign:
		return false
	case *ast.Cond:
		return sideEffectFree(e.CondX) && sideEffectFree(e.Then) && sideEffectFree(e.Else)
	case *ast.Call:
		return false
	case *ast.Index:
		return sideEffectFree(e.X) && sideEffectFree(e.Sub)
	case *ast.Member:
		return sideEffectFree(e.X)
	case *ast.Cast:
		return sideEffectFree(e.X)
	case *ast.SizeofExpr:
		return true
	}
	return false
}
