package absint

import (
	"repro/internal/ast"
	"repro/internal/ctypes"
	"repro/internal/kernel"
	"repro/internal/sem"
	"repro/internal/token"
)

// TrapKind classifies the certain events the interpreter reports.
type TrapKind string

// Trap kinds.
const (
	// TrapDivZero: an integer division or modulo whose divisor is
	// provably always zero (the concrete execution errors out here).
	TrapDivZero TrapKind = "div-zero"
	// TrapShift: a shift whose count is provably outside 0..31 before
	// the runtime's &31 mask is applied.
	TrapShift TrapKind = "shift-range"
	// TrapWrap: signed +, -, *, or / whose exact result provably never
	// fits int32 (the concrete execution silently wraps).
	TrapWrap TrapKind = "wrap"
)

// maxSteps bounds one state transfer's abstract work; past it the
// interpreter degrades every result to top (still sound, never stuck).
const maxSteps = 50000

// maxLoopIters bounds one abstract loop fixpoint; widening converges
// far earlier, this is a backstop.
const maxLoopIters = 40

// maxCallDepth bounds abstract C-call inlining; deeper calls havoc the
// mutable slots and return top (dataexec's own limit is 64).
const maxCallDepth = 8

// Interp abstractly executes data code over a Store, mirroring
// internal/dataexec statement by statement. It is single-use per
// transfer and not safe for concurrent use.
type Interp struct {
	Info *sem.Info
	St   *Store
	// OnTrap, when set, receives each certain trap with the offending
	// expression. It only fires while the current path is feasible and
	// at most once per path (after a certain div-by-zero the concrete
	// execution is already dead).
	OnTrap func(kind TrapKind, e ast.Expr, detail string)

	steps   int
	gaveUp  bool
	trapped bool
	depth   int
}

func (it *Interp) step() {
	it.steps++
	if it.steps > maxSteps {
		it.gaveUp = true
	}
}

func (it *Interp) trap(kind TrapKind, e ast.Expr, detail string) {
	if it.St.Bot || it.trapped || it.gaveUp {
		return
	}
	if it.OnTrap != nil {
		it.OnTrap(kind, e, detail)
	}
	it.trapped = true
	if kind == TrapDivZero {
		// The concrete execution errors out here on every run: nothing
		// past this point ever executes.
		it.St.SetBot()
	}
}

// flow summarizes the abnormal exits of a statement's abstract
// execution; the fall-through store is it.St after the call.
type flow struct {
	brk, cont, ret *Store
	retVal         Val
	retVoid        bool
}

func joinStores(a, b *Store) *Store {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	a.JoinWith(b)
	return a
}

// mergeExits folds o's abnormal exits into f.
func (f *flow) mergeExits(o flow) {
	f.brk = joinStores(f.brk, o.brk)
	f.cont = joinStores(f.cont, o.cont)
	f.ret = joinStores(f.ret, o.ret)
	f.retVal = join(f.retVal, o.retVal)
	f.retVoid = f.retVoid || o.retVoid
}

// mergeRet folds only o's return exit into f (for loops, which consume
// break/continue).
func (f *flow) mergeRet(o flow) {
	f.ret = joinStores(f.ret, o.ret)
	f.retVal = join(f.retVal, o.retVal)
	f.retVoid = f.retVoid || o.retVoid
}

// ---------------------------------------------------------------------------
// Statements

// ExecStmts abstractly executes a data-statement list (a data-function
// body) over the current store.
func (it *Interp) ExecStmts(b *kernel.Binding, stmts []ast.Stmt) flow {
	var out flow
	for _, s := range stmts {
		if it.St.Bot {
			break
		}
		f := it.execStmt(b, s)
		out.mergeExits(f)
	}
	return out
}

func (it *Interp) execStmt(b *kernel.Binding, s ast.Stmt) flow {
	it.step()
	if it.St.Bot {
		return flow{}
	}
	switch s := s.(type) {
	case nil, *ast.Empty:
		return flow{}

	case *ast.Block:
		return it.ExecStmts(b, s.Stmts)

	case *ast.VarDecl:
		vi := it.Info.VarOf[s]
		if vi == nil {
			return flow{}
		}
		// Function-local declarations live in the frame; module-level
		// declarations (and declarations in extracted data functions,
		// which run frameless) write the module slot — exactly
		// dataexec's rule.
		if it.depth > 0 {
			it.St.SetFrame(vi, zeroOf(vi.Type))
		}
		if s.Init != nil {
			v := it.Eval(b, s.Init)
			it.writeVar(b, vi, v)
		}
		return flow{}

	case *ast.ExprStmt:
		it.Eval(b, s.X)
		return flow{}

	case *ast.If:
		cv := it.Eval(b, s.Cond)
		if cv.DefinitelyTrue() {
			return it.execStmt(b, s.Then)
		}
		if cv.DefinitelyFalse() {
			if s.Else != nil {
				return it.execStmt(b, s.Else)
			}
			return flow{}
		}
		pre := it.St.Clone()
		it.assume(b, s.Cond, cv, true)
		fThen := it.execStmt(b, s.Then)
		stThen := it.St
		it.St = pre
		it.assume(b, s.Cond, cv, false)
		var fElse flow
		if s.Else != nil {
			fElse = it.execStmt(b, s.Else)
		}
		it.St.JoinWith(stThen)
		fThen.mergeExits(fElse)
		return fThen

	case *ast.While:
		return it.loop(b, s.Cond, nil, s.Body, true)

	case *ast.DoWhile:
		return it.loop(b, s.Cond, nil, s.Body, false)

	case *ast.For:
		var out flow
		if s.Init != nil {
			out.mergeExits(it.execStmt(b, s.Init))
		}
		lf := it.loop(b, s.Cond, s.Post, s.Body, true)
		out.mergeRet(lf)
		return out

	case *ast.Switch:
		return it.execSwitch(b, s)

	case *ast.Break:
		f := flow{brk: it.St.Clone()}
		it.St.SetBot()
		return f
	case *ast.Continue:
		f := flow{cont: it.St.Clone()}
		it.St.SetBot()
		return f

	case *ast.Return:
		f := flow{ret: it.St.Clone()}
		if s.X != nil {
			f.retVal = it.Eval(b, s.X)
			f.ret = it.St.Clone()
		} else {
			f.retVoid = true
		}
		it.St.SetBot()
		return f
	}
	// Anything dataexec cannot execute aborts concretely; abstractly we
	// keep the path alive but forget the mutable state.
	it.St.HavocVars()
	return flow{}
}

// loop runs an abstract loop-body fixpoint with widening. condFirst
// distinguishes while/for (test at the top) from do-while (test after
// the body). The fall-through store after loop() is the join of every
// loop-exit store (failed test or break).
func (it *Interp) loop(b *kernel.Binding, cond ast.Expr, post, body ast.Stmt, condFirst bool) flow {
	var out flow
	exit := it.St.Clone()
	exit.SetBot()
	inv := it.St.Clone()
	joins := 0
	for iter := 0; iter < maxLoopIters; iter++ {
		it.St = inv.Clone()
		if condFirst {
			it.loopCond(b, cond, exit)
		}
		if !it.St.Bot {
			f := it.execStmt(b, body)
			out.mergeRet(f)
			if f.brk != nil {
				exit.JoinWith(f.brk)
			}
			if f.cont != nil {
				it.St.JoinWith(f.cont)
			}
			if post != nil && !it.St.Bot {
				pf := it.execStmt(b, post)
				out.mergeRet(pf)
			}
			if !condFirst {
				it.loopCond(b, cond, exit)
			}
		}
		next := inv.Clone()
		if !next.JoinWith(it.St) {
			break
		}
		joins++
		if joins >= 3 {
			next.WidenFrom(inv)
		}
		inv = next
		if it.gaveUp {
			// Stop refining; exit with everything forgotten.
			inv.HavocVars()
			exit.JoinWith(inv)
			break
		}
	}
	it.St = exit
	return out
}

// loopCond evaluates the loop test over it.St, joining the
// test-failed branch into exit and leaving it.St as the test-passed
// branch.
func (it *Interp) loopCond(b *kernel.Binding, cond ast.Expr, exit *Store) {
	if cond == nil {
		return // for(;;): no exit through the test
	}
	cv := it.Eval(b, cond)
	if it.St.Bot {
		return
	}
	if !cv.DefinitelyTrue() {
		ex := it.St.Clone()
		if sideEffectFree(cond) {
			save := it.St
			it.St = ex
			it.Narrow(b, cond, false)
			it.St = save
		}
		exit.JoinWith(ex)
	}
	it.assume(b, cond, cv, true)
}

func (it *Interp) execSwitch(b *kernel.Binding, s *ast.Switch) flow {
	tag := it.Eval(b, s.Tag)
	if it.St.Bot {
		return flow{}
	}
	constCases := true
	vals := make([]int64, len(s.Cases))
	defaultIdx := -1
	for i, c := range s.Cases {
		if c.Values == nil {
			defaultIdx = i
			vals[i] = 0
			continue
		}
		// The analyzer's subset: one constant per case (sem enforces
		// constant case values; multi-value cases degrade to imprecise).
		if len(c.Values) != 1 {
			constCases = false
			continue
		}
		v, ok := it.Info.ConstEval(c.Values[0])
		if !ok {
			constCases = false
			continue
		}
		vals[i] = v
	}
	if tc, ok := tag.Const(); ok && constCases {
		match := defaultIdx
		for i, c := range s.Cases {
			if c.Values != nil && vals[i] == tc {
				match = i
				break
			}
		}
		if match < 0 {
			return flow{} // no case, no default: the switch is a no-op
		}
		return it.runCases(b, s, match)
	}
	// Imprecise tag: any case (or the default, or — without a default —
	// no case at all) may be the entry point; join every outcome.
	pre := it.St.Clone()
	acc := pre.Clone()
	acc.SetBot()
	if defaultIdx < 0 {
		acc.JoinWith(pre) // falling past every case
	}
	var out flow
	for i := range s.Cases {
		it.St = pre.Clone()
		f := it.runCases(b, s, i)
		out.mergeExits(f)
		acc.JoinWith(it.St)
	}
	it.St = acc
	return out
}

// runCases executes case bodies from start onward (C fallthrough),
// consuming break as the switch exit — the same sequential scan
// dataexec performs once a case matches.
func (it *Interp) runCases(b *kernel.Binding, s *ast.Switch, start int) flow {
	var out flow
	var exit *Store
	for i := start; i < len(s.Cases); i++ {
		f := it.ExecStmts(b, s.Cases[i].Body)
		if f.brk != nil {
			exit = joinStores(exit, f.brk)
		}
		out.cont = joinStores(out.cont, f.cont)
		out.mergeRet(f)
		if it.St.Bot {
			break
		}
	}
	if exit != nil {
		it.St.JoinWith(exit)
	}
	return out
}

// ---------------------------------------------------------------------------
// Variable access

// readVar reads a variable through the frame-then-module-slot rule.
func (it *Interp) readVar(b *kernel.Binding, vi *sem.VarInfo) Val {
	if v, ok := it.St.FrameVal(vi); ok {
		return v
	}
	if kv := b.Vars[vi]; kv != nil {
		return it.St.VarVal(kv)
	}
	return Top()
}

// writeVar writes a variable through the frame-then-module-slot rule.
func (it *Interp) writeVar(b *kernel.Binding, vi *sem.VarInfo, v Val) {
	if _, ok := it.St.FrameVal(vi); ok {
		it.St.SetFrame(vi, v)
		return
	}
	if kv := b.Vars[vi]; kv != nil {
		it.St.SetVar(kv, v)
	}
}

// lref is an abstract lvalue: a scalar slot or an opaque (untracked)
// location.
type lref struct {
	vi     *sem.VarInfo // non-nil: variable (frame or module slot)
	opaque bool
}

// lvalue resolves an assignable expression, evaluating any
// subexpressions (index computations) for their effects.
func (it *Interp) lvalue(b *kernel.Binding, e ast.Expr) lref {
	switch e := e.(type) {
	case *ast.Ident:
		if vi, ok := it.Info.UseOf(e).(*sem.VarInfo); ok {
			return lref{vi: vi}
		}
	case *ast.Paren:
		return it.lvalue(b, e.X)
	case *ast.Index:
		it.lvalue(b, e.X)
		it.Eval(b, e.Sub)
		return lref{opaque: true}
	case *ast.Member:
		it.lvalue(b, e.X)
		return lref{opaque: true}
	}
	return lref{opaque: true}
}

func (it *Interp) readRef(b *kernel.Binding, r lref) Val {
	if r.vi == nil {
		return Top()
	}
	return it.readVar(b, r.vi)
}

func (it *Interp) writeRef(b *kernel.Binding, r lref, v Val) {
	if r.vi == nil {
		return // aggregate element: the whole slot is already top
	}
	it.writeVar(b, r.vi, v)
}

func (it *Interp) refType(r lref) ctypes.Type {
	if r.vi != nil {
		return r.vi.Type
	}
	return nil
}

// ---------------------------------------------------------------------------
// Expressions

// Eval abstractly evaluates e over the current store, applying its
// side effects, and returns its value in e's own C value space.
func (it *Interp) Eval(b *kernel.Binding, e ast.Expr) Val {
	it.step()
	if it.gaveUp {
		return Top()
	}
	if it.St.Bot {
		return Bot()
	}
	switch e := e.(type) {
	case nil:
		return Top()

	case *ast.Ident:
		switch obj := it.Info.UseOf(e).(type) {
		case *sem.VarInfo:
			return it.readVar(b, obj)
		case *sem.SignalInfo:
			if sig := b.Sigs[obj]; sig != nil && sig.Type != nil {
				return it.St.SigVal(sig)
			}
			return Top()
		case *sem.ConstInfo:
			return Const(obj.Value)
		}
		return Top()

	case *ast.BasicLit:
		switch e.Kind {
		case token.INT, token.CHAR:
			if v, ok := it.Info.ConstEval(e); ok {
				return Const(v)
			}
		}
		return Top()

	case *ast.Paren:
		return it.Eval(b, e.X)

	case *ast.Unary:
		return it.evalUnary(b, e)

	case *ast.Postfix:
		r := it.lvalue(b, e.X)
		old := it.readRef(b, r)
		it.writeRef(b, r, it.incDec(old, e.Op, it.refType(r)))
		return old

	case *ast.Binary:
		return it.evalBinary(b, e)

	case *ast.Assign:
		return it.evalAssign(b, e)

	case *ast.Cond:
		cv := it.Eval(b, e.CondX)
		if cv.DefinitelyTrue() {
			return it.Eval(b, e.Then)
		}
		if cv.DefinitelyFalse() {
			return it.Eval(b, e.Else)
		}
		pre := it.St.Clone()
		v1 := it.Eval(b, e.Then)
		stThen := it.St
		it.St = pre
		v2 := it.Eval(b, e.Else)
		it.St.JoinWith(stThen)
		return join(v1, v2)

	case *ast.Call:
		return it.evalCall(b, e)

	case *ast.Index:
		it.Eval(b, e.X)
		it.Eval(b, e.Sub)
		return Top()

	case *ast.Member:
		it.Eval(b, e.X)
		return Top()

	case *ast.Cast:
		v := it.Eval(b, e.X)
		if to := it.Info.TypeOfExpr[e.Type]; to != nil {
			return inSpace(v, to)
		}
		return Top()

	case *ast.SizeofExpr:
		if e.Type != nil {
			if t := it.Info.TypeOfExpr[e.Type]; t != nil {
				return Const(int64(t.Size()))
			}
			return Top()
		}
		if t := it.Info.TypeOf(e.X); t != nil {
			return Const(int64(t.Size()))
		}
		return Top()
	}
	return Top()
}

// incDec mirrors dataexec's SetInt(Int()+delta): plain int64 adjust,
// truncated into storage (no wrap report — this is a raw store, not C
// arithmetic).
func (it *Interp) incDec(v Val, op token.Kind, t ctypes.Type) Val {
	delta := int64(1)
	if op == token.DEC {
		delta = -1
	}
	if lo, hi, ok := v.Bounds(); ok {
		return inSpace(Interval(lo+delta, hi+delta), t)
	}
	return inSpace(Top(), t)
}

func (it *Interp) evalUnary(b *kernel.Binding, e *ast.Unary) Val {
	switch e.Op {
	case token.INC, token.DEC:
		r := it.lvalue(b, e.X)
		nv := it.incDec(it.readRef(b, r), e.Op, it.refType(r))
		it.writeRef(b, r, nv)
		return nv
	}
	x := it.Eval(b, e.X)
	switch e.Op {
	case token.ADD:
		return x
	case token.SUB:
		t := it.Info.TypeOf(e.X)
		if t != nil && t.Kind() == ctypes.KindFloat {
			return Top()
		}
		pt := promoteOf(t)
		if lo, hi, ok := x.Bounds(); ok {
			return fitOrFull(Interval(-hi, -lo), pt)
		}
		return topOf(pt)
	case token.NOT:
		if x.DefinitelyTrue() {
			return Const(0)
		}
		if x.DefinitelyFalse() {
			return Const(1)
		}
		if x.IsBot() {
			return Bot()
		}
		return Interval(0, 1)
	case token.TILDE:
		t := it.Info.TypeOf(e.X)
		if t == ctypes.Bool {
			// ECL's logical negation on bool (the paper's "~crc_ok").
			if x.DefinitelyTrue() {
				return Const(0)
			}
			if x.DefinitelyFalse() {
				return Const(1)
			}
			if x.IsBot() {
				return Bot()
			}
			return Interval(0, 1)
		}
		pt := promoteOf(t)
		if lo, hi, ok := x.Bounds(); ok {
			// ^x is exactly [-hi-1, -lo-1] (monotone decreasing).
			return fitOrFull(Interval(^hi, ^lo), pt)
		}
		return topOf(pt)
	}
	return Top()
}

func promoteOf(t ctypes.Type) ctypes.Type {
	if t == nil || !ctypes.IsArithmetic(t) {
		return ctypes.Int
	}
	return ctypes.Promote(t)
}

// fitOrFull keeps an exactly-computed interval when it fits t's range,
// degrading to the full range otherwise (the concrete value wrapped).
func fitOrFull(v Val, t ctypes.Type) Val {
	lo, hi, ok := typeRange(t)
	if !ok {
		return Top()
	}
	if vl, vh, vok := v.Bounds(); vok && vl >= lo && vh <= hi {
		return v
	}
	if v.IsBot() {
		return v
	}
	return Interval(lo, hi)
}

func (it *Interp) evalAssign(b *kernel.Binding, e *ast.Assign) Val {
	r := it.lvalue(b, e.LHS)
	src := it.Eval(b, e.RHS)
	t := it.refType(r)
	if e.Op == token.ASSIGN {
		it.writeRef(b, r, src)
		if t != nil {
			return inSpace(src, t)
		}
		return Top()
	}
	var binOp token.Kind
	switch e.Op {
	case token.ADD_ASSIGN:
		binOp = token.ADD
	case token.SUB_ASSIGN:
		binOp = token.SUB
	case token.MUL_ASSIGN:
		binOp = token.MUL
	case token.QUO_ASSIGN:
		binOp = token.QUO
	case token.REM_ASSIGN:
		binOp = token.REM
	case token.AND_ASSIGN:
		binOp = token.AND
	case token.OR_ASSIGN:
		binOp = token.OR
	case token.XOR_ASSIGN:
		binOp = token.XOR
	case token.SHL_ASSIGN:
		binOp = token.SHL
	case token.SHR_ASSIGN:
		binOp = token.SHR
	default:
		it.writeRef(b, r, Top())
		return Top()
	}
	old := it.readRef(b, r)
	res := it.arith(binOp, old, src, t, it.Info.TypeOf(e.RHS), e)
	it.writeRef(b, r, res)
	if t != nil {
		return inSpace(res, t)
	}
	return Top()
}

func (it *Interp) evalBinary(b *kernel.Binding, e *ast.Binary) Val {
	switch e.Op {
	case token.COMMA:
		it.Eval(b, e.X)
		return it.Eval(b, e.Y)
	case token.LAND:
		x := it.Eval(b, e.X)
		if x.DefinitelyFalse() {
			return Const(0) // Y never evaluates
		}
		if x.IsBot() {
			return Bot()
		}
		if x.DefinitelyTrue() {
			return truth(it.Eval(b, e.Y))
		}
		// Y evaluates on some runs only: join the two effect worlds.
		pre := it.St.Clone()
		y := it.Eval(b, e.Y)
		it.St.JoinWith(pre)
		if y.DefinitelyFalse() {
			return Const(0)
		}
		return Interval(0, 1)
	case token.LOR:
		x := it.Eval(b, e.X)
		if x.DefinitelyTrue() {
			return Const(1)
		}
		if x.IsBot() {
			return Bot()
		}
		if x.DefinitelyFalse() {
			return truth(it.Eval(b, e.Y))
		}
		pre := it.St.Clone()
		y := it.Eval(b, e.Y)
		it.St.JoinWith(pre)
		if y.DefinitelyTrue() {
			return Const(1)
		}
		return Interval(0, 1)
	}
	x := it.Eval(b, e.X)
	y := it.Eval(b, e.Y)
	return it.arith(e.Op, x, y, it.Info.TypeOf(e.X), it.Info.TypeOf(e.Y), e)
}

func truth(v Val) Val {
	if v.DefinitelyTrue() {
		return Const(1)
	}
	if v.DefinitelyFalse() {
		return Const(0)
	}
	if v.IsBot() {
		return Bot()
	}
	return Interval(0, 1)
}

func (it *Interp) evalCall(b *kernel.Binding, e *ast.Call) Val {
	fi, _ := it.Info.UseOf(e.Fun).(*sem.FuncInfo)
	args := make([]Val, len(e.Args))
	for i, a := range e.Args {
		args[i] = it.Eval(b, a)
	}
	if fi == nil || fi.Decl.Body == nil {
		return Top()
	}
	if it.depth >= maxCallDepth || it.gaveUp {
		// Too deep to inline: the callee may write any module variable.
		it.St.HavocVars()
		return Top()
	}
	// Save the frame slots the parameters shadow (recursion reuses the
	// same VarInfos), bind arguments, inline the body, restore.
	type saved struct {
		vi      *sem.VarInfo
		val     Val
		existed bool
	}
	var sav []saved
	for i, p := range fi.Params {
		old, ok := it.St.FrameVal(p)
		sav = append(sav, saved{p, old, ok})
		av := Top()
		if i < len(args) {
			av = args[i]
		}
		it.St.SetFrame(p, av)
	}
	it.depth++
	f := it.ExecStmts(b, fi.Decl.Body.Stmts)
	it.depth--
	ret := Bot()
	if f.ret != nil {
		it.St.JoinWith(f.ret)
		ret = f.retVal
	}
	if !it.St.Bot && f.ret == nil || f.retVoid {
		// Fall-through (or a bare return) yields the zero value of the
		// return type, exactly as dataexec does.
		ret = join(ret, zeroOf(fi.Ret))
	}
	if !it.St.Bot && f.ret != nil && !f.retVoid {
		// Fall-through alongside value returns.
		ret = join(ret, zeroOf(fi.Ret))
	}
	for _, s := range sav {
		if s.existed {
			it.St.Frame[s.vi] = s.val
		} else if it.St.Frame != nil {
			delete(it.St.Frame, s.vi)
		}
	}
	return ret
}

// ---------------------------------------------------------------------------
// Arithmetic

// arith mirrors dataexec.arith over intervals: usual arithmetic
// conversions pick the signed int32 or unsigned uint32 value space,
// constants compute exactly (including wraps), intervals compute the
// exact mathematical hull and degrade to the full space on overflow.
// Certain traps — div by provably-zero, shift count provably outside
// 0..31, signed results that provably never fit — report through
// OnTrap.
func (it *Interp) arith(op token.Kind, x, y Val, tx, ty ctypes.Type, origin ast.Expr) Val {
	if x.IsBot() || y.IsBot() {
		return Bot()
	}
	// Array operand in a comparison: reinterpreted bytes, untracked.
	if tx != nil && tx.Kind() == ctypes.KindArray {
		x, tx = Top(), promoteOf(ty)
	}
	if ty != nil && ty.Kind() == ctypes.KindArray {
		y, ty = Top(), promoteOf(tx)
	}
	if tx == nil {
		tx = ctypes.Int
	}
	if ty == nil {
		ty = ctypes.Int
	}
	common := ctypes.UsualArithmetic(tx, ty)
	if common.Kind() == ctypes.KindFloat {
		switch op {
		case token.EQL, token.NEQ, token.LSS, token.GTR, token.LEQ, token.GEQ:
			return Interval(0, 1)
		}
		return Top()
	}
	unsigned := ctypes.IsUnsigned(common)
	xs := inSpace(x, common)
	ys := inSpace(y, common)

	switch op {
	case token.EQL, token.NEQ, token.LSS, token.GTR, token.LEQ, token.GEQ:
		return compare(op, xs, ys)
	}

	// Both constants: compute the exact concrete result, wraps and all.
	if cx, okx := xs.Const(); okx {
		if cy, oky := ys.Const(); oky {
			return it.constArith(op, cx, cy, unsigned, origin)
		}
	}

	xl, xh, okx := xs.Bounds()
	yl, yh, oky := ys.Bounds()
	full := topOf(common)
	if !okx || !oky {
		// Still check the traps that depend on one side only.
		switch op {
		case token.QUO, token.REM:
			if ys.DefinitelyFalse() {
				it.trap(TrapDivZero, origin, "divisor is always 0")
			}
		case token.SHL, token.SHR:
			if oky && (yh < 0 || yl > 31) {
				it.trap(TrapShift, origin, "shift count is always "+ys.String())
			}
		}
		return full
	}

	signedWrapCheck := func(exact Val) Val {
		fit := fitOrFull(exact, common)
		if el, eh, ok := exact.Bounds(); ok && fit != exact && !unsigned {
			lo, hi, _ := typeRange(common)
			if eh < lo || el > hi {
				// Every concrete result is out of range: certain wrap.
				it.trap(TrapWrap, origin, "exact result is "+exact.String())
			}
		}
		return fit
	}

	switch op {
	case token.ADD:
		return signedWrapCheck(Interval(xl+yl, xh+yh))
	case token.SUB:
		return signedWrapCheck(Interval(xl-yh, xh-yl))
	case token.MUL:
		if unsigned && (xh > 1<<31 || yh > 1<<31) {
			return full // endpoint products could overflow int64
		}
		return signedWrapCheck(hull4(xl*yl, xl*yh, xh*yl, xh*yh))
	case token.QUO:
		if ys.DefinitelyFalse() {
			it.trap(TrapDivZero, origin, "divisor is always 0")
			return full
		}
		if yl <= 0 && 0 <= yh {
			return full // possible (not certain) trap; no refinement
		}
		return signedWrapCheck(hull4(xl/yl, xl/yh, xh/yl, xh/yh))
	case token.REM:
		if ys.DefinitelyFalse() {
			it.trap(TrapDivZero, origin, "divisor is always 0")
			return full
		}
		if yl <= 0 && 0 <= yh {
			return full
		}
		d := max64(abs64(yl), abs64(yh))
		lo, hi := -(d - 1), d-1
		if xl >= 0 {
			lo = 0
		}
		if xh <= 0 {
			hi = 0
		}
		return Interval(lo, hi)
	case token.SHL, token.SHR:
		if yh < 0 || yl > 31 {
			it.trap(TrapShift, origin, "shift count is always "+ys.String())
			return full
		}
		if yl < 0 || yh > 31 {
			return full // count sometimes masked: value unpredictable
		}
		if op == token.SHL {
			return fitOrFull(hull4(xl<<uint(yl), xl<<uint(yh), xh<<uint(yl), xh<<uint(yh)), common)
		}
		if unsigned || xl >= 0 {
			return Interval(xl>>uint(yh), xh>>uint(yl))
		}
		return hull4(xl>>uint(yl), xl>>uint(yh), xh>>uint(yl), xh>>uint(yh))
	case token.AND:
		// A non-negative mask bounds the result regardless of the other
		// side (the &31 idiom).
		if c, ok := xs.Const(); ok && c >= 0 {
			return Interval(0, c)
		}
		if c, ok := ys.Const(); ok && c >= 0 {
			return Interval(0, c)
		}
		if xl >= 0 && yl >= 0 {
			return Interval(0, min64(xh, yh))
		}
		return full
	case token.OR, token.XOR:
		return full
	}
	return full
}

// constArith is the exact concrete mirror of dataexec.arith for two
// known operands: int32 or uint32 Go arithmetic, wraps included.
func (it *Interp) constArith(op token.Kind, cx, cy int64, unsigned bool, origin ast.Expr) Val {
	if op == token.QUO || op == token.REM {
		if cy == 0 {
			it.trap(TrapDivZero, origin, "divisor is always 0")
			return Top()
		}
	}
	if op == token.SHL || op == token.SHR {
		if cy < 0 || cy > 31 {
			it.trap(TrapShift, origin, "shift count is always "+Const(cy).String())
		}
	}
	if unsigned {
		a, b := uint32(cx), uint32(cy)
		var r uint32
		switch op {
		case token.ADD:
			r = a + b
		case token.SUB:
			r = a - b
		case token.MUL:
			r = a * b
		case token.QUO:
			r = a / b
		case token.REM:
			r = a % b
		case token.SHL:
			r = a << (b & 31)
		case token.SHR:
			r = a >> (b & 31)
		case token.AND:
			r = a & b
		case token.OR:
			r = a | b
		case token.XOR:
			r = a ^ b
		default:
			return Top()
		}
		return Const(int64(r))
	}
	a, b := int32(cx), int32(cy)
	var r int32
	var exact int64
	arithOp := false
	switch op {
	case token.ADD:
		r, exact, arithOp = a+b, cx+cy, true
	case token.SUB:
		r, exact, arithOp = a-b, cx-cy, true
	case token.MUL:
		r, exact, arithOp = a*b, cx*cy, true
	case token.QUO:
		r, exact, arithOp = a/b, cx/cy, true
	case token.REM:
		r = a % b
	case token.SHL:
		r = a << (uint32(b) & 31)
	case token.SHR:
		r = a >> (uint32(b) & 31)
	case token.AND:
		r = a & b
	case token.OR:
		r = a | b
	case token.XOR:
		r = a ^ b
	default:
		return Top()
	}
	if arithOp && int64(r) != exact {
		it.trap(TrapWrap, origin, "exact result is "+Const(exact).String())
	}
	return Const(int64(r))
}

func compare(op token.Kind, x, y Val) Val {
	xl, xh, okx := x.Bounds()
	yl, yh, oky := y.Bounds()
	if !okx || !oky {
		return Interval(0, 1)
	}
	decided := func(always, never bool) Val {
		if always {
			return Const(1)
		}
		if never {
			return Const(0)
		}
		return Interval(0, 1)
	}
	switch op {
	case token.EQL:
		return decided(xl == xh && yl == yh && xl == yl, xh < yl || yh < xl)
	case token.NEQ:
		return decided(xh < yl || yh < xl, xl == xh && yl == yh && xl == yl)
	case token.LSS:
		return decided(xh < yl, xl >= yh)
	case token.GTR:
		return decided(xl > yh, xh <= yl)
	case token.LEQ:
		return decided(xh <= yl, xl > yh)
	case token.GEQ:
		return decided(xl >= yh, xh < yl)
	}
	return Interval(0, 1)
}

func hull4(a, b, c, d int64) Val {
	return Interval(min64(min64(a, b), min64(c, d)), max64(max64(a, b), max64(c, d)))
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}
