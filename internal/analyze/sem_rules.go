package analyze

import (
	"sort"

	"repro/internal/ast"
	"repro/internal/sem"
)

// The sem-level rules (ECL001–ECL004) inspect the analyzed module's
// declaration through sem.Info: name-resolution facts (Uses) identify
// which declared objects the body actually references. Only the
// design's top module is inspected — batch mode (eclvet -all) analyzes
// every module of a file as its own design, so instantiated modules
// get their own pass.

// semUse summarizes how the module body references signals.
type semUse struct {
	mi *sem.ModuleInfo
	// used holds every signal referenced anywhere in the body
	// (presence tests, value reads, emits, instantiation wiring).
	used map[*sem.SignalInfo]bool
	// usedVars holds every variable referenced anywhere in the body.
	usedVars map[*sem.VarInfo]bool
	// emitted holds signals the module can drive: emit/emit_v targets
	// plus signals wired to an output parameter of an instantiation.
	emitted map[*sem.SignalInfo]bool
	// tested holds the identifiers of presence tests (await, present,
	// abort/weak_abort/suspend guards), in source order.
	tested []*ast.Ident
}

// semUses walks the analyzed module's body once and classifies every
// signal/variable reference (memoized per pass).
func (p *pass) semUses() *semUse {
	if p.semDone {
		return p.sem
	}
	p.semDone = true
	info := p.design.Lowered.Info
	mi := info.Modules[p.module]
	if mi == nil || mi.Decl == nil {
		return nil
	}
	u := &semUse{
		mi:       mi,
		used:     make(map[*sem.SignalInfo]bool),
		usedVars: make(map[*sem.VarInfo]bool),
		emitted:  make(map[*sem.SignalInfo]bool),
	}
	noteSig := func(e ast.Expr, f func(*sem.SignalInfo, *ast.Ident)) {
		walkExpr(e, func(n ast.Node) {
			if id, ok := n.(*ast.Ident); ok {
				if si, ok := info.Uses[id].(*sem.SignalInfo); ok {
					f(si, id)
				}
			}
		})
	}
	walkStmt(mi.Decl.Body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.Ident:
			switch obj := info.Uses[n].(type) {
			case *sem.SignalInfo:
				u.used[obj] = true
			case *sem.VarInfo:
				u.usedVars[obj] = true
			}
		case *ast.Emit:
			if si, ok := info.Uses[n.Signal].(*sem.SignalInfo); ok {
				u.emitted[si] = true
			}
		case *ast.Await:
			noteSig(n.Sig, func(si *sem.SignalInfo, id *ast.Ident) { u.tested = append(u.tested, id) })
		case *ast.Present:
			noteSig(n.Sig, func(si *sem.SignalInfo, id *ast.Ident) { u.tested = append(u.tested, id) })
		case *ast.DoPreempt:
			noteSig(n.Sig, func(si *sem.SignalInfo, id *ast.Ident) { u.tested = append(u.tested, id) })
		case *ast.ExprStmt:
			call, ok := n.X.(*ast.Call)
			if !ok || !info.IsInst[call] {
				break
			}
			ref, ok := info.Uses[call.Fun].(*sem.ModuleRef)
			if !ok {
				break
			}
			for i, arg := range call.Args {
				if i >= len(ref.Module.Params) || ref.Module.Params[i].Dir != ast.Out {
					continue
				}
				if id, ok := arg.(*ast.Ident); ok {
					if si, ok := info.Uses[id].(*sem.SignalInfo); ok {
						u.emitted[si] = true
					}
				}
			}
		}
	})
	p.sem = u
	return u
}

// unusedSignals is ECL001: an interface parameter or local signal that
// the module body never references at all.
func (p *pass) unusedSignals() {
	u := p.semUses()
	if u == nil {
		return
	}
	for _, si := range u.mi.Params {
		if u.used[si] {
			continue
		}
		pos := p.modulePos()
		for _, sp := range u.mi.Decl.Params {
			if sp.Name == si.Name {
				pos = sp.DirPos
				break
			}
		}
		p.report(pos, "%s signal %q is never used in module %q", si.Dir, si.Name, p.module)
	}
	for _, si := range u.mi.Locals {
		if u.used[si] {
			continue
		}
		pos, found := p.modulePos(), false
		walkStmt(u.mi.Decl.Body, func(n ast.Node) {
			if sd, ok := n.(*ast.SignalDecl); ok && sd.Name == si.Name && !found {
				pos, found = sd.Pos(), true
			}
		})
		p.report(pos, "local signal %q is never used in module %q", si.Name, p.module)
	}
}

// unusedVars is ECL002: a declared variable the module body never
// references (not even to assign it).
func (p *pass) unusedVars() {
	u := p.semUses()
	if u == nil {
		return
	}
	for _, vi := range u.mi.Vars {
		if u.usedVars[vi] || vi.Decl == nil {
			continue
		}
		p.report(vi.Decl.Pos(), "variable %q is declared but never used", vi.Name)
	}
}

// unusedFuncs is ECL003: a data function (with a body) that no module
// in the file can reach, directly or through other data functions.
func (p *pass) unusedFuncs() {
	info := p.design.Lowered.Info
	reached := make(map[*sem.FuncInfo]bool)
	var frontier []*sem.FuncInfo
	mark := func(n ast.Node) {
		if id, ok := n.(*ast.Ident); ok {
			if fi, ok := info.Uses[id].(*sem.FuncInfo); ok && !reached[fi] {
				reached[fi] = true
				frontier = append(frontier, fi)
			}
		}
	}
	// Seed from every module body in the file (not just the analyzed
	// module): a helper used only by a sibling module is not dead.
	for _, mi := range info.Modules {
		if mi.Decl != nil {
			walkStmt(mi.Decl.Body, mark)
		}
	}
	// Close over function-to-function calls.
	for len(frontier) > 0 {
		fi := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		if fi.Decl != nil && fi.Decl.Body != nil {
			walkStmt(fi.Decl.Body, mark)
		}
	}
	var dead []*sem.FuncInfo
	for _, fi := range info.Funcs {
		if !reached[fi] && fi.Decl != nil && fi.Decl.Body != nil {
			dead = append(dead, fi)
		}
	}
	sort.Slice(dead, func(i, j int) bool { return dead[i].Name < dead[j].Name })
	for _, fi := range dead {
		p.report(fi.Decl.Pos(), "function %q is never called from any module", fi.Name)
	}
}

// deadAwaits is ECL004: a presence test (await/present/abort guard) of
// a signal the environment cannot drive — not an input parameter — and
// that nothing in the module emits or wires to an instantiation
// output. Such a test can never see the signal present.
func (p *pass) deadAwaits() {
	u := p.semUses()
	if u == nil {
		return
	}
	info := p.design.Lowered.Info
	for _, id := range u.tested {
		si, ok := info.Uses[id].(*sem.SignalInfo)
		if !ok {
			continue
		}
		if !si.Local && si.Dir == ast.In {
			continue // inputs are driven by the environment
		}
		if u.emitted[si] {
			continue
		}
		p.report(id.Pos(), "signal %q is tested here but never emitted in module %q (the test can never see it present)", si.Name, p.module)
	}
}
