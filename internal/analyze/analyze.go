// Package analyze is the ECL static analyzer: a rule engine that walks
// a compiled design's three IR levels — the semantic tables (sem), the
// Esterel kernel IR (kernel), and the compiled EFSM — and reports
// structured findings with stable rule IDs, severities, and source
// positions.
//
// This is the paper's core pitch ("catch system-level specification
// errors early, before simulation") turned into a workload: every rule
// diagnoses a class of specification mistake that would otherwise only
// surface as a silently idle simulation. The analyzer runs as a cached
// pipeline phase (internal/pipeline's "analyze"), through `eclc -vet`,
// and through the batch `eclvet` tool; findings replay from the phase
// cache on warm rebuilds without re-analysis.
//
// Rule IDs are grouped by IR level:
//
//	ECL0xx (x < 10)  semantic tables (unused declarations, dead awaits)
//	ECL01x           kernel IR (emit conflicts, dead code, constant branches)
//	ECL02x           EFSM (unreachable states, dead transitions, idle I/O)
//	ECL03x           value flow (abstract interpretation over the EFSM:
//	                 certain traps, interval-refuted guards, dead stores)
//	ECL04x           design level (whole-file interface wiring, via
//	                 AnalyzeFile over the shared compilation unit)
//
// IDs are stable: a rule is never renumbered, and retired IDs are not
// reused.
//
// Severities: ECL03x findings are "error" — the abstract interpreter
// only reports facts that hold on every concrete run (a guaranteed
// trap, a provably dead transition). Every heuristic rule stays
// "warning".
package analyze

import (
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/sem"
	"repro/internal/source"
)

// Finding is one diagnostic produced by the analyzer. All fields are
// plain values so findings serialize losslessly into the phase cache
// (a replayed finding is byte-identical to a fresh one).
type Finding struct {
	// Rule is the stable rule ID, e.g. "ECL001".
	Rule string `json:"rule"`
	// Severity is "error" for certainties (the ECL03x value-flow rules,
	// whose findings hold on every concrete run) and "warning" for
	// heuristic rules.
	Severity string `json:"severity"`
	// File/Line/Col locate the finding; zero values mean the rule has
	// no better anchor than the module itself.
	File string `json:"file,omitempty"`
	Line int    `json:"line,omitempty"`
	Col  int    `json:"col,omitempty"`
	// Module is the analyzed (top-level) module.
	Module string `json:"module,omitempty"`
	// Message describes the problem.
	Message string `json:"message"`
}

// String renders the finding in the grep-friendly one-line form shared
// by eclc -vet and eclvet.
func (f Finding) String() string {
	pos := f.File
	if f.Line > 0 {
		pos = fmt.Sprintf("%s:%d:%d", f.File, f.Line, f.Col)
	}
	if pos == "" {
		pos = "<unknown>"
	}
	return fmt.Sprintf("%s: module %s: %s %s: %s", pos, f.Module, f.Rule, f.Severity, f.Message)
}

// Level names the IR level a rule inspects.
type Level string

// IR levels, in pipeline order.
const (
	LevelSem    Level = "sem"
	LevelKernel Level = "kernel"
	LevelEFSM   Level = "efsm"
	// LevelValue rules run the abstract interpreter (internal/analyze/
	// absint) over the compiled EFSM.
	LevelValue Level = "value"
	// LevelDesign rules inspect the whole file's semantic tables at
	// once (AnalyzeFile); they run once per file, not per module.
	LevelDesign Level = "design"
)

// Severities.
const (
	SeverityError   = "error"
	SeverityWarning = "warning"
)

// Rule describes one analyzer rule.
type Rule struct {
	// ID is the stable rule ID ("ECL001").
	ID string
	// Level is the IR level the rule inspects.
	Level Level
	// Severity is the severity of the rule's findings: "error" for
	// certainties, "warning" for heuristics.
	Severity string
	// Doc is a one-line description of what the rule catches.
	Doc string

	run     func(*pass)     // per-module rules
	runFile func(*filePass) // design-level (per-file) rules
}

// rulesVersion versions the shipped rule set; it is folded into the
// analyze phase's content key so that adding, removing, or changing a
// rule invalidates cached findings.
const rulesVersion = 2

// rules is the shipped rule table, in report order. IDs are stable.
var rules = []Rule{
	{ID: "ECL001", Level: LevelSem, Severity: SeverityWarning, Doc: "signal (interface parameter or local) never referenced in the module body", run: (*pass).unusedSignals},
	{ID: "ECL002", Level: LevelSem, Severity: SeverityWarning, Doc: "variable declared but never referenced", run: (*pass).unusedVars},
	{ID: "ECL003", Level: LevelSem, Severity: SeverityWarning, Doc: "data function never called from any module", run: (*pass).unusedFuncs},
	{ID: "ECL004", Level: LevelSem, Severity: SeverityWarning, Doc: "await/present tests a non-input signal that is never emitted (can never hold)", run: (*pass).deadAwaits},
	{ID: "ECL010", Level: LevelKernel, Severity: SeverityWarning, Doc: "valued signal emitted by two parallel branches (same-instant write-write conflict)", run: (*pass).emitConflicts},
	{ID: "ECL011", Level: LevelKernel, Severity: SeverityWarning, Doc: "unreachable code after a statement that never terminates (halt, non-exiting loop)", run: (*pass).deadCode},
	{ID: "ECL012", Level: LevelKernel, Severity: SeverityWarning, Doc: "data branch condition is compile-time constant", run: (*pass).constBranches},
	{ID: "ECL020", Level: LevelEFSM, Severity: SeverityWarning, Doc: "state reachable only through transitions with unsatisfiable guards (syntactic; value-refuted states are ECL034)", run: (*pass).unreachableStates},
	{ID: "ECL021", Level: LevelEFSM, Severity: SeverityWarning, Doc: "transition guard is unsatisfiable (contradictory data conditions; value-refuted guards are ECL033)", run: (*pass).deadTransitions},
	{ID: "ECL022", Level: LevelEFSM, Severity: SeverityWarning, Doc: "input signal never tested or read by any reachable transition", run: (*pass).idleInputs},
	{ID: "ECL023", Level: LevelEFSM, Severity: SeverityWarning, Doc: "output signal never emitted by any reachable transition", run: (*pass).idleOutputs},
	{ID: "ECL030", Level: LevelValue, Severity: SeverityError, Doc: "division or modulo whose divisor is provably always zero (guaranteed runtime trap)", run: (*pass).divByZero},
	{ID: "ECL031", Level: LevelValue, Severity: SeverityError, Doc: "shift count provably outside 0..31 before the runtime's &31 mask", run: (*pass).shiftRange},
	{ID: "ECL032", Level: LevelValue, Severity: SeverityError, Doc: "signed arithmetic whose exact result provably never fits int32 (certain silent wrap)", run: (*pass).certainWrap},
	{ID: "ECL033", Level: LevelValue, Severity: SeverityError, Doc: "transition guard condition refuted by interval analysis (the transition can never fire)", run: (*pass).refutedTransitions},
	{ID: "ECL034", Level: LevelValue, Severity: SeverityError, Doc: "state no value-consistent execution can enter (per-transition satisfiability says reachable, intervals refute it)", run: (*pass).valueUnreachableStates},
	{ID: "ECL035", Level: LevelValue, Severity: SeverityError, Doc: "dead store: variable written then rewritten with no read on any feasible path", run: (*pass).deadStores},
	{ID: "ECL040", Level: LevelDesign, Severity: SeverityWarning, Doc: "signal read or tested across modules but emitted by no module in the design", runFile: (*filePass).undrivenSignals},
	{ID: "ECL041", Level: LevelDesign, Severity: SeverityWarning, Doc: "signal emitted across modules but read by no module in the design", runFile: (*filePass).unobservedSignals},
}

// Rules returns the shipped rule table, in report order.
func Rules() []Rule {
	out := make([]Rule, len(rules))
	copy(out, rules)
	return out
}

// RuleIDs returns every shipped rule ID, in report order.
func RuleIDs() []string {
	ids := make([]string, len(rules))
	for i, r := range rules {
		ids[i] = r.ID
	}
	return ids
}

// KeySalt fingerprints the shipped rule set for the analyze phase's
// content key: same salt, same findings for the same design.
func KeySalt() string {
	s := fmt.Sprintf("ecl-analyze:v%d", rulesVersion)
	for _, r := range rules {
		s += ":" + r.ID + "=" + r.Severity
	}
	return s
}

// Analyze runs every rule over a compiled design and returns the
// findings sorted by position, rule, and message (a deterministic
// order, so cached findings diff cleanly against fresh ones).
func Analyze(d *core.Design) []Finding {
	p := &pass{design: d, module: d.Lowered.Module.Name}
	for _, r := range rules {
		if r.run == nil {
			continue // design-level rule: runs through AnalyzeFile
		}
		p.rule = r
		r.run(p)
	}
	Sort(p.findings)
	return p.findings
}

// AnalyzeFile runs the design-level (per-file) rules over a file's
// semantic tables and returns the findings sorted. Batch drivers call
// this once per shared compilation unit, not once per module.
func AnalyzeFile(info *sem.Info) []Finding {
	if info == nil {
		return nil
	}
	fp := &filePass{info: info}
	for _, r := range rules {
		if r.runFile == nil {
			continue
		}
		fp.rule = r
		r.runFile(fp)
	}
	Sort(fp.findings)
	return fp.findings
}

// Filter keeps only findings whose rule ID is in keep (nil keeps
// everything).
func Filter(fs []Finding, keep []string) []Finding {
	if keep == nil {
		return fs
	}
	want := make(map[string]bool, len(keep))
	for _, id := range keep {
		want[id] = true
	}
	out := fs[:0:0]
	for _, f := range fs {
		if want[f.Rule] {
			out = append(out, f)
		}
	}
	return out
}

// FilterSeverity keeps only findings with the given severity (""
// keeps everything).
func FilterSeverity(fs []Finding, severity string) []Finding {
	if severity == "" {
		return fs
	}
	out := fs[:0:0]
	for _, f := range fs {
		if f.Severity == severity {
			out = append(out, f)
		}
	}
	return out
}

// Sort orders findings by file, line, column, rule, then message.
func Sort(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
}

// Encode serializes findings for the analyze phase's cache snapshot.
func Encode(fs []Finding) ([]byte, error) {
	if fs == nil {
		fs = []Finding{}
	}
	return json.Marshal(fs)
}

// Decode is Encode's inverse; an undecodable blob reports an error so
// the phase degrades to a re-analysis.
func Decode(data []byte) ([]Finding, error) {
	var fs []Finding
	if err := json.Unmarshal(data, &fs); err != nil {
		return nil, err
	}
	return fs, nil
}

// pass carries one analysis run's state.
type pass struct {
	design   *core.Design
	module   string
	rule     Rule
	findings []Finding

	// Memoized per-design fact tables shared across rules.
	sem      *semUse
	semDone  bool
	efsm     *efsmFacts
	efsmDone bool
}

// report records one finding for the current rule.
func (p *pass) report(pos source.Pos, format string, args ...interface{}) {
	sev := p.rule.Severity
	if sev == "" {
		sev = SeverityWarning
	}
	f := Finding{
		Rule:     p.rule.ID,
		Severity: sev,
		Module:   p.module,
		Message:  fmt.Sprintf(format, args...),
	}
	if pos.IsValid() {
		f.File = pos.File.Name
		f.Line = pos.Line()
		f.Col = pos.Column()
	}
	p.findings = append(p.findings, f)
}

// modulePos is the fallback anchor: the analyzed module's declaration.
func (p *pass) modulePos() source.Pos {
	if mi := p.design.Lowered.Info.Modules[p.module]; mi != nil && mi.Decl != nil {
		return mi.Decl.Pos()
	}
	return source.Pos{}
}
